// Quickstart: describe the paper's running 1D-convolution example, let
// Sunstone infer its reuse structure (Table III), and optimize it for a tiny
// two-level accelerator.
package main

import (
	"fmt"
	"log"

	"sunstone"
)

func main() {
	// ofmap[k,p] = sum_{c,r} ifmap[p+r, c] * weight[k, c, r]
	//
	// The workload description is purely structural: dimensions and index
	// expressions. Win("P",1,"R",1) is the sliding-window expression p+r.
	w, err := sunstone.NewWorkload("conv1d",
		map[sunstone.Dim]int{"K": 4, "C": 4, "P": 14, "R": 3},
		&sunstone.Tensor{Name: "ifmap", Axes: []sunstone.Axis{sunstone.Win("P", 1, "R", 1), sunstone.A("C")}},
		&sunstone.Tensor{Name: "weight", Axes: []sunstone.Axis{sunstone.A("K"), sunstone.A("C"), sunstone.A("R")}},
		&sunstone.Tensor{Name: "ofmap", Axes: []sunstone.Axis{sunstone.A("K"), sunstone.A("P")}, Output: true},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Sunstone infers which loops can reuse which tensors (Table III).
	fmt.Println("inferred reuse:")
	fmt.Println(w.ReuseTable())

	// A two-level machine: a 64-word unified L1 over a single MAC, then DRAM.
	a := sunstone.Tiny(64)

	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best mapping (outermost level first):")
	fmt.Println(res.Mapping)
	fmt.Printf("\nEDP %.4e pJ*cycle  (energy %.4e pJ, %d MACs, %.0f cycles)\n",
		res.Report.EDP, res.Report.EnergyPJ, res.Report.MACs, res.Report.Cycles)
	fmt.Printf("searched %d candidates over %d pruned loop orderings in %v\n",
		res.SpaceSize, res.OrderingsConsidered, res.Elapsed)

	fmt.Println("\nenergy breakdown:")
	fmt.Print(res.Report.BreakdownString())
}

// Tensor kernels beyond DNNs: schedule MTTKRP (CP decomposition), TTMc
// (Tucker decomposition), and SDDMM (alternating least squares) on the
// conventional accelerator — the Fig. 6 scenario — plus a custom
// user-defined contraction, demonstrating the versatility claim: the same
// algebra-derived pipeline handles any freely-reorderable dense loop nest.
package main

import (
	"fmt"
	"log"

	"sunstone"
)

func main() {
	a := sunstone.Conventional()

	kernels := []*sunstone.Workload{
		// FROSTT nell2 mode sizes, rank 32 (Fig. 6).
		sunstone.MTTKRP("mttkrp_nell2", 12092, 9184, 28818, 32),
		// FROSTT netflix mode sizes, rank 8.
		sunstone.TTMc("ttmc_netflix", 480189, 17770, 2182, 8),
		// SuiteSparse bcsstk17, rank 512.
		sunstone.SDDMM("sddmm_bcsstk17", 10974, 10974, 512),
		// Transformer attention as a matrix chain (Table II).
		sunstone.MMc("attention_mmc", 512, 64, 512, 64),
		// Tensor contraction layer over VGG features (Table II).
		sunstone.TCL("tcl_vgg", 512, 7, 7, 32, 32, 32),
	}

	// Versatility also means *user-defined* algebra: a 4D contraction with
	// no built-in constructor, written directly in the description language.
	custom, err := sunstone.NewWorkload("custom_contraction",
		map[sunstone.Dim]int{"A": 128, "B": 64, "C": 256, "D": 32},
		&sunstone.Tensor{Name: "X", Axes: []sunstone.Axis{sunstone.A("A"), sunstone.A("B"), sunstone.A("C")}},
		&sunstone.Tensor{Name: "Y", Axes: []sunstone.Axis{sunstone.A("C"), sunstone.A("D")}},
		&sunstone.Tensor{Name: "Z", Axes: []sunstone.Axis{sunstone.A("A"), sunstone.A("B"), sunstone.A("D")}, Output: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	kernels = append(kernels, custom)

	for _, w := range kernels {
		res, err := sunstone.Optimize(w, a, sunstone.Options{})
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		fmt.Printf("=== %s (%.3e MACs)\n", w.Name, float64(w.MACs()))
		fmt.Println(res.Mapping)
		fmt.Printf("EDP %.4e, energy %.4e pJ, %.3e cycles, found in %v (%d candidates)\n\n",
			res.Report.EDP, res.Report.EnergyPJ, res.Report.Cycles, res.Elapsed, res.SpaceSize)
	}
}

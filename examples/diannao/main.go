// DianNao overhead analysis: map a ResNet-18 layer onto the DianNao-like
// accelerator, compile the mapping to the machine's 256-bit instruction
// stream, execute it on the event-counting simulator, and compare against
// naive DRAM streaming — the Section V-D / Fig. 9 pipeline end to end.
package main

import (
	"fmt"
	"log"
	"sort"

	"sunstone"
)

func main() {
	a := sunstone.DianNao()
	layer := sunstone.ResNet18Layers[1] // conv2_x: 64x64, 56x56, 3x3
	w := layer.Inference(1)

	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer %s on %s\nmapping:\n%s\n\n", layer.Name, a.Name, res.Mapping)

	run, err := sunstone.RunOnDianNao(res.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to %d instructions over %d processing passes\n", run.Instructions, run.Passes)
	fmt.Printf("simulated: %d MACs, %d cycles, DRAM %d reads / %d writes\n\n",
		run.MACs, run.Cycles, run.DRAMReads, run.DRAMWrites)

	opt := run.TotalEnergyPJ()
	naiveBreak := sunstone.NaiveDianNaoEnergy(w)
	naive := naiveBreak["MAC"] + naiveBreak["DRAM"]

	fmt.Printf("naive streaming energy:     %.4e pJ\n", naive)
	fmt.Printf("tiled + unrolled energy:    %.4e pJ  (%.2fx more efficient)\n\n", opt, naive/opt)

	fmt.Println("optimized energy breakdown (Fig. 9b style):")
	keys := make([]string, 0, len(run.EnergyPJ))
	for k := range run.EnergyPJ {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-8s %12.4e pJ (%5.2f%%)\n", k, run.EnergyPJ[k], 100*run.EnergyPJ[k]/opt)
	}
	fmt.Printf("\ninstruction overhead: %.2f%% of total; data reordering: %.2f%%\n",
		100*run.EnergyPJ["Instr"]/opt, 100*run.EnergyPJ["Reorder"]/opt)
}

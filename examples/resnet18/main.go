// ResNet-18 on Simba: schedule every distinct convolution layer of
// ResNet-18 (batch 16) onto the Simba-like accelerator of Table IV — the
// Fig. 8 scenario — and report per-layer and whole-network results. This is
// the "modern architecture" case with two levels of spatial processing
// (a PE grid and vector-MAC lanes inside each PE) plus weight bypass of the
// global buffer, which most prior mappers cannot target at all.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"sunstone"
)

func main() {
	a := sunstone.Simba()
	fmt.Println(a)
	fmt.Println()

	sched, err := sunstone.ScheduleNetwork("resnet18", sunstone.ResNet18Layers, 16,
		sunstone.ResNet18Repeats(), a, sunstone.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-3s %-12s %-12s %-10s %-8s %s\n",
		"layer", "x", "EDP", "energy pJ", "cycles", "search", "mapping (DRAM level)")
	for _, l := range sched.Layers {
		rep := l.Result.Report
		firstLine, _, _ := strings.Cut(l.Result.Mapping.String(), "\n")
		fmt.Printf("%-10s %-3d %-12.3e %-12.3e %-10.0f %-8v %s\n",
			l.Layer, l.Repeats, rep.EDP, rep.EnergyPJ, rep.Cycles,
			l.Result.Elapsed.Round(time.Millisecond), firstLine)
	}
	fmt.Printf("\nnetwork totals (repeats applied): %.4e pJ, %.3e cycles, EDP %.4e\n",
		sched.TotalEnergyPJ, sched.TotalCycles, sched.EDP)
	fmt.Printf("whole network scheduled in %v\n", sched.Elapsed.Round(time.Millisecond))
}

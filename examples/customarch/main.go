// Custom architectures and workloads from JSON: define a machine and a
// kernel in the serialization format (the same files `cmd/sunstone
// -arch-file/-workload-file` consume), optimize, verify the mapping
// functionally, and export it — the full configuration-file workflow.
package main

import (
	"fmt"
	"log"

	"sunstone"
)

// A hypothetical edge accelerator: an 8x8 PE grid with 1 KB unified L1 per
// PE, a 256 KB shared L2, and DRAM. Energies in pJ per word access.
const archJSON = `{
  "name": "edge-64pe",
  "default_word_bits": 16,
  "mac_pj": 2.2,
  "levels": [
    {
      "name": "L1",
      "buffers": [{"name": "L1", "bytes": 1024, "read_pj": 1.1, "write_pj": 1.2, "read_bw": 2, "write_bw": 2}]
    },
    {
      "name": "L2",
      "fanout": 64,
      "allow_spatial_reduction": true,
      "noc_per_word_pj": 1.3,
      "noc_tag_check_pj": 0.05,
      "spatial_reduce_pj": 0.11,
      "buffers": [{"name": "L2", "bytes": 262144, "read_pj": 18, "write_pj": 20, "read_bw": 32, "write_bw": 32}]
    },
    {
      "name": "DRAM",
      "buffers": [{"name": "DRAM", "read_pj": 200, "write_pj": 200, "read_bw": 8, "write_bw": 8}]
    }
  ]
}`

// A depthwise-separable pointwise convolution (1x1), written by hand.
const workloadJSON = `{
  "name": "pointwise_conv",
  "dims": {"N": 4, "K": 128, "C": 64, "P": 28, "Q": 28},
  "tensors": [
    {"name": "ifmap",  "axes": [[{"dim":"N","stride":1}], [{"dim":"C","stride":1}], [{"dim":"P","stride":1}], [{"dim":"Q","stride":1}]]},
    {"name": "weight", "axes": [[{"dim":"K","stride":1}], [{"dim":"C","stride":1}]]},
    {"name": "ofmap",  "axes": [[{"dim":"N","stride":1}], [{"dim":"K","stride":1}], [{"dim":"P","stride":1}], [{"dim":"Q","stride":1}]], "output": true}
  ]
}`

func main() {
	a, err := sunstone.DecodeArch([]byte(archJSON))
	if err != nil {
		log.Fatal(err)
	}
	w, err := sunstone.DecodeWorkload([]byte(workloadJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)
	fmt.Println()
	fmt.Println(w)
	fmt.Println()

	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best mapping (EDP %.4e, found in %v):\n%s\n\n",
		res.Report.EDP, res.Elapsed, res.Mapping)
	fmt.Println("as a loop nest:")
	fmt.Print(res.Mapping.PseudoCode())

	ok, err := sunstone.VerifyMapping(res.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional verification against the reference execution: %v\n", ok)

	data, err := sunstone.EncodeMapping(res.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported mapping (%d bytes of JSON); round-trips losslessly:\n", len(data))
	back, err := sunstone.DecodeMapping(data, w, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-evaluated EDP: %.4e (identical: %v)\n",
		sunstone.Evaluate(back).EDP, sunstone.Evaluate(back).EDP == res.Report.EDP)
}

// Architecture design-space exploration: because Sunstone finds a
// near-optimal mapping in well under a second, it can sit inside an
// architecture sweep — vary PE count and L1 capacity, re-map the workload
// for every configuration, and compare the machines at their respective
// best dataflows (comparing architectures under a *fixed* dataflow
// systematically mis-ranks them). This is the kind of co-design loop
// MAGNet-style generators run, with Sunstone as the inner mapper.
package main

import (
	"fmt"
	"log"
	"time"

	"sunstone"
)

func main() {
	w := sunstone.ResNet18Layers[2].Inference(4) // conv3_1
	fmt.Printf("workload: %s\n\n", w.Name)
	fmt.Printf("%-8s %-10s %-12s %-12s %-12s %s\n",
		"PEs", "L1/PE", "EDP", "energy pJ", "cycles", "PE util")

	start := time.Now()
	configs := 0
	type point struct {
		pes, l1Words int
		edp          float64
	}
	best := point{edp: -1}
	for _, pes := range []int{16, 64, 256, 1024} {
		for _, l1Words := range []int{128, 256, 512, 1024} {
			a := sunstone.TinySpatial(l1Words, 1<<20, pes)
			res, err := sunstone.Optimize(w, a, sunstone.Options{})
			if err != nil {
				log.Fatalf("pes=%d l1=%d: %v", pes, l1Words, err)
			}
			configs++
			fmt.Printf("%-8d %-10d %-12.3e %-12.3e %-12.0f %.0f%%\n",
				pes, l1Words, res.Report.EDP, res.Report.EnergyPJ, res.Report.Cycles,
				100*res.Mapping.PEUtilization())
			if best.edp < 0 || res.Report.EDP < best.edp {
				best = point{pes: pes, l1Words: l1Words, edp: res.Report.EDP}
			}
		}
	}
	fmt.Printf("\nswept %d architecture points in %v\n", configs, time.Since(start).Round(time.Millisecond))
	fmt.Printf("best configuration: %d PEs with %d-word L1 (EDP %.3e)\n",
		best.pes, best.l1Words, best.edp)
}

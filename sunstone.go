// Package sunstone is a Go implementation of Sunstone, a scalable and
// versatile dataflow scheduler for mapping tensor algebra onto spatial
// accelerators (Olyaiy, Ng, Fedorova, Lis — ISPASS 2023).
//
// Given a tensor-algebra workload (convolution, MTTKRP, TTMc, SDDMM, MMc,
// TCL, or anything expressible as a freely-reorderable nested loop over
// dense index expressions) and an accelerator description (multi-level
// memories, per-datatype buffers, multi-level spatial fanout), Optimize
// returns the tiling / loop-ordering / spatial-unrolling mapping with the
// best energy-delay product under a Timeloop-style analytic cost model.
//
// The search applies the paper's algebra-derived pruning principles: an
// ordering trie keyed on which tensors each loop can reuse, a tiling tree
// grown only along the reused operand's indexing dimensions, and spatial
// unrolling restricted away from dimensions that would re-reuse an
// already-optimized operand. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
//
// Quick start:
//
//	w := sunstone.Conv2D("layer", 16, 64, 64, 56, 56, 3, 3, 1, 1)
//	p := sunstone.Problem{Workload: w, Arch: sunstone.Simba()}
//	res, err := sunstone.Solve(p, sunstone.Options{})
//	fmt.Println(res.Mapping, res.Report.EDP)
//
// Problem bundles everything that identifies one scheduling problem —
// workload, architecture, and (optionally) a non-default cost model — and
// Solve/SolveContext/Engine.Solve all take it. The positional
// Optimize(w, a, opt) wrappers remain and behave identically.
//
// # Anytime optimization: cancellation, deadlines, graceful degradation
//
// Every search entry point is an *anytime* algorithm. OptimizeContext (and
// Optimize with Options.Timeout set) polls cancellation at bounded
// intervals; when the context is canceled or its deadline expires, the
// search stops within one polling interval — in practice well under 100ms —
// and returns the best mapping completed so far, with Result.Stopped
// recording why it returned:
//
//   - StopComplete — the search ran to its natural end;
//   - StopDeadline — Options.Timeout or the context deadline expired;
//   - StopCanceled — the caller canceled the context;
//   - StopBudget — an internal enumeration budget was exhausted (e.g. the
//     top-down visit cap of Options.TopDownVisitBudget).
//
// A stopped search returns a nil error as long as at least one valid
// mapping was completed before the signal: the incumbent is seeded with the
// trivial everything-at-DRAM completion before level-by-level optimization
// begins, so in practice only a stop during workload/arch validation comes
// back empty. Best-so-far mappings are complete, structurally valid, and
// pass VerifyMapping — only their cost is worse than what a full search
// would have found.
//
// Panic isolation: every parallel evaluation worker (the core fan-out, each
// baseline mapper's search threads, and each layer of ScheduleNetwork)
// converts a panicking cost-model evaluation into a per-candidate error
// carrying the offending mapping serialized for reproduction (see
// Result.CandidateErrors), so one poisoned candidate degrades a single
// evaluation instead of killing the process. ScheduleNetworkContext extends
// the same contract across layers: fail-fast sibling cancellation by
// default, or NetworkOptions.ContinueOnError to collect every per-layer
// error (joined with errors.Join) while still returning the layers that
// succeeded. The baseline mappers implement the same deadline contract via
// BaselineMapper.MapContext, so head-to-head time-bounded comparisons are
// fair. See DESIGN.md ("Anytime search") for the full taxonomy.
package sunstone

import (
	"context"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/cosa"
	"sunstone/internal/baselines/dmaze"
	"sunstone/internal/baselines/fixed"
	"sunstone/internal/baselines/interstellar"
	"sunstone/internal/baselines/marvel"
	"sunstone/internal/baselines/registry"
	"sunstone/internal/baselines/timeloop"
	"sunstone/internal/core"
	"sunstone/internal/cost"
	"sunstone/internal/exec"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// Core types, re-exported from the implementation packages.
type (
	// Dim names a problem dimension (a loop variable).
	Dim = tensor.Dim
	// Axis is one tensor axis's index expression (possibly a sliding
	// window such as p+r).
	Axis = tensor.Axis
	// Tensor is one operand or result of a workload.
	Tensor = tensor.Tensor
	// Workload is a tensor-algebra problem description.
	Workload = tensor.Workload
	// Arch describes a spatial accelerator.
	Arch = arch.Arch
	// Level is one storage level of an Arch.
	Level = arch.Level
	// Buffer is one physical memory within a Level.
	Buffer = arch.Buffer
	// Mapping is a complete dataflow mapping.
	Mapping = mapping.Mapping
	// Report is a cost-model evaluation of a mapping.
	Report = cost.Report
	// Options configures the optimizer.
	Options = core.Options
	// AnalyticalOptions configures the closed-form analytical layer
	// (Options.Analytical): the one-shot seed incumbent and the admissible
	// lower-bound pruning. Both default on; an explicit zero
	// &AnalyticalOptions{} disables both.
	AnalyticalOptions = core.AnalyticalOptions
	// Problem bundles a workload, an architecture, and an optional
	// non-default cost model into one value identifying a scheduling
	// problem — the canonical input of Solve and Engine.Solve.
	Problem = core.Problem
	// Result is the outcome of an optimization run.
	Result = core.Result
	// BaselineResult is the outcome of a prior-art mapper run.
	BaselineResult = baselines.Result
	// BaselineMapper is a prior-art mapper under comparison.
	BaselineMapper = baselines.Mapper
	// ConvShape describes one convolution layer's geometry.
	ConvShape = workloads.ConvShape
)

// Optimization order selectors (Table VI).
const (
	BottomUp = core.BottomUp
	TopDown  = core.TopDown
)

// Intra-level optimization orders (Table VI).
const (
	OrderTileUnroll = core.OrderTileUnroll
	TileUnrollOrder = core.TileUnrollOrder
	UnrollTileOrder = core.UnrollTileOrder
)

// Objective is the figure of merit the search minimizes.
type Objective = core.Objective

// StopReason records why a search returned (see the package comment's
// anytime-optimization section).
type StopReason = anytime.StopReason

// Stop reasons for Result.Stopped and BaselineResult.Stopped.
const (
	StopComplete = core.StopComplete
	StopDeadline = core.StopDeadline
	StopCanceled = core.StopCanceled
	StopBudget   = core.StopBudget
)

// PanicError is a panic recovered from a search worker and converted into a
// per-candidate error, carrying the offending mapping serialized for repro.
type PanicError = anytime.PanicError

// Optimization objectives: the paper's EDP plus energy / delay / ED^2P
// extensions.
const (
	MinEDP    = core.MinEDP
	MinEnergy = core.MinEnergy
	MinDelay  = core.MinDelay
	MinED2P   = core.MinED2P
)

// NewWorkload builds a workload from a dimension table and tensors; see
// A and Win for index expressions.
func NewWorkload(name string, dims map[Dim]int, tensors ...*Tensor) (*Workload, error) {
	return tensor.New(name, dims, tensors...)
}

// ParseWorkload reads the paper's Section IV textual description syntax:
//
//	dimensions = {K:4, C:4, P:7, R:3}
//	tensor_description = {
//	    operand1 = [C, (P, R)],
//	    operand2 = [K, C, R],
//	    output = [K, P]
//	}
func ParseWorkload(src string) (*Workload, error) { return tensor.Parse(src) }

// A returns a simple single-dimension axis.
func A(d Dim) Axis { return tensor.A(d) }

// Win returns a two-dimension sliding-window axis (e.g. Win("P",1,"R",1)
// for the convolution input expression p+r).
func Win(d1 Dim, s1 int, d2 Dim, s2 int) Axis { return tensor.Win(d1, s1, d2, s2) }

// Workload constructors for the Table II kernel classes.
var (
	Conv1D             = workloads.Conv1D
	Conv2D             = workloads.Conv2D
	Conv2DWeightUpdate = workloads.Conv2DWeightUpdate
	FC                 = workloads.FC
	MTTKRP             = workloads.MTTKRP
	SDDMM              = workloads.SDDMM
	TTMc               = workloads.TTMc
	MMc                = workloads.MMc
	TCL                = workloads.TCL
	ResNet18Layers     = workloads.ResNet18
	InceptionV3Layers  = workloads.InceptionV3
	AlexNetLayers      = workloads.AlexNet
	VGG16Layers        = workloads.VGG16
)

// Architecture presets (Table IV and Section V-D).
var (
	Conventional = arch.Conventional
	Simba        = arch.Simba
	DianNao      = arch.DianNao
	Tiny         = arch.Tiny
	TinySpatial  = arch.TinySpatial
)

// DefaultOptions returns the optimizer's default configuration with every
// field spelled out. The zero Options value is exactly equivalent — zero
// fields are filled from this set before any search runs — so use whichever
// reads better: Options{} for "just the defaults", DefaultOptions() to start
// from the defaults and adjust one knob.
func DefaultOptions() Options { return core.DefaultOptions() }

// SearchStats is the telemetry-counter snapshot published in Result.Stats:
// candidate flow (generated, pruned by each algebraic principle, deduped,
// evaluated, skipped), post-evaluation alpha-beta/beam cuts, and the
// fast-path evaluator's memo-cache hits and misses. For a run that was not
// canceled, Generated == Pruned() + Deduped + Evaluated.
type SearchStats = core.SearchStats

// Progress streaming types for Options.Progress (see internal/obs).
type (
	// ProgressEvent is one live search notification: a phase boundary or an
	// incumbent improvement, with the current best score and counter
	// snapshot attached.
	ProgressEvent = obs.ProgressEvent
	// ProgressKind classifies a ProgressEvent.
	ProgressKind = obs.ProgressKind
	// ProgressFunc is the Options.Progress callback type. Callbacks run
	// synchronously on the search goroutine: keep them fast, and do not
	// call back into the search.
	ProgressFunc = obs.ProgressFunc
)

// Progress event kinds.
const (
	PhaseStarted      = obs.PhaseStarted
	PhaseFinished     = obs.PhaseFinished
	IncumbentImproved = obs.IncumbentImproved
)

// Trace collects hierarchical timed spans of a search for export in the
// Chrome trace-event JSON format (chrome://tracing, ui.perfetto.dev).
// Install one on a context with WithTrace, run any context-taking entry
// point (OptimizeContext, ScheduleNetworkContext, BaselineMapper.MapContext),
// then render it with its WriteJSON method.
type Trace = obs.Trace

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace returns a context carrying t; every search phase run under that
// context records a span into t. Without a trace on the context, the
// telemetry instrumentation is inert (two context lookups per phase).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.WithTrace(ctx, t)
}

// Solve runs the Sunstone optimizer on a Problem. It is SolveContext with a
// background context; Options.Timeout still bounds the wall-clock.
func Solve(p Problem, opt Options) (Result, error) {
	return core.Solve(p, opt)
}

// SolveContext runs the Sunstone optimizer on a Problem under ctx as an
// anytime algorithm: on cancellation or deadline it returns the best mapping
// completed so far with Result.Stopped set (see the package comment). This is
// the canonical entry point; Optimize/OptimizeContext are positional-argument
// wrappers over it.
func SolveContext(ctx context.Context, p Problem, opt Options) (Result, error) {
	return core.SolveContext(ctx, p, opt)
}

// Optimize runs the Sunstone optimizer. It is OptimizeContext with a
// background context; Options.Timeout still bounds the wall-clock.
//
// Deprecated-style note: Solve with a Problem is the canonical entry point;
// this wrapper remains for positional-argument callers and is not going away.
func Optimize(w *Workload, a *Arch, opt Options) (Result, error) {
	return core.Optimize(w, a, opt)
}

// OptimizeContext runs the Sunstone optimizer under ctx as an anytime
// algorithm: on cancellation or deadline it returns the best mapping
// completed so far with Result.Stopped set (see the package comment).
//
// Deprecated-style note: SolveContext with a Problem is the canonical entry
// point; this wrapper remains for positional-argument callers.
func OptimizeContext(ctx context.Context, w *Workload, a *Arch, opt Options) (Result, error) {
	return core.OptimizeContext(ctx, w, a, opt)
}

// Evaluate scores an arbitrary mapping with the default cost model.
func Evaluate(m *Mapping) Report { return cost.Evaluate(m) }

// CostSession holds the precomputed per-(workload, arch) tables and the
// search-wide memoization cache of the scalar fast-path cost evaluator.
// Optimize builds one internally per run; build one yourself (NewCostSession)
// to score many mappings of the same workload on the same architecture
// without Report allocation overhead.
type CostSession = cost.Session

// CostEvaluator is a single goroutine's scratch-carrying handle onto a
// CostSession. Evaluators are cheap; create one per worker.
type CostEvaluator = cost.Evaluator

// NewCostSession builds a fast-path evaluation session for w on a using the
// default cost model.
func NewCostSession(w *Workload, a *Arch) *CostSession {
	return cost.Default.NewSession(w, a)
}

// EvaluateEDP scores m on the scalar fast path: bit-identical EDP, energy
// (pJ), cycles and validity to Evaluate, without building a Report. For
// repeated scoring, hold a CostSession and reuse its evaluators instead.
func EvaluateEDP(m *Mapping) (edp, energyPJ, cycles float64, valid bool) {
	return cost.Default.EvaluateEDP(m)
}

// NewMapping returns an empty mapping of w onto a, for hand construction.
func NewMapping(w *Workload, a *Arch) *Mapping { return mapping.New(w, a) }

// NamedBaseline pairs a baseline registry name (lowercase, flag-friendly —
// what cmd/sunstone -baselines accepts) with a freshly constructed mapper.
type NamedBaseline struct {
	Name   string
	Mapper BaselineMapper
}

// Baselines returns every prior-art mapper of the paper's comparison as an
// ordered registry: the search-based tools first (Timeloop and dMazeRunner,
// Table V fast/slow pairs), then the one-shot analytic tools (Interstellar,
// CoSA, Marvel), then the fixed-dataflow reference points. Each call
// constructs fresh mappers in their paper-default configurations; the
// per-mapper constructors below remain as thin wrappers for callers that
// want exactly one tool.
func Baselines() []NamedBaseline {
	all := registry.All()
	out := make([]NamedBaseline, len(all))
	for i, e := range all {
		out[i] = NamedBaseline{Name: e.Name, Mapper: e.New()}
	}
	return out
}

// Baseline mappers from the paper's comparison (Section V).
func TimeloopFast() BaselineMapper { return timeloop.New(timeloop.Fast()) }

// TimeloopSlow returns the Table V slow/conservative Timeloop configuration.
func TimeloopSlow() BaselineMapper { return timeloop.New(timeloop.Slow()) }

// DMazeFast returns the Table V fast/aggressive dMazeRunner configuration.
func DMazeFast() BaselineMapper { return dmaze.New(dmaze.Fast()) }

// DMazeSlow returns the Table V slow/conservative dMazeRunner configuration.
func DMazeSlow() BaselineMapper { return dmaze.New(dmaze.Slow()) }

// Interstellar returns the CK-preset Interstellar mapper.
func Interstellar() BaselineMapper { return interstellar.New() }

// CoSA returns the one-shot linear-relaxation CoSA mapper.
func CoSA() BaselineMapper { return cosa.New() }

// Marvel returns the decoupled off-chip/on-chip Marvel-style mapper
// (rebuilt from its described strategy; the original is not open source).
func Marvel() BaselineMapper { return marvel.New() }

// Fixed dataflow reference points: hard-wired stationary schedules.
func WeightStationary() BaselineMapper { return fixed.New(fixed.WeightStationary) }

// OutputStationary returns the partial-sum-resident fixed dataflow.
func OutputStationary() BaselineMapper { return fixed.New(fixed.OutputStationary) }

// InputStationary returns the activation-resident fixed dataflow.
func InputStationary() BaselineMapper { return fixed.New(fixed.InputStationary) }

// ExplainOrderings returns the pruned ordering-trie candidates for w with
// their reuse annotations (the paper's Fig. 4 view) — why the search
// considers exactly these loop orders.
func ExplainOrderings(w *Workload) string {
	os, _ := order.Enumerate(w)
	return order.Render(os)
}

// VerifyMapping functionally executes m's full loop nest on deterministic
// data and checks the result against the untransformed reference execution.
// Use it to confirm that a hand-written or imported mapping computes the
// right answer, not just that it is structurally legal.
func VerifyMapping(m *Mapping) (bool, error) { return exec.Verify(m) }

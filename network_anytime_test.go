package sunstone_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"sunstone"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
)

// smallNet returns three quick-to-map conv shapes for network stress tests.
func smallNet() []sunstone.ConvShape {
	return []sunstone.ConvShape{
		{Name: "a", K: 8, C: 8, P: 14, Q: 14, R: 3, S: 3, StrideH: 1, StrideW: 1},
		{Name: "b", K: 16, C: 8, P: 7, Q: 7, R: 3, S: 3, StrideH: 1, StrideW: 1},
		{Name: "c", K: 8, C: 16, P: 7, Q: 7, R: 1, S: 1, StrideH: 1, StrideW: 1},
	}
}

// poisonProbe panics on every evaluation of the targeted layer's workload —
// injected cost-model failure confined to one layer.
type poisonProbe struct{ layer string }

func (p poisonProbe) BeforeEvaluate(m *mapping.Mapping) {
	if m.Workload.Name == p.layer {
		panic("injected fault in layer " + p.layer)
	}
}

func poisonedOptions(layer string) sunstone.Options {
	model := cost.Default
	model.Probe = poisonProbe{layer: layer}
	return sunstone.Options{Model: model}
}

func TestScheduleNetworkPanicIsolatedToOneLayer(t *testing.T) {
	before := runtime.NumGoroutine()
	sched, err := sunstone.ScheduleNetworkContext(context.Background(), "net", smallNet(), 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{Options: poisonedOptions("b"), ContinueOnError: true})
	if err == nil {
		t.Fatal("poisoned layer must surface as an error")
	}
	if !strings.Contains(err.Error(), "injected fault in layer b") {
		t.Errorf("error lost the panic cause: %v", err)
	}
	if sched.Failed != 1 {
		t.Errorf("Failed = %d, want exactly the poisoned layer", sched.Failed)
	}
	for _, l := range sched.Layers {
		switch l.Layer {
		case "b":
			if l.Err == nil {
				t.Error("poisoned layer b has no error")
			}
		default:
			if l.Err != nil || l.Result.Mapping == nil {
				t.Errorf("layer %s should survive a sibling's poisoned model: err=%v", l.Layer, l.Err)
			}
		}
	}
	if sched.TotalEnergyPJ <= 0 || sched.TotalCycles <= 0 {
		t.Error("totals should cover the surviving layers")
	}
	// No goroutines may leak across the failed schedule.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestScheduleNetworkFailFastCancelsSiblings(t *testing.T) {
	sched, err := sunstone.ScheduleNetworkContext(context.Background(), "net", smallNet(), 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{Options: poisonedOptions("a")})
	if err == nil {
		t.Fatal("fail-fast schedule with a poisoned layer must error")
	}
	if !strings.Contains(err.Error(), "a: ") {
		t.Errorf("error should name the failed layer: %v", err)
	}
	var failed int
	for _, l := range sched.Layers {
		if l.Err != nil {
			failed++
			continue
		}
		// Siblings either finished before the cancellation or degraded to
		// their best-so-far mapping — never a panic, never a nil result
		// without an error.
		if l.Result.Mapping == nil {
			t.Errorf("layer %s: no error but no mapping either", l.Layer)
		}
	}
	if failed != sched.Failed {
		t.Errorf("Failed = %d but %d layers carry errors", sched.Failed, failed)
	}
}

func TestScheduleNetworkAllLayersPoisoned(t *testing.T) {
	model := cost.Default
	model.Probe = poisonProbe{layer: "a"}
	shapes := smallNet()[:1]
	sched, err := sunstone.ScheduleNetworkContext(context.Background(), "net", shapes, 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{Options: sunstone.Options{Model: model}, ContinueOnError: true})
	if err == nil || sched.Failed != 1 {
		t.Fatalf("fully poisoned net: err=%v failed=%d", err, sched.Failed)
	}
	if sched.TotalEnergyPJ != 0 || sched.EDP != 0 {
		t.Error("totals must be zero when every layer failed")
	}
}

func TestScheduleNetworkContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sched, err := sunstone.ScheduleNetworkContext(ctx, "net", smallNet(), 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{})
	if err != nil {
		t.Fatalf("canceled schedule should degrade, not fail: %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("canceled schedule took %v", el)
	}
	for _, l := range sched.Layers {
		if l.Result.Stopped != sunstone.StopCanceled {
			t.Errorf("layer %s: Stopped = %v, want canceled", l.Layer, l.Result.Stopped)
		}
		if l.Result.Mapping == nil {
			t.Errorf("layer %s: canceled layer lost its best-so-far mapping", l.Layer)
		}
	}
}

func TestOptimizeFacadeTimeout(t *testing.T) {
	w := sunstone.Conv2D("big", 4, 64, 64, 28, 28, 3, 3, 1, 1)
	res, err := sunstone.Optimize(w, sunstone.Simba(), sunstone.Options{Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != sunstone.StopDeadline {
		t.Fatalf("Stopped = %v, want StopDeadline", res.Stopped)
	}
	if res.Mapping == nil {
		t.Fatal("deadline run lost its best-so-far mapping")
	}
	if verr := res.Mapping.Validate(); verr != nil {
		t.Fatalf("best-so-far mapping invalid: %v", verr)
	}
}

func TestBaselineMapContextDeadline(t *testing.T) {
	w := sunstone.Conv2D("big", 4, 64, 64, 28, 28, 3, 3, 1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	// The slow configuration runs for tens of seconds unbounded, so the
	// 20ms context deadline is what stops it.
	r := sunstone.TimeloopSlow().MapContext(ctx, w, sunstone.Conventional())
	if el := time.Since(start); el > time.Second {
		t.Errorf("deadline-bounded Timeloop ran %v", el)
	}
	if r.Stopped != sunstone.StopDeadline {
		t.Errorf("Stopped = %v, want deadline", r.Stopped)
	}
}

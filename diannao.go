package sunstone

import (
	"sunstone/internal/diannao"
	"sunstone/internal/dncompiler"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// DianNaoRun is the outcome of compiling a mapping to DianNao-style
// instructions and executing it on the event-counting simulator (the
// Section V-D overhead-analysis pipeline).
type DianNaoRun struct {
	// Instructions is the number of 256-bit instructions executed.
	Instructions int64
	// Passes is the number of processing passes (tile load/compute/store
	// rounds).
	Passes int64
	// ReorderWords is the one-time data-layout rearrangement volume.
	ReorderWords int64
	// DRAMReads / DRAMWrites are data words moved across the DRAM boundary.
	DRAMReads, DRAMWrites int64
	MACs                  int64
	Cycles                int64
	// EnergyPJ is the per-component energy breakdown (MAC, DRAM, NBin, SB,
	// NBout, Instr, Reorder) with DRAM-resident instructions.
	EnergyPJ map[string]float64
}

// TotalEnergyPJ sums the breakdown.
func (r DianNaoRun) TotalEnergyPJ() float64 { return diannao.Total(r.EnergyPJ) }

// RunOnDianNao compiles a convolution mapping targeted at the DianNao()
// architecture into the machine's instruction stream and simulates it.
func RunOnDianNao(m *mapping.Mapping) (DianNaoRun, error) {
	sim := diannao.NewSim(diannao.Default())
	sum, err := dncompiler.Compile(m, sim.Exec)
	if err != nil {
		return DianNaoRun{}, err
	}
	if sim.Err() != nil {
		return DianNaoRun{}, sim.Err()
	}
	st := sim.Stats
	return DianNaoRun{
		Instructions: sum.Instructions,
		Passes:       sum.Passes,
		ReorderWords: sum.ReorderWords,
		DRAMReads:    st.DRAMReads,
		DRAMWrites:   st.DRAMWrites,
		MACs:         st.MACs,
		Cycles:       st.Cycles,
		EnergyPJ:     st.Energy(diannao.Default(), true, sum.ReorderWords),
	}, nil
}

// NaiveDianNaoEnergy returns the energy of executing w on the DianNao-like
// machine with no tiling or unrolling: everything streamed from DRAM (the
// Fig. 9a baseline).
func NaiveDianNaoEnergy(w *tensor.Workload) map[string]float64 {
	return dncompiler.NaiveEnergy(w)
}

package sunstone_test

import (
	"context"
	"fmt"
	"testing"

	"sunstone"
	"sunstone/internal/faults"
)

// chaosNet returns two very small conv shapes so a single chaos run is cheap
// enough to repeat hundreds of times.
func chaosNet() []sunstone.ConvShape {
	return []sunstone.ConvShape{
		{Name: "a", K: 4, C: 4, P: 7, Q: 7, R: 3, S: 3, StrideH: 1, StrideW: 1},
		{Name: "b", K: 8, C: 4, P: 4, Q: 4, R: 1, S: 1, StrideH: 1, StrideW: 1},
	}
}

// auditLayer re-checks the resilient guarantee on one mapped layer with
// injection already disarmed: the mapping is structurally valid, the full
// cost model scores it valid, the fast path agrees bit-exactly, and the
// attempt record is coherent with FallbackUsed.
func auditLayer(t *testing.T, run int, l sunstone.LayerSchedule) {
	t.Helper()
	res := l.Result
	if res.Mapping == nil {
		t.Fatalf("run %d layer %s: no mapping", run, l.Layer)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("run %d layer %s: structurally invalid mapping: %v", run, l.Layer, err)
	}
	full := sunstone.Evaluate(res.Mapping)
	if !full.Valid {
		t.Fatalf("run %d layer %s: full evaluation rejects the audited mapping: %v",
			run, l.Layer, full.Invalid)
	}
	edp, energy, cycles, ok := sunstone.EvaluateEDP(res.Mapping)
	if !ok || edp != full.EDP || energy != full.EnergyPJ || cycles != full.Cycles {
		t.Fatalf("run %d layer %s: fast path (%g/%g/%g ok=%v) disagrees with full evaluation (%g/%g/%g)",
			run, l.Layer, edp, energy, cycles, ok, full.EDP, full.EnergyPJ, full.Cycles)
	}
	if len(res.Attempts) == 0 {
		t.Fatalf("run %d layer %s: resilient result recorded no attempts", run, l.Layer)
	}
	last := res.Attempts[len(res.Attempts)-1]
	if last.Err != nil {
		t.Fatalf("run %d layer %s: accepted attempt carries an error: %v", run, l.Layer, last.Err)
	}
	want := res.FallbackUsed
	if want == "" {
		want = "sunstone"
	}
	if last.Mapper != want {
		t.Fatalf("run %d layer %s: accepted attempt mapper %q does not match FallbackUsed %q",
			run, l.Layer, last.Mapper, res.FallbackUsed)
	}
	for _, at := range res.Attempts[:len(res.Attempts)-1] {
		if at.Err == nil {
			t.Fatalf("run %d layer %s: non-final attempt %q recorded no error but was not accepted",
				run, l.Layer, at.Mapper)
		}
	}
}

// TestChaosGuarantee is the headline graceful-degradation property: under a
// 30% uniform fault rate across every injection site (compile errors and
// panics, expansion panics, evaluation panics and latency, memo-read
// corruption, progress-callback panics), every layer of every seeded
// ScheduleNetworkContext run still comes back with an audit-passing mapping
// and a coherent attempt record. The injector is seeded per run, so a failure
// reproduces by its run number.
func TestChaosGuarantee(t *testing.T) {
	runs := 200
	if testing.Short() {
		runs = 25
	}
	shapes := chaosNet()
	a := sunstone.Tiny(256)
	opt := sunstone.NetworkOptions{
		Options:    sunstone.Options{BeamWidth: 4, TilesPerStep: 4, UnrollsPerStep: 3, Threads: 2},
		Resilience: &sunstone.RetryPolicy{},
	}

	var fellBack, retried int
	for run := 0; run < runs; run++ {
		restore := faults.Activate(faults.NewUniform(int64(run), 0.3))
		sched, err := sunstone.ScheduleNetworkContext(context.Background(),
			fmt.Sprintf("chaos-%d", run), shapes, 1, nil, a, opt)
		restore() // disarm before re-auditing, so the checks themselves are clean
		if err != nil {
			t.Fatalf("run %d: schedule failed under 30%% injection: %v", run, err)
		}
		if sched.Failed != 0 {
			t.Fatalf("run %d: %d layers failed under the resilient path", run, sched.Failed)
		}
		for _, l := range sched.Layers {
			if l.Err != nil {
				t.Fatalf("run %d layer %s: %v", run, l.Layer, l.Err)
			}
			auditLayer(t, run, l)
			if l.Result.FallbackUsed != "" {
				fellBack++
			}
			if len(l.Result.Attempts) > 1 {
				retried++
			}
		}
		if sched.TotalEnergyPJ <= 0 || sched.TotalCycles <= 0 || sched.EDP <= 0 {
			t.Fatalf("run %d: degenerate network totals: %+v", run, sched)
		}
	}
	// At a 30% rate the chaos must actually bite: some runs have to retry.
	// (Fallbacks may or may not trigger depending on seeds; retries must.)
	if retried == 0 {
		t.Error("no layer ever needed more than one attempt — injection did not engage")
	}
	t.Logf("chaos: %d runs x %d layers, %d retried, %d fell back", runs, len(shapes), retried, fellBack)
}

// TestChaosDeterministic: the same injector seed must reproduce the same
// attempt shape for a single-layer schedule run serially — the property that
// makes chaos failures debuggable by seed. Everything in this configuration
// is single-threaded (Threads:1 search, innermost-fit fallback); the default
// timeloop-random-lite fallback samples on two internal threads, whose fault
// ordinals interleave nondeterministically, so it is excluded here.
func TestChaosDeterministic(t *testing.T) {
	shapes := chaosNet()[:1]
	a := sunstone.Tiny(256)
	opt := sunstone.NetworkOptions{
		Options:    sunstone.Options{BeamWidth: 4, TilesPerStep: 4, UnrollsPerStep: 3, Threads: 1},
		Resilience: &sunstone.RetryPolicy{Fallbacks: []string{"innermost-fit"}},
	}
	shape := func(seed int64) string {
		restore := faults.Activate(faults.NewUniform(seed, 0.3))
		defer restore()
		sched, err := sunstone.ScheduleNetworkContext(context.Background(), "det", shapes, 1, nil, a, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := sched.Layers[0].Result
		s := fmt.Sprintf("fallback=%q attempts=%d", res.FallbackUsed, len(res.Attempts))
		for _, at := range res.Attempts {
			s += fmt.Sprintf(" %s(err=%v)", at.Mapper, at.Err != nil)
		}
		return s
	}
	for seed := int64(0); seed < 4; seed++ {
		first := shape(seed)
		if again := shape(seed); again != first {
			t.Errorf("seed %d not deterministic:\n  first: %s\n  again: %s", seed, first, again)
		}
	}
}

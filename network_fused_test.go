package sunstone_test

import (
	"context"
	"strings"
	"testing"

	"sunstone"
)

// quickNetOpt keeps the multi-search network tests fast without changing
// what they exercise.
func quickNetOpt(dir sunstone.Options) sunstone.NetworkOptions {
	dir.BeamWidth = 4
	dir.TilesPerStep = 8
	dir.UnrollsPerStep = 1
	dir.Threads = 2
	return sunstone.NetworkOptions{Options: dir}
}

// TestFuseSmoke is the fusion pipeline's end-to-end guarantee on a tiny
// network: the fused schedule never scores worse EDP than the unfused
// baseline solved in the same run, the chosen groups tile the chain, and
// turning fusion off (MaxGroup 1) reproduces the unfused totals exactly.
func TestFuseSmoke(t *testing.T) {
	net := sunstone.TransformerChain(16, 16, 64)
	a := sunstone.Tiny(1024)
	opt := quickNetOpt(sunstone.Options{})

	sched, err := sunstone.ScheduleNetworkFused(context.Background(), net, a, opt, sunstone.FusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Fused {
		t.Fatal("fused scheduler returned an unfused schedule")
	}
	if sched.EDP > sched.UnfusedEDP {
		t.Errorf("fused EDP %v worse than unfused %v", sched.EDP, sched.UnfusedEDP)
	}
	at := 0
	for _, g := range sched.Groups {
		if g.Start != at {
			t.Fatalf("groups do not tile the chain at position %d", at)
		}
		at = g.End
	}
	if want := len(net.Positions()); at != want || len(sched.Layers) != want {
		t.Fatalf("schedule covers %d positions in groups, %d layers, want %d", at, len(sched.Layers), want)
	}

	// Fusion off: the all-singleton cut is the unfused baseline, and the
	// plain per-layer IR scheduler agrees with it bit for bit.
	off, err := sunstone.ScheduleNetworkFused(context.Background(), net, a, opt, sunstone.FusionOptions{MaxGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if off.EDP != off.UnfusedEDP {
		t.Errorf("fusion off: EDP %v != unfused %v", off.EDP, off.UnfusedEDP)
	}
	plain, err := sunstone.NewEngine().ScheduleNetworkIR(context.Background(), net, a, quickNetOpt(sunstone.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalEnergyPJ != off.TotalEnergyPJ || plain.TotalCycles != off.TotalCycles {
		t.Errorf("fusion-off totals (%v, %v) diverge from the per-layer scheduler (%v, %v)",
			off.TotalEnergyPJ, off.TotalCycles, plain.TotalEnergyPJ, plain.TotalCycles)
	}
}

// TestScheduleNetworkIRRepeatsWeighting drives the repeats weighting through
// the IR adapters in both optimization directions: the legacy
// (shapes, repeats) entry point and the direct IR path must agree bit for
// bit, and the totals must be the repeats-weighted sums of the per-layer
// reports.
func TestScheduleNetworkIRRepeatsWeighting(t *testing.T) {
	shapes := sunstone.ResNet18Layers[:3]
	repeats := []int{1, 4, 1}
	a := sunstone.Conventional()
	for _, dir := range []struct {
		name string
		opt  sunstone.Options
	}{
		{"bottom-up", sunstone.Options{Direction: sunstone.BottomUp}},
		{"top-down", sunstone.Options{Direction: sunstone.TopDown, TopDownVisitBudget: 200}},
	} {
		t.Run(dir.name, func(t *testing.T) {
			opt := quickNetOpt(dir.opt)
			legacy, err := sunstone.ScheduleNetworkContext(context.Background(), "head", shapes, 1, repeats, a, opt)
			if err != nil {
				t.Fatal(err)
			}
			net, err := sunstone.FromConvShapes("head", shapes, 1, repeats)
			if err != nil {
				t.Fatal(err)
			}
			ir, err := sunstone.NewEngine().ScheduleNetworkIR(context.Background(), net, a, opt)
			if err != nil {
				t.Fatal(err)
			}
			if legacy.TotalEnergyPJ != ir.TotalEnergyPJ || legacy.TotalCycles != ir.TotalCycles || legacy.EDP != ir.EDP {
				t.Errorf("legacy adapter and IR path diverge: (%v, %v, %v) vs (%v, %v, %v)",
					legacy.TotalEnergyPJ, legacy.TotalCycles, legacy.EDP,
					ir.TotalEnergyPJ, ir.TotalCycles, ir.EDP)
			}
			var wantE, wantC float64
			for i, l := range ir.Layers {
				if l.Repeats != repeats[i] {
					t.Errorf("layer %d repeats = %d, want %d", i, l.Repeats, repeats[i])
				}
				wantE += l.Result.Report.EnergyPJ * float64(l.Repeats)
				wantC += l.Result.Report.Cycles * float64(l.Repeats)
			}
			if ir.TotalEnergyPJ != wantE || ir.TotalCycles != wantC {
				t.Errorf("totals not repeats-weighted: (%v, %v), want (%v, %v)",
					ir.TotalEnergyPJ, ir.TotalCycles, wantE, wantC)
			}
		})
	}
}

// TestScheduleNetworkIRFailFast drives the fail-fast policy through the IR
// path in both optimization directions: an unsolvable layer fails, and its
// failure cancels the sibling search, which classifies as sibling-cancel.
func TestScheduleNetworkIRFailFast(t *testing.T) {
	// MinUtilization 2 is unsatisfiable: the tiny layer fails immediately
	// while the big sibling is still searching under valid options... but
	// options are shared. Instead: a layer whose nil workload errors at
	// once, against a big sibling that needs real search time.
	big := sunstone.ResNet18Layers[1] // conv2_x, 56x56x64: a long search
	bigNet, err := sunstone.FromConvShapes("pair", []sunstone.ConvShape{big}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []struct {
		name string
		opt  sunstone.Options
	}{
		{"bottom-up", sunstone.Options{Direction: sunstone.BottomUp}},
		{"top-down", sunstone.Options{Direction: sunstone.TopDown}},
	} {
		t.Run(dir.name, func(t *testing.T) {
			net := &sunstone.Network{
				Name: "pair",
				Layers: []sunstone.Layer{
					{Name: "bad", Workload: nil, Repeats: 1}, // fails instantly
					bigNet.Layers[0],
				},
			}
			sched, err := sunstone.NewEngine().ScheduleNetworkIR(
				context.Background(), net, sunstone.Conventional(),
				sunstone.NetworkOptions{Options: dir.opt})
			if err == nil {
				t.Fatal("expected the bad layer to fail the schedule")
			}
			if len(sched.Layers) != 2 || sched.Layers[0].Err == nil {
				t.Fatalf("bad layer missing its error: %+v", sched.Layers)
			}
			if sched.Failed == 0 {
				t.Error("Failed counter not incremented")
			}
			if cause := sunstone.CauseOf(sched.Layers[1].Err); sched.Layers[1].Err != nil &&
				cause != sunstone.CauseSiblingCancel {
				t.Errorf("sibling classified as %q, want %q", cause, sunstone.CauseSiblingCancel)
			}
		})
	}
}

// TestNetworkScheduleSerdeRoundTrip: a fused schedule's summary — totals,
// per-layer entries, group structure, failure messages — survives an
// encode/decode round trip under the stamped format, and the legacy
// headerless array still reads as a layer-per-entry schedule.
func TestNetworkScheduleSerdeRoundTrip(t *testing.T) {
	net := sunstone.TransformerChain(16, 16, 64)
	sched, err := sunstone.ScheduleNetworkFused(context.Background(), net,
		sunstone.Tiny(1024), quickNetOpt(sunstone.Options{}), sunstone.FusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := sunstone.EncodeNetworkSchedule(&sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"format": "sunstone/v1"`) {
		t.Error("encoded schedule missing the format stamp")
	}
	back, err := sunstone.DecodeNetworkSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Network != sched.Network || back.Fused != sched.Fused ||
		back.TotalEnergyPJ != sched.TotalEnergyPJ || back.TotalCycles != sched.TotalCycles ||
		back.EDP != sched.EDP || back.UnfusedEDP != sched.UnfusedEDP {
		t.Errorf("summary did not round-trip:\nenc %+v\ndec %+v", sched, back)
	}
	if len(back.Groups) != len(sched.Groups) {
		t.Fatalf("groups: %d != %d", len(back.Groups), len(sched.Groups))
	}
	for i, g := range sched.Groups {
		b := back.Groups[i]
		if b.Start != g.Start || b.End != g.End || b.PinLevel != g.PinLevel ||
			b.EnergyPJ != g.EnergyPJ || b.Cycles != g.Cycles || len(b.Layers) != len(g.Layers) {
			t.Errorf("group %d did not round-trip: %+v vs %+v", i, b, g)
		}
	}
	if len(back.Layers) != len(sched.Layers) {
		t.Fatalf("layers: %d != %d", len(back.Layers), len(sched.Layers))
	}
	for i, l := range sched.Layers {
		b := back.Layers[i]
		if b.Layer != l.Layer || b.Result.Report.EnergyPJ != l.Result.Report.EnergyPJ ||
			b.Result.Report.Cycles != l.Result.Report.Cycles {
			t.Errorf("layer %d did not round-trip: %+v vs %+v", i, b, l)
		}
	}

	// Headerless legacy form: a bare array of layer entries.
	legacy := []byte(`[
		{"layer": "conv1", "repeats": 2, "energy_pj": 10, "cycles": 5, "edp": 50},
		{"layer": "conv2", "error": "search: no feasible candidate"}
	]`)
	ls, err := sunstone.DecodeNetworkSchedule(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Fused || len(ls.Groups) != 0 {
		t.Error("headerless schedule must stay layer-per-entry (unfused)")
	}
	if len(ls.Layers) != 2 || ls.Layers[0].Repeats != 2 || ls.Layers[1].Err == nil {
		t.Errorf("headerless layers mis-decoded: %+v", ls.Layers)
	}
	if ls.TotalEnergyPJ != 20 || ls.TotalCycles != 10 || ls.EDP != 200 || ls.Failed != 1 {
		t.Errorf("headerless totals: %+v", ls)
	}

	// Unknown stamps are rejected.
	if _, err := sunstone.DecodeNetworkSchedule([]byte(`{"format": "sunstone/v9", "network": "x"}`)); err == nil {
		t.Error("unknown format accepted")
	}
}

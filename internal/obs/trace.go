package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects completed spans for export in the Chrome trace-event
// format (the JSON consumed by chrome://tracing and ui.perfetto.dev).
// One Trace spans a whole invocation — a CLI run, a network schedule —
// and is safe for concurrent use: each root span gets its own Chrome
// "thread" row, so the per-layer searches of ScheduleNetwork render as
// parallel tracks.
type Trace struct {
	start   time.Time
	nextTID atomic.Int64

	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one Chrome "complete" (ph=X) or "metadata" (ph=M) event.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// StartRoot opens a top-level span on a fresh Chrome thread row. Use
// Span.Child for everything nested; most callers never call StartRoot
// directly — StartSpan on a context with a Trace does.
func (t *Trace) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	tid := t.nextTID.Add(1)
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
	return &Span{t: t, name: name, tid: tid, start: time.Since(t.start)}
}

// tracePID is the synthetic process id every event carries (the trace spans
// one process).
const tracePID = 1

// Span is one timed region. A nil *Span is valid and inert, so callers can
// unconditionally Child/Arg/End whatever StartSpan returned.
type Span struct {
	t     *Trace
	name  string
	tid   int64
	start time.Duration
	mu    sync.Mutex
	args  map[string]any
	ended bool
}

// Child opens a nested span on the same thread row.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.tid, start: time.Since(s.t.start)}
}

// Arg attaches a key/value pair shown in the trace viewer's detail pane.
// It returns s for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	s.mu.Unlock()
	return s
}

// End closes the span and records it on the trace. End is idempotent; a
// second call is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()
	end := time.Since(s.t.start)
	s.t.mu.Lock()
	s.t.events = append(s.t.events, traceEvent{
		Name: s.name, Ph: "X",
		TS:  float64(s.start.Nanoseconds()) / 1e3,
		Dur: float64((end - s.start).Nanoseconds()) / 1e3,
		PID: tracePID, TID: s.tid, Args: args,
	})
	s.t.mu.Unlock()
}

// chromeTrace is the JSON object format of the trace-event specification
// ({"traceEvents": [...]} — the array format is also legal, but the object
// form lets viewers pick a display unit).
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON renders every recorded span as Chrome trace-event JSON. Spans
// still open are not exported — End them first.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on a nil trace")
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// Events returns the number of recorded events (spans plus metadata).
func (t *Trace) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Context threading. The trace and the current span ride the context, so
// the optimizer, the baselines and the network scheduler join one span tree
// without any signature changes.

type traceKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying t; every StartSpan below it records
// into t. A nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceOf returns the context's trace, or nil.
func TraceOf(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithSpan returns a context whose current span is sp, so StartSpan below it
// creates children of sp. Used when a span must live on its own trace thread
// row (Trace.StartRoot) yet still parent the work under a derived context —
// e.g. ScheduleNetwork giving each concurrent layer its own row. A nil sp
// returns ctx unchanged.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanOf returns the context's current span, or nil.
func SpanOf(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name: a child of the context's current span
// when one exists, else a root on the context's trace. It returns the
// (possibly updated) context and the span; with no trace installed it
// returns ctx unchanged and a nil span, costing two context lookups and
// nothing else.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanOf(ctx); parent != nil {
		sp := parent.Child(name)
		return context.WithValue(ctx, spanKey{}, sp), sp
	}
	t := TraceOf(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := t.StartRoot(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartSpanf is StartSpan with a deferred Sprintf: the name is formatted
// only when a trace is installed, so hot paths pay nothing when tracing is
// off.
func StartSpanf(ctx context.Context, format string, args ...any) (context.Context, *Span) {
	if TraceOf(ctx) == nil {
		return ctx, nil
	}
	return StartSpan(ctx, fmt.Sprintf(format, args...))
}

// Enabled reports whether ctx carries a trace (useful to skip building
// expensive span arguments).
func Enabled(ctx context.Context) bool { return TraceOf(ctx) != nil }

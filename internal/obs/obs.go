// Package obs is the search stack's zero-dependency telemetry layer:
// counters, spans, and progress events for every optimizer entry point.
//
// Three concerns, three primitives:
//
//   - Counter / Registry — atomic, race-clean counts of what a search did
//     (candidates generated, pruned per principle, evaluated, memo-cache
//     hits, beam dedupes). A search owns one Registry; SearchCounters gives
//     the hot paths typed handles so incrementing is one atomic add, and
//     SearchStats is the immutable snapshot published on Result.Stats.
//
//   - Trace / Span — hierarchical timed regions exportable as Chrome
//     trace-event JSON (load the file at chrome://tracing or
//     https://ui.perfetto.dev). Spans thread through context.Context so the
//     whole stack — network scheduler, optimizer, baselines — lands in one
//     trace without new parameters on any signature.
//
//   - ProgressEvent — phase-started / phase-finished / incumbent-improved
//     callbacks at bounded rate, for live tickers and service frontends.
//
// Everything is nil-safe and zero-overhead when disabled: a nil *Trace (or a
// context without one) makes StartSpan return a nil *Span whose methods are
// no-ops, and a nil progress function suppresses event construction
// entirely. Counters are always collected — they are a handful of atomic
// adds per candidate batch, which benchmarks put well under the noise floor
// of a single cost-model evaluation.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a race-clean monotonic counter. The zero value is ready to use;
// embed one wherever a count originates (e.g. the cost session's memo cache)
// and register it into the search's Registry so snapshots see it.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a race-clean instantaneous level (queue depth, running jobs) —
// unlike a Counter it moves both ways. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set pins the gauge to n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// CounterValue is one named counter's snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// Registry is an ordered set of named counters. Registration takes a lock;
// increments on the returned *Counter are lock-free atomic adds, so a search
// registers its counters once up front and the hot paths never contend.
type Registry struct {
	mu     sync.Mutex
	names  []string
	byName map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.byName[name]; ok {
		return c
	}
	c := &Counter{}
	r.byName[name] = c
	r.names = append(r.names, name)
	return c
}

// Register adopts an externally-owned counter (e.g. the cost session's cache
// hit counter) under name, so snapshots include counts that originate
// outside the search loop. Re-registering a name replaces the counter.
func (r *Registry) Register(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		r.names = append(r.names, name)
	}
	r.byName[name] = c
}

// Snapshot returns every counter's current value, sorted by name for
// deterministic rendering.
func (r *Registry) Snapshot() []CounterValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterValue, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, CounterValue{Name: name, Value: r.byName[name].Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Canonical counter names used by the search stack. The search registries
// use exactly these strings, so trace consumers and tests can key on them.
const (
	CtrGenerated       = "cand.generated"
	CtrEvaluated       = "cand.evaluated"
	CtrDeduped         = "cand.deduped"
	CtrSkipped         = "cand.skipped"
	CtrPrunedOrdering  = "pruned.ordering"
	CtrPrunedTiling    = "pruned.tiling"
	CtrPrunedUnrolling = "pruned.unrolling"
	CtrPrunedBound     = "pruned.bound"
	CtrPrunedBeam      = "pruned.beam"
	CtrBoundPruned     = "pruned.analytic"
	CtrCacheHits       = "eval.cache.hits"
	CtrCacheMisses     = "eval.cache.misses"
)

// Canonical counter names of the scheduler service (internal/server): the
// admission/shedding flow, job outcomes, and the overload-protection
// machinery. The service's registry uses exactly these strings, so the
// expvar export, /statz, and tests key on them.
const (
	// CtrSrvAdmitted counts submissions accepted into the job queue.
	CtrSrvAdmitted = "srv.jobs.admitted"
	// CtrSrvShedTenant counts submissions shed by per-tenant token-bucket
	// admission control (429 + Retry-After).
	CtrSrvShedTenant = "srv.shed.tenant-rate"
	// CtrSrvShedQueue counts submissions shed because the bounded job queue
	// was full (429 + Retry-After).
	CtrSrvShedQueue = "srv.shed.queue-full"
	// CtrSrvShedDrain counts submissions rejected while draining (503).
	CtrSrvShedDrain = "srv.shed.draining"
	// CtrSrvDone / CtrSrvFailed / CtrSrvCanceled count terminal job states.
	CtrSrvDone     = "srv.jobs.done"
	CtrSrvFailed   = "srv.jobs.failed"
	CtrSrvCanceled = "srv.jobs.canceled"
	// CtrSrvWatchdog counts stalled searches canceled by the per-job
	// watchdog.
	CtrSrvWatchdog = "srv.watchdog.fired"
	// CtrSrvPanics counts panics recovered by the HTTP handler guard and
	// the job workers (each converted into a structured failure).
	CtrSrvPanics = "srv.panics.recovered"
	// CtrSrvRecovered counts jobs re-admitted or restored from the
	// write-ahead journal at boot.
	CtrSrvRecovered = "srv.jobs.recovered"
	// CtrSrvIdemHit counts submissions answered from an existing job via
	// the Idempotency-Key header instead of being re-admitted.
	CtrSrvIdemHit = "srv.idempotent.replayed"
	// CtrSrvCheckpoint counts best-so-far incumbent checkpoints written to
	// the journal.
	CtrSrvCheckpoint = "srv.journal.checkpoints"
)

// SearchCounters is the typed handle set the optimizer hot paths increment.
// The handles live in a Registry (NewSearchCounters registers them under the
// canonical names), so generic consumers — trace export, the CLI ticker —
// see the same numbers without knowing the struct.
//
// The counters model a disjoint-fate flow over everything the search
// examines: each examined unit is either rejected by a pruning principle
// before a candidate mapping is materialized (PrunedOrdering for
// ordering-trie rejects, PrunedTiling for tiling-tree and factor-enumeration
// rejects, PrunedUnrolling for unrolling-rule and fanout-feasibility
// rejects), removed as a duplicate of an already-queued candidate (Deduped),
// cut before scoring because its admissible analytic lower bound already
// exceeds the incumbent (BoundPruned), scored by the cost model (Evaluated),
// or dropped unevaluated by a cancellation drain (Skipped). Generated counts
// every one of them, so
//
//	Generated = PrunedOrdering + PrunedTiling + PrunedUnrolling + BoundPruned
//	          + Deduped + Evaluated + Skipped
//
// holds at every instant of a search (and Skipped is zero for a run that
// was never canceled; BoundPruned is zero when Options.Analytical bounds are
// off). PrunedBound and PrunedBeam classify the *post*-evaluation beam
// selection — candidates cut by the alpha-beta bound or the beam-width
// truncation; they are subsets of Evaluated and deliberately outside the
// identity above.
type SearchCounters struct {
	Generated       *Counter
	Evaluated       *Counter
	Deduped         *Counter
	Skipped         *Counter
	PrunedOrdering  *Counter
	PrunedTiling    *Counter
	PrunedUnrolling *Counter
	BoundPruned     *Counter
	PrunedBound     *Counter
	PrunedBeam      *Counter
}

// NewSearchCounters registers the canonical search counters in r and
// returns the typed handles.
func NewSearchCounters(r *Registry) *SearchCounters {
	return &SearchCounters{
		Generated:       r.Counter(CtrGenerated),
		Evaluated:       r.Counter(CtrEvaluated),
		Deduped:         r.Counter(CtrDeduped),
		Skipped:         r.Counter(CtrSkipped),
		PrunedOrdering:  r.Counter(CtrPrunedOrdering),
		PrunedTiling:    r.Counter(CtrPrunedTiling),
		PrunedUnrolling: r.Counter(CtrPrunedUnrolling),
		BoundPruned:     r.Counter(CtrBoundPruned),
		PrunedBound:     r.Counter(CtrPrunedBound),
		PrunedBeam:      r.Counter(CtrPrunedBeam),
	}
}

// SearchStats is the immutable snapshot of a search's counters, published as
// Result.Stats. See SearchCounters for the flow identity the fields obey.
type SearchStats struct {
	// Generated counts everything the search examined: enumeration units
	// rejected by a pruning principle plus candidate mappings materialized
	// for scoring.
	Generated uint64
	// Evaluated counts cost-model scorings (memo-cache hits included — a
	// hit is still an evaluation, just a cheap one).
	Evaluated uint64
	// Deduped counts identical partial mappings removed from the beam
	// before the evaluation fan-out.
	Deduped uint64
	// Skipped counts materialized candidates dropped unevaluated by a
	// cancellation drain; zero for a run that completed naturally.
	Skipped uint64
	// PrunedOrdering / PrunedTiling / PrunedUnrolling count enumeration
	// units rejected pre-materialization by the paper's three principles
	// (the ordering trie, the tiling tree plus top-down factor enumeration,
	// and the unrolling rule plus fanout feasibility).
	PrunedOrdering  uint64
	PrunedTiling    uint64
	PrunedUnrolling uint64
	// BoundPruned counts materialized candidates cut *before* evaluation
	// because their admissible analytic lower bound (compulsory traffic +
	// peak-throughput occupancy) already exceeded the incumbent. Part of
	// the Generated identity via Pruned(); zero when analytic bounds are
	// disabled.
	BoundPruned uint64
	// PrunedBound / PrunedBeam count evaluated candidates cut from the beam
	// by the alpha-beta bound and by beam-width truncation. They are
	// subsets of Evaluated, not part of the Generated identity.
	PrunedBound uint64
	PrunedBeam  uint64
	// EvalCacheHits / EvalCacheMisses count lookups in the search-wide
	// memoization cache of the fast-path cost evaluator.
	EvalCacheHits   uint64
	EvalCacheMisses uint64
}

// Pruned is the pre-evaluation prune total: PrunedOrdering + PrunedTiling +
// PrunedUnrolling + BoundPruned. Together with Deduped, Evaluated and
// Skipped it partitions Generated.
func (s SearchStats) Pruned() uint64 {
	return s.PrunedOrdering + s.PrunedTiling + s.PrunedUnrolling + s.BoundPruned
}

// SnapshotSearch reads the canonical counters out of r into a SearchStats.
// Counters a registry never registered read as zero.
func SnapshotSearch(r *Registry) SearchStats {
	get := func(name string) uint64 {
		r.mu.Lock()
		c := r.byName[name]
		r.mu.Unlock()
		if c == nil {
			return 0
		}
		return c.Load()
	}
	return SearchStats{
		Generated:       get(CtrGenerated),
		Evaluated:       get(CtrEvaluated),
		Deduped:         get(CtrDeduped),
		Skipped:         get(CtrSkipped),
		PrunedOrdering:  get(CtrPrunedOrdering),
		PrunedTiling:    get(CtrPrunedTiling),
		PrunedUnrolling: get(CtrPrunedUnrolling),
		BoundPruned:     get(CtrBoundPruned),
		PrunedBound:     get(CtrPrunedBound),
		PrunedBeam:      get(CtrPrunedBeam),
		EvalCacheHits:   get(CtrCacheHits),
		EvalCacheMisses: get(CtrCacheMisses),
	}
}

package obs

import "time"

// ProgressKind classifies a ProgressEvent.
type ProgressKind int

const (
	// PhaseStarted fires when a search phase (a per-level pass, polish,
	// the whole optimization) begins.
	PhaseStarted ProgressKind = iota
	// PhaseFinished fires when that phase ends.
	PhaseFinished
	// IncumbentImproved fires when the best-so-far completed mapping
	// improves; Score/EnergyPJ/Cycles carry the new incumbent's numbers.
	IncumbentImproved
)

func (k ProgressKind) String() string {
	switch k {
	case PhaseFinished:
		return "phase-finished"
	case IncumbentImproved:
		return "incumbent-improved"
	default:
		return "phase-started"
	}
}

// ProgressEvent is one live-progress notification. Events are emitted
// synchronously from the search goroutine that owns the phase, so a
// callback never races with itself and no event can arrive after the
// search entry point has returned.
type ProgressEvent struct {
	Kind ProgressKind
	// Phase names the region ("optimize", "level 1 (GLB)", "polish", ...).
	Phase string
	// Level is the memory level of a per-level phase, -1 otherwise.
	Level int
	// Score is the incumbent objective value (the search's figure of
	// merit; +Inf until the first valid completion). EnergyPJ and Cycles
	// break it down for EDP-family objectives.
	Score    float64
	EnergyPJ float64
	Cycles   float64
	// Generated and Evaluated snapshot the candidate-flow counters at
	// emission time.
	Generated uint64
	Evaluated uint64
	// Elapsed is the wall-clock time since the search started.
	Elapsed time.Duration
	// Incumbent carries the new best-so-far mapping (*mapping.Mapping) on
	// IncumbentImproved events, nil otherwise. Typed any to keep obs free
	// of scheduler dependencies. The mapping is shared with the search —
	// callbacks must treat it as read-only and Clone before retaining it
	// past the callback.
	Incumbent any
}

// ProgressFunc receives progress events. Callbacks run synchronously on the
// search goroutine: keep them fast, and do not call back into the search.
type ProgressFunc func(ProgressEvent)

// Limiter bounds the rate of high-frequency events (incumbent
// improvements). Phase boundaries are not limited — there are only a
// handful per search. The zero value admits everything; set MinInterval to
// throttle. Not safe for concurrent use; the emitting goroutine owns it.
type Limiter struct {
	MinInterval time.Duration
	last        time.Time
}

// Allow reports whether an event at time now may fire, advancing the window
// when it does. The first call always fires.
func (l *Limiter) Allow(now time.Time) bool {
	if l.MinInterval <= 0 {
		return true
	}
	if l.last.IsZero() || now.Sub(l.last) >= l.MinInterval {
		l.last = now
		return true
	}
	return false
}

package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	if r.Counter("a") != a {
		t.Fatal("Counter should return the same handle for the same name")
	}
	a.Inc()
	a.Add(4)
	external := &Counter{}
	external.Add(7)
	r.Register("ext", external)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	// Sorted by name: "a" then "ext".
	if snap[0].Name != "a" || snap[0].Value != 5 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "ext" || snap[1].Value != 7 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
}

func TestCounterRaceClean(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
}

func TestSearchCountersIdentitySnapshot(t *testing.T) {
	r := NewRegistry()
	sc := NewSearchCounters(r)
	sc.Generated.Add(10)
	sc.PrunedOrdering.Add(2)
	sc.PrunedTiling.Add(3)
	sc.PrunedUnrolling.Add(1)
	sc.Deduped.Add(1)
	sc.Evaluated.Add(3)
	st := SnapshotSearch(r)
	if st.Pruned() != 6 {
		t.Errorf("Pruned() = %d, want 6", st.Pruned())
	}
	if st.Generated != st.Pruned()+st.Deduped+st.Evaluated+st.Skipped {
		t.Errorf("identity violated: %+v", st)
	}
}

func TestTraceSpansExportChromeJSON(t *testing.T) {
	tr := NewTrace()
	root := tr.StartRoot("optimize")
	child := root.Child("level 0").Arg("beam", 24)
	time.Sleep(time.Millisecond)
	child.End()
	child.End() // idempotent
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] == "level 0" {
				if dur, _ := ev["dur"].(float64); dur <= 0 {
					t.Errorf("child span has dur %v, want > 0", ev["dur"])
				}
				args, _ := ev["args"].(map[string]any)
				if args["beam"] != float64(24) {
					t.Errorf("child args = %v", args)
				}
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("%d complete events, want 2 (idempotent End)", complete)
	}
	if meta != 1 {
		t.Errorf("%d metadata events, want 1 thread_name", meta)
	}
}

func TestNilTraceAndSpanAreInert(t *testing.T) {
	var tr *Trace
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil trace should yield nil span")
	}
	sp.Child("y").Arg("k", 1).End() // must not panic
	sp.End()
	if tr.Events() != 0 {
		t.Error("nil trace should report 0 events")
	}
}

func TestStartSpanContextThreading(t *testing.T) {
	ctx := context.Background()
	if c2, sp := StartSpan(ctx, "no trace"); sp != nil || c2 != ctx {
		t.Fatal("StartSpan without a trace must be a no-op")
	}
	if Enabled(ctx) {
		t.Fatal("Enabled on bare context")
	}
	tr := NewTrace()
	ctx = WithTrace(ctx, tr)
	if TraceOf(ctx) != tr || !Enabled(ctx) {
		t.Fatal("WithTrace/TraceOf round trip failed")
	}
	ctx1, root := StartSpan(ctx, "root")
	if root == nil || SpanOf(ctx1) != root {
		t.Fatal("root span not installed in context")
	}
	_, child := StartSpanf(ctx1, "child %d", 7)
	if child == nil || child.tid != root.tid {
		t.Fatal("child should share the root's thread row")
	}
	child.End()
	root.End()
	// 1 thread_name + 2 spans.
	if tr.Events() != 3 {
		t.Errorf("trace has %d events, want 3", tr.Events())
	}
	// StartSpanf without a trace formats nothing and returns nil.
	if _, sp := StartSpanf(context.Background(), "x %d", 1); sp != nil {
		t.Error("StartSpanf without a trace should return nil")
	}
}

func TestLimiter(t *testing.T) {
	var l Limiter // zero value admits everything
	now := time.Now()
	if !l.Allow(now) || !l.Allow(now) {
		t.Fatal("zero-value limiter must admit everything")
	}
	l = Limiter{MinInterval: time.Second}
	if !l.Allow(now) {
		t.Fatal("first event must fire")
	}
	if l.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("event inside the window must be suppressed")
	}
	if !l.Allow(now.Add(time.Second)) {
		t.Fatal("event at the window edge must fire")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatal("zero gauge must read 0")
	}
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Errorf("gauge reads %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Errorf("gauge reads %d after Set, want -7", got)
	}
	// Concurrent movement must settle exactly (race-clean both ways).
	g.Set(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Errorf("gauge reads %d after balanced concurrent adds, want 0", got)
	}
}

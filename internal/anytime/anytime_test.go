package anytime

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFromContext(t *testing.T) {
	if r := FromContext(context.Background()); r != Complete {
		t.Errorf("live context: got %v", r)
	}
	if r := FromContext(nil); r != Complete {
		t.Errorf("nil context: got %v", r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := FromContext(ctx); r != Canceled {
		t.Errorf("canceled context: got %v", r)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if r := FromContext(dctx); r != Deadline {
		t.Errorf("expired context: got %v", r)
	}
}

func TestStopReasonStrings(t *testing.T) {
	for want, r := range map[string]StopReason{
		"complete": Complete, "deadline": Deadline, "canceled": Canceled, "budget": Budget,
	} {
		if got := r.String(); got != want {
			t.Errorf("StopReason(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestPollerStrideAndLatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Poller{Ctx: ctx, Every: 4}
	if p.Stop() != Complete {
		t.Fatal("live poller reported a stop")
	}
	cancel()
	// The next three calls fall between strides and still see Complete;
	// the fourth consults the context and latches Canceled forever.
	var last StopReason
	for i := 0; i < 8; i++ {
		last = p.Stop()
	}
	if last != Canceled {
		t.Fatalf("poller never observed the cancel: %v", last)
	}
	if p.Stop() != Canceled {
		t.Fatal("latched poller forgot its stop reason")
	}
}

func TestPanicErrorFrom(t *testing.T) {
	if e := PanicErrorFrom(nil, "op", nil); e != nil {
		t.Fatalf("nil recover value produced an error: %v", e)
	}
	e := PanicErrorFrom("boom", "evaluate candidate", func() string { return "MAPPING" })
	if e == nil {
		t.Fatal("panic value produced no error")
	}
	for _, want := range []string{"evaluate candidate", "boom", "MAPPING"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
	if len(e.Stack) == 0 {
		t.Error("no stack captured")
	}
	var pe *PanicError
	if !errors.As(error(e), &pe) {
		t.Error("PanicError does not satisfy errors.As")
	}
}

func TestPanicErrorFromReproPanics(t *testing.T) {
	e := PanicErrorFrom("boom", "op", func() string { panic("repro also broken") })
	if e == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(e.Repro, "no repro") {
		t.Errorf("broken repro not defaulted: %q", e.Repro)
	}
}

// Package anytime holds the shared vocabulary of the anytime-search
// contract: every entry point of the search stack (the Sunstone optimizer,
// the baseline mappers, the network scheduler) is cancellable, can be
// deadline-bounded, and on early stop returns the best result completed so
// far together with a StopReason instead of discarding work.
//
// The package also provides the panic-isolation primitives that keep one
// poisoned cost-model evaluation from killing a whole search: a recovered
// panic becomes a *PanicError carrying the offending candidate serialized
// for reproduction.
package anytime

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// StopReason records why a search returned.
type StopReason int

const (
	// Complete: the search ran to its natural end (or its result is exact).
	Complete StopReason = iota
	// Deadline: a wall-clock budget (Options.Timeout or a context deadline)
	// expired; the result is the best mapping completed before it did.
	Deadline
	// Canceled: the caller canceled the context; the result is the best
	// mapping completed before the cancellation was observed.
	Canceled
	// Budget: the search exhausted its own enumeration budget (e.g. the
	// top-down visit cap or Timeloop's MaxTime) and settled for the best
	// candidate found within it.
	Budget
)

func (r StopReason) String() string {
	switch r {
	case Deadline:
		return "deadline"
	case Canceled:
		return "canceled"
	case Budget:
		return "budget"
	default:
		return "complete"
	}
}

// Err maps a stop reason back to its canonical sentinel: the context
// package's DeadlineExceeded/Canceled for the context-driven reasons, nil
// for Complete and Budget (which are not context errors). Searches wrap it
// into their stopped-before-any-result errors so callers can classify the
// failure with errors.Is instead of parsing messages.
func (r StopReason) Err() error {
	switch r {
	case Deadline:
		return context.DeadlineExceeded
	case Canceled:
		return context.Canceled
	}
	return nil
}

// FromContext maps the context's error state to a StopReason: Complete while
// ctx is live, Deadline after its deadline passed, Canceled after a cancel.
func FromContext(ctx context.Context) StopReason {
	if ctx == nil {
		return Complete
	}
	switch err := ctx.Err(); {
	case err == nil:
		return Complete
	case errors.Is(err, context.DeadlineExceeded):
		return Deadline
	default:
		return Canceled
	}
}

// Poller amortizes context polling inside tight single-goroutine loops:
// Stop really consults the context only every Every calls (and always on the
// first), then latches the observed reason so subsequent calls are free.
// Not safe for concurrent use; give each goroutine its own Poller.
type Poller struct {
	Ctx   context.Context
	Every uint
	n     uint
	hit   StopReason
}

// Stop returns the latched stop reason, consulting the context at the
// configured stride. Complete means "keep going".
func (p *Poller) Stop() StopReason {
	if p.hit != Complete {
		return p.hit
	}
	every := p.Every
	if every == 0 {
		every = 1
	}
	if p.n%every == 0 {
		p.hit = FromContext(p.Ctx)
	}
	p.n++
	return p.hit
}

// PanicError is a panic recovered from a search worker, converted into a
// per-candidate error so one poisoned evaluation cannot kill the process.
// Repro carries the offending candidate (typically the serialized mapping)
// so the failure can be replayed in isolation.
type PanicError struct {
	// Op names the operation that panicked (e.g. "evaluate candidate").
	Op string
	// Repro is the serialized offending input, for replay.
	Repro string
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic during %s: %v (offending candidate follows)\n%s", e.Op, e.Value, e.Repro)
}

// PanicErrorFrom converts a recover() value into a *PanicError, or nil when
// no panic occurred. repro is called lazily (and guarded) only on an actual
// panic, so the happy path pays nothing for serialization. Use it directly
// inside a deferred function:
//
//	defer func() {
//	    if e := anytime.PanicErrorFrom(recover(), "evaluate", m.String); e != nil {
//	        ...
//	    }
//	}()
func PanicErrorFrom(v any, op string, repro func() string) *PanicError {
	if v == nil {
		return nil
	}
	e := &PanicError{Op: op, Value: v, Stack: debug.Stack(), Repro: "<no repro available>"}
	if repro != nil {
		func() {
			defer func() { recover() }() // a broken candidate may not even serialize
			e.Repro = repro()
		}()
	}
	return e
}

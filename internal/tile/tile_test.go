package tile

import (
	"testing"

	"sunstone/internal/tensor"
)

// fig5Fits reproduces the Fig. 5 example: 1D conv with P=14, K=4, C=4, R=3,
// a unified L1 of 8 entries, xxCR ordering at L2 (grow dims P and K, with C
// and R fixed at 1 in the L1 tile).
func fig5Fits(c Candidate) bool {
	p := get(c, "P")
	k := get(c, "K")
	// ifmap (p+3-1)*1... with R_L1 = 1 the window adds nothing: extent p.
	// weight k*1*1 = k; ofmap k*p.
	return p+k+k*p <= 8
}

func get(c Candidate, d tensor.Dim) int {
	if f, ok := c[d]; ok {
		return f
	}
	return 1
}

func TestFig5MaximalTiles(t *testing.T) {
	cands, stats := Enumerate(Space{
		GrowDims: []tensor.Dim{"K", "P"},
		Quota:    map[tensor.Dim]int{"K": 4, "P": 14, "C": 4, "R": 3},
		Fits:     fig5Fits,
	})
	if len(cands) == 0 {
		t.Fatal("expected maximal tiles")
	}
	for _, c := range cands {
		// Maximal: growing either dim must not fit.
		if fig5Fits(grow(c, "K", 4)) || fig5Fits(grow(c, "P", 14)) {
			t.Errorf("tile %s is not maximal", c.Key())
		}
		if !fig5Fits(c) {
			t.Errorf("tile %s does not fit", c.Key())
		}
		// Only grow dims may exceed 1.
		for d, f := range c {
			if f > 1 && d != "K" && d != "P" {
				t.Errorf("tile %s grew non-grow dim %s", c.Key(), d)
			}
		}
	}
	// The paper's node 12 (K=2, P=2: footprint 2+2+4 = 8) must be among the
	// survivors.
	found := false
	for _, c := range cands {
		if get(c, "K") == 2 && get(c, "P") == 2 {
			found = true
		}
	}
	if !found {
		keys := make([]string, len(cands))
		for i, c := range cands {
			keys[i] = c.Key()
		}
		t.Errorf("K=2,P=2 missing from maximal tiles %v", keys)
	}
	if stats.Survivors != len(cands) {
		t.Error("stats mismatch")
	}
}

// grow returns c with dimension d stepped to the next ladder rung (naive:
// next divisor-ish value), for maximality checking.
func grow(c Candidate, d tensor.Dim, quota int) Candidate {
	out := Candidate{}
	for k, v := range c {
		out[k] = v
	}
	cur := get(c, d)
	for v := cur + 1; v <= quota; v++ {
		if quota%v == 0 || v == quota {
			out[d] = v
			return out
		}
	}
	out[d] = quota
	return out
}

func TestUnitTileDoesNotFit(t *testing.T) {
	cands, _ := Enumerate(Space{
		GrowDims: []tensor.Dim{"K"},
		Quota:    map[tensor.Dim]int{"K": 4},
		Fits:     func(Candidate) bool { return false },
	})
	if cands != nil {
		t.Errorf("expected nil when the unit tile does not fit, got %v", cands)
	}
}

func TestEverythingFitsYieldsFullTile(t *testing.T) {
	cands, _ := Enumerate(Space{
		GrowDims: []tensor.Dim{"K", "P"},
		Quota:    map[tensor.Dim]int{"K": 4, "P": 8},
		Fits:     func(Candidate) bool { return true },
	})
	if len(cands) != 1 {
		t.Fatalf("unbounded memory should give exactly the full tile, got %d", len(cands))
	}
	if get(cands[0], "K") != 4 || get(cands[0], "P") != 8 {
		t.Errorf("full tile = %s, want K=4,P=8", cands[0].Key())
	}
}

func TestEmptyGrowDimsGrowsAll(t *testing.T) {
	cands, _ := Enumerate(Space{
		Quota: map[tensor.Dim]int{"A": 4, "B": 4},
		Fits: func(c Candidate) bool {
			return get(c, "A")*get(c, "B") <= 4
		},
	})
	if len(cands) == 0 {
		t.Fatal("expected candidates")
	}
	for _, c := range cands {
		if get(c, "A")*get(c, "B") != 4 {
			t.Errorf("maximal tile %s should use the full budget", c.Key())
		}
	}
}

func TestLadderHandlesPrimeQuota(t *testing.T) {
	// Quota 7 is prime: the padded ladder must still offer intermediate
	// rungs (2 and 4) so that a 5-entry memory is usable.
	cands, _ := Enumerate(Space{
		GrowDims: []tensor.Dim{"P"},
		Quota:    map[tensor.Dim]int{"P": 7},
		Fits:     func(c Candidate) bool { return get(c, "P") <= 5 },
	})
	if len(cands) != 1 || get(cands[0], "P") != 4 {
		t.Errorf("prime quota should land on padded rung 4, got %v", cands)
	}
}

func TestStatsCountsNodes(t *testing.T) {
	_, stats := Enumerate(Space{
		GrowDims: []tensor.Dim{"K", "P"},
		Quota:    map[tensor.Dim]int{"K": 4, "P": 14, "C": 4, "R": 3},
		Fits:     fig5Fits,
	})
	if stats.NodesVisited < stats.Survivors || stats.NodesVisited == 0 {
		t.Errorf("bad stats %+v", stats)
	}
}

func TestCandidateKey(t *testing.T) {
	if (Candidate{}).Key() != "unit" {
		t.Error("empty candidate key should be 'unit'")
	}
	c := Candidate{"K": 2, "P": 4, "C": 1}
	if c.Key() != "K=2,P=4" {
		t.Errorf("key = %q", c.Key())
	}
}

func TestMaxCandidatesPrefersLargestTiles(t *testing.T) {
	cands, _ := Enumerate(Space{
		GrowDims:      []tensor.Dim{"A", "B"},
		Quota:         map[tensor.Dim]int{"A": 16, "B": 16},
		Fits:          func(c Candidate) bool { return get(c, "A")*get(c, "B") <= 16 },
		MaxCandidates: 2,
	})
	if len(cands) != 2 {
		t.Fatalf("cap not applied: %d", len(cands))
	}
	for _, c := range cands {
		if get(c, "A")*get(c, "B") != 16 {
			t.Errorf("kept a non-maximal-product tile %s", c.Key())
		}
	}
}

func TestMaxNodesBudget(t *testing.T) {
	_, stats := Enumerate(Space{
		GrowDims: []tensor.Dim{"A", "B", "C"},
		Quota:    map[tensor.Dim]int{"A": 64, "B": 64, "C": 64},
		Fits:     func(Candidate) bool { return true },
		MaxNodes: 10,
	})
	if stats.NodesVisited > 12 {
		t.Errorf("budget not honored: %d nodes", stats.NodesVisited)
	}
}

// Package tile implements Sunstone's tiling-tree IR (Section IV-B of the
// paper).
//
// Given a loop ordering chosen for the level above (which decides the
// operand OP temporally reused across tiles), the Tiling Principle says only
// OP's *indexing* dimensions need to be enlarged: enlarging them shrinks the
// upper-level loop bounds that multiply the other tensors' access counts,
// while enlarging any other dimension cannot reduce accesses further.
//
// The tree's root is the smallest tile (every grow dimension at factor 1);
// each child enlarges exactly one grow dimension to the next rung of its
// divisor ladder. A node with at least one child that still fits in the
// level's memory is pruned (the child offers strictly more reuse); nodes
// that do not fit are discarded; the surviving *maximal fitting* tiles are
// the candidates. Nodes reached by enlarging different dimensions are
// incomparable and all kept.
package tile

import (
	"sort"
	"strconv"
	"strings"

	"sunstone/internal/factor"
	"sunstone/internal/tensor"
)

// Candidate is one tile choice: per-dimension temporal factors at the level
// under optimization. Dimensions not present have factor 1.
type Candidate map[tensor.Dim]int

// Key returns a canonical string form for deduplication and test assertions.
func (c Candidate) Key() string {
	ds := make([]string, 0, len(c))
	for d, f := range c {
		if f > 1 {
			ds = append(ds, string(d)+"="+strconv.Itoa(f))
		}
	}
	sort.Strings(ds)
	if len(ds) == 0 {
		return "unit"
	}
	return strings.Join(ds, ",")
}

// Space describes one tiling-tree enumeration.
type Space struct {
	// GrowDims are the dimensions the Tiling Principle allows to grow
	// (indexing dimensions of the reused operand). Empty means all
	// dimensions (no ordering guidance).
	GrowDims []tensor.Dim
	// Quota is the remaining factor budget per dimension (problem bound
	// divided by the extent already fixed at lower levels).
	Quota map[tensor.Dim]int
	// Fits reports whether a tile with the given factors (interpreted on
	// top of the already-fixed lower-level extents) fits the level's
	// buffers.
	Fits func(Candidate) bool
	// FitsVec, when non-nil, is used instead of Fits: ds is the sorted
	// grow-dimension slice (the same backing array every call) and fs the
	// parallel factor vector (1 = not grown). It exists so a caller can
	// probe capacity without the per-node map the Candidate form costs;
	// the walk itself then allocates nothing per node.
	FitsVec func(ds []tensor.Dim, fs []int) bool
	// MinLadderDivisors pads sparse dimensions so the ladder has choices;
	// 0 means the default (6).
	MinLadderDivisors int
	// MaxNodes bounds the tree nodes expanded (0 = default 100000); when
	// exhausted, the maximal tiles found so far are returned.
	MaxNodes int
	// MaxCandidates truncates the result to the largest tiles (by factor
	// product — more intra-tile reuse) when positive.
	MaxCandidates int
	// Ladder, when non-nil, supplies divisor ladders instead of
	// factor.Ladder — typically a compiled problem's memoized table, so
	// repeated enumerations over the same quotas never refactorize. It must
	// return exactly what factor.Ladder(n, minDivisors) would.
	Ladder func(n, minDivisors int) []int
}

// ladderFn resolves an optional injected ladder supplier to factor.Ladder.
func ladderFn(f func(n, minDivisors int) []int) func(n, minDivisors int) []int {
	if f != nil {
		return f
	}
	return factor.Ladder
}

// Stats reports the enumeration effort.
type Stats struct {
	NodesVisited int // tree nodes expanded (fitting or not)
	Survivors    int // maximal fitting tiles returned
}

// Enumerate walks the tiling tree and returns the maximal fitting tiles.
// If even the unit tile does not fit, it returns nil.
//
// The walk itself is allocation-light: nodes are factor vectors over the
// grow dimensions (mutated in place down the DFS and restored on the way
// up), deduplicated by a compact ladder-index byte key; Candidate maps are
// materialized only for the surviving maximal tiles (and, when the caller
// supplies the map-based Fits rather than FitsVec, per capacity probe).
func Enumerate(s Space) ([]Candidate, Stats) {
	var stats Stats
	minDiv := s.MinLadderDivisors
	if minDiv == 0 {
		minDiv = 4
	}
	grow := s.GrowDims
	if len(grow) == 0 {
		for d := range s.Quota {
			grow = append(grow, d)
		}
	}
	sort.Slice(grow, func(i, j int) bool { return grow[i] < grow[j] })

	ladders := make([][]int, len(grow))
	for i, d := range grow {
		q := s.Quota[d]
		if q < 1 {
			q = 1
		}
		ladders[i] = ladderFn(s.Ladder)(q, minDiv)
	}

	fs := make([]int, len(grow))    // current factor per grow dim
	rung := make([]byte, len(grow)) // 1-based ladder position (0 = factor 1)
	for i := range fs {
		fs[i] = 1
	}
	fits := func() bool {
		if s.FitsVec != nil {
			return s.FitsVec(grow, fs)
		}
		c := make(Candidate, len(grow))
		for i, d := range grow {
			if fs[i] > 1 {
				c[d] = fs[i]
			}
		}
		return s.Fits(c)
	}

	if !fits() {
		stats.NodesVisited = 1
		return nil, stats
	}

	maxNodes := s.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100_000
	}
	visited := map[string]bool{}
	var maximal [][]int
	keep := func() { maximal = append(maximal, append([]int(nil), fs...)) }
	var walk func()
	walk = func() {
		key := string(rung)
		if visited[key] {
			return
		}
		visited[key] = true
		stats.NodesVisited++
		if stats.NodesVisited > maxNodes {
			keep() // budget exhausted: keep frontier
			return
		}
		anyChildFits := false
		for i := range grow {
			if stats.NodesVisited > maxNodes {
				break
			}
			ni, next := nextRung(ladders[i], fs[i])
			if next < 0 {
				continue
			}
			prevF, prevR := fs[i], rung[i]
			fs[i], rung[i] = next, byte(ni+1)
			if fits() {
				anyChildFits = true
				walk()
			}
			fs[i], rung[i] = prevF, prevR
		}
		if !anyChildFits {
			keep()
		}
	}
	walk()

	cands := make([]Candidate, len(maximal))
	for i, v := range maximal {
		c := make(Candidate, len(grow))
		for j, d := range grow {
			if v[j] > 1 {
				c[d] = v[j]
			}
		}
		cands[i] = c
	}
	keys := make([]string, len(cands))
	for i, c := range cands {
		keys[i] = c.Key()
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	if s.MaxCandidates > 0 && len(cands) > s.MaxCandidates {
		sort.Slice(order, func(i, j int) bool {
			pi, pj := product(cands[order[i]]), product(cands[order[j]])
			if pi != pj {
				return pi > pj
			}
			return keys[order[i]] < keys[order[j]]
		})
		order = order[:s.MaxCandidates]
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	out := make([]Candidate, len(order))
	for i, oi := range order {
		out[i] = cands[oi]
	}
	stats.Survivors = len(out)
	return out, stats
}

// product is the total factor product of a candidate (a proxy for the
// intra-tile reuse it offers).
func product(c Candidate) int64 {
	p := int64(1)
	for _, f := range c {
		p *= int64(f)
	}
	return p
}

// nextRung returns the index and value of the smallest ladder entry above
// cur, or (-1, -1).
func nextRung(ladder []int, cur int) (int, int) {
	for i, v := range ladder {
		if v > cur {
			return i, v
		}
	}
	return -1, -1
}

// Package tile implements Sunstone's tiling-tree IR (Section IV-B of the
// paper).
//
// Given a loop ordering chosen for the level above (which decides the
// operand OP temporally reused across tiles), the Tiling Principle says only
// OP's *indexing* dimensions need to be enlarged: enlarging them shrinks the
// upper-level loop bounds that multiply the other tensors' access counts,
// while enlarging any other dimension cannot reduce accesses further.
//
// The tree's root is the smallest tile (every grow dimension at factor 1);
// each child enlarges exactly one grow dimension to the next rung of its
// divisor ladder. A node with at least one child that still fits in the
// level's memory is pruned (the child offers strictly more reuse); nodes
// that do not fit are discarded; the surviving *maximal fitting* tiles are
// the candidates. Nodes reached by enlarging different dimensions are
// incomparable and all kept.
package tile

import (
	"fmt"
	"sort"
	"strings"

	"sunstone/internal/factor"
	"sunstone/internal/tensor"
)

// Candidate is one tile choice: per-dimension temporal factors at the level
// under optimization. Dimensions not present have factor 1.
type Candidate map[tensor.Dim]int

// Key returns a canonical string form for deduplication and test assertions.
func (c Candidate) Key() string {
	ds := make([]string, 0, len(c))
	for d, f := range c {
		if f > 1 {
			ds = append(ds, fmt.Sprintf("%s=%d", d, f))
		}
	}
	sort.Strings(ds)
	if len(ds) == 0 {
		return "unit"
	}
	return strings.Join(ds, ",")
}

// Space describes one tiling-tree enumeration.
type Space struct {
	// GrowDims are the dimensions the Tiling Principle allows to grow
	// (indexing dimensions of the reused operand). Empty means all
	// dimensions (no ordering guidance).
	GrowDims []tensor.Dim
	// Quota is the remaining factor budget per dimension (problem bound
	// divided by the extent already fixed at lower levels).
	Quota map[tensor.Dim]int
	// Fits reports whether a tile with the given factors (interpreted on
	// top of the already-fixed lower-level extents) fits the level's
	// buffers.
	Fits func(Candidate) bool
	// MinLadderDivisors pads sparse dimensions so the ladder has choices;
	// 0 means the default (6).
	MinLadderDivisors int
	// MaxNodes bounds the tree nodes expanded (0 = default 100000); when
	// exhausted, the maximal tiles found so far are returned.
	MaxNodes int
	// MaxCandidates truncates the result to the largest tiles (by factor
	// product — more intra-tile reuse) when positive.
	MaxCandidates int
}

// Stats reports the enumeration effort.
type Stats struct {
	NodesVisited int // tree nodes expanded (fitting or not)
	Survivors    int // maximal fitting tiles returned
}

// Enumerate walks the tiling tree and returns the maximal fitting tiles.
// If even the unit tile does not fit, it returns nil.
func Enumerate(s Space) ([]Candidate, Stats) {
	var stats Stats
	minDiv := s.MinLadderDivisors
	if minDiv == 0 {
		minDiv = 4
	}
	grow := s.GrowDims
	if len(grow) == 0 {
		for d := range s.Quota {
			grow = append(grow, d)
		}
	}
	sort.Slice(grow, func(i, j int) bool { return grow[i] < grow[j] })

	ladders := make(map[tensor.Dim][]int, len(grow))
	for _, d := range grow {
		q := s.Quota[d]
		if q < 1 {
			q = 1
		}
		ladders[d] = factor.Ladder(q, minDiv)
	}

	root := Candidate{}
	if !s.Fits(root) {
		stats.NodesVisited = 1
		return nil, stats
	}

	maxNodes := s.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100_000
	}
	visited := map[string]bool{}
	var maximal []Candidate
	var walk func(c Candidate)
	walk = func(c Candidate) {
		key := c.Key()
		if visited[key] {
			return
		}
		visited[key] = true
		stats.NodesVisited++
		if stats.NodesVisited > maxNodes {
			maximal = append(maximal, c) // budget exhausted: keep frontier
			return
		}
		anyChildFits := false
		for _, d := range grow {
			if stats.NodesVisited > maxNodes {
				break
			}
			next := nextRung(ladders[d], cGet(c, d))
			if next < 0 {
				continue
			}
			child := clone(c)
			child[d] = next
			if s.Fits(child) {
				anyChildFits = true
				walk(child)
			}
		}
		if !anyChildFits {
			maximal = append(maximal, c)
		}
	}
	walk(root)

	if s.MaxCandidates > 0 && len(maximal) > s.MaxCandidates {
		sort.Slice(maximal, func(i, j int) bool {
			pi, pj := product(maximal[i]), product(maximal[j])
			if pi != pj {
				return pi > pj
			}
			return maximal[i].Key() < maximal[j].Key()
		})
		maximal = maximal[:s.MaxCandidates]
	}
	sort.Slice(maximal, func(i, j int) bool { return maximal[i].Key() < maximal[j].Key() })
	stats.Survivors = len(maximal)
	return maximal, stats
}

// product is the total factor product of a candidate (a proxy for the
// intra-tile reuse it offers).
func product(c Candidate) int64 {
	p := int64(1)
	for _, f := range c {
		p *= int64(f)
	}
	return p
}

func cGet(c Candidate, d tensor.Dim) int {
	if f, ok := c[d]; ok {
		return f
	}
	return 1
}

func clone(c Candidate) Candidate {
	out := make(Candidate, len(c)+1)
	for d, f := range c {
		out[d] = f
	}
	return out
}

// nextRung returns the smallest ladder value above cur, or -1.
func nextRung(ladder []int, cur int) int {
	for _, v := range ladder {
		if v > cur {
			return v
		}
	}
	return -1
}

package dncompiler

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/diannao"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// handMapping builds a small conv mapping on the DianNao machine by hand:
// on-chip tile K16 C16 (spatially unrolled across the NFU) x P4 Q4 R3 S3,
// DRAM loops over the rest with C outermost-reduction inner.
func handMapping(t *testing.T) *mapping.Mapping {
	t.Helper()
	w := workloads.Conv2D("c", 1, 32, 32, 8, 8, 3, 3, 1, 1)
	a := arch.DianNao()
	m := mapping.New(w, a)
	m.Levels[0].Spatial = map[tensor.Dim]int{"K": 16, "C": 16}
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 4, "Q": 4, "R": 3, "S": 3}
	m.Levels[1].Temporal = map[tensor.Dim]int{"K": 2, "C": 2, "P": 2, "Q": 2}
	m.Levels[1].Order = []tensor.Dim{"C", "K", "P", "Q"} // C innermost: psum reuse
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileRunsOnSimulator(t *testing.T) {
	m := handMapping(t)
	sim := diannao.NewSim(diannao.Default())
	sum, err := Compile(m, sim.Exec)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Err() != nil {
		t.Fatalf("simulator rejected the program: %v", sim.Err())
	}
	if sum.Passes != 16 {
		t.Errorf("passes = %d, want 16 (2*2*2*2 DRAM iterations)", sum.Passes)
	}
	// All MACs executed exactly once.
	if sim.Stats.MACs != m.Workload.MACs() {
		t.Errorf("MACs = %d, want %d", sim.Stats.MACs, m.Workload.MACs())
	}
	if sum.Instructions != sim.Stats.Instructions {
		t.Error("instruction counts disagree")
	}
}

func TestTemporalReuseSkipsLoads(t *testing.T) {
	m := handMapping(t)
	sim := diannao.NewSim(diannao.Default())
	if _, err := Compile(m, sim.Exec); err != nil {
		t.Fatal(err)
	}
	// With C innermost at DRAM, the ofmap tile stays resident across the 2
	// C iterations: ofmap DRAM writes = ofmap size (each tile stored once).
	ofmWords := int64(m.Workload.Tensor(arch.Ofmap).Footprint(m.Workload.FullExtents()))
	if sim.Stats.DRAMWrites != ofmWords {
		t.Errorf("ofmap DRAM writes = %d, want %d (full psum reuse)", sim.Stats.DRAMWrites, ofmWords)
	}
}

func TestPsumReloadWhenReuseDestroyed(t *testing.T) {
	m := handMapping(t)
	m.Levels[1].Order = []tensor.Dim{"K", "P", "Q", "C"} // C outermost: revisit tiles
	sim := diannao.NewSim(diannao.Default())
	if _, err := Compile(m, sim.Exec); err != nil {
		t.Fatal(err)
	}
	ofmWords := int64(m.Workload.Tensor(arch.Ofmap).Footprint(m.Workload.FullExtents()))
	if sim.Stats.DRAMWrites <= ofmWords {
		t.Error("destroying psum reuse must add writeback traffic")
	}
	if sim.Stats.BufReads[diannao.NBout] == 0 {
		t.Error("revisited output tiles must reload partials")
	}
}

func TestInstructionsFarFewerThanMACs(t *testing.T) {
	// The SIMD property of Section V-D: instructions ~ passes, MACs ~ 1e6.
	m := handMapping(t)
	sim := diannao.NewSim(diannao.Default())
	sum, err := Compile(m, sim.Exec)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Instructions*100 > sim.Stats.MACs {
		t.Errorf("instruction overhead too high: %d instrs for %d MACs", sum.Instructions, sim.Stats.MACs)
	}
}

func TestReorderWordsForTiledOperands(t *testing.T) {
	m := handMapping(t)
	sum, err := Compile(m, func(diannao.Instr) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w := m.Workload
	want := int64(w.Tensor(arch.Ifmap).Footprint(w.FullExtents()) + w.Tensor(arch.Weight).Footprint(w.FullExtents()))
	if sum.ReorderWords != want {
		t.Errorf("reorder words = %d, want %d (both inputs tiled)", sum.ReorderWords, want)
	}
}

func TestCompileOptimizedMappingEndToEnd(t *testing.T) {
	// The full Section V-D pipeline: Sunstone finds the mapping, the
	// compiler lowers it, the simulator runs it, and the optimized energy
	// beats naive streaming.
	w := workloads.Conv2D("c", 1, 64, 64, 14, 14, 3, 3, 1, 1)
	a := arch.DianNao()
	res, err := core.Optimize(w, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := diannao.NewSim(diannao.Default())
	sum, err := Compile(res.Mapping, sim.Exec)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Err() != nil {
		t.Fatalf("optimized mapping does not fit the machine: %v", sim.Err())
	}
	opt := diannao.Total(sim.Stats.Energy(diannao.Default(), true, sum.ReorderWords))
	naive := diannao.Total(NaiveEnergy(w))
	if opt >= naive {
		t.Errorf("tiled+unrolled (%.3e pJ) must beat naive streaming (%.3e pJ)", opt, naive)
	}
	t.Logf("naive/optimized energy ratio: %.2fx, %d instructions, %d passes",
		naive/opt, sum.Instructions, sum.Passes)
}

func TestCompileRejectsWrongShape(t *testing.T) {
	w := workloads.MTTKRP("m", 8, 8, 8, 8)
	m := mapping.New(w, arch.DianNao())
	if _, err := Compile(m, func(diannao.Instr) error { return nil }); err == nil {
		t.Error("non-conv workloads must be rejected (no ifmap/weight/ofmap)")
	}
	w2 := workloads.Conv1D("c", 4, 4, 8, 3)
	m2 := mapping.New(w2, arch.Conventional())
	if _, err := Compile(m2, func(diannao.Instr) error { return nil }); err == nil {
		t.Error("non-DianNao architectures must be rejected")
	}
}

func TestNaiveEnergyComponents(t *testing.T) {
	w := workloads.Conv2D("c", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	e := NaiveEnergy(w)
	if e["MAC"] <= 0 || e["DRAM"] <= 0 {
		t.Error("naive energy must have MAC and DRAM components")
	}
	if len(e) != 2 {
		t.Errorf("naive execution spends energy only on MACs and DRAM, got %v", e)
	}
	if e["DRAM"] <= e["MAC"] {
		t.Error("naive streaming must be DRAM-dominated")
	}
}

// Package dncompiler compiles a dataflow mapping for the DianNao-like
// accelerator into the machine's 256-bit instruction stream — the "compiler
// that can generate DianNao-like instructions" of Section V-D.
//
// A *processing pass* loads the operand tiles a mapping assigns to the
// on-chip buffers, runs the FSM-sequenced compute over them, and stores the
// produced outputs (the paper's definition). Instructions are needed only
// when a tile crosses the DRAM boundary; on-chip work needs none. The
// compiler walks the mapping's DRAM-level loop nest, tracks which tiles
// remain resident between passes (temporal reuse), and emits Load/Store
// instructions only for tiles that actually change — plus the one-time data
// reordering traffic needed to make each tiled operand burst-contiguous.
package dncompiler

import (
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/diannao"
	"sunstone/internal/energy"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// Summary reports what the compiler produced.
type Summary struct {
	Instructions int64
	Passes       int64
	// ReorderWords counts the words of each tiled input operand that must
	// be rearranged in DRAM once so tiles can be fetched in bursts.
	ReorderWords int64
}

// Compile walks the DRAM-level loops of m (which must target the DianNao
// architecture: two levels, tensors named ifmap/weight/ofmap) and feeds the
// generated instructions to exec. exec is typically (*diannao.Sim).Exec.
func Compile(m *mapping.Mapping, exec func(diannao.Instr) error) (Summary, error) {
	var sum Summary
	if len(m.Arch.Levels) != 2 {
		return sum, fmt.Errorf("compiler targets the 2-level DianNao machine, got %d levels", len(m.Arch.Levels))
	}
	w := m.Workload
	ifm, wgt, ofm := w.Tensor(arch.Ifmap), w.Tensor(arch.Weight), w.Tensor(arch.Ofmap)
	if ifm == nil || wgt == nil || ofm == nil {
		return sum, fmt.Errorf("workload must have ifmap/weight/ofmap tensors")
	}

	ext0 := m.Extents(0)
	tileWords := map[string]int64{
		arch.Ifmap:  int64(ifm.Footprint(ext0)),
		arch.Weight: int64(wgt.Footprint(ext0)),
		arch.Ofmap:  int64(ofm.Footprint(ext0)),
	}
	tileMACs := int64(1)
	for d := range w.Dims {
		tileMACs *= int64(ext0[d])
	}

	// DRAM loop odometer, innermost-first.
	order := m.EffectiveOrder(1)
	bounds := make([]int64, len(order))
	for i, d := range order {
		bounds[i] = int64(m.Levels[1].T(d))
	}
	idx := make([]int64, len(order))

	tileID := func(t *tensor.Tensor) string {
		id := ""
		for i, d := range order {
			if t.Indexing(d) {
				id += fmt.Sprintf("%d,", idx[i])
			}
		}
		return id
	}

	emit := func(in diannao.Instr) error {
		sum.Instructions++
		return exec(in)
	}

	lastIf, lastW, lastO := "", "", ""
	visited := map[string]bool{}

	done := false
	for !done {
		sum.Passes++
		accumulate := false

		if id := tileID(ifm); id != lastIf {
			if err := emit(diannao.Instr{Op: diannao.Load, Buf: diannao.NBin, Size: tileWords[arch.Ifmap]}); err != nil {
				return sum, err
			}
			lastIf = id
		}
		if id := tileID(wgt); id != lastW {
			if err := emit(diannao.Instr{Op: diannao.Load, Buf: diannao.SB, Size: tileWords[arch.Weight]}); err != nil {
				return sum, err
			}
			lastW = id
		}
		if id := tileID(ofm); id != lastO {
			// Evict the previous output tile; reload partials if this one
			// was started earlier.
			if lastO != "" {
				if err := emit(diannao.Instr{Op: diannao.Store, Size: tileWords[arch.Ofmap]}); err != nil {
					return sum, err
				}
			}
			if visited[id] {
				if err := emit(diannao.Instr{Op: diannao.Load, Buf: diannao.NBout, Size: tileWords[arch.Ofmap]}); err != nil {
					return sum, err
				}
				accumulate = true
			}
			visited[id] = true
			lastO = id
		} else {
			// Same output tile as the previous pass: keep accumulating.
			accumulate = sum.Passes > 1
		}

		if err := emit(diannao.Instr{
			Op: diannao.Compute, MACs: tileMACs,
			OutWords: tileWords[arch.Ofmap], Accumulate: accumulate,
		}); err != nil {
			return sum, err
		}

		// Advance the odometer (innermost first).
		done = true
		for i := range idx {
			idx[i]++
			if idx[i] < bounds[i] {
				done = false
				break
			}
			idx[i] = 0
		}
	}
	if lastO != "" {
		if err := emit(diannao.Instr{Op: diannao.Store, Size: tileWords[arch.Ofmap]}); err != nil {
			return sum, err
		}
	}

	// One-time reordering: each input operand whose tile is a strict
	// sub-block must be laid out tile-contiguously (one DRAM read+write per
	// word, billed in Stats.Energy via ReorderWords).
	full := w.FullExtents()
	for _, t := range []*tensor.Tensor{ifm, wgt} {
		if tileWords[t.Name] < int64(t.Footprint(full)) {
			sum.ReorderWords += int64(t.Footprint(full))
		}
	}
	return sum, nil
}

// NaiveEnergy returns the per-component energy of the Section V-D baseline:
// streaming every operand from DRAM with no tiling or on-chip reuse beyond
// the NFU's own broadcast/adder trees (inputs shared across Tn output lanes,
// partial sums accumulated in the NFU registers across the Ti tree). The
// naive execution spends energy only on MACs and DRAM (Fig. 9a, left bars).
func NaiveEnergy(w *tensor.Workload) map[string]float64 {
	const bits = 16
	macs := float64(w.MACs())
	ofm := w.Tensor(arch.Ofmap)
	outWords := 0.0
	if ofm != nil {
		outWords = float64(ofm.Footprint(w.FullExtents()))
	}
	reads := macs + macs/diannao.Tn // weights once per MAC, inputs broadcast to Tn lanes
	psumTraffic := 2 * (macs/(diannao.Tn*diannao.Ti) - outWords)
	if psumTraffic < 0 {
		psumTraffic = 0
	}
	return map[string]float64{
		"MAC":  macs * energy.MAC(bits),
		"DRAM": (reads + outWords + psumTraffic) * energy.DRAM(bits),
	}
}

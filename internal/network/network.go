// Package network defines the fusion IR the network-scheduling stack is
// built on: a Network is an ordered chain of typed Layer nodes with explicit
// producer→consumer tensor Edges, replacing the stringly (network name,
// shapes, repeats) tuple the per-layer pipeline used to pass around. The IR
// is what both schedulers consume — the unfused per-layer scheduler walks
// Layers independently, and the fusion-aware scheduler additionally walks
// Edges to enumerate contiguous fusion groups whose intermediate tensors
// stay resident on-chip (see internal/core's fused solver and
// cost.Residency).
//
// An Edge carries the inter-layer tile-compatibility constraint: the
// producer's output tensor and the consumer's input tensor name the same
// data (up to the consumer's halo/padding view), so a level that keeps both
// can hand the intermediate over in place. PinLevel resolves where that is
// possible on a concrete architecture; HandoffBytes says how much capacity
// the resident intermediate reserves there.
package network

import (
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// Layer is one node of a Network: a workload plus its back-to-back
// occurrence count in the executed chain.
type Layer struct {
	Name     string
	Workload *tensor.Workload
	// Repeats counts consecutive occurrences of this layer (ResNet-18's
	// conv2_x block appears four times in a row). Values below 1 are kept
	// verbatim for the legacy weighting semantics of the unfused adapter
	// but are rejected by Validate, which the fused scheduler requires.
	Repeats int
}

// Edge is one producer→consumer tensor handoff between chain neighbors:
// layer To consumes layer From's output. From == To is the self-edge of a
// repeated layer (occurrence i feeds occurrence i+1); otherwise To must be
// From+1 — the IR is a chain, not a general DAG.
type Edge struct {
	From, To int
	// FromTensor names the producer's output tensor; ToTensor names the
	// consumer's input tensor reading the same data.
	FromTensor, ToTensor string
}

// Network is an ordered chain of layers with the edges along which fusion is
// legal. Absent edges are forced fusion cuts: consecutive layers without an
// edge never share a group.
type Network struct {
	Name   string
	Layers []Layer
	Edges  []Edge
}

// Position is one executed layer occurrence in chain order (repeats
// expanded).
type Position struct {
	Layer int // index into Layers
	Occ   int // 0-based occurrence within the layer's repeats
}

// Positions expands layer repeats into the explicit executed chain, in
// network order. Repeats below 1 contribute a single position.
func (n *Network) Positions() []Position {
	var out []Position
	for li := range n.Layers {
		rep := n.Layers[li].Repeats
		if rep < 1 {
			rep = 1
		}
		for o := 0; o < rep; o++ {
			out = append(out, Position{Layer: li, Occ: o})
		}
	}
	return out
}

// EdgeBetween returns the edge handing layer from's output to layer to, if
// any. Consecutive chain positions use it with (p.Layer, q.Layer): the
// self-edge when both positions belong to one repeated layer, the cross
// edge otherwise.
func (n *Network) EdgeBetween(from, to int) (Edge, bool) {
	for _, e := range n.Edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

// Validate checks the structural invariants the fused scheduler relies on:
// non-empty chain, valid workloads, positive repeats, chain-shaped edges
// whose endpoint tensors exist with the right polarity, and the tile-
// compatibility constraint that the consumer's input view covers the
// producer's output (equal data up to the consumer's halo/padding).
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("network %q has no layers", n.Name)
	}
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Workload == nil {
			return fmt.Errorf("network %q: layer %d (%s) has no workload", n.Name, i, l.Name)
		}
		if err := l.Workload.Validate(); err != nil {
			return fmt.Errorf("network %q: layer %d (%s): %w", n.Name, i, l.Name, err)
		}
		if l.Repeats < 1 {
			return fmt.Errorf("network %q: layer %d (%s) has repeats %d, must be >= 1",
				n.Name, i, l.Name, l.Repeats)
		}
	}
	seen := map[[2]int]bool{}
	for _, e := range n.Edges {
		if e.From < 0 || e.From >= len(n.Layers) || e.To < 0 || e.To >= len(n.Layers) {
			return fmt.Errorf("network %q: edge %d->%d out of range", n.Name, e.From, e.To)
		}
		if e.To != e.From && e.To != e.From+1 {
			return fmt.Errorf("network %q: edge %d->%d is not chain-shaped (self or next only)",
				n.Name, e.From, e.To)
		}
		if seen[[2]int{e.From, e.To}] {
			return fmt.Errorf("network %q: duplicate edge %d->%d", n.Name, e.From, e.To)
		}
		seen[[2]int{e.From, e.To}] = true
		prod, cons := &n.Layers[e.From], &n.Layers[e.To]
		ft := prod.Workload.Tensor(e.FromTensor)
		if ft == nil || !ft.Output {
			return fmt.Errorf("network %q: edge %d->%d: %q is not an output of layer %s",
				n.Name, e.From, e.To, e.FromTensor, prod.Name)
		}
		tt := cons.Workload.Tensor(e.ToTensor)
		if tt == nil || tt.Output {
			return fmt.Errorf("network %q: edge %d->%d: %q is not an input of layer %s",
				n.Name, e.From, e.To, e.ToTensor, cons.Name)
		}
		pf := ft.Footprint(prod.Workload.FullExtents())
		cf := tt.Footprint(cons.Workload.FullExtents())
		if pf > cf {
			return fmt.Errorf("network %q: edge %s.%s->%s.%s: producer footprint %d exceeds the consumer's input view %d (tile-incompatible handoff)",
				n.Name, prod.Name, e.FromTensor, cons.Name, e.ToTensor, pf, cf)
		}
	}
	return nil
}

// PinLevel returns the outermost on-chip level of a that can hold edge e's
// handoff resident: a level below the top whose bounded buffers keep both
// the producer's output name and the consumer's input name. Returns -1 when
// no such level exists — the edge cannot fuse on this architecture.
func PinLevel(a *arch.Arch, e Edge) int {
	for l := len(a.Levels) - 2; l >= 0; l-- {
		pb := a.Levels[l].BufferFor(e.FromTensor)
		cb := a.Levels[l].BufferFor(e.ToTensor)
		if pb != nil && pb.Bytes > 0 && cb != nil && cb.Bytes > 0 {
			return l
		}
	}
	return -1
}

// HandoffBytes returns the capacity the edge's resident intermediate
// reserves at its pin level: the larger of the producer's full output
// footprint and the consumer's full input view (the consumer may read a
// halo-padded superset), at the wider of the two word widths.
func (n *Network) HandoffBytes(a *arch.Arch, e Edge) int64 {
	prod, cons := &n.Layers[e.From], &n.Layers[e.To]
	fp := prod.Workload.Tensor(e.FromTensor).Footprint(prod.Workload.FullExtents())
	if cf := cons.Workload.Tensor(e.ToTensor).Footprint(cons.Workload.FullExtents()); cf > fp {
		fp = cf
	}
	bits := a.Bits(e.FromTensor)
	if b := a.Bits(e.ToTensor); b > bits {
		bits = b
	}
	return (int64(fp)*int64(bits) + 7) / 8
}

// FromConvShapes builds the conv-chain IR behind the legacy (network,
// shapes, repeats) signature: one layer per shape at the given batch, a
// self-edge for every repeated shape whose output feeds itself (K == C),
// and a cross edge between consecutive shapes whose channels chain
// (K_i == C_{i+1}) and whose spatial geometry consumes the producer's
// output directly — a shrunken consumer view (an unmodeled pooling stage,
// e.g. ResNet's conv1 → conv2_x maxpool) forces a fusion cut instead.
// A nil repeats slice means one occurrence each; a non-nil slice must match
// shapes in length.
func FromConvShapes(name string, shapes []workloads.ConvShape, batch int, repeats []int) (*Network, error) {
	if repeats != nil && len(repeats) != len(shapes) {
		return nil, fmt.Errorf("repeats has %d entries for %d shapes", len(repeats), len(shapes))
	}
	net := &Network{Name: name}
	inH := func(cs workloads.ConvShape) (int, int) {
		return (cs.P-1)*cs.StrideH + cs.R, (cs.Q-1)*cs.StrideW + cs.S
	}
	for i, cs := range shapes {
		rep := 1
		if repeats != nil {
			rep = repeats[i]
		}
		net.Layers = append(net.Layers, Layer{Name: cs.Name, Workload: cs.Inference(batch), Repeats: rep})
		if rep > 1 && cs.K == cs.C {
			if h, w := inH(cs); h >= cs.P && w >= cs.Q {
				net.Edges = append(net.Edges, Edge{From: i, To: i, FromTensor: arch.Ofmap, ToTensor: arch.Ifmap})
			}
		}
		if i+1 < len(shapes) && cs.K == shapes[i+1].C {
			if h, w := inH(shapes[i+1]); h >= cs.P && w >= cs.Q {
				net.Edges = append(net.Edges, Edge{From: i, To: i + 1, FromTensor: arch.Ofmap, ToTensor: arch.Ifmap})
			}
		}
	}
	return net, nil
}

// TransformerChain is the MHA-flavored GEMM→GEMM chain preset: the four
// back-to-back projections of one transformer block — QKV projection,
// attention output projection, FFN up-projection, FFN down-projection —
// over a seq×dModel activation. (The attention score/value contractions
// between the projections reuse the same activations and are elided; this
// is the GEMM chain fusion has to keep on-chip.) Every adjacent pair
// chains (K_i == C_{i+1}), so the whole block is one fusible segment.
func TransformerChain(seq, dModel, dFF int) *Network {
	mk := func(name string, k, c int) Layer {
		return Layer{Name: name, Workload: workloads.FC(name, seq, k, c), Repeats: 1}
	}
	net := &Network{
		Name: "transformer",
		Layers: []Layer{
			mk("qkv_proj", dModel, dModel),
			mk("attn_out", dModel, dModel),
			mk("ffn_up", dFF, dModel),
			mk("ffn_down", dModel, dFF),
		},
	}
	for i := 0; i+1 < len(net.Layers); i++ {
		net.Edges = append(net.Edges, Edge{From: i, To: i + 1, FromTensor: arch.Ofmap, ToTensor: arch.Ifmap})
	}
	return net
}

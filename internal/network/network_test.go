package network

import (
	"strings"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/workloads"
)

func TestFromConvShapesEdges(t *testing.T) {
	net, err := FromConvShapes("resnet18", workloads.ResNet18, 1, []int{1, 4, 1, 1, 3, 1, 1, 3, 1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv1 -> conv2_x crosses ResNet's maxpool (the consumer view shrinks):
	// the edge must be absent, forcing a fusion cut there.
	if _, ok := net.EdgeBetween(0, 1); ok {
		t.Error("conv1->conv2_x edge should be cut by the pooling-geometry check")
	}
	// conv2_x repeats with K == C: the self-edge makes its block fusible.
	if _, ok := net.EdgeBetween(1, 1); !ok {
		t.Error("conv2_x self-edge missing")
	}
	// conv2_x (K=64) -> conv3_1 (C=64) chains directly.
	if _, ok := net.EdgeBetween(1, 2); !ok {
		t.Error("conv2_x->conv3_1 edge missing")
	}
	// conv3_1 (K=128) -> conv3_ds (C=64): channel mismatch, no edge.
	if _, ok := net.EdgeBetween(2, 3); ok {
		t.Error("conv3_1->conv3_ds edge should not exist (K != C)")
	}
	// Positions expand repeats: 1+4+1+1+3+1+1+3+1+1+3 = 20.
	if got := len(net.Positions()); got != 20 {
		t.Errorf("positions: got %d, want 20", got)
	}
}

func TestFromConvShapesRepeatsMismatch(t *testing.T) {
	if _, err := FromConvShapes("x", workloads.ResNet18, 1, []int{1}); err == nil {
		t.Fatal("want repeats-length error")
	}
}

func TestValidateRejectsBadEdges(t *testing.T) {
	base := func() *Network {
		n, err := FromConvShapes("n", workloads.ResNet18[:2], 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, tc := range []struct {
		name string
		edge Edge
		want string
	}{
		{"range", Edge{From: 0, To: 9, FromTensor: arch.Ofmap, ToTensor: arch.Ifmap}, "out of range"},
		{"shape", Edge{From: 1, To: 0, FromTensor: arch.Ofmap, ToTensor: arch.Ifmap}, "chain-shaped"},
		{"polarity", Edge{From: 0, To: 1, FromTensor: arch.Ifmap, ToTensor: arch.Ifmap}, "not an output"},
		{"input", Edge{From: 0, To: 1, FromTensor: arch.Ofmap, ToTensor: arch.Ofmap}, "not an input"},
	} {
		n := base()
		n.Edges = []Edge{tc.edge}
		err := n.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	n := base()
	n.Layers[0].Repeats = 0
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Errorf("zero repeats: got %v", err)
	}
}

func TestPinLevelAndHandoffBytes(t *testing.T) {
	net := TransformerChain(64, 64, 256)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	e, ok := net.EdgeBetween(0, 1)
	if !ok {
		t.Fatal("transformer chain missing edge 0->1")
	}
	// Conventional: the unified L2 (level 1) is the outermost on-chip home.
	if got := PinLevel(arch.Conventional(), e); got != 1 {
		t.Errorf("conventional pin level: got %d, want 1", got)
	}
	// Simba: the global L2 (level 2) keeps ifmap+ofmap (weights bypass it).
	if got := PinLevel(arch.Simba(), e); got != 2 {
		t.Errorf("simba pin level: got %d, want 2", got)
	}
	// 64x64 activations at 16-bit words = 8192 bytes each way.
	if got := net.HandoffBytes(arch.Conventional(), e); got != 64*64*2 {
		t.Errorf("handoff bytes: got %d, want %d", got, 64*64*2)
	}
}

func TestTransformerChainFullyFusible(t *testing.T) {
	net := TransformerChain(512, 512, 2048)
	pos := net.Positions()
	if len(pos) != 4 {
		t.Fatalf("positions: got %d, want 4", len(pos))
	}
	for i := 0; i+1 < len(pos); i++ {
		if _, ok := net.EdgeBetween(pos[i].Layer, pos[i+1].Layer); !ok {
			t.Errorf("missing edge between positions %d and %d", i, i+1)
		}
	}
}

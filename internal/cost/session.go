// Fast-path cost evaluation. A Session precomputes everything about a
// (workload, arch) pair that Evaluate re-derives per call — tensor axis
// structure, keeper chains, per-flow buffer energy coefficients, the
// component and access-slot tables behind the Breakdown/Accesses maps — and
// an Evaluator owns reusable scratch so scoring a mapping allocates nothing
// in steady state. EvaluateEDP returns exactly the numbers Evaluate would
// (bit-for-bit: the same arithmetic in the same order), minus the Report
// maps the search never reads; the full Evaluate remains for final mappings
// and the CLI.
//
// On top of the scalar path sits a search-wide memoization cache keyed by a
// canonical 128-bit fingerprint of the mapping (per level: the effective
// order of bound>1 temporal loops, every temporal bound, every spatial
// factor). Hill-climb polish and the beam revisit the same completed
// mappings heavily; a cache hit returns the memoized scalars without
// touching the model.
package cost

import (
	"fmt"
	"strings"
	"sync"

	"sunstone/internal/arch"
	"sunstone/internal/faults"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/tensor"
)

// Key is the canonical 128-bit fingerprint of a mapping's (ordering, tile,
// unroll) content for a fixed (workload, arch) Session. Two mappings with
// equal Keys are scored identically by the cost model (the fingerprint
// canonicalizes away differences the model cannot observe, such as the
// relative order of bound-1 loops), so Keys double as dedup handles for the
// search's candidate sets.
type Key struct{ Hi, Lo uint64 }

// cacheEntry memoizes one evaluation's scalar results.
type cacheEntry struct {
	edp, energy, cycles float64
	valid               bool
}

const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[Key]cacheEntry
}

// termPlan is one summand of an axis index expression, with the dimension
// resolved to its Session index.
type termPlan struct {
	dim    int
	stride int
}

type axisPlan struct {
	terms []termPlan
}

// flowPlan is one tensor's traffic between adjacent keeper levels (or the
// MAC datapath, child == -1), with component/slot indices and buffer energy
// coefficients resolved at build time.
type flowPlan struct {
	child, parent int
	pReadPJ       float64
	pWritePJ      float64
	cReadPJ       float64
	cWritePJ      float64
	pComp, cComp  int
	pSlot, cSlot  int
}

// tensorPlan is the per-tensor precomputation: axis structure, indexing and
// window-only dimension sets, and the keeper-pair flows.
type tensorPlan struct {
	output   bool
	axes     []axisPlan
	indexing []bool // by dim index: does the dim appear in any axis?
	winOnly  []bool // by dim index: windowOnly(t, d)
	flows    []flowPlan
}

// slotPlan resolves one "level/buffer/tensor" access key the way the legacy
// cycles() does — by re-splitting the rendered string — so bandwidth
// attribution is identical even for degenerate names.
type slotPlan struct {
	lvl             int // -1: unresolvable key, skipped by cycles
	readBW, writeBW float64
	resolved        bool
}

// capPlan is one bounded buffer's capacity check at one level.
type capPlan struct {
	lvl     int
	capBits int64
	tensors []int // tensor indices held by this buffer
}

// Session holds the per-(workload, arch) precomputation shared by all
// Evaluators of one search, plus the search-wide memoization cache. A
// Session is immutable after NewSession and safe for concurrent use.
type Session struct {
	model Model
	w     *tensor.Workload
	a     *arch.Arch

	dims    []tensor.Dim // w.Order (canonical)
	dimIdx  map[tensor.Dim]int
	bounds  []int // problem bound per dim
	nLevels int

	tensors []tensorPlan
	caps    []capPlan
	redDims []int  // reduction dimension indices
	noSR    []bool // per level: !AllowSpatialReduction
	fanout  []int

	macPJ    float64
	levels   []levelCoef
	compMAC  int
	compNoC  int
	compSR   int
	nComps   int
	sumOrder []int // component indices in sorted-name order (EnergyPJ sum)
	slots    []slotPlan

	// Admissible lower-bound tables (see LowerBound), built once by
	// buildLowerBound from compulsory traffic and peak-throughput
	// occupancy. They depend only on the problem, never on a mapping.
	lbMacsU      float64 // unpadded MAC count (Π problem bounds)
	lbEnergyPJ   float64 // energy floor: MACs + compulsory buffer traffic
	lbXferCycles float64 // cycle floor from bandwidth on compulsory traffic
	lbMaxSpatial float64 // Π fanouts — the most parallelism any mapping has

	shards       [cacheShards]cacheShard
	hits, misses obs.Counter
}

// levelCoef caches the per-level NoC coefficients.
type levelCoef struct {
	noCPerWordPJ    float64
	noCTagCheckPJ   float64
	spatialReducePJ float64
}

// NewSession precomputes the fast-path tables for mapping w onto a. The
// workload and arch must be structurally valid (every tensor kept at the
// top level — what arch.Validate guarantees); they are treated as immutable
// for the Session's lifetime.
func (mo Model) NewSession(w *tensor.Workload, a *arch.Arch) *Session {
	s := &Session{
		model:   mo,
		w:       w,
		a:       a,
		dims:    w.Order,
		dimIdx:  make(map[tensor.Dim]int, len(w.Order)),
		bounds:  make([]int, len(w.Order)),
		nLevels: len(a.Levels),
		macPJ:   a.MACPJ,
	}
	for i, d := range s.dims {
		s.dimIdx[d] = i
		s.bounds[i] = w.Dims[d]
	}
	for _, d := range w.ReductionDims() {
		s.redDims = append(s.redDims, s.dimIdx[d])
	}
	s.noSR = make([]bool, s.nLevels)
	s.fanout = make([]int, s.nLevels)
	s.levels = make([]levelCoef, s.nLevels)
	for l := 0; l < s.nLevels; l++ {
		al := &a.Levels[l]
		s.noSR[l] = !al.AllowSpatialReduction
		s.fanout[l] = al.Fanout
		s.levels[l] = levelCoef{
			noCPerWordPJ:    al.NoCPerWordPJ,
			noCTagCheckPJ:   al.NoCTagCheckPJ,
			spatialReducePJ: al.SpatialReducePJ,
		}
	}

	compIdx := map[string]int{}
	var compNames []string
	comp := func(name string) int {
		if i, ok := compIdx[name]; ok {
			return i
		}
		i := len(compNames)
		compIdx[name] = i
		compNames = append(compNames, name)
		return i
	}
	s.compMAC = comp("MAC")
	s.compNoC = comp("NoC")
	s.compSR = comp("SpatialReduce")

	slotIdx := map[string]int{}
	slot := func(lvl int, bufName, tName string) int {
		key := fmt.Sprintf("%s/%s/%s", a.Levels[lvl].Name, bufName, tName)
		if i, ok := slotIdx[key]; ok {
			return i
		}
		// Resolve exactly like the legacy cycles(): split the rendered key
		// and look the pieces back up; an ambiguous or unresolvable key
		// (names containing '/', duplicate level names) degrades the same
		// way it always did.
		parts := strings.SplitN(key, "/", 3)
		p := slotPlan{lvl: -1}
		if li := levelIndexByName(a, parts[0]); li >= 0 {
			if buf := a.Levels[li].BufferFor(parts[2]); buf != nil {
				p = slotPlan{lvl: li, readBW: buf.ReadBW, writeBW: buf.WriteBW, resolved: true}
			}
		}
		i := len(s.slots)
		slotIdx[key] = i
		s.slots = append(s.slots, p)
		return i
	}

	// Capacity checks: every bounded buffer below the top level, with the
	// tensors it holds (Holds implies Keeps at that level, so the legacy
	// heldHere conjunction reduces to Holds).
	for lvl := 0; lvl < s.nLevels-1; lvl++ {
		al := &a.Levels[lvl]
		for bi := range al.Buffers {
			buf := &al.Buffers[bi]
			if buf.Bytes == 0 {
				continue
			}
			cp := capPlan{lvl: lvl, capBits: buf.Bytes * 8}
			for ti, t := range w.Tensors {
				if buf.Holds(t.Name) {
					cp.tensors = append(cp.tensors, ti)
				}
			}
			s.caps = append(s.caps, cp)
		}
	}

	// Per-tensor plans, in w.Tensors order (the Breakdown accumulation
	// order Evaluate uses).
	nd := len(s.dims)
	for _, t := range w.Tensors {
		tp := tensorPlan{
			output:   t.Output,
			indexing: make([]bool, nd),
			winOnly:  make([]bool, nd),
		}
		for i, d := range s.dims {
			tp.indexing[i] = t.Indexing(d)
			tp.winOnly[i] = windowOnly(t, d)
		}
		for _, ax := range t.Axes {
			ap := axisPlan{terms: make([]termPlan, len(ax))}
			for i, term := range ax {
				ap.terms[i] = termPlan{dim: s.dimIdx[term.D], stride: term.Stride}
			}
			tp.axes = append(tp.axes, ap)
		}
		var keepers []int
		for l := 0; l < s.nLevels; l++ {
			if a.Levels[l].Keeps(t.Name) {
				keepers = append(keepers, l)
			}
		}
		// Residency truncation mirrors Flows exactly; buildLowerBound walks
		// these flow plans, so the lower bound inherits the truncation and
		// stays admissible for the resident problem.
		keepers = mo.residentKeepers(t.Name, keepers)
		mkFlow := func(child, parent int) flowPlan {
			pbuf := a.Levels[parent].BufferFor(t.Name)
			fl := flowPlan{
				child: child, parent: parent,
				pReadPJ: pbuf.ReadPJ, pWritePJ: pbuf.WritePJ,
				pComp: comp(pbuf.Name),
				pSlot: slot(parent, pbuf.Name, t.Name),
				cComp: -1, cSlot: -1,
			}
			if child >= 0 {
				cbuf := a.Levels[child].BufferFor(t.Name)
				fl.cReadPJ, fl.cWritePJ = cbuf.ReadPJ, cbuf.WritePJ
				fl.cComp = comp(cbuf.Name)
				fl.cSlot = slot(child, cbuf.Name, t.Name)
			}
			return fl
		}
		tp.flows = append(tp.flows, mkFlow(-1, keepers[0]))
		for i := 0; i+1 < len(keepers); i++ {
			tp.flows = append(tp.flows, mkFlow(keepers[i], keepers[i+1]))
		}
		s.tensors = append(s.tensors, tp)
	}

	// EnergyPJ sums Breakdown entries in sorted component-name order; adding
	// a component that Evaluate would have left absent contributes +0.0,
	// which cannot change the bits of a sum of non-negative terms.
	s.nComps = len(compNames)
	s.sumOrder = make([]int, s.nComps)
	order := append([]string(nil), compNames...)
	insertionSortStrings(order)
	for i, name := range order {
		s.sumOrder[i] = compIdx[name]
	}

	for i := range s.shards {
		s.shards[i].m = make(map[Key]cacheEntry)
	}
	s.buildLowerBound()
	return s
}

// lbSlack shaves a relative epsilon off the lower-bound tables so that
// floating-point summation-order differences between the bound and the real
// evaluation can never push the bound above a true cost. The admissibility
// argument is exact in real arithmetic; the slack only absorbs ulp-level
// rounding and is far below anything the search could act on.
const lbSlack = 1 - 1e-9

// buildLowerBound precomputes the admissible cost floor consulted by
// LowerBound. Every term is a provable under-approximation of what compute()
// charges for ANY valid mapping of the problem:
//
//   - MAC energy: compute() charges PaddedMACs × macPJ; the unpadded product
//     of problem bounds (macsU) never exceeds PaddedMACs.
//   - Datapath flows: compute() moves macs/mergeWidth words at the innermost
//     keeper. mergeWidth is a product of spatial factors, capped by the
//     fanout product of the levels at or below the keeper — and, for a
//     tensor whose non-indexing dimensions are all reduction dimensions
//     (the usual single-output case), only AllowSpatialReduction levels can
//     contribute, because noSR levels force reduction spatial factors to 1.
//   - Keeper-pair flows: every distinct element of a tensor must cross each
//     keeper pair at least once (sliding-window reuse removes only repeat
//     fetches), so child-side traffic is at least the unpadded footprint
//     fpFull, and parent-side reads at least fpFull divided by the maximal
//     multicast width between the two levels. Output partial-sum round
//     trips are bounded below by zero.
//   - NoC and spatial-reduce energy are non-negative extras: floor zero.
//   - Cycles: compute cycles are at least macsU / (total spatial), and each
//     resolved slot needs its compulsory traffic through its bandwidth at
//     the maximal instance count (fanout product strictly above the level).
func (s *Session) buildLowerBound() {
	top := s.nLevels - 1
	if top < 0 {
		return
	}

	macsU := 1.0
	for _, b := range s.bounds {
		macsU *= float64(b)
	}

	isRed := make([]bool, len(s.dims))
	for _, ri := range s.redDims {
		isRed[ri] = true
	}

	// fanPrefix[l]: max spatial product over levels [0..l]; fanPrefixSR[l]:
	// the same counting only AllowSpatialReduction levels.
	fanPrefix := make([]float64, s.nLevels)
	fanPrefixSR := make([]float64, s.nLevels)
	accP, accSR := 1.0, 1.0
	for l := 0; l < s.nLevels; l++ {
		accP *= float64(s.fanout[l])
		if !s.noSR[l] {
			accSR *= float64(s.fanout[l])
		}
		fanPrefix[l] = accP
		fanPrefixSR[l] = accSR
	}
	s.lbMaxSpatial = fanPrefix[top]

	// instMax[l]: maximal instance count of a level-l slot — the fanout
	// product strictly above l (cycles()'s e.inst with every fanout used).
	instMax := make([]float64, s.nLevels)
	acc := 1.0
	for l := top; l >= 0; l-- {
		instMax[l] = acc
		acc *= float64(s.fanout[l])
	}

	readsLB := make([]float64, len(s.slots))
	writesLB := make([]float64, len(s.slots))
	energy := macsU * s.macPJ

	for ti := range s.tensors {
		tp := &s.tensors[ti]

		// fpFull: footprint over the unpadded problem bounds — the distinct
		// elements every flow of this tensor must move at least once.
		fp := 1.0
		for ai := range tp.axes {
			ex := 1
			for _, t := range tp.axes[ai].terms {
				ex += t.stride * (s.bounds[t.dim] - 1)
			}
			fp *= float64(ex)
		}

		// srCapped: every non-indexing dim is a reduction dim, so the
		// tensor's merge width can only grow at SR-allowing levels.
		srCapped := true
		for i := range s.dims {
			if !tp.indexing[i] && !isRed[i] {
				srCapped = false
				break
			}
		}

		for fi := range tp.flows {
			fl := &tp.flows[fi]
			if fl.child < 0 {
				// Datapath flow at the innermost keeper.
				mergeCap := fanPrefix[fl.parent]
				if srCapped {
					mergeCap = fanPrefixSR[fl.parent]
				}
				v := macsU / mergeCap
				if tp.output {
					// psum re-reads equal the writes in account().
					readsLB[fl.pSlot] += v
					writesLB[fl.pSlot] += v
					energy += v * (fl.pReadPJ + fl.pWritePJ)
				} else {
					readsLB[fl.pSlot] += v
					energy += v * fl.pReadPJ
				}
				continue
			}
			// Keeper-pair flow (child, parent): mc is the maximal multicast
			// (input) width between the levels.
			mc := fanPrefix[fl.parent] / fanPrefix[fl.child]
			if tp.output {
				// Writeback: ≥ fpFull words written to the parent, each
				// drained through the child at least once.
				writesLB[fl.pSlot] += fp
				readsLB[fl.cSlot] += fp
				energy += fp * (fl.pWritePJ + fl.cReadPJ)
			} else {
				// Fill: ≥ fpFull words into the child, sourced by at least
				// fpFull/mc parent reads.
				readsLB[fl.pSlot] += fp / mc
				writesLB[fl.cSlot] += fp
				energy += fp/mc*fl.pReadPJ + fp*fl.cWritePJ
			}
		}
	}

	worst := 0.0
	for si := range s.slots {
		sp := &s.slots[si]
		if !sp.resolved {
			continue
		}
		var t float64
		if sp.readBW > 0 {
			t += readsLB[si] / (sp.readBW * instMax[sp.lvl])
		}
		if sp.writeBW > 0 {
			t += writesLB[si] / (sp.writeBW * instMax[sp.lvl])
		}
		if t > worst {
			worst = t
		}
	}

	s.lbMacsU = macsU * lbSlack
	s.lbEnergyPJ = energy * lbSlack
	s.lbXferCycles = worst * lbSlack
}

// LowerBound returns an admissible floor on (EnergyPJ, Cycles) for any valid
// completion of a mapping whose total spatial parallelism cannot exceed
// maxSpatial: no valid mapping of the Session's problem — however it tiles,
// orders, or unrolls — evaluates below these numbers in either component.
// Pass maxSpatial <= 0 (or anything above the fanout product) for the
// problem-wide bound.
func (s *Session) LowerBound(maxSpatial float64) (energyPJ, cycles float64) {
	if maxSpatial <= 0 || maxSpatial > s.lbMaxSpatial {
		maxSpatial = s.lbMaxSpatial
	}
	cycles = s.lbMacsU / maxSpatial
	if s.lbXferCycles > cycles {
		cycles = s.lbXferCycles
	}
	return s.lbEnergyPJ, cycles
}

// insertionSortStrings avoids importing sort for one tiny build-time sort.
func insertionSortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// CacheStats returns the memoization cache's hit and miss counts so far.
func (s *Session) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// CacheCounters exposes the live cache hit/miss counters so a search can
// adopt them into its telemetry registry (obs.Registry.Register) and stream
// the hit rate mid-run instead of waiting for a final CacheStats snapshot.
func (s *Session) CacheCounters() (hits, misses *obs.Counter) {
	return &s.hits, &s.misses
}

// lookup consults the memo cache, charging the outcome to the Session's
// lifetime counters and — when the Evaluator has been wired with
// CountCacheInto — to the per-run counters as well, so a search on a shared
// (Engine-cached) Session still reports its own hit rate.
func (e *Evaluator) lookup(k Key) (cacheEntry, bool) {
	s := e.s
	sh := &s.shards[k.Hi%cacheShards]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		s.hits.Add(1)
		if e.hits != nil {
			e.hits.Add(1)
		}
	} else {
		s.misses.Add(1)
		if e.misses != nil {
			e.misses.Add(1)
		}
	}
	return v, ok
}

func (s *Session) store(k Key, e cacheEntry) {
	sh := &s.shards[k.Hi%cacheShards]
	sh.mu.Lock()
	sh.m[k] = e
	sh.mu.Unlock()
}

// EvaluateEDP is a convenience that builds a throwaway Session; hot callers
// (searches) should hold one Session per (workload, arch) and one Evaluator
// per worker instead.
func (mo Model) EvaluateEDP(m *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool) {
	return mo.NewSession(m.Workload, m.Arch).NewEvaluator().EvaluateEDP(m)
}

// snapshot outcome classification.
type snapResult int

const (
	snapOK    snapResult = iota
	snapBad              // a raw factor < 1: Validate fails, but the T/S view cannot see it — uncacheable
	snapStray            // a spatial factor > 1 on a non-workload dimension: fall back to Evaluate
)

// Evaluator owns the mutable scratch for scoring mappings against one
// Session. It is NOT safe for concurrent use; create one per worker
// goroutine (Session.NewEvaluator is cheap and the Session itself is
// shared).
type Evaluator struct {
	s *Session

	// Per-run cache attribution (see CountCacheInto); nil = Session-only.
	hits, misses *obs.Counter

	// Snapshot of the mapping under evaluation (filled by snapshot()).
	tb    []int   // nLevels x nDims temporal bounds (the T() view)
	sf    []int   // nLevels x nDims spatial factors (the S() view)
	eo    []int32 // nLevels x nDims effective order of bound>1 temporal loops
	eoLen []int
	spIdx []int32 // per-level spatial entries with s>1: dim indices...
	spS   []int64 // ...and factors
	spOff []int   // level l's entries are spIdx/spS[spOff[l]:spOff[l+1]]
	seen  []bool

	// Evaluation scratch.
	cum   []int // nLevels x nDims cumulative extents (Extents at each level)
	ext   []int // per-flow working extents
	loopD []int32
	loopB []int
	bd    []float64
	acc   []Access
	inst  []float64
}

// NewEvaluator returns a fresh Evaluator with all scratch preallocated.
func (s *Session) NewEvaluator() *Evaluator {
	nd, nl := len(s.dims), s.nLevels
	return &Evaluator{
		s:     s,
		tb:    make([]int, nl*nd),
		sf:    make([]int, nl*nd),
		eo:    make([]int32, nl*nd),
		eoLen: make([]int, nl),
		spIdx: make([]int32, nl*nd),
		spS:   make([]int64, nl*nd),
		spOff: make([]int, nl+1),
		seen:  make([]bool, nd),
		cum:   make([]int, nl*nd),
		ext:   make([]int, nd),
		loopD: make([]int32, nl*nd),
		loopB: make([]int, nl*nd),
		bd:    make([]float64, s.nComps),
		acc:   make([]Access, len(s.slots)),
		inst:  make([]float64, nl),
	}
}

// CountCacheInto additionally charges this Evaluator's memo-cache hits and
// misses to the given counters. The Session's lifetime counters (CacheStats)
// keep accumulating regardless; the per-run pair is what lets many searches
// share one long-lived Session — as an Engine does — while each Result.Stats
// still partitions cleanly per call.
func (e *Evaluator) CountCacheInto(hits, misses *obs.Counter) {
	e.hits, e.misses = hits, misses
}

// EvaluateEDP scores m on the zero-allocation fast path, returning exactly
// the EDP/EnergyPJ/Cycles/Valid that Model.Evaluate would report. Results
// are memoized in the Session's search-wide cache under the mapping's
// canonical Key; the Probe (fault injection) still fires on every call,
// before the cache is consulted.
func (e *Evaluator) EvaluateEDP(m *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool) {
	s := e.s
	if s.model.Probe != nil {
		s.model.Probe.BeforeEvaluate(m)
	}
	// Chaos hook: an injected evaluation fault panics, contained by the
	// caller's per-candidate isolation like any poisoned cost model.
	faults.MustFire(faults.SiteEvaluate)
	switch e.snapshot(m) {
	case snapBad:
		return inf, inf, inf, false
	case snapStray:
		return e.fallback(m)
	}
	k := e.key()
	if v, ok := e.lookup(k); ok {
		// Chaos hook: a corrupt-kind cache-get fault perturbs the memoized
		// scalars on the way out (the stored entry stays clean), simulating
		// the memo corruption the final mapping audit exists to catch.
		if _, corrupt := faults.Fire(faults.SiteCacheGet); corrupt {
			return v.edp * 1.5, v.energy * 1.5, v.cycles, v.valid
		}
		return v.edp, v.energy, v.cycles, v.valid
	}
	edp, energyPJ, cycles, valid = e.compute()
	s.store(k, cacheEntry{edp: edp, energy: energyPJ, cycles: cycles, valid: valid})
	return edp, energyPJ, cycles, valid
}

// EvaluateEDPUncached is EvaluateEDP without the memoization layer — the
// raw compute path. Useful for one-shot scoring and for benchmarking the
// model itself.
func (e *Evaluator) EvaluateEDPUncached(m *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool) {
	s := e.s
	if s.model.Probe != nil {
		s.model.Probe.BeforeEvaluate(m)
	}
	switch e.snapshot(m) {
	case snapBad:
		return inf, inf, inf, false
	case snapStray:
		return e.fallback(m)
	}
	return e.compute()
}

// Key returns the mapping's canonical fingerprint, or ok=false when the
// mapping is outside the fast path's domain (raw factors < 1, which the
// T/S view cannot represent, or stray spatial dimensions). No Probe fires:
// computing a key is not an evaluation.
func (e *Evaluator) Key(m *mapping.Mapping) (k Key, ok bool) {
	if e.snapshot(m) != snapOK {
		return Key{}, false
	}
	return e.key(), true
}

// fallback scores a mapping the snapshot cannot represent (spatial factors
// on dimensions outside the workload — legal in the map representation and
// visible to the model) on the full Evaluate path. The Probe already fired.
func (e *Evaluator) fallback(m *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool) {
	mo := e.s.model
	mo.Probe = nil
	rep := mo.Evaluate(m)
	return rep.EDP, rep.EnergyPJ, rep.Cycles, rep.Valid
}

// snapshot captures m's T/S bounds, per-level spatial entries, and the
// effective order of its bound>1 temporal loops into the evaluator scratch.
func (e *Evaluator) snapshot(m *mapping.Mapping) snapResult {
	s := e.s
	nd := len(s.dims)
	sp := 0
	for l := 0; l < s.nLevels; l++ {
		lm := &m.Levels[l]
		// Raw-map scan: Validate rejects any factor < 1 even on dimensions
		// the accessors normalize away, and spatial factors > 1 on stray
		// dimensions do reach the model (SpatialProduct, multicast widths).
		for _, n := range lm.Temporal {
			if n < 1 {
				return snapBad
			}
		}
		for d, n := range lm.Spatial {
			if n < 1 {
				return snapBad
			}
			if n > 1 {
				if _, known := s.dimIdx[d]; !known {
					return snapStray
				}
			}
		}
		base := l * nd
		for i, d := range s.dims {
			e.tb[base+i] = lm.T(d)
			e.sf[base+i] = lm.S(d)
		}
		e.spOff[l] = sp
		for i := 0; i < nd; i++ {
			if f := e.sf[base+i]; f > 1 {
				e.spIdx[sp] = int32(i)
				e.spS[sp] = int64(f)
				sp++
			}
		}
		// Effective order restricted to bound>1 loops: declared order first
		// (deduped, declared dims only), then the canonical remainder —
		// bound-1 loops are invisible to passCount, so dropping them here
		// canonicalizes equal-cost orderings onto one Key.
		cnt := 0
		for _, d := range lm.Order {
			i, known := s.dimIdx[d]
			if !known || e.seen[i] {
				continue
			}
			e.seen[i] = true
			if e.tb[base+i] > 1 {
				e.eo[base+cnt] = int32(i)
				cnt++
			}
		}
		for i := 0; i < nd; i++ {
			if !e.seen[i] && e.tb[base+i] > 1 {
				e.eo[base+cnt] = int32(i)
				cnt++
			}
		}
		e.eoLen[l] = cnt
		for i := 0; i < nd; i++ {
			e.seen[i] = false
		}
	}
	e.spOff[s.nLevels] = sp
	return snapOK
}

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// key folds the snapshot into a 128-bit fingerprint: two independently
// seeded/mixed 64-bit accumulators over the same value stream.
func (e *Evaluator) key() Key {
	s := e.s
	nd := len(s.dims)
	h1 := uint64(0x9e3779b97f4a7c15)
	h2 := uint64(0xc2b2ae3d27d4eb4f)
	fold := func(v uint64) {
		h1 = mix64(h1 ^ v)
		h2 = mix64(h2 + v*0xff51afd7ed558ccd)
	}
	for l := 0; l < s.nLevels; l++ {
		base := l * nd
		fold(0xf00d + uint64(l))
		for k := 0; k < e.eoLen[l]; k++ {
			fold(uint64(e.eo[base+k]) | 1<<32)
		}
		for i := 0; i < nd; i++ {
			fold(uint64(e.tb[base+i]))
			fold(uint64(e.sf[base+i]) | 1<<40)
		}
	}
	return Key{Hi: h1, Lo: h2}
}

// compute runs the cost model over the snapshot — the same arithmetic as
// Evaluate, in the same order, against precomputed tables. It allocates
// nothing.
func (e *Evaluator) compute() (edp, energyPJ, cycles float64, valid bool) {
	s := e.s
	nd := len(s.dims)
	top := s.nLevels - 1

	// Cumulative extents per level (the Extents view): cum[l][i] is the tile
	// extent of dim i at level l. Same int-multiply sequence as Extent.
	for i := 0; i < nd; i++ {
		e.cum[i] = e.tb[i] * e.sf[i]
	}
	for l := 1; l < s.nLevels; l++ {
		base, prev := l*nd, (l-1)*nd
		for i := 0; i < nd; i++ {
			e.cum[base+i] = e.cum[prev+i] * (e.tb[base+i] * e.sf[base+i])
		}
	}

	// Validity, in Validate's order of checks (the boolean outcome is all
	// that matters; Evaluate maps invalid to +Inf scalars).
	topBase := top * nd
	for i := 0; i < nd; i++ {
		if e.cum[topBase+i] < s.bounds[i] {
			return inf, inf, inf, false
		}
	}
	for ci := range s.caps {
		cp := &s.caps[ci]
		var usedBits int64
		for _, ti := range cp.tensors {
			usedBits += int64(e.footprint(&s.tensors[ti], cp.lvl*nd)) * int64(s.a.Bits(s.w.Tensors[ti].Name))
		}
		if usedBits > cp.capBits {
			return inf, inf, inf, false
		}
	}
	for l := 0; l < s.nLevels; l++ {
		spp := 1
		for k := e.spOff[l]; k < e.spOff[l+1]; k++ {
			spp *= int(e.spS[k])
		}
		if spp > s.fanout[l] {
			return inf, inf, inf, false
		}
		if s.noSR[l] {
			base := l * nd
			for _, ri := range s.redDims {
				if e.sf[base+ri] > 1 {
					return inf, inf, inf, false
				}
			}
		}
	}

	// MACs (PaddedMACs): product of per-dim coverage.
	macs := int64(1)
	for i := 0; i < nd; i++ {
		macs *= int64(e.cum[topBase+i])
	}

	for i := range e.bd {
		e.bd[i] = 0
	}
	for i := range e.acc {
		e.acc[i] = Access{}
	}
	e.bd[s.compMAC] += float64(macs) * s.macPJ

	for ti := range s.tensors {
		tp := &s.tensors[ti]
		for fi := range tp.flows {
			fl := &tp.flows[fi]
			if fl.child < 0 {
				e.computeFlow(tp, fl, macs)
			} else {
				e.pairFlow(tp, fl)
			}
		}
	}

	energyPJ = 0.0
	for _, ci := range s.sumOrder {
		energyPJ += e.bd[ci]
	}
	cycles = e.cycles(macs)
	edp = energyPJ * cycles
	return edp, energyPJ, cycles, true
}

// footprint mirrors Tensor.Footprint over the extents stored at e.cum[base:].
func (e *Evaluator) footprint(tp *tensorPlan, base int) int {
	fp := 1
	for ai := range tp.axes {
		ex := 1
		for _, t := range tp.axes[ai].terms {
			n := e.cum[base+t.dim]
			if n <= 0 {
				n = 1
			}
			ex += t.stride * (n - 1)
		}
		fp *= ex
	}
	return fp
}

// extFootprint is footprint over the per-flow working extents e.ext.
func (e *Evaluator) extFootprint(tp *tensorPlan) int {
	fp := 1
	for ai := range tp.axes {
		ex := 1
		for _, t := range tp.axes[ai].terms {
			n := e.ext[t.dim]
			if n <= 0 {
				n = 1
			}
			ex += t.stride * (n - 1)
		}
		fp *= ex
	}
	return fp
}

// mergeWidth is the product of spatial factors at levels [lo, hi] on
// dimensions not indexing tp — multicast (inputs) or spatial-reduce
// (outputs) width, and the merge divisor of the compute flow.
func (e *Evaluator) mergeWidth(tp *tensorPlan, lo, hi int) int64 {
	w := int64(1)
	for k := e.spOff[lo]; k < e.spOff[hi+1]; k++ {
		if !tp.indexing[e.spIdx[k]] {
			w *= e.spS[k]
		}
	}
	return w
}

// computeFlow mirrors Model.computeFlow: the MAC datapath consuming tp from
// its innermost keeper.
func (e *Evaluator) computeFlow(tp *tensorPlan, fl *flowPlan, macs int64) {
	merge := e.mergeWidth(tp, 0, fl.parent)
	var pr, pw, psum int64
	if tp.output {
		pw = macs / merge
		psum = pw
	} else {
		pr = macs / merge
	}
	e.account(tp, fl, pr, pw, psum, 0, 0)
}

// pairFlow mirrors Model.pairFlow for keeper pair (child, parent): tile
// refill passes over the loops above the child, sliding-window overlap for
// inputs, partial-sum writeback for outputs.
func (e *Evaluator) pairFlow(tp *tensorPlan, fl *flowPlan) {
	s := e.s
	nd := len(s.dims)
	top := s.nLevels - 1
	c, p := fl.child, fl.parent

	// Working extents: the child tile enlarged by every spatial unroll above
	// it (replication by non-indexing unrolls above the parent is folded
	// into fp, not the extents — exactly as in pairFlow).
	copy(e.ext, e.cum[c*nd:c*nd+nd])
	for k := e.spOff[c+1]; k < e.spOff[top+1]; k++ {
		e.ext[e.spIdx[k]] *= int(e.spS[k])
	}
	fp := int64(e.extFootprint(tp))
	fp *= e.mergeWidth(tp, p+1, top)

	// Temporal loops at levels (c, top], innermost first; bound-1 loops are
	// already absent from the snapshot's effective orders.
	nLoops := 0
	for l := c + 1; l <= top; l++ {
		base := l * nd
		for k := 0; k < e.eoLen[l]; k++ {
			i := e.eo[base+k]
			e.loopD[nLoops] = i
			e.loopB[nLoops] = e.tb[base+int(i)]
			nLoops++
		}
	}
	passes := int64(1)
	inPrefix := true
	breakIdx := -1
	for li := 0; li < nLoops; li++ {
		if inPrefix && !tp.indexing[e.loopD[li]] {
			continue
		}
		if inPrefix {
			inPrefix = false
			breakIdx = li
		}
		passes *= int64(e.loopB[li])
	}

	if tp.output {
		outIters := int64(1)
		for li := 0; li < nLoops; li++ {
			if tp.indexing[e.loopD[li]] {
				outIters *= int64(e.loopB[li])
			}
		}
		pw := passes * fp
		psum := (passes - outIters) * fp
		drains := pw * e.mergeWidth(tp, c+1, p)
		e.account(tp, fl, 0, pw, psum, 0, drains)
		return
	}

	reads := passes * fp
	if s.model.SlidingReuse && breakIdx >= 0 && tp.winOnly[e.loopD[breakIdx]] {
		inc := e.incFootprint(tp, int(e.loopD[breakIdx]))
		outer := passes / int64(e.loopB[breakIdx])
		reads = outer * (fp + int64(e.loopB[breakIdx]-1)*inc)
	}
	fills := reads * e.mergeWidth(tp, c+1, p)
	e.account(tp, fl, reads, 0, 0, fills, 0)
}

// incFootprint mirrors incrementalFootprint over the working extents: the
// new data fetched when the tile advances one step along window dim d.
func (e *Evaluator) incFootprint(tp *tensorPlan, d int) int64 {
	fp := int64(1)
	for ai := range tp.axes {
		terms := tp.axes[ai].terms
		full := 1
		hasD := false
		strideD := 0
		for _, t := range terms {
			n := e.ext[t.dim]
			if n <= 0 {
				n = 1
			}
			full += t.stride * (n - 1)
			if t.dim == d {
				hasD = true
				strideD = t.stride
			}
		}
		if hasD && len(terms) > 1 {
			step := strideD * e.ext[d]
			if step > full {
				step = full
			}
			fp *= int64(step)
		} else {
			fp *= int64(full)
		}
	}
	return fp
}

// account mirrors Model.account: buffer energy, access-slot counts, and NoC
// distribution/collection energy for one flow.
func (e *Evaluator) account(tp *tensorPlan, fl *flowPlan, pr, pw, psum, fills, drains int64) {
	s := e.s
	e.acc[fl.pSlot].Reads += pr + psum
	e.acc[fl.pSlot].Writes += pw
	e.bd[fl.pComp] += float64(pr+psum)*fl.pReadPJ + float64(pw)*fl.pWritePJ

	if fl.child >= 0 {
		if tp.output {
			e.acc[fl.cSlot].Reads += drains
			e.acc[fl.cSlot].Writes += psum
			e.bd[fl.cComp] += float64(drains)*fl.cReadPJ + float64(psum)*fl.cWritePJ
		} else {
			e.acc[fl.cSlot].Writes += fills
			e.bd[fl.cComp] += float64(fills) * fl.cWritePJ
		}
	}

	lo := fl.child
	if lo < 0 {
		lo = -1
	}
	if tp.output {
		vol := float64(pw)
		volBelow := vol * float64(e.mergeWidth(tp, lo+1, fl.parent))
		for l := lo + 1; l <= fl.parent; l++ {
			if s.fanout[l] <= 1 {
				continue
			}
			rho := e.levelWidth(tp, l)
			if rho > 1 {
				e.bd[s.compSR] += volBelow * s.levels[l].spatialReducePJ
				volBelow /= float64(rho)
			}
			e.bd[s.compNoC] += volBelow * s.levels[l].noCPerWordPJ
		}
	} else {
		vol := float64(pr)
		for l := fl.parent; l > lo; l-- {
			if s.fanout[l] <= 1 {
				continue
			}
			e.bd[s.compNoC] += vol * s.levels[l].noCPerWordPJ
			vol *= float64(e.levelWidth(tp, l))
			e.bd[s.compNoC] += vol * s.levels[l].noCTagCheckPJ
		}
	}
}

// levelWidth mirrors the legacy levelWidth: level l's non-indexing spatial
// product for tp.
func (e *Evaluator) levelWidth(tp *tensorPlan, l int) int64 {
	w := int64(1)
	for k := e.spOff[l]; k < e.spOff[l+1]; k++ {
		if !tp.indexing[e.spIdx[k]] {
			w *= e.spS[k]
		}
	}
	return w
}

// cycles mirrors Model.cycles over the accumulated access slots.
func (e *Evaluator) cycles(macs int64) float64 {
	s := e.s
	spatialUsed := 1
	for l := 0; l < s.nLevels; l++ {
		spp := 1
		for k := e.spOff[l]; k < e.spOff[l+1]; k++ {
			spp *= int(e.spS[k])
		}
		spatialUsed *= spp
	}
	compute := float64(macs) / float64(spatialUsed)
	worst := compute

	acc := 1.0
	for l := s.nLevels - 1; l >= 0; l-- {
		e.inst[l] = acc
		spp := 1
		for k := e.spOff[l]; k < e.spOff[l+1]; k++ {
			spp *= int(e.spS[k])
		}
		acc *= float64(spp)
	}

	for si := range s.slots {
		sp := &s.slots[si]
		if !sp.resolved {
			continue
		}
		var t float64
		if sp.readBW > 0 {
			t += float64(e.acc[si].Reads) / (sp.readBW * e.inst[sp.lvl])
		}
		if sp.writeBW > 0 {
			t += float64(e.acc[si].Writes) / (sp.writeBW * e.inst[sp.lvl])
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

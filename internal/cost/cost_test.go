package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

func conv1D(t testing.TB, k, c, p, r int) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("conv1d",
		map[tensor.Dim]int{"K": k, "C": c, "P": p, "R": r},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// algorithm4 builds the 2-level tiled dataflow of Algorithm 4 in the paper:
// DRAM loops (outermost-to-innermost) P_L2, K_L2, C_L2 over an L1 tile of
// P_L1 x K_L1 x C_L1 x R, on the Tiny (L1 + DRAM) architecture.
func algorithm4(t testing.TB, k, c, p, r, kl1, cl1, pl1, l1Words int) *mapping.Mapping {
	t.Helper()
	w := conv1D(t, k, c, p, r)
	a := arch.Tiny(l1Words)
	m := mapping.New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": pl1, "K": kl1, "C": cl1, "R": r}
	m.Levels[1].Temporal = map[tensor.Dim]int{"P": p / pl1, "K": k / kl1, "C": c / cl1}
	m.Levels[1].Order = []tensor.Dim{"C", "K", "P"} // C innermost (Algorithm 4)
	return m
}

func flowTo(t *testing.T, m *mapping.Mapping, name string, parent int) Flow {
	t.Helper()
	tn := m.Workload.Tensor(name)
	for _, f := range Default.Flows(m, tn) {
		if f.Parent == parent && f.Child >= 0 {
			return f
		}
	}
	t.Fatalf("no flow for %s with parent level %d", name, parent)
	return Flow{}
}

// TestPaperEquations1to3 checks the model against the paper's Section III-A
// access-count equations for Algorithm 4:
//
//	ifmap : K_L2 * C * P_L2 * (P_L1 + R - 1)   (Eq. 1)
//	weight: C * K * R * P_L2                   (Eq. 2)
//	ofmap : P * K                              (Eq. 3, C innermost => reuse)
func TestPaperEquations1to3(t *testing.T) {
	const K, C, P, R = 4, 4, 14, 3
	const KL1, CL1, PL1 = 2, 2, 7
	m := algorithm4(t, K, C, P, R, KL1, CL1, PL1, 4096)
	KL2, CL2, PL2 := K/KL1, C/CL1, P/PL1

	ifm := flowTo(t, m, arch.Ifmap, 1)
	want := int64(KL2 * C * PL2 * (PL1 + R - 1))
	if ifm.ParentReads != want {
		t.Errorf("Eq1: ifmap DRAM reads = %d, want %d", ifm.ParentReads, want)
	}

	wgt := flowTo(t, m, arch.Weight, 1)
	want = int64(C * K * R * PL2)
	if wgt.ParentReads != want {
		t.Errorf("Eq2: weight DRAM reads = %d, want %d", wgt.ParentReads, want)
	}

	ofm := flowTo(t, m, arch.Ofmap, 1)
	want = int64(P * K)
	if ofm.ParentWrites != want {
		t.Errorf("Eq3: ofmap DRAM writes = %d, want %d", ofm.ParentWrites, want)
	}
	if ofm.PsumReads != 0 {
		t.Errorf("Eq3: C innermost fully reuses ofmap; psum readback = %d, want 0", ofm.PsumReads)
	}
	_ = CL2
}

// TestOfmapReuseDestroyedByInnerK reproduces the Ordering Principle 2
// discussion: with K innermost at DRAM, ofmap is written back every C pass
// and partial sums must be read back.
func TestOfmapReuseDestroyedByInnerK(t *testing.T) {
	const K, C, P, R = 4, 4, 14, 3
	m := algorithm4(t, K, C, P, R, 2, 2, 7, 4096)
	m.Levels[1].Order = []tensor.Dim{"K", "C", "P"} // K innermost

	ofm := flowTo(t, m, arch.Ofmap, 1)
	// passes = K_L2*C_L2*P_L2 = 8, fp = 14 -> 112 writes; outIters = K_L2*P_L2
	// = 4 -> psum reads = (8-4)*14 = 56.
	if ofm.ParentWrites != 112 {
		t.Errorf("ofmap writes = %d, want 112", ofm.ParentWrites)
	}
	if ofm.PsumReads != 56 {
		t.Errorf("ofmap psum reads = %d, want 56", ofm.PsumReads)
	}
}

// TestPaperEquations5to7 checks the spatial-unrolling equations of Section
// III-B: unrolling P and K across PEs leaves each tensor's parent traffic a
// function only of its *indexing* spatially-unrolled dimensions; ifmap is
// multicast across K_spatial.
func TestPaperEquations5to7(t *testing.T) {
	const K, C, P, R = 8, 4, 28, 3
	const KL1, CL1, PL1 = 2, 2, 7
	const Ksp, Psp = 2, 2
	w := conv1D(t, K, C, P, R)
	a := arch.TinySpatial(4096, 1<<20, 4)
	m := mapping.New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": PL1, "K": KL1, "C": CL1, "R": R}
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": Ksp, "P": Psp}
	KL2, CL2, PL2 := K/(KL1*Ksp), C/CL1, P/(PL1*Psp)
	m.Levels[2].Temporal = map[tensor.Dim]int{"P": PL2, "K": KL2, "C": CL2}
	m.Levels[2].Order = []tensor.Dim{"C", "K", "P"}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// Eq 5: ifmap L2 reads = K_L2*P_L2*C_L2 * (Psp*P_L1 + R - 1)*C_L1.
	ifm := flowTo(t, m, arch.Ifmap, 1)
	want := int64(KL2 * PL2 * CL2 * ((Psp*PL1 + R - 1) * CL1))
	if ifm.ParentReads != want {
		t.Errorf("Eq5: ifmap L2 reads = %d, want %d", ifm.ParentReads, want)
	}
	// Ifmap is multicast across K_spatial: fills into PEs exceed L2 reads.
	if ifm.ChildFills != ifm.ParentReads*Ksp {
		t.Errorf("ifmap child fills = %d, want %d (multicast x%d)",
			ifm.ChildFills, ifm.ParentReads*Ksp, Ksp)
	}

	// Eq 6: weight L2 reads = C*K*R*P_L2 (P_spatial does not index weight).
	wgt := flowTo(t, m, arch.Weight, 1)
	want = int64(C * K * R * PL2)
	if wgt.ParentReads != want {
		t.Errorf("Eq6: weight L2 reads = %d, want %d", wgt.ParentReads, want)
	}

	// Eq 7: ofmap L2 writes = P*K (C innermost reuses ofmap temporally).
	ofm := flowTo(t, m, arch.Ofmap, 1)
	want = int64(P * K)
	if ofm.ParentWrites != want {
		t.Errorf("Eq7: ofmap L2 writes = %d, want %d", ofm.ParentWrites, want)
	}
}

// TestTilingPrincipleMonotonicity verifies the Tiling Principle on the model:
// enlarging an indexing dimension of the reused operand (ofmap, with C
// innermost at DRAM) strictly reduces total upper-level accesses.
func TestTilingPrincipleMonotonicity(t *testing.T) {
	const K, C, P, R = 4, 4, 14, 3
	small := algorithm4(t, K, C, P, R, 2, 2, 7, 1<<20) // K_L1 = 2
	large := algorithm4(t, K, C, P, R, 4, 2, 7, 1<<20) // K_L1 = 4 (enlarged)
	sSmall := flowTo(t, small, arch.Ifmap, 1).ParentReads +
		flowTo(t, small, arch.Weight, 1).ParentReads +
		flowTo(t, small, arch.Ofmap, 1).ParentWrites
	sLarge := flowTo(t, large, arch.Ifmap, 1).ParentReads +
		flowTo(t, large, arch.Weight, 1).ParentReads +
		flowTo(t, large, arch.Ofmap, 1).ParentWrites
	if sLarge >= sSmall {
		t.Errorf("enlarging K_L1 should cut DRAM accesses: %d -> %d", sSmall, sLarge)
	}
}

func TestSlidingWindowDiscount(t *testing.T) {
	// With P innermost at DRAM and R inside the tile, consecutive P tiles
	// overlap by R-1 rows of ifmap; the sliding model must fetch less than
	// the naive model.
	const K, C, P, R = 4, 4, 16, 3
	m := algorithm4(t, K, C, P, R, 2, 2, 4, 1<<20)
	m.Levels[1].Order = []tensor.Dim{"P", "C", "K"}

	naive := Model{SlidingReuse: false}
	slide := Model{SlidingReuse: true}
	tn := m.Workload.Tensor(arch.Ifmap)
	var rNaive, rSlide int64
	for _, f := range naive.Flows(m, tn) {
		if f.Child == 0 {
			rNaive = f.ParentReads
		}
	}
	for _, f := range slide.Flows(m, tn) {
		if f.Child == 0 {
			rSlide = f.ParentReads
		}
	}
	if rSlide >= rNaive {
		t.Errorf("sliding reuse should reduce ifmap reads: naive %d, sliding %d", rNaive, rSlide)
	}
	// The discount must never fetch less than the tensor's full size.
	full := int64(tn.Footprint(m.Workload.FullExtents()))
	if rSlide < full {
		t.Errorf("sliding reads %d below tensor size %d", rSlide, full)
	}
}

func TestEvaluateValidMapping(t *testing.T) {
	m := algorithm4(t, 4, 4, 14, 3, 2, 2, 7, 4096)
	r := Evaluate(m)
	if !r.Valid {
		t.Fatalf("mapping should be valid: %v", r.Invalid)
	}
	if r.EnergyPJ <= 0 || r.Cycles <= 0 || r.EDP <= 0 {
		t.Errorf("bad report: E=%f cycles=%f EDP=%f", r.EnergyPJ, r.Cycles, r.EDP)
	}
	if r.MACs != int64(4*4*14*3) {
		t.Errorf("MACs = %d", r.MACs)
	}
	// Breakdown must sum to total energy.
	var sum float64
	for _, e := range r.Breakdown {
		sum += e
	}
	if math.Abs(sum-r.EnergyPJ) > 1e-6*r.EnergyPJ {
		t.Errorf("breakdown sums to %f, total %f", sum, r.EnergyPJ)
	}
	if r.Breakdown["MAC"] <= 0 || r.Breakdown["DRAM"] <= 0 || r.Breakdown["L1"] <= 0 {
		t.Errorf("missing components: %v", r.Breakdown)
	}
}

func TestEvaluateInvalidMapping(t *testing.T) {
	m := algorithm4(t, 4, 4, 14, 3, 2, 2, 7, 8) // L1 too small
	r := Evaluate(m)
	if r.Valid || r.Invalid == nil {
		t.Fatal("overflowing mapping must be invalid")
	}
	if !math.IsInf(r.EDP, 1) {
		t.Error("invalid mapping should have +Inf EDP")
	}
}

// TestReuseReducesEnergy: with reuse-friendly tiling, total energy must be
// well below the naive all-at-DRAM streaming mapping.
func TestReuseReducesEnergy(t *testing.T) {
	const K, C, P, R = 8, 8, 56, 3
	w := conv1D(t, K, C, P, R)
	a := arch.Tiny(512)

	naive := mapping.New(w, a)
	naive.Levels[0].Temporal = map[tensor.Dim]int{}
	naive.Levels[1].Temporal = map[tensor.Dim]int{"K": K, "C": C, "P": P, "R": R}
	rNaive := Evaluate(naive)
	if !rNaive.Valid {
		t.Fatalf("naive streaming should be valid: %v", rNaive.Invalid)
	}

	tiled := mapping.New(w, a)
	tiled.Levels[0].Temporal = map[tensor.Dim]int{"K": 4, "C": 4, "P": 7, "R": R}
	tiled.Levels[1].Temporal = map[tensor.Dim]int{"K": 2, "C": 2, "P": 8}
	tiled.Levels[1].Order = []tensor.Dim{"C", "K", "P"}
	rTiled := Evaluate(tiled)
	if !rTiled.Valid {
		t.Fatalf("tiled mapping should be valid: %v", rTiled.Invalid)
	}
	if rTiled.EnergyPJ >= rNaive.EnergyPJ/2 {
		t.Errorf("tiling should cut energy at least 2x: naive %.0f, tiled %.0f",
			rNaive.EnergyPJ, rTiled.EnergyPJ)
	}
}

func TestSpatialUnrollingCutsLatency(t *testing.T) {
	const K, C, P, R = 8, 4, 28, 3
	w := conv1D(t, K, C, P, R)
	a := arch.TinySpatial(4096, 1<<20, 4)

	serial := mapping.New(w, a)
	serial.Levels[0].Temporal = map[tensor.Dim]int{"P": 7, "K": 2, "C": 2, "R": R}
	serial.Levels[2].Temporal = map[tensor.Dim]int{"P": 4, "K": 4, "C": 2}
	rSerial := Evaluate(serial)

	par := serial.Clone()
	par.Levels[1].Spatial = map[tensor.Dim]int{"K": 2, "P": 2}
	par.Levels[2].Temporal = map[tensor.Dim]int{"P": 2, "K": 2, "C": 2}
	rPar := Evaluate(par)

	if !rSerial.Valid || !rPar.Valid {
		t.Fatalf("both mappings should be valid: %v %v", rSerial.Invalid, rPar.Invalid)
	}
	if rPar.Cycles >= rSerial.Cycles {
		t.Errorf("4-way unrolling should cut latency: serial %.0f, parallel %.0f cycles",
			rSerial.Cycles, rPar.Cycles)
	}
}

// TestBypass: on Simba, weights must have no traffic through L2.
func TestBypassWeightsSkipL2(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.Simba()
	m := mapping.New(w, a)
	m.Levels[1].Temporal = map[tensor.Dim]int{"P": 2, "R": 3}
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": 8, "C": 8}
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 1}
	m.Levels[2].Spatial = map[tensor.Dim]int{"P": 2}
	m.Levels[3].Temporal = map[tensor.Dim]int{"P": 4, "K": 1, "C": 1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r := Evaluate(m)
	for key := range r.Accesses {
		if strings.Contains(key, "L2/L2/weight") {
			t.Errorf("weight traffic found at L2: %s", key)
		}
	}
	tn := w.Tensor(arch.Weight)
	flows := Default.Flows(m, tn)
	for _, f := range flows {
		if f.Child == 1 && f.Parent != 3 {
			t.Errorf("weight parent above PEBuf should be DRAM (3), got %d", f.Parent)
		}
	}
}

func TestPassCountTransparentBound1Loops(t *testing.T) {
	w := conv1D(t, 4, 4, 14, 3)
	ofmap := w.Tensor(arch.Ofmap)
	// R (bound 1) and C (non-indexing) innermost keep ofmap reused even
	// with the bound-1 loop interleaved.
	loops := []loop{
		{d: "R", bound: 1}, {d: "C", bound: 4}, {d: "R", bound: 1}, {d: "K", bound: 2}, {d: "P", bound: 2},
	}
	passes, breaker := passCount(ofmap, loops)
	if passes != 4 {
		t.Errorf("passes = %d, want 4 (C skipped, bound-1 loops transparent)", passes)
	}
	if breaker == nil || breaker.d != "K" {
		t.Errorf("breaker = %v, want K", breaker)
	}
}

func TestPassCountAllNonIndexing(t *testing.T) {
	w := conv1D(t, 4, 4, 14, 3)
	ofmap := w.Tensor(arch.Ofmap)
	loops := []loop{{d: "C", bound: 4}, {d: "R", bound: 3}}
	passes, breaker := passCount(ofmap, loops)
	if passes != 1 || breaker != nil {
		t.Errorf("fully reused: passes=%d breaker=%v", passes, breaker)
	}
}

// TestOrderingPrinciple3Property: reordering the loops *above* the innermost
// reusing loop does not change any tensor's access counts (Ordering
// Principle 3 — the paper's justification for optimizing only the innermost
// reuse chain).
func TestOrderingPrinciple3Property(t *testing.T) {
	f := func(kl1Sel, cl1Sel uint8) bool {
		kl1 := []int{1, 2, 4}[kl1Sel%3]
		// Keep C_L2 >= 2 so C stays the (non-transparent) innermost loop.
		cl1 := []int{1, 2}[cl1Sel%2]
		m1 := algorithm4(t, 4, 4, 14, 3, kl1, cl1, 7, 1<<20)
		m1.Levels[1].Order = []tensor.Dim{"C", "K", "P"}
		m2 := algorithm4(t, 4, 4, 14, 3, kl1, cl1, 7, 1<<20)
		m2.Levels[1].Order = []tensor.Dim{"C", "P", "K"} // swap loops above C
		r1, r2 := Evaluate(m1), Evaluate(m2)
		return math.Abs(r1.EnergyPJ-r2.EnergyPJ) < 1e-9*r1.EnergyPJ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownString(t *testing.T) {
	m := algorithm4(t, 4, 4, 14, 3, 2, 2, 7, 4096)
	r := Evaluate(m)
	s := r.BreakdownString()
	if !strings.Contains(s, "MAC") || !strings.Contains(s, "DRAM") {
		t.Errorf("breakdown missing components:\n%s", s)
	}
}

func TestTotalAccesses(t *testing.T) {
	m := algorithm4(t, 4, 4, 14, 3, 2, 2, 7, 4096)
	r := Evaluate(m)
	if r.TotalAccesses("DRAM") <= 0 {
		t.Error("expected DRAM accesses")
	}
	if r.TotalAccesses("nonexistent") != 0 {
		t.Error("unknown component should have 0 accesses")
	}
}

// TestLatencyBandwidthBound: when DRAM bandwidth is the bottleneck, cycles
// must track transfer time, not compute time (the double-buffering max).
func TestLatencyBandwidthBound(t *testing.T) {
	const K, C, P, R = 4, 4, 14, 3
	// A starved DRAM port (0.1 words/cycle) makes the mapping
	// transfer-bound: DRAM moves ~300 words -> ~3000 cycles > 672 MACs.
	m := algorithm4(t, K, C, P, R, 2, 2, 7, 1<<20)
	m.Arch.Levels[1].Buffers[0].ReadBW = 0.1
	m.Arch.Levels[1].Buffers[0].WriteBW = 0.1
	slow := Evaluate(m)

	// Same mapping at the default bandwidth is compute-bound.
	m2 := algorithm4(t, K, C, P, R, 2, 2, 7, 1<<20)
	fast := Evaluate(m2)

	if slow.Cycles <= fast.Cycles {
		t.Errorf("higher DRAM bandwidth should cut cycles when transfer-bound: %f vs %f",
			slow.Cycles, fast.Cycles)
	}
	// Energy is bandwidth-independent.
	if slow.EnergyPJ != fast.EnergyPJ {
		t.Errorf("bandwidth must not change energy: %f vs %f", slow.EnergyPJ, fast.EnergyPJ)
	}
	// With unbounded bandwidth, compute time is the floor.
	m3 := algorithm4(t, K, C, P, R, 2, 2, 7, 1<<20)
	m3.Arch.Levels[1].Buffers[0].ReadBW = 0
	m3.Arch.Levels[1].Buffers[0].WriteBW = 0
	unbounded := Evaluate(m3)
	if unbounded.Cycles != float64(unbounded.MACs) {
		t.Errorf("unbounded-BW single-MAC cycles = %f, want %d", unbounded.Cycles, unbounded.MACs)
	}
}

func TestAccessTable(t *testing.T) {
	m := algorithm4(t, 4, 4, 14, 3, 2, 2, 7, 4096)
	rep := Evaluate(m)
	s := rep.AccessTable()
	for _, want := range []string{"DRAM/DRAM/ifmap", "L1/L1/ofmap", "reads", "writes"} {
		if !strings.Contains(s, want) {
			t.Errorf("access table missing %q:\n%s", want, s)
		}
	}
}

package cost

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// randomMappingOn samples one unconstrained mapping of w onto a: prime
// factors scattered uniformly over every temporal and spatial slot, random
// (sometimes partial) loop orders, and an occasional dropped factor. The
// samples deliberately include invalid mappings — capacity and fanout
// overflows, uncovered dimensions, reduction dims unrolled across
// non-reducing levels — because the fast path must agree with Evaluate on
// those too.
func randomMappingOn(w *tensor.Workload, a *arch.Arch, rng *rand.Rand) *mapping.Mapping {
	m := mapping.New(w, a)
	type slot struct {
		level   int
		spatial bool
	}
	var slots []slot
	for l := range a.Levels {
		slots = append(slots, slot{l, false})
		if a.Levels[l].Fanout > 1 {
			slots = append(slots, slot{l, true})
		}
	}
	for _, d := range w.Order {
		for _, p := range factor.Primes(w.Dims[d]) {
			if rng.Intn(20) == 0 {
				continue // dropped factor: coverage-invalid sample
			}
			s := slots[rng.Intn(len(slots))]
			if s.spatial {
				m.Levels[s.level].Spatial[d] = m.Levels[s.level].S(d) * p
			} else {
				m.Levels[s.level].Temporal[d] = m.Levels[s.level].T(d) * p
			}
		}
	}
	for l := range m.Levels {
		order := append([]tensor.Dim(nil), w.Order...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if rng.Intn(3) == 0 {
			order = order[:rng.Intn(len(order)+1)] // partial declared order
		}
		m.Levels[l].Order = order
	}
	return m
}

// requireSameScalars asserts bit-for-bit agreement between a full Evaluate
// report and one fast-path result.
func requireSameScalars(t *testing.T, label string, rep Report, edp, en, cy float64, valid bool) {
	t.Helper()
	if valid != rep.Valid ||
		math.Float64bits(edp) != math.Float64bits(rep.EDP) ||
		math.Float64bits(en) != math.Float64bits(rep.EnergyPJ) ||
		math.Float64bits(cy) != math.Float64bits(rep.Cycles) {
		t.Fatalf("%s: fast path (edp=%v en=%v cy=%v valid=%v) != Evaluate (edp=%v en=%v cy=%v valid=%v)",
			label, edp, en, cy, valid, rep.EDP, rep.EnergyPJ, rep.Cycles, rep.Valid)
	}
}

// checkEquivalence runs one mapping through Evaluate, the memoized fast path
// (twice: miss then hit), and the uncached fast path, requiring identical
// scalars from all of them.
func checkEquivalence(t *testing.T, model Model, ev *Evaluator, m *mapping.Mapping) {
	t.Helper()
	rep := model.Evaluate(m)
	for pass := 0; pass < 2; pass++ {
		edp, en, cy, valid := ev.EvaluateEDP(m)
		requireSameScalars(t, "EvaluateEDP", rep, edp, en, cy, valid)
	}
	edp, en, cy, valid := ev.EvaluateEDPUncached(m)
	requireSameScalars(t, "EvaluateEDPUncached", rep, edp, en, cy, valid)
}

// equivalenceCase is one (workload, arch) pair of the property test.
func equivalenceCases() []struct {
	name string
	w    *tensor.Workload
	a    *arch.Arch
} {
	conv1d := tensor.MustNew("conv1d",
		map[tensor.Dim]int{"K": 16, "C": 8, "P": 24, "R": 3},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	conv2d := workloads.ResNet18[1].Inference(4)
	return []struct {
		name string
		w    *tensor.Workload
		a    *arch.Arch
	}{
		{"conv1d/tinyspatial", conv1d, arch.TinySpatial(4096, 1<<18, 8)},
		{"conv2d/conventional", conv2d, arch.Conventional()},
		{"conv2d/simba", conv2d, arch.Simba()},
		{"conv2d/diannao", conv2d, arch.DianNao()},
		{"mttkrp/conventional", workloads.MTTKRPOn(workloads.Nell2), arch.Conventional()},
	}
}

// TestEvaluateEDPEquivalenceProperty: the fast path reproduces Evaluate
// bit-for-bit — EDP, EnergyPJ, Cycles, and validity — on randomized valid
// AND invalid mappings across the Conventional, Simba, and DianNao presets
// (plus the tiny fixture the other property tests use).
func TestEvaluateEDPEquivalenceProperty(t *testing.T) {
	const samples = 120
	for _, tc := range equivalenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			ev := Default.NewSession(tc.w, tc.a).NewEvaluator()
			valid, invalid := 0, 0
			for i := 0; i < samples; i++ {
				m := randomMappingOn(tc.w, tc.a, rng)
				if m.Validate() == nil {
					valid++
				} else {
					invalid++
				}
				checkEquivalence(t, Default, ev, m)
			}
			if invalid == 0 {
				t.Error("sampler produced no invalid mappings; the invalid branch went untested")
			}
			t.Logf("%d valid, %d invalid samples", valid, invalid)
		})
	}
}

// TestEvaluateEDPSlidingReuseOff: equivalence holds for non-default model
// configurations too.
func TestEvaluateEDPSlidingReuseOff(t *testing.T) {
	model := Model{SlidingReuse: false}
	tc := equivalenceCases()[0]
	ev := model.NewSession(tc.w, tc.a).NewEvaluator()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		checkEquivalence(t, model, ev, randomMappingOn(tc.w, tc.a, rng))
	}
}

// TestEvaluateEDPEdgeCases pins the fast path's off-domain handling: raw
// factors < 1 (invalid but invisible to the T/S accessors, so uncacheable),
// stray-dimension spatial factors (fall back to the full model), stray
// temporal factors and explicit 1-entries (cost-invisible).
func TestEvaluateEDPEdgeCases(t *testing.T) {
	tc := equivalenceCases()[0]
	ev := Default.NewSession(tc.w, tc.a).NewEvaluator()
	rng := rand.New(rand.NewSource(3))
	base := func() *mapping.Mapping {
		for {
			m := randomMappingOn(tc.w, tc.a, rng)
			if m.Validate() == nil {
				return m
			}
		}
	}

	zero := base()
	zero.Levels[0].Temporal["K"] = 0
	checkEquivalence(t, Default, ev, zero)
	if _, ok := ev.Key(zero); ok {
		t.Error("Key accepted a mapping with a raw zero factor")
	}

	neg := base()
	neg.Levels[1].Spatial["C"] = -2
	checkEquivalence(t, Default, ev, neg)

	stray := base()
	stray.Levels[1].Spatial["Z"] = 2 // undeclared dim: reaches SpatialProduct and multicast widths
	checkEquivalence(t, Default, ev, stray)
	if _, ok := ev.Key(stray); ok {
		t.Error("Key accepted a mapping with a stray spatial factor")
	}

	strayT := base()
	strayT.Levels[2].Temporal["Z"] = 5 // undeclared temporal dim: cost-invisible
	checkEquivalence(t, Default, ev, strayT)

	ones := base()
	ones.Levels[0].Temporal["R"] = 1
	ones.Levels[1].Spatial["K"] = 1
	checkEquivalence(t, Default, ev, ones)
}

// TestMappingKeyCanonicalization: equal-content mappings share a Key, the
// Key ignores differences the model cannot observe (bound-1 loop positions,
// explicit 1-factors), and real tiling changes alter it.
func TestMappingKeyCanonicalization(t *testing.T) {
	tc := equivalenceCases()[0]
	ev := Default.NewSession(tc.w, tc.a).NewEvaluator()
	rng := rand.New(rand.NewSource(5))
	var m *mapping.Mapping
	for {
		m = randomMappingOn(tc.w, tc.a, rng)
		if m.Validate() == nil {
			break
		}
	}
	k1, ok := ev.Key(m)
	if !ok {
		t.Fatal("Key rejected a valid mapping")
	}
	if k2, _ := ev.Key(m.Clone()); k2 != k1 {
		t.Error("clone changed the Key")
	}

	ones := m.Clone()
	for _, lm := range ones.Levels { // explicit 1-entries in empty slots: T()/S() view unchanged
		for _, d := range tc.w.Order {
			if lm.T(d) == 1 {
				lm.Temporal[d] = 1
			}
		}
	}
	if k2, _ := ev.Key(ones); k2 != k1 {
		t.Error("explicit 1-factor changed the Key")
	}

	tiled := m.Clone()
	tiled.Levels[len(tiled.Levels)-1].Temporal["K"] = tiled.Levels[len(tiled.Levels)-1].T("K") * 2
	if k2, _ := ev.Key(tiled); k2 == k1 {
		t.Error("tiling change did not change the Key")
	}
}

// TestEvaluateEDPZeroAlloc guards the tentpole's core claim: the fast path
// allocates nothing in steady state, on both the cache-hit path and the raw
// compute path.
func TestEvaluateEDPZeroAlloc(t *testing.T) {
	tc := equivalenceCases()[1] // conv2d on Conventional: a realistic size
	ev := Default.NewSession(tc.w, tc.a).NewEvaluator()
	rng := rand.New(rand.NewSource(9))
	var m *mapping.Mapping
	for {
		m = randomMappingOn(tc.w, tc.a, rng)
		if m.Validate() == nil {
			break
		}
	}
	ev.EvaluateEDP(m) // warm: the first call pays the cache insert
	if allocs := testing.AllocsPerRun(200, func() { ev.EvaluateEDP(m) }); allocs != 0 {
		t.Errorf("cache-hit path allocates %v objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { ev.EvaluateEDPUncached(m) }); allocs != 0 {
		t.Errorf("compute path allocates %v objects/op, want 0", allocs)
	}
}

// TestEvaluatorConcurrentScratchReuse exercises per-worker scratch reuse and
// the shared memoization cache under concurrency (run with -race): workers
// with private Evaluators score an overlapping candidate stream against a
// single Session, and every result must match the serial full model.
func TestEvaluatorConcurrentScratchReuse(t *testing.T) {
	tc := equivalenceCases()[2] // conv2d on Simba: multi-spatial-level
	sess := Default.NewSession(tc.w, tc.a)
	rng := rand.New(rand.NewSource(17))
	const n = 200
	ms := make([]*mapping.Mapping, n)
	want := make([]Report, n)
	for i := range ms {
		ms[i] = randomMappingOn(tc.w, tc.a, rng)
		want[i] = Default.Evaluate(ms[i])
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			ev := sess.NewEvaluator()
			// Offset start: workers overlap on the same mappings, hitting
			// the cache from different goroutines.
			for j := 0; j < n; j++ {
				i := (j + wk*n/workers) % n
				edp, en, cy, valid := ev.EvaluateEDP(ms[i])
				rep := want[i]
				if valid != rep.Valid ||
					math.Float64bits(edp) != math.Float64bits(rep.EDP) ||
					math.Float64bits(en) != math.Float64bits(rep.EnergyPJ) ||
					math.Float64bits(cy) != math.Float64bits(rep.Cycles) {
					select {
					case errs <- "concurrent fast-path result diverged from Evaluate":
					default:
					}
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	hits, misses := sess.CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("cache stats hits=%d misses=%d: expected both non-zero under overlapping workers", hits, misses)
	}
}

package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sunstone/internal/arch"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// randomValidMappingOn builds a random complete valid mapping of w onto a:
// start from the trivial all-at-top placement (always valid) and push prime
// factors into random lower temporal/spatial slots, trial-validating each
// move. Unlike randomValidMapping it never fails — the trivial placement is
// the worst-case return.
func randomValidMappingOn(rng *rand.Rand, w *tensor.Workload, a *arch.Arch) *mapping.Mapping {
	m := mapping.New(w, a)
	top := len(a.Levels) - 1
	for _, d := range w.Order {
		m.Levels[top].Temporal[d] = w.Dims[d]
	}
	order := append([]tensor.Dim(nil), w.Order...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for l := range m.Levels {
		m.Levels[l].Order = order
	}
	if m.Validate() != nil {
		return nil // trivial placement must be valid; bail loudly in the caller
	}
	for _, d := range w.Order {
		for _, p := range factor.Primes(w.Dims[d]) {
			if rng.Intn(3) == 0 {
				continue // leave this prime at the top
			}
			l := rng.Intn(top + 1)
			spatial := rng.Intn(2) == 0 && a.Levels[l].Fanout > 1 &&
				m.Levels[l].SpatialProduct()*p <= a.Levels[l].Fanout
			var slot map[tensor.Dim]int
			if spatial {
				slot = m.Levels[l].Spatial
			} else {
				slot = m.Levels[l].Temporal
			}
			oldSlot, oldTop := slot[d], m.Levels[top].Temporal[d]
			if oldSlot == 0 {
				oldSlot = 1
			}
			slot[d] = oldSlot * p
			if q := oldTop / p; q >= 1 && l != top {
				m.Levels[top].Temporal[d] = q
			}
			if m.Validate() != nil {
				slot[d] = oldSlot
				if slot[d] == 1 {
					delete(slot, d)
				}
				m.Levels[top].Temporal[d] = oldTop
			}
		}
	}
	return m
}

// boundArches are the presets the admissibility property is checked on: the
// paper's three evaluation machines plus the tiny spatial test arch.
func boundArches() map[string]*arch.Arch {
	return map[string]*arch.Arch{
		"conventional": arch.Conventional(),
		"simba":        arch.Simba(),
		"diannao":      arch.DianNao(),
		"tinyspatial":  arch.TinySpatial(4096, 1<<18, 8),
	}
}

// TestLowerBoundAdmissibleProperty: for random valid mappings on every
// preset, Session.LowerBound never exceeds the full evaluation in either
// component — neither at the mapping's own spatial parallelism nor at the
// problem-wide maximum. This is the property the search's bound pruning
// relies on: a candidate whose bound beats the incumbent can be discarded
// without ever being evaluated.
func TestLowerBoundAdmissibleProperty(t *testing.T) {
	w := workloads.Conv2D("conv", 2, 8, 8, 14, 14, 3, 3, 1, 1)
	for name, a := range boundArches() {
		t.Run(name, func(t *testing.T) {
			sess := Default.NewSession(w, a)
			ev := sess.NewEvaluator()
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				m := randomValidMappingOn(rng, w, a)
				if m == nil {
					t.Fatal("trivial all-at-top placement invalid")
				}
				_, energyPJ, cycles, valid := ev.EvaluateEDP(m)
				if !valid {
					return true // capacity-invalid samples carry no admissibility claim
				}
				sp := 1.0
				for l := range m.Levels {
					sp *= float64(m.Levels[l].SpatialProduct())
				}
				for _, ms := range []float64{sp, 0} {
					lbE, lbC := sess.LowerBound(ms)
					if lbE > energyPJ {
						t.Logf("seed %d ms %g: bound energy %g above actual %g", seed, ms, lbE, energyPJ)
						return false
					}
					if lbC > cycles {
						t.Logf("seed %d ms %g: bound cycles %g above actual %g", seed, ms, lbC, cycles)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestLowerBoundMonotoneInSpatial: less parallelism can only raise the cycle
// floor, and the energy floor is independent of it.
func TestLowerBoundMonotoneInSpatial(t *testing.T) {
	w := workloads.Conv2D("conv", 2, 8, 8, 14, 14, 3, 3, 1, 1)
	for name, a := range boundArches() {
		sess := Default.NewSession(w, a)
		eFull, cFull := sess.LowerBound(0)
		eHalf, cHalf := sess.LowerBound(2)
		if eFull != eHalf {
			t.Errorf("%s: energy floor moved with maxSpatial: %g vs %g", name, eFull, eHalf)
		}
		if cHalf < cFull {
			t.Errorf("%s: cycle floor dropped when parallelism shrank: %g vs %g", name, cHalf, cFull)
		}
		if eFull <= 0 || cFull <= 0 {
			t.Errorf("%s: degenerate floor (%g, %g)", name, eFull, cFull)
		}
	}
}

package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sunstone/internal/arch"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// randomValidMapping builds a random complete mapping of the 1D conv onto
// TinySpatial by scattering prime factors over levels, retrying until valid.
func randomValidMapping(rng *rand.Rand) *mapping.Mapping {
	w := tensor.MustNew("conv1d",
		map[tensor.Dim]int{"K": 16, "C": 8, "P": 24, "R": 3},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	a := arch.TinySpatial(4096, 1<<18, 8)
	for tries := 0; tries < 200; tries++ {
		m := mapping.New(w, a)
		for _, d := range w.Order {
			for _, p := range factor.Primes(w.Dims[d]) {
				slot := rng.Intn(4)
				switch slot {
				case 0, 1, 2:
					m.Levels[slot].Temporal[d] = m.Levels[slot].T(d) * p
				default:
					m.Levels[1].Spatial[d] = m.Levels[1].S(d) * p
				}
			}
		}
		order := append([]tensor.Dim(nil), w.Order...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for l := 1; l < len(m.Levels); l++ {
			m.Levels[l].Order = order
		}
		if m.Validate() == nil {
			return m
		}
	}
	return nil
}

// TestFlowInvariantsProperty checks, over random valid mappings:
//   - every flow count is non-negative;
//   - child fills are at least parent reads (multicast only amplifies);
//   - input tensors never have parent writes; outputs never have fills;
//   - each tensor's outermost flow moves at least the full tensor once.
func TestFlowInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomValidMapping(rng)
		if m == nil {
			return true // no valid sample for this seed; vacuous
		}
		for _, tn := range m.Workload.Tensors {
			flows := Default.Flows(m, tn)
			if len(flows) < 2 {
				t.Logf("tensor %s has %d flows", tn.Name, len(flows))
				return false
			}
			full := int64(tn.Footprint(m.Extents(len(m.Levels) - 1)))
			for _, fl := range flows {
				if fl.ParentReads < 0 || fl.ParentWrites < 0 || fl.PsumReads < 0 ||
					fl.ChildFills < 0 || fl.ChildDrains < 0 {
					t.Logf("negative flow %+v", fl)
					return false
				}
				if tn.Output {
					if fl.ChildFills != 0 || fl.ParentReads != 0 {
						t.Logf("output tensor with input-style traffic: %+v", fl)
						return false
					}
				} else {
					if fl.ParentWrites != 0 || fl.ChildDrains != 0 {
						t.Logf("input tensor with output-style traffic: %+v", fl)
						return false
					}
					if fl.Child >= 0 && fl.ChildFills < fl.ParentReads {
						t.Logf("fills %d below reads %d", fl.ChildFills, fl.ParentReads)
						return false
					}
				}
			}
			// Outermost pair: the whole tensor crosses at least once.
			last := flows[len(flows)-1]
			if vol := last.ParentReads + last.ParentWrites; vol < full {
				t.Logf("tensor %s outer volume %d below size %d", tn.Name, vol, full)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEvaluateDeterministicProperty: evaluating the same mapping twice gives
// bit-identical energy (guards the sorted-summation fix).
func TestEvaluateDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomValidMapping(rng)
		if m == nil {
			return true
		}
		r1, r2 := Evaluate(m), Evaluate(m)
		return r1.EnergyPJ == r2.EnergyPJ && r1.Cycles == r2.Cycles && r1.EDP == r2.EDP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEnergyLowerBoundProperty: total energy is at least MAC energy, and
// every valid mapping moves each input from DRAM at least once.
func TestEnergyLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomValidMapping(rng)
		if m == nil {
			return true
		}
		r := Evaluate(m)
		if !r.Valid {
			return false
		}
		macE := float64(r.MACs) * m.Arch.MACPJ
		if r.EnergyPJ < macE {
			t.Logf("energy %f below MAC floor %f", r.EnergyPJ, macE)
			return false
		}
		return r.TotalAccesses("DRAM") > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

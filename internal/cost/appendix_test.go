package cost

import (
	"testing"
	"testing/quick"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// abstractProblem builds the Appendix A setting: a problem P(OP1, OP2) over
// dimensions D = {D1..D4} where OP1's non-indexing set A = {D1, D2} is
// exactly OP2's indexing set (A = B'), and vice versa. The output is indexed
// by everything, so its access count is a constant across tilings and the
// appendix's analysis of OP1 + OP2 carries over directly.
func abstractProblem(t testing.TB) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("appendixA",
		map[tensor.Dim]int{"D1": 8, "D2": 8, "D3": 8, "D4": 8},
		&tensor.Tensor{Name: "OP1", Axes: []tensor.Axis{tensor.A("D3"), tensor.A("D4")}},
		&tensor.Tensor{Name: "OP2", Axes: []tensor.Axis{tensor.A("D1"), tensor.A("D2")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{
			tensor.A("D1"), tensor.A("D2"), tensor.A("D3"), tensor.A("D4"),
		}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestAppendixATilingPrinciple verifies the appendix's Equations (8)-(9)
// conclusion as a property: with OP1 reused across the inner L2 loops (its
// non-indexing dims D1, D2 innermost), increasing the L1-tile factors of
// OP1's *indexing* dims (D3, D4) never increases the total upper-level
// access count, for every starting tile shape.
func TestAppendixATilingPrinciple(t *testing.T) {
	w := abstractProblem(t)
	a := arch.Tiny(1 << 20) // capacity never binds: isolate the algebra

	build := func(f1, f2, f3, f4 int) *mapping.Mapping {
		m := mapping.New(w, a)
		m.Levels[0].Temporal = map[tensor.Dim]int{"D1": f1, "D2": f2, "D3": f3, "D4": f4}
		m.Levels[1].Temporal = map[tensor.Dim]int{
			"D1": 8 / f1, "D2": 8 / f2, "D3": 8 / f3, "D4": 8 / f4,
		}
		m.Levels[1].Order = []tensor.Dim{"D1", "D2", "D3", "D4"} // D1,D2 innermost: OP1 reused
		return m
	}
	upperAccesses := func(m *mapping.Mapping) int64 {
		var total int64
		for _, tn := range w.Tensors {
			for _, f := range Default.Flows(m, tn) {
				if f.Parent == 1 {
					total += f.ParentReads + f.ParentWrites + f.PsumReads
				}
			}
		}
		return total
	}

	pick := func(sel uint8) int { return []int{1, 2, 4}[sel%3] }
	prop := func(s1, s2, s3, s4 uint8, growD4 bool) bool {
		f1, f2, f3, f4 := pick(s1), pick(s2), pick(s3), pick(s4)
		base := upperAccesses(build(f1, f2, f3, f4))
		var grown int64
		if growD4 {
			grown = upperAccesses(build(f1, f2, f3, f4*2))
		} else {
			grown = upperAccesses(build(f1, f2, f3*2, f4))
		}
		return grown <= base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAppendixAConverse: growing a NON-indexing dim of the reused operand
// (D1/D2) cannot reduce OP1's own accesses — Eq. (8): OP1's total is the
// full-dimension product regardless. (It may still help OP2, which is why
// those dims are OP2's grow set under the complementary ordering.)
func TestAppendixAConverse(t *testing.T) {
	w := abstractProblem(t)
	a := arch.Tiny(1 << 20)
	m := mapping.New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"D1": 2, "D2": 2, "D3": 2, "D4": 2}
	m.Levels[1].Temporal = map[tensor.Dim]int{"D1": 4, "D2": 4, "D3": 4, "D4": 4}
	m.Levels[1].Order = []tensor.Dim{"D1", "D2", "D3", "D4"}

	op1Reads := func(m *mapping.Mapping) int64 {
		for _, f := range Default.Flows(m, w.Tensor("OP1")) {
			if f.Parent == 1 {
				return f.ParentReads
			}
		}
		return -1
	}
	base := op1Reads(m)
	// Eq. (8): OP1 reads = product of its indexing dims = 8*8 = 64,
	// independent of the D1/D2 split.
	if base != 64 {
		t.Fatalf("OP1 upper reads = %d, want 64 (the full-dimension product)", base)
	}
	m2 := m.Clone()
	m2.Levels[0].Temporal["D1"] = 8
	m2.Levels[1].Temporal["D1"] = 1
	if got := op1Reads(m2); got != base {
		t.Errorf("growing a non-indexing dim changed OP1 accesses: %d -> %d", base, got)
	}
}

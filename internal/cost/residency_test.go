package cost

import (
	"math/rand"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// pinnedModel is the default model with ifmap and ofmap resident at level
// lvl — the shape of the model the fused network scheduler builds for a
// middle member of a fusion group.
func pinnedModel(lvl int) Model {
	m := Default
	m.Resident = &Residency{Pins: []Pin{
		{Tensor: arch.Ofmap, Level: lvl},
		{Tensor: arch.Ifmap, Level: lvl},
	}}
	return m
}

// dramMapping is the trivial everything-at-DRAM mapping: all loops at the top
// level, size-1 tiles below. Valid on any arch whose levels hold a one-element
// tile per tensor.
func dramMapping(w *tensor.Workload, a *arch.Arch) *mapping.Mapping {
	m := mapping.New(w, a)
	top := len(a.Levels) - 1
	for d, n := range w.Dims {
		m.Levels[top].Temporal[d] = n
	}
	return m
}

// TestResidencyZeroDRAMTraffic: pinning a tensor at the outermost on-chip
// level removes every one of its DRAM accesses (the defining property of
// fused execution) and strictly lowers energy; unpinned tensors keep theirs.
func TestResidencyZeroDRAMTraffic(t *testing.T) {
	w := workloads.ResNet18[1].Inference(1)
	a := arch.Conventional() // L1(0), L2(1), DRAM(2)
	m := dramMapping(w, a)

	base := Default.Evaluate(m)
	if !base.Valid {
		t.Fatal("baseline mapping invalid")
	}
	if base.TotalAccesses("DRAM") == 0 {
		t.Fatal("baseline has no DRAM traffic; fixture is broken")
	}

	res := pinnedModel(1).Evaluate(m)
	if !res.Valid {
		t.Fatal("resident mapping invalid")
	}
	for key, acc := range res.Accesses {
		if (acc.Reads != 0 || acc.Writes != 0) &&
			(key == "DRAM/DRAM/"+arch.Ifmap || key == "DRAM/DRAM/"+arch.Ofmap) {
			t.Errorf("pinned tensor still touches DRAM: %s = %+v", key, acc)
		}
	}
	if got := res.TotalAccesses("DRAM/DRAM/" + arch.Weight); got != base.TotalAccesses("DRAM/DRAM/"+arch.Weight) {
		t.Errorf("unpinned weight DRAM traffic changed: %d", got)
	}
	if res.EnergyPJ >= base.EnergyPJ {
		t.Errorf("residency did not lower energy: %v >= %v", res.EnergyPJ, base.EnergyPJ)
	}
}

// TestResidencyBelowInnermostKeeper: a pin below the tensor's innermost
// keeper degrades to that keeper — the flow chain keeps exactly one level
// and the model stays well-defined.
func TestResidencyBelowInnermostKeeper(t *testing.T) {
	w := workloads.ResNet18[1].Inference(1)
	a := arch.Simba() // weight's innermost keeper is the PE register (level 0)
	mo := Default
	mo.Resident = &Residency{Pins: []Pin{{Tensor: arch.Weight, Level: -1}}}
	flows := mo.Flows(dramMapping(w, a), w.Tensor(arch.Weight))
	if len(flows) != 1 || flows[0].Child != -1 {
		t.Fatalf("expected only the datapath flow, got %d flows", len(flows))
	}
}

// TestResidencyFastSlowParity: under a residency model the zero-allocation
// fast path still reproduces Evaluate bit-for-bit on randomized valid and
// invalid mappings — the same contract the resilient-path audit relies on.
func TestResidencyFastSlowParity(t *testing.T) {
	w := workloads.ResNet18[1].Inference(4)
	for _, tc := range []struct {
		name string
		a    *arch.Arch
		lvl  int
	}{
		{"conventional", arch.Conventional(), 1},
		{"simba", arch.Simba(), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model := pinnedModel(tc.lvl)
			ev := model.NewSession(w, tc.a).NewEvaluator()
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 150; i++ {
				checkEquivalence(t, model, ev, randomMappingOn(w, tc.a, rng))
			}
		})
	}
}

// TestResidencyLowerBoundAdmissible: the precomputed lower bound of a
// resident Session never exceeds the true cost of any valid mapping — the
// truncated flow plans feed buildLowerBound, so group-level bound pruning in
// the fusion search stays sound.
func TestResidencyLowerBoundAdmissible(t *testing.T) {
	w := workloads.ResNet18[1].Inference(1)
	a := arch.Conventional()
	model := pinnedModel(1)
	s := model.NewSession(w, a)
	lbE, lbC := s.LowerBound(0)
	ev := s.NewEvaluator()
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 400 && checked < 50; i++ {
		m := randomMappingOn(w, a, rng)
		_, en, cy, valid := ev.EvaluateEDP(m)
		if !valid {
			continue
		}
		checked++
		if lbE > en || lbC > cy {
			t.Fatalf("bound not admissible: lb=(%v pJ, %v cyc) > actual=(%v, %v)", lbE, lbC, en, cy)
		}
	}
	if checked == 0 {
		t.Skip("no valid random mapping sampled")
	}
}

// TestCanonicalPins: deterministic sort order, defensive copy, nil safety.
func TestCanonicalPins(t *testing.T) {
	var nilR *Residency
	if got := nilR.CanonicalPins(); got != nil {
		t.Fatalf("nil residency: got %v", got)
	}
	r := &Residency{Pins: []Pin{{"ofmap", 2}, {"ifmap", 2}, {"ofmap", 1}}}
	got := r.CanonicalPins()
	want := []Pin{{"ifmap", 2}, {"ofmap", 1}, {"ofmap", 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical order: got %v, want %v", got, want)
		}
	}
	if &got[0] == &r.Pins[0] {
		t.Fatal("CanonicalPins must copy")
	}
}

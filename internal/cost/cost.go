// Package cost implements the analytic cost model used to score every
// mapping in this repository — the substitute for the hardware-validated
// Timeloop model the paper evaluates with (see DESIGN.md).
//
// Like Timeloop, the model (1) counts, per storage level and tensor, the
// number of word accesses implied by the mapping's tiling, loop order and
// spatial unrolling; (2) multiplies each count by that component's per-access
// energy; and (3) assumes double buffering hides transfer latency, so delay
// is the maximum of compute time and any single level's transfer time.
//
// The access-count semantics follow the paper's algebra exactly — Equations
// (1)-(3) (temporal tiling) and (5)-(7) (spatial unrolling) of Section III
// are reproduced verbatim by this model and serve as unit tests:
//
//   - For tensor t held at level c with nearest keeper P above it, the data
//     read from P per full execution is passes x footprint(t, c), where
//     passes is the product of the temporal loop bounds at levels (c, P]
//     *excluding* the maximal innermost-contiguous run of loops over
//     t-non-indexing dimensions (Ordering Principles 1-2).
//   - Spatially unrolled dimensions enlarge the aggregate footprint only if
//     they index t; non-indexing spatial dimensions are multicast, costing
//     the parent a single read (the paper's Eqs. (5)-(7)).
//   - Output tensors additionally pay partial-sum writeback and readback
//     whenever a reduction loop sits above an output-indexing loop.
//   - Sliding-window (compound-axis) overlap is modeled when the innermost
//     reuse-breaking loop walks a window dimension: subsequent tiles fetch
//     only the new portion.
package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sunstone/internal/arch"
	"sunstone/internal/faults"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// Probe observes every evaluation before it runs. Stress tests install
// panicking or delaying probes to simulate poisoned cost models; the search
// stack's panic isolation must contain whatever a probe throws.
type Probe interface {
	BeforeEvaluate(m *mapping.Mapping)
}

// Model configures cost evaluation.
type Model struct {
	// SlidingReuse enables the sliding-window overlap discount. On by
	// default (Timeloop models halo reuse too); the paper's Eqs. (1)-(3)
	// hold either way for their loop order.
	SlidingReuse bool
	// Probe, if set, is called at the start of every Evaluate (fault
	// injection for robustness tests; nil in production).
	Probe Probe
	// Resident, when non-nil, marks tensors as resident at an on-chip
	// storage level for fused cross-layer execution: every keeper-pair flow
	// above a pin is cut from that tensor's chain, so no traffic, energy,
	// or bandwidth time is ever charged past the pinned buffer — the fused
	// group's intermediate is handed over in place instead of round-tripping
	// DRAM. Nil (the default) is the ordinary fully-DRAM-backed model.
	Resident *Residency
}

// Pin marks one tensor as resident at one storage level: the tensor's flow
// chain is truncated there, charging zero traffic above Level.
type Pin struct {
	// Tensor is the workload tensor name (e.g. "ofmap").
	Tensor string
	// Level is the storage level index the tensor stays resident at.
	Level int
}

// Residency configures cross-layer buffer residency for fused execution.
// The cost model only cuts the flows above each pin; reserving buffer
// capacity for the resident footprint is the fusion scheduler's job — it
// carves the reserved bytes out of the pinned buffer in a derived Arch
// before solving (see internal/core's fused network scheduler).
type Residency struct {
	Pins []Pin
}

// CanonicalPins returns the pins sorted by (Tensor, Level) — the
// deterministic order cache keys and serializers rely on. A nil receiver
// returns nil.
func (r *Residency) CanonicalPins() []Pin {
	if r == nil || len(r.Pins) == 0 {
		return nil
	}
	out := append([]Pin(nil), r.Pins...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tensor != out[j].Tensor {
			return out[i].Tensor < out[j].Tensor
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// residentKeepers truncates a tensor's keeper-level chain at its residency
// pin, if any: keeper levels above the pin are dropped, so no keeper-pair
// flow — and therefore no traffic, energy, or transfer time — is charged
// past the pinned buffer. The innermost keeper always survives (the datapath
// must be fed from somewhere), so a pin below it degrades to pinning at the
// innermost keeper. Both evaluation
// paths (Flows here, NewSession's flow plans) apply this identically, which
// is what keeps them bit-for-bit interchangeable under residency.
func (mo Model) residentKeepers(name string, keepers []int) []int {
	if mo.Resident == nil {
		return keepers
	}
	for _, p := range mo.Resident.Pins {
		if p.Tensor != name {
			continue
		}
		n := 0
		for _, l := range keepers {
			if l <= p.Level {
				n++
			}
		}
		if n < 1 {
			n = 1
		}
		keepers = keepers[:n]
	}
	return keepers
}

// Default is the model configuration used throughout the experiments.
var Default = Model{SlidingReuse: true}

// Report is the result of evaluating one mapping.
type Report struct {
	Valid bool
	// Invalid holds the legality violation when Valid is false.
	Invalid error

	EnergyPJ float64
	Cycles   float64
	// EDP is EnergyPJ x Cycles.
	EDP float64

	// Breakdown maps component names (buffer names, "MAC", "NoC",
	// "SpatialReduce") to energy in pJ; it sums to EnergyPJ.
	Breakdown map[string]float64
	// Accesses maps "level/buffer/tensor" to {reads, writes} word counts.
	Accesses map[string]Access

	MACs int64
}

// Access is a read/write word-count pair.
type Access struct {
	Reads, Writes int64
}

// Flow describes the traffic between one tensor's adjacent keeper levels.
type Flow struct {
	Tensor        *tensor.Tensor
	Child, Parent int   // level indices; Child == -1 means the MAC datapath
	ParentReads   int64 // words read out of Parent (toward Child)
	ParentWrites  int64 // words written into Parent (from Child; outputs only)
	PsumReads     int64 // partial-sum readback words out of Parent
	ChildFills    int64 // words written into Child instances (inputs)
	ChildDrains   int64 // words read out of Child instances (outputs)
}

// Evaluate validates and scores a mapping with the default model.
func Evaluate(m *mapping.Mapping) Report { return Default.Evaluate(m) }

// Evaluate validates and scores a mapping. Invalid mappings get
// Valid=false and +Inf EDP but are still safe to compare.
func (mo Model) Evaluate(m *mapping.Mapping) Report {
	if mo.Probe != nil {
		mo.Probe.BeforeEvaluate(m)
	}
	// Chaos hook: an injected evaluation fault panics, contained by the
	// caller's per-candidate isolation like any poisoned cost model.
	faults.MustFire(faults.SiteEvaluate)
	r := Report{
		Breakdown: map[string]float64{},
		Accesses:  map[string]Access{},
	}
	if err := m.Validate(); err != nil {
		r.Invalid = err
		r.EDP = inf
		r.EnergyPJ = inf
		r.Cycles = inf
		return r
	}
	r.Valid = true
	r.MACs = m.PaddedMACs()

	a := m.Arch
	r.Breakdown["MAC"] += float64(r.MACs) * a.MACPJ

	// Per-tensor traffic over each adjacent keeper pair, plus the compute
	// level below the innermost keeper.
	for _, t := range m.Workload.Tensors {
		for _, f := range mo.Flows(m, t) {
			mo.account(m, &r, f)
		}
	}

	// Sum in sorted key order: float addition is not associative, and a
	// map-order sum would make equal mappings score differently bit-wise,
	// breaking the search's determinism.
	keys := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.EnergyPJ += r.Breakdown[k]
	}
	r.Cycles = mo.cycles(m, &r)
	r.EDP = r.EnergyPJ * r.Cycles
	return r
}

// Flows computes the traffic of tensor t across every adjacent pair of its
// keeper levels, innermost pair first. The first flow has Child == -1: the
// MAC datapath consuming/producing one word per MAC below t's innermost
// keeper.
func (mo Model) Flows(m *mapping.Mapping, t *tensor.Tensor) []Flow {
	a := m.Arch
	var keepers []int
	for l := 0; l < len(a.Levels); l++ {
		if a.Levels[l].Keeps(t.Name) {
			keepers = append(keepers, l)
		}
	}
	keepers = mo.residentKeepers(t.Name, keepers)
	var flows []Flow
	// Compute <- innermost keeper.
	flows = append(flows, mo.computeFlow(m, t, keepers[0]))
	for i := 0; i+1 < len(keepers); i++ {
		flows = append(flows, mo.pairFlow(m, t, keepers[i], keepers[i+1]))
	}
	return flows
}

// computeFlow models the MAC datapath's consumption of t from its innermost
// keeper k0: each MAC consumes one word of each input and produces one
// update of each output per cycle. Spatial distribution below/at k0 merges
// accesses: multicast (non-indexing unroll) serves several MACs with one
// read, and spatial reduction (reduction-dimension unroll) combines several
// updates into one write.
func (mo Model) computeFlow(m *mapping.Mapping, t *tensor.Tensor, k0 int) Flow {
	f := Flow{Tensor: t, Child: -1, Parent: k0}
	macs := m.PaddedMACs()
	merge := int64(1)
	for l := 0; l <= k0; l++ {
		for d, s := range m.Levels[l].Spatial {
			if s > 1 && !t.Indexing(d) {
				merge *= int64(s)
			}
		}
	}
	// Temporal reuse below the innermost keeper also merges accesses for
	// tensors NOT kept below k0 in registers: every level below k0 has no
	// storage for t, so each MAC's word must be streamed from k0 — except
	// that an innermost run of non-indexing temporal loops re-delivers the
	// same word, which a latch on the datapath holds. We conservatively do
	// not model such implicit latches: accesses merge only spatially.
	if t.Output {
		f.ParentWrites = macs / merge
		f.PsumReads = f.ParentWrites // read-modify-write accumulation
	} else {
		f.ParentReads = macs / merge
	}
	return f
}

// pairFlow computes the traffic between keeper levels c and p (c < p).
//
// Refills of the level-c tile are driven by every temporal loop above c —
// loops above p change p's own tile and therefore also re-trigger refills of
// c — so passes are counted over loops at levels (c, top], with the
// innermost non-indexing run skipped (Ordering Principles 1-2). Spatially
// unrolled indexing dimensions enlarge the aggregate slice read from p
// (footprint automatically ignores non-indexing spatial dims — multicast,
// Eqs. (5)-(7)). Non-indexing spatial unrolling *above* p replicates p's
// tile across p-instances, each of which pays its own accesses.
func (mo Model) pairFlow(m *mapping.Mapping, t *tensor.Tensor, c, p int) Flow {
	f := Flow{Tensor: t, Child: c, Parent: p}
	top := len(m.Levels) - 1

	ext := m.Extents(c)
	for l := c + 1; l <= top; l++ {
		for d, s := range m.Levels[l].Spatial {
			if s > 1 {
				ext[d] *= s
			}
		}
	}
	fp := int64(t.Footprint(ext))
	replication := int64(1)
	for l := p + 1; l <= top; l++ {
		for d, s := range m.Levels[l].Spatial {
			if s > 1 && !t.Indexing(d) {
				replication *= int64(s)
			}
		}
	}
	fp *= replication

	loops := loopsBetween(m, c, top)
	passes, breaker := passCount(t, loops)

	if t.Output {
		outIters := int64(1)
		for _, lp := range loops {
			if lp.bound > 1 && t.Indexing(lp.d) {
				outIters *= int64(lp.bound)
			}
		}
		f.ParentWrites = passes * fp
		f.PsumReads = (passes - outIters) * fp
		f.ChildDrains = f.ParentWrites * spatialReduceWidth(m, t, c, p)
		return f
	}

	reads := passes * fp
	if mo.SlidingReuse && breaker != nil && windowOnly(t, breaker.d) {
		inc := incrementalFootprint(t, ext, breaker.d)
		outer := passes / int64(breaker.bound)
		reads = outer * (fp + int64(breaker.bound-1)*inc)
	}
	f.ParentReads = reads
	f.ChildFills = reads * multicastWidth(m, t, c, p)
	return f
}

// loop is one temporal loop between two keeper levels.
type loop struct {
	d     tensor.Dim
	bound int
	level int
}

// loopsBetween returns the temporal loops at levels (c, p], innermost first
// (within a level, the level's effective order; levels bottom-up).
func loopsBetween(m *mapping.Mapping, c, p int) []loop {
	var loops []loop
	for l := c + 1; l <= p; l++ {
		for _, d := range m.EffectiveOrder(l) {
			loops = append(loops, loop{d: d, bound: m.Levels[l].T(d), level: l})
		}
	}
	return loops
}

// passCount applies Ordering Principles 1-2: the number of times the child
// tile is refilled is the product of all loop bounds except the maximal
// innermost-contiguous run of t-non-indexing loops (bound-1 loops are
// transparent). It also returns the loop that breaks the reuse run (the
// innermost t-indexing loop with bound > 1), or nil.
func passCount(t *tensor.Tensor, loops []loop) (int64, *loop) {
	passes := int64(1)
	inPrefix := true
	var breaker *loop
	for i := range loops {
		lp := &loops[i]
		if lp.bound <= 1 {
			continue
		}
		if inPrefix && !t.Indexing(lp.d) {
			continue // fully reused across this loop
		}
		if inPrefix {
			inPrefix = false
			breaker = lp
		}
		passes *= int64(lp.bound)
	}
	return passes, breaker
}

// windowOnly reports whether every axis of t that involves d is a compound
// (sliding-window) axis, so consecutive steps in d overlap in t.
func windowOnly(t *tensor.Tensor, d tensor.Dim) bool {
	found := false
	for _, a := range t.Axes {
		for _, term := range a {
			if term.D == d {
				if len(a) < 2 {
					return false
				}
				found = true
			}
		}
	}
	return found
}

// incrementalFootprint returns the footprint of the *new* data fetched when
// the tile advances one step along window dimension d: for each compound
// axis containing d, the axis extent is replaced by the step size
// stride_d * ext[d] (capped at the full axis extent).
func incrementalFootprint(t *tensor.Tensor, ext map[tensor.Dim]int, d tensor.Dim) int64 {
	fp := int64(1)
	for _, a := range t.Axes {
		full := a.Extent(ext)
		hasD := false
		var strideD int
		for _, term := range a {
			if term.D == d {
				hasD = true
				strideD = term.Stride
			}
		}
		if hasD && len(a) > 1 {
			step := strideD * ext[d]
			if step > full {
				step = full
			}
			fp *= int64(step)
		} else {
			fp *= int64(full)
		}
	}
	return fp
}

// multicastWidth returns the product of non-indexing spatial unroll factors
// for t at levels (c, p]: how many child instances each parent word is
// delivered to.
func multicastWidth(m *mapping.Mapping, t *tensor.Tensor, c, p int) int64 {
	w := int64(1)
	for l := c + 1; l <= p; l++ {
		for d, s := range m.Levels[l].Spatial {
			if s > 1 && !t.Indexing(d) {
				w *= int64(s)
			}
		}
	}
	return w
}

// spatialReduceWidth is multicastWidth for outputs: the number of child
// partial results combined per parent word (reduction dims are exactly the
// output's non-indexing dims).
func spatialReduceWidth(m *mapping.Mapping, t *tensor.Tensor, c, p int) int64 {
	return multicastWidth(m, t, c, p)
}

// account adds one flow's energy and access counts to the report.
func (mo Model) account(m *mapping.Mapping, r *Report, f Flow) {
	a := m.Arch
	t := f.Tensor
	parent := &a.Levels[f.Parent]
	pbuf := parent.BufferFor(t.Name)

	add := func(lvl int, bufName string, reads, writes int64) {
		key := fmt.Sprintf("%s/%s/%s", a.Levels[lvl].Name, bufName, t.Name)
		acc := r.Accesses[key]
		acc.Reads += reads
		acc.Writes += writes
		r.Accesses[key] = acc
	}

	// Parent-side accesses.
	add(f.Parent, pbuf.Name, f.ParentReads+f.PsumReads, f.ParentWrites)
	r.Breakdown[pbuf.Name] += float64(f.ParentReads+f.PsumReads)*pbuf.ReadPJ +
		float64(f.ParentWrites)*pbuf.WritePJ

	// Child-side accesses (fills for inputs, drains + psum refills for
	// outputs). Child == -1 is the MAC datapath: its operand consumption is
	// part of MAC energy, so only the parent side is billed above.
	if f.Child >= 0 {
		child := &a.Levels[f.Child]
		cbuf := child.BufferFor(t.Name)
		if t.Output {
			add(f.Child, cbuf.Name, f.ChildDrains, f.PsumReads)
			r.Breakdown[cbuf.Name] += float64(f.ChildDrains)*cbuf.ReadPJ +
				float64(f.PsumReads)*cbuf.WritePJ
		} else {
			add(f.Child, cbuf.Name, 0, f.ChildFills)
			r.Breakdown[cbuf.Name] += float64(f.ChildFills) * cbuf.WritePJ
		}
	}

	// NoC distribution/collection energy across the spatial levels the flow
	// traverses.
	lo := f.Child
	if lo < 0 {
		lo = -1
	}
	if t.Output {
		// Collection: child partials flow up, combined at reducing levels.
		vol := float64(f.ParentWrites)
		volBelow := vol * float64(spatialReduceWidth(m, t, f.Child, f.Parent))
		for l := lo + 1; l <= f.Parent; l++ {
			al := &a.Levels[l]
			if al.Fanout <= 1 {
				continue
			}
			rho := levelWidth(m, t, l)
			if rho > 1 {
				r.Breakdown["SpatialReduce"] += volBelow * al.SpatialReducePJ
				volBelow /= float64(rho)
			}
			r.Breakdown["NoC"] += volBelow * al.NoCPerWordPJ
		}
	} else {
		// Distribution: parent words flow down, multicast at each level.
		vol := float64(f.ParentReads)
		for l := f.Parent; l > lo; l-- {
			al := &a.Levels[l]
			if al.Fanout <= 1 {
				continue
			}
			r.Breakdown["NoC"] += vol * al.NoCPerWordPJ
			vol *= float64(levelWidth(m, t, l))
			r.Breakdown["NoC"] += vol * al.NoCTagCheckPJ
		}
	}
}

// levelWidth is the multicast (or reduction) width contributed by level l
// alone for tensor t.
func levelWidth(m *mapping.Mapping, t *tensor.Tensor, l int) int64 {
	w := int64(1)
	for d, s := range m.Levels[l].Spatial {
		if s > 1 && !t.Indexing(d) {
			w *= int64(s)
		}
	}
	return w
}

// cycles computes the double-buffered latency: the maximum of compute time
// and any buffer's transfer time (reads and writes serialized per port,
// parallel instances dividing the traffic).
func (mo Model) cycles(m *mapping.Mapping, r *Report) float64 {
	a := m.Arch
	spatialUsed := 1
	for l := range m.Levels {
		spatialUsed *= m.Levels[l].SpatialProduct()
	}
	compute := float64(r.MACs) / float64(spatialUsed)
	worst := compute

	// Instances of level l actually active = product of used spatial
	// factors above l.
	instAbove := make([]float64, len(a.Levels))
	acc := 1.0
	for l := len(a.Levels) - 1; l >= 0; l-- {
		instAbove[l] = acc
		acc *= float64(m.Levels[l].SpatialProduct())
	}

	for key, accCount := range r.Accesses {
		parts := strings.SplitN(key, "/", 3)
		lvl := levelIndexByName(a, parts[0])
		if lvl < 0 {
			continue
		}
		buf := a.Levels[lvl].BufferFor(parts[2])
		if buf == nil {
			continue
		}
		var t float64
		if buf.ReadBW > 0 {
			t += float64(accCount.Reads) / (buf.ReadBW * instAbove[lvl])
		}
		if buf.WriteBW > 0 {
			t += float64(accCount.Writes) / (buf.WriteBW * instAbove[lvl])
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

func levelIndexByName(a *arch.Arch, name string) int {
	for i := range a.Levels {
		if a.Levels[i].Name == name {
			return i
		}
	}
	return -1
}

// TotalAccesses sums reads+writes for report keys containing substr; handy
// for tests and experiment summaries.
func (r *Report) TotalAccesses(substr string) int64 {
	var n int64
	for k, acc := range r.Accesses {
		if strings.Contains(k, substr) {
			n += acc.Reads + acc.Writes
		}
	}
	return n
}

// BreakdownString renders the energy breakdown sorted by component name.
func (r *Report) BreakdownString() string {
	keys := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-14s %14.1f pJ\n", k, r.Breakdown[k])
	}
	return b.String()
}

var inf = math.Inf(1)

// AccessTable renders the per-level, per-tensor read/write word counts
// sorted by key — the raw quantities behind the energy breakdown (useful
// for comparing against the paper's access-count equations by hand).
func (r *Report) AccessTable() string {
	keys := make([]string, 0, len(r.Accesses))
	for k := range r.Accesses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s\n", "level/buffer/tensor", "reads", "writes")
	for _, k := range keys {
		acc := r.Accesses[k]
		fmt.Fprintf(&b, "%-28s %14d %14d\n", k, acc.Reads, acc.Writes)
	}
	return b.String()
}

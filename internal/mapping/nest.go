package mapping

import (
	"fmt"
	"strings"

	"sunstone/internal/tensor"
)

// NestLoop is one loop of the complete nest a mapping denotes.
type NestLoop struct {
	D tensor.Dim
	// Bound is the loop's iteration count.
	Bound int
	// Stride is the step the loop contributes to the global index of D:
	// the extent of everything nested inside it along D.
	Stride int
	// Level indexes the storage level the loop belongs to.
	Level int
	// Spatial marks parallel (unrolled) loops.
	Spatial bool
}

// Nest returns the mapping's complete loop nest, outermost first. Per level
// (outermost storage first) the spatial loops come first, then the temporal
// loops in the level's effective order (outermost first). Bound-1 loops are
// omitted. Strides are filled so that the global index of dimension d at the
// innermost point is the sum over its loops of index*Stride.
func (m *Mapping) Nest() []NestLoop {
	var nest []NestLoop
	for lvl := len(m.Levels) - 1; lvl >= 0; lvl-- {
		lm := &m.Levels[lvl]
		eo := m.EffectiveOrder(lvl)
		for _, d := range eo {
			if b := lm.S(d); b > 1 {
				nest = append(nest, NestLoop{D: d, Bound: b, Level: lvl, Spatial: true})
			}
		}
		for i := len(eo) - 1; i >= 0; i-- {
			d := eo[i]
			if b := lm.T(d); b > 1 {
				nest = append(nest, NestLoop{D: d, Bound: b, Level: lvl})
			}
		}
	}
	below := map[tensor.Dim]int{}
	for d := range m.Workload.Dims {
		below[d] = 1
	}
	for i := len(nest) - 1; i >= 0; i-- {
		d := nest[i].D
		nest[i].Stride = below[d]
		below[d] *= nest[i].Bound
	}
	return nest
}

// PseudoCode renders the mapping as an Algorithm 2-style nested-loop program
// (the paper's presentation format), annotated with the storage level each
// loop belongs to and "parallel-for" for spatial loops.
func (m *Mapping) PseudoCode() string {
	var b strings.Builder
	nest := m.Nest()
	indent := ""
	for _, lp := range nest {
		kind := "for"
		if lp.Spatial {
			kind = "parallel-for"
		}
		fmt.Fprintf(&b, "%s%s %s%d in [0,%d)         # %s, step %d\n",
			indent, kind, strings.ToLower(string(lp.D)), lp.Level, lp.Bound,
			m.Arch.Levels[lp.Level].Name, lp.Stride)
		indent += "  "
	}
	fmt.Fprintf(&b, "%s%s\n", indent, bodyString(m.Workload))
	return b.String()
}

// bodyString renders the loop body, e.g.
// "ofmap[k][p] += ifmap[p+r][c] * weight[k][c][r]".
func bodyString(w *tensor.Workload) string {
	var parts []string
	for _, t := range w.Inputs() {
		parts = append(parts, tensorRef(t))
	}
	rhs := strings.Join(parts, " * ")
	var outs []string
	for _, t := range w.Outputs() {
		outs = append(outs, tensorRef(t)+" += "+rhs)
	}
	return strings.Join(outs, "; ")
}

func tensorRef(t *tensor.Tensor) string {
	var b strings.Builder
	b.WriteString(t.Name)
	for _, a := range t.Axes {
		fmt.Fprintf(&b, "[%s]", a.String())
	}
	return b.String()
}

package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"sunstone/internal/arch"
	"sunstone/internal/tensor"
)

func conv1D(t testing.TB, k, c, p, r int) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("conv1d",
		map[tensor.Dim]int{"K": k, "C": c, "P": p, "R": r},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// paperMapping builds Algorithm 4 of the paper on the Tiny two-level arch:
// L1 tile (P_L1, K_L1, C_L1, R), DRAM loops (P_L2, K_L2, C_L2) with order
// C innermost, then K, then P.
func paperMapping(t testing.TB, l1Words int) *Mapping {
	t.Helper()
	w := conv1D(t, 4, 4, 14, 3)
	a := arch.Tiny(l1Words)
	m := New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 7, "K": 2, "C": 2, "R": 3}
	m.Levels[1].Temporal = map[tensor.Dim]int{"P": 2, "K": 2, "C": 2}
	m.Levels[1].Order = []tensor.Dim{"C", "K", "P"} // innermost-first
	return m
}

func TestExtents(t *testing.T) {
	m := paperMapping(t, 4096)
	if got := m.Extent("P", 0); got != 7 {
		t.Errorf("P extent at L1 = %d, want 7", got)
	}
	if got := m.Extent("P", 1); got != 14 {
		t.Errorf("P extent at DRAM = %d, want 14", got)
	}
	if got := m.Extent("R", 1); got != 3 {
		t.Errorf("R extent at DRAM = %d, want 3", got)
	}
}

func TestCoverageAndPaddedMACs(t *testing.T) {
	m := paperMapping(t, 4096)
	for _, d := range []tensor.Dim{"K", "C", "P", "R"} {
		if m.Coverage(d) != m.Workload.Dims[d] {
			t.Errorf("coverage of %s = %d, want %d", d, m.Coverage(d), m.Workload.Dims[d])
		}
	}
	if got := m.PaddedMACs(); got != int64(4*4*14*3) {
		t.Errorf("PaddedMACs = %d, want %d", got, 4*4*14*3)
	}
}

func TestValidateOK(t *testing.T) {
	// L1 tile: ifmap (7+3-1)*2=18, weight 2*2*3=12, ofmap 7*2=14 -> 44 words.
	m := paperMapping(t, 44)
	if err := m.Validate(); err != nil {
		t.Fatalf("mapping should be valid: %v", err)
	}
}

func TestValidateCapacityOverflow(t *testing.T) {
	m := paperMapping(t, 43) // one word short
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("want capacity error, got %v", err)
	}
}

func TestValidateCoverage(t *testing.T) {
	m := paperMapping(t, 4096)
	m.Levels[1].Temporal["P"] = 1 // now P covered only 7 < 14
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "coverage") {
		t.Fatalf("want coverage error, got %v", err)
	}
}

func TestValidateFanout(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.TinySpatial(64, 4096, 4)
	m := New(w, a)
	for _, d := range []tensor.Dim{"K", "C", "P", "R"} {
		m.Levels[2].Temporal[d] = w.Dims[d]
	}
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": 8} // fanout is 4
	m.Levels[2].Temporal["K"] = 1
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "fanout") {
		t.Fatalf("want fanout error, got %v", err)
	}
}

func TestValidateSpatialReduction(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.TinySpatial(64, 4096, 4)
	a.Levels[1].AllowSpatialReduction = false
	m := New(w, a)
	for _, d := range []tensor.Dim{"K", "C", "P", "R"} {
		m.Levels[2].Temporal[d] = w.Dims[d]
	}
	m.Levels[1].Spatial = map[tensor.Dim]int{"C": 4} // C is a reduction dim
	m.Levels[2].Temporal["C"] = 2
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "partial sums") {
		t.Fatalf("want spatial-reduction error, got %v", err)
	}
}

func TestValidateNonPositiveFactors(t *testing.T) {
	m := paperMapping(t, 4096)
	m.Levels[0].Temporal["K"] = 0
	if err := m.Validate(); err == nil {
		t.Fatal("want error for zero temporal factor")
	}
	m = paperMapping(t, 4096)
	m.Levels[1].Spatial["K"] = -2
	if err := m.Validate(); err == nil {
		t.Fatal("want error for negative spatial factor")
	}
}

func TestEffectiveOrder(t *testing.T) {
	m := paperMapping(t, 4096)
	order := m.EffectiveOrder(1)
	if len(order) != 4 {
		t.Fatalf("effective order %v should list all 4 dims", order)
	}
	if order[0] != "C" || order[1] != "K" || order[2] != "P" {
		t.Errorf("explicit prefix wrong: %v", order)
	}
	if order[3] != "R" {
		t.Errorf("missing dim should be appended: %v", order)
	}
	// Duplicates and undeclared dims in Order are ignored.
	m.Levels[1].Order = []tensor.Dim{"C", "C", "Z", "K"}
	order = m.EffectiveOrder(1)
	if len(order) != 4 || order[0] != "C" || order[1] != "K" {
		t.Errorf("order with noise = %v", order)
	}
}

func TestUtilization(t *testing.T) {
	m := paperMapping(t, 88) // tile uses 44 words of 88
	u := m.Utilization(0, 0)
	if u < 0.49 || u > 0.51 {
		t.Errorf("L1 utilization = %f, want 0.5", u)
	}
	if m.Utilization(1, 0) != 0 {
		t.Error("unbounded buffer utilization should be 0")
	}
}

func TestPEUtilization(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.TinySpatial(64, 4096, 4)
	m := New(w, a)
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": 2}
	if got := m.PEUtilization(); got != 0.5 {
		t.Errorf("PE utilization = %f, want 0.5", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := paperMapping(t, 4096)
	c := m.Clone()
	c.Levels[0].Temporal["K"] = 99
	c.Levels[1].Order[0] = "P"
	if m.Levels[0].Temporal["K"] == 99 || m.Levels[1].Order[0] == "P" {
		t.Error("Clone must be deep")
	}
}

func TestStringRendersLoops(t *testing.T) {
	m := paperMapping(t, 4096)
	s := m.String()
	for _, want := range []string{"DRAM:", "L1:", "P7", "C2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestExtentMultiplicativeProperty(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 4)
	a := arch.TinySpatial(1024, 65536, 4)
	f := func(t0, t1, t2, s1 uint8) bool {
		m := New(w, a)
		m.Levels[0].Temporal["K"] = int(t0%4) + 1
		m.Levels[1].Temporal["K"] = int(t1%4) + 1
		m.Levels[2].Temporal["K"] = int(t2%4) + 1
		m.Levels[1].Spatial["K"] = int(s1%2) + 1
		want := (int(t0%4) + 1) * (int(t1%4) + 1) * (int(t2%4) + 1) * (int(s1%2) + 1)
		return m.Coverage("K") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFootprintBits(t *testing.T) {
	m := paperMapping(t, 4096)
	// ofmap tile at L1: 7*2 = 14 elements * 16 bits.
	ofm := m.Workload.Tensor(arch.Ofmap)
	if got := m.FootprintBits(ofm, 0); got != 14*16 {
		t.Errorf("FootprintBits = %d, want %d", got, 14*16)
	}
}

func TestStringSpatialRendering(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.TinySpatial(1024, 1<<16, 8)
	m := New(w, a)
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": 4, "C": 2}
	m.Levels[2].Temporal = map[tensor.Dim]int{"K": 2, "C": 4, "P": 16, "R": 3}
	s := m.String()
	if !strings.Contains(s, "[spatial: C2 K4]") {
		t.Errorf("spatial factors not rendered: %s", s)
	}
}

// Package mapping defines the dataflow-mapping representation shared by
// Sunstone and every baseline mapper, plus the legality validator used to
// flag the invalid mappings the paper reports for prior tools.
//
// A mapping assigns to each architecture storage level l (innermost first,
// index-aligned with arch.Arch.Levels):
//
//   - Temporal[d]: the bound of the temporal loop over dimension d at level
//     l — how many level-(l-1) tiles are traversed in time;
//   - Order: the innermost-first order of those temporal loops (the paper's
//     "loop reordering"; only loops with bound > 1 matter);
//   - Spatial[d]: the unroll factor of dimension d across the level's
//     spatial fanout (parallel instances of the subtree below l).
//
// The tile held at level l therefore has, per dimension, extent
// E(d,l) = prod_{l' <= l} Temporal[l'][d] * Spatial[l'][d], and the loops at
// level l+1 iterate over level-l tiles. The product over all levels must
// cover the (possibly padded) problem dimension.
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"sunstone/internal/arch"
	"sunstone/internal/tensor"
)

// LevelMapping holds the loops assigned at one storage level.
type LevelMapping struct {
	// Temporal maps each dimension to its temporal loop bound at this
	// level; missing dimensions default to 1.
	Temporal map[tensor.Dim]int
	// Order lists temporal dimensions innermost-first. Dimensions absent
	// from Order (or with bound 1) are appended outermost in canonical
	// order; bound-1 loops never affect reuse.
	Order []tensor.Dim
	// Spatial maps dimensions to unroll factors across this level's fanout.
	Spatial map[tensor.Dim]int
}

// T returns the temporal bound of d at this level (default 1).
func (lm *LevelMapping) T(d tensor.Dim) int {
	if n, ok := lm.Temporal[d]; ok && n > 0 {
		return n
	}
	return 1
}

// S returns the spatial unroll factor of d at this level (default 1).
func (lm *LevelMapping) S(d tensor.Dim) int {
	if n, ok := lm.Spatial[d]; ok && n > 0 {
		return n
	}
	return 1
}

// SpatialProduct returns the product of all spatial factors at this level.
func (lm *LevelMapping) SpatialProduct() int {
	p := 1
	for _, n := range lm.Spatial {
		if n > 1 {
			p *= n
		}
	}
	return p
}

// Mapping binds a workload to an architecture.
type Mapping struct {
	Workload *tensor.Workload
	Arch     *arch.Arch
	Levels   []LevelMapping // index-aligned with Arch.Levels
}

// New returns a mapping with every loop bound 1 (nothing assigned yet).
func New(w *tensor.Workload, a *arch.Arch) *Mapping {
	m := &Mapping{Workload: w, Arch: a, Levels: make([]LevelMapping, len(a.Levels))}
	for i := range m.Levels {
		m.Levels[i].Temporal = map[tensor.Dim]int{}
		m.Levels[i].Spatial = map[tensor.Dim]int{}
	}
	return m
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{Workload: m.Workload, Arch: m.Arch, Levels: make([]LevelMapping, len(m.Levels))}
	for i := range m.Levels {
		src := &m.Levels[i]
		dst := &c.Levels[i]
		dst.Temporal = make(map[tensor.Dim]int, len(src.Temporal))
		for d, n := range src.Temporal {
			dst.Temporal[d] = n
		}
		dst.Spatial = make(map[tensor.Dim]int, len(src.Spatial))
		for d, n := range src.Spatial {
			dst.Spatial[d] = n
		}
		dst.Order = append([]tensor.Dim(nil), src.Order...)
	}
	return c
}

// Extent returns the tile extent of dimension d at level lvl:
// the product of temporal and spatial factors at levels 0..lvl.
func (m *Mapping) Extent(d tensor.Dim, lvl int) int {
	e := 1
	for l := 0; l <= lvl && l < len(m.Levels); l++ {
		e *= m.Levels[l].T(d) * m.Levels[l].S(d)
	}
	return e
}

// Extents returns the per-dimension tile extents at level lvl.
func (m *Mapping) Extents(lvl int) map[tensor.Dim]int {
	ext := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d := range m.Workload.Dims {
		ext[d] = m.Extent(d, lvl)
	}
	return ext
}

// Coverage returns the total factor product for dimension d across all
// levels (temporal and spatial). A legal mapping has Coverage(d) >= Dims[d].
func (m *Mapping) Coverage(d tensor.Dim) int {
	return m.Extent(d, len(m.Levels)-1)
}

// PaddedMACs returns the number of loop-body evaluations the mapping actually
// executes (including padding waste): the product of per-dimension coverage.
func (m *Mapping) PaddedMACs() int64 {
	p := int64(1)
	for d := range m.Workload.Dims {
		p *= int64(m.Coverage(d))
	}
	return p
}

// EffectiveOrder returns the complete innermost-first temporal loop order at
// level lvl: the explicit Order first, then any remaining dimensions in
// canonical workload order.
func (m *Mapping) EffectiveOrder(lvl int) []tensor.Dim {
	lm := &m.Levels[lvl]
	seen := map[tensor.Dim]bool{}
	out := make([]tensor.Dim, 0, len(m.Workload.Dims))
	for _, d := range lm.Order {
		if _, declared := m.Workload.Dims[d]; declared && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, d := range m.Workload.Order {
		if !seen[d] {
			out = append(out, d)
		}
	}
	return out
}

// FootprintBits returns the storage, in bits, tensor t occupies at level lvl.
func (m *Mapping) FootprintBits(t *tensor.Tensor, lvl int) int64 {
	fp := int64(t.Footprint(m.Extents(lvl)))
	return fp * int64(m.Arch.Bits(t.Name))
}

// Validate checks full mapping legality:
//
//  1. coverage: per-dimension factor products cover the problem bounds;
//  2. capacity: at every level, for every buffer, the tiles of the tensors
//     it holds fit (the invalidity mode the paper reports for CoSA and
//     dMazeRunner);
//  3. fanout: the spatial factor product at each level fits its fanout;
//  4. spatial reduction: reduction dimensions are unrolled only across
//     levels that support combining partial sums.
func (m *Mapping) Validate() error {
	for _, d := range m.Workload.Order {
		if m.Coverage(d) < m.Workload.Dims[d] {
			return fmt.Errorf("dimension %s: coverage %d < bound %d", d, m.Coverage(d), m.Workload.Dims[d])
		}
	}
	for lvl := range m.Levels {
		al := &m.Arch.Levels[lvl]
		// Top level is unbounded; skip capacity there.
		if lvl < len(m.Levels)-1 {
			ext := m.Extents(lvl)
			for bi := range al.Buffers {
				buf := &al.Buffers[bi]
				if buf.Bytes == 0 {
					continue
				}
				var usedBits int64
				for _, t := range m.Workload.Tensors {
					if buf.Holds(t.Name) && m.heldHere(t.Name, lvl, bi) {
						usedBits += int64(t.Footprint(ext)) * int64(m.Arch.Bits(t.Name))
					}
				}
				if capBits := buf.Bytes * 8; usedBits > capBits {
					return fmt.Errorf("level %s buffer %s: tile needs %d bits, capacity %d bits",
						al.Name, buf.Name, usedBits, capBits)
				}
			}
		}
		lm := &m.Levels[lvl]
		if sp := lm.SpatialProduct(); sp > al.Fanout {
			return fmt.Errorf("level %s: spatial product %d exceeds fanout %d", al.Name, sp, al.Fanout)
		}
		if !al.AllowSpatialReduction {
			for _, d := range m.Workload.ReductionDims() {
				if lm.S(d) > 1 {
					return fmt.Errorf("level %s: reduction dimension %s unrolled spatially but level cannot combine partial sums", al.Name, d)
				}
			}
		}
		for d, n := range lm.Temporal {
			if n < 1 {
				return fmt.Errorf("level %s: non-positive temporal factor %d for %s", al.Name, n, d)
			}
		}
		for d, n := range lm.Spatial {
			if n < 1 {
				return fmt.Errorf("level %s: non-positive spatial factor %d for %s", al.Name, n, d)
			}
		}
	}
	return nil
}

// heldHere reports whether tensor name is actually resident in buffer bi of
// level lvl: the buffer must hold it and the level must be on the tensor's
// keep chain (a level whose buffers exclude the tensor is a bypass level).
func (m *Mapping) heldHere(name string, lvl, bi int) bool {
	return m.Arch.Levels[lvl].Buffers[bi].Holds(name) && m.Arch.Levels[lvl].Keeps(name)
}

// Utilization returns, for buffer bi at level lvl, the fraction of capacity
// the mapped tiles occupy (0 for unbounded buffers). Used by the
// dMazeRunner-style utilization-threshold heuristics.
func (m *Mapping) Utilization(lvl, bi int) float64 {
	buf := &m.Arch.Levels[lvl].Buffers[bi]
	if buf.Bytes == 0 {
		return 0
	}
	ext := m.Extents(lvl)
	var usedBits int64
	for _, t := range m.Workload.Tensors {
		if buf.Holds(t.Name) {
			usedBits += int64(t.Footprint(ext)) * int64(m.Arch.Bits(t.Name))
		}
	}
	return float64(usedBits) / float64(buf.Bytes*8)
}

// PEUtilization returns the fraction of the total spatial MAC fanout the
// mapping actually uses.
func (m *Mapping) PEUtilization() float64 {
	used, avail := 1, 1
	for lvl := range m.Levels {
		used *= m.Levels[lvl].SpatialProduct()
		avail *= m.Arch.Levels[lvl].Fanout
	}
	return float64(used) / float64(avail)
}

// String renders the mapping level by level, outermost first, in the paper's
// loop-order notation (e.g. "DRAM: K4 P2 | L1: C4 R3 ...").
func (m *Mapping) String() string {
	var b strings.Builder
	for lvl := len(m.Levels) - 1; lvl >= 0; lvl-- {
		lm := &m.Levels[lvl]
		fmt.Fprintf(&b, "%s:", m.Arch.Levels[lvl].Name)
		order := m.EffectiveOrder(lvl)
		for i := len(order) - 1; i >= 0; i-- { // print outermost first
			d := order[i]
			if lm.T(d) > 1 {
				fmt.Fprintf(&b, " %s%d", d, lm.T(d))
			}
		}
		if sp := lm.SpatialProduct(); sp > 1 {
			b.WriteString(" [spatial:")
			var ds []tensor.Dim
			for d := range lm.Spatial {
				if lm.S(d) > 1 {
					ds = append(ds, d)
				}
			}
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			for _, d := range ds {
				fmt.Fprintf(&b, " %s%d", d, lm.S(d))
			}
			b.WriteString("]")
		}
		if lvl > 0 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

package mapping

import (
	"strings"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/tensor"
)

func TestNestStructure(t *testing.T) {
	m := paperMapping(t, 4096)
	nest := m.Nest()
	// Loops: DRAM C2 K2 P2 (order [C,K,P] innermost-first -> P,K,C outer
	// to inner) then L1 P7 K2 C2 R3 (canonical order, bound-1 loops
	// dropped, none here).
	if len(nest) != 7 {
		t.Fatalf("nest has %d loops, want 7: %+v", len(nest), nest)
	}
	// Outermost three loops are the DRAM level's, P first (it is the
	// outermost of the innermost-first order [C,K,P]).
	if nest[0].D != "P" || nest[0].Level != 1 {
		t.Errorf("outermost loop = %+v, want DRAM P", nest[0])
	}
	if nest[2].D != "C" || nest[2].Level != 1 {
		t.Errorf("third loop = %+v, want DRAM C (innermost of L2)", nest[2])
	}
	// Strides: DRAM P loop steps by the L1 extent of P (7).
	if nest[0].Stride != 7 {
		t.Errorf("DRAM P stride = %d, want 7", nest[0].Stride)
	}
	// Coverage check: per dim, product of bounds == coverage, and the
	// innermost loop of each dim has stride 1.
	prod := map[tensor.Dim]int{}
	innermostStride := map[tensor.Dim]int{}
	for _, lp := range nest {
		if prod[lp.D] == 0 {
			prod[lp.D] = 1
		}
		prod[lp.D] *= lp.Bound
		innermostStride[lp.D] = lp.Stride
	}
	for d, p := range prod {
		if p != m.Coverage(d) {
			t.Errorf("dim %s: nest product %d != coverage %d", d, p, m.Coverage(d))
		}
		if innermostStride[d] != 1 {
			t.Errorf("dim %s: innermost stride %d, want 1", d, innermostStride[d])
		}
	}
}

func TestNestSpatialLoopsMarked(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.TinySpatial(1024, 1<<16, 8)
	m := New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 4, "R": 3}
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": 8}
	m.Levels[2].Temporal = map[tensor.Dim]int{"K": 1, "C": 8, "P": 4}
	spatialSeen := false
	for _, lp := range m.Nest() {
		if lp.Spatial {
			spatialSeen = true
			if lp.D != "K" || lp.Bound != 8 {
				t.Errorf("unexpected spatial loop %+v", lp)
			}
		}
	}
	if !spatialSeen {
		t.Error("spatial loop missing from nest")
	}
}

func TestPseudoCode(t *testing.T) {
	m := paperMapping(t, 4096)
	code := m.PseudoCode()
	if !strings.Contains(code, "for p1 in [0,2)") {
		t.Errorf("missing DRAM P loop:\n%s", code)
	}
	if !strings.Contains(code, "ofmap[k][p] += ifmap[p+r][c] * weight[k][c][r]") {
		t.Errorf("missing loop body:\n%s", code)
	}
	if strings.Contains(code, "parallel-for") {
		t.Errorf("no spatial loops in this mapping:\n%s", code)
	}
	// Indentation deepens monotonically.
	lines := strings.Split(strings.TrimRight(code, "\n"), "\n")
	if len(lines) != 8 {
		t.Errorf("expected 7 loops + body, got %d lines", len(lines))
	}
}

func TestPseudoCodeSpatial(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	a := arch.TinySpatial(1024, 1<<16, 8)
	m := New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 4, "R": 3, "C": 8}
	m.Levels[1].Spatial = map[tensor.Dim]int{"K": 8}
	m.Levels[2].Temporal = map[tensor.Dim]int{"P": 4}
	code := m.PseudoCode()
	if !strings.Contains(code, "parallel-for k1 in [0,8)") {
		t.Errorf("spatial loop not rendered as parallel-for:\n%s", code)
	}
}

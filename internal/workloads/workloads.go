// Package workloads provides constructors for every tensor-algebra workload
// class of Table II of the paper — convolution (inference and weight-update
// forms, strided and asymmetric), MTTKRP, SDDMM, TTMc, MMc, and TCL — plus
// the concrete layer tables and dataset dimensions the evaluation uses
// (ResNet-18, Inception-v3, FROSTT tensors, SuiteSparse matrices).
//
// Mappers only ever consume dimension *bounds*; the published dataset
// dimensions are used verbatim, and no tensor data is materialized (see
// DESIGN.md substitution table).
package workloads

import (
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/tensor"
)

// Conv2D returns a 2D convolution layer:
//
//	ofmap[n,k,p,q] = sum_{c,r,s} ifmap[n,c,strideH*p+r,strideW*q+s] * weight[k,c,r,s]
//
// with N batch, K output channels, C input channels, PxQ output feature map,
// RxS filter. Asymmetric filters (R != S) and strides are supported.
func Conv2D(name string, n, k, c, p, q, r, s, strideH, strideW int) *tensor.Workload {
	dims := map[tensor.Dim]int{"N": n, "K": k, "C": c, "P": p, "Q": q, "R": r, "S": s}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{
			tensor.A("N"), tensor.A("C"),
			tensor.Win("P", strideH, "R", 1),
			tensor.Win("Q", strideW, "S", 1),
		}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{
			tensor.A("K"), tensor.A("C"), tensor.A("R"), tensor.A("S"),
		}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{
			tensor.A("N"), tensor.A("K"), tensor.A("P"), tensor.A("Q"),
		}, Output: true},
	)
}

// Conv2DWeightUpdate returns the weight-gradient (training back-propagation)
// form of a convolution layer — the workload of Fig. 7:
//
//	wgrad[k,c,r,s] = sum_{n,p,q} ograd[n,k,p,q] * ifmap[n,c,p+r,q+s]
//
// The output (wgrad, stored as the "weight" datatype) is indexed by the
// filter dimensions, and the batch/feature-map dimensions become reductions,
// giving a memory-access pattern quite different from inference.
func Conv2DWeightUpdate(name string, n, k, c, p, q, r, s int) *tensor.Workload {
	dims := map[tensor.Dim]int{"N": n, "K": k, "C": c, "P": p, "Q": q, "R": r, "S": s}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{
			tensor.A("N"), tensor.A("C"),
			tensor.Win("P", 1, "R", 1),
			tensor.Win("Q", 1, "S", 1),
		}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{
			tensor.A("N"), tensor.A("K"), tensor.A("P"), tensor.A("Q"),
		}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{
			tensor.A("K"), tensor.A("C"), tensor.A("R"), tensor.A("S"),
		}, Output: true},
	)
}

// FC returns a fully-connected (matrix-multiply) layer:
// out[n,k] = sum_c in[n,c] * w[k,c].
func FC(name string, n, k, c int) *tensor.Workload {
	dims := map[tensor.Dim]int{"N": n, "K": k, "C": c}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.A("N"), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("N"), tensor.A("K")}, Output: true},
	)
}

// MTTKRP returns the matricized tensor times Khatri-Rao product (the
// bottleneck of CP decomposition):
//
//	out[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j]
//
// with i,k,l the 3D tensor's mode sizes and j the decomposition rank.
func MTTKRP(name string, i, k, l, rank int) *tensor.Workload {
	dims := map[tensor.Dim]int{"I": i, "J": rank, "K": k, "L": l}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("K"), tensor.A("L")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("K"), tensor.A("J")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("L"), tensor.A("J")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}, Output: true},
	)
}

// SDDMM returns the sampled dense-dense matrix multiplication used in
// alternating least squares:
//
//	out[i,j] = A[i,j] * sum_k B[i,k] * C[k,j]
func SDDMM(name string, i, j, k int) *tensor.Workload {
	dims := map[tensor.Dim]int{"I": i, "J": j, "K": k}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("I"), tensor.A("K")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("K"), tensor.A("J")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}, Output: true},
	)
}

// TTMc returns the tensor-times-matrix chain (the bottleneck of Tucker
// decomposition):
//
//	out[i,l,m] = sum_{j,k} A[i,j,k] * B[j,l] * C[k,m]
func TTMc(name string, i, j, k, rank int) *tensor.Workload {
	dims := map[tensor.Dim]int{"I": i, "J": j, "K": k, "L": rank, "M": rank}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J"), tensor.A("K")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("J"), tensor.A("L")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("K"), tensor.A("M")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("L"), tensor.A("M")}, Output: true},
	)
}

// MMc returns the matrix-multiply chain found in attention models:
//
//	out[i,l] = sum_{j,k} A[i,j] * B[j,k] * C[k,l]
func MMc(name string, i, j, k, l int) *tensor.Workload {
	dims := map[tensor.Dim]int{"I": i, "J": j, "K": k, "L": l}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("J"), tensor.A("K")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("K"), tensor.A("L")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("L")}, Output: true},
	)
}

// TCL returns a tensor contraction layer:
//
//	out[l,m,n] = sum_{i,j,k} A[i,j,k] * B[i,l] * C[j,m] * D[k,n]
func TCL(name string, i, j, k, l, m, n int) *tensor.Workload {
	dims := map[tensor.Dim]int{"I": i, "J": j, "K": k, "L": l, "M": m, "N": n}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J"), tensor.A("K")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("I"), tensor.A("L")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("J"), tensor.A("M")}},
		&tensor.Tensor{Name: "D", Axes: []tensor.Axis{tensor.A("K"), tensor.A("N")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("L"), tensor.A("M"), tensor.A("N")}, Output: true},
	)
}

// Conv1D returns the paper's running 1D-convolution example (Section II-C):
// ofmap[k,p] = sum_{c,r} ifmap[p+r,c] * weight[k,c,r].
func Conv1D(name string, k, c, p, r int) *tensor.Workload {
	dims := map[tensor.Dim]int{"K": k, "C": c, "P": p, "R": r}
	return tensor.MustNew(name, dims,
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
}

// sized helps format layer names.
func sized(prefix string, k, c, p, q, r, s int) string {
	return fmt.Sprintf("%s_k%d_c%d_%dx%d_%dx%d", prefix, k, c, p, q, r, s)
}

package workloads

import "sunstone/internal/tensor"

// ConvShape describes one convolution layer's geometry.
type ConvShape struct {
	Name             string
	K, C, P, Q, R, S int
	StrideH, StrideW int
}

// Inference instantiates the layer as an inference convolution at batch n.
func (cs ConvShape) Inference(n int) *tensor.Workload {
	return Conv2D(cs.Name, n, cs.K, cs.C, cs.P, cs.Q, cs.R, cs.S, cs.StrideH, cs.StrideW)
}

// WeightUpdate instantiates the layer's weight-gradient computation at batch
// n (stride-1 form; strided layers are trained on the dilated gradient,
// which has the same loop structure).
func (cs ConvShape) WeightUpdate(n int) *tensor.Workload {
	return Conv2DWeightUpdate(cs.Name+"_wu", n, cs.K, cs.C, cs.P, cs.Q, cs.R, cs.S)
}

// ResNet18 lists the distinct convolution layer shapes of ResNet-18 (He et
// al., CVPR 2016) for 224x224 inputs. Repeated blocks share a shape and are
// listed once (the paper's per-layer figures do the same).
var ResNet18 = []ConvShape{
	{Name: "conv1", K: 64, C: 3, P: 112, Q: 112, R: 7, S: 7, StrideH: 2, StrideW: 2},
	{Name: "conv2_x", K: 64, C: 64, P: 56, Q: 56, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv3_1", K: 128, C: 64, P: 28, Q: 28, R: 3, S: 3, StrideH: 2, StrideW: 2},
	{Name: "conv3_ds", K: 128, C: 64, P: 28, Q: 28, R: 1, S: 1, StrideH: 2, StrideW: 2},
	{Name: "conv3_x", K: 128, C: 128, P: 28, Q: 28, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv4_1", K: 256, C: 128, P: 14, Q: 14, R: 3, S: 3, StrideH: 2, StrideW: 2},
	{Name: "conv4_ds", K: 256, C: 128, P: 14, Q: 14, R: 1, S: 1, StrideH: 2, StrideW: 2},
	{Name: "conv4_x", K: 256, C: 256, P: 14, Q: 14, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv5_1", K: 512, C: 256, P: 7, Q: 7, R: 3, S: 3, StrideH: 2, StrideW: 2},
	{Name: "conv5_ds", K: 512, C: 256, P: 7, Q: 7, R: 1, S: 1, StrideH: 2, StrideW: 2},
	{Name: "conv5_x", K: 512, C: 512, P: 7, Q: 7, R: 3, S: 3, StrideH: 1, StrideW: 1},
}

// ResNet18Repeats gives the occurrence count of each ResNet18 shape in the
// full 18-layer network (the per-shape table lists distinct shapes once).
func ResNet18Repeats() []int {
	return []int{
		1, // conv1
		4, // conv2_x
		1, // conv3_1
		1, // conv3_ds
		3, // conv3_x
		1, // conv4_1
		1, // conv4_ds
		3, // conv4_x
		1, // conv5_1
		1, // conv5_ds
		3, // conv5_x
	}
}

// InceptionV3 lists representative convolution layers of Inception-v3
// (Szegedy et al., CVPR 2016), including the asymmetric 1x7/7x1 ("deep"
// 17x17 grid) and 3x1/1x3 (8x8 grid) factorized convolutions that Fig. 7
// highlights (dMazeRunner cannot map the asymmetric ones).
var InceptionV3 = []ConvShape{
	{Name: "conv1_3x3s2", K: 32, C: 3, P: 149, Q: 149, R: 3, S: 3, StrideH: 2, StrideW: 2},
	{Name: "conv2_3x3", K: 32, C: 32, P: 147, Q: 147, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv4_1x1", K: 80, C: 64, P: 73, Q: 73, R: 1, S: 1, StrideH: 1, StrideW: 1},
	{Name: "conv5_3x3", K: 192, C: 80, P: 71, Q: 71, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "5x5_mixed", K: 64, C: 48, P: 35, Q: 35, R: 5, S: 5, StrideH: 1, StrideW: 1},
	{Name: "3x3_mixed", K: 96, C: 64, P: 35, Q: 35, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "1x7_deep", K: 192, C: 768, P: 17, Q: 17, R: 1, S: 7, StrideH: 1, StrideW: 1},
	{Name: "7x1_deep", K: 192, C: 192, P: 17, Q: 17, R: 7, S: 1, StrideH: 1, StrideW: 1},
	{Name: "3x1_deep", K: 384, C: 448, P: 8, Q: 8, R: 3, S: 1, StrideH: 1, StrideW: 1},
	{Name: "1x1_deep", K: 320, C: 1280, P: 8, Q: 8, R: 1, S: 1, StrideH: 1, StrideW: 1},
}

// InceptionExampleLayer is the Inception-v3 layer used for the Table I
// space-size comparison: the 17x17-grid 7x1 factorized convolution.
var InceptionExampleLayer = InceptionV3[7]

// TensorDataset holds the published mode sizes of a 3D sparse tensor
// (FROSTT). A mapper consumes only these bounds.
type TensorDataset struct {
	Name    string
	I, J, K int
}

// FROSTT datasets used by Figs. 6a/6b (dimensions from frostt.io).
var (
	Nell2   = TensorDataset{Name: "nell2", I: 12092, J: 9184, K: 28818}
	Netflix = TensorDataset{Name: "netflix", I: 480189, J: 17770, K: 2182}
	// Poisson1 is a synthetic stand-in for the paper's "poisson1" FROSTT
	// entry (a regular 3D Poisson-problem tensor); the published FROSTT
	// suite's closest regular grid is used. See DESIGN.md substitutions.
	Poisson1 = TensorDataset{Name: "poisson1", I: 1024, J: 1024, K: 1024}
)

// MatrixDataset holds the dimensions of a SuiteSparse matrix.
type MatrixDataset struct {
	Name string
	Rows int
	Cols int
}

// SuiteSparse matrices used for SDDMM (dimensions from the UF collection).
var (
	Bcsstk17 = MatrixDataset{Name: "bcsstk17", Rows: 10974, Cols: 10974}
	Cant     = MatrixDataset{Name: "cant", Rows: 62451, Cols: 62451}
)

// MTTKRPOn instantiates MTTKRP at the paper's rank 32 on a dataset.
func MTTKRPOn(d TensorDataset) *tensor.Workload {
	return MTTKRP("mttkrp_"+d.Name, d.I, d.J, d.K, 32)
}

// TTMcOn instantiates TTMc at the paper's rank 8 on a dataset.
func TTMcOn(d TensorDataset) *tensor.Workload {
	return TTMc("ttmc_"+d.Name, d.I, d.J, d.K, 8)
}

// SDDMMOn instantiates SDDMM at the paper's rank 512 on a matrix.
func SDDMMOn(d MatrixDataset) *tensor.Workload {
	return SDDMM("sddmm_"+d.Name, d.Rows, d.Cols, 512)
}

// AttentionMMc is the Table II MMc instance (Transformer attention:
// scores = Q*K^T then context = scores*V, fused as a matrix chain), sized
// for a BERT-base-like layer (sequence 512, head dim 64).
var AttentionMMc = MMc("attention_mmc", 512, 64, 512, 64)

// AlexNetTCL and VGGTCL are the Table II tensor-contraction-layer instances
// (Kossaifi et al.): contracting the final conv feature map of each network
// to a rank-(32,32,32) core.
var (
	AlexNetTCL = TCL("tcl_alexnet", 256, 6, 6, 32, 32, 32)
	VGGTCL     = TCL("tcl_vgg", 512, 7, 7, 32, 32, 32)
)

// AlexNet lists the five convolution layers of AlexNet (Krizhevsky et al.,
// 2012), a Table II application instance for the TCL workloads and a common
// mapper benchmark.
var AlexNet = []ConvShape{
	{Name: "conv1", K: 96, C: 3, P: 55, Q: 55, R: 11, S: 11, StrideH: 4, StrideW: 4},
	{Name: "conv2", K: 256, C: 96, P: 27, Q: 27, R: 5, S: 5, StrideH: 1, StrideW: 1},
	{Name: "conv3", K: 384, C: 256, P: 13, Q: 13, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv4", K: 384, C: 384, P: 13, Q: 13, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv5", K: 256, C: 384, P: 13, Q: 13, R: 3, S: 3, StrideH: 1, StrideW: 1},
}

// VGG16 lists the distinct convolution shapes of VGG-16 (Simonyan &
// Zisserman, 2014); repeated same-shape layers appear once.
var VGG16 = []ConvShape{
	{Name: "conv1_1", K: 64, C: 3, P: 224, Q: 224, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv1_2", K: 64, C: 64, P: 224, Q: 224, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv2_1", K: 128, C: 64, P: 112, Q: 112, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv2_2", K: 128, C: 128, P: 112, Q: 112, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv3_1", K: 256, C: 128, P: 56, Q: 56, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv3_x", K: 256, C: 256, P: 56, Q: 56, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv4_1", K: 512, C: 256, P: 28, Q: 28, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv4_x", K: 512, C: 512, P: 28, Q: 28, R: 3, S: 3, StrideH: 1, StrideW: 1},
	{Name: "conv5_x", K: 512, C: 512, P: 14, Q: 14, R: 3, S: 3, StrideH: 1, StrideW: 1},
}

package workloads

import (
	"reflect"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/tensor"
)

func TestAllConstructorsValidate(t *testing.T) {
	ws := []*tensor.Workload{
		Conv2D("c", 2, 8, 8, 14, 14, 3, 3, 1, 1),
		Conv2D("c_strided", 2, 8, 3, 7, 7, 7, 7, 2, 2),
		Conv2DWeightUpdate("cwu", 2, 8, 8, 14, 14, 3, 3),
		FC("fc", 4, 100, 200),
		MTTKRP("m", 100, 50, 60, 32),
		SDDMM("s", 100, 100, 512),
		TTMc("t", 100, 50, 60, 8),
		MMc("mm", 64, 64, 64, 64),
		TCL("tcl", 16, 6, 6, 32, 32, 32),
		Conv1D("c1", 4, 4, 7, 3),
		AttentionMMc, AlexNetTCL, VGGTCL,
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestConvMACCount(t *testing.T) {
	w := Conv2D("c", 2, 8, 4, 14, 14, 3, 3, 1, 1)
	if got, want := w.MACs(), int64(2*8*4*14*14*3*3); got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
}

func TestConvStrideFootprint(t *testing.T) {
	w := Conv2D("c", 1, 8, 3, 7, 7, 3, 3, 2, 2)
	// ifmap extent along P axis: 2*(7-1)+3 = 15.
	fp := w.Tensor(arch.Ifmap).Footprint(w.FullExtents())
	if fp != 1*3*15*15 {
		t.Errorf("strided ifmap footprint = %d, want %d", fp, 3*15*15)
	}
}

func TestWeightUpdateReuseStructure(t *testing.T) {
	// In the weight-update form, N/P/Q are reductions and the weight
	// gradient is the output.
	w := Conv2DWeightUpdate("wu", 16, 8, 8, 14, 14, 3, 3)
	if got, want := w.ReductionDims(), []tensor.Dim{"N", "P", "Q"}; !reflect.DeepEqual(got, want) {
		t.Errorf("weight-update reductions = %v, want %v", got, want)
	}
	outs := w.Outputs()
	if len(outs) != 1 || outs[0].Name != arch.Weight {
		t.Errorf("weight-update output should be the weight tensor, got %v", outs)
	}
}

func TestMTTKRPStructure(t *testing.T) {
	w := MTTKRPOn(Nell2)
	if w.Dims["I"] != 12092 || w.Dims["J"] != 32 || w.Dims["K"] != 9184 || w.Dims["L"] != 28818 {
		t.Errorf("nell2 MTTKRP dims wrong: %v", w.Dims)
	}
	if got, want := w.ReductionDims(), []tensor.Dim{"K", "L"}; !reflect.DeepEqual(got, want) {
		t.Errorf("MTTKRP reductions = %v, want %v", got, want)
	}
}

func TestSDDMMStructure(t *testing.T) {
	w := SDDMMOn(Bcsstk17)
	if w.Dims["K"] != 512 {
		t.Errorf("SDDMM rank = %d, want 512", w.Dims["K"])
	}
	// A is an input indexed exactly like the output (the sampling matrix).
	a := w.Tensor("A")
	out := w.Tensor("out")
	if !reflect.DeepEqual(a.IndexingDims(), out.IndexingDims()) {
		t.Error("SDDMM sampling matrix must share the output's indexing")
	}
}

func TestTTMcStructure(t *testing.T) {
	w := TTMcOn(Netflix)
	if w.Dims["L"] != 8 || w.Dims["M"] != 8 {
		t.Errorf("TTMc rank dims = %d,%d, want 8,8", w.Dims["L"], w.Dims["M"])
	}
	if got, want := w.ReductionDims(), []tensor.Dim{"J", "K"}; !reflect.DeepEqual(got, want) {
		t.Errorf("TTMc reductions = %v, want %v", got, want)
	}
}

func TestResNet18Table(t *testing.T) {
	if len(ResNet18) < 10 {
		t.Fatalf("ResNet-18 table has %d shapes", len(ResNet18))
	}
	for _, cs := range ResNet18 {
		w := cs.Inference(16)
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
		if w.Dims["N"] != 16 {
			t.Errorf("%s: batch not applied", cs.Name)
		}
	}
	// conv1 is the strided 7x7 stem.
	if ResNet18[0].R != 7 || ResNet18[0].StrideH != 2 {
		t.Error("ResNet-18 conv1 shape wrong")
	}
}

func TestInceptionAsymmetricLayers(t *testing.T) {
	var found1x7, found3x1 bool
	for _, cs := range InceptionV3 {
		if cs.Name == "1x7_deep" {
			found1x7 = true
			if cs.R != 1 || cs.S != 7 {
				t.Error("1x7_deep must be asymmetric (R=1,S=7)")
			}
		}
		if cs.Name == "3x1_deep" {
			found3x1 = true
			if cs.R != 3 || cs.S != 1 {
				t.Error("3x1_deep must be asymmetric (R=3,S=1)")
			}
		}
		if err := cs.WeightUpdate(16).Validate(); err != nil {
			t.Errorf("%s weight update: %v", cs.Name, err)
		}
	}
	if !found1x7 || !found3x1 {
		t.Error("Fig. 7's asymmetric layers missing from the Inception table")
	}
}

func TestDatasetDims(t *testing.T) {
	if Nell2.I != 12092 || Netflix.I != 480189 || Bcsstk17.Rows != 10974 || Cant.Rows != 62451 {
		t.Error("published dataset dimensions altered")
	}
}

func TestSizedHelper(t *testing.T) {
	if sized("x", 1, 2, 3, 4, 5, 6) != "x_k1_c2_3x4_5x6" {
		t.Errorf("sized = %q", sized("x", 1, 2, 3, 4, 5, 6))
	}
}

func TestAlexNetAndVGGTables(t *testing.T) {
	if len(AlexNet) != 5 {
		t.Errorf("AlexNet has %d conv layers, want 5", len(AlexNet))
	}
	if AlexNet[0].StrideH != 4 || AlexNet[0].R != 11 {
		t.Error("AlexNet conv1 is the 11x11 stride-4 stem")
	}
	for _, table := range [][]ConvShape{AlexNet, VGG16} {
		for _, cs := range table {
			if err := cs.Inference(1).Validate(); err != nil {
				t.Errorf("%s: %v", cs.Name, err)
			}
		}
	}
	if len(VGG16) < 9 {
		t.Errorf("VGG16 table too short: %d", len(VGG16))
	}
}

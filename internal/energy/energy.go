// Package energy provides per-component access/operation energy models for a
// 45 nm process — this repository's substitute for the Accelergy + CACTI +
// Aladdin stack the paper used.
//
// The models are analytic fits anchored to the widely-cited relative energy
// ratios of the Eyeriss paper (Chen et al., ISCA 2016): with a 16-bit MAC
// normalized to 1×, a register-file access is ≈0.5–1×, a ~100 KB global
// buffer ≈6×, array-level NoC delivery ≈2×, and DRAM ≈200×. Absolute pJ
// values therefore differ from CACTI's, but every mapper in this repository
// is scored with the *same* numbers, so the relative EDP comparisons that the
// paper's evaluation makes are preserved (see DESIGN.md, substitution table).
//
// All energies are in picojoules (pJ).
package energy

import "math"

// Reference constants (45 nm, pJ). Exported so experiments can report the
// assumptions they ran under.
const (
	// MAC16PJ is the energy of one 16-bit multiply-accumulate.
	MAC16PJ = 2.2
	// DRAMPJPerWord16 is the energy of moving one 16-bit word to/from DRAM.
	DRAMPJPerWord16 = 200.0
	// RegPJPerWord16 is the energy of one 16-bit register access.
	RegPJPerWord16 = 0.15
	// InstrBits is the width of a DianNao-style instruction (Section V-D).
	InstrBits = 256
)

// MAC returns the energy of one multiply-accumulate at the given operand
// width in bits. Multiplier energy scales roughly quadratically with width.
func MAC(bits int) float64 {
	r := float64(bits) / 16.0
	return MAC16PJ * r * r
}

// DRAM returns the per-word DRAM access energy for the given word width.
// DRAM access energy is dominated by I/O and row activation and scales
// linearly with the bits transferred.
func DRAM(wordBits int) float64 {
	return DRAMPJPerWord16 * float64(wordBits) / 16.0
}

// Register returns the per-access energy of a small register or latch of the
// given width.
func Register(wordBits int) float64 {
	return RegPJPerWord16 * float64(wordBits) / 16.0
}

// SRAMRead returns the per-word read energy of an SRAM of the given capacity
// (bytes) and word width (bits). The fit E = 0.18 + 1.1*sqrt(KB), scaled
// linearly by word width, lands near the Eyeriss anchors: a 0.5 KB register
// file costs ≈1 pJ and a 108 KB global buffer ≈12 pJ (≈6× a 16-bit MAC).
func SRAMRead(capacityBytes int64, wordBits int) float64 {
	if capacityBytes <= 0 {
		return DRAM(wordBits) // "no capacity" levels behave like DRAM
	}
	kb := float64(capacityBytes) / 1024.0
	base := 0.18 + 1.1*math.Sqrt(kb)
	return base * float64(wordBits) / 16.0
}

// SRAMWrite returns the per-word write energy of an SRAM; writes cost ~10%
// more than reads (bitline full-swing).
func SRAMWrite(capacityBytes int64, wordBits int) float64 {
	return 1.1 * SRAMRead(capacityBytes, wordBits)
}

// NoCPerWord returns the energy of delivering one word from a shared memory
// level across an on-chip network to one of fanout spatially-distributed
// children. Wire energy grows with the traversal distance, which scales as
// the square root of the array size.
func NoCPerWord(wordBits, fanout int) float64 {
	if fanout <= 1 {
		return 0
	}
	return 0.010 * float64(wordBits) * math.Sqrt(float64(fanout))
}

// NoCTagCheck returns the per-receiver energy of the destination-tag check
// the Eyeriss-style multicast NoC performs at every PE for every delivered
// word (Section V-A of the paper: X/Y destination tags + tag-check hardware).
func NoCTagCheck(wordBits int) float64 {
	return 0.05 * float64(wordBits) / 16.0
}

// SpatialReduce returns the per-word energy of combining partial sums across
// spatial units (an adder-tree or inter-PE accumulation step).
func SpatialReduce(wordBits int) float64 {
	return 0.11 * float64(wordBits) / 16.0
}

// Instruction returns the energy of fetching one DianNao-style instruction
// from the given store (DRAM when instrFromDRAM, used by the Section V-D
// overhead analysis, which conservatively assumes no dedicated instruction
// memory).
func Instruction(instrFromDRAM bool) float64 {
	if instrFromDRAM {
		return DRAM(InstrBits)
	}
	return SRAMRead(32*1024, InstrBits)
}

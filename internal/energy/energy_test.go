package energy

import (
	"testing"
	"testing/quick"
)

func TestAnchorsRoughlyEyeriss(t *testing.T) {
	mac := MAC(16)
	// DRAM should be ~100-300x a 16-bit MAC.
	if r := DRAM(16) / mac; r < 50 || r > 400 {
		t.Errorf("DRAM/MAC ratio = %.1f, want within [50,400]", r)
	}
	// A 0.5KB register file access should be around the MAC energy (0.2x-2x).
	if r := SRAMRead(512, 16) / mac; r < 0.2 || r > 2 {
		t.Errorf("RF/MAC ratio = %.2f, want within [0.2,2]", r)
	}
	// A ~100KB global buffer should be several times a MAC.
	if r := SRAMRead(108*1024, 16) / mac; r < 3 || r > 20 {
		t.Errorf("GLB/MAC ratio = %.2f, want within [3,20]", r)
	}
	// Register access far cheaper than buffer access.
	if Register(16) >= SRAMRead(32*1024, 16) {
		t.Error("register access should be cheaper than a 32KB SRAM access")
	}
}

func TestMACScalesQuadratically(t *testing.T) {
	if got, want := MAC(8), MAC16PJ/4; !close(got, want) {
		t.Errorf("MAC(8) = %f, want %f", got, want)
	}
	if MAC(32) <= MAC(16) {
		t.Error("wider MAC must cost more")
	}
}

func TestSRAMMonotoneInCapacity(t *testing.T) {
	f := func(a, b uint16) bool {
		ca, cb := int64(a)+1, int64(b)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		return SRAMRead(ca*64, 16) <= SRAMRead(cb*64, 16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRAMScalesWithWordBits(t *testing.T) {
	if got, want := SRAMRead(1024, 32), 2*SRAMRead(1024, 16); !close(got, want) {
		t.Errorf("32-bit read = %f, want 2x 16-bit = %f", got, want)
	}
}

func TestSRAMWriteCostsMore(t *testing.T) {
	if SRAMWrite(2048, 16) <= SRAMRead(2048, 16) {
		t.Error("write should cost more than read")
	}
}

func TestZeroCapacityBehavesLikeDRAM(t *testing.T) {
	if SRAMRead(0, 16) != DRAM(16) {
		t.Error("zero-capacity SRAM should fall back to DRAM energy")
	}
}

func TestNoC(t *testing.T) {
	if NoCPerWord(16, 1) != 0 {
		t.Error("fanout 1 should cost no NoC energy")
	}
	if NoCPerWord(16, 1024) <= NoCPerWord(16, 16) {
		t.Error("bigger arrays must cost more per delivery")
	}
	if NoCTagCheck(16) <= 0 || NoCTagCheck(16) >= MAC(16) {
		t.Error("tag check should be small but positive")
	}
}

func TestSpatialReducePositive(t *testing.T) {
	if SpatialReduce(24) <= 0 {
		t.Error("spatial reduce energy must be positive")
	}
}

func TestInstruction(t *testing.T) {
	if Instruction(true) <= Instruction(false) {
		t.Error("DRAM-resident instructions must cost more")
	}
	if Instruction(true) != DRAM(InstrBits) {
		t.Error("DRAM instruction fetch should equal a 256-bit DRAM access")
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// Package analytic computes closed-form seed mappings — the GOMA-style
// one-shot layer of the search. Instead of enumerating, it derives one good
// valid mapping per (workload, arch) directly from the problem's geometry:
// the ordering that temporally reuses the most operands, a greedy spatial
// fill of every fanout level, and a capacity-balanced temporal factor split
// across the buffer hierarchy (each level made as large as its buffers
// allow, bottom-up, so the expensive upper levels see as little traffic as
// possible).
//
// The optimizer evaluates the seed and installs it as the initial alpha-beta
// incumbent before enumeration starts: a tight early bound prunes most of
// the search space the trivial everything-at-DRAM incumbent would have let
// through. The seed is never required to be optimal — only valid and cheap —
// and a failed seed degrades to the unseeded search, never an error.
package analytic

import (
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
)

// Seed derives the closed-form seed mapping of w onto a, choosing its loop
// ordering from ords (the pruned ordering-trie survivors; an empty slice
// falls back to the canonical dimension order). The result is deterministic
// — same inputs, same mapping, regardless of map iteration or thread count —
// and guaranteed to pass mapping.Validate, or an error is returned.
func Seed(w *tensor.Workload, a *arch.Arch, ords []order.Ordering) (*mapping.Mapping, error) {
	full, reused := pickOrdering(w, ords)
	top := len(a.Levels) - 1
	if top < 0 {
		return nil, fmt.Errorf("analytic seed: arch has no levels")
	}

	m := mapping.New(w, a)
	for l := range m.Levels {
		m.Levels[l].Order = append([]tensor.Dim(nil), full...)
	}
	// Start from the trivial all-at-top placement and keep the top level's
	// temporal factors pinned to the remaining quota throughout, so every
	// intermediate mapping covers the problem and Validate can arbitrate
	// each greedy move below.
	setTopResidual(m, top)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("analytic seed: trivial placement invalid: %w", err)
	}

	isRed := map[tensor.Dim]bool{}
	for _, d := range w.ReductionDims() {
		isRed[d] = true
	}
	// Spatial preference: the unrolling principle's dims first — indexing
	// dimensions of the operands the chosen ordering fully reuses — then
	// every other dimension in canonical order.
	prefSpatial := preferredDims(w, reused)

	// Phase 1: spatial fill, bottom-up. Claim as much of each level's
	// fanout as the problem's factors and the capacity of the levels above
	// allow; every move is trial-validated and reverted on failure.
	for l := 0; l <= top; l++ {
		if a.Levels[l].Fanout <= 1 {
			continue
		}
		fillSpatial(m, l, top, prefSpatial, isRed)
	}

	// Phase 2: capacity-balanced temporal split, bottom-up. Each level
	// below the top absorbs prime factors round-robin across the ordering's
	// inner-first dimensions until its buffers are full — the balanced
	// split by capacity that makes upper-level traffic minimal.
	for l := 0; l < top; l++ {
		fillTemporal(m, l, top, full)
	}

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("analytic seed: %w", err)
	}
	return m, nil
}

// pickOrdering selects the trie ordering that fully reuses the most
// operands (ties broken by the ordering's canonical render, so the choice is
// deterministic) and returns its completed inner-first dimension order plus
// the reused tensor names.
func pickOrdering(w *tensor.Workload, ords []order.Ordering) ([]tensor.Dim, []string) {
	if len(ords) == 0 {
		o := order.Ordering{}
		return o.Complete(w), nil
	}
	best := 0
	for i := 1; i < len(ords); i++ {
		if len(ords[i].FullyReused) > len(ords[best].FullyReused) ||
			(len(ords[i].FullyReused) == len(ords[best].FullyReused) &&
				ords[i].String() < ords[best].String()) {
			best = i
		}
	}
	return ords[best].Complete(w), ords[best].FullyReused
}

// preferredDims orders the workload's dimensions for spatial unrolling:
// indexing dimensions of the fully-reused operands first, the rest after,
// both in canonical w.Order order.
func preferredDims(w *tensor.Workload, reused []string) []tensor.Dim {
	pref := map[tensor.Dim]bool{}
	for _, name := range reused {
		if t := w.Tensor(name); t != nil {
			for _, d := range t.IndexingDims() {
				pref[d] = true
			}
		}
	}
	out := make([]tensor.Dim, 0, len(w.Order))
	for _, d := range w.Order {
		if pref[d] {
			out = append(out, d)
		}
	}
	for _, d := range w.Order {
		if !pref[d] {
			out = append(out, d)
		}
	}
	return out
}

// residual is the factor quota dim d still has to place above the levels
// below the top: ceil(bound / extent-below-top).
func residual(m *mapping.Mapping, d tensor.Dim, top int) int {
	below := 1
	if top > 0 {
		below = m.Extent(d, top-1)
	}
	return ceilDiv(m.Workload.Dims[d], below)
}

// setTopResidual pins the top level's temporal factors to each dimension's
// remaining quota, keeping coverage exact after any move below.
func setTopResidual(m *mapping.Mapping, top int) {
	for _, d := range m.Workload.Order {
		m.Levels[top].Temporal[d] = residual(m, d, top)
	}
}

// fillSpatial greedily moves prime factors of each dimension's residual into
// level l's spatial map while the fanout, spatial-reduction legality, and
// every buffer capacity still hold. Dims are visited in preference order;
// per dim, primes ascend, and the first prime that no longer fits ends that
// dim (larger primes cannot fit either).
func fillSpatial(m *mapping.Mapping, l, top int, dims []tensor.Dim, isRed map[tensor.Dim]bool) {
	al := &m.Arch.Levels[l]
	for _, d := range dims {
		if isRed[d] && !al.AllowSpatialReduction {
			continue
		}
		for {
			q := residual(m, d, top)
			if q <= 1 {
				break
			}
			p := factor.Primes(q)[0]
			if m.Levels[l].SpatialProduct()*p > al.Fanout {
				break
			}
			if !tryGrow(m, top, m.Levels[l].Spatial, d, p) {
				break
			}
		}
	}
}

// fillTemporal absorbs prime factors into level l's temporal map,
// round-robin across the inner-first dimension order, until no dimension can
// grow without overflowing a buffer between l and the top. Round-robin (one
// prime per dim per pass) is what balances the split: no dimension hogs the
// level's capacity just because it comes first.
func fillTemporal(m *mapping.Mapping, l, top int, dims []tensor.Dim) {
	dead := map[tensor.Dim]bool{}
	for len(dead) < len(dims) {
		progress := false
		for _, d := range dims {
			if dead[d] {
				continue
			}
			q := residual(m, d, top)
			if q <= 1 {
				dead[d] = true
				continue
			}
			if !tryGrow(m, top, m.Levels[l].Temporal, d, factor.Primes(q)[0]) {
				dead[d] = true
				continue
			}
			progress = true
		}
		if !progress {
			break
		}
	}
}

// tryGrow multiplies factors[d] by p, re-pins the top residual, and
// validates the whole mapping; on any violation the move is reverted.
func tryGrow(m *mapping.Mapping, top int, factors map[tensor.Dim]int, d tensor.Dim, p int) bool {
	old := factors[d]
	if old == 0 {
		old = 1
	}
	oldTop := m.Levels[top].Temporal[d]
	factors[d] = old * p
	m.Levels[top].Temporal[d] = residual(m, d, top)
	if m.Validate() == nil {
		return true
	}
	factors[d] = old
	m.Levels[top].Temporal[d] = oldTop
	return false
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

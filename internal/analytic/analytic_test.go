package analytic

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

func seedArches() map[string]*arch.Arch {
	return map[string]*arch.Arch{
		"conventional": arch.Conventional(),
		"simba":        arch.Simba(),
		"diannao":      arch.DianNao(),
		"tiny":         arch.Tiny(256),
		"tinyspatial":  arch.TinySpatial(4096, 1<<18, 8),
	}
}

func seedWorkloads() []*tensor.Workload {
	return []*tensor.Workload{
		workloads.Conv2D("conv", 4, 64, 64, 28, 28, 3, 3, 1, 1),
		workloads.Conv1D("conv1d", 16, 16, 28, 3),
		workloads.FC("fc", 16, 256, 256),
		workloads.MTTKRP("mttkrp", 128, 96, 64, 32),
		workloads.TTMc("ttmc", 64, 64, 64, 8),
	}
}

// TestSeedValidEverywhere: the seed is structurally valid and evaluates to a
// finite cost on every (workload, arch) preset pair.
func TestSeedValidEverywhere(t *testing.T) {
	for aname, a := range seedArches() {
		for _, w := range seedWorkloads() {
			ords, _ := order.Enumerate(w)
			m, err := Seed(w, a, ords)
			if err != nil {
				t.Errorf("%s/%s: %v", aname, w.Name, err)
				continue
			}
			if verr := m.Validate(); verr != nil {
				t.Errorf("%s/%s: seed invalid: %v", aname, w.Name, verr)
				continue
			}
			edp, _, _, valid := cost.Default.EvaluateEDP(m)
			if !valid || edp <= 0 {
				t.Errorf("%s/%s: seed does not evaluate (valid=%t edp=%g)", aname, w.Name, valid, edp)
			}
		}
	}
}

// TestSeedDeterministic: same inputs, bit-identical mapping — the seed runs
// on the search driver and must not depend on map iteration order.
func TestSeedDeterministic(t *testing.T) {
	w := workloads.Conv2D("conv", 4, 64, 64, 28, 28, 3, 3, 1, 1)
	a := arch.Simba()
	ords, _ := order.Enumerate(w)
	first, err := Seed(w, a, ords)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m, err := Seed(w, a, ords)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != first.String() {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, m.String(), first.String())
		}
	}
}

// TestSeedBeatsTrivial: the seed must cost less than the everything-at-DRAM
// placement it replaces as the initial incumbent — otherwise it buys no
// alpha-beta tightening.
func TestSeedBeatsTrivial(t *testing.T) {
	w := workloads.Conv2D("conv", 4, 64, 64, 28, 28, 3, 3, 1, 1)
	for aname, a := range seedArches() {
		ords, _ := order.Enumerate(w)
		m, err := Seed(w, a, ords)
		if err != nil {
			t.Fatalf("%s: %v", aname, err)
		}
		seedEDP, _, _, valid := cost.Default.EvaluateEDP(m)
		if !valid {
			t.Fatalf("%s: seed invalid", aname)
		}
		// The trivial incumbent the seed replaces: every factor temporal at
		// the top level, canonical order everywhere.
		triv := mapping.New(w, a)
		top := len(a.Levels) - 1
		var o order.Ordering
		full := o.Complete(w)
		for l := range triv.Levels {
			triv.Levels[l].Order = append([]tensor.Dim(nil), full...)
		}
		for _, d := range w.Order {
			triv.Levels[top].Temporal[d] = w.Dims[d]
		}
		trivEDP, _, _, trivValid := cost.Default.EvaluateEDP(triv)
		if trivValid && seedEDP >= trivEDP {
			t.Errorf("%s: seed EDP %g no better than trivial %g", aname, seedEDP, trivEDP)
		}
	}
}

// TestSeedNoLevels: a degenerate arch errors instead of panicking.
func TestSeedNoLevels(t *testing.T) {
	w := workloads.Conv1D("conv1d", 4, 4, 8, 3)
	if _, err := Seed(w, &arch.Arch{Name: "empty"}, nil); err == nil {
		t.Fatal("empty arch must error")
	}
}

// Package arch describes spatial-accelerator architectures: a stack of
// storage levels from the registers next to the MACs up to off-chip DRAM,
// each with per-datatype or shared buffers, an optional spatial fanout (the
// number of parallel instances of the subtree below it), per-access energies,
// bandwidths, and NoC distribution costs.
//
// The model covers both "conventional" accelerators (one flat PE grid, Fig.
// 1a of the paper) and "modern" multi-level spatial designs such as Simba
// (vector MACs with operand registers inside each PE, Fig. 1b), including
// per-level bypass (e.g. Simba's weights skip the global L2 and stream from
// DRAM straight into the PE weight buffers).
package arch

import (
	"fmt"
	"strings"
)

// Buffer is one physical memory at a level. A level may contain several
// buffers, each dedicated to a subset of tensors (Simba's per-datatype PE
// buffers), or a single buffer shared by all tensors (conventional unified
// L1/L2).
type Buffer struct {
	Name string
	// Bytes is the capacity; 0 means unbounded (DRAM).
	Bytes int64
	// Tensors lists the tensor names stored here; nil means "all tensors
	// kept at this level".
	Tensors []string
	// ReadPJ / WritePJ are per-word access energies.
	ReadPJ, WritePJ float64
	// ReadBW / WriteBW are words per cycle; 0 means unconstrained.
	ReadBW, WriteBW float64
}

// Holds reports whether the buffer stores tensor name.
func (b *Buffer) Holds(name string) bool {
	if b.Tensors == nil {
		return true
	}
	for _, t := range b.Tensors {
		if t == name {
			return true
		}
	}
	return false
}

// Level is one storage level of the hierarchy plus the spatial fan-out of the
// subtree below it.
type Level struct {
	Name    string
	Buffers []Buffer
	// Fanout is the number of parallel instances of the level below this
	// one (1 = purely temporal level). The innermost level's fanout counts
	// MAC datapaths per instance.
	Fanout int
	// AllowSpatialReduction reports whether partial sums may be combined
	// across this level's children (adder tree / inter-PE accumulation).
	AllowSpatialReduction bool
	// NoCPerWordPJ is the energy to move one word from this level to one of
	// its children; NoCTagCheckPJ is paid once per *receiving* child per
	// word (Eyeriss-style multicast destination-tag check);
	// SpatialReducePJ is paid per word combined across children.
	NoCPerWordPJ, NoCTagCheckPJ, SpatialReducePJ float64
	// DoubleBuffered levels overlap refill with compute (the Timeloop
	// latency assumption); all levels in this repository are.
	DoubleBuffered bool
}

// Keeps reports whether tensor name is stored at this level.
func (l *Level) Keeps(name string) bool {
	for i := range l.Buffers {
		if l.Buffers[i].Holds(name) {
			return true
		}
	}
	return false
}

// BufferFor returns the buffer holding tensor name, or nil.
func (l *Level) BufferFor(name string) *Buffer {
	for i := range l.Buffers {
		if l.Buffers[i].Holds(name) {
			return &l.Buffers[i]
		}
	}
	return nil
}

// Arch is a complete accelerator description.
type Arch struct {
	Name string
	// Levels is ordered innermost (closest to the MACs) first; the last
	// level must be an unbounded DRAM keeping every tensor.
	Levels []Level
	// WordBits gives per-tensor word widths; DefaultWordBits applies to
	// tensors not listed.
	WordBits        map[string]int
	DefaultWordBits int
	// MACPJ is the energy of one MAC operation.
	MACPJ float64
}

// Bits returns the word width used for tensor name.
func (a *Arch) Bits(name string) int {
	if b, ok := a.WordBits[name]; ok {
		return b
	}
	if a.DefaultWordBits > 0 {
		return a.DefaultWordBits
	}
	return 16
}

// NumMemLevels returns the number of storage levels.
func (a *Arch) NumMemLevels() int { return len(a.Levels) }

// TotalMACs returns the total number of MAC datapaths: the product of all
// level fanouts.
func (a *Arch) TotalMACs() int {
	p := 1
	for i := range a.Levels {
		p *= a.Levels[i].Fanout
	}
	return p
}

// ParentOf returns the index of the nearest level above lvl that keeps
// tensor name — the level the data is fetched from. Returns -1 if none
// (cannot happen for a validated arch unless lvl is the top).
func (a *Arch) ParentOf(name string, lvl int) int {
	for i := lvl + 1; i < len(a.Levels); i++ {
		if a.Levels[i].Keeps(name) {
			return i
		}
	}
	return -1
}

// KeeperBelow returns the index of the nearest level at or below lvl that
// keeps tensor name, or -1.
func (a *Arch) KeeperBelow(name string, lvl int) int {
	for i := lvl; i >= 0; i-- {
		if a.Levels[i].Keeps(name) {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: at least two levels, a top level
// that is unbounded and keeps everything, positive fanouts, and buffers with
// non-negative capacities.
func (a *Arch) Validate() error {
	if len(a.Levels) < 2 {
		return fmt.Errorf("arch %q: need at least two levels (got %d)", a.Name, len(a.Levels))
	}
	top := a.Levels[len(a.Levels)-1]
	for i := range top.Buffers {
		if top.Buffers[i].Bytes != 0 {
			return fmt.Errorf("arch %q: top level %q must be unbounded", a.Name, top.Name)
		}
		if top.Buffers[i].Tensors != nil {
			return fmt.Errorf("arch %q: top level %q must keep all tensors", a.Name, top.Name)
		}
	}
	if len(top.Buffers) == 0 {
		return fmt.Errorf("arch %q: top level %q has no buffers", a.Name, top.Name)
	}
	for i := range a.Levels {
		l := &a.Levels[i]
		if l.Fanout < 1 {
			return fmt.Errorf("arch %q: level %q has fanout %d", a.Name, l.Name, l.Fanout)
		}
		if len(l.Buffers) == 0 {
			return fmt.Errorf("arch %q: level %q has no buffers", a.Name, l.Name)
		}
		for j := range l.Buffers {
			if l.Buffers[j].Bytes < 0 {
				return fmt.Errorf("arch %q: buffer %q has negative capacity", a.Name, l.Buffers[j].Name)
			}
		}
	}
	if a.MACPJ <= 0 {
		return fmt.Errorf("arch %q: non-positive MAC energy", a.Name)
	}
	return nil
}

// String renders a short summary of the hierarchy.
func (a *Arch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d MACs):", a.Name, a.TotalMACs())
	for i := range a.Levels {
		l := &a.Levels[i]
		fmt.Fprintf(&b, "\n  [%d] %s fanout=%d", i, l.Name, l.Fanout)
		for j := range l.Buffers {
			buf := &l.Buffers[j]
			cap := "inf"
			if buf.Bytes > 0 {
				cap = fmt.Sprintf("%dB", buf.Bytes)
			}
			fmt.Fprintf(&b, " %s(%s)", buf.Name, cap)
		}
	}
	return b.String()
}

package arch

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, a := range []*Arch{Conventional(), Simba(), DianNao(), Tiny(8), TinySpatial(8, 64, 4)} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestTotalMACs(t *testing.T) {
	if got := Conventional().TotalMACs(); got != 1024 {
		t.Errorf("conventional MACs = %d, want 1024 (32x32)", got)
	}
	if got := Simba().TotalMACs(); got != 1024 {
		t.Errorf("simba MACs = %d, want 1024 (16 PEs x 8 lanes x width 8)", got)
	}
	if got := DianNao().TotalMACs(); got != 256 {
		t.Errorf("diannao MACs = %d, want 256 (16x16 NFU)", got)
	}
}

func TestSimbaBypassAndPrecision(t *testing.T) {
	a := Simba()
	// L2 (index 2) keeps ifmap and ofmap but NOT weights.
	l2 := &a.Levels[2]
	if !l2.Keeps(Ifmap) || !l2.Keeps(Ofmap) {
		t.Error("simba L2 must keep ifmap and ofmap")
	}
	if l2.Keeps(Weight) {
		t.Error("simba L2 must not keep weights (bypass)")
	}
	// Weight parent above the PE buffers (level 1) must therefore be DRAM (3).
	if got := a.ParentOf(Weight, 1); got != 3 {
		t.Errorf("weight parent above PEBuf = level %d, want 3 (DRAM)", got)
	}
	// Ifmap parent above PE buffers is L2.
	if got := a.ParentOf(Ifmap, 1); got != 2 {
		t.Errorf("ifmap parent above PEBuf = level %d, want 2 (L2)", got)
	}
	// Mixed precision per Table IV.
	if a.Bits(Weight) != 8 || a.Bits(Ifmap) != 8 || a.Bits(Ofmap) != 24 {
		t.Errorf("simba precisions = %d/%d/%d, want 8/8/24",
			a.Bits(Weight), a.Bits(Ifmap), a.Bits(Ofmap))
	}
	// The weight register level keeps only weights.
	reg := &a.Levels[0]
	if !reg.Keeps(Weight) || reg.Keeps(Ifmap) || reg.Keeps(Ofmap) {
		t.Error("simba Reg level must keep only weights")
	}
}

func TestKeeperBelow(t *testing.T) {
	a := Simba()
	// Nearest keeper of weight at or below L2 (index 2) is PEBuf (1).
	if got := a.KeeperBelow(Weight, 2); got != 1 {
		t.Errorf("KeeperBelow(weight, 2) = %d, want 1", got)
	}
	if got := a.KeeperBelow(Ifmap, 0); got != -1 {
		t.Errorf("KeeperBelow(ifmap, 0) = %d, want -1 (Reg holds only weights)", got)
	}
}

func TestBitsDefaults(t *testing.T) {
	a := Conventional()
	if a.Bits("anything") != 16 {
		t.Error("conventional should default to 16-bit words")
	}
	empty := &Arch{}
	if empty.Bits("x") != 16 {
		t.Error("zero-value arch should fall back to 16 bits")
	}
}

func TestEnergiesIncreaseUpTheHierarchy(t *testing.T) {
	for _, a := range []*Arch{Conventional(), Tiny(8)} {
		var prev float64
		for i := range a.Levels {
			e := a.Levels[i].Buffers[0].ReadPJ
			if e < prev {
				t.Errorf("%s: level %s read energy %.2f < lower level %.2f",
					a.Name, a.Levels[i].Name, e, prev)
			}
			prev = e
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Arch{
		{Name: "one-level", MACPJ: 1, Levels: []Level{{Name: "only", Fanout: 1, Buffers: []Buffer{{Name: "b"}}}}},
		{Name: "bounded-top", MACPJ: 1, Levels: []Level{
			{Name: "l1", Fanout: 1, Buffers: []Buffer{{Name: "b", Bytes: 8}}},
			{Name: "top", Fanout: 1, Buffers: []Buffer{{Name: "t", Bytes: 8}}},
		}},
		{Name: "zero-fanout", MACPJ: 1, Levels: []Level{
			{Name: "l1", Fanout: 0, Buffers: []Buffer{{Name: "b", Bytes: 8}}},
			{Name: "top", Fanout: 1, Buffers: []Buffer{{Name: "t"}}},
		}},
		{Name: "no-mac-energy", MACPJ: 0, Levels: []Level{
			{Name: "l1", Fanout: 1, Buffers: []Buffer{{Name: "b", Bytes: 8}}},
			{Name: "top", Fanout: 1, Buffers: []Buffer{{Name: "t"}}},
		}},
		{Name: "partial-top", MACPJ: 1, Levels: []Level{
			{Name: "l1", Fanout: 1, Buffers: []Buffer{{Name: "b", Bytes: 8}}},
			{Name: "top", Fanout: 1, Buffers: []Buffer{{Name: "t", Tensors: []string{"x"}}}},
		}},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", a.Name)
		}
	}
}

func TestBufferHolds(t *testing.T) {
	b := Buffer{Name: "x", Tensors: []string{"a", "b"}}
	if !b.Holds("a") || b.Holds("c") {
		t.Error("Holds with explicit tensor list wrong")
	}
	all := Buffer{Name: "y"}
	if !all.Holds("anything") {
		t.Error("nil tensor list should hold everything")
	}
}

func TestString(t *testing.T) {
	s := Simba().String()
	for _, want := range []string{"simba-like", "1024 MACs", "WBuf", "DRAM", "fanout=16"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

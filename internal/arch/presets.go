package arch

import "sunstone/internal/energy"

// Tensor role names used by the convolution workloads and the Simba /
// DianNao per-datatype buffers. Generic tensor workloads (MTTKRP, TTMc, ...)
// run on architectures with unified buffers, where names do not matter.
const (
	Ifmap  = "ifmap"
	Weight = "weight"
	Ofmap  = "ofmap"
)

// Conventional returns the Eyeriss-like conventional accelerator of Table IV:
// a 32x32 grid of PEs with a single 16-bit MAC and a unified 512 B L1 each, a
// shared unified 3.1 MB L2, and DRAM. One level of spatial processing, with
// an interleaved multicast NoC and inter-PE ofmap (partial-sum) communication.
func Conventional() *Arch {
	const (
		bits    = 16
		l1Bytes = 512
		l2Bytes = 3_100 * 1024 // 3.1 MB
		pes     = 32 * 32
	)
	a := &Arch{
		Name:            "conventional",
		DefaultWordBits: bits,
		MACPJ:           energy.MAC(bits),
		Levels: []Level{
			{
				Name:   "L1",
				Fanout: 1,
				Buffers: []Buffer{{
					Name: "L1", Bytes: l1Bytes,
					ReadPJ: energy.SRAMRead(l1Bytes, bits), WritePJ: energy.SRAMWrite(l1Bytes, bits),
					ReadBW: 2, WriteBW: 2,
				}},
				DoubleBuffered: true,
			},
			{
				Name:                  "L2",
				Fanout:                pes,
				AllowSpatialReduction: true,
				NoCPerWordPJ:          energy.NoCPerWord(bits, pes),
				NoCTagCheckPJ:         energy.NoCTagCheck(bits),
				SpatialReducePJ:       energy.SpatialReduce(bits),
				Buffers: []Buffer{{
					Name: "L2", Bytes: l2Bytes,
					ReadPJ: energy.SRAMRead(l2Bytes, bits), WritePJ: energy.SRAMWrite(l2Bytes, bits),
					ReadBW: 64, WriteBW: 64,
				}},
				DoubleBuffered: true,
			},
			{
				Name:   "DRAM",
				Fanout: 1,
				Buffers: []Buffer{{
					Name:   "DRAM",
					ReadPJ: energy.DRAM(bits), WritePJ: energy.DRAM(bits),
					ReadBW: 8, WriteBW: 8,
				}},
				DoubleBuffered: true,
			},
		},
	}
	mustValidate(a)
	return a
}

// Simba returns the Simba-like accelerator of Table IV: two levels of spatial
// processing (a 4x4 PE grid; 8 lanes of 8-wide vector MACs inside each PE),
// per-datatype PE buffers (32 KB weights, 8 KB ifmap, 3 KB ofmap), per-lane
// weight registers, a 512 KB global L2 holding only ifmap and ofmap (weights
// bypass L2 and stream from DRAM directly into the PE weight buffers), and
// mixed precision (8-bit weights/ifmap, 24-bit partial sums).
func Simba() *Arch {
	const (
		wBits, iBits, oBits = 8, 8, 24
		pes                 = 4 * 4
		lanes               = 8 * 8 // 8 vector MACs x vector width 8 per PE
		wBufBytes           = 32 * 1024
		iBufBytes           = 8 * 1024
		oBufBytes           = 3 * 1024
		l2Bytes             = 512 * 1024
	)
	a := &Arch{
		Name: "simba-like",
		WordBits: map[string]int{
			Weight: wBits, Ifmap: iBits, Ofmap: oBits,
		},
		DefaultWordBits: 8,
		MACPJ:           energy.MAC(8),
		Levels: []Level{
			{
				// Per-lane weight register: temporally reuses one weight
				// operand over several MACs (Fig. 1b of the paper).
				Name:   "Reg",
				Fanout: 1,
				Buffers: []Buffer{{
					Name: "WReg", Bytes: 2, Tensors: []string{Weight},
					ReadPJ: energy.Register(wBits), WritePJ: energy.Register(wBits),
				}},
				DoubleBuffered: true,
			},
			{
				// PE-level distributed/broadcast buffers feeding 64 MAC
				// lanes; the vector-MAC adder tree permits spatial
				// reduction across lanes.
				Name:                  "PEBuf",
				Fanout:                lanes,
				AllowSpatialReduction: true,
				NoCPerWordPJ:          energy.NoCPerWord(8, lanes) / 4, // short intra-PE wires
				NoCTagCheckPJ:         0,                               // static intra-PE distribution
				SpatialReducePJ:       energy.SpatialReduce(oBits),
				Buffers: []Buffer{
					{
						Name: "WBuf", Bytes: wBufBytes, Tensors: []string{Weight},
						ReadPJ: energy.SRAMRead(wBufBytes, wBits), WritePJ: energy.SRAMWrite(wBufBytes, wBits),
						ReadBW: 64, WriteBW: 8,
					},
					{
						Name: "IBuf", Bytes: iBufBytes, Tensors: []string{Ifmap},
						ReadPJ: energy.SRAMRead(iBufBytes, iBits), WritePJ: energy.SRAMWrite(iBufBytes, iBits),
						ReadBW: 64, WriteBW: 8,
					},
					{
						Name: "OBuf", Bytes: oBufBytes, Tensors: []string{Ofmap},
						ReadPJ: energy.SRAMRead(oBufBytes, oBits), WritePJ: energy.SRAMWrite(oBufBytes, oBits),
						ReadBW: 64, WriteBW: 8,
					},
				},
				DoubleBuffered: true,
			},
			{
				// Global buffer: ifmap and ofmap only; weights bypass.
				Name:                  "L2",
				Fanout:                pes,
				AllowSpatialReduction: true,
				NoCPerWordPJ:          energy.NoCPerWord(16, pes),
				NoCTagCheckPJ:         energy.NoCTagCheck(16),
				SpatialReducePJ:       energy.SpatialReduce(oBits),
				Buffers: []Buffer{{
					Name: "L2", Bytes: l2Bytes, Tensors: []string{Ifmap, Ofmap},
					ReadPJ: energy.SRAMRead(l2Bytes, 16), WritePJ: energy.SRAMWrite(l2Bytes, 16),
					ReadBW: 32, WriteBW: 32,
				}},
				DoubleBuffered: true,
			},
			{
				Name:   "DRAM",
				Fanout: 1,
				Buffers: []Buffer{{
					Name:   "DRAM",
					ReadPJ: energy.DRAM(16), WritePJ: energy.DRAM(16),
					ReadBW: 8, WriteBW: 8,
				}},
				DoubleBuffered: true,
			},
		},
	}
	mustValidate(a)
	return a
}

// DianNao returns the DianNao-like accelerator of Section V-D: per-datatype
// on-chip buffers (NBin for inputs, NBout for outputs, SB for weights)
// feeding an NFU of 16x16 multipliers with an adder tree (spatial reduction
// over input channels), and DRAM. Used by the tiling/unrolling overhead
// analysis together with the instruction-level simulator.
func DianNao() *Arch {
	const (
		bits       = 16
		nbinBytes  = 2 * 1024
		nboutBytes = 2 * 1024
		sbBytes    = 32 * 1024
		nfu        = 16 * 16 // Tn x Ti multipliers
	)
	a := &Arch{
		Name:            "diannao-like",
		DefaultWordBits: bits,
		MACPJ:           energy.MAC(bits),
		Levels: []Level{
			{
				Name:                  "OnChip",
				Fanout:                nfu,
				AllowSpatialReduction: true,
				NoCPerWordPJ:          energy.NoCPerWord(bits, nfu) / 4, // short datapath wiring
				SpatialReducePJ:       energy.SpatialReduce(bits),
				Buffers: []Buffer{
					{
						Name: "NBin", Bytes: nbinBytes, Tensors: []string{Ifmap},
						ReadPJ: energy.SRAMRead(nbinBytes, bits), WritePJ: energy.SRAMWrite(nbinBytes, bits),
						ReadBW: 32, WriteBW: 32,
					},
					{
						Name: "SB", Bytes: sbBytes, Tensors: []string{Weight},
						ReadPJ: energy.SRAMRead(sbBytes, bits), WritePJ: energy.SRAMWrite(sbBytes, bits),
						ReadBW: 256, WriteBW: 32,
					},
					{
						Name: "NBout", Bytes: nboutBytes, Tensors: []string{Ofmap},
						ReadPJ: energy.SRAMRead(nboutBytes, bits), WritePJ: energy.SRAMWrite(nboutBytes, bits),
						ReadBW: 32, WriteBW: 32,
					},
				},
				DoubleBuffered: true,
			},
			{
				Name:   "DRAM",
				Fanout: 1,
				Buffers: []Buffer{{
					Name:   "DRAM",
					ReadPJ: energy.DRAM(bits), WritePJ: energy.DRAM(bits),
					ReadBW: 16, WriteBW: 16,
				}},
				DoubleBuffered: true,
			},
		},
	}
	mustValidate(a)
	return a
}

// Tiny returns a small two-level teaching architecture: one unified L1 of the
// given capacity in 16-bit words above a single MAC, then DRAM. Used by the
// quickstart example and by unit tests that hand-check access counts against
// the paper's equations.
func Tiny(l1Words int) *Arch {
	const bits = 16
	l1Bytes := int64(l1Words) * bits / 8
	a := &Arch{
		Name:            "tiny",
		DefaultWordBits: bits,
		MACPJ:           energy.MAC(bits),
		Levels: []Level{
			{
				Name:   "L1",
				Fanout: 1,
				Buffers: []Buffer{{
					Name: "L1", Bytes: l1Bytes,
					ReadPJ: energy.SRAMRead(l1Bytes, bits), WritePJ: energy.SRAMWrite(l1Bytes, bits),
				}},
				DoubleBuffered: true,
			},
			{
				Name:   "DRAM",
				Fanout: 1,
				Buffers: []Buffer{{
					Name:   "DRAM",
					ReadPJ: energy.DRAM(bits), WritePJ: energy.DRAM(bits),
					ReadBW: 8, WriteBW: 8,
				}},
				DoubleBuffered: true,
			},
		},
	}
	mustValidate(a)
	return a
}

// TinySpatial returns Tiny plus a spatial level: pes parallel PEs (each with
// a unified L1 of l1Words) under a shared L2 of l2Words, then DRAM. Used by
// unit tests for the unrolling principle and multicast accounting.
func TinySpatial(l1Words, l2Words, pes int) *Arch {
	const bits = 16
	l1Bytes := int64(l1Words) * bits / 8
	l2Bytes := int64(l2Words) * bits / 8
	a := &Arch{
		Name:            "tiny-spatial",
		DefaultWordBits: bits,
		MACPJ:           energy.MAC(bits),
		Levels: []Level{
			{
				Name:   "L1",
				Fanout: 1,
				Buffers: []Buffer{{
					Name: "L1", Bytes: l1Bytes,
					ReadPJ: energy.SRAMRead(l1Bytes, bits), WritePJ: energy.SRAMWrite(l1Bytes, bits),
				}},
				DoubleBuffered: true,
			},
			{
				Name:                  "L2",
				Fanout:                pes,
				AllowSpatialReduction: true,
				NoCPerWordPJ:          energy.NoCPerWord(bits, pes),
				NoCTagCheckPJ:         energy.NoCTagCheck(bits),
				SpatialReducePJ:       energy.SpatialReduce(bits),
				Buffers: []Buffer{{
					Name: "L2", Bytes: l2Bytes,
					ReadPJ: energy.SRAMRead(l2Bytes, bits), WritePJ: energy.SRAMWrite(l2Bytes, bits),
				}},
				DoubleBuffered: true,
			},
			{
				Name:   "DRAM",
				Fanout: 1,
				Buffers: []Buffer{{
					Name:   "DRAM",
					ReadPJ: energy.DRAM(bits), WritePJ: energy.DRAM(bits),
					ReadBW: 8, WriteBW: 8,
				}},
				DoubleBuffered: true,
			},
		},
	}
	mustValidate(a)
	return a
}

func mustValidate(a *Arch) {
	if err := a.Validate(); err != nil {
		panic(err)
	}
}

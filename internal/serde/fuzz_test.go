package serde

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// FuzzDecodeArch hardens the architecture loader against hostile or corrupt
// configuration files: whatever the bytes, DecodeArch must return a value or
// an error — never panic — and anything it accepts must survive an
// encode/decode round trip (the accepted value is internally consistent
// enough to re-serialize).
func FuzzDecodeArch(f *testing.F) {
	for _, a := range archPresets() {
		data, err := EncodeArch(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		``,
		`null`,
		`{}`,
		`{"name":"x","mac_pj":-1,"levels":[]}`,
		`{"levels":[{"name":"L","fanout":-3,"buffers":[]}]}`,
		`{"levels":[{"buffers":[{"bytes":-5}]}]}`,
		`{"levels":[{"buffers":[{"name":"b","tensors":["NoSuch"]}]}]}`,
		`{"name":"\u0000","mac_pj":1e308,"levels":[{"fanout":2147483647,"buffers":[{"bytes":9223372036854775807}]}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArch(data)
		if err != nil {
			return
		}
		re, err := EncodeArch(a)
		if err != nil {
			t.Fatalf("accepted arch failed to encode: %v", err)
		}
		if _, err := DecodeArch(re); err != nil {
			t.Fatalf("accepted arch failed to round-trip: %v\nencoded:\n%s", err, re)
		}
	})
}

// fuzzProblem is the fixed workload/architecture pair mapping files are bound
// to during fuzzing — DecodeMapping validates against a concrete problem, so
// the fuzzer explores the file format, not the problem space.
func fuzzProblem() (*tensor.Workload, *arch.Arch) {
	return workloads.Conv2D("fuzz", 1, 4, 8, 7, 7, 3, 3, 1, 1), arch.TinySpatial(512, 1<<16, 4)
}

// FuzzDecodeMapping hardens the mapping loader the same way: no input may
// panic it, and any accepted mapping must pass full structural validation and
// survive a round trip.
func FuzzDecodeMapping(f *testing.F) {
	w, a := fuzzProblem()
	m := mapping.New(w, a)
	top := len(m.Levels) - 1
	for d, n := range w.FullExtents() {
		m.Levels[top].Temporal[d] = n
		m.Levels[top].Order = append(m.Levels[top].Order, d)
	}
	seed, err := EncodeMapping(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	for _, s := range []string{
		``,
		`{}`,
		`{"format":"sunstone/v2","levels":[]}`,
		`{"format":"sunstone/v1","levels":[{},{},{}]}`,
		`{"levels":[{"temporal":{"K":-1}},{},{}]}`,
		`{"levels":[{"temporal":{"Z":2}},{},{}]}`,
		`{"levels":[{"order":["K","K","Z"]},{},{}]}`,
		`{"levels":[{"spatial":{"K":1073741824},"temporal":{"K":1073741824}},{},{}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMapping(data, w, a)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("DecodeMapping accepted an invalid mapping: %v", verr)
		}
		re, err := EncodeMapping(m)
		if err != nil {
			t.Fatalf("accepted mapping failed to encode: %v", err)
		}
		if _, err := DecodeMapping(re, w, a); err != nil {
			t.Fatalf("accepted mapping failed to round-trip: %v\nencoded:\n%s", err, re)
		}
	})
}

// External test package: core imports serde (to serialize panicking
// candidates for repro), so a test that drives the optimizer must live
// outside package serde to avoid an import cycle.
package serde_test

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/cost"
	"sunstone/internal/serde"
	"sunstone/internal/workloads"
)

func TestMappingRoundTripThroughOptimizer(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(256)
	res, err := core.Optimize(w, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := serde.EncodeMapping(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	back, err := serde.DecodeMapping(data, w, a)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded mapping must evaluate to exactly the same cost.
	r1, r2 := cost.Evaluate(res.Mapping), cost.Evaluate(back)
	if r1.EDP != r2.EDP || r1.EnergyPJ != r2.EnergyPJ {
		t.Errorf("round trip changed cost: %v vs %v", r2.EDP, r1.EDP)
	}
}

package serde

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// NetworkScheduleJSON is the serialized summary of a network schedule:
// per-layer totals plus, for fusion-aware schedules, the chosen group
// structure. Mappings are not embedded — encode them individually with
// EncodeMapping; the schedule file is the summary artifact experiment
// tooling diffs and archives.
type NetworkScheduleJSON struct {
	// Format identifies the file-format revision ("sunstone/v1"). Encoders
	// always stamp it; decoders also accept the legacy headerless form — a
	// bare JSON array of layer entries — which reads as an unfused
	// layer-per-entry schedule.
	Format        string             `json:"format,omitempty"`
	Network       string             `json:"network"`
	Fused         bool               `json:"fused,omitempty"`
	TotalEnergyPJ float64            `json:"total_energy_pj"`
	TotalCycles   float64            `json:"total_cycles"`
	EDP           float64            `json:"edp"`
	UnfusedEDP    float64            `json:"unfused_edp,omitempty"`
	Failed        int                `json:"failed,omitempty"`
	Layers        []NetworkLayerJSON `json:"layers"`
	Groups        []NetworkGroupJSON `json:"groups,omitempty"`
}

// NetworkLayerJSON is one layer entry of a serialized network schedule.
type NetworkLayerJSON struct {
	Layer    string  `json:"layer"`
	Repeats  int     `json:"repeats,omitempty"`
	EnergyPJ float64 `json:"energy_pj"`
	Cycles   float64 `json:"cycles"`
	EDP      float64 `json:"edp"`
	Error    string  `json:"error,omitempty"`
}

// NetworkGroupJSON is one fused segment of a serialized fusion-aware
// schedule: the chain positions [start, end) whose intermediates stayed
// resident at pin_level.
type NetworkGroupJSON struct {
	Layers   []string `json:"layers"`
	Start    int      `json:"start"`
	End      int      `json:"end"`
	PinLevel int      `json:"pin_level"`
	EnergyPJ float64  `json:"energy_pj"`
	Cycles   float64  `json:"cycles"`
}

// EncodeNetworkSchedule renders s as indented JSON, always stamped with the
// current format.
func EncodeNetworkSchedule(s *NetworkScheduleJSON) ([]byte, error) {
	out := *s
	out.Format = FormatV1
	return json.MarshalIndent(&out, "", "  ")
}

// DecodeNetworkSchedule parses a network-schedule summary. A stamped (or
// unstamped pre-versioning) object decodes in full, including any fused
// group structure; the legacy headerless form — a bare JSON array of layer
// entries — decodes as an unfused layer-per-entry schedule with the totals
// recomputed from its layers. Unknown format stamps are rejected.
func DecodeNetworkSchedule(data []byte) (*NetworkScheduleJSON, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var layers []NetworkLayerJSON
		if err := json.Unmarshal(data, &layers); err != nil {
			return nil, fmt.Errorf("network schedule JSON: %w", err)
		}
		s := &NetworkScheduleJSON{Layers: layers}
		for _, l := range layers {
			if l.Error != "" {
				s.Failed++
				continue
			}
			rep := float64(l.Repeats)
			if l.Repeats == 0 {
				rep = 1
			}
			s.TotalEnergyPJ += l.EnergyPJ * rep
			s.TotalCycles += l.Cycles * rep
		}
		s.EDP = s.TotalEnergyPJ * s.TotalCycles
		return s, nil
	}
	var s NetworkScheduleJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("network schedule JSON: %w", err)
	}
	switch s.Format {
	case FormatV1:
	case "": // pre-versioning file; read as v1 (deprecated)
	default:
		return nil, fmt.Errorf("network schedule JSON: unknown format %q (this build reads %q)",
			s.Format, FormatV1)
	}
	for _, g := range s.Groups {
		if g.Start < 0 || g.End <= g.Start || len(g.Layers) != g.End-g.Start {
			return nil, fmt.Errorf("network schedule JSON: group [%d,%d) names %d layers",
				g.Start, g.End, len(g.Layers))
		}
	}
	return &s, nil
}

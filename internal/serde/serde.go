// Package serde serializes workloads, architectures, mappings and cost
// reports to and from JSON — the configuration-file workflow of mappers like
// Timeloop (which consumes YAML problem/arch/mapping descriptions), built on
// the standard library. Loading validates everything, so a hand-written file
// with an impossible architecture or an illegal mapping is rejected with a
// precise error.
package serde

import (
	"encoding/json"
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// WorkloadJSON is the serialized form of a tensor.Workload.
type WorkloadJSON struct {
	Name    string         `json:"name"`
	Dims    map[string]int `json:"dims"`
	Tensors []TensorJSON   `json:"tensors"`
}

// TensorJSON is one operand; each axis is a list of strided terms (a
// one-term axis is a plain subscript, multi-term is a sliding window).
type TensorJSON struct {
	Name   string       `json:"name"`
	Axes   [][]TermJSON `json:"axes"`
	Output bool         `json:"output,omitempty"`
}

// TermJSON is one summand of an axis expression: stride*dim.
type TermJSON struct {
	Dim    string `json:"dim"`
	Stride int    `json:"stride"`
}

// EncodeWorkload renders w as indented JSON.
func EncodeWorkload(w *tensor.Workload) ([]byte, error) {
	out := WorkloadJSON{Name: w.Name, Dims: map[string]int{}}
	for d, n := range w.Dims {
		out.Dims[string(d)] = n
	}
	for _, t := range w.Tensors {
		tj := TensorJSON{Name: t.Name, Output: t.Output}
		for _, a := range t.Axes {
			var axis []TermJSON
			for _, term := range a {
				axis = append(axis, TermJSON{Dim: string(term.D), Stride: term.Stride})
			}
			tj.Axes = append(tj.Axes, axis)
		}
		out.Tensors = append(out.Tensors, tj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeWorkload parses and validates a workload description.
func DecodeWorkload(data []byte) (*tensor.Workload, error) {
	var in WorkloadJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("workload JSON: %w", err)
	}
	dims := make(map[tensor.Dim]int, len(in.Dims))
	for d, n := range in.Dims {
		dims[tensor.Dim(d)] = n
	}
	var tensors []*tensor.Tensor
	for _, tj := range in.Tensors {
		t := &tensor.Tensor{Name: tj.Name, Output: tj.Output}
		for _, axis := range tj.Axes {
			var a tensor.Axis
			for _, term := range axis {
				a = append(a, tensor.Term{D: tensor.Dim(term.Dim), Stride: term.Stride})
			}
			t.Axes = append(t.Axes, a)
		}
		tensors = append(tensors, t)
	}
	return tensor.New(in.Name, dims, tensors...)
}

// ArchJSON is the serialized form of an arch.Arch.
type ArchJSON struct {
	Name            string         `json:"name"`
	WordBits        map[string]int `json:"word_bits,omitempty"`
	DefaultWordBits int            `json:"default_word_bits,omitempty"`
	MACPJ           float64        `json:"mac_pj"`
	Levels          []LevelJSON    `json:"levels"`
}

// LevelJSON is one storage level.
type LevelJSON struct {
	Name                  string       `json:"name"`
	Fanout                int          `json:"fanout,omitempty"`
	AllowSpatialReduction bool         `json:"allow_spatial_reduction,omitempty"`
	NoCPerWordPJ          float64      `json:"noc_per_word_pj,omitempty"`
	NoCTagCheckPJ         float64      `json:"noc_tag_check_pj,omitempty"`
	SpatialReducePJ       float64      `json:"spatial_reduce_pj,omitempty"`
	Buffers               []BufferJSON `json:"buffers"`
}

// BufferJSON is one physical memory.
type BufferJSON struct {
	Name    string   `json:"name"`
	Bytes   int64    `json:"bytes,omitempty"` // 0 = unbounded (DRAM)
	Tensors []string `json:"tensors,omitempty"`
	ReadPJ  float64  `json:"read_pj"`
	WritePJ float64  `json:"write_pj"`
	ReadBW  float64  `json:"read_bw,omitempty"`
	WriteBW float64  `json:"write_bw,omitempty"`
}

// EncodeArch renders a as indented JSON.
func EncodeArch(a *arch.Arch) ([]byte, error) {
	out := ArchJSON{
		Name: a.Name, WordBits: a.WordBits,
		DefaultWordBits: a.DefaultWordBits, MACPJ: a.MACPJ,
	}
	for i := range a.Levels {
		l := &a.Levels[i]
		lj := LevelJSON{
			Name: l.Name, Fanout: l.Fanout,
			AllowSpatialReduction: l.AllowSpatialReduction,
			NoCPerWordPJ:          l.NoCPerWordPJ,
			NoCTagCheckPJ:         l.NoCTagCheckPJ,
			SpatialReducePJ:       l.SpatialReducePJ,
		}
		for j := range l.Buffers {
			b := &l.Buffers[j]
			lj.Buffers = append(lj.Buffers, BufferJSON{
				Name: b.Name, Bytes: b.Bytes, Tensors: b.Tensors,
				ReadPJ: b.ReadPJ, WritePJ: b.WritePJ,
				ReadBW: b.ReadBW, WriteBW: b.WriteBW,
			})
		}
		out.Levels = append(out.Levels, lj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeArch parses and validates an architecture description.
func DecodeArch(data []byte) (*arch.Arch, error) {
	var in ArchJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("arch JSON: %w", err)
	}
	a := &arch.Arch{
		Name: in.Name, WordBits: in.WordBits,
		DefaultWordBits: in.DefaultWordBits, MACPJ: in.MACPJ,
	}
	for _, lj := range in.Levels {
		fanout := lj.Fanout
		if fanout == 0 {
			fanout = 1
		}
		l := arch.Level{
			Name: lj.Name, Fanout: fanout,
			AllowSpatialReduction: lj.AllowSpatialReduction,
			NoCPerWordPJ:          lj.NoCPerWordPJ,
			NoCTagCheckPJ:         lj.NoCTagCheckPJ,
			SpatialReducePJ:       lj.SpatialReducePJ,
			DoubleBuffered:        true,
		}
		for _, bj := range lj.Buffers {
			l.Buffers = append(l.Buffers, arch.Buffer{
				Name: bj.Name, Bytes: bj.Bytes, Tensors: bj.Tensors,
				ReadPJ: bj.ReadPJ, WritePJ: bj.WritePJ,
				ReadBW: bj.ReadBW, WriteBW: bj.WriteBW,
			})
		}
		a.Levels = append(a.Levels, l)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// FormatV1 is the current mapping-file format identifier. Encoders always
// stamp it; decoders accept it, or no stamp at all (pre-versioning files are
// treated as v1 — deprecated, kept so existing files keep loading), and
// reject anything else.
const FormatV1 = "sunstone/v1"

// MappingJSON is the serialized form of a mapping's level assignments.
type MappingJSON struct {
	// Format identifies the file-format revision ("sunstone/v1").
	// Deprecated: omitting it is still accepted and read as v1, but new
	// files should always carry the stamp.
	Format   string             `json:"format,omitempty"`
	Workload string             `json:"workload"`
	Arch     string             `json:"arch"`
	Levels   []MappingLevelJSON `json:"levels"` // innermost first
}

// MappingLevelJSON is one level's loops.
type MappingLevelJSON struct {
	Level    string         `json:"level"`
	Temporal map[string]int `json:"temporal,omitempty"`
	Order    []string       `json:"order,omitempty"` // innermost first
	Spatial  map[string]int `json:"spatial,omitempty"`
}

// EncodeMapping renders m's assignments as indented JSON.
func EncodeMapping(m *mapping.Mapping) ([]byte, error) {
	out := MappingJSON{Format: FormatV1, Workload: m.Workload.Name, Arch: m.Arch.Name}
	for lvl := range m.Levels {
		lm := &m.Levels[lvl]
		mlj := MappingLevelJSON{Level: m.Arch.Levels[lvl].Name}
		for d, f := range lm.Temporal {
			if f > 1 {
				if mlj.Temporal == nil {
					mlj.Temporal = map[string]int{}
				}
				mlj.Temporal[string(d)] = f
			}
		}
		for d, f := range lm.Spatial {
			if f > 1 {
				if mlj.Spatial == nil {
					mlj.Spatial = map[string]int{}
				}
				mlj.Spatial[string(d)] = f
			}
		}
		for _, d := range lm.Order {
			mlj.Order = append(mlj.Order, string(d))
		}
		out.Levels = append(out.Levels, mlj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeMapping parses level assignments and binds them to w and a,
// validating the result. The file's level count must match the
// architecture's.
func DecodeMapping(data []byte, w *tensor.Workload, a *arch.Arch) (*mapping.Mapping, error) {
	var in MappingJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("mapping JSON: %w", err)
	}
	switch in.Format {
	case FormatV1:
	case "": // pre-versioning file; read as v1 (deprecated)
	default:
		return nil, fmt.Errorf("mapping JSON: unknown format %q (this build reads %q)",
			in.Format, FormatV1)
	}
	if len(in.Levels) != len(a.Levels) {
		return nil, fmt.Errorf("mapping has %d levels, architecture %q has %d",
			len(in.Levels), a.Name, len(a.Levels))
	}
	m := mapping.New(w, a)
	// Every loop must name a workload dimension with a positive bound;
	// unknown dims would silently corrupt extent and coverage accounting.
	checkDim := func(lvl int, d string, f int, kind string) error {
		if _, ok := w.Dims[tensor.Dim(d)]; !ok {
			return fmt.Errorf("level %s: %s loop over %q: workload %q has no such dimension",
				a.Levels[lvl].Name, kind, d, w.Name)
		}
		if f < 1 {
			return fmt.Errorf("level %s: %s loop over %s has bound %d, must be >= 1",
				a.Levels[lvl].Name, kind, d, f)
		}
		return nil
	}
	for lvl, mlj := range in.Levels {
		for d, f := range mlj.Temporal {
			if err := checkDim(lvl, d, f, "temporal"); err != nil {
				return nil, err
			}
			m.Levels[lvl].Temporal[tensor.Dim(d)] = f
		}
		for d, f := range mlj.Spatial {
			if err := checkDim(lvl, d, f, "spatial"); err != nil {
				return nil, err
			}
			m.Levels[lvl].Spatial[tensor.Dim(d)] = f
		}
		for _, d := range mlj.Order {
			if _, ok := w.Dims[tensor.Dim(d)]; !ok {
				return nil, fmt.Errorf("level %s: loop order names %q: workload %q has no such dimension",
					a.Levels[lvl].Name, d, w.Name)
			}
			m.Levels[lvl].Order = append(m.Levels[lvl].Order, tensor.Dim(d))
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("decoded mapping is illegal: %w", err)
	}
	return m, nil
}

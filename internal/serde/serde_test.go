package serde

import (
	"strings"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

func TestWorkloadRoundTrip(t *testing.T) {
	orig := workloads.Conv2D("layer", 2, 8, 8, 7, 7, 3, 3, 2, 2)
	data, err := EncodeWorkload(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Dims) != len(orig.Dims) {
		t.Fatalf("round trip changed structure: %v vs %v", back, orig)
	}
	for d, n := range orig.Dims {
		if back.Dims[d] != n {
			t.Errorf("dim %s: %d vs %d", d, back.Dims[d], n)
		}
	}
	// Sliding-window strides survive.
	fp1 := orig.Tensor(arch.Ifmap).Footprint(orig.FullExtents())
	fp2 := back.Tensor(arch.Ifmap).Footprint(back.FullExtents())
	if fp1 != fp2 {
		t.Errorf("ifmap footprint changed: %d vs %d", fp2, fp1)
	}
}

func TestWorkloadRoundTripNonConv(t *testing.T) {
	orig := workloads.MTTKRP("m", 10, 8, 6, 4)
	data, err := EncodeWorkload(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tensors) != 4 || len(back.Outputs()) != 1 {
		t.Error("tensor structure lost")
	}
}

func TestDecodeWorkloadRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","dims":{},"tensors":[]}`,
		`{"name":"x","dims":{"K":4},"tensors":[{"name":"o","axes":[[{"dim":"Z","stride":1}]],"output":true}]}`,
	}
	for _, c := range cases {
		if _, err := DecodeWorkload([]byte(c)); err == nil {
			t.Errorf("DecodeWorkload(%q) should fail", c)
		}
	}
}

// archPresets is every built-in architecture preset; the parameterized Tiny
// family is pinned at representative sizes.
func archPresets() []*arch.Arch {
	return []*arch.Arch{
		arch.Conventional(),
		arch.Simba(),
		arch.DianNao(),
		arch.TinySpatial(512, 1<<16, 4),
	}
}

func TestArchRoundTrip(t *testing.T) {
	for _, orig := range archPresets() {
		data, err := EncodeArch(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeArch(data)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if back.TotalMACs() != orig.TotalMACs() {
			t.Errorf("%s: MACs %d vs %d", orig.Name, back.TotalMACs(), orig.TotalMACs())
		}
		if len(back.Levels) != len(orig.Levels) {
			t.Errorf("%s: levels %d vs %d", orig.Name, len(back.Levels), len(orig.Levels))
		}
		for i := range orig.Levels {
			if back.Levels[i].Fanout != orig.Levels[i].Fanout {
				t.Errorf("%s level %d fanout changed", orig.Name, i)
			}
		}
		// Bypass sets survive (Simba's L2 excludes weights).
		if orig.Name == "simba-like" && back.Levels[2].Keeps(arch.Weight) {
			t.Error("simba bypass lost in round trip")
		}
	}
}

// TestArchRoundTripFidelity is the full-fidelity contract for every preset:
// decode(encode(a)) must re-encode to byte-identical JSON, and the semantic
// fields the optimizer and the Engine's content-addressed cache key depend on
// — buffer capacities, energies, bypass sets, fanout, NoC parameters — must
// survive exactly. Encode-stability is what makes EncodeArch usable as a
// cache key: two structurally equal archs always key identically.
func TestArchRoundTripFidelity(t *testing.T) {
	for _, orig := range archPresets() {
		t.Run(orig.Name, func(t *testing.T) {
			data, err := EncodeArch(orig)
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeArch(data)
			if err != nil {
				t.Fatal(err)
			}
			data2, err := EncodeArch(back)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(data2) {
				t.Errorf("re-encode not byte-identical:\nfirst:\n%s\nsecond:\n%s", data, data2)
			}
			if back.Name != orig.Name || back.MACPJ != orig.MACPJ {
				t.Errorf("name/MAC energy changed: %q %g vs %q %g",
					back.Name, back.MACPJ, orig.Name, orig.MACPJ)
			}
			for i := range orig.Levels {
				ol, bl := &orig.Levels[i], &back.Levels[i]
				if bl.Name != ol.Name || bl.Fanout != ol.Fanout ||
					bl.AllowSpatialReduction != ol.AllowSpatialReduction ||
					bl.DoubleBuffered != ol.DoubleBuffered {
					t.Errorf("level %d structure changed: %+v vs %+v", i, bl, ol)
				}
				if len(bl.Buffers) != len(ol.Buffers) {
					t.Fatalf("level %d buffer count %d vs %d", i, len(bl.Buffers), len(ol.Buffers))
				}
				for j := range ol.Buffers {
					ob, bb := &ol.Buffers[j], &bl.Buffers[j]
					if bb.Name != ob.Name || bb.Bytes != ob.Bytes ||
						bb.ReadPJ != ob.ReadPJ || bb.WritePJ != ob.WritePJ {
						t.Errorf("level %d buffer %d changed: %+v vs %+v", i, j, bb, ob)
					}
					if len(bb.Tensors) != len(ob.Tensors) {
						t.Errorf("level %d buffer %d bypass set changed", i, j)
					}
				}
			}
		})
	}
}

func TestDecodeArchRejectsInvalid(t *testing.T) {
	if _, err := DecodeArch([]byte(`{"name":"x","mac_pj":1,"levels":[]}`)); err == nil {
		t.Error("empty arch should fail validation")
	}
	if _, err := DecodeArch([]byte(`garbage`)); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestDecodeMappingRejects(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(256)
	if _, err := DecodeMapping([]byte(`{"levels":[]}`), w, a); err == nil ||
		!strings.Contains(err.Error(), "levels") {
		t.Error("level-count mismatch should fail")
	}
	// A structurally fine but illegal mapping (no coverage).
	bad := `{"workload":"c","arch":"tiny","levels":[{"level":"L1"},{"level":"DRAM"}]}`
	if _, err := DecodeMapping([]byte(bad), w, a); err == nil ||
		!strings.Contains(err.Error(), "illegal") {
		t.Error("illegal mapping should be rejected by validation")
	}
}

// FuzzDecodeWorkload ensures the JSON loader never panics and everything it
// accepts re-validates.
func FuzzDecodeWorkload(f *testing.F) {
	seed, _ := EncodeWorkload(workloads.Conv1D("c", 2, 2, 4, 2))
	f.Add(string(seed))
	f.Add(`{"name":"x","dims":{"K":4},"tensors":[{"name":"o","axes":[[{"dim":"K","stride":1}]],"output":true}]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		w, err := DecodeWorkload([]byte(src))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Errorf("DecodeWorkload accepted an invalid workload: %v", verr)
		}
	})
}

// trivialMapping builds the everything-at-DRAM mapping of w on a: all loops
// temporal at the top (unbounded) level, workload order at every level.
func trivialMapping(w *tensor.Workload, a *arch.Arch) *mapping.Mapping {
	m := mapping.New(w, a)
	top := len(m.Levels) - 1
	for d, n := range w.Dims {
		m.Levels[top].Temporal[d] = n
	}
	for lvl := range m.Levels {
		m.Levels[lvl].Order = append([]tensor.Dim(nil), w.Order...)
	}
	return m
}

// TestDecodeTruncatedNeverPanics feeds every prefix of valid encodings to
// the three decoders: truncated JSON must yield a clean error, never a panic,
// and anything accepted must re-validate.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(256)
	wj, err := EncodeWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := EncodeArch(a)
	if err != nil {
		t.Fatal(err)
	}
	m := trivialMapping(w, a)
	if verr := m.Validate(); verr != nil {
		t.Fatalf("trivial mapping invalid: %v", verr)
	}
	mj, err := EncodeMapping(m)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, decode func([]byte) error) {
		for i := 0; i <= len(data); i++ {
			prefix := data[:i]
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on %d-byte truncation: %v", name, i, r)
					}
				}()
				_ = decode(prefix)
			}()
		}
	}
	check("DecodeWorkload", wj, func(b []byte) error {
		dw, derr := DecodeWorkload(b)
		if derr == nil {
			if verr := dw.Validate(); verr != nil {
				t.Fatalf("accepted workload fails validation: %v", verr)
			}
		}
		return derr
	})
	check("DecodeArch", aj, func(b []byte) error {
		da, derr := DecodeArch(b)
		if derr == nil {
			if verr := da.Validate(); verr != nil {
				t.Fatalf("accepted arch fails validation: %v", verr)
			}
		}
		return derr
	})
	check("DecodeMapping", mj, func(b []byte) error {
		_, derr := DecodeMapping(b, w, a)
		return derr
	})
}

// TestDecodeWorkloadMalformed: structurally valid JSON carrying semantic
// corruption — unknown dims in axes, duplicate tensors, empty names — must
// error, never panic.
func TestDecodeWorkloadMalformed(t *testing.T) {
	cases := []string{
		// axis references a dimension that was never declared
		`{"name":"x","dims":{"K":4},"tensors":[{"name":"o","axes":[[{"dim":"Z","stride":1}]],"output":true}]}`,
		// zero-sized dimension
		`{"name":"x","dims":{"K":0},"tensors":[{"name":"o","axes":[[{"dim":"K","stride":1}]],"output":true}]}`,
		// negative dimension
		`{"name":"x","dims":{"K":-3},"tensors":[{"name":"o","axes":[[{"dim":"K","stride":1}]],"output":true}]}`,
		// no output tensor
		`{"name":"x","dims":{"K":4},"tensors":[{"name":"a","axes":[[{"dim":"K","stride":1}]]}]}`,
		// no tensors at all
		`{"name":"x","dims":{"K":4},"tensors":[]}`,
	}
	for _, src := range cases {
		if _, err := DecodeWorkload([]byte(src)); err == nil {
			t.Errorf("DecodeWorkload accepted malformed input %s", src)
		}
	}
}

// TestDecodeMappingUnknownDim: a mapping JSON whose loops name dimensions the
// workload does not have must be rejected by validation, not crash coverage
// accounting.
func TestDecodeMappingUnknownDim(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(256)
	src := `{"workload":"c","arch":"tiny","levels":[` +
		`{"level":"L1"},` +
		`{"level":"DRAM","temporal":{"Z":8,"K":8,"C":8,"P":28,"R":3}}]}`
	if _, err := DecodeMapping([]byte(src), w, a); err == nil {
		t.Error("DecodeMapping accepted a mapping with an unknown dimension")
	}
}

// TestMappingFormatVersion pins the mapping-file versioning contract: encoded
// files carry the sunstone/v1 stamp and round-trip, stampless (pre-versioning)
// files still load as v1, and an unrecognized stamp is a loud error.
func TestMappingFormatVersion(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(256)
	m := trivialMapping(w, a)
	data, err := EncodeMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"format": "`+FormatV1+`"`) {
		t.Fatalf("encoded mapping is missing the %s stamp:\n%s", FormatV1, data)
	}
	back, err := DecodeMapping(data, w, a)
	if err != nil {
		t.Fatalf("stamped file should round-trip: %v", err)
	}
	if back.Levels[len(back.Levels)-1].Temporal["W"] != w.Dims["W"] {
		t.Error("round trip lost the top-level temporal loops")
	}

	headerless := strings.Replace(string(data), `"format": "`+FormatV1+`",`, "", 1)
	if strings.Contains(headerless, "format") {
		t.Fatalf("failed to strip the stamp for the headerless case:\n%s", headerless)
	}
	if _, err := DecodeMapping([]byte(headerless), w, a); err != nil {
		t.Errorf("headerless file must still decode as v1: %v", err)
	}

	future := strings.Replace(string(data), FormatV1, "sunstone/v99", 1)
	if _, err := DecodeMapping([]byte(future), w, a); err == nil ||
		!strings.Contains(err.Error(), "sunstone/v99") {
		t.Errorf("unknown format must be rejected with the offending stamp, got %v", err)
	}
}

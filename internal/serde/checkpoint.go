package serde

import (
	"encoding/json"
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// CheckpointJSON is the journal payload for a best-so-far search
// checkpoint: the incumbent mapping in the standard sunstone/v1 mapping
// format plus the scalar figures of merit at capture time. Job ties the
// payload back to the server's job record; the format stamp makes a
// checkpoint self-describing if it outlives the journal that wrote it.
type CheckpointJSON struct {
	Format   string          `json:"format"`
	Job      string          `json:"job"`
	Score    float64         `json:"score"`
	EDP      float64         `json:"edp"`
	EnergyPJ float64         `json:"energy_pj"`
	Cycles   float64         `json:"cycles"`
	Mapping  json.RawMessage `json:"mapping"`
}

// EncodeCheckpoint renders a checkpoint record payload for job, wrapping
// m in the sunstone/v1 mapping serialization.
func EncodeCheckpoint(job string, m *mapping.Mapping, score, edp, energyPJ, cycles float64) ([]byte, error) {
	mj, err := EncodeMapping(m)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return json.Marshal(CheckpointJSON{
		Format: FormatV1, Job: job,
		Score: score, EDP: edp, EnergyPJ: energyPJ, Cycles: cycles,
		Mapping: mj,
	})
}

// DecodeCheckpoint parses a checkpoint payload and binds its mapping to
// w and a (full legality validation included, like DecodeMapping).
func DecodeCheckpoint(data []byte, w *tensor.Workload, a *arch.Arch) (CheckpointJSON, *mapping.Mapping, error) {
	var cp CheckpointJSON
	if err := json.Unmarshal(data, &cp); err != nil {
		return cp, nil, fmt.Errorf("checkpoint JSON: %w", err)
	}
	switch cp.Format {
	case FormatV1, "":
	default:
		return cp, nil, fmt.Errorf("checkpoint JSON: unknown format %q (this build reads %q)", cp.Format, FormatV1)
	}
	m, err := DecodeMapping(cp.Mapping, w, a)
	if err != nil {
		return cp, nil, fmt.Errorf("checkpoint JSON: %w", err)
	}
	return cp, m, nil
}

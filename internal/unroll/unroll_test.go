package unroll

import (
	"testing"

	"sunstone/internal/tensor"
)

func get(c Candidate, d tensor.Dim) int {
	if f, ok := c[d]; ok {
		return f
	}
	return 1
}

func TestPrincipleExcludesNonIndexingDims(t *testing.T) {
	// Running example: OP = ofmap reused temporally, so only its indexing
	// dims P and K may be unrolled; C must never appear.
	cands, _ := Enumerate(Space{
		Allowed:               []tensor.Dim{"K", "P"},
		ReductionDims:         []tensor.Dim{"C", "R"},
		Quota:                 map[tensor.Dim]int{"K": 8, "P": 8, "C": 8, "R": 3},
		Fanout:                4,
		MinUtilization:        0.5,
		AllowSpatialReduction: true,
	})
	if len(cands) == 0 {
		t.Fatal("expected unroll candidates")
	}
	for _, c := range cands {
		for d, f := range c {
			if f > 1 && d != "K" && d != "P" {
				t.Errorf("candidate %s unrolls disallowed dim %s", c.Key(), d)
			}
		}
	}
}

func TestFullFanoutUtilization(t *testing.T) {
	cands, _ := Enumerate(Space{
		Allowed:        []tensor.Dim{"K", "P"},
		Quota:          map[tensor.Dim]int{"K": 8, "P": 8},
		Fanout:         16,
		MinUtilization: 0.99,
	})
	if len(cands) == 0 {
		t.Fatal("expected candidates")
	}
	for _, c := range cands {
		if get(c, "K")*get(c, "P") != 16 {
			t.Errorf("candidate %s does not fill the 16-way fanout", c.Key())
		}
	}
}

func TestReductionDimsExcludedWithoutHardwareSupport(t *testing.T) {
	cands, _ := Enumerate(Space{
		Allowed:               []tensor.Dim{"C", "K"},
		ReductionDims:         []tensor.Dim{"C"},
		Quota:                 map[tensor.Dim]int{"C": 8, "K": 8},
		Fanout:                4,
		AllowSpatialReduction: false,
	})
	for _, c := range cands {
		if get(c, "C") > 1 {
			t.Errorf("candidate %s spatially reduces without hardware support", c.Key())
		}
	}
}

func TestFanout1TrivialCandidate(t *testing.T) {
	cands, stats := Enumerate(Space{
		Quota:  map[tensor.Dim]int{"K": 8},
		Fanout: 1,
	})
	if len(cands) != 1 || len(cands[0]) != 0 {
		t.Errorf("fanout 1 should give only the empty unrolling, got %v", cands)
	}
	if stats.Survivors != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFallbackWhenNothingMeetsUtilization(t *testing.T) {
	// Quotas too small to fill the fanout: best effort must be returned.
	cands, _ := Enumerate(Space{
		Allowed:        []tensor.Dim{"K"},
		Quota:          map[tensor.Dim]int{"K": 2},
		Fanout:         64,
		MinUtilization: 0.8,
	})
	if len(cands) != 1 || get(cands[0], "K") != 2 {
		t.Errorf("fallback should return the best (K=2) unrolling, got %v", cands)
	}
}

func TestMaximality(t *testing.T) {
	cands, _ := Enumerate(Space{
		Allowed:        []tensor.Dim{"K", "P"},
		Quota:          map[tensor.Dim]int{"K": 4, "P": 4},
		Fanout:         8,
		MinUtilization: 0,
	})
	// Every returned candidate must be maximal: K*P == 8 (e.g. 2x4, 4x2)
	// or blocked by quota.
	for _, c := range cands {
		p := get(c, "K") * get(c, "P")
		if p < 8 && get(c, "K") < 4 && get(c, "P") < 4 {
			t.Errorf("candidate %s is not maximal", c.Key())
		}
	}
}

func TestEmptyAllowedUsesAllDims(t *testing.T) {
	cands, _ := Enumerate(Space{
		Quota:          map[tensor.Dim]int{"A": 4, "B": 4},
		Fanout:         4,
		MinUtilization: 0.9,
	})
	foundA, foundB := false, false
	for _, c := range cands {
		if get(c, "A") > 1 {
			foundA = true
		}
		if get(c, "B") > 1 {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Errorf("expected candidates over both dims, got %v", cands)
	}
}

func TestQuotaCapsFactors(t *testing.T) {
	cands, _ := Enumerate(Space{
		Allowed: []tensor.Dim{"K"},
		Quota:   map[tensor.Dim]int{"K": 3},
		Fanout:  64,
	})
	for _, c := range cands {
		if get(c, "K") > 3 {
			t.Errorf("factor exceeds quota: %s", c.Key())
		}
	}
}

// Package unroll generates spatial-unrolling candidates under Sunstone's
// Unrolling Principle (Section III-B of the paper).
//
// For a parallel level between memories X and X-1, where the loop ordering
// at X temporally reuses operand OP across tiles, unrolling a *non-indexing*
// dimension of OP would spend the spatial fanout reusing a tensor whose
// upper-level accesses are already minimized. The principle therefore
// restricts unrolling candidates to OP's indexing dimensions, steering the
// spatial reuse toward the other tensors. On ResNet-18 and a 14x12 PE array
// this prunes >90% of the unrolling space (paper, Section III-B).
//
// A "high-throughput" filter additionally discards assignments that leave
// too much of the fanout idle, and maximal assignments dominate smaller ones
// along the same dimensions.
package unroll

import (
	"sort"

	"sunstone/internal/factor"
	"sunstone/internal/tensor"
	"sunstone/internal/tile"
)

// Candidate is one spatial unrolling: per-dimension factors across the
// level's fanout. It reuses tile.Candidate's representation.
type Candidate = tile.Candidate

// Space describes one unrolling enumeration.
type Space struct {
	// Allowed lists the dimensions the Unrolling Principle admits
	// (indexing dimensions of the temporally-reused operand). Empty means
	// all dimensions.
	Allowed []tensor.Dim
	// ReductionDims lists the workload's reduction dimensions; they are
	// excluded unless AllowSpatialReduction.
	ReductionDims []tensor.Dim
	// Quota is the remaining factor budget per dimension.
	Quota map[tensor.Dim]int
	// Fanout is the number of parallel child instances at this level.
	Fanout int
	// MinUtilization is the high-throughput threshold: candidates using
	// less than this fraction of the fanout are pruned, unless nothing
	// meets it (then the best-utilization candidates are returned).
	MinUtilization float64
	// AllowSpatialReduction permits unrolling reduction dimensions
	// (requires hardware partial-sum combining).
	AllowSpatialReduction bool
	// MaxCandidates truncates the result to the highest-utilization
	// assignments when positive.
	MaxCandidates int
	// Ladder, when non-nil, supplies divisor ladders instead of
	// factor.Ladder (see tile.Space.Ladder).
	Ladder func(n, minDivisors int) []int
}

// ladderFn resolves an optional injected ladder supplier to factor.Ladder.
func ladderFn(f func(n, minDivisors int) []int) func(n, minDivisors int) []int {
	if f != nil {
		return f
	}
	return factor.Ladder
}

// Stats reports enumeration effort.
type Stats struct {
	NodesVisited int
	Survivors    int
}

// Enumerate returns the maximal spatial unrollings meeting the constraints,
// always including at least the empty unrolling (factor 1 everywhere) when
// nothing else qualifies.
func Enumerate(s Space) ([]Candidate, Stats) {
	var stats Stats
	if s.Fanout <= 1 {
		stats.NodesVisited = 1
		stats.Survivors = 1
		return []Candidate{{}}, stats
	}

	redSet := map[tensor.Dim]bool{}
	for _, d := range s.ReductionDims {
		redSet[d] = true
	}
	var dims []tensor.Dim
	if len(s.Allowed) == 0 {
		for d := range s.Quota {
			dims = append(dims, d)
		}
	} else {
		dims = append(dims, s.Allowed...)
	}
	var usable []tensor.Dim
	for _, d := range dims {
		if redSet[d] && !s.AllowSpatialReduction {
			continue
		}
		if s.Quota[d] > 1 {
			usable = append(usable, d)
		}
	}
	sort.Slice(usable, func(i, j int) bool { return usable[i] < usable[j] })

	ladders := make(map[tensor.Dim][]int, len(usable))
	for _, d := range usable {
		q := s.Quota[d]
		if q > s.Fanout {
			q = s.Fanout
		}
		// Exact divisors only (minDivisors 2 disables padding): a padded
		// spatial factor wastes PEs on every single pass, unlike a padded
		// tile which can amortize.
		ladders[d] = ladderFn(s.Ladder)(q, 2)
	}

	var all []Candidate
	cur := Candidate{}
	var rec func(i, product int)
	rec = func(i, product int) {
		stats.NodesVisited++
		if i == len(usable) {
			all = append(all, cloneCand(cur))
			return
		}
		d := usable[i]
		for _, f := range ladders[d] {
			if product*f > s.Fanout {
				break
			}
			if f > 1 {
				cur[d] = f
			} else {
				delete(cur, d)
			}
			rec(i+1, product*f)
		}
		delete(cur, d)
	}
	rec(0, 1)

	// Keep only maximal candidates: a candidate is dominated if one of its
	// dimensions can be raised a rung while staying within fanout.
	var maximal []Candidate
	for _, c := range all {
		if isMaximal(c, usable, ladders, s.Fanout) {
			maximal = append(maximal, c)
		}
	}
	if len(maximal) == 0 {
		maximal = []Candidate{{}}
	}

	// High-throughput filter.
	best := 0.0
	utils := make([]float64, len(maximal))
	for i, c := range maximal {
		utils[i] = float64(productOf(c)) / float64(s.Fanout)
		if utils[i] > best {
			best = utils[i]
		}
	}
	thresh := s.MinUtilization
	if best < thresh {
		thresh = best // nothing qualifies; fall back to the best available
	}
	var out []Candidate
	for i, c := range maximal {
		if utils[i] >= thresh {
			out = append(out, c)
		}
	}
	if s.MaxCandidates > 0 && len(out) > s.MaxCandidates {
		sort.Slice(out, func(i, j int) bool {
			pi, pj := productOf(out[i]), productOf(out[j])
			if pi != pj {
				return pi > pj
			}
			return out[i].Key() < out[j].Key()
		})
		out = out[:s.MaxCandidates]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	stats.Survivors = len(out)
	return out, stats
}

func isMaximal(c Candidate, dims []tensor.Dim, ladders map[tensor.Dim][]int, fanout int) bool {
	p := productOf(c)
	for _, d := range dims {
		cur := 1
		if f, ok := c[d]; ok {
			cur = f
		}
		for _, v := range ladders[d] {
			if v > cur {
				if p/cur*v <= fanout {
					return false
				}
				break
			}
		}
	}
	return true
}

func productOf(c Candidate) int {
	p := 1
	for _, f := range c {
		p *= f
	}
	return p
}

func cloneCand(c Candidate) Candidate {
	out := make(Candidate, len(c))
	for d, f := range c {
		out[d] = f
	}
	return out
}

package order_test

import (
	"fmt"

	"sunstone/internal/order"
	"sunstone/internal/tensor"
)

// The paper's 1D-convolution running example: the trie prunes 24 possible
// loop orders down to a handful of reuse-distinct candidates (Fig. 4).
func ExampleEnumerate() {
	w := tensor.MustNew("conv1d",
		map[tensor.Dim]int{"K": 4, "C": 4, "P": 7, "R": 3},
		&tensor.Tensor{Name: "ifmap", Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: "weight", Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: "ofmap", Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	orderings, stats := order.Enumerate(w)
	fmt.Printf("%d survivors of %d possible orders\n", stats.Survivors, stats.TotalOrders)
	for _, o := range orderings {
		fmt.Printf("%s -> OP %v\n", o.String(), o.FullyReused)
	}
	// Output:
	// 4 survivors of 24 possible orders
	// xxCR -> OP [ofmap]
	// xxP -> OP [weight]
	// xxPK -> OP [ifmap]
	// xxRK -> OP [ifmap]
}

// Package order implements Sunstone's loop-ordering trie IR (Section IV-A of
// the paper).
//
// The trie enumerates partially-determined innermost-first loop orders for
// one memory level. Each node is annotated with the reuse its prefix makes
// available: tensor t is *fully* reused across a loop over dimension d when d
// does not index t and every loop inside d is also non-indexing for t
// (Ordering Principles 1-2); a *partial* (sliding-window) reuse is available
// when d participates only in compound axes of t under the same condition.
//
// Two prunings shrink the trie without losing optimal orders:
//
//  1. A child that adds no reuse event over its parent is pruned — loops
//     above the innermost reuse chain never change access counts (Ordering
//     Principle 3).
//  2. A candidate whose reuse signature is a subset of another candidate's
//     is dominated and pruned (the paper's sibling-subsumption rule, e.g.
//     xxxC pruned in favor of xxCR, which reuses the same ofmap and adds
//     partial ifmap reuse).
//
// The surviving orderings are what the tiling and unrolling stages consume.
package order

import (
	"fmt"
	"sort"
	"strings"

	"sunstone/internal/tensor"
)

// Kind distinguishes full from partial (sliding-window) reuse.
type Kind int

const (
	Full Kind = iota
	Partial
)

// Event is one reuse opportunity: tensor Tensor reused across dimension D.
type Event struct {
	Tensor string
	D      tensor.Dim
	Kind   Kind
}

// Ordering is one surviving candidate loop order for a level.
type Ordering struct {
	// Inner lists the reuse-determining loops innermost-first; dimensions
	// not listed may be placed above in any order (Ordering Principle 3).
	Inner []tensor.Dim
	// Events are the reuse opportunities this ordering provides.
	Events []Event
	// FullyReused lists tensors fully reused across the innermost run —
	// the OP of the Tiling and Unrolling Principles. Sorted.
	FullyReused []string
}

// signature is a canonical string form of the event set.
func (o *Ordering) signature() string {
	evs := make([]string, len(o.Events))
	for i, e := range o.Events {
		evs[i] = fmt.Sprintf("%s/%s/%d", e.Tensor, e.D, e.Kind)
	}
	sort.Strings(evs)
	return strings.Join(evs, ",")
}

// String renders the ordering in the paper's xx..D notation (outermost
// first, x for undetermined loops).
func (o *Ordering) String() string {
	n := len(o.Inner)
	parts := make([]string, 0, n+1)
	parts = append(parts, "xx")
	for i := n - 1; i >= 0; i-- {
		parts = append(parts, string(o.Inner[i]))
	}
	return strings.Join(parts, "")
}

// Complete returns the full innermost-first loop order: Inner followed by
// the remaining dimensions in canonical workload order.
func (o *Ordering) Complete(w *tensor.Workload) []tensor.Dim {
	seen := map[tensor.Dim]bool{}
	out := append([]tensor.Dim(nil), o.Inner...)
	for _, d := range o.Inner {
		seen[d] = true
	}
	for _, d := range w.Order {
		if !seen[d] {
			out = append(out, d)
		}
	}
	return out
}

// Stats reports the trie's search-space reduction.
type Stats struct {
	// NodesVisited counts trie nodes expanded (including pruned ones).
	NodesVisited int
	// TotalOrders is the unpruned count of complete loop orders (n!).
	TotalOrders int
	// Survivors is the number of orderings returned.
	Survivors int
}

// Enumerate builds and prunes the ordering trie for the workload, returning
// the surviving candidate orderings for one memory level.
func Enumerate(w *tensor.Workload) ([]Ordering, Stats) {
	dims := w.Order
	nonIdx := map[string]map[tensor.Dim]bool{} // tensor -> non-indexing dims
	partial := map[string]map[tensor.Dim]bool{}
	for _, t := range w.Tensors {
		ni := map[tensor.Dim]bool{}
		for _, d := range dims {
			if !t.Indexing(d) {
				ni[d] = true
			}
		}
		nonIdx[t.Name] = ni
		pd := map[tensor.Dim]bool{}
		for _, d := range t.PartialDims() {
			pd[d] = true
		}
		partial[t.Name] = pd
	}

	var stats Stats
	stats.TotalOrders = fact(len(dims))

	type node struct {
		prefix []tensor.Dim // innermost-first
		events []Event
	}
	var leaves []node
	var expand func(n node)
	expand = func(n node) {
		stats.NodesVisited++
		extended := false
		used := map[tensor.Dim]bool{}
		for _, d := range n.prefix {
			used[d] = true
		}
		for _, d := range dims {
			if used[d] {
				continue
			}
			// Reuse events a loop over d adds, given the inner prefix.
			var added []Event
			for _, t := range w.Tensors {
				// All inner loops must be non-indexing for t for the
				// chain to survive (Ordering Principle 2).
				chainAlive := true
				for _, inner := range n.prefix {
					if !nonIdx[t.Name][inner] {
						chainAlive = false
						break
					}
				}
				if !chainAlive {
					continue
				}
				if nonIdx[t.Name][d] {
					added = append(added, Event{Tensor: t.Name, D: d, Kind: Full})
				} else if partial[t.Name][d] {
					added = append(added, Event{Tensor: t.Name, D: d, Kind: Partial})
				}
			}
			if len(added) == 0 {
				continue // Pruning 1: no further reuse below this child
			}
			child := node{
				prefix: append(append([]tensor.Dim(nil), n.prefix...), d),
				events: append(append([]Event(nil), n.events...), added...),
			}
			extended = true
			expand(child)
		}
		if !extended && len(n.prefix) > 0 {
			leaves = append(leaves, n)
		}
	}
	expand(node{})

	// Build candidates and apply subset-domination pruning (Pruning 2).
	cands := make([]Ordering, 0, len(leaves))
	for _, n := range leaves {
		o := Ordering{Inner: n.prefix, Events: n.events}
		o.FullyReused = fullyReused(w, n.prefix, nonIdx)
		cands = append(cands, o)
	}
	survivors := dominate(cands)
	if len(survivors) == 0 {
		// Degenerate workload where no loop can reuse anything: fall back
		// to the canonical order.
		survivors = []Ordering{{}}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].String() < survivors[j].String() })
	stats.Survivors = len(survivors)
	return survivors, stats
}

// fullyReused lists tensors whose non-indexing dims cover the innermost loop
// (prefix[0]) — the operand(s) temporally reused across the child tiles,
// which the Tiling and Unrolling Principles key off.
func fullyReused(w *tensor.Workload, prefix []tensor.Dim, nonIdx map[string]map[tensor.Dim]bool) []string {
	var out []string
	if len(prefix) == 0 {
		return nil
	}
	for _, t := range w.Tensors {
		if nonIdx[t.Name][prefix[0]] {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// dominate removes candidates whose event-set signature is a subset of (or
// equal to, keeping the first) another candidate's.
func dominate(cands []Ordering) []Ordering {
	sets := make([]map[string]bool, len(cands))
	for i := range cands {
		s := map[string]bool{}
		for _, e := range cands[i].Events {
			s[fmt.Sprintf("%s/%s/%d", e.Tensor, e.D, e.Kind)] = true
		}
		sets[i] = s
	}
	dead := make([]bool, len(cands))
	for i := range cands {
		if dead[i] {
			continue
		}
		for j := range cands {
			if i == j || dead[i] || dead[j] {
				continue
			}
			switch {
			case subset(sets[i], sets[j]) && subset(sets[j], sets[i]):
				// Equal: keep the lower index.
				if i < j {
					dead[j] = true
				} else {
					dead[i] = true
				}
			case subset(sets[i], sets[j]):
				dead[i] = true
			case subset(sets[j], sets[i]):
				dead[j] = true
			}
		}
	}
	var out []Ordering
	for i := range cands {
		if !dead[i] {
			out = append(out, cands[i])
		}
	}
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func fact(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Render prints the surviving orderings with their reuse annotations in the
// paper's Fig. 4 style — one line per candidate, listing the tensor each
// inner loop (partially) reuses. Useful for explaining why the search
// considers exactly these orders.
func Render(orderings []Ordering) string {
	var b strings.Builder
	for i := range orderings {
		o := &orderings[i]
		fmt.Fprintf(&b, "%-8s reuses:", o.String())
		for _, e := range o.Events {
			kind := ""
			if e.Kind == Partial {
				kind = " (partial)"
			}
			fmt.Fprintf(&b, " %s via %s%s;", e.Tensor, strings.ToLower(string(e.D)), kind)
		}
		if len(o.FullyReused) > 0 {
			fmt.Fprintf(&b, "  OP = %s", strings.Join(o.FullyReused, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}

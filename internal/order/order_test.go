package order

import (
	"reflect"
	"sort"
	"testing"

	"sunstone/internal/tensor"
)

func conv1D(t testing.TB) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("conv1d",
		map[tensor.Dim]int{"K": 4, "C": 4, "P": 7, "R": 3},
		&tensor.Tensor{Name: "ifmap", Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: "weight", Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: "ofmap", Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func matmul(t testing.TB) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("matmul",
		map[tensor.Dim]int{"M": 8, "N": 8, "K": 8},
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("M"), tensor.A("K")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("K"), tensor.A("N")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("M"), tensor.A("N")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func strs(os []Ordering) []string {
	out := make([]string, len(os))
	for i := range os {
		out[i] = os[i].String()
	}
	sort.Strings(out)
	return out
}

// TestConv1DTrie reproduces the Fig. 4 pruning behaviour: xxxC is dominated
// by the R-innermost ordering that also partially reuses ifmap; the
// survivors are a handful of orderings, far fewer than 4! = 24.
func TestConv1DTrie(t *testing.T) {
	got, stats := Enumerate(conv1D(t))
	if stats.Survivors >= 8 {
		t.Errorf("expected aggressive pruning, got %d survivors of %d orders",
			stats.Survivors, stats.TotalOrders)
	}
	names := strs(got)
	// The paper's node 4 (xxCR: R innermost, C above) must survive; the
	// dominated xxxC and xxCR-subset nodes must not appear as xxC alone.
	found := false
	for _, n := range names {
		if n == "xxCR" {
			found = true
		}
		if n == "xxC" {
			t.Errorf("xxxC should be dominated by xxCR (Fig. 4 pruning), got %v", names)
		}
	}
	if !found {
		t.Errorf("xxCR (R innermost, then C) should survive, got %v", names)
	}
}

func TestConv1DFullyReused(t *testing.T) {
	got, _ := Enumerate(conv1D(t))
	for _, o := range got {
		if len(o.Inner) == 0 {
			continue
		}
		switch o.Inner[0] {
		case "R", "C":
			if !contains(o.FullyReused, "ofmap") {
				t.Errorf("%s: innermost %s should fully reuse ofmap, got %v", o.String(), o.Inner[0], o.FullyReused)
			}
		case "K":
			if !contains(o.FullyReused, "ifmap") {
				t.Errorf("%s: innermost K should fully reuse ifmap, got %v", o.String(), o.FullyReused)
			}
		case "P":
			if !contains(o.FullyReused, "weight") {
				t.Errorf("%s: innermost P should fully reuse weight, got %v", o.String(), o.FullyReused)
			}
		}
	}
}

// TestOrderingPrinciple2InTrie: the events of an ordering never include a
// tensor whose reuse chain was broken by an inner indexing loop.
func TestOrderingPrinciple2InTrie(t *testing.T) {
	got, _ := Enumerate(conv1D(t))
	w := conv1D(t)
	for _, o := range got {
		for _, e := range o.Events {
			tn := w.Tensor(e.Tensor)
			// Find the position of e.D in Inner; all dims inside must be
			// non-indexing for the tensor.
			pos := -1
			for i, d := range o.Inner {
				if d == e.D {
					pos = i
					break
				}
			}
			if pos < 0 {
				t.Fatalf("%s: event dim %s not in prefix %v", o.String(), e.D, o.Inner)
			}
			for i := 0; i < pos; i++ {
				if tn.Indexing(o.Inner[i]) {
					t.Errorf("%s: %s reuse across %s with indexing loop %s inside",
						o.String(), e.Tensor, e.D, o.Inner[i])
				}
			}
		}
	}
}

func TestMatmulTrie(t *testing.T) {
	got, stats := Enumerate(matmul(t))
	if stats.Survivors == 0 {
		t.Fatal("matmul must have ordering candidates")
	}
	// Each of the three dims reuses exactly one tensor; no partial reuse
	// exists, so orderings are short chains.
	for _, o := range got {
		for _, e := range o.Events {
			if e.Kind != Full {
				t.Errorf("matmul has no sliding windows; got partial event %v", e)
			}
		}
	}
	if stats.Survivors > 6 {
		t.Errorf("matmul survivors = %d, want <= 6 (3! total)", stats.Survivors)
	}
}

func TestCompleteCoversAllDims(t *testing.T) {
	w := conv1D(t)
	got, _ := Enumerate(w)
	for _, o := range got {
		full := o.Complete(w)
		if len(full) != len(w.Dims) {
			t.Fatalf("%s: Complete = %v, want %d dims", o.String(), full, len(w.Dims))
		}
		seen := map[tensor.Dim]bool{}
		for _, d := range full {
			if seen[d] {
				t.Errorf("%s: duplicate dim %s in %v", o.String(), d, full)
			}
			seen[d] = true
		}
		// Inner prefix must be preserved.
		if !reflect.DeepEqual(full[:len(o.Inner)], o.Inner) {
			t.Errorf("%s: Complete %v does not start with Inner %v", o.String(), full, o.Inner)
		}
	}
}

func TestDegenerateWorkloadFallsBack(t *testing.T) {
	// Elementwise multiply: both dims index everything; no reuse anywhere.
	w, err := tensor.New("mul",
		map[tensor.Dim]int{"I": 4, "J": 4},
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Enumerate(w)
	if len(got) != 1 || len(got[0].Inner) != 0 {
		t.Errorf("degenerate workload should fall back to one canonical ordering, got %v", strs(got))
	}
}

func TestStats(t *testing.T) {
	_, stats := Enumerate(conv1D(t))
	if stats.TotalOrders != 24 {
		t.Errorf("4 dims should have 24 total orders, got %d", stats.TotalOrders)
	}
	if stats.NodesVisited <= 0 || stats.Survivors <= 0 {
		t.Errorf("bad stats: %+v", stats)
	}
	if stats.Survivors > stats.NodesVisited {
		t.Error("survivors cannot exceed visited nodes")
	}
}

func TestMTTKRPVersatility(t *testing.T) {
	// out[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j] — the trie must work
	// unmodified on non-conv workloads (versatility claim).
	w, err := tensor.New("mttkrp",
		map[tensor.Dim]int{"I": 8, "J": 8, "K": 8, "L": 8},
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("K"), tensor.A("L")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("K"), tensor.A("J")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("L"), tensor.A("J")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, stats := Enumerate(w)
	if len(got) == 0 {
		t.Fatal("MTTKRP must yield orderings")
	}
	if stats.Survivors >= stats.TotalOrders {
		t.Errorf("pruning should shrink the space: %d of %d", stats.Survivors, stats.TotalOrders)
	}
	// J reuses A (non-indexing); some ordering must exploit it.
	foundAReuse := false
	for _, o := range got {
		for _, e := range o.Events {
			if e.Tensor == "A" && e.D == "J" {
				foundAReuse = true
			}
		}
	}
	if !foundAReuse {
		t.Error("no ordering reuses A across J")
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func TestRender(t *testing.T) {
	got, _ := Enumerate(conv1D(t))
	s := Render(got)
	for _, want := range []string{"xxCR", "ofmap via r", "(partial)", "OP ="} {
		if !contains2(s, want) {
			t.Errorf("Render missing %q:\n%s", want, s)
		}
	}
}

func contains2(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

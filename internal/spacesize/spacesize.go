// Package spacesize estimates the mapping-space size each tool optimizes
// over, reproducing Table I of the paper for a given workload/architecture
// pair.
//
// Following the table's structure, each tool's space is the product of
//
//   - its temporal tiling choices: ordered factorizations of each problem
//     dimension it considers across the temporal levels;
//   - its spatial unrolling choices: factor assignments (product <= fanout)
//     over the dimensions it allows at each spatial level;
//   - a documented pruning discount for tools that cut the space with
//     heuristics (Marvel's off-chip/on-chip decoupling, dMazeRunner's
//     utilization thresholds, Interstellar's full-throughput requirement).
//
// As in the paper these are *estimates* of the space a tool's formulation
// spans — not the number of points a particular run visits (Sunstone's
// actual visit count is reported separately by core.Result.SpaceSize). The
// absolute values depend on the layer; the orders-of-magnitude relations of
// Table I (Timeloop/CoSA >> Marvel/Interstellar >> dMazeRunner >> Sunstone)
// are what the estimators preserve, and what the tests assert.
package spacesize

import (
	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/factor"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
)

// Estimate is one Table I row.
type Estimate struct {
	Tool string
	// TemporalDims / UnrollDims are the dimension counts the tool uses per
	// temporal level / spatial level (Table I rows 1-2).
	TemporalDims int
	UnrollDims   int
	// Size is the estimated space size.
	Size float64
	// Note summarizes the tool's pruning (Table I row 3).
	Note string
}

// Table1 computes the per-tool estimates for workload w on architecture a.
func Table1(w *tensor.Workload, a *arch.Arch) []Estimate {
	nDims := len(w.Dims)
	temporalLevels := len(a.Levels)
	var spatialFanouts []int
	for i := range a.Levels {
		if a.Levels[i].Fanout > 1 {
			spatialFanouts = append(spatialFanouts, a.Levels[i].Fanout)
		}
	}

	allDims := w.Order
	reduction := map[tensor.Dim]bool{}
	for _, d := range w.ReductionDims() {
		reduction[d] = true
	}
	var nonReduction []tensor.Dim
	for _, d := range allDims {
		if !reduction[d] {
			nonReduction = append(nonReduction, d)
		}
	}
	var channels []tensor.Dim
	for _, d := range []tensor.Dim{"C", "K"} {
		if _, ok := w.Dims[d]; ok {
			channels = append(channels, d)
		}
	}

	// Sunstone's per-level dimensions: the indexing dims of a reused
	// operand — take the largest grow set over the surviving orderings.
	orderings, _ := order.Enumerate(w)
	reuseDims := sunstoneReuseDims(w, orderings)

	tilings := func(dims []tensor.Dim, slots int) float64 {
		p := 1.0
		for _, d := range dims {
			p *= float64(factor.NumSplitsK(factor.Pad(w.Dims[d], 4), slots))
		}
		return p
	}
	unrollings := func(dims []tensor.Dim) float64 {
		p := 1.0
		for _, fan := range spatialFanouts {
			per := 1.0
			for _, d := range dims {
				n := 0
				for _, v := range factor.Divisors(factor.Pad(w.Dims[d], 4)) {
					if v <= fan {
						n++
					}
				}
				per *= float64(n)
			}
			p *= per
		}
		return p
	}

	tlSize := tilings(allDims, temporalLevels) * unrollings(allDims)

	// Marvel decouples off-chip from on-chip: the two sub-spaces add
	// instead of multiplying, and high-buffer-utilization pruning keeps
	// roughly the maximal tiles at the on-chip levels (one representative
	// choice per dimension ordering of growth, ~ slots^dims of the full
	// factorization product).
	marvelOff := tilings(allDims, 2)
	marvelOn := tilings(allDims, temporalLevels-1) * unrollings(allDims) / tilings(allDims, 1)
	marvelSize := marvelOff + marvelOn

	interSize := tilings(allDims, temporalLevels) * unrollings(channels)

	// dMazeRunner: utilization thresholds keep only near-maximal tiles at
	// each bounded level — one ladder position per dimension survives per
	// level in expectation, leaving the ordering/unrolling cross products.
	dmazeSize := tilings(allDims, 2) / float64(nDims) * unrollings(nonReduction) / tilings(nonReduction, 1)

	// Sunstone's space needs no estimate: the search is small enough to
	// run, so its row reports the measured candidate count.
	sunSize := 1.0
	if res, err := core.Optimize(w, a, core.Options{}); err == nil {
		sunSize = float64(res.SpaceSize)
	}

	return []Estimate{
		{Tool: "Timeloop", TemporalDims: nDims, UnrollDims: nDims, Size: tlSize,
			Note: "no pruning"},
		{Tool: "CoSA", TemporalDims: nDims, UnrollDims: nDims, Size: tlSize,
			Note: "same space; linear approximation lets a one-shot solver skip the search"},
		{Tool: "Marvel", TemporalDims: nDims, UnrollDims: nDims, Size: marvelSize,
			Note: "decoupled off-chip and on-chip, high buffer utilization"},
		{Tool: "Interstellar", TemporalDims: nDims, UnrollDims: len(channels), Size: interSize,
			Note: "input/output channel unrolling, high throughput"},
		{Tool: "dMazeRunner", TemporalDims: nDims, UnrollDims: len(nonReduction), Size: dmazeSize,
			Note: "high buffer utilization, high throughput"},
		{Tool: "Sunstone", TemporalDims: len(reuseDims), UnrollDims: len(reuseDims), Size: sunSize,
			Note: "alpha-beta, high throughput; only the reuse dimensions per level"},
	}
}

// sunstoneReuseDims returns the union-maximum grow set across the pruned
// orderings: the dimensions Sunstone ever needs at one level (4 for the
// Table I convolution example).
func sunstoneReuseDims(w *tensor.Workload, orderings []order.Ordering) []tensor.Dim {
	best := []tensor.Dim{}
	for i := range orderings {
		set := map[tensor.Dim]bool{}
		for _, name := range orderings[i].FullyReused {
			t := w.Tensor(name)
			if t == nil {
				continue
			}
			for _, d := range t.IndexingDims() {
				set[d] = true
			}
		}
		if len(set) > len(best) {
			best = best[:0]
			for _, d := range w.Order {
				if set[d] {
					best = append(best, d)
				}
			}
		}
	}
	if len(best) == 0 {
		best = append(best, w.Order...)
	}
	return best
}

package spacesize

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/workloads"
)

func table(t *testing.T) map[string]Estimate {
	t.Helper()
	w := workloads.InceptionExampleLayer.Inference(1)
	ests := Table1(w, arch.Conventional())
	if len(ests) != 6 {
		t.Fatalf("Table I has 6 tools, got %d", len(ests))
	}
	out := map[string]Estimate{}
	for _, e := range ests {
		out[e.Tool] = e
	}
	return out
}

// TestTable1Ordering asserts the orders-of-magnitude relations of Table I:
// Timeloop/CoSA >> Marvel/Interstellar >> dMazeRunner >> Sunstone.
func TestTable1Ordering(t *testing.T) {
	e := table(t)
	if e["Timeloop"].Size != e["CoSA"].Size {
		t.Error("CoSA spans the same space as Timeloop")
	}
	if !(e["Timeloop"].Size > e["Marvel"].Size) {
		t.Errorf("Timeloop (%.2e) should exceed Marvel (%.2e)", e["Timeloop"].Size, e["Marvel"].Size)
	}
	if !(e["Timeloop"].Size > e["Interstellar"].Size) {
		t.Errorf("Timeloop (%.2e) should exceed Interstellar (%.2e)", e["Timeloop"].Size, e["Interstellar"].Size)
	}
	if !(e["Marvel"].Size > e["dMazeRunner"].Size) {
		t.Errorf("Marvel (%.2e) should exceed dMazeRunner (%.2e)", e["Marvel"].Size, e["dMazeRunner"].Size)
	}
	if !(e["Interstellar"].Size > e["dMazeRunner"].Size) {
		t.Errorf("Interstellar (%.2e) should exceed dMazeRunner (%.2e)", e["Interstellar"].Size, e["dMazeRunner"].Size)
	}
	if !(e["dMazeRunner"].Size > e["Sunstone"].Size) {
		t.Errorf("dMazeRunner (%.2e) should exceed Sunstone (%.2e)", e["dMazeRunner"].Size, e["Sunstone"].Size)
	}
	// The headline claim: Sunstone's space is many orders of magnitude
	// smaller than Timeloop's (up to 1e7x in the paper).
	if e["Timeloop"].Size/e["Sunstone"].Size < 1e4 {
		t.Errorf("Timeloop/Sunstone ratio = %.2e, want >= 1e4",
			e["Timeloop"].Size/e["Sunstone"].Size)
	}
	for _, est := range e {
		if est.Size < 1 {
			t.Errorf("%s: size %.2e below 1", est.Tool, est.Size)
		}
	}
}

// TestTable1DimCounts checks the "dimensions used" rows of Table I: prior
// tools build each temporal tile from all 7 conv dims; Sunstone uses only
// the reuse dimensions (4 for convolution); Interstellar unrolls only C/K.
func TestTable1DimCounts(t *testing.T) {
	e := table(t)
	for _, tool := range []string{"Timeloop", "CoSA", "Marvel", "Interstellar", "dMazeRunner"} {
		if e[tool].TemporalDims != 7 {
			t.Errorf("%s temporal dims = %d, want 7", tool, e[tool].TemporalDims)
		}
	}
	if e["Sunstone"].TemporalDims >= 7 {
		t.Errorf("Sunstone temporal dims = %d, want < 7 (reuse dims only)", e["Sunstone"].TemporalDims)
	}
	if e["Interstellar"].UnrollDims != 2 {
		t.Errorf("Interstellar unroll dims = %d, want 2 (C and K)", e["Interstellar"].UnrollDims)
	}
	if e["dMazeRunner"].UnrollDims != 4 {
		t.Errorf("dMazeRunner unroll dims = %d, want 4 (no spatial reduction)", e["dMazeRunner"].UnrollDims)
	}
}

func TestWorksOnNonConv(t *testing.T) {
	w := workloads.MTTKRP("m", 128, 64, 64, 32)
	ests := Table1(w, arch.Conventional())
	if len(ests) != 6 {
		t.Fatal("estimator must handle non-conv workloads")
	}
	var tl, sun float64
	for _, e := range ests {
		if e.Tool == "Timeloop" {
			tl = e.Size
		}
		if e.Tool == "Sunstone" {
			sun = e.Size
		}
	}
	if sun >= tl {
		t.Errorf("Sunstone space (%.2e) must be below Timeloop's (%.2e) on MTTKRP too", sun, tl)
	}
}

// Package noc models the Eyeriss-style on-chip interconnect of Section V-A:
// an X-Y mesh in which every packet carries a destination tag with the
// target PE's X and Y coordinates, a tag-check unit at each PE accepts only
// designated packets, and multicast packets are duplicated at branch points
// of the dimension-ordered route.
//
// The exact hop counts computed here justify the closed-form per-word NoC
// energy fit in internal/energy (wire energy growing with the square root of
// the array size — the average X-Y distance in a WxH mesh is Θ(W+H) =
// Θ(√fanout)); a test asserts the fit tracks the mesh-exact cost. The mesh
// model is also available directly for users who want hop-accurate NoC
// accounting for a specific array geometry.
package noc

import "math"

// Mesh is a W x H array of PEs fed from a root injection point at the
// top-left corner (the shared buffer's port), using X-then-Y
// dimension-ordered routing.
type Mesh struct {
	W, H int
	// WirePJPerHop is the energy of moving one word across one mesh link.
	WirePJPerHop float64
	// TagCheckPJ is the per-receiving-PE destination-tag check energy.
	TagCheckPJ float64
}

// Square returns the most square WxH mesh with W*H >= fanout.
func Square(fanout int) (w, h int) {
	if fanout <= 1 {
		return 1, 1
	}
	w = int(math.Ceil(math.Sqrt(float64(fanout))))
	h = (fanout + w - 1) / w
	return w, h
}

// UnicastHops returns the X-Y route length from the root (0,0) to PE (x,y).
func (m Mesh) UnicastHops(x, y int) int { return x + y }

// AvgUnicastHops returns the mean root-to-PE distance over the whole array.
func (m Mesh) AvgUnicastHops() float64 {
	if m.W <= 0 || m.H <= 0 {
		return 0
	}
	// Mean of x over [0,W) plus mean of y over [0,H).
	return float64(m.W-1)/2 + float64(m.H-1)/2
}

// MulticastHops returns the number of link traversals needed to deliver one
// word to the first n PEs in row-major order under X-then-Y routing with
// duplication at branch points: the multicast tree covers each used row's
// horizontal span once plus the vertical trunk down to the last used row.
func (m Mesh) MulticastHops(n int) int {
	if n <= 0 || m.W <= 0 {
		return 0
	}
	if n > m.W*m.H {
		n = m.W * m.H
	}
	fullRows := n / m.W
	rem := n % m.W
	hops := 0
	// Vertical trunk reaches the deepest used row.
	depth := fullRows
	if rem > 0 {
		depth++
	}
	hops += depth - 1
	// Horizontal span of each full row, plus the partial row.
	hops += fullRows * (m.W - 1)
	if rem > 0 {
		hops += rem - 1
	}
	return hops
}

// DeliverPJ returns the energy of delivering words to nDest PEs each
// (multicast): wire energy for the multicast tree plus one tag check per
// receiving PE per word.
func (m Mesh) DeliverPJ(words float64, nDest int) float64 {
	return words * (float64(m.MulticastHops(nDest))*m.WirePJPerHop +
		float64(nDest)*m.TagCheckPJ)
}

// PerWordUnicastPJ returns the average per-word cost of scattering distinct
// words across the array (each word to one PE at average distance).
func (m Mesh) PerWordUnicastPJ() float64 {
	return m.AvgUnicastHops()*m.WirePJPerHop + m.TagCheckPJ
}

package noc

import (
	"testing"
	"testing/quick"

	"sunstone/internal/energy"
)

func TestSquare(t *testing.T) {
	cases := []struct{ fanout, w, h int }{
		{1, 1, 1}, {16, 4, 4}, {1024, 32, 32}, {64, 8, 8}, {12, 4, 3},
	}
	for _, c := range cases {
		w, h := Square(c.fanout)
		if w != c.w || h != c.h {
			t.Errorf("Square(%d) = %dx%d, want %dx%d", c.fanout, w, h, c.w, c.h)
		}
		if w*h < c.fanout {
			t.Errorf("Square(%d) = %dx%d does not cover the fanout", c.fanout, w, h)
		}
	}
}

func TestUnicastHops(t *testing.T) {
	m := Mesh{W: 4, H: 4}
	if m.UnicastHops(0, 0) != 0 || m.UnicastHops(3, 3) != 6 {
		t.Error("X-Y route lengths wrong")
	}
	if got := m.AvgUnicastHops(); got != 3.0 {
		t.Errorf("avg hops = %f, want 3.0 for 4x4", got)
	}
}

func TestMulticastHops(t *testing.T) {
	m := Mesh{W: 4, H: 4}
	// One destination: root itself, no hops.
	if m.MulticastHops(1) != 0 {
		t.Errorf("1 dest = %d hops", m.MulticastHops(1))
	}
	// One full row: 3 horizontal hops.
	if m.MulticastHops(4) != 3 {
		t.Errorf("4 dests = %d hops, want 3", m.MulticastHops(4))
	}
	// Whole array: 3 vertical trunk + 4 rows x 3 horizontal = 15.
	if m.MulticastHops(16) != 15 {
		t.Errorf("16 dests = %d hops, want 15", m.MulticastHops(16))
	}
	// Clamped beyond array size.
	if m.MulticastHops(100) != m.MulticastHops(16) {
		t.Error("overflow not clamped")
	}
	if m.MulticastHops(0) != 0 {
		t.Error("0 dests should cost 0")
	}
}

// TestMulticastCheaperThanUnicastsProperty: delivering one word to n PEs via
// the multicast tree never costs more wire hops than n separate unicasts —
// the reason the Eyeriss NoC (and the cost model's multicast accounting)
// pays the parent side only once.
func TestMulticastCheaperThanUnicastsProperty(t *testing.T) {
	f := func(wSel, hSel, nSel uint8) bool {
		w := int(wSel%8) + 1
		h := int(hSel%8) + 1
		m := Mesh{W: w, H: h}
		n := int(nSel)%(w*h) + 1
		multicast := m.MulticastHops(n)
		unicasts := 0
		for i := 0; i < n; i++ {
			unicasts += m.UnicastHops(i%w, i/w)
		}
		return multicast <= unicasts || n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEnergyFitTracksMesh validates internal/energy's closed-form NoC fit
// against the hop-exact mesh model: across the array sizes the presets use,
// the fit must (a) scale the same way the mesh-exact average distance does
// (stable ratio), and (b) sit above the bare-wire cost but within a small
// constant of it — the headroom covers router/arbitration energy the
// hop-count alone omits.
func TestEnergyFitTracksMesh(t *testing.T) {
	const wirePJPerHopPerBit = 0.0035 // 45 nm mesh link, per bit
	var ratios []float64
	for _, fanout := range []int{16, 64, 256, 1024} {
		w, h := Square(fanout)
		m := Mesh{W: w, H: h, WirePJPerHop: wirePJPerHopPerBit * 16}
		exact := m.AvgUnicastHops() * m.WirePJPerHop
		fit := energy.NoCPerWord(16, fanout)
		ratios = append(ratios, fit/exact)
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		if r < 1 || r > 6 {
			t.Errorf("fit/mesh-exact ratio %.2f outside [1,6]", r)
		}
	}
	if hi/lo > 1.5 {
		t.Errorf("fit scaling drifts from the mesh model: ratios span %.2f-%.2f", lo, hi)
	}
}

func TestDeliverPJ(t *testing.T) {
	m := Mesh{W: 4, H: 4, WirePJPerHop: 1, TagCheckPJ: 0.1}
	// 10 words broadcast to all 16 PEs: 10*(15*1 + 16*0.1) = 166.
	if got := m.DeliverPJ(10, 16); got != 166 {
		t.Errorf("DeliverPJ = %f, want 166", got)
	}
}

func TestPerWordUnicastPJ(t *testing.T) {
	m := Mesh{W: 4, H: 4, WirePJPerHop: 1, TagCheckPJ: 0.5}
	if got := m.PerWordUnicastPJ(); got != 3.5 {
		t.Errorf("PerWordUnicastPJ = %f, want 3.5", got)
	}
}

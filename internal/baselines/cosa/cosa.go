// Package cosa reimplements the CoSA mapper's strategy (Huang et al., ISCA
// 2021): a *one-shot* constrained-optimization formulation that linearizes
// the (non-linear) mapping problem in log space so it can be solved without
// search, then rounds the relaxed solution to integer factors.
//
// The defining behaviours the paper reports are reproduced faithfully:
//
//   - it is very fast (a single allocation pass, no search — Fig. 8b shows
//     CoSA finishing before Sunstone);
//   - the linear approximation drops the non-linear parts of the capacity
//     constraints, so the rounded solution's tiles can overflow their
//     buffers: this implementation checks capacity per tensor against the
//     *full* buffer (ignoring co-resident tensors), ignores sliding-window
//     halos (P+R-1 is linearized to P), and checks only the level being
//     assigned — three genuine linearization artifacts. The real validator
//     then reports "one or more tiles did not fit in their designated
//     memories" for most Simba layers, as in Section V-B3;
//   - when it is valid, the mapping is often suboptimal versus Sunstone.
package cosa

import (
	"context"
	"sort"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/cost"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
)

// Mapper is the CoSA-style one-shot mapper.
type Mapper struct {
	Model cost.Model
	// Sessions, when non-nil, supplies the fast-path cost session (e.g. a
	// shared Engine's compiled cache) instead of building one per call.
	Sessions baselines.SessionSource
}

// New returns a mapper with the default model.
func New() *Mapper { return &Mapper{Model: cost.Default} }

// UseSessions injects a shared session source (see baselines.SessionFor).
func (m *Mapper) UseSessions(src baselines.SessionSource) { m.Sessions = src }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return "CoSA" }

// MapContext implements baselines.Mapper: this search is one-shot and
// sub-second, so it only short-circuits an already-done context and
// otherwise runs to completion with panic containment (see
// baselines.RunContext). The run is recorded as a telemetry span when the
// context carries a trace (see baselines.Instrument).
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(ctx context.Context) baselines.Result {
		return baselines.RunContext(ctx, m.Name(), func() baselines.Result { return m.Map(w, a) })
	})
}

// Map implements baselines.Mapper.
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	mp := mapping.New(w, a)
	top := len(a.Levels) - 1

	// Relaxed per-tensor, per-level capacity in words: each tensor sees the
	// full capacity of its buffer (linearization artifact #1: co-resident
	// tensors are ignored because the sum constraint is non-linear in log
	// space).
	relaxCap := make([]map[string]int64, len(a.Levels))
	for l := 0; l < top; l++ {
		relaxCap[l] = map[string]int64{}
		for _, t := range w.Tensors {
			if buf := a.Levels[l].BufferFor(t.Name); buf != nil && a.Levels[l].Keeps(t.Name) {
				if buf.Bytes == 0 {
					relaxCap[l][t.Name] = 1 << 60
				} else {
					relaxCap[l][t.Name] = buf.Bytes * 8 / int64(a.Bits(t.Name))
				}
			}
		}
	}
	// Linearized footprint tracker: product of per-dimension factors at
	// levels <= l for each tensor's indexing dims (artifact #2: compound
	// sliding-window axes P+R-1 are linearized to their dominant term).
	foot := make([]map[string]int64, len(a.Levels))
	for l := range foot {
		foot[l] = map[string]int64{}
		for _, t := range w.Tensors {
			foot[l][t.Name] = 1
		}
	}

	// Utilization objective first: fill every spatial fanout greedily with
	// the largest dimensions (CoSA weighs PE utilization linearly).
	dims := append([]tensor.Dim(nil), w.Order...)
	sort.Slice(dims, func(i, j int) bool { return w.Dims[dims[i]] > w.Dims[dims[j]] })
	remaining := map[tensor.Dim][]int{}
	for _, d := range w.Order {
		ps := factor.Primes(w.Dims[d])
		sort.Sort(sort.Reverse(sort.IntSlice(ps)))
		remaining[d] = ps
	}
	redSet := map[tensor.Dim]bool{}
	for _, d := range w.ReductionDims() {
		redSet[d] = true
	}
	for l := 0; l < len(a.Levels); l++ {
		free := a.Levels[l].Fanout
		if free <= 1 {
			continue
		}
		for _, d := range dims {
			if redSet[d] && !a.Levels[l].AllowSpatialReduction {
				continue
			}
			ps := remaining[d]
			for len(ps) > 0 {
				p := ps[len(ps)-1] // smallest prime first for dense packing
				if p > free {
					break
				}
				ps = ps[:len(ps)-1]
				mp.Levels[l].Spatial[d] = mp.Levels[l].S(d) * p
				free /= p
				// Linearization artifact #4: spatial factors are tracked
				// per-instance ("each child sees only its slice") — correct
				// for per-datatype distributed buffers, but wrong at shared
				// levels like Simba's L2, which must hold every instance's
				// slice of every resident tensor at once. The dominant
				// source of the invalid Simba mappings of Section V-B3.
				if !sharedLevel(w, a, l) {
					bumpFootprints(w, foot, l, d, int64(p), len(a.Levels))
				}
			}
			remaining[d] = ps
		}
	}

	// Reuse objective: place the remaining factors at the lowest temporal
	// level whose *relaxed* capacity still admits them (artifact #3: only
	// the level being assigned is checked; the same factor also enlarges
	// every level above, which the linear form drops).
	for _, d := range w.Order {
		for _, p := range remaining[d] {
			placed := false
			for l := 0; l < top && !placed; l++ {
				if !a.Levels[l].Keeps(dAnyTensor(w, d)) && !levelHoldsIndexed(w, a, l, d) {
					continue
				}
				ok := true
				for _, t := range w.Tensors {
					capT, kept := relaxCap[l][t.Name]
					if !kept || !t.Indexing(d) {
						continue
					}
					if foot[l][t.Name]*int64(p) > capT {
						ok = false
						break
					}
				}
				if ok {
					mp.Levels[l].Temporal[d] = mp.Levels[l].T(d) * p
					bumpFootprints(w, foot, l, d, int64(p), len(a.Levels))
					placed = true
				}
			}
			if !placed {
				mp.Levels[top].Temporal[d] = mp.Levels[top].T(d) * p
			}
		}
	}

	// Permutation objective: CoSA's MIP solves the loop permutation jointly
	// with the factors. Model that by scoring each pruned-trie ordering
	// (plus the reduction-innermost heuristic) on the fixed factor
	// allocation and keeping the best — still one shot in the factor
	// space, a constant handful of permutation candidates.
	orderHeur := append([]tensor.Dim(nil), w.ReductionDims()...)
	for _, d := range w.Order {
		if !redSet[d] {
			orderHeur = append(orderHeur, d)
		}
	}
	candidates := [][]tensor.Dim{orderHeur}
	orderings, _ := order.Enumerate(w)
	for i := range orderings {
		candidates = append(candidates, orderings[i].Complete(w))
	}
	var best *mapping.Mapping
	var bestEDP, bestEnergyPJ, bestCycles float64
	bestValid := false
	evaluated := 0
	// Fast-path evaluator for the permutation scoring; the winner's full
	// Report (including the Invalid diagnosis) is materialized afterwards.
	ev := baselines.SessionFor(m.Sessions, m.Model, w, a).NewEvaluator()
	for _, ord := range candidates {
		cand := mp.Clone()
		for l := 1; l < len(a.Levels); l++ {
			cand.Levels[l].Order = append([]tensor.Dim(nil), ord...)
		}
		edp, energyPJ, cycles, valid := ev.EvaluateEDP(cand)
		evaluated++
		if best == nil || (valid && !bestValid) ||
			(valid == bestValid && edp < bestEDP) {
			best, bestEDP, bestEnergyPJ, bestCycles, bestValid = cand, edp, energyPJ, cycles, valid
		}
	}

	rep := baselines.FinalReport(m.Model, best, bestEDP, bestEnergyPJ, bestCycles, bestValid)
	res := baselines.Result{
		Mapping:   best,
		Report:    rep,
		Valid:     rep.Valid,
		Evaluated: evaluated,
		Elapsed:   time.Since(start),
	}
	if !rep.Valid && rep.Invalid != nil {
		res.InvalidReason = "tile does not fit its designated memory: " + rep.Invalid.Error()
	}
	return res
}

// bumpFootprints multiplies the linearized footprint of every tensor indexed
// by d at levels >= l (the tracker keeps the running per-level product so
// later *lower*-level checks stay consistent; upper levels are tracked but,
// per the linear relaxation, not re-checked).
func bumpFootprints(w *tensor.Workload, foot []map[string]int64, l int, d tensor.Dim, p int64, nLevels int) {
	for _, t := range w.Tensors {
		if !t.Indexing(d) {
			continue
		}
		for j := l; j < nLevels; j++ {
			foot[j][t.Name] *= p
		}
	}
}

// sharedLevel reports whether some buffer at level l is shared by two or
// more of the workload's tensors.
func sharedLevel(w *tensor.Workload, a *arch.Arch, l int) bool {
	al := &a.Levels[l]
	for bi := range al.Buffers {
		n := 0
		for _, t := range w.Tensors {
			if al.Buffers[bi].Holds(t.Name) {
				n++
			}
		}
		if n >= 2 {
			return true
		}
	}
	return false
}

// dAnyTensor returns the name of some tensor indexed by d (for keep checks).
func dAnyTensor(w *tensor.Workload, d tensor.Dim) string {
	for _, t := range w.Tensors {
		if t.Indexing(d) {
			return t.Name
		}
	}
	return ""
}

// levelHoldsIndexed reports whether level l keeps any tensor indexed by d
// (assigning d's factors there can create reuse).
func levelHoldsIndexed(w *tensor.Workload, a *arch.Arch, l int, d tensor.Dim) bool {
	for _, t := range w.Tensors {
		if t.Indexing(d) && a.Levels[l].Keeps(t.Name) {
			return true
		}
	}
	return false
}

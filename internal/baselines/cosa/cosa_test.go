package cosa

import (
	"testing"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/workloads"
)

func TestOneShotAndFast(t *testing.T) {
	w := workloads.ResNet18[2].Inference(16)
	res := New().Map(w, arch.Simba())
	// One factor allocation, a constant handful of permutation variants
	// (the MIP's permutation variables) — no search.
	if res.Evaluated > 20 {
		t.Errorf("CoSA must stay one-shot; evaluated %d", res.Evaluated)
	}
	if res.Elapsed > time.Second {
		t.Errorf("CoSA should be nearly instantaneous, took %v", res.Elapsed)
	}
	if res.Mapping == nil {
		t.Fatal("CoSA always returns a mapping (possibly invalid)")
	}
}

func TestInvalidMappingsOnSimba(t *testing.T) {
	// Section V-B3: most CoSA mappings on the Simba-like machine are
	// invalid because the linear relaxation drops capacity non-linearities.
	invalid := 0
	for _, cs := range workloads.ResNet18 {
		res := New().Map(cs.Inference(16), arch.Simba())
		if !res.Valid {
			invalid++
			if res.InvalidReason == "" {
				t.Errorf("%s: invalid without reason", cs.Name)
			}
		}
	}
	if invalid == 0 {
		t.Error("expected at least some invalid mappings on Simba (the paper reports most)")
	}
	t.Logf("CoSA invalid on %d/%d ResNet-18 layers", invalid, len(workloads.ResNet18))
}

func TestValidOnGenerousArch(t *testing.T) {
	// With a roomy single-level memory the relaxation artifacts cannot
	// overflow anything.
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	res := New().Map(w, arch.Tiny(1<<20))
	if !res.Valid {
		t.Fatalf("expected valid mapping on a huge L1: %s", res.InvalidReason)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageAlwaysComplete(t *testing.T) {
	// Even when invalid (capacity), the mapping must cover the problem —
	// CoSA's invalidity is tile overflow, not missing loops.
	for _, cs := range workloads.ResNet18[:4] {
		w := cs.Inference(16)
		res := New().Map(w, arch.Simba())
		for d, bound := range w.Dims {
			if res.Mapping.Coverage(d) < bound {
				t.Errorf("%s: dim %s coverage %d < %d", cs.Name, d, res.Mapping.Coverage(d), bound)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	w := workloads.ResNet18[1].Inference(16)
	r1 := New().Map(w, arch.Simba())
	r2 := New().Map(w, arch.Simba())
	if r1.Mapping.String() != r2.Mapping.String() {
		t.Error("CoSA must be deterministic")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "CoSA" {
		t.Error("name")
	}
}

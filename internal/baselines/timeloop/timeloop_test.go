package timeloop

import (
	"testing"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/workloads"
)

func quickCfg(seed int64) Config {
	// Generous MaxTime: the wall-clock deadline must never bind in tests,
	// or sample counts (and thus results) would depend on machine load.
	return Config{Name: "TL-test", TO: 500, VC: 50, Threads: 4, MaxTime: 120 * time.Second, Seed: seed}
}

func TestFindsValidMapping(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.TinySpatial(256, 1<<16, 4)
	res := New(quickCfg(1)).Map(w, a)
	if !res.Valid {
		t.Fatalf("expected a valid mapping: %s", res.InvalidReason)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("returned mapping is illegal: %v", err)
	}
	if res.Evaluated <= 0 {
		t.Error("no samples evaluated")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(256)
	r1 := New(quickCfg(42)).Map(w, a)
	r2 := New(quickCfg(42)).Map(w, a)
	if r1.Report.EDP != r2.Report.EDP {
		t.Errorf("same seed must reproduce: %v vs %v", r1.Report.EDP, r2.Report.EDP)
	}
}

func TestSlowBeatsOrMatchesFast(t *testing.T) {
	w := workloads.Conv1D("c", 16, 16, 56, 3)
	a := arch.TinySpatial(512, 1<<16, 16)
	fast := New(Config{Name: "f", TO: 500, VC: 10, Threads: 4, MaxTime: 120 * time.Second, Seed: 7}).Map(w, a)
	slow := New(Config{Name: "s", TO: 2000, VC: 300, Threads: 4, MaxTime: 120 * time.Second, Seed: 7}).Map(w, a)
	if !fast.Valid || !slow.Valid {
		t.Fatal("both configs should find mappings")
	}
	if slow.Evaluated <= fast.Evaluated {
		t.Errorf("slow config should sample more: fast %d, slow %d", fast.Evaluated, slow.Evaluated)
	}
	if slow.Report.EDP > fast.Report.EDP*1.001 {
		t.Errorf("more search must not hurt: fast %.3e, slow %.3e", fast.Report.EDP, slow.Report.EDP)
	}
}

func TestImpossibleArchReportsInvalid(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	a := arch.Tiny(2) // cannot even hold one word of each tensor
	res := New(quickCfg(1)).Map(w, a)
	if res.Valid {
		t.Fatal("no valid mapping exists; result must say so")
	}
	if res.InvalidReason == "" {
		t.Error("missing invalid reason")
	}
}

func TestTableVConfigs(t *testing.T) {
	f, s := Fast(), Slow()
	if f.TO != 20000 || f.VC != 25 || s.TO != 80000 || s.VC != 1500 {
		t.Error("Table V hyper-parameters altered")
	}
	if f.Threads != 8 || s.Threads != 8 {
		t.Error("paper runs 8 threads")
	}
}

func TestNameAndWorksOnSimba(t *testing.T) {
	m := New(quickCfg(3))
	if m.Name() != "TL-test" {
		t.Error("name")
	}
	// Timeloop supports multi-spatial-level architectures (the only
	// baseline besides CoSA that does, per Section V-B3).
	w := workloads.Conv2D("c", 1, 16, 16, 8, 8, 3, 3, 1, 1)
	res := m.Map(w, arch.Simba())
	if !res.Valid {
		t.Fatalf("TL should find some mapping on Simba: %s", res.InvalidReason)
	}
}

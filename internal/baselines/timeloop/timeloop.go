// Package timeloop reimplements the Timeloop mapper's search strategy
// (Parashar et al., ISPASS 2019): undirected random sampling of the full
// mapping space, with per-thread termination controlled by a timeout (TO,
// consecutive invalid samples) and a victory condition (VC, consecutive
// valid samples without improvement). The paper's Table V fast/slow
// hyper-parameter configurations are provided.
//
// Timeloop builds its space from *all* problem dimensions at every temporal
// and spatial level (Table I), applies no pruning, and therefore explores an
// astronomically large space undirected — the cause of the slow
// time-to-solution and occasionally poor mappings the paper reports
// (Sections V-B1 and V-B2). Invalid samples are rejected internally, so the
// tool never *returns* an invalid mapping (Table I, last row).
package timeloop

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/cost"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// Config holds Timeloop's search hyper-parameters (Table V).
type Config struct {
	Name string
	// TO terminates a thread after this many consecutive invalid samples.
	TO int
	// VC terminates a thread after this many consecutive valid samples
	// without improving its best EDP.
	VC int
	// Threads is the number of search threads (the paper uses 8).
	Threads int
	// MaxTime bounds the whole search wall-clock (the paper kills Timeloop
	// after one hour per layer; experiments here scale that down, which
	// only *helps* Timeloop's reported time-to-solution).
	MaxTime time.Duration
	// Seed makes runs reproducible.
	Seed int64
}

// Fast returns the Table V fast/aggressive configuration.
func Fast() Config {
	return Config{Name: "TL-fast", TO: 20000, VC: 25, Threads: 8, MaxTime: 20 * time.Second, Seed: 1}
}

// Slow returns the Table V slow/conservative configuration.
func Slow() Config {
	return Config{Name: "TL-slow", TO: 80000, VC: 1500, Threads: 8, MaxTime: 60 * time.Second, Seed: 1}
}

// Lite returns a deliberately small configuration for use as a degraded-mode
// fallback (registry name "timeloop-random-lite"): a short undirected random
// sweep that finds *some* decent valid mapping in a couple of seconds when the
// primary Sunstone search keeps failing. Not part of the paper's comparison.
func Lite() Config {
	return Config{Name: "TL-lite", TO: 2000, VC: 10, Threads: 2, MaxTime: 2 * time.Second, Seed: 1}
}

// Mapper is the Timeloop-style random-search mapper.
type Mapper struct {
	Cfg   Config
	Model cost.Model
	// Sessions, when non-nil, supplies the fast-path cost session (e.g. a
	// shared Engine's compiled cache) instead of building one per call.
	Sessions baselines.SessionSource
}

// New returns a mapper with the given configuration and the default model.
func New(cfg Config) *Mapper { return &Mapper{Cfg: cfg, Model: cost.Default} }

// UseSessions injects a shared session source (see baselines.SessionFor).
func (m *Mapper) UseSessions(src baselines.SessionSource) { m.Sessions = src }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return m.Cfg.Name }

// Map implements baselines.Mapper.
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	return m.MapContext(context.Background(), w, a)
}

// MapContext implements baselines.Mapper with the anytime contract: every
// search thread polls ctx alongside the tool's own MaxTime budget (every 256
// samples), so a deadline or cancel stops the whole search within one
// polling interval and returns the best mapping sampled so far. A panicking
// cost-model evaluation is contained per sample: the poisoned candidate
// counts as an invalid sample (feeding the TO termination condition, exactly
// like Timeloop's own rejection path) and is reported in Result.Errors.
// The run is recorded as a telemetry span when the context carries a trace
// (see baselines.Instrument).
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(ctx context.Context) baselines.Result {
		return m.mapContext(ctx, w, a)
	})
}

func (m *Mapper) mapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	cfg := m.Cfg
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 20 * time.Second
	}
	deadline := start.Add(cfg.MaxTime)
	budgetHit := false

	// One fast-path session for the whole search; each thread owns a scratch
	// evaluator, so the sampling loop allocates only the candidates.
	sess := baselines.SessionFor(m.Sessions, m.Model, w, a)

	type threadBest struct {
		m         *mapping.Mapping
		edp       float64
		energyPJ  float64
		cycles    float64
		evaluated int
		budgetHit bool
		panics    []error
	}
	// evalSample contains a poisoned evaluation: the panic becomes a
	// per-candidate error and the sample reads as invalid.
	evalSample := func(ev *cost.Evaluator, cand *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool, perr error) {
		defer func() {
			if e := anytime.PanicErrorFrom(recover(), "Timeloop sample evaluation", cand.String); e != nil {
				valid = false
				perr = e
			}
		}()
		edp, energyPJ, cycles, valid = ev.EvaluateEDP(cand)
		return edp, energyPJ, cycles, valid, nil
	}
	results := make([]threadBest, cfg.Threads)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ev := sess.NewEvaluator()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
			bestEDP := math.Inf(1)
			var best *mapping.Mapping
			var bestEnergyPJ, bestCycles float64
			invalidStreak, noImproveStreak, evaluated := 0, 0, 0
			for invalidStreak < cfg.TO && noImproveStreak < cfg.VC {
				if evaluated%256 == 0 {
					if ctx.Err() != nil {
						break
					}
					if time.Now().After(deadline) {
						results[t].budgetHit = true
						break
					}
				}
				cand := randomMapping(w, a, rng)
				edp, energyPJ, cycles, valid, perr := evalSample(ev, cand)
				evaluated++
				if perr != nil {
					if len(results[t].panics) < 8 {
						results[t].panics = append(results[t].panics, perr)
					}
					invalidStreak++
					continue
				}
				if !valid {
					invalidStreak++
					continue
				}
				invalidStreak = 0
				if edp < bestEDP {
					bestEDP = edp
					best = cand
					bestEnergyPJ, bestCycles = energyPJ, cycles
					noImproveStreak = 0
				} else {
					noImproveStreak++
				}
			}
			results[t].m = best
			results[t].edp = bestEDP
			results[t].energyPJ = bestEnergyPJ
			results[t].cycles = bestCycles
			results[t].evaluated = evaluated
		}(t)
	}
	wg.Wait()

	out := baselines.Result{Elapsed: time.Since(start)}
	bestEDP := math.Inf(1)
	var bestEnergyPJ, bestCycles float64
	for _, r := range results {
		out.Evaluated += r.evaluated
		budgetHit = budgetHit || r.budgetHit
		for _, e := range r.panics {
			if len(out.Errors) < 8 {
				out.Errors = append(out.Errors, e)
			}
		}
		if r.m != nil && r.edp < bestEDP {
			bestEDP = r.edp
			bestEnergyPJ, bestCycles = r.energyPJ, r.cycles
			out.Mapping = r.m
		}
	}
	if out.Mapping != nil {
		out.Report = baselines.FinalReport(m.Model, out.Mapping, bestEDP, bestEnergyPJ, bestCycles, true)
	}
	switch {
	case anytime.FromContext(ctx) != anytime.Complete:
		out.Stopped = anytime.FromContext(ctx)
	case budgetHit:
		out.Stopped = anytime.Budget
	}
	if out.Mapping == nil {
		out.Valid = false
		out.InvalidReason = "random search found no valid mapping"
		if out.Stopped != anytime.Complete {
			out.InvalidReason += " before the search stopped (" + out.Stopped.String() + ")"
		}
		return out
	}
	out.Valid = true
	return out
}

// randomMapping samples one point of the unpruned mapping space: every
// dimension's prime factors are scattered uniformly over all temporal levels
// and all spatial slots, and each level gets a uniformly random loop order.
func randomMapping(w *tensor.Workload, a *arch.Arch, rng *rand.Rand) *mapping.Mapping {
	m := mapping.New(w, a)
	nLevels := len(a.Levels)

	// Slots: temporal at each level, spatial at each level with fanout.
	type slot struct {
		level   int
		spatial bool
	}
	var slots []slot
	for l := 0; l < nLevels; l++ {
		slots = append(slots, slot{level: l})
		if a.Levels[l].Fanout > 1 {
			slots = append(slots, slot{level: l, spatial: true})
		}
	}

	// Canonical dimension order: iterating the map would randomize the rng
	// draw sequence and break seed reproducibility.
	for _, d := range w.Order {
		bound := w.Dims[d]
		for _, p := range factor.Primes(bound) {
			s := slots[rng.Intn(len(slots))]
			if s.spatial {
				m.Levels[s.level].Spatial[d] = m.Levels[s.level].S(d) * p
			} else {
				m.Levels[s.level].Temporal[d] = m.Levels[s.level].T(d) * p
			}
		}
		if bound == 1 {
			m.Levels[nLevels-1].Temporal[d] = 1
		}
	}
	for l := 0; l < nLevels; l++ {
		m.Levels[l].Order = randomOrder(w, rng)
	}
	return m
}

func randomOrder(w *tensor.Workload, rng *rand.Rand) []tensor.Dim {
	order := append([]tensor.Dim(nil), w.Order...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

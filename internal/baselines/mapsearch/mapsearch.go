// Package mapsearch provides the search-space helpers shared by the
// directed-search baseline mappers (dMazeRunner, Interstellar): unrestricted
// maximal-tile enumeration, tile application, and mapping completion with a
// chosen loop ordering. Sunstone's own search (internal/core) deliberately
// does not use these — its enumerations are principle-restricted.
package mapsearch

import (
	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/tile"
)

// TilesAt enumerates maximal fitting tiles at level lvl of partial mapping m
// with no ordering-principle restriction (all dimensions may grow), capped
// at maxCandidates largest tiles.
func TilesAt(m *mapping.Mapping, lvl, maxCandidates int) []tile.Candidate {
	scratch := m.Clone()
	fits := func(c tile.Candidate) bool {
		for d := range m.Workload.Dims {
			delete(scratch.Levels[lvl].Temporal, d)
		}
		for d, f := range c {
			scratch.Levels[lvl].Temporal[d] = f
		}
		ext := scratch.Extents(lvl)
		al := &scratch.Arch.Levels[lvl]
		for bi := range al.Buffers {
			buf := &al.Buffers[bi]
			if buf.Bytes == 0 {
				continue
			}
			var usedBits int64
			for _, t := range m.Workload.Tensors {
				if buf.Holds(t.Name) {
					usedBits += int64(t.Footprint(ext)) * int64(m.Arch.Bits(t.Name))
				}
			}
			if usedBits > buf.Bytes*8 {
				return false
			}
		}
		return true
	}
	quota := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d, bound := range m.Workload.Dims {
		quota[d] = ceilDiv(bound, m.Extent(d, lvl))
	}
	cands, _ := tile.Enumerate(tile.Space{Quota: quota, Fits: fits, MaxCandidates: maxCandidates})
	return cands
}

// ApplyTile returns m with the tile's factors set at level lvl.
func ApplyTile(m *mapping.Mapping, lvl int, c tile.Candidate) *mapping.Mapping {
	out := m.Clone()
	for d, f := range c {
		if f > 1 {
			out.Levels[lvl].Temporal[d] = f
		}
	}
	return out
}

// CompleteWith places each dimension's remaining factors at the top level
// and applies ordering o at every level above the innermost.
func CompleteWith(m *mapping.Mapping, o *order.Ordering) *mapping.Mapping {
	c := m.Clone()
	top := len(c.Levels) - 1
	full := o.Complete(c.Workload)
	for l := 1; l <= top; l++ {
		c.Levels[l].Order = full
	}
	for d, bound := range c.Workload.Dims {
		below := c.Extent(d, top-1)
		need := ceilDiv(bound, below)
		if c.Levels[top].T(d) < need {
			c.Levels[top].Temporal[d] = need
		}
	}
	return c
}

// SpatialLevels counts the levels with fanout > 1.
func SpatialLevels(a *arch.Arch) int {
	n := 0
	for i := range a.Levels {
		if a.Levels[i].Fanout > 1 {
			n++
		}
	}
	return n
}

// FirstFanoutLevel returns the lowest level with fanout > 1, or -1.
func FirstFanoutLevel(a *arch.Arch) int {
	for i := range a.Levels {
		if a.Levels[i].Fanout > 1 {
			return i
		}
	}
	return -1
}

// TotalFanout returns the product of all level fanouts.
func TotalFanout(a *arch.Arch) int {
	p := 1
	for i := range a.Levels {
		p *= a.Levels[i].Fanout
	}
	return p
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

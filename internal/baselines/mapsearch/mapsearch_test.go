package mapsearch

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/workloads"
)

func TestTilesAtAllDimsAndCap(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	m := mapping.New(w, arch.Tiny(256))
	tiles := TilesAt(m, 0, 4)
	if len(tiles) == 0 {
		t.Fatal("expected tiles")
	}
	if len(tiles) > 4 {
		t.Errorf("cap not applied: %d tiles", len(tiles))
	}
	// Unrestricted enumeration may grow any dimension.
	for _, c := range tiles {
		applied := ApplyTile(m, 0, c)
		if err := applied.Validate(); err == nil {
			continue // not complete yet; coverage check not expected to pass
		}
	}
}

func TestApplyTileDoesNotMutate(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	m := mapping.New(w, arch.Tiny(256))
	tiles := TilesAt(m, 0, 1)
	if len(tiles) == 0 {
		t.Fatal("no tiles")
	}
	_ = ApplyTile(m, 0, tiles[0])
	if m.Levels[0].T("K") != 1 && len(m.Levels[0].Temporal) > 0 {
		for d, f := range m.Levels[0].Temporal {
			if f > 1 {
				t.Errorf("original mutated: %s=%d", d, f)
			}
		}
	}
}

func TestCompleteWithCoversAndOrders(t *testing.T) {
	w := workloads.Conv1D("c", 8, 8, 28, 3)
	m := mapping.New(w, arch.Tiny(1024))
	orderings, _ := order.Enumerate(w)
	c := CompleteWith(m, &orderings[0])
	if err := c.Validate(); err != nil {
		t.Fatalf("completed mapping invalid: %v", err)
	}
	for l := 1; l < len(c.Levels); l++ {
		if len(c.Levels[l].Order) == 0 {
			t.Errorf("level %d missing order", l)
		}
	}
}

func TestArchHelpers(t *testing.T) {
	if SpatialLevels(arch.Simba()) != 2 {
		t.Error("Simba has two spatial levels")
	}
	if SpatialLevels(arch.Tiny(64)) != 0 {
		t.Error("Tiny has none")
	}
	if FirstFanoutLevel(arch.Conventional()) != 1 {
		t.Error("conventional fanout is at L2 (level 1)")
	}
	if FirstFanoutLevel(arch.Tiny(64)) != -1 {
		t.Error("Tiny should report -1")
	}
	if TotalFanout(arch.Conventional()) != 1024 {
		t.Error("conventional total fanout is 1024")
	}
}

// Package registry is the ordered catalog of the prior-art mappers this
// repository rebuilds for the paper's comparison (Section V). It exists so
// the CLIs and the experiment drivers iterate one list instead of each
// hand-maintaining constructor calls; the per-mapper constructors in the
// root package remain as thin wrappers over the same implementations.
//
// It lives below internal/baselines (not inside it) because the mapper
// implementations import their parent package for the Result/Mapper types —
// a registry in internal/baselines itself would be an import cycle.
package registry

import (
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/cosa"
	"sunstone/internal/baselines/dmaze"
	"sunstone/internal/baselines/fixed"
	"sunstone/internal/baselines/innermost"
	"sunstone/internal/baselines/interstellar"
	"sunstone/internal/baselines/marvel"
	"sunstone/internal/baselines/timeloop"
)

// Entry is one catalog row.
type Entry struct {
	// Name is the stable registry key: lowercase, flag-friendly (what
	// cmd/sunstone -baselines accepts).
	Name string
	// New constructs a fresh mapper in its paper-default configuration.
	// Mappers are cheap to build; callers wanting a non-default budget
	// (e.g. the experiment drivers' scaled Timeloop wall-clocks) construct
	// one and adjust its exported configuration.
	New func() baselines.Mapper
}

// All returns the catalog in canonical comparison order: the search-based
// tools first (Table V fast/slow pairs), then the one-shot analytic tools,
// then the fixed-dataflow reference points. The returned slice is fresh on
// every call; callers may reorder or filter it freely.
func All() []Entry {
	return []Entry{
		{"timeloop-fast", func() baselines.Mapper { return timeloop.New(timeloop.Fast()) }},
		{"timeloop-slow", func() baselines.Mapper { return timeloop.New(timeloop.Slow()) }},
		{"dmaze-fast", func() baselines.Mapper { return dmaze.New(dmaze.Fast()) }},
		{"dmaze-slow", func() baselines.Mapper { return dmaze.New(dmaze.Slow()) }},
		{"interstellar", func() baselines.Mapper { return interstellar.New() }},
		{"cosa", func() baselines.Mapper { return cosa.New() }},
		{"marvel", func() baselines.Mapper { return marvel.New() }},
		{"weight-stationary", func() baselines.Mapper { return fixed.New(fixed.WeightStationary) }},
		{"output-stationary", func() baselines.Mapper { return fixed.New(fixed.OutputStationary) }},
		{"input-stationary", func() baselines.Mapper { return fixed.New(fixed.InputStationary) }},
	}
}

// Fallbacks returns the degraded-mode mappers the resilient scheduling path
// (core.OptimizeResilient) falls back to when the primary search keeps
// failing: a deliberately short Timeloop-style random sweep, then the
// guaranteed-feasible innermost-fit construction. They are not part of the
// paper's comparison set, so All() excludes them — experiment drivers and
// the -baselines CLI iterate the comparison unchanged — but Lookup resolves
// both catalogs.
func Fallbacks() []Entry {
	return []Entry{
		{"timeloop-random-lite", func() baselines.Mapper { return timeloop.New(timeloop.Lite()) }},
		{"innermost-fit", func() baselines.Mapper { return innermost.New() }},
	}
}

// Lookup finds an entry by registry name in the comparison catalog (All) or
// the degraded-mode fallback catalog (Fallbacks).
func Lookup(name string) (Entry, bool) {
	for _, e := range append(All(), Fallbacks()...) {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names returns every registry name in catalog order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

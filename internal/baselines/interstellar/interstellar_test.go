package interstellar

import (
	"strings"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/workloads"
)

func TestFindsValidMapping(t *testing.T) {
	w := workloads.ResNet18[2].Inference(16)
	res := New().Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatalf("expected valid mapping: %s", res.InvalidReason)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("returned mapping illegal: %v", err)
	}
}

func TestPrefersCKUnrolling(t *testing.T) {
	// With C=64 and K=128 covering the 1024-PE grid, only C and K may be
	// unrolled (no fallback needed).
	w := workloads.Conv2D("c", 16, 128, 64, 28, 28, 3, 3, 1, 1)
	res := New().Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatalf("expected valid mapping: %s", res.InvalidReason)
	}
	lm := res.Mapping.Levels[1] // the spatial (L2) level
	for d, f := range lm.Spatial {
		if f > 1 && d != "C" && d != "K" {
			t.Errorf("preset violated: %s unrolled by %d", d, f)
		}
	}
}

func TestFallbackWhenCKCannotFill(t *testing.T) {
	// C=3, K=8: CK covers at most 24 of 1024 PEs; the fallback must engage
	// and other dims appear in the unrolling.
	w := workloads.Conv2D("stem", 16, 8, 3, 56, 56, 3, 3, 1, 1)
	res := New().Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatalf("fallback should produce a mapping: %s", res.InvalidReason)
	}
	other := false
	for d, f := range res.Mapping.Levels[1].Spatial {
		if f > 1 && d != "C" && d != "K" {
			other = true
		}
	}
	if !other {
		t.Error("fallback did not unroll non-CK dimensions despite CK underutilization")
	}
}

func TestRejectsWorkloadWithoutCK(t *testing.T) {
	w := workloads.MTTKRP("m", 64, 32, 32, 32)
	res := New().Map(w, arch.Conventional())
	if res.Valid {
		t.Fatal("MTTKRP has no C/K dims; the preset cannot apply")
	}
	if !strings.Contains(res.InvalidReason, "preset") {
		t.Errorf("reason = %q", res.InvalidReason)
	}
}

func TestRejectsMultiSpatialArch(t *testing.T) {
	w := workloads.ResNet18[2].Inference(16)
	res := New().Map(w, arch.Simba())
	if res.Valid {
		t.Fatal("Interstellar does not support multi-spatial-level architectures")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "INTER" {
		t.Error("name")
	}
}

// Package interstellar reimplements the Interstellar mapper's strategy (Yang
// et al., ASPLOS 2020): a directed search whose defining heuristic presets
// the spatial unrolling to the input/output channel dimensions (C and K, the
// only two spatial dimensions it considers — Table I), falling back to other
// dimensions only when CK cannot fully utilize the PE grid (the paper's
// methodology, Section V-A).
//
// The reproduction keeps the reported failure modes: the restrictive
// unrolling sometimes excludes better mappings (poor EDP on several layers —
// e.g. solutions that reuse ofmap both temporally and spatially, against
// Sunstone's Unrolling Principle), and workloads whose C/K quotas cannot use
// the preset unrolling at all are reported invalid.
package interstellar

import (
	"context"
	"math"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/mapsearch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/tile"
	"sunstone/internal/unroll"
)

// Mapper is the Interstellar-style mapper.
type Mapper struct {
	Model cost.Model
	// MinPEUtil is the high-throughput threshold below which the CK preset
	// is considered unable to utilize the grid and the fallback engages.
	MinPEUtil float64
	// Sessions, when non-nil, supplies the fast-path cost session (e.g. a
	// shared Engine's compiled cache) instead of building one per call.
	Sessions baselines.SessionSource
}

// New returns a mapper with the default model and the paper's methodology.
func New() *Mapper { return &Mapper{Model: cost.Default, MinPEUtil: 0.5} }

// UseSessions injects a shared session source (see baselines.SessionFor).
func (m *Mapper) UseSessions(src baselines.SessionSource) { m.Sessions = src }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return "INTER" }

// MapContext implements baselines.Mapper: this search is one-shot and
// sub-second, so it only short-circuits an already-done context and
// otherwise runs to completion with panic containment (see
// baselines.RunContext). The run is recorded as a telemetry span when the
// context carries a trace (see baselines.Instrument).
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(ctx context.Context) baselines.Result {
		return baselines.RunContext(ctx, m.Name(), func() baselines.Result { return m.Map(w, a) })
	})
}

// Map implements baselines.Mapper.
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	res := baselines.Result{}
	if mapsearch.SpatialLevels(a) > 1 {
		res.InvalidReason = "architecture with multiple spatial levels not supported"
		res.Elapsed = time.Since(start)
		return res
	}
	spatialLvl := mapsearch.FirstFanoutLevel(a)

	// Preset unrolling: C and K only.
	preset := []tensor.Dim{}
	for _, d := range []tensor.Dim{"C", "K"} {
		if _, ok := w.Dims[d]; ok {
			preset = append(preset, d)
		}
	}
	if len(preset) < 2 {
		// Interstellar is DNN-specific: its space is built around the
		// input/output channel dimensions.
		res.InvalidReason = "no mapping can use the preset CK unrolling (not a C/K-channel workload)"
		res.Elapsed = time.Since(start)
		return res
	}

	unrolls := []unroll.Candidate{{}}
	if spatialLvl >= 0 {
		fan := a.Levels[spatialLvl].Fanout
		unrolls, _ = unroll.Enumerate(unroll.Space{
			Allowed:               preset,
			ReductionDims:         w.ReductionDims(),
			Quota:                 w.FullExtents(),
			Fanout:                fan,
			MinUtilization:        m.MinPEUtil,
			AllowSpatialReduction: a.Levels[spatialLvl].AllowSpatialReduction,
			MaxCandidates:         16,
		})
		if bestUtil(unrolls, fan) < m.MinPEUtil {
			// Fallback per the paper's methodology: allow other dims to
			// top up the CK preset.
			unrolls, _ = unroll.Enumerate(unroll.Space{
				ReductionDims:         w.ReductionDims(),
				Quota:                 w.FullExtents(),
				Fanout:                fan,
				MinUtilization:        m.MinPEUtil,
				AllowSpatialReduction: a.Levels[spatialLvl].AllowSpatialReduction,
				MaxCandidates:         16,
			})
		}
		if len(unrolls) == 0 {
			res.InvalidReason = "no mapping can use the preset unrolling"
			res.Elapsed = time.Since(start)
			return res
		}
	}

	orderings, _ := order.Enumerate(w)
	bestEDP := math.Inf(1)
	var bestEnergyPJ, bestCycles float64
	evaluated := 0
	base := mapping.New(w, a)
	// Fast-path evaluator: candidates only need the scalar objective.
	ev := baselines.SessionFor(m.Sessions, m.Model, w, a).NewEvaluator()
	for _, u := range unrolls {
		mu := base.Clone()
		for d, f := range u {
			if f > 1 {
				mu.Levels[spatialLvl].Spatial[d] = f
			}
		}
		for _, t1 := range mapsearch.TilesAt(mu, 0, 24) {
			m1 := mapsearch.ApplyTile(mu, 0, t1)
			tiles2 := []tile.Candidate{{}}
			if len(a.Levels) > 2 {
				tiles2 = mapsearch.TilesAt(m1, 1, 24)
			}
			for _, t2 := range tiles2 {
				m2 := mapsearch.ApplyTile(m1, 1, t2)
				for oi := range orderings {
					cand := mapsearch.CompleteWith(m2, &orderings[oi])
					edp, energyPJ, cycles, valid := ev.EvaluateEDP(cand)
					evaluated++
					if valid && edp < bestEDP {
						bestEDP = edp
						bestEnergyPJ, bestCycles = energyPJ, cycles
						res.Mapping = cand
					}
				}
			}
		}
	}
	res.Evaluated = evaluated
	res.Elapsed = time.Since(start)
	if res.Mapping == nil {
		res.InvalidReason = "no valid mapping under the preset unrolling"
		return res
	}
	res.Report = baselines.FinalReport(m.Model, res.Mapping, bestEDP, bestEnergyPJ, bestCycles, true)
	res.Valid = true
	return res
}

func bestUtil(cands []unroll.Candidate, fanout int) float64 {
	best := 0.0
	for _, c := range cands {
		p := 1
		for _, f := range c {
			p *= f
		}
		if u := float64(p) / float64(fanout); u > best {
			best = u
		}
	}
	return best
}

// Package innermost implements the guaranteed-feasible fallback mapper at
// the end of the resilient scheduling chain (registry name "innermost-fit").
//
// It is not a competitor from the paper's comparison and it does not search:
// it starts from the trivially legal completion — every loop factor at the
// unbounded top level — and greedily moves factors down into the innermost
// levels while the mapping keeps validating, preferring the smallest prime
// factor of each dimension's remaining quota. The starting point is the
// minimum-footprint mapping of the problem (every tile extent below the top
// is 1), so for any workload/architecture pair that admits *some* legal
// mapping at all, this mapper returns a legal mapping; the greedy growth only
// ever replaces it with another validated mapping.
//
// That guarantee is what the retry/degradation path (core.OptimizeResilient)
// leans on: when the primary search and the random fallback both keep
// failing — injected chaos faults, poisoned cost models, expired deadlines —
// innermost-fit still produces an audit-passing mapping. It therefore
// deliberately ignores context cancellation (construction is pure arithmetic
// and takes microseconds) and contains every cost-model panic: scoring may
// degrade to an unscored report, but a mapping is always returned.
package innermost

import (
	"context"
	"math"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// maxMoves bounds the greedy factor moves as a safety valve; each successful
// move strictly shrinks some dimension's remaining quota, so real workloads
// terminate orders of magnitude earlier.
const maxMoves = 4096

// Mapper is the guaranteed-feasible innermost-fit mapper.
type Mapper struct {
	Model cost.Model
	// Sessions, when non-nil, supplies the fast-path cost session (e.g. a
	// shared Engine's compiled cache) instead of building one per call.
	Sessions baselines.SessionSource
}

// New returns the mapper with the default cost model.
func New() *Mapper { return &Mapper{Model: cost.Default} }

// UseSessions injects a shared session source (see baselines.SessionFor).
func (m *Mapper) UseSessions(src baselines.SessionSource) { m.Sessions = src }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return "innermost-fit" }

// Map implements baselines.Mapper.
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	return m.MapContext(context.Background(), w, a)
}

// MapContext implements baselines.Mapper. Unlike every other mapper it does
// not honor cancellation: its whole point is to return a legal mapping
// unconditionally, and construction is non-iterative arithmetic, so there is
// no long-running work a deadline could usefully cut short.
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(context.Context) baselines.Result {
		return m.run(w, a)
	})
}

func (m *Mapper) run(w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	best := trivial(w, a)
	var errs []error
	if grown, err := safeGrow(best); err == nil {
		best = grown
	} else {
		errs = append(errs, err) // keep the trivial mapping; growth is optional
	}
	res := baselines.Result{Mapping: best, Errors: errs, Evaluated: 1}
	res.Report, res.Valid = m.score(w, a, best, &res)
	if !res.Valid && res.InvalidReason == "" {
		res.InvalidReason = "cost model rejected the mapping"
	}
	res.Elapsed = time.Since(start)
	return res
}

// score evaluates the chosen mapping with panic containment. A poisoned (or
// chaos-injected) cost model degrades the result to unscored-invalid — the
// mapping itself is still returned for the caller's own audit to judge.
func (m *Mapper) score(w *tensor.Workload, a *arch.Arch, best *mapping.Mapping, res *baselines.Result) (rep cost.Report, valid bool) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "innermost-fit scoring", best.String); e != nil {
			res.Errors = append(res.Errors, e)
			res.InvalidReason = "scoring panicked: " + e.Op
			inf := math.Inf(1)
			rep, valid = cost.Report{EDP: inf, EnergyPJ: inf, Cycles: inf, Invalid: e}, false
		}
	}()
	sess := baselines.SessionFor(m.Sessions, m.Model, w, a)
	ev := sess.NewEvaluator()
	edp, energyPJ, cycles, ok := ev.EvaluateEDP(best)
	rep = baselines.FinalReport(m.Model, best, edp, energyPJ, cycles, ok)
	return rep, rep.Valid
}

// trivial returns the minimum-footprint legal completion: every dimension's
// full bound as a temporal loop at the unbounded top level, extent 1
// everywhere below.
func trivial(w *tensor.Workload, a *arch.Arch) *mapping.Mapping {
	m := mapping.New(w, a)
	top := len(m.Levels) - 1
	for d, bound := range w.Dims {
		if bound > 1 {
			m.Levels[top].Temporal[d] = bound
		}
	}
	return m
}

// safeGrow runs the greedy growth with panic containment: any panic leaves
// the caller's trivial mapping in force.
func safeGrow(m *mapping.Mapping) (out *mapping.Mapping, err error) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "innermost-fit growth", m.String); e != nil {
			out, err = nil, e
		}
	}()
	return grow(m), nil
}

// grow moves loop factors from the top level down into the innermost levels,
// one smallest-prime factor at a time, keeping every intermediate state fully
// validated. Dimensions are visited in canonical workload order for
// determinism.
func grow(m *mapping.Mapping) *mapping.Mapping {
	top := len(m.Levels) - 1
	moves := 0
	for lvl := 0; lvl < top; lvl++ {
		for _, d := range m.Workload.Order {
			for moves < maxMoves {
				need := remainingNeed(m, d)
				if need <= 1 {
					break
				}
				trial := m.Clone()
				trial.Levels[lvl].Temporal[d] = trial.Levels[lvl].T(d) * smallestPrimeFactor(need)
				retop(trial)
				if trial.Validate() != nil {
					break
				}
				m = trial
				moves++
			}
		}
	}
	return m
}

// remainingNeed returns the loop factor of d still parked at the top level.
func remainingNeed(m *mapping.Mapping, d tensor.Dim) int {
	top := len(m.Levels) - 1
	below := m.Extent(d, top-1)
	return ceilDiv(m.Workload.Dims[d], below)
}

// retop recomputes the top level's temporal factors as exactly the per-
// dimension remainders not covered below it.
func retop(m *mapping.Mapping) {
	top := len(m.Levels) - 1
	for d, bound := range m.Workload.Dims {
		need := ceilDiv(bound, m.Extent(d, top-1))
		if need > 1 {
			m.Levels[top].Temporal[d] = need
		} else {
			delete(m.Levels[top].Temporal, d)
		}
	}
}

func smallestPrimeFactor(n int) int {
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			return p
		}
	}
	return n
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

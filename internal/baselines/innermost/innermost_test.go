package innermost

import (
	"context"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/faults"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

func conv(t *testing.T, name string) *tensor.Workload {
	t.Helper()
	for _, s := range workloads.ResNet18 {
		if s.Name == name {
			return s.Inference(1)
		}
	}
	t.Fatalf("no ResNet-18 shape %q", name)
	return nil
}

// TestAlwaysValid: across architectures and shapes, the mapper must return a
// mapping that passes full structural validation — the guarantee the
// resilient fallback chain is built on.
func TestAlwaysValid(t *testing.T) {
	m := New()
	archs := map[string]*arch.Arch{
		"tiny":         arch.Tiny(256),
		"tiny-spatial": arch.TinySpatial(256, 4096, 4),
		"simba":        arch.Simba(),
		"conventional": arch.Conventional(),
	}
	for an, a := range archs {
		for _, ln := range []string{"conv1", "conv2_x", "conv5_x"} {
			w := conv(t, ln)
			res := m.Map(w, a)
			if res.Mapping == nil {
				t.Fatalf("%s/%s: no mapping", an, ln)
			}
			if err := res.Mapping.Validate(); err != nil {
				t.Errorf("%s/%s: invalid mapping: %v", an, ln, err)
			}
			if !res.Valid {
				t.Errorf("%s/%s: scored invalid: %s", an, ln, res.InvalidReason)
			}
		}
	}
}

// TestGrowthBeatsTrivial: the greedy factor descent must improve on the
// everything-at-top starting point (whose EDP is dominated by streaming all
// tensors from the top level every iteration).
func TestGrowthBeatsTrivial(t *testing.T) {
	w := conv(t, "conv2_x")
	a := arch.Tiny(256)
	grown := New().Map(w, a)
	if grown.Mapping == nil || !grown.Valid {
		t.Fatal("mapper failed on a clean stack")
	}
	triv := trivial(w, a)
	if err := triv.Validate(); err != nil {
		t.Fatalf("trivial completion invalid: %v", err)
	}
	sess := New().Model.NewSession(w, a)
	_, _, _, ok := sess.NewEvaluator().EvaluateEDP(triv)
	if !ok {
		t.Fatal("trivial completion must evaluate valid")
	}
	tedp, _, _, _ := sess.NewEvaluator().EvaluateEDP(triv)
	if grown.Report.EDP >= tedp {
		t.Errorf("growth did not improve: grown EDP %g >= trivial %g", grown.Report.EDP, tedp)
	}
}

// TestIgnoresCancellationAndDeadFaults: with a canceled context AND a 100%
// evaluation panic the mapper still returns a structurally valid mapping —
// degraded to unscored, never absent.
func TestIgnoresCancellationAndDeadFaults(t *testing.T) {
	inj, err := faults.NewInjector(1,
		faults.Rule{Site: faults.SiteEvaluate, Kind: faults.Panic, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(inj)
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New().MapContext(ctx, conv(t, "conv1"), arch.Tiny(256))
	if res.Mapping == nil {
		t.Fatal("guaranteed mapper returned no mapping")
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("guaranteed mapping invalid: %v", err)
	}
	if res.Valid {
		t.Error("scoring with a dead cost model cannot be Valid")
	}
	if len(res.Errors) == 0 {
		t.Error("the contained scoring panic should be reported")
	}
}

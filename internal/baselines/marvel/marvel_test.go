package marvel

import (
	"strings"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/workloads"
)

func TestFindsValidMapping(t *testing.T) {
	w := workloads.ResNet18[2].Inference(4)
	res := New().Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatalf("expected valid mapping: %s", res.InvalidReason)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("returned mapping illegal: %v", err)
	}
	if res.Evaluated <= 0 {
		t.Error("no candidates examined")
	}
}

func TestDecouplingCostsQuality(t *testing.T) {
	// The decoupled search must be in Sunstone's ballpark but is allowed
	// (and expected, on some layers) to lose: committing to DRAM bounds
	// before the on-chip step is a structural handicap.
	w := workloads.ResNet18[1].Inference(4)
	a := arch.Conventional()
	mv := New().Map(w, a)
	if !mv.Valid {
		t.Fatalf("marvel invalid: %s", mv.InvalidReason)
	}
	sun, err := core.Optimize(w, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := mv.Report.EDP / sun.Report.EDP
	if ratio < 0.95 {
		t.Errorf("Marvel (%.3e) materially beats Sunstone (%.3e)", mv.Report.EDP, sun.Report.EDP)
	}
	if ratio > 50 {
		t.Errorf("Marvel EDP %.1fx Sunstone — decoupling should not be catastrophic", ratio)
	}
	t.Logf("Marvel/Sunstone EDP = %.2fx (%d candidates)", ratio, mv.Evaluated)
}

func TestRejectsMultiSpatial(t *testing.T) {
	w := workloads.ResNet18[2].Inference(4)
	res := New().Map(w, arch.Simba())
	if res.Valid || !strings.Contains(res.InvalidReason, "spatial levels") {
		t.Errorf("Marvel should reject Simba: %+v", res.InvalidReason)
	}
}

func TestWorksOnNonConv(t *testing.T) {
	w := workloads.MTTKRP("m", 64, 32, 32, 16)
	res := New().Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatalf("Marvel should handle MTTKRP-shaped workloads: %s", res.InvalidReason)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "Marvel" {
		t.Error("name")
	}
}

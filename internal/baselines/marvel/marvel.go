// Package marvel reimplements the Marvel mapper's strategy (Chatarasi et
// al., 2020): a *decoupled* two-step search that first chooses the off-chip
// (DRAM-level) tiling to minimize DRAM traffic assuming ideal on-chip reuse,
// and only then optimizes the on-chip mapping under a high-buffer-
// utilization pruning — the "decoupled off-chip and on-chip, high buffer
// utilization" row of Table I.
//
// Marvel is not open source, so the paper could not compare mapping quality
// against it (Table I: "not open source"); this reimplementation is built
// from the strategy described in the paper's Table I and related-work
// discussion, and lets the comparison be run anyway. The decoupling is the
// interesting failure mode: the off-chip step commits to DRAM loop bounds
// before knowing what the on-chip levels can actually hold, so its choice
// can be suboptimal for the coupled problem.
package marvel

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/mapsearch"
	"sunstone/internal/cost"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/unroll"
)

// Mapper is the Marvel-style decoupled mapper.
type Mapper struct {
	Model cost.Model
	// MinUtil is the on-chip high-buffer-utilization threshold.
	MinUtil float64
	// OffChipCandidates bounds the DRAM tilings carried into step two.
	OffChipCandidates int
	// Sessions, when non-nil, supplies the fast-path cost session (e.g. a
	// shared Engine's compiled cache) instead of building one per call.
	Sessions baselines.SessionSource
}

// New returns a mapper with the published strategy's defaults.
func New() *Mapper {
	return &Mapper{Model: cost.Default, MinUtil: 0.5, OffChipCandidates: 8}
}

// UseSessions injects a shared session source (see baselines.SessionFor).
func (m *Mapper) UseSessions(src baselines.SessionSource) { m.Sessions = src }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return "Marvel" }

// MapContext implements baselines.Mapper: this search is one-shot and
// sub-second, so it only short-circuits an already-done context and
// otherwise runs to completion with panic containment (see
// baselines.RunContext). The run is recorded as a telemetry span when the
// context carries a trace (see baselines.Instrument).
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(ctx context.Context) baselines.Result {
		return baselines.RunContext(ctx, m.Name(), func() baselines.Result { return m.Map(w, a) })
	})
}

// Map implements baselines.Mapper.
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	res := baselines.Result{}
	if mapsearch.SpatialLevels(a) > 1 {
		res.InvalidReason = "architecture with multiple spatial levels not supported"
		res.Elapsed = time.Since(start)
		return res
	}
	top := len(a.Levels) - 1
	evaluated := 0

	// Step 1 — off-chip: choose DRAM loop bounds minimizing DRAM traffic
	// under the ideal-reuse assumption (each tensor crosses the DRAM
	// boundary once per pass over its indexing loops; on-chip reuse is
	// assumed perfect, i.e. the on-chip tile is whatever remains).
	type offChip struct {
		factors map[tensor.Dim]int
		traffic float64
	}
	// A bounded best-K list keeps the cross-product enumeration cheap.
	var cands []offChip
	dims := w.Order
	ladders := make([][]int, len(dims))
	for i, d := range dims {
		ladders[i] = factor.Ladder(w.Dims[d], 4)
	}
	insert := func(fs map[tensor.Dim]int, traffic float64) {
		cp := make(map[tensor.Dim]int, len(fs))
		for d, f := range fs {
			cp[d] = f
		}
		cands = append(cands, offChip{factors: cp, traffic: traffic})
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].traffic != cands[j].traffic {
				return cands[i].traffic < cands[j].traffic
			}
			return factorKey(cands[i].factors) < factorKey(cands[j].factors)
		})
		if len(cands) > m.OffChipCandidates {
			cands = cands[:m.OffChipCandidates]
		}
	}
	cur := map[tensor.Dim]int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(dims) {
			evaluated++
			// Remaining on-chip tile must plausibly fit the total on-chip
			// capacity (the decoupling's only coupling).
			if !onChipPlausible(w, a, cur) {
				return
			}
			traffic := dramTraffic(w, cur)
			if len(cands) < m.OffChipCandidates || traffic < cands[len(cands)-1].traffic {
				insert(cur, traffic)
			}
			return
		}
		for _, f := range ladders[i] {
			cur[dims[i]] = f
			rec(i + 1)
		}
	}
	rec(0)
	if len(cands) == 0 {
		res.InvalidReason = "no off-chip tiling leaves a plausible on-chip tile"
		res.Elapsed = time.Since(start)
		return res
	}

	// Step 2 — on-chip: for each retained off-chip tiling, unroll the
	// spatial level and tile the on-chip memories with high-utilization
	// pruning; orderings from the trie.
	orderings, _ := order.Enumerate(w)
	spatialLvl := mapsearch.FirstFanoutLevel(a)
	bestEDP := math.Inf(1)
	var bestEnergyPJ, bestCycles float64
	// Fast-path evaluator: the on-chip enumeration only needs the scalar
	// objective; the winner's full Report is materialized at the end.
	ev := baselines.SessionFor(m.Sessions, m.Model, w, a).NewEvaluator()
	for _, oc := range cands {
		base := mapping.New(w, a)
		for d, f := range oc.factors {
			if f > 1 {
				base.Levels[top].Temporal[d] = f
			}
		}
		spatials := []*mapping.Mapping{base}
		if spatialLvl >= 0 {
			spatials = nil
			quota := make(map[tensor.Dim]int, len(w.Dims))
			for d, bound := range w.Dims {
				quota[d] = ceilDiv(bound, base.Levels[top].T(d))
			}
			us, _ := unroll.Enumerate(unroll.Space{
				ReductionDims:         w.ReductionDims(),
				Quota:                 quota,
				Fanout:                a.Levels[spatialLvl].Fanout,
				MinUtilization:        m.MinUtil,
				AllowSpatialReduction: a.Levels[spatialLvl].AllowSpatialReduction,
				MaxCandidates:         8,
			})
			for _, u := range us {
				mu := base.Clone()
				for d, f := range u {
					if f > 1 {
						mu.Levels[spatialLvl].Spatial[d] = f
					}
				}
				spatials = append(spatials, mu)
			}
		}
		for _, mu := range spatials {
			for _, t1 := range mapsearch.TilesAt(mu, 0, 12) {
				m1 := mapsearch.ApplyTile(mu, 0, t1)
				if m1.Utilization(0, 0) < m.MinUtil && a.Levels[0].Buffers[0].Bytes > 0 {
					evaluated++
					continue
				}
				for oi := range orderings {
					cand := mapsearch.CompleteWith(m1, &orderings[oi])
					edp, energyPJ, cycles, valid := ev.EvaluateEDP(cand)
					evaluated++
					if valid && edp < bestEDP {
						bestEDP = edp
						bestEnergyPJ, bestCycles = energyPJ, cycles
						res.Mapping = cand
					}
				}
			}
		}
	}
	res.Evaluated = evaluated
	res.Elapsed = time.Since(start)
	if res.Mapping == nil {
		res.InvalidReason = "no on-chip mapping meets the utilization threshold"
		return res
	}
	res.Report = baselines.FinalReport(m.Model, res.Mapping, bestEDP, bestEnergyPJ, bestCycles, true)
	res.Valid = true
	return res
}

// dramTraffic estimates words crossing the DRAM boundary for the given DRAM
// loop bounds under ideal on-chip reuse: each tensor's traffic is its full
// size times the product of the DRAM bounds of its non-indexing dims (the
// passes that cannot reuse it without on-chip help... idealized to 1) —
// i.e., simply passes(t) x remaining tile, the off-chip analogue of Eq. (4).
func dramTraffic(w *tensor.Workload, dram map[tensor.Dim]int) float64 {
	total := 0.0
	for _, t := range w.Tensors {
		tile := 1.0
		ext := map[tensor.Dim]int{}
		for d, bound := range w.Dims {
			f := dram[d]
			if f < 1 {
				f = 1
			}
			ext[d] = ceilDiv(bound, f)
		}
		tile = float64(t.Footprint(ext))
		passes := 1.0
		for d, f := range dram {
			if f > 1 && t.Indexing(d) {
				passes *= float64(f)
			}
		}
		total += passes * tile
	}
	return total
}

// onChipPlausible checks that the post-DRAM remainder fits the summed
// on-chip capacity (in the workload's narrowest word width) — the minimal
// coupling the decoupled formulation keeps.
func onChipPlausible(w *tensor.Workload, a *arch.Arch, dram map[tensor.Dim]int) bool {
	ext := map[tensor.Dim]int{}
	for d, bound := range w.Dims {
		f := dram[d]
		if f < 1 {
			f = 1
		}
		ext[d] = ceilDiv(bound, f)
	}
	var needBits, capBits int64
	for _, t := range w.Tensors {
		needBits += int64(t.Footprint(ext)) * int64(a.Bits(t.Name))
	}
	for l := 0; l < len(a.Levels)-1; l++ {
		for bi := range a.Levels[l].Buffers {
			capBits += a.Levels[l].Buffers[bi].Bytes * 8
		}
	}
	return needBits <= capBits
}

func factorKey(fs map[tensor.Dim]int) string {
	keys := make([]string, 0, len(fs))
	for d, f := range fs {
		if f > 1 {
			keys = append(keys, fmt.Sprintf("%s:%d", d, f))
		}
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ","
	}
	return out
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

package dmaze

import (
	"strings"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/workloads"
)

func TestFindsValidMappingOnConventional(t *testing.T) {
	w := workloads.ResNet18[2].Inference(16) // conv3_1, symmetric
	res := New(Fast()).Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatalf("expected valid mapping: %s", res.InvalidReason)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("returned mapping illegal: %v", err)
	}
	// Fast config enforces >= 80% L1 utilization.
	if u := res.Mapping.Utilization(0, 0); u < 0.8 {
		t.Errorf("L1 utilization %.2f below the configured threshold", u)
	}
}

func TestRejectsAsymmetricConvolution(t *testing.T) {
	w := workloads.InceptionV3[6].Inference(16) // 1x7_deep
	res := New(Fast()).Map(w, arch.Conventional())
	if res.Valid {
		t.Fatal("asymmetric convolution must be rejected")
	}
	if !strings.Contains(res.InvalidReason, "asymmetric") {
		t.Errorf("reason = %q", res.InvalidReason)
	}
}

func TestRejectsMultiSpatialArch(t *testing.T) {
	w := workloads.ResNet18[2].Inference(16)
	res := New(Fast()).Map(w, arch.Simba())
	if res.Valid {
		t.Fatal("Simba-like architectures are not supported by dMazeRunner")
	}
	if !strings.Contains(res.InvalidReason, "spatial levels") {
		t.Errorf("reason = %q", res.InvalidReason)
	}
}

func TestUtilizationThresholdFailure(t *testing.T) {
	// A tiny layer whose entire footprint is far below 80% of L1: no tile
	// can meet the threshold (the Fig. 7 failure on light early layers).
	w := workloads.Conv2D("tiny", 1, 2, 2, 2, 2, 1, 1, 1, 1)
	res := New(Fast()).Map(w, arch.Conventional())
	if res.Valid {
		t.Fatal("threshold should be unsatisfiable on a tiny layer")
	}
	if !strings.Contains(res.InvalidReason, "utilization") {
		t.Errorf("reason = %q", res.InvalidReason)
	}
}

func TestSlowConfigMoreForgiving(t *testing.T) {
	f, s := Fast(), Slow()
	if s.L1Util >= f.L1Util || s.L2Util >= f.L2Util {
		t.Error("slow config must have lower thresholds (Table V)")
	}
	if f.AllowSpatialReduction || !s.AllowSpatialReduction {
		t.Error("Table V: fast forbids spatial reduction, slow allows it")
	}
}

func TestName(t *testing.T) {
	if New(Fast()).Name() != "dMaze-fast" || New(Slow()).Name() != "dMaze-slow" {
		t.Error("names")
	}
}

// Package dmaze reimplements the dMazeRunner mapper's search strategy (Dave
// et al., TECS 2019): a directed search over perfectly-nested convolution
// dataflows that prunes the space with user-specified *minimum utilization
// thresholds* for the on-chip memories and the PE array (Table V gives the
// paper's fast and slow threshold sets).
//
// The reproduction keeps dMazeRunner's two failure modes reported in Fig. 7:
//
//   - its minimum-utilization conditions do not generalize: on light early
//     layers no tiling reaches the required buffer utilization and the tool
//     returns *no valid mapping*;
//   - it assumes convolutions are symmetric (R == S) and rejects the
//     asymmetric 1x7/3x1 Inception layers outright.
package dmaze

import (
	"context"
	"math"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/mapsearch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/unroll"
)

// Config holds the utilization thresholds of Table V.
type Config struct {
	Name string
	// L1Util / L2Util are the minimum fractions of the innermost / second
	// memory level a tile must occupy.
	L1Util, L2Util float64
	// PEUtil is the minimum fraction of the spatial fanout a mapping must
	// use.
	PEUtil float64
	// AllowSpatialReduction: the fast config forbids unrolling reduction
	// dimensions; the slow config allows it.
	AllowSpatialReduction bool
}

// Fast returns the Table V fast/aggressive configuration (the repository
// default per the paper).
func Fast() Config {
	return Config{Name: "dMaze-fast", L1Util: 0.8, L2Util: 0.5, PEUtil: 0.8, AllowSpatialReduction: false}
}

// Slow returns the Table V slow/conservative configuration.
func Slow() Config {
	return Config{Name: "dMaze-slow", L1Util: 0.6, L2Util: 0.4, PEUtil: 0.8, AllowSpatialReduction: true}
}

// Mapper is the dMazeRunner-style directed-search mapper.
type Mapper struct {
	Cfg   Config
	Model cost.Model
	// Sessions, when non-nil, supplies the fast-path cost session (e.g. a
	// shared Engine's compiled cache) instead of building one per call.
	Sessions baselines.SessionSource
}

// New returns a mapper with the given configuration and the default model.
func New(cfg Config) *Mapper { return &Mapper{Cfg: cfg, Model: cost.Default} }

// UseSessions injects a shared session source (see baselines.SessionFor).
func (m *Mapper) UseSessions(src baselines.SessionSource) { m.Sessions = src }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return m.Cfg.Name }

// Map implements baselines.Mapper.
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	return m.MapContext(context.Background(), w, a)
}

// MapContext implements baselines.Mapper with the anytime contract: the
// directed enumeration polls ctx between tiling candidates and, on a
// deadline or cancel, returns the best thresholded mapping found so far
// with Result.Stopped set. The run is recorded as a telemetry span when the
// context carries a trace (see baselines.Instrument).
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(ctx context.Context) baselines.Result {
		return m.mapContext(ctx, w, a)
	})
}

func (m *Mapper) mapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	res := baselines.Result{}
	poll := &anytime.Poller{Ctx: ctx, Every: 16}

	// dMazeRunner targets conventional accelerators with one spatial level.
	if mapsearch.SpatialLevels(a) > 1 {
		res.InvalidReason = "architecture with multiple spatial levels not supported"
		res.Elapsed = time.Since(start)
		return res
	}
	// Symmetric-convolution assumption.
	if r, s, isConv := convFilter(w); isConv && r != s {
		res.InvalidReason = "asymmetric convolution not supported (assumes R == S)"
		res.Elapsed = time.Since(start)
		return res
	}

	orderings, _ := order.Enumerate(w)
	best := baselines.Result{}
	bestEDP := math.Inf(1)
	var bestEnergyPJ, bestCycles float64
	evaluated := 0
	anyTileMetUtil := false
	stopped := anytime.Complete
	// Fast-path evaluator: the directed enumeration only needs the scalar
	// objective; the full Report is materialized once for the winner.
	ev := baselines.SessionFor(m.Sessions, m.Model, w, a).NewEvaluator()

	// Directed enumeration: unconstrained tiling trees per level filtered
	// by the utilization thresholds, spatial unrolling over dimensions that
	// need no reduction support (fast config), all trie orderings.
	spatialLvl := mapsearch.FirstFanoutLevel(a)
	base := mapping.New(w, a)

	var unrolls []unroll.Candidate
	if spatialLvl >= 0 {
		unrolls, _ = unroll.Enumerate(unroll.Space{
			ReductionDims:         w.ReductionDims(),
			Quota:                 w.FullExtents(),
			Fanout:                a.Levels[spatialLvl].Fanout,
			MinUtilization:        m.Cfg.PEUtil,
			AllowSpatialReduction: m.Cfg.AllowSpatialReduction && a.Levels[spatialLvl].AllowSpatialReduction,
			MaxCandidates:         16,
		})
	} else {
		unrolls = []unroll.Candidate{{}}
	}

search:
	for _, u := range unrolls {
		mu := base.Clone()
		for d, f := range u {
			if f > 1 {
				mu.Levels[spatialLvl].Spatial[d] = f
			}
		}
		if float64(productOf(u))/float64(mapsearch.TotalFanout(a)) < m.Cfg.PEUtil {
			continue
		}
		// L1 tiles: grow all dims, keep maximal fitting, then threshold.
		l1Tiles := mapsearch.TilesAt(mu, 0, 24)
		for _, t1 := range l1Tiles {
			m1 := mapsearch.ApplyTile(mu, 0, t1)
			if util := m1.Utilization(0, 0); util < m.Cfg.L1Util {
				evaluated++
				continue
			}
			anyTileMetUtil = true
			l2Tiles := mapsearch.TilesAt(m1, 1, 24)
			for _, t2 := range l2Tiles {
				m2 := mapsearch.ApplyTile(m1, 1, t2)
				if len(a.Levels) > 2 && a.Levels[1].Buffers[0].Bytes > 0 {
					if util := m2.Utilization(1, 0); util < m.Cfg.L2Util {
						evaluated++
						continue
					}
				}
				for oi := range orderings {
					if r := poll.Stop(); r != anytime.Complete {
						stopped = r
						break search
					}
					cand := mapsearch.CompleteWith(m2, &orderings[oi])
					edp, energyPJ, cycles, valid := ev.EvaluateEDP(cand)
					evaluated++
					if valid && edp < bestEDP {
						bestEDP = edp
						bestEnergyPJ, bestCycles = energyPJ, cycles
						best.Mapping = cand
					}
				}
			}
		}
	}

	best.Evaluated = evaluated
	best.Elapsed = time.Since(start)
	best.Stopped = stopped
	if best.Mapping == nil {
		best.InvalidReason = "no mapping meets the minimum utilization constraints"
		if !anyTileMetUtil {
			best.InvalidReason = "no tiling reaches the minimum buffer utilization"
		}
		if best.Stopped != anytime.Complete {
			best.InvalidReason = "stopped (" + best.Stopped.String() + ") before any mapping met the utilization constraints"
		}
		return best
	}
	best.Report = baselines.FinalReport(m.Model, best.Mapping, bestEDP, bestEnergyPJ, bestCycles, true)
	best.Valid = true
	return best
}

// convFilter detects the R/S filter dims of a convolution workload.
func convFilter(w *tensor.Workload) (r, s int, isConv bool) {
	rr, okR := w.Dims["R"]
	ss, okS := w.Dims["S"]
	if okR && okS {
		return rr, ss, true
	}
	return 0, 0, false
}

func productOf(c unroll.Candidate) int {
	p := 1
	for _, f := range c {
		p *= f
	}
	return p
}

// Package fixed provides the classic *fixed* dataflows of the accelerator
// literature — weight-stationary, output-stationary, and input-stationary —
// as mappers. A fixed dataflow pins the loop ordering (which operand stays
// resident innermost) and derives tiling/unrolling mechanically, the way
// hard-wired accelerators such as the TPU (weight-stationary) or ShiDianNao
// (output-stationary) behave. They make useful reference points: the gap
// between a fixed dataflow and a searched mapping is exactly the value a
// mapper like Sunstone adds, and the paper's intro (citing Timeloop's 19x
// energy spread across dataflows) is easy to reproduce with them.
package fixed

import (
	"context"
	"math"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/mapsearch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/unroll"
)

// Style selects which operand the dataflow keeps stationary.
type Style int

const (
	// WeightStationary keeps weights resident (TPU-style): loops over the
	// weight's non-indexing dims run innermost.
	WeightStationary Style = iota
	// OutputStationary keeps partial sums resident (ShiDianNao-style):
	// reduction loops run innermost.
	OutputStationary
	// InputStationary keeps activations resident.
	InputStationary
)

func (s Style) String() string {
	switch s {
	case OutputStationary:
		return "output-stationary"
	case InputStationary:
		return "input-stationary"
	default:
		return "weight-stationary"
	}
}

// Mapper applies one fixed dataflow style.
type Mapper struct {
	Style Style
	Model cost.Model
}

// New returns a fixed-dataflow mapper.
func New(s Style) *Mapper { return &Mapper{Style: s, Model: cost.Default} }

// Name implements baselines.Mapper.
func (m *Mapper) Name() string { return m.Style.String() }

// stationaryTensor picks the operand the style keeps resident: the largest
// input for weight/input-stationary styles matching the conventional conv
// roles when present, the output for output-stationary.
func (m *Mapper) stationaryTensor(w *tensor.Workload) *tensor.Tensor {
	switch m.Style {
	case OutputStationary:
		return w.Outputs()[0]
	case InputStationary:
		if t := w.Tensor(arch.Ifmap); t != nil {
			return t
		}
		return w.Inputs()[0]
	default:
		if t := w.Tensor(arch.Weight); t != nil {
			return t
		}
		// Generic workloads: the largest input plays the weight role.
		best := w.Inputs()[0]
		full := w.FullExtents()
		for _, t := range w.Inputs() {
			if t.Footprint(full) > best.Footprint(full) {
				best = t
			}
		}
		return best
	}
}

// MapContext implements baselines.Mapper: this search is one-shot and
// sub-second, so it only short-circuits an already-done context and
// otherwise runs to completion with panic containment (see
// baselines.RunContext). The run is recorded as a telemetry span when the
// context carries a trace (see baselines.Instrument).
func (m *Mapper) MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) baselines.Result {
	return baselines.Instrument(ctx, m.Name(), func(ctx context.Context) baselines.Result {
		return baselines.RunContext(ctx, m.Name(), func() baselines.Result { return m.Map(w, a) })
	})
}

// Map implements baselines.Mapper: the stationary operand's non-indexing
// dims are pinned innermost at every level (so it stays resident), tiles are
// grown mechanically (largest fitting, no search over grow sets), and the
// spatial fanout is filled with the stationary operand's indexing dims
// (each PE holds a different stationary slice, the hallmark of these
// dataflows).
func (m *Mapper) Map(w *tensor.Workload, a *arch.Arch) baselines.Result {
	start := time.Now()
	res := baselines.Result{}
	if mapsearch.SpatialLevels(a) > 1 {
		res.InvalidReason = "fixed dataflows defined for single-spatial-level machines"
		res.Elapsed = time.Since(start)
		return res
	}
	st := m.stationaryTensor(w)

	// Fixed order: the stationary operand's non-indexing dims innermost
	// (full residency), then its indexing dims canonically.
	idxSet := map[tensor.Dim]bool{}
	for _, d := range st.IndexingDims() {
		idxSet[d] = true
	}
	var fixedOrder []tensor.Dim
	for _, d := range w.Order {
		if !idxSet[d] {
			fixedOrder = append(fixedOrder, d)
		}
	}
	for _, d := range w.Order {
		if idxSet[d] {
			fixedOrder = append(fixedOrder, d)
		}
	}

	base := mapping.New(w, a)
	spatialLvl := mapsearch.FirstFanoutLevel(a)
	if spatialLvl >= 0 {
		// Unroll the stationary operand's indexing dims across the fanout:
		// distinct stationary slices per PE.
		us, _ := unroll.Enumerate(unroll.Space{
			Allowed:               st.IndexingDims(),
			ReductionDims:         w.ReductionDims(),
			Quota:                 w.FullExtents(),
			Fanout:                a.Levels[spatialLvl].Fanout,
			MinUtilization:        0,
			AllowSpatialReduction: a.Levels[spatialLvl].AllowSpatialReduction,
			MaxCandidates:         1,
		})
		if len(us) > 0 {
			for d, f := range us[0] {
				if f > 1 {
					base.Levels[spatialLvl].Spatial[d] = f
				}
			}
		}
	}

	// Mechanical tiling: at each bounded level, the single largest fitting
	// tile (no grow-set search — fixed hardware has fixed tile logic).
	cur := base
	for lvl := 0; lvl < len(a.Levels)-1; lvl++ {
		tiles := mapsearch.TilesAt(cur, lvl, 1)
		if len(tiles) == 0 {
			res.InvalidReason = "tile does not fit level " + a.Levels[lvl].Name
			res.Elapsed = time.Since(start)
			return res
		}
		cur = mapsearch.ApplyTile(cur, lvl, tiles[0])
	}

	// Complete with the fixed order at every level.
	top := len(a.Levels) - 1
	for l := 1; l <= top; l++ {
		cur.Levels[l].Order = append([]tensor.Dim(nil), fixedOrder...)
	}
	for d, bound := range w.Dims {
		below := cur.Extent(d, top-1)
		need := (bound + below - 1) / below
		if cur.Levels[top].T(d) < need {
			cur.Levels[top].Temporal[d] = need
		}
	}

	// A fixed dataflow evaluates exactly one mapping and that evaluation is
	// the final report, so the full model runs directly — the scalar fast
	// path (cost.Evaluator) would only add a second pass here.
	rep := m.Model.Evaluate(cur)
	res.Mapping = cur
	res.Report = rep
	res.Valid = rep.Valid
	res.Evaluated = 1
	res.Elapsed = time.Since(start)
	if !rep.Valid && rep.Invalid != nil {
		res.InvalidReason = rep.Invalid.Error()
	}
	if math.IsInf(rep.EDP, 1) && res.InvalidReason == "" {
		res.InvalidReason = "no legal completion"
	}
	return res
}

package fixed

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/workloads"
)

func TestAllStylesProduceValidMappings(t *testing.T) {
	w := workloads.ResNet18[2].Inference(4)
	a := arch.Conventional()
	for _, s := range []Style{WeightStationary, OutputStationary, InputStationary} {
		res := New(s).Map(w, a)
		if !res.Valid {
			t.Errorf("%s: %s", s, res.InvalidReason)
			continue
		}
		if err := res.Mapping.Validate(); err != nil {
			t.Errorf("%s: illegal mapping: %v", s, err)
		}
		if res.Evaluated != 1 {
			t.Errorf("%s: fixed dataflows do not search (%d evals)", s, res.Evaluated)
		}
	}
}

func TestStationaryOperandIsResident(t *testing.T) {
	// Output-stationary: the reduction dims (non-indexing for the output)
	// must be the innermost loops at every level above L1.
	w := workloads.ResNet18[2].Inference(4)
	res := New(OutputStationary).Map(w, arch.Conventional())
	if !res.Valid {
		t.Fatal(res.InvalidReason)
	}
	order := res.Mapping.EffectiveOrder(len(res.Mapping.Levels) - 1)
	redSet := map[string]bool{"C": true, "R": true, "S": true}
	for i := 0; i < 3; i++ {
		if !redSet[string(order[i])] {
			t.Errorf("output-stationary order %v should start with reduction dims", order)
		}
	}
}

// TestSearchedBeatsFixed reproduces the motivation of the paper's intro: a
// searched mapping beats every fixed dataflow, often by a large factor (the
// Timeloop paper's 19x energy spread across dataflows).
func TestSearchedBeatsFixed(t *testing.T) {
	w := workloads.ResNet18[1].Inference(4)
	a := arch.Conventional()
	sun, err := core.Optimize(w, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst := 1.0
	for _, s := range []Style{WeightStationary, OutputStationary, InputStationary} {
		res := New(s).Map(w, a)
		if !res.Valid {
			continue
		}
		ratio := res.Report.EDP / sun.Report.EDP
		if ratio < 0.999 {
			t.Errorf("%s beats the searched mapping (%.2fx)", s, ratio)
		}
		if ratio > worst {
			worst = ratio
		}
		t.Logf("%s: %.2fx Sunstone", s, ratio)
	}
	if worst < 1.2 {
		t.Errorf("fixed dataflows all within %.2fx of optimal — dataflow choice should matter", worst)
	}
}

func TestGenericWorkloadFallbacks(t *testing.T) {
	// Non-conv workloads have no "weight"/"ifmap" roles; the styles fall
	// back to structural choices and still work.
	w := workloads.MTTKRP("m", 64, 32, 32, 16)
	for _, s := range []Style{WeightStationary, OutputStationary, InputStationary} {
		res := New(s).Map(w, arch.Conventional())
		if !res.Valid {
			t.Errorf("%s on MTTKRP: %s", s, res.InvalidReason)
		}
	}
}

func TestRejectsMultiSpatial(t *testing.T) {
	w := workloads.ResNet18[2].Inference(4)
	if res := New(WeightStationary).Map(w, arch.Simba()); res.Valid {
		t.Error("fixed dataflows are single-spatial-level")
	}
}

func TestStyleNames(t *testing.T) {
	if WeightStationary.String() != "weight-stationary" ||
		OutputStationary.String() != "output-stationary" ||
		InputStationary.String() != "input-stationary" {
		t.Error("style names")
	}
}

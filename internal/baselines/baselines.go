// Package baselines defines the common interface implemented by the four
// prior-art mappers the paper compares against — Timeloop (random search),
// dMazeRunner (utilization-threshold directed search), Interstellar
// (CK-preset unrolling), and CoSA (one-shot linear-relaxation) — each rebuilt
// from its published search strategy (see DESIGN.md substitution table).
// Every baseline is scored by the same cost model as Sunstone.
//
// Every mapper also honors the anytime contract (internal/anytime): MapContext
// observes the context's deadline/cancellation, returns the best mapping
// found so far with Result.Stopped set, and never lets a panicking cost-model
// evaluation escape a search thread — so the slow Timeloop/dMazeRunner
// configurations respect the same wall-clock budgets as Sunstone in
// head-to-head experiments.
package baselines

import (
	"context"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/tensor"
)

// Result is the outcome of one baseline mapping run.
type Result struct {
	// Mapping is the best mapping found (may be invalid — the paper's
	// evaluation explicitly reports baselines returning invalid mappings).
	Mapping *mapping.Mapping
	Report  cost.Report
	// Valid mirrors Report.Valid; false means the tool returned a mapping
	// whose tiles do not fit, could not satisfy its own constraints, or
	// does not support the workload.
	Valid bool
	// InvalidReason explains a Valid == false result.
	InvalidReason string
	// Stopped records why the search returned: complete, deadline/canceled
	// (context), or budget (the tool's own termination budget, e.g.
	// Timeloop's MaxTime). A deadline-stopped result still carries the best
	// mapping found before the signal.
	Stopped anytime.StopReason
	// Errors holds panics recovered from the tool's search threads (each an
	// *anytime.PanicError with the offending candidate serialized); the
	// search survives them by discarding the poisoned candidate.
	Errors []error
	// Evaluated counts the candidate mappings the tool examined.
	Evaluated int
	Elapsed   time.Duration
}

// Mapper is a dataflow optimizer under comparison. Map is the legacy
// uninterruptible entry point; MapContext is the anytime form every
// implementation must provide — Map(w, a) must equal
// MapContext(context.Background(), w, a).
type Mapper interface {
	Name() string
	Map(w *tensor.Workload, a *arch.Arch) Result
	MapContext(ctx context.Context, w *tensor.Workload, a *arch.Arch) Result
}

// SessionSource supplies shared fast-path cost sessions. A core.Engine
// satisfies it structurally, so an Engine-held baseline scores candidates
// against the same compiled tables and warm evaluation memo as the main
// search instead of rebuilding both per call. A nil source — or a source
// declining the problem by returning nil — means "build your own".
type SessionSource interface {
	Session(model cost.Model, w *tensor.Workload, a *arch.Arch) *cost.Session
}

// SessionFor resolves the session a mapper should score with: the injected
// source's when available, a freshly built one otherwise. Mappers with a
// Sessions field route every session construction through this.
func SessionFor(src SessionSource, model cost.Model, w *tensor.Workload, a *arch.Arch) *cost.Session {
	if src != nil {
		if s := src.Session(model, w, a); s != nil {
			return s
		}
	}
	return model.NewSession(w, a)
}

// FinalReport materializes the full cost.Report — breakdowns, per-buffer
// accesses — for the winning mapping of a search that scored candidates on
// the fast scalar path (cost.Evaluator.EvaluateEDP). The scalar path already
// established the mapping's objective and validity; this recovers the
// detailed report for display. A cost-model panic here (e.g. an injected
// probe fault) falls back to a Report synthesized from the scalars instead
// of losing the search's result.
func FinalReport(model cost.Model, m *mapping.Mapping, edp, energyPJ, cycles float64, valid bool) (rep cost.Report) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "final report evaluation", m.String); e != nil {
			rep = cost.Report{Valid: valid, EDP: edp, EnergyPJ: energyPJ, Cycles: cycles}
		}
	}()
	return model.Evaluate(m)
}

// Instrument runs one tool's search under a telemetry span named after the
// tool (a child of the context's span, or a root on its trace), stamping the
// run's outcome — candidates evaluated, validity, stop reason — as span
// arguments. With no trace on the context it is two context lookups and a
// direct call. Every Mapper implementation routes MapContext through this,
// so head-to-head experiment traces show each tool's search as one region.
func Instrument(ctx context.Context, name string, fn func(context.Context) Result) Result {
	ctx, sp := obs.StartSpan(ctx, name)
	res := fn(ctx)
	if sp != nil {
		sp.Arg("evaluated", res.Evaluated).Arg("valid", res.Valid).
			Arg("stopped", res.Stopped.String()).End()
	}
	return res
}

// RunContext adapts a fast, effectively non-interruptible search to the
// MapContext contract: a context that is already done short-circuits to an
// empty stopped result; otherwise fn runs to completion (these mappers are
// one-shot or sub-second, so mid-run polling would buy nothing) and the run
// counts as complete. A panic in fn is contained and reported as an invalid
// result rather than crashing the caller.
func RunContext(ctx context.Context, name string, fn func() Result) (out Result) {
	start := time.Now()
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), name+" search", nil); e != nil {
			out = Result{
				InvalidReason: "search panicked: " + e.Op,
				Errors:        []error{e},
				Elapsed:       time.Since(start),
			}
		}
	}()
	if r := anytime.FromContext(ctx); r != anytime.Complete {
		return Result{
			Stopped:       r,
			InvalidReason: "stopped (" + r.String() + ") before the search started",
			Elapsed:       time.Since(start),
		}
	}
	return fn()
}

// Package baselines defines the common interface implemented by the four
// prior-art mappers the paper compares against — Timeloop (random search),
// dMazeRunner (utilization-threshold directed search), Interstellar
// (CK-preset unrolling), and CoSA (one-shot linear-relaxation) — each rebuilt
// from its published search strategy (see DESIGN.md substitution table).
// Every baseline is scored by the same cost model as Sunstone.
package baselines

import (
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// Result is the outcome of one baseline mapping run.
type Result struct {
	// Mapping is the best mapping found (may be invalid — the paper's
	// evaluation explicitly reports baselines returning invalid mappings).
	Mapping *mapping.Mapping
	Report  cost.Report
	// Valid mirrors Report.Valid; false means the tool returned a mapping
	// whose tiles do not fit, could not satisfy its own constraints, or
	// does not support the workload.
	Valid bool
	// InvalidReason explains a Valid == false result.
	InvalidReason string
	// Evaluated counts the candidate mappings the tool examined.
	Evaluated int
	Elapsed   time.Duration
}

// Mapper is a dataflow optimizer under comparison.
type Mapper interface {
	Name() string
	Map(w *tensor.Workload, a *arch.Arch) Result
}

// Package faults is the search stack's deterministic fault-injection
// registry. Chaos tests (and the -fault-spec CLI flag) activate an Injector
// that fires errors, panics, latency, or data corruption at named sites
// threaded through the optimizer — problem compilation, level expansion,
// cost evaluation, the evaluation memo cache, and the progress callback —
// so the graceful-degradation machinery (retries, fallback mappers, the
// final mapping audit) can be proven against every failure mode it claims
// to survive.
//
// The hooks are zero-cost when disabled: every site check is one atomic
// pointer load against nil, which disappears into the noise floor of even
// the cheapest cost-model evaluation. With an Injector active, decisions
// are seeded and reproducible — the n-th consultation of a given site
// always reaches the same verdict for the same seed, independent of wall
// clock or scheduling (which goroutine *observes* the n-th verdict still
// depends on interleaving; the verdict sequence itself does not).
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one injection point in the search stack.
type Site string

// The injection sites the optimizer threads hooks through.
const (
	// SiteCompile fires in problem compilation (core.Compile): error-kind
	// faults fail the compile, panic-kind faults poison it mid-build.
	SiteCompile Site = "compile"
	// SiteExpand fires in the level sequencer's candidate expansion; both
	// error and panic kinds surface as a panicking expansion (expansion has
	// no error channel).
	SiteExpand Site = "expand"
	// SiteEvaluate fires at the start of every cost evaluation, fast path
	// and full model alike; error and panic kinds panic (contained by the
	// search's per-candidate isolation).
	SiteEvaluate Site = "evaluate"
	// SiteCacheGet fires on evaluation-memo cache hits. Corrupt-kind
	// faults perturb the returned scalars (simulating memo corruption the
	// final audit must catch); error and panic kinds panic.
	SiteCacheGet Site = "cache-get"
	// SiteProgress fires before each Options.Progress callback delivery;
	// all kinds panic (contained by the progress emitter).
	SiteProgress Site = "progress-callback"
	// SiteJournal fires on every write-ahead-journal append and on every
	// record read during crash recovery (internal/journal). Error-kind
	// faults fail the write (durable appends retry, then surface as a 503
	// before any job is acknowledged) or force a re-read on the recovery
	// path; corrupt-kind faults flip a payload byte — after the CRC is
	// computed on writes, in the read buffer on replays — so the
	// checksum machinery must detect them; latency sleeps.
	SiteJournal Site = "journal"
)

// Sites lists every injection site, in stack order.
func Sites() []Site {
	return []Site{SiteCompile, SiteExpand, SiteEvaluate, SiteCacheGet, SiteProgress, SiteJournal}
}

// Kind classifies what a fired fault does.
type Kind uint8

const (
	// Error returns an *InjectedError from the hook; sites without an
	// error channel panic with it instead.
	Error Kind = iota
	// Panic panics with an *InjectedError.
	Panic
	// Latency sleeps for the rule's Delay, then proceeds normally.
	Latency
	// Corrupt asks the site to corrupt its own data (only the cache-get
	// site implements corruption; elsewhere it is a no-op).
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	case Corrupt:
		return "corrupt"
	default:
		return "error"
	}
}

// parseKind inverts String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return Error, nil
	case "panic":
		return Panic, nil
	case "latency":
		return Latency, nil
	case "corrupt":
		return Corrupt, nil
	}
	return 0, fmt.Errorf("unknown fault kind %q (error|panic|latency|corrupt)", s)
}

// InjectedError marks a deliberately injected failure. Error-kind faults
// return one; panic-kind faults panic with one, so a recovered
// *anytime.PanicError carries it as the panic value. The network
// scheduler's failure classifier keys on this type.
type InjectedError struct {
	Site Site
	Kind Kind
	// Seq is the site consultation ordinal that fired the fault (1-based),
	// for reproducing a specific firing.
	Seq uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected %s fault at site %q (firing #%d)", e.Kind, e.Site, e.Seq)
}

// Rule arms one site with one fault kind at a firing rate.
type Rule struct {
	Site Site
	Kind Kind
	// Rate is the per-consultation firing probability in [0, 1].
	Rate float64
	// Delay is the sleep applied by Latency-kind rules (default 100µs).
	Delay time.Duration
}

// Injector decides, deterministically under its seed, whether each site
// consultation fires a fault. Safe for concurrent use.
type Injector struct {
	seed  uint64
	rules map[Site][]Rule
	seq   map[Site]*atomic.Uint64
	fired map[Site]*atomic.Uint64
}

// NewInjector builds an injector from rules; rules outside [0,1] rates or
// naming unknown sites are rejected.
func NewInjector(seed int64, rules ...Rule) (*Injector, error) {
	inj := &Injector{
		seed:  uint64(seed),
		rules: map[Site][]Rule{},
		seq:   map[Site]*atomic.Uint64{},
		fired: map[Site]*atomic.Uint64{},
	}
	known := map[Site]bool{}
	for _, s := range Sites() {
		known[s] = true
		inj.seq[s] = &atomic.Uint64{}
		inj.fired[s] = &atomic.Uint64{}
	}
	for _, r := range rules {
		if !known[r.Site] {
			return nil, fmt.Errorf("unknown fault site %q", r.Site)
		}
		if math.IsNaN(r.Rate) || r.Rate < 0 || r.Rate > 1 {
			return nil, fmt.Errorf("site %s: rate %v outside [0, 1]", r.Site, r.Rate)
		}
		if r.Delay <= 0 {
			r.Delay = 100 * time.Microsecond
		}
		inj.rules[r.Site] = append(inj.rules[r.Site], r)
	}
	return inj, nil
}

// NewUniform arms every site with every applicable destructive kind at the
// given rate — the chaos-test workhorse. Each site gets an error/panic mix
// (split evenly so the combined firing rate stays near rate), the cache-get
// site additionally gets corruption, and every site gets a thin slice of
// latency with a tiny delay.
func NewUniform(seed int64, rate float64) *Injector {
	half := rate / 2
	tiny := 50 * time.Microsecond
	inj, err := NewInjector(seed,
		Rule{Site: SiteCompile, Kind: Error, Rate: half},
		Rule{Site: SiteCompile, Kind: Panic, Rate: half},
		Rule{Site: SiteExpand, Kind: Error, Rate: half},
		Rule{Site: SiteExpand, Kind: Panic, Rate: half},
		Rule{Site: SiteEvaluate, Kind: Panic, Rate: rate},
		Rule{Site: SiteEvaluate, Kind: Latency, Rate: rate / 8, Delay: tiny},
		Rule{Site: SiteCacheGet, Kind: Corrupt, Rate: rate},
		Rule{Site: SiteProgress, Kind: Panic, Rate: rate},
		Rule{Site: SiteJournal, Kind: Error, Rate: half},
		Rule{Site: SiteJournal, Kind: Corrupt, Rate: half},
		Rule{Site: SiteJournal, Kind: Latency, Rate: rate / 8, Delay: tiny},
	)
	if err != nil {
		panic(err) // static rule set; unreachable
	}
	return inj
}

// splitmix64 is the SplitMix64 finalizer — a high-quality 64-bit mix used
// to turn (seed, site, ordinal, rule) into an i.i.d.-looking uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func siteHash(s Site) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// decide consults the site's rules for consultation ordinal n; the first
// rule whose draw fires wins.
func (inj *Injector) decide(site Site, n uint64) (Rule, bool) {
	for ri, r := range inj.rules[site] {
		draw := splitmix64(inj.seed ^ siteHash(site) ^ n*0x9e3779b97f4a7c15 ^ uint64(ri)<<56)
		// Map the top 53 bits to [0, 1).
		u := float64(draw>>11) / (1 << 53)
		if u < r.Rate {
			return r, true
		}
	}
	return Rule{}, false
}

// fire runs one consultation: error-kind faults return the error, panic
// kinds panic, latency sleeps, corrupt reports via the bool (only
// meaningful to sites that implement corruption).
func (inj *Injector) fire(site Site) (error, bool) {
	n := inj.seq[site].Add(1)
	r, hit := inj.decide(site, n)
	if !hit {
		return nil, false
	}
	inj.fired[site].Add(1)
	switch r.Kind {
	case Panic:
		panic(&InjectedError{Site: site, Kind: Panic, Seq: n})
	case Latency:
		time.Sleep(r.Delay)
		return nil, false
	case Corrupt:
		return nil, true
	default:
		return &InjectedError{Site: site, Kind: Error, Seq: n}, false
	}
}

// Fired returns how many faults the injector has fired at site so far.
func (inj *Injector) Fired(site Site) uint64 {
	if c := inj.fired[site]; c != nil {
		return c.Load()
	}
	return 0
}

// FiredTotal sums Fired over every site.
func (inj *Injector) FiredTotal() uint64 {
	var n uint64
	for _, s := range Sites() {
		n += inj.Fired(s)
	}
	return n
}

// active is the process-wide injector; nil (the steady state) makes every
// hook a single atomic load.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-wide injector and returns a restore
// function that reinstates whatever was active before. Tests must call the
// restore function (and must not run in parallel with tests that assume a
// fault-free stack).
func Activate(inj *Injector) (restore func()) {
	prev := active.Swap(inj)
	return func() { active.Store(prev) }
}

// Enabled reports whether any injector is active.
func Enabled() bool { return active.Load() != nil }

// Fire consults the active injector at site. It returns a non-nil
// *InjectedError for error-kind faults, panics for panic-kind faults,
// sleeps through latency faults, and returns (nil, false) when no injector
// is active or nothing fired. The bool reports a corrupt-kind firing, which
// only corruption-capable sites act on.
func Fire(site Site) (error, bool) {
	inj := active.Load()
	if inj == nil {
		return nil, false
	}
	return inj.fire(site)
}

// MustFire is Fire for sites with no error channel: an error-kind fault
// panics with its *InjectedError instead of returning it.
func MustFire(site Site) {
	if err, _ := Fire(site); err != nil {
		panic(err)
	}
}

// ParseSpec builds an Injector from a CLI-friendly spec: comma-separated
// site:kind:rate rules, an optional :duration fourth field on latency
// rules, and an optional seed=N entry (default seed 1). The pseudo-site
// "all" arms the uniform chaos mix of NewUniform at the given rate.
//
//	evaluate:panic:0.3
//	compile:error:0.1,cache-get:corrupt:0.05,seed=42
//	evaluate:latency:0.2:1ms
//	all:mixed:0.3,seed=7
func ParseSpec(spec string) (*Injector, error) {
	var rules []Rule
	seed := int64(1)
	uniform := -1.0
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, specError("token %q: seed %q is not an integer", item, v)
			}
			seed = n
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, specError("token %q has %d field(s), want site:kind:rate or site:kind:rate:delay", item, len(parts))
		}
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, specError("token %q: rate %q is not a number", item, parts[2])
		}
		if math.IsNaN(rate) || rate < 0 || rate > 1 {
			return nil, specError("token %q: rate %v outside [0, 1]", item, rate)
		}
		if parts[0] == "all" {
			uniform = rate
			continue
		}
		kind, err := parseKind(parts[1])
		if err != nil {
			return nil, specError("token %q: %v", item, err)
		}
		r := Rule{Site: Site(parts[0]), Kind: kind, Rate: rate}
		if len(parts) == 4 {
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, specError("token %q: delay %q is not a duration (e.g. 1ms)", item, parts[3])
			}
			r.Delay = d
		}
		rules = append(rules, r)
	}
	if uniform >= 0 {
		if len(rules) > 0 {
			return nil, specError("the 'all' pseudo-site cannot be combined with per-site rules")
		}
		u := NewUniform(seed, uniform)
		return u, nil
	}
	if len(rules) == 0 {
		return nil, specError("%q names no rules", spec)
	}
	inj, err := NewInjector(seed, rules...)
	if err != nil {
		return nil, specError("%v", err)
	}
	return inj, nil
}

// specGrammar is the accepted ParseSpec grammar, appended to every parse
// error so a CLI typo is self-documenting.
const specGrammar = "spec = rule{,rule}[,seed=N] | all:mixed:rate[,seed=N]; " +
	"rule = site:kind:rate[:delay]; " +
	"site = compile | expand | evaluate | cache-get | progress-callback | journal; " +
	"kind = error | panic | latency | corrupt; rate in [0, 1]; delay like 1ms"

// specError builds a ParseSpec error that names the offending token and
// restates the accepted grammar.
func specError(format string, args ...any) error {
	return fmt.Errorf("fault spec: "+format+"\naccepted grammar: "+specGrammar, args...)
}

package faults

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// drain consults site n times, classifying each outcome.
func drain(inj *Injector, site Site, n int) (errs, panics, corrupts int) {
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					if _, ok := v.(*InjectedError); !ok {
						panic(v)
					}
					panics++
				}
			}()
			err, corrupt := inj.fire(site)
			if err != nil {
				var ie *InjectedError
				if !errors.As(err, &ie) {
					panic("fired error is not *InjectedError")
				}
				errs++
			}
			if corrupt {
				corrupts++
			}
		}()
	}
	return errs, panics, corrupts
}

func TestDeterministicUnderSeed(t *testing.T) {
	runs := make([][3]int, 2)
	for i := range runs {
		inj := NewUniform(42, 0.3)
		e, p, c := drain(inj, SiteEvaluate, 1000)
		runs[i] = [3]int{e, p, c}
	}
	if runs[0] != runs[1] {
		t.Fatalf("same seed diverged: %v vs %v", runs[0], runs[1])
	}
	other := NewUniform(43, 0.3)
	e, p, c := drain(other, SiteEvaluate, 1000)
	if [3]int{e, p, c} == runs[0] {
		t.Errorf("different seeds produced an identical firing pattern (possible but wildly unlikely)")
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	inj, err := NewInjector(7, Rule{Site: SiteEvaluate, Kind: Panic, Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	_, p, _ := drain(inj, SiteEvaluate, 10000)
	if p < 2600 || p > 3400 {
		t.Errorf("panic rate 0.3 fired %d/10000 times", p)
	}
	if got := inj.Fired(SiteEvaluate); got != uint64(p) {
		t.Errorf("Fired = %d, observed %d", got, p)
	}
	// Unarmed sites never fire.
	if e, p, c := drain(inj, SiteCompile, 1000); e+p+c != 0 {
		t.Errorf("unarmed site fired: %d/%d/%d", e, p, c)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	inj, err := NewInjector(1, Rule{Site: SiteCompile, Kind: Error, Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if e, p, c := drain(inj, SiteCompile, 5000); e+p+c != 0 {
		t.Errorf("zero-rate rule fired: %d/%d/%d", e, p, c)
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := NewInjector(1, Rule{Site: "nope", Kind: Error, Rate: 0.1}); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := NewInjector(1, Rule{Site: SiteCompile, Kind: Error, Rate: 1.5}); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := NewInjector(1, Rule{Site: SiteCompile, Kind: Error, Rate: -0.1}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestActivateRestore(t *testing.T) {
	if Enabled() {
		t.Fatal("injector active at test start")
	}
	inj, _ := NewInjector(1, Rule{Site: SiteCompile, Kind: Error, Rate: 1})
	restore := Activate(inj)
	if !Enabled() {
		t.Fatal("Activate did not enable")
	}
	if err, _ := Fire(SiteCompile); err == nil {
		t.Error("armed compile site did not fire at rate 1")
	}
	restore()
	if Enabled() {
		t.Fatal("restore did not disable")
	}
	if err, _ := Fire(SiteCompile); err != nil {
		t.Errorf("disabled hook fired: %v", err)
	}
}

func TestLatencyKindSleeps(t *testing.T) {
	inj, _ := NewInjector(1, Rule{Site: SiteEvaluate, Kind: Latency, Rate: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err, corrupt := inj.fire(SiteEvaluate); err != nil || corrupt {
		t.Fatalf("latency fault returned err=%v corrupt=%v", err, corrupt)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Errorf("latency fault slept only %v", el)
	}
}

func TestConcurrentFiringIsRaceClean(t *testing.T) {
	inj := NewUniform(9, 0.5)
	restore := Activate(inj)
	defer restore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				func() {
					defer func() { recover() }()
					Fire(SiteEvaluate)
					Fire(SiteCacheGet)
					MustFire(SiteProgress)
				}()
			}
		}()
	}
	wg.Wait()
	if inj.FiredTotal() == 0 {
		t.Error("no faults fired under concurrency")
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("evaluate:panic:1,compile:error:0.5,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if _, p, _ := drain(inj, SiteEvaluate, 10); p != 10 {
		t.Errorf("rate-1 panic rule fired %d/10", p)
	}
	if _, err := ParseSpec("evaluate:latency:0.5:2ms"); err != nil {
		t.Errorf("latency with delay rejected: %v", err)
	}
	if inj, err = ParseSpec("all:mixed:0.3,seed=3"); err != nil || inj == nil {
		t.Errorf("'all' spec rejected: %v", err)
	}
}

// TestParseSpecErrors pins the parser's error contract: every rejection
// names the offending token (not just "bad spec") and restates the accepted
// grammar, so a CLI typo is self-diagnosing.
func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, spec string
		// wantToken must appear in the error — the piece of input that
		// caused the rejection.
		wantToken string
	}{
		{"empty", "", `""`},
		{"one field", "evaluate", `"evaluate"`},
		{"two fields", "evaluate:panic", `"evaluate:panic"`},
		{"five fields", "evaluate:panic:1:1ms:extra", `"evaluate:panic:1:1ms:extra"`},
		{"rate not a number", "evaluate:panic:x", `"x"`},
		{"rate above one", "evaluate:panic:1.5", `1.5`},
		{"rate negative", "evaluate:panic:-0.5", `-0.5`},
		{"uniform rate above one", "all:mixed:1.5", `1.5`},
		{"unknown kind", "evaluate:nosuchkind:0.5", `"nosuchkind"`},
		{"unknown site", "nosuchsite:panic:0.5", `"nosuchsite"`},
		{"bad delay", "evaluate:panic:0.5:notaduration", `"notaduration"`},
		{"all mixed with rules", "all:mixed:0.3,evaluate:panic:0.1", `'all'`},
		{"bad seed", "seed=abc,evaluate:panic:0.1", `"abc"`},
		// The offending token is named even when buried mid-spec among
		// valid rules.
		{"bad token mid-spec", "compile:error:0.1,evaluate:oops:0.2,seed=9", `"oops"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) succeeded", tc.spec)
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.wantToken) {
				t.Errorf("error does not name the offending token %s:\n%s", tc.wantToken, msg)
			}
			if !strings.Contains(msg, "accepted grammar:") ||
				!strings.Contains(msg, "site:kind:rate[:delay]") {
				t.Errorf("error does not restate the grammar:\n%s", msg)
			}
		})
	}
}

func TestInjectedErrorClassifiable(t *testing.T) {
	inj, _ := NewInjector(1, Rule{Site: SiteCompile, Kind: Error, Rate: 1})
	err, _ := inj.fire(SiteCompile)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteCompile || ie.Kind != Error || ie.Seq != 1 {
		t.Fatalf("injected error lost its identity: %#v", err)
	}
	if ie.Error() == "" {
		t.Error("empty rendering")
	}
}

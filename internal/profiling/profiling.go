// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into a command, so search hot spots can be captured from the real drivers
// (cmd/sunstone, cmd/experiments) rather than only from microbenchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (when non-empty) and returns a stop
// function that finishes the CPU profile and writes a heap profile to
// memFile (when non-empty). The stop function must run before the process
// exits for the profiles to be complete; it is a no-op when both paths are
// empty. Profile-file write errors at stop time are reported on stderr —
// by then the command's real work is done and aborting would discard it.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpu profile:", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}

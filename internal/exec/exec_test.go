package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

func TestReferenceMatMulByHand(t *testing.T) {
	// 2x2 matmul with hand-checked values.
	w := tensor.MustNew("mm",
		map[tensor.Dim]int{"M": 2, "N": 2, "K": 2},
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("M"), tensor.A("K")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("K"), tensor.A("N")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("M"), tensor.A("N")}, Output: true},
	)
	ts := Alloc(w)
	copy(ts["A"], []Value{1, 2, 3, 4}) // row-major [M][K]
	copy(ts["B"], []Value{5, 6, 7, 8}) // row-major [K][N]
	Reference(w, ts)
	want := []Value{19, 22, 43, 50}
	for i, v := range want {
		if ts["out"][i] != v {
			t.Errorf("out[%d] = %d, want %d", i, ts["out"][i], v)
		}
	}
}

func TestReferenceConvWindow(t *testing.T) {
	// 1D conv, K=1, C=1, P=3, R=2: out[p] = sum_r in[p+r]*w[r].
	w := workloads.Conv1D("c", 1, 1, 3, 2)
	ts := Alloc(w)
	copy(ts[arch.Ifmap], []Value{1, 2, 3, 4})
	copy(ts[arch.Weight], []Value{10, 1})
	Reference(w, ts)
	want := []Value{1*10 + 2*1, 2*10 + 3*1, 3*10 + 4*1}
	for i, v := range want {
		if ts[arch.Ofmap][i] != v {
			t.Errorf("ofmap[%d] = %d, want %d", i, ts[arch.Ofmap][i], v)
		}
	}
}

func TestMappedMatchesReferenceHandMapping(t *testing.T) {
	w := workloads.Conv1D("c", 4, 4, 14, 3)
	a := arch.Tiny(4096)
	m := mapping.New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 7, "K": 2, "C": 2, "R": 3}
	m.Levels[1].Temporal = map[tensor.Dim]int{"P": 2, "K": 2, "C": 2}
	m.Levels[1].Order = []tensor.Dim{"C", "K", "P"}
	ok, err := Verify(m)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tiled execution differs from reference")
	}
}

func TestMappedMatchesReferenceWithPadding(t *testing.T) {
	// Factors overshoot the bound (coverage 8 for P=7): the padding guard
	// must mask the extra iterations.
	w := workloads.Conv1D("c", 3, 2, 7, 3)
	a := arch.Tiny(4096)
	m := mapping.New(w, a)
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 4, "K": 3, "C": 2, "R": 3}
	m.Levels[1].Temporal = map[tensor.Dim]int{"P": 2}
	if m.Coverage("P") != 8 {
		t.Fatal("test needs a padded mapping")
	}
	ok, err := Verify(m)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("padded execution differs from reference")
	}
}

func TestMappedRejectsInvalidMapping(t *testing.T) {
	w := workloads.Conv1D("c", 4, 4, 14, 3)
	m := mapping.New(w, arch.Tiny(4096)) // nothing assigned: coverage 1 < bounds
	if err := Mapped(m, Alloc(w)); err == nil {
		t.Fatal("invalid mapping must be rejected")
	}
}

// TestMappedMatchesReferenceProperty: random valid mappings (random factor
// scatter, random orders, random spatial) always compute the reference
// result — the executable form of "tiling, interchange, and unrolling are
// semantics-preserving".
func TestMappedMatchesReferenceProperty(t *testing.T) {
	w := tensor.MustNew("conv1d",
		map[tensor.Dim]int{"K": 4, "C": 4, "P": 12, "R": 3},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	a := arch.TinySpatial(1<<16, 1<<20, 8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mapping.New(w, a)
		for _, d := range w.Order {
			for _, p := range factor.Primes(w.Dims[d]) {
				switch rng.Intn(4) {
				case 0:
					m.Levels[0].Temporal[d] = m.Levels[0].T(d) * p
				case 1:
					m.Levels[1].Temporal[d] = m.Levels[1].T(d) * p
				case 2:
					m.Levels[2].Temporal[d] = m.Levels[2].T(d) * p
				default:
					if m.Levels[1].SpatialProduct()*p <= 8 {
						m.Levels[1].Spatial[d] = m.Levels[1].S(d) * p
					} else {
						m.Levels[2].Temporal[d] = m.Levels[2].T(d) * p
					}
				}
			}
		}
		for l := 1; l < 3; l++ {
			order := append([]tensor.Dim(nil), w.Order...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			m.Levels[l].Order = order
		}
		if m.Validate() != nil {
			return true // vacuous for rare invalid scatters
		}
		ok, err := Verify(m)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOptimizerOutputsComputeCorrectly closes the loop: mappings produced by
// the actual Sunstone search are functionally correct, including on the
// multi-level Simba hierarchy and non-conv kernels.
func TestOptimizerOutputsComputeCorrectly(t *testing.T) {
	cases := []struct {
		name string
		w    *tensor.Workload
		a    *arch.Arch
	}{
		{"conv-tiny", workloads.Conv1D("c", 8, 8, 28, 3), arch.Tiny(256)},
		{"conv2d-spatial", workloads.Conv2D("c2", 1, 8, 8, 6, 6, 3, 3, 1, 1), arch.TinySpatial(512, 1<<16, 4)},
		{"mttkrp", workloads.MTTKRP("m", 12, 10, 8, 4), arch.Tiny(512)},
		{"strided-conv", workloads.Conv2D("cs", 1, 4, 3, 5, 5, 3, 3, 2, 2), arch.Tiny(1024)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := core.Optimize(c.w, c.a, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ok, err := Verify(res.Mapping)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("optimizer mapping computes a different result:\n%s", res.Mapping)
			}
		})
	}
}

func TestIndexStridedWindow(t *testing.T) {
	w := workloads.Conv2D("c", 1, 1, 1, 3, 3, 3, 3, 2, 2)
	ifm := w.Tensor(arch.Ifmap)
	// P axis coordinate = 2p + r.
	idx := map[tensor.Dim]int{"N": 0, "C": 0, "P": 2, "Q": 0, "R": 1, "S": 0}
	full := w.FullExtents()
	// Row extent along Q axis: 2*(3-1)+3 = 7.
	wantRow := 2*2 + 1
	if got := Index(w, ifm, idx); got != wantRow*ifm.Axes[3].Extent(full) {
		t.Errorf("Index = %d, want %d", got, wantRow*ifm.Axes[3].Extent(full))
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	w := workloads.Conv1D("c", 2, 2, 4, 2)
	a1, a2 := Alloc(w), Alloc(w)
	if !Equal(w, a1, a2) {
		t.Error("identical zeroed tensors should be equal")
	}
	a2[arch.Ofmap][0] = 1
	if Equal(w, a1, a2) {
		t.Error("difference not detected")
	}
}

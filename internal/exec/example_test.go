package exec_test

import (
	"fmt"

	"sunstone/internal/arch"
	"sunstone/internal/exec"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// Verify proves that a tiled, reordered mapping computes exactly what the
// untransformed loop nest computes.
func ExampleVerify() {
	w := workloads.Conv1D("c", 4, 4, 14, 3)
	m := mapping.New(w, arch.Tiny(4096))
	m.Levels[0].Temporal = map[tensor.Dim]int{"P": 7, "K": 2, "C": 2, "R": 3}
	m.Levels[1].Temporal = map[tensor.Dim]int{"P": 2, "K": 2, "C": 2}
	m.Levels[1].Order = []tensor.Dim{"C", "K", "P"}

	ok, err := exec.Verify(m)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mapped execution matches reference:", ok)
	// Output: mapped execution matches reference: true
}

// Package exec functionally executes tensor-algebra workloads — both
// directly (the reference nested loop) and through a dataflow mapping's full
// tiled/reordered/unrolled loop nest — so that mappings can be verified to
// compute exactly the same result as the untransformed program.
//
// Dataflow mapping is only legal because the target loop nests have no
// inter-iteration dependencies: any tiling, interchange, or unrolling of
// such a nest is semantics-preserving, *provided* the mapping covers every
// iteration exactly once (with padding iterations masked out). This package
// is the executable proof of that property for this repository's mapping
// representation: internal/core's searches and all baseline mappers emit
// mappings whose executions are bit-identical (in integer arithmetic) to the
// reference.
package exec

import (
	"fmt"

	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// Value is the element type: int64 keeps verification exact (no float
// rounding concerns under reordered accumulation).
type Value = int64

// Tensors maps tensor names to dense storage indexed by Index.
type Tensors map[string][]Value

// Index computes the flat offset of tensor t for the given per-dimension
// loop indices, using the workload's full extents as the storage shape:
// axes are mixed-radix digits, and each axis's coordinate is the sum of its
// strided terms (e.g. 2p+r for a stride-2 convolution input).
func Index(w *tensor.Workload, t *tensor.Tensor, idx map[tensor.Dim]int) int {
	full := w.FullExtents()
	flat := 0
	for _, a := range t.Axes {
		coord := 0
		for _, term := range a {
			coord += term.Stride * idx[term.D]
		}
		flat = flat*a.Extent(full) + coord
	}
	return flat
}

// Alloc allocates zeroed storage for every tensor of w at full extents.
func Alloc(w *tensor.Workload) Tensors {
	full := w.FullExtents()
	ts := make(Tensors, len(w.Tensors))
	for _, t := range w.Tensors {
		ts[t.Name] = make([]Value, t.Footprint(full))
	}
	return ts
}

// FillDeterministic writes a reproducible non-trivial pattern into every
// input tensor (outputs are zeroed).
func FillDeterministic(w *tensor.Workload, ts Tensors) {
	for _, t := range w.Inputs() {
		buf := ts[t.Name]
		for i := range buf {
			buf[i] = Value((i*2654435761 + 12345) % 97) // simple LCG-ish hash
		}
	}
	for _, t := range w.Outputs() {
		buf := ts[t.Name]
		for i := range buf {
			buf[i] = 0
		}
	}
}

// Reference executes the workload directly: one pass over the full
// iteration space in canonical dimension order, accumulating the product of
// the inputs into each output.
func Reference(w *tensor.Workload, ts Tensors) {
	dims := w.Order
	idx := make(map[tensor.Dim]int, len(dims))
	var rec func(i int)
	rec = func(i int) {
		if i == len(dims) {
			body(w, ts, idx)
			return
		}
		d := dims[i]
		for v := 0; v < w.Dims[d]; v++ {
			idx[d] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// body performs one loop-body evaluation at idx.
func body(w *tensor.Workload, ts Tensors, idx map[tensor.Dim]int) {
	prod := Value(1)
	for _, t := range w.Inputs() {
		prod *= ts[t.Name][Index(w, t, idx)]
	}
	for _, t := range w.Outputs() {
		ts[t.Name][Index(w, t, idx)] += prod
	}
}

// Mapped executes the workload through mapping m's complete loop nest:
// levels outermost first; within each level the temporal loops in the
// level's effective order (outermost first), then the level's spatial loops
// (executed sequentially — parallel semantics are identical because
// iterations are independent); padding iterations (global index beyond the
// problem bound) are masked. Returns an error if m is invalid.
func Mapped(m *mapping.Mapping, ts Tensors) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("cannot execute invalid mapping: %w", err)
	}
	w := m.Workload
	nest := m.Nest()

	idx := make(map[tensor.Dim]int, len(w.Dims))
	for d := range w.Dims {
		idx[d] = 0
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(nest) {
			// Mask padding: any coordinate beyond its true bound.
			for d, v := range idx {
				if v >= w.Dims[d] {
					return
				}
			}
			body(w, ts, idx)
			return
		}
		lp := nest[i]
		for v := 0; v < lp.Bound; v++ {
			idx[lp.D] += v * lp.Stride
			rec(i + 1)
			idx[lp.D] -= v * lp.Stride
		}
	}
	rec(0)
	return nil
}

// Equal reports whether two tensor sets hold identical output values.
func Equal(w *tensor.Workload, a, b Tensors) bool {
	for _, t := range w.Outputs() {
		x, y := a[t.Name], b[t.Name]
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

// Verify runs both executions on identical deterministic inputs and reports
// whether the mapping computes the reference result.
func Verify(m *mapping.Mapping) (bool, error) {
	w := m.Workload
	ref := Alloc(w)
	FillDeterministic(w, ref)
	got := Alloc(w)
	FillDeterministic(w, got)
	Reference(w, ref)
	if err := Mapped(m, got); err != nil {
		return false, err
	}
	return Equal(w, ref, got), nil
}

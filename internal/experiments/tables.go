package experiments

import (
	"fmt"
	"strings"

	"sunstone/internal/arch"
	"sunstone/internal/baselines/fixed"
	"sunstone/internal/core"
	"sunstone/internal/spacesize"
	"sunstone/internal/workloads"
)

// Table1 renders the per-tool mapping-space size comparison for the
// Inception-v3 example layer (Table I).
func Table1() string {
	w := workloads.InceptionExampleLayer.Inference(1)
	ests := spacesize.Table1(w, arch.Conventional())
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — mapping-space sizes, Inception-v3 layer %s, conventional accelerator\n",
		workloads.InceptionExampleLayer.Name)
	fmt.Fprintf(&b, "  %-14s %-9s %-8s %-10s %s\n", "tool", "tile dims", "unroll", "space", "pruning")
	for _, e := range ests {
		fmt.Fprintf(&b, "  %-14s %-9d %-8d %-10.2e %s\n", e.Tool, e.TemporalDims, e.UnrollDims, e.Size, e.Note)
	}
	return b.String()
}

// Table3 renders the inferred reuse of the 1D-convolution running example
// (Table III).
func Table3() string {
	w := workloads.Conv1D("conv1d", 4, 4, 7, 3)
	return "Table III — inferred reuse, 1D convolution\n" + w.ReuseTable()
}

// Table6Row is one row of the optimization-order study.
type Table6Row struct {
	InterLevel string
	IntraLevel string
	SpaceSize  int
	GeomeanEDP float64
}

// Table6 studies the effect of optimization order (Table VI): the three
// intra-level orders bottom-up, plus the top-down inter-level order, over
// ResNet-18 convolution layers on the Eyeriss-like conventional machine.
func Table6(cfg Config) []Table6Row {
	a := arch.Conventional()
	ws := resnetLayers(cfg.Quick, 1)
	budget := 400_000
	if cfg.Quick {
		budget = 60_000
	}

	configs := []struct {
		name string
		opt  core.Options
	}{
		{"bottom-up/unrolling->tiling->ordering", core.Options{Strategy: core.UnrollTileOrder}},
		{"bottom-up/tiling->unrolling->ordering", core.Options{Strategy: core.TileUnrollOrder}},
		{"bottom-up/ordering->tiling->unrolling", core.Options{Strategy: core.OrderTileUnroll}},
		{"top-down/unrolling->tiling->ordering", core.Options{Direction: core.TopDown, TopDownVisitBudget: budget}},
	}

	var rows []Table6Row
	for _, c := range configs {
		space := 0
		var edps []float64
		for _, w := range ws {
			res, err := core.Optimize(w, a, cfg.options(c.opt))
			if err != nil {
				continue
			}
			space += res.SpaceSize
			if res.Report.Valid {
				edps = append(edps, res.Report.EDP)
			}
		}
		parts := strings.SplitN(c.name, "/", 2)
		rows = append(rows, Table6Row{
			InterLevel: parts[0], IntraLevel: parts[1],
			SpaceSize: space, GeomeanEDP: Geomean(edps),
		})
	}
	return rows
}

// RenderTable6 renders the optimization-order rows.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table VI — effect of optimization order (ResNet-18, Eyeriss-like)\n")
	fmt.Fprintf(&b, "  %-11s %-34s %-12s %s\n", "inter-level", "intra-level", "space size", "geomean EDP")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %-34s %-12d %.3e\n", r.InterLevel, r.IntraLevel, r.SpaceSize, r.GeomeanEDP)
	}
	return b.String()
}

// SpreadRow is one dataflow's result in the motivation study.
type SpreadRow struct {
	Dataflow string
	EDP      float64
	EnergyPJ float64
	Valid    bool
}

// DataflowSpread reproduces the paper's motivating observation (Section I,
// citing Timeloop): dataflow choice alone spans an order of magnitude or
// more in efficiency. It runs the three classic fixed dataflows and the
// searched Sunstone mapping on one ResNet-18 layer.
func DataflowSpread(cfg Config) []SpreadRow {
	w := workloads.ResNet18[1].Inference(4)
	a := arch.Conventional()
	var rows []SpreadRow
	res, err := core.Optimize(w, a, cfg.options(core.Options{}))
	if err == nil {
		rows = append(rows, SpreadRow{Dataflow: "searched (Sunstone)", EDP: res.Report.EDP,
			EnergyPJ: res.Report.EnergyPJ, Valid: res.Report.Valid})
	}
	for _, s := range []fixed.Style{fixed.WeightStationary, fixed.OutputStationary, fixed.InputStationary} {
		r := fixed.New(s).Map(w, a)
		rows = append(rows, SpreadRow{Dataflow: s.String(), EDP: r.Report.EDP,
			EnergyPJ: r.Report.EnergyPJ, Valid: r.Valid})
	}
	return rows
}

// RenderSpread renders the dataflow-spread study.
func RenderSpread(rows []SpreadRow) string {
	var b strings.Builder
	b.WriteString("Dataflow spread — ResNet-18 conv2_x (batch 4), conventional accelerator\n")
	var base float64
	for _, r := range rows {
		if r.Dataflow == "searched (Sunstone)" {
			base = r.EDP
		}
	}
	fmt.Fprintf(&b, "  %-22s %-12s %-12s %s\n", "dataflow", "EDP", "energy pJ", "vs searched")
	for _, r := range rows {
		if !r.Valid {
			fmt.Fprintf(&b, "  %-22s INVALID\n", r.Dataflow)
			continue
		}
		fmt.Fprintf(&b, "  %-22s %-12.3e %-12.3e %.2fx\n", r.Dataflow, r.EDP, r.EnergyPJ, r.EDP/base)
	}
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

func quick() Config { return Config{Quick: true, Seed: 1} }

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Timeloop", "CoSA", "Marvel", "Interstellar", "dMazeRunner", "Sunstone"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	s := Table3()
	for _, want := range []string{"ofmap", "ifmap", "weight", "c,r", "p,r"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table III missing %q:\n%s", want, s)
		}
	}
}

// TestFig6Shape asserts the paper's qualitative result on non-DNN kernels:
// Sunstone finds EDP at least as good as Timeloop on every kernel, far
// faster in aggregate.
func TestFig6Shape(t *testing.T) {
	runs := Fig6(quick())
	sums := Summarize(runs)
	var sun, tlf Summary
	for _, s := range sums {
		switch s.Tool {
		case "Sunstone":
			sun = s
		case "TL-fast":
			tlf = s
		}
	}
	if sun.Invalid != 0 {
		t.Fatalf("Sunstone must map every non-DNN kernel: %+v", sun)
	}
	if tlf.GeomeanEDPRel < 1.0 {
		t.Errorf("Timeloop geomean EDP %.2fx should not beat Sunstone", tlf.GeomeanEDPRel)
	}
	// Wall-clock comparisons (Fig. 6b's 800x gaps) are meaningful only with
	// the full Table V budgets; the committed EXPERIMENTS.md run covers them.
	out := RenderRuns("fig6", runs) + RenderSummaries(sums)
	if !strings.Contains(out, "mttkrp_nell2") {
		t.Error("render missing workloads")
	}
	t.Log("\n" + out)
}

// TestFig7Shape asserts: dMaze rejects asymmetric layers; Sunstone valid
// everywhere with best-or-tied geomean EDP among the directed tools.
func TestFig7Shape(t *testing.T) {
	runs := Fig7(quick())
	sums := Summarize(runs)
	byTool := map[string]Summary{}
	for _, s := range sums {
		byTool[s.Tool] = s
	}
	if byTool["Sunstone"].Invalid != 0 {
		t.Fatal("Sunstone must map every Inception weight-update layer")
	}
	if byTool["dMaze-fast"].Invalid == 0 {
		t.Error("dMaze should reject at least the asymmetric layers")
	}
	for _, tool := range []string{"dMaze-fast", "dMaze-slow", "INTER", "TL-fast", "TL-slow"} {
		if s, ok := byTool[tool]; ok && s.Invalid < s.Layers && s.GeomeanEDPRel < 0.95 {
			t.Errorf("%s geomean EDP %.2fx materially beats Sunstone", tool, s.GeomeanEDPRel)
		}
	}
	t.Log("\n" + RenderRuns("fig7", runs) + RenderSummaries(sums))
}

// TestFig8Shape asserts the Simba results: Sunstone valid on all layers;
// CoSA faster but mostly invalid; Timeloop slower with worse-or-equal EDP.
func TestFig8Shape(t *testing.T) {
	runs := Fig8(quick())
	sums := Summarize(runs)
	byTool := map[string]Summary{}
	for _, s := range sums {
		byTool[s.Tool] = s
	}
	sun := byTool["Sunstone"]
	if sun.Invalid != 0 {
		t.Fatal("Sunstone must map every ResNet layer on Simba")
	}
	cosa := byTool["CoSA"]
	if cosa.TotalSeconds > sun.TotalSeconds {
		t.Error("CoSA should finish scheduling faster than Sunstone (Fig. 8b)")
	}
	if cosa.Invalid == 0 {
		t.Error("most CoSA mappings on Simba should be invalid (Section V-B3)")
	}
	tl := byTool["TL-fast"]
	if tl.Invalid < tl.Layers && tl.GeomeanEDPRel < 0.95 {
		t.Errorf("Timeloop geomean EDP %.2fx materially beats Sunstone", tl.GeomeanEDPRel)
	}
	t.Log("\n" + RenderRuns("fig8", runs) + RenderSummaries(sums))
}

// TestTable6Shape asserts: intra-level order does not change quality much;
// top-down examines far more candidates.
func TestTable6Shape(t *testing.T) {
	rows := Table6(quick())
	if len(rows) != 4 {
		t.Fatalf("Table VI has 4 rows, got %d", len(rows))
	}
	base := rows[2] // bottom-up default (ordering->tiling->unrolling)
	for _, r := range rows[:3] {
		ratio := r.GeomeanEDP / base.GeomeanEDP
		if ratio > 1.05 || ratio < 0.95 {
			t.Errorf("intra-level order changed EDP by %.2fx (%s)", ratio, r.IntraLevel)
		}
	}
	td := rows[3]
	if td.SpaceSize <= 3*base.SpaceSize {
		t.Errorf("top-down space (%d) should far exceed bottom-up (%d)", td.SpaceSize, base.SpaceSize)
	}
	if td.GeomeanEDP > 4*base.GeomeanEDP || td.GeomeanEDP < base.GeomeanEDP/4 {
		t.Errorf("top-down EDP %.2e too far from bottom-up %.2e", td.GeomeanEDP, base.GeomeanEDP)
	}
	t.Log("\n" + RenderTable6(rows))
}

// TestFig9Shape asserts: optimized execution several times more efficient
// than naive; instruction and reordering overheads small.
func TestFig9Shape(t *testing.T) {
	r, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.TotalNaivePJ / r.TotalOptimizedPJ
	if ratio < 2 {
		t.Errorf("optimized should be at least 2x more efficient, got %.2fx", ratio)
	}
	if r.InstrFraction > 0.15 {
		t.Errorf("instruction overhead %.1f%% too high", 100*r.InstrFraction)
	}
	if r.ReorderFraction > 0.05 {
		t.Errorf("reordering overhead %.1f%% too high", 100*r.ReorderFraction)
	}
	if r.TotalInstrs <= 0 {
		t.Error("no instructions generated")
	}
	t.Log("\n" + RenderFig9(r))
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if Geomean(nil) != 1 {
		t.Error("geomean of empty should be 1")
	}
}

// TestDataflowSpread reproduces the intro's motivation: fixed dataflows
// trail the searched mapping by large factors.
func TestDataflowSpread(t *testing.T) {
	rows := DataflowSpread(quick())
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	var base float64
	worst := 1.0
	for _, r := range rows {
		if r.Dataflow == "searched (Sunstone)" {
			base = r.EDP
		}
	}
	if base <= 0 {
		t.Fatal("searched row missing")
	}
	for _, r := range rows {
		if !r.Valid {
			continue
		}
		if ratio := r.EDP / base; ratio > worst {
			worst = ratio
		}
	}
	if worst < 2 {
		t.Errorf("dataflow spread only %.2fx; expected the intro's order-of-magnitude gap", worst)
	}
	t.Log("\n" + RenderSpread(rows))
}

func TestRunsCSV(t *testing.T) {
	runs := []ToolRun{
		{Tool: "Sunstone", Workload: "l1", Valid: true, EDP: 1e15, EnergyPJ: 2e9, Cycles: 5e5, Seconds: 0.5,
			Attempts: 4, Fallback: "innermost-fit", BoundPruned: 37, SeedEDP: 2e15},
		{Tool: "dMaze-fast", Workload: "l1", Valid: false, Reason: "asymmetric, unsupported"},
	}
	s := RunsCSV(runs)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,tool,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[0], ",attempts,fallback,") {
		t.Errorf("header missing resilience columns: %q", lines[0])
	}
	if !strings.Contains(lines[0], ",bound_pruned,seed_edp,") {
		t.Errorf("header missing analytical columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], ",4,innermost-fit,") {
		t.Errorf("resilient run lost its attempts/fallback cells: %q", lines[1])
	}
	if !strings.Contains(lines[1], ",37,2e+15,") {
		t.Errorf("analytical cells missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], ",0,,") {
		t.Errorf("plain run should carry empty resilience cells: %q", lines[2])
	}
	if !strings.Contains(lines[2], "asymmetric; unsupported") {
		t.Errorf("commas in reasons must be escaped: %q", lines[2])
	}
}

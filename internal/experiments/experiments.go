// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on this repository's substrates. Each driver
// returns structured rows plus a rendered text table; cmd/experiments and
// the root bench suite are thin wrappers around these functions.
//
// Wall-clock scaling: the paper lets Timeloop run up to one hour per layer
// on an 8-core Xeon. The default Config scales every search budget down so
// a full regeneration takes minutes, which only *flatters* Timeloop's
// time-to-solution — the qualitative gaps (Sunstone orders of magnitude
// faster at equal-or-better EDP) are preserved and typically understated.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/registry"
	"sunstone/internal/baselines/timeloop"
	"sunstone/internal/core"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// Config scales the experiment budgets.
type Config struct {
	// Quick shrinks layer sets and search budgets for CI-speed runs.
	Quick bool
	// Seed drives every randomized baseline.
	Seed int64
	// LayerTimeout, when positive, bounds each tool's per-workload search
	// wall-clock via the anytime contract: a run that hits the deadline
	// still reports its best mapping so far, with ToolRun.Stopped noting
	// the early stop. Zero means every tool runs its own natural budget.
	LayerTimeout time.Duration
	// Ctx, when non-nil, is the base context every search runs under —
	// cmd/experiments installs its -trace collector here so a whole
	// figure regeneration exports as one Chrome trace. Nil means
	// context.Background().
	Ctx context.Context
	// Resilience, when non-nil, routes every Sunstone cell through the
	// graceful-degradation path (core.OptimizeResilient); the attempt count
	// and any fallback used land in the ToolRun and the runs CSV. Nil is the
	// plain single-attempt search the committed numbers use.
	Resilience *core.RetryPolicy
	// Threads sets every search's intra-search worker-pool size
	// (Options.Threads). Zero means all cores. Results are identical at
	// any value — only wall-clock changes — so the committed numbers do
	// not depend on it.
	Threads int
	// Analytical, when non-nil, overrides the analytical-layer toggles
	// (Options.Analytical) on every Sunstone cell: seed incumbent and
	// admissible bound pruning. Nil keeps the library default (both on).
	Analytical *core.AnalyticalOptions
}

// options applies the Config-wide search knobs to one experiment's Options.
func (c Config) options(o core.Options) core.Options {
	o.Threads = c.Threads
	if c.Analytical != nil {
		an := *c.Analytical
		o.Analytical = &an
	}
	return o
}

// ctx returns the configured base context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// tools resolves baseline registry names (internal/baselines/registry) to
// fresh mappers, overriding the Timeloop entries with this Config's
// wall-clock-scaled budgets. Names are compile-time constants in the Fig
// drivers below, so an unknown one is a programming error.
func (c Config) tools(names ...string) []baselines.Mapper {
	out := make([]baselines.Mapper, 0, len(names))
	for _, name := range names {
		e, ok := registry.Lookup(name)
		if !ok {
			panic("experiments: unknown baseline registry name " + name)
		}
		m := e.New()
		if tl, isTL := m.(*timeloop.Mapper); isTL {
			switch name {
			case "timeloop-fast":
				tl.Cfg = c.tlFast()
			case "timeloop-slow":
				tl.Cfg = c.tlSlow()
			}
		}
		out = append(out, m)
	}
	return out
}

// DefaultConfig is the configuration the committed EXPERIMENTS.md numbers
// were produced with.
func DefaultConfig() Config { return Config{Quick: false, Seed: 1} }

// tlFast/tlSlow return the Table V Timeloop configurations with wall-clock
// budgets scaled per Config.
func (c Config) tlFast() timeloop.Config {
	cfg := timeloop.Fast()
	cfg.Seed = c.Seed
	if c.Quick {
		cfg.TO, cfg.MaxTime = 2000, 2*time.Second
	} else {
		cfg.MaxTime = 15 * time.Second
	}
	return cfg
}

func (c Config) tlSlow() timeloop.Config {
	cfg := timeloop.Slow()
	cfg.Seed = c.Seed
	if c.Quick {
		cfg.TO, cfg.VC, cfg.MaxTime = 8000, 300, 4*time.Second
	} else {
		cfg.MaxTime = 45 * time.Second
	}
	return cfg
}

// ToolRun is one (tool, workload) cell of a figure.
type ToolRun struct {
	Tool     string
	Workload string
	EDP      float64
	EnergyPJ float64
	Cycles   float64
	// Seconds is the tool's wall-clock time-to-solution for this cell.
	Seconds float64
	Valid   bool
	Reason  string
	// Stopped is empty for a run that completed naturally; otherwise the
	// StopReason string ("deadline", "canceled", "budget") of an anytime
	// early return — the EDP then reflects the best mapping found so far.
	Stopped string
	// Attempts counts the resilient path's tries (0 = plain single-attempt
	// path); Fallback names the fallback mapper that produced the result
	// when the primary search degraded. See Config.Resilience.
	Attempts int
	Fallback string
	// BoundPruned counts candidates the admissible analytical lower bound
	// cut before evaluation; SeedEDP is the closed-form seed mapping's EDP
	// (0 when seeding was off or the seed failed). Sunstone cells only.
	BoundPruned uint64
	SeedEDP     float64
	// Group renders a network-level run's chosen fusion cut — groups
	// joined by '|', members within a group by '+' — and FusedEDP the
	// fused schedule's whole-network EDP (the unfused baseline lands in
	// EDP on the matching Sunstone row). Fusion-experiment cells only.
	Group    string
	FusedEDP float64
}

// stoppedLabel renders a StopReason for ToolRun.Stopped: empty when the
// search ran to completion.
func stoppedLabel(r anytime.StopReason) string {
	if r == anytime.Complete {
		return ""
	}
	return r.String()
}

// runSunstone wraps the optimizer as a ToolRun producer; cfg.LayerTimeout
// bounds the search via Options.Timeout. The search runs through eng, the
// figure-wide Engine, so a workload appearing in several cells (or shared
// with a baseline via UseSessions) compiles its problem artifacts once.
func runSunstone(cfg Config, eng *core.Engine, w *tensor.Workload, a *arch.Arch) ToolRun {
	opt := cfg.options(core.Options{Timeout: cfg.LayerTimeout})
	var res core.Result
	var err error
	if cfg.Resilience != nil {
		res, err = eng.OptimizeResilient(cfg.ctx(), w, a, opt, *cfg.Resilience)
	} else {
		res, err = eng.OptimizeContext(cfg.ctx(), w, a, opt)
	}
	tr := ToolRun{Tool: "Sunstone", Workload: w.Name}
	if err != nil {
		tr.Reason = err.Error()
		tr.Attempts = len(res.Attempts)
		return tr
	}
	tr.EDP = res.Report.EDP
	tr.EnergyPJ = res.Report.EnergyPJ
	tr.Cycles = res.Report.Cycles
	tr.Seconds = res.Elapsed.Seconds()
	tr.Valid = res.Report.Valid
	tr.Stopped = stoppedLabel(res.Stopped)
	tr.Attempts = len(res.Attempts)
	tr.Fallback = res.FallbackUsed
	tr.BoundPruned = res.Stats.BoundPruned
	tr.SeedEDP = res.SeedEDP
	return tr
}

// runBaseline runs one prior-art mapper under cfg.LayerTimeout (via the
// MapContext anytime contract) so head-to-head wall-clock budgets are fair.
// Mappers that support session injection share eng's cached cost sessions,
// so the per-(workload, arch) tables behind the fast-path evaluator are
// built once per figure rather than once per (tool, workload) cell.
func runBaseline(cfg Config, eng *core.Engine, m baselines.Mapper, w *tensor.Workload, a *arch.Arch) ToolRun {
	if s, ok := m.(interface {
		UseSessions(baselines.SessionSource)
	}); ok {
		s.UseSessions(eng)
	}
	ctx := cfg.ctx()
	if cfg.LayerTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.LayerTimeout)
		defer cancel()
	}
	r := m.MapContext(ctx, w, a)
	tr := ToolRun{
		Tool: m.Name(), Workload: w.Name,
		Seconds: r.Elapsed.Seconds(), Valid: r.Valid, Reason: r.InvalidReason,
		Stopped: stoppedLabel(r.Stopped),
	}
	if r.Valid {
		tr.EDP = r.Report.EDP
		tr.EnergyPJ = r.Report.EnergyPJ
		tr.Cycles = r.Report.Cycles
	}
	return tr
}

// RenderRuns renders tool-run rows grouped by workload: EDP (normalized to
// Sunstone's) and time-to-solution — the two panels of Figs. 6-8.
func RenderRuns(title string, runs []ToolRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	byWorkload := map[string][]ToolRun{}
	var names []string
	for _, r := range runs {
		if _, ok := byWorkload[r.Workload]; !ok {
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for _, wname := range names {
		rows := byWorkload[wname]
		var sunEDP float64
		for _, r := range rows {
			if r.Tool == "Sunstone" {
				sunEDP = r.EDP
			}
		}
		fmt.Fprintf(&b, "  %s\n", wname)
		for _, r := range rows {
			note := ""
			if r.Stopped != "" {
				note = "  [stopped: " + r.Stopped + "]"
			}
			if !r.Valid {
				fmt.Fprintf(&b, "    %-12s INVALID (%s)  time %.2fs%s\n", r.Tool, r.Reason, r.Seconds, note)
				continue
			}
			rel := r.EDP / sunEDP
			fmt.Fprintf(&b, "    %-12s EDP %.3e (%.2fx Sunstone)  time %.2fs%s\n", r.Tool, r.EDP, rel, r.Seconds, note)
		}
	}
	return b.String()
}

// Geomean returns the geometric mean of xs (1 for empty).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Summary aggregates a figure's runs: per-tool geomean EDP ratio vs
// Sunstone (valid layers only), invalid counts, and total time.
type Summary struct {
	Tool          string
	GeomeanEDPRel float64 // geomean of tool EDP / Sunstone EDP over co-valid layers
	Invalid       int
	Layers        int
	TotalSeconds  float64
	SpeedupVsSun  float64 // tool time / Sunstone time (total)
}

// Summarize computes per-tool aggregates for a set of runs.
func Summarize(runs []ToolRun) []Summary {
	sunEDP := map[string]float64{}
	sunTime := 0.0
	for _, r := range runs {
		if r.Tool == "Sunstone" {
			sunEDP[r.Workload] = r.EDP
			sunTime += r.Seconds
		}
	}
	byTool := map[string]*Summary{}
	var order []string
	for _, r := range runs {
		s, ok := byTool[r.Tool]
		if !ok {
			s = &Summary{Tool: r.Tool}
			byTool[r.Tool] = s
			order = append(order, r.Tool)
		}
		s.Layers++
		s.TotalSeconds += r.Seconds
		if !r.Valid {
			s.Invalid++
		}
	}
	for _, tool := range order {
		s := byTool[tool]
		var ratios []float64
		for _, r := range runs {
			if r.Tool == tool && r.Valid && sunEDP[r.Workload] > 0 {
				ratios = append(ratios, r.EDP/sunEDP[r.Workload])
			}
		}
		s.GeomeanEDPRel = Geomean(ratios)
		if sunTime > 0 {
			s.SpeedupVsSun = s.TotalSeconds / sunTime
		}
	}
	out := make([]Summary, 0, len(order))
	for _, tool := range order {
		out = append(out, *byTool[tool])
	}
	return out
}

// RenderSummaries renders per-tool aggregates.
func RenderSummaries(sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-12s %-18s %-10s %s\n", "tool", "geomean EDP vs sun", "invalid", "total time")
	for _, s := range sums {
		fmt.Fprintf(&b, "  %-12s %-18.2f %d/%-8d %.1fs (%.0fx Sunstone)\n",
			s.Tool, s.GeomeanEDPRel, s.Invalid, s.Layers, s.TotalSeconds, s.SpeedupVsSun)
	}
	return b.String()
}

// inceptionWULayers returns the Fig. 7 workloads (weight update, batch 16).
func inceptionWULayers(quick bool) []*tensor.Workload {
	shapes := workloads.InceptionV3
	if quick {
		shapes = []workloads.ConvShape{shapes[0], shapes[4], shapes[6], shapes[8]}
	}
	var ws []*tensor.Workload
	for _, cs := range shapes {
		ws = append(ws, cs.WeightUpdate(16))
	}
	return ws
}

// resnetLayers returns ResNet-18 inference workloads at the given batch.
func resnetLayers(quick bool, batch int) []*tensor.Workload {
	shapes := workloads.ResNet18
	if quick {
		shapes = []workloads.ConvShape{shapes[0], shapes[1], shapes[5], shapes[10]}
	}
	var ws []*tensor.Workload
	for _, cs := range shapes {
		ws = append(ws, cs.Inference(batch))
	}
	return ws
}

// Fig6 — non-DNN tensor kernels (MTTKRP rank 32, TTMc rank 8, SDDMM rank
// 512) on the conventional accelerator: Sunstone vs Timeloop fast/slow
// (Figs. 6a EDP and 6b time-to-solution).
func Fig6(cfg Config) []ToolRun {
	ws := []*tensor.Workload{
		workloads.MTTKRPOn(workloads.Nell2),
		workloads.TTMcOn(workloads.Nell2),
		workloads.SDDMMOn(workloads.Bcsstk17),
	}
	if !cfg.Quick {
		ws = append(ws,
			workloads.MTTKRPOn(workloads.Netflix),
			workloads.MTTKRPOn(workloads.Poisson1),
			workloads.TTMcOn(workloads.Netflix),
			workloads.TTMcOn(workloads.Poisson1),
			workloads.SDDMMOn(workloads.Cant),
		)
	}
	a := arch.Conventional()
	eng := core.NewEngine(0)
	var runs []ToolRun
	for _, w := range ws {
		runs = append(runs, runSunstone(cfg, eng, w, a))
		for _, m := range cfg.tools("timeloop-fast", "timeloop-slow") {
			runs = append(runs, runBaseline(cfg, eng, m, w, a))
		}
	}
	return runs
}

// Fig7 — weight update (batch 16) of Inception-v3 layers on the
// conventional accelerator: Sunstone vs TL fast/slow, dMaze fast/slow,
// Interstellar; invalid results flagged (Figs. 7a/7b).
func Fig7(cfg Config) []ToolRun {
	a := arch.Conventional()
	eng := core.NewEngine(0)
	var runs []ToolRun
	for _, w := range inceptionWULayers(cfg.Quick) {
		runs = append(runs, runSunstone(cfg, eng, w, a))
		for _, m := range cfg.tools("timeloop-fast", "timeloop-slow", "dmaze-fast", "dmaze-slow", "interstellar") {
			runs = append(runs, runBaseline(cfg, eng, m, w, a))
		}
	}
	return runs
}

// Fig8 — inference (batch 16) of ResNet-18 layers on the Simba-like
// accelerator: Sunstone vs Timeloop and CoSA (Figs. 8a/8b). dMazeRunner and
// Interstellar cannot target multi-spatial-level machines.
func Fig8(cfg Config) []ToolRun {
	a := arch.Simba()
	eng := core.NewEngine(0)
	var runs []ToolRun
	for _, w := range resnetLayers(cfg.Quick, 16) {
		runs = append(runs, runSunstone(cfg, eng, w, a))
		names := []string{"timeloop-fast"}
		if !cfg.Quick {
			names = append(names, "timeloop-slow")
		}
		names = append(names, "cosa")
		for _, m := range cfg.tools(names...) {
			runs = append(runs, runBaseline(cfg, eng, m, w, a))
		}
	}
	return runs
}

// sortedKeys returns map keys sorted (shared by renderers).
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// RunsCSV renders tool runs as CSV (workload,tool,valid,edp,energy_pj,
// cycles,seconds,stopped,attempts,fallback,bound_pruned,seed_edp,group,
// fused_edp,reason) for plotting the figures externally. The stopped column
// is empty for naturally-completed runs and otherwise holds the StopReason
// string of an anytime early return; attempts is 0 and fallback empty unless
// the run went through the resilient path (Config.Resilience); bound_pruned
// and seed_edp report the analytical layer's work on Sunstone cells (0 for
// baselines and when the layer is off); group and fused_edp carry the fusion
// experiment's chosen cut and whole-network fused EDP (empty/0 on per-layer
// cells).
func RunsCSV(runs []ToolRun) string {
	var b strings.Builder
	b.WriteString("workload,tool,valid,edp,energy_pj,cycles,seconds,stopped,attempts,fallback,bound_pruned,seed_edp,group,fused_edp,reason\n")
	for _, r := range runs {
		reason := strings.ReplaceAll(r.Reason, ",", ";")
		fmt.Fprintf(&b, "%s,%s,%t,%g,%g,%g,%.3f,%s,%d,%s,%d,%g,%s,%g,%s\n",
			r.Workload, r.Tool, r.Valid, r.EDP, r.EnergyPJ, r.Cycles, r.Seconds, r.Stopped,
			r.Attempts, r.Fallback, r.BoundPruned, r.SeedEDP, r.Group, r.FusedEDP, reason)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/diannao"
	"sunstone/internal/dncompiler"
)

// Fig9Layer holds one layer's naive-vs-optimized comparison on the
// DianNao-like machine.
type Fig9Layer struct {
	Layer        string
	NaivePJ      float64
	OptimizedPJ  float64
	Instructions int64
	Passes       int64
	// Breakdown is the optimized execution's per-component energy.
	Breakdown map[string]float64
}

// Fig9Result aggregates the overhead analysis of Section V-D.
type Fig9Result struct {
	Layers []Fig9Layer
	// Totals over all layers.
	TotalNaivePJ     float64
	TotalOptimizedPJ float64
	TotalInstrs      int64
	// InstrFraction / ReorderFraction are the overheads as fractions of
	// the optimized total (paper: ~5% and ~0.2%).
	InstrFraction   float64
	ReorderFraction float64
	TotalBreakdown  map[string]float64
}

// Fig9 runs the tiling/unrolling overhead analysis: Sunstone maps each
// ResNet-18 layer onto the DianNao-like accelerator, the compiler lowers the
// mapping to 256-bit instructions, the simulator counts events, and the
// energies are compared against naive DRAM streaming (Figs. 9a/9b).
func Fig9(cfg Config) (Fig9Result, error) {
	a := arch.DianNao()
	res := Fig9Result{TotalBreakdown: map[string]float64{}}
	var instrPJ, reorderPJ float64

	for i, w := range resnetLayers(cfg.Quick, 1) {
		opt, err := core.Optimize(w, a, cfg.options(core.Options{}))
		if err != nil {
			return res, fmt.Errorf("%s: %v", w.Name, err)
		}
		sim := diannao.NewSim(diannao.Default())
		sum, err := dncompiler.Compile(opt.Mapping, sim.Exec)
		if err != nil {
			return res, fmt.Errorf("%s: compile: %v", w.Name, err)
		}
		if sim.Err() != nil {
			return res, fmt.Errorf("%s: simulate: %v", w.Name, sim.Err())
		}
		// Runtime reordering amortizes away for all layers but the first:
		// weights are reordered offline when the model is deployed, and
		// each layer's ofmap is written tile-by-tile directly in the next
		// layer's preferred layout, so only the network input pays a
		// runtime rearrangement (hence the paper's ~0.2% overhead).
		reorder := int64(0)
		if i == 0 {
			reorder = int64(w.Tensor(arch.Ifmap).Footprint(w.FullExtents()))
		}
		breakdown := sim.Stats.Energy(diannao.Default(), true, reorder)
		layer := Fig9Layer{
			Layer:        w.Name,
			NaivePJ:      diannao.Total(dncompiler.NaiveEnergy(w)),
			OptimizedPJ:  diannao.Total(breakdown),
			Instructions: sum.Instructions,
			Passes:       sum.Passes,
			Breakdown:    breakdown,
		}
		res.Layers = append(res.Layers, layer)
		res.TotalNaivePJ += layer.NaivePJ
		res.TotalOptimizedPJ += layer.OptimizedPJ
		res.TotalInstrs += sum.Instructions
		instrPJ += breakdown["Instr"]
		reorderPJ += breakdown["Reorder"]
		for k, v := range breakdown {
			res.TotalBreakdown[k] += v
		}
	}
	if res.TotalOptimizedPJ > 0 {
		res.InstrFraction = instrPJ / res.TotalOptimizedPJ
		res.ReorderFraction = reorderPJ / res.TotalOptimizedPJ
	}
	return res, nil
}

// RenderFig9 renders the overhead analysis.
func RenderFig9(r Fig9Result) string {
	var b strings.Builder
	b.WriteString("Fig. 9 — tiling and unrolling overhead analysis (ResNet-18 on DianNao-like)\n")
	fmt.Fprintf(&b, "  %-10s %-12s %-12s %-8s %-10s %s\n", "layer", "naive pJ", "optimized pJ", "ratio", "instrs", "passes")
	for _, l := range r.Layers {
		fmt.Fprintf(&b, "  %-10s %-12.3e %-12.3e %-8.2f %-10d %d\n",
			l.Layer, l.NaivePJ, l.OptimizedPJ, l.NaivePJ/l.OptimizedPJ, l.Instructions, l.Passes)
	}
	fmt.Fprintf(&b, "  TOTAL: naive %.3e pJ, optimized %.3e pJ -> %.2fx more energy-efficient\n",
		r.TotalNaivePJ, r.TotalOptimizedPJ, r.TotalNaivePJ/r.TotalOptimizedPJ)
	fmt.Fprintf(&b, "  overheads: instructions %.2f%%, data reordering %.2f%% of optimized energy (%d instrs total)\n",
		100*r.InstrFraction, 100*r.ReorderFraction, r.TotalInstrs)
	b.WriteString("  energy breakdown (Fig. 9b):\n")
	for _, k := range sortedKeys(r.TotalBreakdown) {
		fmt.Fprintf(&b, "    %-10s %12.3e pJ (%.1f%%)\n", k, r.TotalBreakdown[k],
			100*r.TotalBreakdown[k]/r.TotalOptimizedPJ)
	}
	return b.String()
}

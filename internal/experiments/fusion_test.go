package experiments

import (
	"strings"
	"testing"
)

// TestFusionShape asserts the fusion experiment's core claim on quick
// budgets: every cell produces a paired (unfused, fused) row, the fused EDP
// is never worse than the unfused baseline, and the rendered cut tiles the
// chain (pipes count groups, pluses count fused members).
func TestFusionShape(t *testing.T) {
	runs := Fusion(quick())
	if len(runs) == 0 || len(runs)%2 != 0 {
		t.Fatalf("runs = %d, want paired rows", len(runs))
	}
	unfused := map[string]ToolRun{}
	for _, r := range runs {
		if r.Tool == "Sunstone" {
			unfused[r.Workload] = r
		}
	}
	fusedSomewhere := false
	for _, r := range runs {
		if r.Tool != "Sunstone-fused" {
			continue
		}
		if !r.Valid {
			t.Fatalf("%s failed: %s", r.Workload, r.Reason)
		}
		base, ok := unfused[r.Workload]
		if !ok || !base.Valid {
			t.Fatalf("%s has no unfused baseline row", r.Workload)
		}
		if r.EDP > base.EDP {
			t.Errorf("%s: fused EDP %g worse than unfused %g", r.Workload, r.EDP, base.EDP)
		}
		if r.FusedEDP != r.EDP {
			t.Errorf("%s: FusedEDP %g != EDP %g", r.Workload, r.FusedEDP, r.EDP)
		}
		if r.Group == "" {
			t.Errorf("%s: missing the rendered cut", r.Workload)
		}
		if strings.Contains(r.Group, "+") {
			fusedSomewhere = true
		}
	}
	if !fusedSomewhere {
		t.Error("no cell chose a fused group; the experiment shows nothing")
	}
	out := RenderFusion(runs)
	if !strings.Contains(out, "transformer@") || !strings.Contains(out, "cut:") {
		t.Errorf("render missing cells:\n%s", out)
	}
	t.Log("\n" + out)

	csv := RunsCSV(runs)
	if !strings.Contains(csv, ",group,fused_edp,") {
		t.Errorf("csv header missing fusion columns: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

package experiments

import (
	"fmt"
	"strings"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/network"
	"sunstone/internal/workloads"
)

// Fusion — fused vs unfused whole-network scheduling: the fusion-cut search
// (a fused group keeps its intermediate tensors resident on chip, paying
// reserved buffer capacity for zero DRAM handoff traffic) against the
// per-layer baseline it solves in the same run. Each network×accelerator
// cell yields two rows: a "Sunstone" row with the unfused EDP and a
// "Sunstone-fused" row with the fused EDP and the chosen cut in Group.
// The fused row can never be worse — the all-singleton cut is always a
// candidate — so the interesting output is how much better it is and where
// the cut lands; on accelerators whose buffers cannot hold a handoff
// (capacity-infeasible pins) the cut honestly degenerates to all
// singletons and the two rows agree.
func Fusion(cfg Config) []ToolRun {
	type netCase struct {
		name  string
		build func() (*network.Network, error)
	}
	nets := []netCase{
		{"resnet18", func() (*network.Network, error) {
			shapes, repeats := workloads.ResNet18, workloads.ResNet18Repeats()
			if cfg.Quick {
				shapes, repeats = shapes[:3], repeats[:3]
			}
			return network.FromConvShapes("resnet18", shapes, 1, repeats)
		}},
		{"transformer", func() (*network.Network, error) {
			if cfg.Quick {
				return network.TransformerChain(64, 64, 256), nil
			}
			return network.TransformerChain(512, 512, 2048), nil
		}},
	}
	arches := []*arch.Arch{arch.Conventional()}
	if !cfg.Quick {
		arches = append(arches, arch.Simba())
	}

	var runs []ToolRun
	for _, a := range arches {
		for _, nc := range nets {
			net, err := nc.build()
			label := nc.name + "@" + a.Name
			if err != nil {
				runs = append(runs, ToolRun{Tool: "Sunstone-fused", Workload: label, Reason: err.Error()})
				continue
			}
			eng := core.NewEngine(0)
			opt := cfg.options(core.Options{Timeout: cfg.LayerTimeout})
			if cfg.Quick {
				opt.BeamWidth, opt.TilesPerStep, opt.UnrollsPerStep = 4, 8, 1
			}
			var fopt core.FusionOptions
			fopt.Resilience = cfg.Resilience
			nr, err := eng.SolveNetworkFused(cfg.ctx(), net, a, opt, fopt)
			if err != nil {
				runs = append(runs, ToolRun{Tool: "Sunstone-fused", Workload: label, Reason: err.Error()})
				continue
			}
			secs := nr.Elapsed.Seconds()
			runs = append(runs,
				ToolRun{
					Tool: "Sunstone", Workload: label, Valid: true,
					EDP: nr.UnfusedEDP, EnergyPJ: nr.UnfusedEnergyPJ, Cycles: nr.UnfusedCycles,
					Seconds: secs, Stopped: stoppedLabel(nr.Stopped),
				},
				ToolRun{
					Tool: "Sunstone-fused", Workload: label, Valid: true,
					EDP: nr.EDP, EnergyPJ: nr.TotalEnergyPJ, Cycles: nr.TotalCycles,
					Seconds: secs, Stopped: stoppedLabel(nr.Stopped),
					Group: renderCut(nr.Groups), FusedEDP: nr.EDP,
				})
		}
	}
	return runs
}

// renderCut renders a fusion cut compactly: groups joined by '|', members
// within a group by '+'.
func renderCut(groups []core.GroupResult) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = strings.Join(g.Layers, "+")
	}
	return strings.Join(parts, "|")
}

// RenderFusion renders the fusion experiment as a text table: per
// network×accelerator, the unfused and fused EDP, the improvement factor,
// and the chosen cut.
func RenderFusion(runs []ToolRun) string {
	var b strings.Builder
	b.WriteString("Fusion — fused vs unfused network scheduling\n")
	unfused := map[string]float64{}
	for _, r := range runs {
		if r.Tool == "Sunstone" {
			unfused[r.Workload] = r.EDP
		}
	}
	for _, r := range runs {
		if r.Tool != "Sunstone-fused" {
			continue
		}
		if !r.Valid {
			fmt.Fprintf(&b, "  %-28s FAILED (%s)\n", r.Workload, r.Reason)
			continue
		}
		base := unfused[r.Workload]
		gain := base / r.EDP
		note := ""
		if r.Stopped != "" {
			note = "  [stopped: " + r.Stopped + "]"
		}
		fmt.Fprintf(&b, "  %-28s unfused EDP %.3e -> fused %.3e (%.2fx)  time %.1fs%s\n",
			r.Workload, base, r.EDP, gain, r.Seconds, note)
		fmt.Fprintf(&b, "  %-28s cut: %s\n", "", r.Group)
	}
	return b.String()
}

package journal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the replay path as a segment
// file and asserts the recovery contract rather than just "no panic":
// Open must succeed, every replayed record must have survived a checksum,
// the truncated tail must leave a file that a second Open replays
// identically with zero corruption counted (truncation is convergent),
// and the journal must stay appendable afterwards.
func FuzzJournalReplay(f *testing.F) {
	frame := func(body string) []byte {
		b := []byte(body)
		out := make([]byte, headerSize+len(b))
		binary.LittleEndian.PutUint32(out[0:4], uint32(len(b)))
		binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(b, crcTable))
		copy(out[headerSize:], b)
		return out
	}
	good := frame(`{"kind":"submit","job":"j000001","payload":{"a":1}}`)
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte{}, good...), good...))
	f.Add(good[:len(good)-3]) // torn tail
	flipped := append([]byte{}, good...)
	flipped[headerSize+4] ^= 0xff // body corruption
	f.Add(append(append([]byte{}, good...), flipped...))
	huge := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(huge[0:4], maxRecord+1) // absurd length field
	f.Add(huge)
	f.Add(frame(`not json at all`)) // valid frame, invalid record body

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-00000000.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		first := j.TakeReplayed()
		st := j.Stats()
		if st.CorruptTruncated > 1 {
			t.Fatalf("one segment truncated %d times", st.CorruptTruncated)
		}
		// The journal must remain writable after any recovery.
		if err := j.Append(Record{Kind: KindState, Job: "j000001"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Recovery converges: the truncated file replays clean.
		j2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer j2.Close()
		second := j2.TakeReplayed()
		if st2 := j2.Stats(); st2.CorruptTruncated != 0 || st2.CorruptQuarantined != 0 {
			t.Fatalf("second replay still sees corruption: %+v", st2)
		}
		if len(second) != len(first)+1 { // +1 for the post-recovery append
			t.Fatalf("second replay: %d records, first gave %d (+1 append)", len(second), len(first))
		}
		for i := range first {
			if first[i].Kind != second[i].Kind || first[i].Job != second[i].Job ||
				string(first[i].Payload) != string(second[i].Payload) {
				t.Fatalf("record %d changed across reopens", i)
			}
		}
	})
}

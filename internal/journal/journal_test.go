package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sunstone/internal/faults"
)

func rec(kind Kind, job string, payload string) Record {
	return Record{Kind: kind, Job: job, Payload: json.RawMessage(payload)}
}

func mustOpen(t *testing.T, o Options) *Journal {
	t.Helper()
	j, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d\ngot:  %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Job != want[i].Job ||
			string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := []Record{
		rec(KindSubmit, "j000001", `{"tenant":"a"}`),
		rec(KindState, "j000001", `{"state":"running"}`),
		rec(KindCheckpoint, "j000001", `{"score":1.5}`),
		rec(KindResult, "j000001", `{"state":"done"}`),
	}
	j := mustOpen(t, Options{Dir: dir})
	if err := j.AppendDurable(want[0]); err != nil {
		t.Fatal(err)
	}
	for _, r := range want[1:3] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendDurable(want[3]); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Records != 4 || st.Fsyncs == 0 || st.Bytes == 0 {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	sameRecords(t, j2.TakeReplayed(), want)
	if got := j2.TakeReplayed(); got != nil {
		t.Fatalf("second TakeReplayed: %+v, want nil", got)
	}
	st = j2.Stats()
	if st.CorruptTruncated != 0 || st.CorruptQuarantined != 0 {
		t.Fatalf("clean reopen counted corruption: %+v", st)
	}
}

// lastSegment returns the path of the highest-index segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	idxs, err := segmentIndices(dir)
	if err != nil || len(idxs) == 0 {
		t.Fatalf("segmentIndices: %v (%d found)", err, len(idxs))
	}
	return segmentPath(dir, idxs[len(idxs)-1])
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	want := []Record{
		rec(KindSubmit, "j000001", `{"a":1}`),
		rec(KindSubmit, "j000002", `{"b":2}`),
	}
	j := mustOpen(t, Options{Dir: dir})
	for _, r := range want {
		if err := j.AppendDurable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: a partial frame at the tail.
	path := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, headerSize+3)
	binary.LittleEndian.PutUint32(torn[0:4], 100) // declares 100 bytes, only 3 present
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	sameRecords(t, j2.TakeReplayed(), want)
	if st := j2.Stats(); st.CorruptTruncated != 1 {
		t.Fatalf("CorruptTruncated = %d, want 1 (%+v)", st.CorruptTruncated, st)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir})
	if err := j.AppendDurable(rec(KindSubmit, "j000001", `{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(rec(KindResult, "j000001", `{"state":"done"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the second record's body.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := headerSize + int(binary.LittleEndian.Uint32(data[0:4]))
	data[first+headerSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	sameRecords(t, j2.TakeReplayed(), []Record{rec(KindSubmit, "j000001", `{"a":1}`)})
	if st := j2.Stats(); st.CorruptTruncated != 1 {
		t.Fatalf("CorruptTruncated = %d, want 1", st.CorruptTruncated)
	}
}

func TestSealedSegmentQuarantine(t *testing.T) {
	dir := t.TempDir()
	// Build two sealed segments by hand: Open's fresh active segment gets
	// the higher index, so after two open/append/close rounds segment 0
	// and segment 1 both hold records.
	j := mustOpen(t, Options{Dir: dir})
	if err := j.AppendDurable(rec(KindSubmit, "j000001", `{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(rec(KindSubmit, "j000002", `{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j = mustOpen(t, Options{Dir: dir})
	j.TakeReplayed()
	if err := j.AppendDurable(rec(KindSubmit, "j000003", `{"c":3}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Corrupt the second record of segment 0 — now a sealed (non-last)
	// segment. Its first record must survive; the rest is quarantined,
	// and segment 1 still replays.
	idxs, _ := segmentIndices(dir)
	if len(idxs) < 2 {
		t.Fatalf("want >= 2 segments, got %v", idxs)
	}
	path := segmentPath(dir, idxs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := headerSize + int(binary.LittleEndian.Uint32(data[0:4]))
	data[first+headerSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	sameRecords(t, j2.TakeReplayed(), []Record{
		rec(KindSubmit, "j000001", `{"a":1}`),
		rec(KindSubmit, "j000003", `{"c":3}`),
	})
	st := j2.Stats()
	if st.CorruptQuarantined != 1 || st.CorruptTruncated != 0 {
		t.Fatalf("quarantine counters: %+v", st)
	}
	// Quarantine never rewrites a sealed file.
	if after, _ := os.ReadFile(path); len(after) != len(data) {
		t.Fatalf("sealed segment rewritten: %d -> %d bytes", len(data), len(after))
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	live := []Record{
		rec(KindSubmit, "j000001", `{"keep":true}`),
		rec(KindResult, "j000001", `{"state":"done"}`),
	}
	j := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	j.SetCompactor(func() []Record { return live })
	for i := 0; i < 64; i++ {
		if err := j.Append(rec(KindCheckpoint, "j000001", fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions after 64 appends at 256-byte segments: %+v", st)
	}
	if st.Segments > 3 {
		t.Fatalf("compaction did not bound the directory: %d segments", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay = compacted live set, then whatever followed the last rotation.
	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	got := j2.TakeReplayed()
	if len(got) < len(live) {
		t.Fatalf("replayed %d records, want >= %d", len(got), len(live))
	}
	sameRecords(t, got[:len(live)], live)
	for _, r := range got[len(live):] {
		if r.Kind != KindCheckpoint {
			t.Fatalf("post-compaction record has kind %q", r.Kind)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			j := mustOpen(t, Options{Dir: t.TempDir(), Fsync: policy})
			defer j.Close()
			base := j.Stats().Fsyncs
			if err := j.Append(rec(KindState, "j000001", `{"state":"running"}`)); err != nil {
				t.Fatal(err)
			}
			plain := j.Stats().Fsyncs - base
			if policy == FsyncAlways && plain != 1 {
				t.Fatalf("always: %d fsyncs after plain append, want 1", plain)
			}
			if policy == FsyncNever && plain != 0 {
				t.Fatalf("never: %d fsyncs after plain append, want 0", plain)
			}
			// Durable appends sync inline under every policy.
			base = j.Stats().Fsyncs
			if err := j.AppendDurable(rec(KindSubmit, "j000002", `{}`)); err != nil {
				t.Fatal(err)
			}
			if got := j.Stats().Fsyncs - base; got != 1 {
				t.Fatalf("%s: %d fsyncs after durable append, want 1", policy, got)
			}
		})
	}
	if _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
}

// TestAppendUnderCorruptInjection drives every append through a heavy
// corrupt-fault rate and asserts the read-back verification keeps the
// on-disk journal pristine: a clean reopen (no injection) replays every
// record with zero corruption counted.
func TestAppendUnderCorruptInjection(t *testing.T) {
	dir := t.TempDir()
	inj, err := faults.NewInjector(7,
		faults.Rule{Site: faults.SiteJournal, Kind: faults.Corrupt, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(inj)
	j := mustOpen(t, Options{Dir: dir})
	var want []Record
	for i := 0; i < 50; i++ {
		r := rec(KindSubmit, fmt.Sprintf("j%06d", i), fmt.Sprintf(`{"i":%d}`, i))
		if err := j.AppendDurable(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, r)
	}
	j.Close()
	restore()

	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	sameRecords(t, j2.TakeReplayed(), want)
	if st := j2.Stats(); st.CorruptTruncated != 0 || st.CorruptQuarantined != 0 {
		t.Fatalf("injected write corruption reached disk: %+v", st)
	}
}

// TestReplayUnderInjection replays a clean journal through a heavy
// error+corrupt fault rate and asserts the retry loop recovers every
// record without false-positive truncation.
func TestReplayUnderInjection(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir})
	var want []Record
	for i := 0; i < 30; i++ {
		r := rec(KindCheckpoint, "j000001", fmt.Sprintf(`{"i":%d}`, i))
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	j.Close()

	inj, err := faults.NewInjector(11,
		faults.Rule{Site: faults.SiteJournal, Kind: faults.Error, Rate: 0.15},
		faults.Rule{Site: faults.SiteJournal, Kind: faults.Corrupt, Rate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(inj)
	defer restore()
	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	sameRecords(t, j2.TakeReplayed(), want)
	if st := j2.Stats(); st.CorruptTruncated != 0 {
		t.Fatalf("injected read faults truncated real records: %+v", st)
	}
}

func TestAppendErrorExhaustion(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir})
	inj, err := faults.NewInjector(3,
		faults.Rule{Site: faults.SiteJournal, Kind: faults.Error, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(inj)
	aerr := j.AppendDurable(rec(KindSubmit, "j000001", `{}`))
	restore()
	if aerr == nil {
		t.Fatal("append under 100% error injection returned nil")
	}
	if st := j.Stats(); st.AppendErrors != 1 || st.Records != 0 {
		t.Fatalf("stats after failed append: %+v", st)
	}
	j.Close()

	// The failed append left nothing behind.
	j2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if got := j2.TakeReplayed(); len(got) != 0 {
		t.Fatalf("failed append reached disk: %+v", got)
	}
}

func TestCloseIdempotentAndAppendAfterClose(t *testing.T) {
	j := mustOpen(t, Options{Dir: t.TempDir()})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := j.Append(rec(KindState, "j000001", `{}`)); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no Dir succeeded")
	}
}

// TestManualFrameCompat pins the on-disk framing: a frame built by hand
// must replay, so the format documented in the package comment is real.
func TestManualFrameCompat(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"kind":"submit","job":"j000042","payload":{"x":1}}`)
	frame := make([]byte, headerSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	copy(frame[headerSize:], body)
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, Options{Dir: dir})
	defer j.Close()
	sameRecords(t, j.TakeReplayed(), []Record{rec(KindSubmit, "j000042", `{"x":1}`)})
}

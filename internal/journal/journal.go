// Package journal implements the append-only write-ahead journal behind
// sunstoned's -data-dir durability: job submissions, state transitions,
// rate-limited best-so-far checkpoints, and terminal results are framed
// as CRC32-checksummed records across rotating segment files, replayed
// on boot, and compacted down to the live set so the directory stays
// bounded.
//
// Record framing is a fixed 8-byte header followed by the JSON body:
//
//	[length uint32 LE][crc32(IEEE) of body uint32 LE][body]
//
// A record whose checksum does not match is corrupt. Corruption in the
// final segment is treated as a torn tail — the file is truncated back
// to the last good record and writing continues. Corruption in a sealed
// (earlier) segment quarantines the rest of that segment: the good
// prefix is kept, the remainder is skipped and counted, and replay moves
// on to the next segment. Every write and every replay read consults the
// faults.SiteJournal injection site, so the chaos machinery covers the
// durability path end to end.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sunstone/internal/faults"
)

// Kind tags what a record describes; the server defines the payloads.
type Kind string

const (
	// KindSubmit records an accepted job submission (written durably
	// before the submission is acknowledged to the client).
	KindSubmit Kind = "submit"
	// KindState records a job state transition (queued → running, or an
	// abandonment); lossy-OK.
	KindState Kind = "state"
	// KindCheckpoint records the serialized best-so-far incumbent
	// mapping for a running job; lossy-OK, later records supersede.
	KindCheckpoint Kind = "checkpoint"
	// KindResult records a job's terminal status (written durably).
	KindResult Kind = "result"
)

// Record is one journal entry. Payload is an opaque JSON document owned
// by the caller; the journal only frames and checksums it.
type Record struct {
	Kind    Kind            `json:"kind"`
	Job     string          `json:"job,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Fsync policies.
const (
	// FsyncAlways syncs after every append.
	FsyncAlways = "always"
	// FsyncInterval syncs on a background ticker (Options.FsyncEvery);
	// durable appends still sync inline.
	FsyncInterval = "interval"
	// FsyncNever leaves syncing to the OS (durable appends still sync).
	FsyncNever = "never"
)

// Options configures a journal directory.
type Options struct {
	// Dir is the journal directory; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// Fsync is one of FsyncAlways, FsyncInterval, FsyncNever (default
	// interval). AppendDurable syncs inline regardless of policy: the
	// sync is the commit point a submission ack stands on.
	Fsync string
	// FsyncEvery is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncEvery time.Duration
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("journal: Options.Dir required")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	switch o.Fsync {
	case "":
		o.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return o, fmt.Errorf("journal: unknown fsync policy %q (want always|interval|never)", o.Fsync)
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	return o, nil
}

// Stats is a snapshot of journal health, surfaced via /statz and expvar.
type Stats struct {
	Records            uint64 `json:"records"`
	Bytes              int64  `json:"bytes"`
	Fsyncs             uint64 `json:"fsyncs"`
	AppendErrors       uint64 `json:"append_errors"`
	CorruptTruncated   uint64 `json:"corrupt_truncated"`
	CorruptQuarantined uint64 `json:"corrupt_quarantined"`
	Replayed           uint64 `json:"replayed"`
	Segments           int    `json:"segments"`
	Compactions        uint64 `json:"compactions"`
}

const (
	headerSize = 8
	// maxRecord bounds a single record body; a declared length past it
	// is treated as corruption, not an allocation request.
	maxRecord = 16 << 20

	// writeTries bounds the append verify-retry loop, readTries the
	// replay retry loop. Replay retries exist so *injected* read faults
	// (which re-read pristine bytes) never masquerade as real
	// corruption: at 30% injection, 16 consecutive faulted attempts has
	// probability 0.3^16 ≈ 4e-9.
	writeTries = 8
	readTries  = 16
)

var crcTable = crc32.IEEETable

// Journal is an open journal directory. Safe for concurrent use.
type Journal struct {
	opt Options

	mu        sync.Mutex
	active    *os.File // current segment, opened read-write
	activeIdx int
	size      int64 // bytes in the active segment
	sealed    int64 // bytes across sealed segments
	segments  []int // sealed segment indices, ascending
	dirty     bool  // unsynced writes pending (interval policy)
	closed    bool

	compact func() []Record // optional live-set snapshot for compaction

	records     uint64
	fsyncs      uint64
	appendErrs  uint64
	truncated   uint64
	quarantined uint64
	replayed    []Record
	compactions uint64

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the journal in o.Dir, replays every
// segment in order — truncating a torn tail, quarantining mid-file
// corruption — and starts a fresh active segment. The replayed records
// are held until TakeReplayed is called.
func Open(o Options) (*Journal, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{opt: o, stop: make(chan struct{}), done: make(chan struct{})}
	idxs, err := segmentIndices(o.Dir)
	if err != nil {
		return nil, err
	}
	next := 0
	for i, idx := range idxs {
		last := i == len(idxs)-1
		recs, n, err := j.replaySegment(segmentPath(o.Dir, idx), last)
		if err != nil {
			return nil, err
		}
		j.replayed = append(j.replayed, recs...)
		j.sealed += n
		j.segments = append(j.segments, idx)
		next = idx + 1
	}
	f, err := os.OpenFile(segmentPath(o.Dir, next), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.activeIdx = next
	if o.Fsync == FsyncInterval {
		go j.syncLoop()
	} else {
		close(j.done)
	}
	return j, nil
}

// TakeReplayed returns the records recovered at Open, in journal order,
// and releases the journal's reference to them. Later calls return nil.
func (j *Journal) TakeReplayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.replayed
	j.replayed = nil
	return r
}

// SetCompactor installs fn as the live-set snapshot used when a segment
// rotation triggers compaction. fn runs without journal locks held on
// the caller's side but with the journal's internal lock held — it must
// not call back into the journal.
func (j *Journal) SetCompactor(fn func() []Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.compact = fn
}

// Append writes rec with read-back verification but without an inline
// fsync (the fsync policy governs when it reaches stable storage). Use
// for lossy-OK records: checkpoints and state transitions.
func (j *Journal) Append(rec Record) error {
	return j.append(rec, false)
}

// AppendDurable writes rec with read-back verification and an inline
// fsync regardless of policy; when it returns nil the record is the
// caller's commit point. Use for submissions and terminal results.
func (j *Journal) AppendDurable(rec Record) error {
	return j.append(rec, true)
}

// Sync forces an fsync of the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close stops the background sync loop, syncs, and closes the active
// segment. The journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.stop)
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.syncLocked()
	if cerr := j.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns a consistent snapshot of journal health.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Records:            j.records,
		Bytes:              j.sealed + j.size,
		Fsyncs:             j.fsyncs,
		AppendErrors:       j.appendErrs,
		CorruptTruncated:   j.truncated,
		CorruptQuarantined: j.quarantined,
		Replayed:           uint64(len(j.replayed)),
		Segments:           len(j.segments) + 1,
		Compactions:        j.compactions,
	}
}

func (j *Journal) append(rec Record, durable bool) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if len(body) > maxRecord {
		return fmt.Errorf("journal: record %d bytes exceeds %d cap", len(body), maxRecord)
	}
	frame := make([]byte, headerSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	copy(frame[headerSize:], body)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if err := j.writeVerified(frame); err != nil {
		j.appendErrs++
		return err
	}
	j.records++
	j.dirty = true
	if durable || j.opt.Fsync == FsyncAlways {
		if err := j.syncLocked(); err != nil {
			j.appendErrs++
			return err
		}
	}
	if j.size >= j.opt.SegmentBytes {
		j.rotateLocked()
	}
	return nil
}

// writeVerified appends frame to the active segment, reads it back, and
// checks the stored checksum against the in-memory body. An injected
// error fault fails the attempt outright; an injected corrupt fault
// flips a byte of the on-disk copy (after the checksum was computed) so
// the read-back catches it. Either way the file is truncated back to
// the pre-attempt offset and the write retried with a fresh fault draw,
// so a nil return means the bytes on disk are exactly frame.
func (j *Journal) writeVerified(frame []byte) error {
	start := j.size
	var lastErr error
	for try := 0; try < writeTries; try++ {
		out := frame
		ferr, corrupt := faults.Fire(faults.SiteJournal)
		if ferr != nil {
			lastErr = ferr
			continue
		}
		if corrupt {
			out = append([]byte(nil), frame...)
			out[headerSize] ^= 0xff // flip a body byte after the checksum was taken
		}
		if _, err := j.active.WriteAt(out, start); err != nil {
			lastErr = fmt.Errorf("journal: write: %w", err)
			j.truncateActive(start)
			continue
		}
		back := make([]byte, len(frame))
		if _, err := j.active.ReadAt(back, start); err != nil {
			lastErr = fmt.Errorf("journal: verify read: %w", err)
			j.truncateActive(start)
			continue
		}
		if crc32.Checksum(back[headerSize:], crcTable) != binary.LittleEndian.Uint32(frame[4:8]) {
			lastErr = errors.New("journal: verify: checksum mismatch after write")
			j.truncateActive(start)
			continue
		}
		j.size = start + int64(len(frame))
		return nil
	}
	j.truncateActive(start)
	return fmt.Errorf("journal: append failed after %d tries: %w", writeTries, lastErr)
}

func (j *Journal) truncateActive(n int64) {
	if err := j.active.Truncate(n); err == nil {
		j.size = n
	}
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	j.fsyncs++
	return nil
}

func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opt.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			_ = j.syncLocked()
			j.mu.Unlock()
		}
	}
}

// rotateLocked seals the active segment, opens the next one, and — when
// a compactor is installed — rewrites the live set into a single sealed
// segment, deleting the rest. Compaction is strictly optional: any
// fault or verification failure while building the compacted file
// aborts it and keeps every existing segment.
func (j *Journal) rotateLocked() {
	_ = j.syncLocked()
	next := j.activeIdx + 1
	f, err := os.OpenFile(segmentPath(j.opt.Dir, next), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return // keep appending to the oversized segment; better than losing writes
	}
	_ = j.active.Close()
	j.segments = append(j.segments, j.activeIdx)
	j.sealed += j.size
	j.active = f
	j.activeIdx = next
	j.size = 0
	j.dirty = false
	if j.compact != nil && len(j.segments) > 1 {
		j.compactLocked()
	}
}

// compactLocked rewrites the live set (from the installed compactor)
// over the sealed segments: write to a temp file, verify every frame,
// fsync, rename over the highest sealed index, then delete the lower
// ones. A crash between rename and deletes only leaves stale lower
// segments, whose records the compacted segment's replay supersedes.
func (j *Journal) compactLocked() {
	live := j.compact()
	tmpPath := filepath.Join(j.opt.Dir, "wal-compact.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	abort := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	var off int64
	for _, rec := range live {
		body, err := json.Marshal(rec)
		if err != nil || len(body) > maxRecord {
			abort()
			return
		}
		if ferr, corrupt := faults.Fire(faults.SiteJournal); ferr != nil || corrupt {
			abort()
			return
		}
		frame := make([]byte, headerSize+len(body))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
		copy(frame[headerSize:], body)
		if _, err := tmp.WriteAt(frame, off); err != nil {
			abort()
			return
		}
		off += int64(len(frame))
	}
	if !verifyClean(tmp, off) {
		abort()
		return
	}
	if err := tmp.Sync(); err != nil {
		abort()
		return
	}
	tmp.Close()
	target := j.segments[len(j.segments)-1]
	if err := os.Rename(tmpPath, segmentPath(j.opt.Dir, target)); err != nil {
		os.Remove(tmpPath)
		return
	}
	for _, idx := range j.segments[:len(j.segments)-1] {
		os.Remove(segmentPath(j.opt.Dir, idx))
	}
	j.segments = []int{target}
	j.sealed = off
	j.compactions++
}

// verifyClean scans [0, n) of f as frames and reports whether every
// record checksums clean. No fault injection: this is the journal
// verifying its own just-written bytes, not a recovery read.
func verifyClean(f *os.File, n int64) bool {
	var off int64
	hdr := make([]byte, headerSize)
	for off < n {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return false
		}
		ln := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if ln > maxRecord || off+headerSize+ln > n {
			return false
		}
		body := make([]byte, ln)
		if _, err := f.ReadAt(body, off+headerSize); err != nil {
			return false
		}
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return false
		}
		off += headerSize + ln
	}
	return true
}

// replaySegment reads one segment's records. For the last segment on
// disk, corruption is a torn tail: the file is truncated back to the
// last good record. For sealed segments the good prefix is kept and the
// remainder quarantined. Each record read consults the fault injector;
// injected faults re-read the same pristine bytes (bounded retries), so
// only bytes that are actually bad on disk count as corruption.
func (j *Journal) replaySegment(path string, last bool) ([]Record, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var recs []Record
	var off int64
	hdr := make([]byte, headerSize)
	for off < end {
		rec, next, ok := readRecordAt(f, off, end, hdr)
		if !ok {
			if last {
				if terr := f.Truncate(off); terr != nil {
					return nil, 0, fmt.Errorf("journal: truncate torn tail: %w", terr)
				}
				j.truncated++
				end = off
			} else {
				j.quarantined++
			}
			break
		}
		recs = append(recs, rec)
		off = next
	}
	if !last {
		end = off // quarantined bytes don't count toward live size
	}
	return recs, end, nil
}

// readRecordAt reads and validates one frame, retrying injected faults.
func readRecordAt(f *os.File, off, end int64, hdr []byte) (Record, int64, bool) {
	for try := 0; try < readTries; try++ {
		ferr, corrupt := faults.Fire(faults.SiteJournal)
		if ferr != nil {
			continue
		}
		if off+headerSize > end {
			return Record{}, 0, false // torn header
		}
		if _, err := f.ReadAt(hdr, off); err != nil {
			continue
		}
		ln := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if ln > maxRecord || off+headerSize+ln > end {
			if corrupt {
				continue // length field may be the injected flip; re-read
			}
			return Record{}, 0, false // torn or corrupt length
		}
		body := make([]byte, ln)
		if _, err := f.ReadAt(body, off+headerSize); err != nil {
			continue
		}
		if corrupt && ln > 0 {
			body[int(off)%len(body)] ^= 0xff
		}
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
			if corrupt {
				continue // injected; the bytes on disk may still be good
			}
			return Record{}, 0, false
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			if corrupt {
				continue
			}
			return Record{}, 0, false
		}
		return rec, off + headerSize + ln, true
	}
	return Record{}, 0, false
}

func segmentPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", idx))
}

func segmentIndices(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var idxs []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &idx); err != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

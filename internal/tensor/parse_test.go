package tensor

import (
	"reflect"
	"strings"
	"testing"
)

// paperExample is the exact description the paper shows in Section IV.
const paperExample = `
dimensions = {K:4, C:4, P:7, R:3}
tensor_description = {
    operand1 = [C, (P, R)],
    operand2 = [K, C, R],
    output = [K, P]
}
`

func TestParsePaperExample(t *testing.T) {
	w, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Dims, map[Dim]int{"K": 4, "C": 4, "P": 7, "R": 3}) {
		t.Errorf("dims = %v", w.Dims)
	}
	if len(w.Tensors) != 3 || len(w.Outputs()) != 1 {
		t.Fatalf("tensors = %v", w.Tensors)
	}
	// operand1's second axis is the sliding window (P, R).
	op1 := w.Tensor("operand1")
	if len(op1.Axes) != 2 || len(op1.Axes[1]) != 2 {
		t.Fatalf("operand1 axes = %v", op1.Axes)
	}
	if op1.Axes[1].String() != "p+r" {
		t.Errorf("window axis = %q, want p+r", op1.Axes[1].String())
	}
	// The inferred reuse must match Table III (modulo tensor names).
	out := w.Tensor("output")
	if got := w.ReusedBy(out); !reflect.DeepEqual(got, []Dim{"C", "R"}) {
		t.Errorf("output reused by %v, want [C R]", got)
	}
}

func TestParseStridesAndName(t *testing.T) {
	w, err := Parse(`
		name = strided_conv
		dimensions = {P:7, R:3, K:2}
		tensor_description = {
			in = [(2P, R)],
			w = [K, R],
			output = [K, P]
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "strided_conv" {
		t.Errorf("name = %q", w.Name)
	}
	in := w.Tensor("in")
	if in.Axes[0][0].Stride != 2 {
		t.Errorf("stride = %d, want 2", in.Axes[0][0].Stride)
	}
	// Extent with full dims: 2*(7-1)+3 = 15.
	if got := in.Axes[0].Extent(w.FullExtents()); got != 15 {
		t.Errorf("strided extent = %d, want 15", got)
	}
}

func TestParseOutputSuffix(t *testing.T) {
	w, err := Parse(`
		dimensions = {I:4, J:4, K:4}
		tensor_description = {
			a = [I, K],
			b = [K, J],
			c_out = [I, J]
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Outputs()) != 1 || w.Outputs()[0].Name != "c_out" {
		t.Error("_out suffix should mark outputs")
	}
}

func TestParseComments(t *testing.T) {
	w, err := Parse(`
		# matmul with comments
		dimensions = {M:2, N:2, K:2}   # bounds
		tensor_description = {
			a = [M, K],  # lhs
			b = [K, N],
			output = [M, N]
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dims["M"] != 2 {
		t.Error("comment handling broke parsing")
	}
}

func TestParseLowercaseDims(t *testing.T) {
	w, err := Parse(`
		dimensions = {k:4, p:7}
		tensor_description = { a = [k], output = [k, p] }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dims["K"] != 4 || w.Dims["P"] != 7 {
		t.Errorf("dims should be upper-cased: %v", w.Dims)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"", "missing dimensions"},
		{"dimensions = {K:4}", "missing tensor_description"},
		{"bogus = {}", "unknown section"},
		{"dimensions = {K:4, K:5}\ntensor_description={output=[K]}", "twice"},
		{"dimensions = {K:4}\ntensor_description = { output = [] }", "empty axis list"},
		{"dimensions = {K:4}\ntensor_description = { output = [()] }", "empty compound"},
		{"dimensions = {K:4}\ntensor_description = { output = [K", "unterminated"},
		{"dimensions = {K:}\ntensor_description={output=[K]}", "number"},
		{"dimensions = {K:4}\ntensor_description = { a = [K] }", "no output tensor"},
		{"dimensions = {K:4}\ntensor_description = { output = [Z] }", "undeclared"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%.30q...) err = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("garbage")
}

func TestParseErrorsIncludeLine(t *testing.T) {
	_, err := Parse("dimensions = {K:4}\ntensor_description = {\n  output = [Q:\n}")
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("error should carry a line number: %v", err)
	}
}

// FuzzParse ensures the description parser never panics and that anything it
// accepts re-validates (run with `go test -fuzz=FuzzParse` for deep fuzzing;
// the seed corpus runs in ordinary test mode).
func FuzzParse(f *testing.F) {
	f.Add(paperExample)
	f.Add("dimensions = {K:4}\ntensor_description = {output=[K]}")
	f.Add("name = x\ndimensions = {A:2, B:3}\ntensor_description = {i=[(2A,B)], output=[A,B]}")
	f.Add("dimensions = {K:}")
	f.Add("tensor_description = {output=[")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		w, err := Parse(src)
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Errorf("Parse accepted a workload that fails validation: %v", verr)
		}
	})
}

// TestParseTruncatedNeverPanics feeds every prefix of a valid description to
// the parser: truncation at any byte must produce a clean error (or, for a
// prefix that happens to stay well-formed, a valid workload) — never a panic.
func TestParseTruncatedNeverPanics(t *testing.T) {
	src := "dimensions = {K:4, C:4, P:7, R:3}\n" +
		"tensor_description = {\n" +
		"  operand1 = [C, (P, R)],\n" +
		"  operand2 = [K, C, R],\n" +
		"  output = [K, P]\n" +
		"}\n"
	for i := 0; i <= len(src); i++ {
		prefix := src[:i]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on %d-byte truncation: %v", i, r)
				}
			}()
			w, err := Parse(prefix)
			if err == nil {
				if w == nil {
					t.Fatalf("%d-byte truncation: nil workload with nil error", i)
				}
				if verr := w.Validate(); verr != nil {
					t.Fatalf("%d-byte truncation accepted an invalid workload: %v", i, verr)
				}
			}
		}()
	}
}

// TestParseMalformedDims covers dimension-table corruption beyond the basic
// error table: duplicate dims inside one tensor's axis list, a dim used in a
// window that was never declared, and stray separators.
func TestParseMalformedDims(t *testing.T) {
	cases := []string{
		"dimensions = {K:4, P:4, R:3}\ntensor_description = { output = [(K, Z)] }",
		"dimensions = {K:0}\ntensor_description = { output = [K] }",
		"dimensions = {K:-2}\ntensor_description = { output = [K] }",
		"dimensions = {K:4,}\ntensor_description = { output = [K }",
		"dimensions = {K:4}\ntensor_description = { output = [K]",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", src)
		}
	}
}

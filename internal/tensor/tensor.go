// Package tensor implements Sunstone's workload description language.
//
// A workload is a perfectly-nested loop program over a set of named problem
// dimensions, computing one or more output tensors from input tensors. Each
// tensor axis is indexed either by a single dimension (e.g. weight[k][c][r])
// or by a compound, sliding-window expression over several dimensions (e.g.
// ifmap[p+r] in convolution, or the strided form ifmap[2p+r]).
//
// From the description alone the package infers, per tensor, its indexing
// dimensions, its non-indexing ("fully reused by") dimensions, and its
// partial-reuse dimensions (members of compound axes) — the information in
// Table III of the paper. Every mapper stage (ordering trie, tiling tree,
// unrolling, cost model) consumes only this inferred structure, which is what
// makes Sunstone versatile across convolution, MTTKRP, TTMc, SDDMM, MMc, TCL
// and other tensor contractions.
package tensor

import (
	"fmt"
	"sort"
	"strings"
)

// Dim names a problem dimension (a loop variable), e.g. "K", "C", "P", "R".
type Dim string

// Term is one summand of an axis index expression: Stride*iter(D).
// A plain axis like weight[k] is the single term {D: "K", Stride: 1}.
type Term struct {
	D      Dim
	Stride int
}

// Axis is one tensor axis's index expression: the sum of its terms. A
// compound axis (len > 1) models a sliding window, e.g. ifmap[p+r] is
// [{P,1},{R,1}] and a stride-2 convolution input is [{P,2},{R,1}].
type Axis []Term

// Dims returns the dimensions appearing in the axis, in term order.
func (a Axis) Dims() []Dim {
	ds := make([]Dim, len(a))
	for i, t := range a {
		ds[i] = t.D
	}
	return ds
}

// Extent returns the number of distinct elements the axis touches when each
// dimension d iterates over ext[d] values: sum(stride*(ext-1)) + 1.
// Dimensions missing from ext are treated as extent 1 (not iterated).
func (a Axis) Extent(ext map[Dim]int) int {
	e := 1
	for _, t := range a {
		n := ext[t.D]
		if n <= 0 {
			n = 1
		}
		e += t.Stride * (n - 1)
	}
	return e
}

// String renders the axis as e.g. "p+r" or "2p+r".
func (a Axis) String() string {
	parts := make([]string, len(a))
	for i, t := range a {
		if t.Stride == 1 {
			parts[i] = strings.ToLower(string(t.D))
		} else {
			parts[i] = fmt.Sprintf("%d%s", t.Stride, strings.ToLower(string(t.D)))
		}
	}
	return strings.Join(parts, "+")
}

// A returns a simple single-dimension axis with stride 1.
func A(d Dim) Axis { return Axis{{D: d, Stride: 1}} }

// Win returns a two-dimension sliding-window axis sum with the given strides,
// e.g. Win("P", 2, "R", 1) for a stride-2 convolution input axis.
func Win(d1 Dim, s1 int, d2 Dim, s2 int) Axis {
	return Axis{{D: d1, Stride: s1}, {D: d2, Stride: s2}}
}

// Tensor is one operand or result of the workload.
type Tensor struct {
	Name   string
	Axes   []Axis
	Output bool // true for tensors written (accumulated into) by the loop body
}

// Indexing reports whether dimension d appears in any axis of t.
func (t *Tensor) Indexing(d Dim) bool {
	for _, a := range t.Axes {
		for _, term := range a {
			if term.D == d {
				return true
			}
		}
	}
	return false
}

// IndexingDims returns the set of dimensions indexing t, sorted by name.
func (t *Tensor) IndexingDims() []Dim {
	set := map[Dim]bool{}
	for _, a := range t.Axes {
		for _, term := range a {
			set[term.D] = true
		}
	}
	return sortedDims(set)
}

// PartialDims returns the dimensions that appear in compound (multi-term)
// axes of t — the dimensions across which t is only *partially* reused
// because of sliding-window overlap. Sorted by name.
func (t *Tensor) PartialDims() []Dim {
	set := map[Dim]bool{}
	for _, a := range t.Axes {
		if len(a) < 2 {
			continue
		}
		for _, term := range a {
			set[term.D] = true
		}
	}
	return sortedDims(set)
}

// Footprint returns the number of distinct elements of t touched when each
// dimension d iterates ext[d] values (missing dims count as 1).
func (t *Tensor) Footprint(ext map[Dim]int) int {
	fp := 1
	for _, a := range t.Axes {
		fp *= a.Extent(ext)
	}
	return fp
}

// Workload is the full problem description.
type Workload struct {
	Name    string
	Dims    map[Dim]int // problem bound of each dimension
	Order   []Dim       // canonical dimension order (for stable iteration)
	Tensors []*Tensor   // inputs and outputs, inputs first by convention
}

// New builds a workload, deriving Order as the sorted dimension names.
func New(name string, dims map[Dim]int, tensors ...*Tensor) (*Workload, error) {
	w := &Workload{Name: name, Dims: dims, Tensors: tensors}
	set := map[Dim]bool{}
	for d := range dims {
		set[d] = true
	}
	w.Order = sortedDims(set)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustNew is New but panics on error; for package-level workload tables.
func MustNew(name string, dims map[Dim]int, tensors ...*Tensor) *Workload {
	w, err := New(name, dims, tensors...)
	if err != nil {
		panic(err)
	}
	return w
}

// Validate checks structural well-formedness: positive dimension sizes, at
// least one output, every tensor axis referring only to declared dimensions
// with positive strides, and every dimension used by some tensor.
func (w *Workload) Validate() error {
	if len(w.Dims) == 0 {
		return fmt.Errorf("workload %q: no dimensions", w.Name)
	}
	for d, n := range w.Dims {
		if n <= 0 {
			return fmt.Errorf("workload %q: dimension %s has non-positive size %d", w.Name, d, n)
		}
	}
	used := map[Dim]bool{}
	hasOutput := false
	for _, t := range w.Tensors {
		if t.Output {
			hasOutput = true
		}
		if len(t.Axes) == 0 {
			return fmt.Errorf("workload %q: tensor %s has no axes", w.Name, t.Name)
		}
		for _, a := range t.Axes {
			if len(a) == 0 {
				return fmt.Errorf("workload %q: tensor %s has an empty axis", w.Name, t.Name)
			}
			for _, term := range a {
				if _, ok := w.Dims[term.D]; !ok {
					return fmt.Errorf("workload %q: tensor %s indexes undeclared dimension %s", w.Name, t.Name, term.D)
				}
				if term.Stride <= 0 {
					return fmt.Errorf("workload %q: tensor %s axis has non-positive stride %d", w.Name, t.Name, term.Stride)
				}
				used[term.D] = true
			}
		}
	}
	if !hasOutput {
		return fmt.Errorf("workload %q: no output tensor", w.Name)
	}
	for d := range w.Dims {
		if !used[d] {
			return fmt.Errorf("workload %q: dimension %s is not used by any tensor", w.Name, d)
		}
	}
	return nil
}

// Tensor returns the tensor named name, or nil.
func (w *Workload) Tensor(name string) *Tensor {
	for _, t := range w.Tensors {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Outputs returns the output tensors.
func (w *Workload) Outputs() []*Tensor {
	var out []*Tensor
	for _, t := range w.Tensors {
		if t.Output {
			out = append(out, t)
		}
	}
	return out
}

// Inputs returns the non-output tensors.
func (w *Workload) Inputs() []*Tensor {
	var in []*Tensor
	for _, t := range w.Tensors {
		if !t.Output {
			in = append(in, t)
		}
	}
	return in
}

// MACs returns the total number of loop-body evaluations: the product of all
// problem dimension bounds.
func (w *Workload) MACs() int64 {
	p := int64(1)
	for _, n := range w.Dims {
		p *= int64(n)
	}
	return p
}

// ReductionDims returns the dimensions that do not index any output tensor
// (the contraction/accumulation dimensions), sorted by name.
func (w *Workload) ReductionDims() []Dim {
	set := map[Dim]bool{}
	for d := range w.Dims {
		set[d] = true
	}
	for _, t := range w.Outputs() {
		for _, d := range t.IndexingDims() {
			delete(set, d)
		}
	}
	return sortedDims(set)
}

// FullExtents returns the map of every dimension to its full problem bound.
func (w *Workload) FullExtents() map[Dim]int {
	ext := make(map[Dim]int, len(w.Dims))
	for d, n := range w.Dims {
		ext[d] = n
	}
	return ext
}

// String renders the workload in the paper's description style.
func (w *Workload) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: dims {", w.Name)
	for i, d := range w.Order {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", d, w.Dims[d])
	}
	b.WriteString("}")
	for _, t := range w.Tensors {
		axes := make([]string, len(t.Axes))
		for i, a := range t.Axes {
			axes[i] = a.String()
		}
		kind := "in "
		if t.Output {
			kind = "out"
		}
		fmt.Fprintf(&b, "\n  %s %s[%s]", kind, t.Name, strings.Join(axes, "]["))
	}
	return b.String()
}

func sortedDims(set map[Dim]bool) []Dim {
	if len(set) == 0 {
		return nil
	}
	ds := make([]Dim, 0, len(set))
	for d := range set {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

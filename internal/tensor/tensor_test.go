package tensor

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// conv1D builds the running 1D-convolution example of the paper:
// ofmap[k,p] = sum_{c,r} ifmap[p+r,c] * weight[k,c,r].
func conv1D(t *testing.T, k, c, p, r int) *Workload {
	t.Helper()
	w, err := New("conv1d",
		map[Dim]int{"K": k, "C": c, "P": p, "R": r},
		&Tensor{Name: "ifmap", Axes: []Axis{Win("P", 1, "R", 1), A("C")}},
		&Tensor{Name: "weight", Axes: []Axis{A("K"), A("C"), A("R")}},
		&Tensor{Name: "ofmap", Axes: []Axis{A("K"), A("P")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAxisExtent(t *testing.T) {
	a := Win("P", 1, "R", 1)
	if got := a.Extent(map[Dim]int{"P": 7, "R": 3}); got != 9 {
		t.Errorf("sliding window extent = %d, want 9 (= 7+3-1)", got)
	}
	// Stride-2 convolution: s*(P-1)+R.
	a2 := Win("P", 2, "R", 1)
	if got := a2.Extent(map[Dim]int{"P": 7, "R": 3}); got != 15 {
		t.Errorf("strided window extent = %d, want 15 (= 2*6+3)", got)
	}
	// Missing dims count as extent 1.
	if got := a.Extent(map[Dim]int{"P": 4}); got != 4 {
		t.Errorf("partial extent = %d, want 4", got)
	}
	if got := A("K").Extent(map[Dim]int{"K": 5}); got != 5 {
		t.Errorf("simple extent = %d, want 5", got)
	}
}

func TestAxisString(t *testing.T) {
	if got := Win("P", 2, "R", 1).String(); got != "2p+r" {
		t.Errorf("axis string = %q, want %q", got, "2p+r")
	}
	if got := A("K").String(); got != "k" {
		t.Errorf("axis string = %q, want %q", got, "k")
	}
}

func TestFootprint(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	ext := map[Dim]int{"K": 2, "C": 4, "P": 7, "R": 3}
	// ifmap (P+R-1)*C = 9*4 = 36; weight K*C*R = 2*4*3 = 24; ofmap K*P = 14.
	if got := w.Tensor("ifmap").Footprint(ext); got != 36 {
		t.Errorf("ifmap footprint = %d, want 36", got)
	}
	if got := w.Tensor("weight").Footprint(ext); got != 24 {
		t.Errorf("weight footprint = %d, want 24", got)
	}
	if got := w.Tensor("ofmap").Footprint(ext); got != 14 {
		t.Errorf("ofmap footprint = %d, want 14", got)
	}
}

func TestFootprintMonotoneProperty(t *testing.T) {
	w := conv1D(t, 8, 8, 16, 3)
	// Growing any extent never shrinks any footprint.
	f := func(k, c, p, r uint8) bool {
		ext := map[Dim]int{
			"K": int(k%8) + 1, "C": int(c%8) + 1, "P": int(p%16) + 1, "R": int(r%3) + 1,
		}
		for _, tn := range w.Tensors {
			base := tn.Footprint(ext)
			for d := range ext {
				grown := map[Dim]int{}
				for dd, v := range ext {
					grown[dd] = v
				}
				grown[d]++
				if tn.Footprint(grown) < base {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReuseInfoMatchesTable3(t *testing.T) {
	// Table III of the paper, for 1D convolution:
	//   ofmap : indexed by k,p ; reused by c,r
	//   ifmap : indexed by c,p,r ; reused by k ; partially reused by p,r
	//   weight: indexed by c,k,r ; reused by p
	w := conv1D(t, 4, 4, 7, 3)
	infos := w.ReuseInfo()
	byName := map[string]Reuse{}
	for _, r := range infos {
		byName[r.Tensor.Name] = r
	}
	check := func(name string, idx, reused, partial []Dim) {
		t.Helper()
		r := byName[name]
		if !reflect.DeepEqual(r.IndexedBy, idx) {
			t.Errorf("%s indexed by %v, want %v", name, r.IndexedBy, idx)
		}
		if !reflect.DeepEqual(r.ReusedBy, reused) {
			t.Errorf("%s reused by %v, want %v", name, r.ReusedBy, reused)
		}
		if !reflect.DeepEqual(r.PartiallyReusedBy, partial) {
			t.Errorf("%s partially reused by %v, want %v", name, r.PartiallyReusedBy, partial)
		}
	}
	check("ofmap", []Dim{"K", "P"}, []Dim{"C", "R"}, nil)
	check("ifmap", []Dim{"C", "P", "R"}, []Dim{"K"}, []Dim{"P", "R"})
	check("weight", []Dim{"C", "K", "R"}, []Dim{"P"}, nil)
}

func TestReuseTableRenders(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	table := w.ReuseTable()
	for _, want := range []string{"ofmap", "ifmap", "weight", "c,r", "p,r"} {
		if !strings.Contains(table, want) {
			t.Errorf("reuse table missing %q:\n%s", want, table)
		}
	}
}

func TestReductionDims(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	if got, want := w.ReductionDims(), []Dim{"C", "R"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReductionDims = %v, want %v", got, want)
	}
}

func TestMACs(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	if got := w.MACs(); got != 4*4*7*3 {
		t.Errorf("MACs = %d, want %d", got, 4*4*7*3)
	}
}

func TestInputsOutputs(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	if len(w.Inputs()) != 2 || len(w.Outputs()) != 1 {
		t.Errorf("got %d inputs %d outputs, want 2 and 1", len(w.Inputs()), len(w.Outputs()))
	}
	if w.Tensor("nope") != nil {
		t.Error("Tensor(nope) should be nil")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		dims    map[Dim]int
		tensors []*Tensor
		wantSub string
	}{
		{
			"no dims", map[Dim]int{}, nil, "no dimensions",
		},
		{
			"bad size", map[Dim]int{"K": 0},
			[]*Tensor{{Name: "o", Axes: []Axis{A("K")}, Output: true}},
			"non-positive size",
		},
		{
			"undeclared dim", map[Dim]int{"K": 2},
			[]*Tensor{{Name: "o", Axes: []Axis{A("Z")}, Output: true}},
			"undeclared dimension",
		},
		{
			"no output", map[Dim]int{"K": 2},
			[]*Tensor{{Name: "i", Axes: []Axis{A("K")}}},
			"no output tensor",
		},
		{
			"unused dim", map[Dim]int{"K": 2, "Z": 3},
			[]*Tensor{{Name: "o", Axes: []Axis{A("K")}, Output: true}},
			"not used",
		},
		{
			"empty axis", map[Dim]int{"K": 2},
			[]*Tensor{{Name: "o", Axes: []Axis{{}}, Output: true}},
			"empty axis",
		},
		{
			"bad stride", map[Dim]int{"K": 2},
			[]*Tensor{{Name: "o", Axes: []Axis{{{D: "K", Stride: 0}}}, Output: true}},
			"non-positive stride",
		},
	}
	for _, c := range cases {
		_, err := New(c.name, c.dims, c.tensors...)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantSub)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid workload")
		}
	}()
	MustNew("bad", map[Dim]int{})
}

func TestWorkloadString(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	s := w.String()
	for _, want := range []string{"conv1d", "K:4", "P:7", "p+r", "out ofmap"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFullExtents(t *testing.T) {
	w := conv1D(t, 4, 4, 7, 3)
	ext := w.FullExtents()
	if ext["P"] != 7 || ext["K"] != 4 || len(ext) != 4 {
		t.Errorf("FullExtents = %v", ext)
	}
}

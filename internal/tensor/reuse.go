package tensor

import (
	"fmt"
	"strings"
)

// Reuse summarizes how one tensor can be reused by loops over each problem
// dimension — the information of Table III in the paper.
type Reuse struct {
	Tensor *Tensor
	// IndexedBy is the set of dimensions appearing in the tensor's index
	// expressions. A loop over an indexed dimension touches new data.
	IndexedBy []Dim
	// ReusedBy is the set of non-indexing dimensions: a loop over any of
	// them can fully reuse the tensor (Ordering Principle 1).
	ReusedBy []Dim
	// PartiallyReusedBy is the set of dimensions in compound (sliding-window)
	// axes: consecutive iterations overlap, so part of the tensor can be
	// reused across such loops.
	PartiallyReusedBy []Dim
}

// ReuseInfo computes the reuse summary for every tensor of the workload, in
// tensor declaration order.
func (w *Workload) ReuseInfo() []Reuse {
	infos := make([]Reuse, len(w.Tensors))
	for i, t := range w.Tensors {
		idx := t.IndexingDims()
		idxSet := map[Dim]bool{}
		for _, d := range idx {
			idxSet[d] = true
		}
		nonIdx := map[Dim]bool{}
		for d := range w.Dims {
			if !idxSet[d] {
				nonIdx[d] = true
			}
		}
		infos[i] = Reuse{
			Tensor:            t,
			IndexedBy:         idx,
			ReusedBy:          sortedDims(nonIdx),
			PartiallyReusedBy: t.PartialDims(),
		}
	}
	return infos
}

// ReusedBy returns the dimensions that can fully reuse tensor t (its
// non-indexing dimensions).
func (w *Workload) ReusedBy(t *Tensor) []Dim {
	idxSet := map[Dim]bool{}
	for _, d := range t.IndexingDims() {
		idxSet[d] = true
	}
	non := map[Dim]bool{}
	for d := range w.Dims {
		if !idxSet[d] {
			non[d] = true
		}
	}
	return sortedDims(non)
}

// ReuseTable renders the Table III-style reuse summary as text.
func (w *Workload) ReuseTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %-14s %s\n", "tensor", "indexed by", "reused by", "partially reused by")
	for _, r := range w.ReuseInfo() {
		fmt.Fprintf(&b, "%-10s %-14s %-14s %s\n",
			r.Tensor.Name, dimList(r.IndexedBy), dimList(r.ReusedBy), dimList(r.PartiallyReusedBy))
	}
	return b.String()
}

func dimList(ds []Dim) string {
	if len(ds) == 0 {
		return "-"
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = strings.ToLower(string(d))
	}
	return strings.Join(parts, ",")
}

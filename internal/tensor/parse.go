package tensor

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the paper's workload description syntax (Section IV) and
// returns the validated workload:
//
//	dimensions = {K:4, C:4, P:7, R:3}
//	tensor_description = {
//	    operand1 = [C, (P, R)],
//	    operand2 = [K, C, R],
//	    output = [K, P]
//	}
//
// Each tensor is a bracketed list of axes; a parenthesized axis such as
// (P, R) is a sliding-window sum p+r. Strides are written as a multiplier
// prefix, e.g. (2P, R) for the stride-2 expression 2p+r. Names beginning
// with "output" (or suffixed "_out") are outputs; everything else is an
// input. The workload name may be given as `name = <ident>` (default
// "parsed").
func Parse(src string) (*Workload, error) {
	p := &parser{src: src}
	name := "parsed"
	var dims map[Dim]int
	var tensors []*Tensor

	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect('='); err != nil {
			return nil, err
		}
		switch key {
		case "name":
			p.skipSpace()
			name, err = p.ident()
			if err != nil {
				return nil, err
			}
		case "dimensions":
			dims, err = p.dimensions()
			if err != nil {
				return nil, err
			}
		case "tensor_description":
			tensors, err = p.tensorDescription()
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unknown section %q (want name, dimensions, or tensor_description)", key)
		}
	}
	if dims == nil {
		return nil, fmt.Errorf("missing dimensions section")
	}
	if tensors == nil {
		return nil, fmt.Errorf("missing tensor_description section")
	}
	return New(name, dims, tensors...)
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(src string) *Workload {
	w, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return w
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' {
			p.pos++
			continue
		}
		if c == '#' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		break
	}
}

func (p *parser) errorf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return fmt.Errorf("workload description line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.eof() || p.src[p.pos] != c {
		got := "end of input"
		if !p.eof() {
			got = string(p.src[p.pos])
		}
		return p.errorf("expected %q, got %s", string(c), got)
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && p.pos > start) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errorf("expected an identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errorf("expected a number")
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errorf("bad number: %v", err)
	}
	return n, nil
}

// dimensions parses {K:4, C:4, ...}.
func (p *parser) dimensions() (map[Dim]int, error) {
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	dims := map[Dim]int{}
	for {
		p.skipSpace()
		if !p.eof() && p.src[p.pos] == '}' {
			p.pos++
			return dims, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		d := Dim(strings.ToUpper(name))
		if _, dup := dims[d]; dup {
			return nil, p.errorf("dimension %s declared twice", d)
		}
		dims[d] = n
	}
}

// tensorDescription parses { name = [axis, axis, ...], ... }.
func (p *parser) tensorDescription() ([]*Tensor, error) {
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	var tensors []*Tensor
	for {
		p.skipSpace()
		if !p.eof() && p.src[p.pos] == '}' {
			p.pos++
			return tensors, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect('='); err != nil {
			return nil, err
		}
		axes, err := p.axes()
		if err != nil {
			return nil, err
		}
		tensors = append(tensors, &Tensor{
			Name:   name,
			Axes:   axes,
			Output: strings.HasPrefix(name, "output") || strings.HasSuffix(name, "_out"),
		})
	}
}

// axes parses [C, (P, R), 2K] — a bracketed list of simple, compound
// (sliding-window), or strided axes.
func (p *parser) axes() ([]Axis, error) {
	if err := p.expect('['); err != nil {
		return nil, err
	}
	var axes []Axis
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errorf("unterminated axis list")
		}
		if p.src[p.pos] == ']' {
			p.pos++
			if len(axes) == 0 {
				return nil, p.errorf("empty axis list")
			}
			return axes, nil
		}
		if p.src[p.pos] == '(' {
			p.pos++
			var a Axis
			for {
				p.skipSpace()
				if p.eof() {
					return nil, p.errorf("unterminated compound axis")
				}
				if p.src[p.pos] == ')' {
					p.pos++
					break
				}
				term, err := p.term()
				if err != nil {
					return nil, err
				}
				a = append(a, term)
			}
			if len(a) == 0 {
				return nil, p.errorf("empty compound axis")
			}
			axes = append(axes, a)
			continue
		}
		term, err := p.term()
		if err != nil {
			return nil, err
		}
		axes = append(axes, Axis{term})
	}
}

// term parses an optionally strided dimension reference: R or 2P.
func (p *parser) term() (Term, error) {
	p.skipSpace()
	stride := 1
	if !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		n, err := p.number()
		if err != nil {
			return Term{}, err
		}
		stride = n
	}
	name, err := p.ident()
	if err != nil {
		return Term{}, err
	}
	return Term{D: Dim(strings.ToUpper(name)), Stride: stride}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

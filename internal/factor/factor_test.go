package factor

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPrimes(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{0, nil}, {1, nil}, {2, []int{2}}, {12, []int{2, 2, 3}},
		{97, []int{97}}, {360, []int{2, 2, 2, 3, 3, 5}}, {1024, []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
	}
	for _, c := range cases {
		if got := Primes(c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Primes(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestPrimesProductProperty(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n%5000) + 2
		p := 1
		for _, q := range Primes(m) {
			p *= q
		}
		return p == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisors(t *testing.T) {
	if got, want := Divisors(12), []int{1, 2, 3, 4, 6, 12}; !reflect.DeepEqual(got, want) {
		t.Errorf("Divisors(12) = %v, want %v", got, want)
	}
	if got, want := Divisors(1), []int{1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Divisors(1) = %v, want %v", got, want)
	}
	if Divisors(0) != nil {
		t.Error("Divisors(0) should be nil")
	}
	if got, want := Divisors(49), []int{1, 7, 49}; !reflect.DeepEqual(got, want) {
		t.Errorf("Divisors(49) = %v, want %v", got, want)
	}
}

func TestDivisorsSortedAndDivideProperty(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n%3000) + 1
		ds := Divisors(m)
		if !sort.IntsAreSorted(ds) {
			return false
		}
		for _, d := range ds {
			if m%d != 0 {
				return false
			}
		}
		return len(ds) == NumDivisors(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumDivisors(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 12: 6, 36: 9, 97: 2, 0: 0} {
		if got := NumDivisors(n); got != want {
			t.Errorf("NumDivisors(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	if CeilDiv(7, 2) != 4 || CeilDiv(8, 2) != 4 || CeilDiv(1, 3) != 1 || CeilDiv(0, 5) != 0 {
		t.Error("CeilDiv wrong")
	}
}

func TestPad(t *testing.T) {
	// 149 is prime; padding should find a nearby richer number.
	p := Pad(149, 6)
	if p < 149 || p > 298 {
		t.Fatalf("Pad(149,6) = %d out of range", p)
	}
	if NumDivisors(p) < 6 {
		t.Fatalf("Pad(149,6) = %d has only %d divisors", p, NumDivisors(p))
	}
	if Pad(16, 3) != 16 {
		t.Errorf("Pad(16,3) should be 16, got %d", Pad(16, 3))
	}
	if Pad(1, 10) != 1 {
		t.Errorf("Pad(1,10) should be 1")
	}
}

func TestSplitsK(t *testing.T) {
	var got [][]int
	n := SplitsK(12, 2, func(f []int) {
		cp := make([]int, len(f))
		copy(cp, f)
		got = append(got, cp)
	})
	if n != 6 || len(got) != 6 {
		t.Fatalf("SplitsK(12,2) visited %d, want 6", n)
	}
	for _, f := range got {
		if f[0]*f[1] != 12 {
			t.Errorf("split %v does not multiply to 12", f)
		}
	}
}

func TestSplitsKMatchesNumSplitsK(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		m := int(n%60) + 1
		kk := int(k%4) + 1
		return SplitsK(m, kk, nil) == NumSplitsK(m, kk)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumSplitsK(t *testing.T) {
	// 8 = 2^3 into 3 factors: C(3+2,2) = 10.
	if got := NumSplitsK(8, 3); got != 10 {
		t.Errorf("NumSplitsK(8,3) = %d, want 10", got)
	}
	if got := NumSplitsK(1, 5); got != 1 {
		t.Errorf("NumSplitsK(1,5) = %d, want 1", got)
	}
	if got := NumSplitsK(6, 2); got != 4 {
		t.Errorf("NumSplitsK(6,2) = %d, want 4", got)
	}
}

func TestProduct(t *testing.T) {
	if Product(nil) != 1 {
		t.Error("Product(nil) should be 1")
	}
	if Product([]int{2, 3, 4}) != 24 {
		t.Error("Product([2 3 4]) should be 24")
	}
}

func TestLadder(t *testing.T) {
	// Rich divisor sets stay exact.
	if got, want := Ladder(12, 4), []int{1, 2, 3, 4, 6, 12}; !reflect.DeepEqual(got, want) {
		t.Errorf("Ladder(12,4) = %v, want %v", got, want)
	}
	// Sparse sets get padded rungs, capped at the quota.
	got := Ladder(7, 6)
	if got[0] != 1 || got[len(got)-1] != 7 {
		t.Errorf("Ladder(7,6) = %v must span [1,7]", got)
	}
	if len(got) < 3 {
		t.Errorf("Ladder(7,6) = %v should offer intermediate rungs", got)
	}
	for _, v := range got {
		if v > 7 {
			t.Errorf("rung %d exceeds quota", v)
		}
	}
	if got := Ladder(1, 4); len(got) != 1 || got[0] != 1 {
		t.Errorf("Ladder(1,4) = %v", got)
	}
	if got := Ladder(0, 4); len(got) != 1 || got[0] != 1 {
		t.Errorf("Ladder(0,4) = %v", got)
	}
}

func TestLadderSortedProperty(t *testing.T) {
	f := func(n uint8) bool {
		q := int(n%200) + 1
		l := Ladder(q, 4)
		if !sort.IntsAreSorted(l) {
			return false
		}
		return l[len(l)-1] == q || q == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

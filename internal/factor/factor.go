// Package factor provides integer factorization and divisor utilities shared
// by every mapper in this repository. Dataflow mappers decompose each problem
// dimension into a product of per-level tile factors, so they constantly need
// divisor ladders, prime decompositions, and "padded" factorizations for
// dimensions whose natural divisor set is too sparse (e.g. prime feature-map
// sizes such as 149 in Inception-v3).
package factor

import "sort"

// Primes returns the prime factorization of n as a sorted slice with
// multiplicity, e.g. Primes(12) = [2 2 3]. Primes(1) and Primes(0) return nil.
func Primes(n int) []int {
	if n < 2 {
		return nil
	}
	var ps []int
	for n%2 == 0 {
		ps = append(ps, 2)
		n /= 2
	}
	for f := 3; f*f <= n; f += 2 {
		for n%f == 0 {
			ps = append(ps, f)
			n /= f
		}
	}
	if n > 1 {
		ps = append(ps, n)
	}
	return ps
}

// Divisors returns all positive divisors of n in increasing order.
// Divisors(0) returns nil; Divisors(1) returns [1].
func Divisors(n int) []int {
	if n <= 0 {
		return nil
	}
	var ds []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			if d != n/d {
				ds = append(ds, n/d)
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// NumDivisors returns the number of positive divisors of n.
func NumDivisors(n int) int {
	if n <= 0 {
		return 0
	}
	count := 1
	run := 0
	var last int
	for _, p := range Primes(n) {
		if p == last {
			run++
		} else {
			count *= run + 1
			last, run = p, 1
		}
	}
	count *= run + 1
	return count
}

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// Pad returns the smallest n' >= n whose divisor count is at least minDivisors,
// capped at searching 2*n (beyond which it returns the best candidate seen).
// Mappers pad sparse dimensions so that tiling has enough factor choices; the
// cost model then uses the padded bound (slightly pessimistic, standard
// practice in Timeloop-style mappers).
func Pad(n, minDivisors int) int {
	if n <= 1 {
		return n
	}
	best, bestCount := n, NumDivisors(n)
	for m := n; m <= 2*n; m++ {
		c := NumDivisors(m)
		if c >= minDivisors {
			return m
		}
		if c > bestCount {
			best, bestCount = m, c
		}
	}
	return best
}

// SplitsK enumerates every ordered way to write n as a product of k positive
// factors (f1*...*fk == n) and calls visit for each. The slice passed to visit
// is reused between calls; copy it if retained. Returns the number of splits
// visited.
func SplitsK(n, k int, visit func([]int)) int {
	if n <= 0 || k <= 0 {
		return 0
	}
	buf := make([]int, k)
	count := 0
	var rec func(rem, i int)
	rec = func(rem, i int) {
		if i == k-1 {
			buf[i] = rem
			count++
			if visit != nil {
				visit(buf)
			}
			return
		}
		for _, d := range Divisors(rem) {
			buf[i] = d
			rec(rem/d, i+1)
		}
	}
	rec(n, 0)
	return count
}

// NumSplitsK returns the number of ordered factorizations of n into k factors
// without enumerating them, via the divisor-composition formula
// prod over prime powers p^a of C(a+k-1, k-1).
func NumSplitsK(n, k int) int {
	if n <= 0 || k <= 0 {
		return 0
	}
	res := 1
	run := 0
	var last int
	flush := func() {
		if run > 0 {
			res *= binomial(run+k-1, k-1)
		}
	}
	for _, p := range Primes(n) {
		if p == last {
			run++
		} else {
			flush()
			last, run = p, 1
		}
	}
	flush()
	return res
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

// Ladder returns the increasing sequence of candidate tile/unroll factors
// for a dimension with the given remaining quota — the tiling tree's "next
// higher factor of the corresponding problem dimension".
//
// Exact divisors are preferred because any non-divisor factor forces padding
// (wasted MACs and enlarged upper loop bounds). Only when the quota's own
// divisor set is too sparse to be useful (fewer than minDivisors choices,
// e.g. prime feature-map sizes such as 149) are the divisors of a nearby
// padded value mixed in, capped at the quota. E.g. Ladder(7, 6) = [1 2 4 7],
// Ladder(14, 4) = [1 2 7 14].
func Ladder(quota, minDivisors int) []int {
	if quota <= 1 {
		return []int{1}
	}
	if ds := Divisors(quota); len(ds) >= minDivisors {
		return ds
	}
	set := map[int]bool{1: true, quota: true}
	for _, d := range Divisors(Pad(quota, minDivisors)) {
		if d <= quota {
			set[d] = true
		}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Product returns the product of xs (1 for an empty slice).
func Product(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

package core

import (
	"strings"
	"testing"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
)

// TestWarmStartEqualOrBetter: resuming from a previous run's mapping must
// never finish worse than that mapping — the crash-recovery contract.
func TestWarmStartEqualOrBetter(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	cold, err := Optimize(w, arch.Simba(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Optimize(w, arch.Simba(), Options{WarmStart: cold.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStartEDP <= 0 {
		t.Errorf("warm run reports no WarmStartEDP")
	}
	if warm.WarmStartEDP != cold.Report.EDP {
		t.Errorf("WarmStartEDP %g != the checkpoint's EDP %g", warm.WarmStartEDP, cold.Report.EDP)
	}
	if warm.Report.EDP > cold.Report.EDP {
		t.Errorf("warm start finished worse than its checkpoint: %g vs %g", warm.Report.EDP, cold.Report.EDP)
	}
}

// TestWarmStartUnderImmediateDeadline: even a deadline too short for any
// enumeration returns the warm-start incumbent (valid, audit-passing),
// not a failure — the anytime floor a recovered job stands on when its
// original deadline already expired.
func TestWarmStartUnderImmediateDeadline(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	cold, err := Optimize(w, arch.Simba(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(w, arch.Simba(), Options{
		WarmStart: cold.Mapping,
		Timeout:   time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("warm start under immediate deadline: %v", err)
	}
	if res.Mapping == nil {
		t.Fatal("no mapping returned")
	}
	if res.Report.EDP > cold.Report.EDP {
		t.Errorf("deadline-cut warm run worse than checkpoint: %g vs %g", res.Report.EDP, cold.Report.EDP)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Errorf("returned mapping does not validate: %v", err)
	}
}

// TestWarmStartRebindsForeignInstance: a mapping built against different
// Workload/Arch object identities (as a deserialized checkpoint is) must
// be rebound, not rejected, as long as the shapes line up.
func TestWarmStartRebindsForeignInstance(t *testing.T) {
	w1 := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	w2 := conv2D(t, 1, 16, 16, 14, 14, 3, 3) // same shape, distinct instance
	cold, err := Optimize(w1, arch.Simba(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Optimize(w2, arch.Simba(), Options{WarmStart: cold.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStartEDP <= 0 {
		t.Errorf("foreign-instance warm start was not installed (WarmStartEDP = %g)", warm.WarmStartEDP)
	}
	if warm.Report.EDP > cold.Report.EDP {
		t.Errorf("warm run worse than checkpoint: %g vs %g", warm.Report.EDP, cold.Report.EDP)
	}
}

// TestWarmStartInvalidDegrades: a warm start that cannot bind to the
// problem (wrong workload entirely) degrades to a cold search with the
// rejection recorded, never a hard failure or a corrupted result.
func TestWarmStartInvalidDegrades(t *testing.T) {
	wRight := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	wWrong := conv1D(t, 8, 8, 10, 3)
	foreign, err := Optimize(wWrong, arch.Tiny(256), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Optimize(wRight, arch.Simba(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(wRight, arch.Simba(), Options{WarmStart: foreign.Mapping})
	if err != nil {
		t.Fatalf("invalid warm start failed the run: %v", err)
	}
	if res.WarmStartEDP != 0 {
		t.Errorf("rejected warm start still reported WarmStartEDP %g", res.WarmStartEDP)
	}
	if res.Report.EDP != cold.Report.EDP {
		t.Errorf("degraded run diverged from cold: %g vs %g", res.Report.EDP, cold.Report.EDP)
	}
	found := false
	for _, e := range res.CandidateErrors {
		if strings.Contains(e.Error(), "warm start rejected") {
			found = true
		}
	}
	if !found {
		t.Errorf("rejection not recorded in CandidateErrors: %v", res.CandidateErrors)
	}

	// An empty mapping shell must degrade the same way.
	res2, err := Optimize(wRight, arch.Simba(), Options{WarmStart: &mapping.Mapping{}})
	if err != nil {
		t.Fatalf("empty warm start failed the run: %v", err)
	}
	if res2.Report.EDP != cold.Report.EDP {
		t.Errorf("empty-shell warm start changed the result: %g vs %g", res2.Report.EDP, cold.Report.EDP)
	}
}

// TestWarmStartDeterministic: a warm-started search is as deterministic as
// a cold one.
func TestWarmStartDeterministic(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	cold, err := Optimize(w, arch.Simba(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{WarmStart: cold.Mapping}
	first, err := Optimize(w, arch.Simba(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := Optimize(w, arch.Simba(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.EDP != first.Report.EDP || res.Mapping.String() != first.Mapping.String() {
			t.Fatalf("warm run %d diverged: %g vs %g", i, res.Report.EDP, first.Report.EDP)
		}
	}
}

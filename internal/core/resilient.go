package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/baselines"
	"sunstone/internal/baselines/innermost"
	"sunstone/internal/baselines/timeloop"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/tensor"
)

// This file implements the graceful-degradation path: bounded retries of the
// primary search with shrinking budgets, a configurable fallback-mapper
// chain ending in a guaranteed-feasible construction, and a final mapping
// audit that no result — primary or fallback — escapes without passing.

// RetryPolicy configures OptimizeResilient. The zero value selects the
// defaults (DefaultRetryPolicy); negative Retries disables primary retries.
type RetryPolicy struct {
	// Retries is how many times the primary Sunstone search is retried after
	// its first failed attempt, each retry with Backoff-shrunk budgets
	// (0 = default 2; negative = no retries).
	Retries int
	// Backoff multiplies BeamWidth, TilesPerStep, UnrollsPerStep and
	// TopDownVisitBudget on every primary retry (floor 1 each), so a search
	// that failed by deadline or injected fault re-runs cheaper and faster
	// (0 = default 0.5).
	Backoff float64
	// Fallbacks is the ordered chain of degraded-mode mappers (registry
	// names, see internal/baselines/registry.Fallbacks) tried after the
	// primary attempts are exhausted. The last entry is cycled until
	// MaxAttempts, so it should be a mapper that cannot fail — the default
	// chain is {"timeloop-random-lite", "innermost-fit"}. Nil selects the
	// default; an empty non-nil slice disables fallbacks.
	Fallbacks []string
	// FallbackTries is how many attempts each fallback gets before the chain
	// advances (0 = default 2).
	FallbackTries int
	// MaxAttempts caps the total attempts — primaries, retries and fallbacks
	// together — as the hard stop of the whole resilient run (0 = default 32).
	MaxAttempts int
	// NoAudit skips the final mapping audit (structural validation, full
	// cost-model evaluation, fast-path cross-check) before a result is
	// accepted. Only for benchmarking the audit's overhead; the audit is the
	// resilience guarantee.
	NoAudit bool
}

// DefaultRetryPolicy returns the default graceful-degradation policy, spelled
// out. The zero RetryPolicy is equivalent.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Retries:       2,
		Backoff:       0.5,
		Fallbacks:     []string{"timeloop-random-lite", "innermost-fit"},
		FallbackTries: 2,
		MaxAttempts:   32,
	}
}

// withDefaults fills every zero field from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.Retries == 0 {
		p.Retries = def.Retries
	} else if p.Retries < 0 {
		p.Retries = 0
	}
	if p.Backoff <= 0 || p.Backoff >= 1 {
		p.Backoff = def.Backoff
	}
	if p.Fallbacks == nil {
		p.Fallbacks = def.Fallbacks
	}
	if p.FallbackTries <= 0 {
		p.FallbackTries = def.FallbackTries
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	return p
}

// Attempt is one recorded try of the resilient path.
type Attempt struct {
	// Mapper is "sunstone" for primary attempts, otherwise the fallback
	// registry name.
	Mapper string
	// Stopped is the attempt's anytime stop reason.
	Stopped StopReason
	// Err is why the attempt was rejected — a search failure, a contained
	// panic, or an audit failure. Nil on the accepted (final) attempt.
	Err     error
	Elapsed time.Duration
}

// primaryName is the Attempt.Mapper value for the Sunstone search itself.
const primaryName = "sunstone"

// OptimizeResilient is OptimizeContext hardened for environments where
// searches can fail — injected chaos faults, poisoned cost models, expired
// deadlines, panicking dependencies. It never gives up while the policy has
// attempts left:
//
//  1. the primary Sunstone search runs, then up to pol.Retries retries with
//     Backoff-shrunk budgets;
//  2. the pol.Fallbacks chain runs in order, the last entry cycling until
//     pol.MaxAttempts (the default chain ends in innermost-fit, which cannot
//     fail on any workload/arch pair that admits a legal mapping);
//  3. every candidate result passes the final mapping audit — structural
//     validation, a full cost-model evaluation, and a bit-exact fast-path
//     cross-check — before it is returned; an audit failure is a failed
//     attempt like any other.
//
// Every attempt is recorded in Result.Attempts (accepted attempt last, nil
// Err); Result.FallbackUsed names the fallback that produced the mapping
// ("" = primary). A panic anywhere in an attempt is contained to that
// attempt. The error return is non-nil only when every attempt failed.
func (e *Engine) OptimizeResilient(ctx context.Context, w *tensor.Workload, a *arch.Arch, opt Options, pol RetryPolicy) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	pol = pol.withDefaults()
	ctx, span := obs.StartSpanf(ctx, "resilient %s", w.Name)

	var attempts []Attempt
	var errs []error
	finish := func(res Result, acc Attempt, fallback string) (Result, error) {
		acc.Err = nil
		res.Attempts = append(attempts, acc)
		res.FallbackUsed = fallback
		span.Arg("attempts", len(res.Attempts)).Arg("fallback", fallback).End()
		return res, nil
	}
	reject := func(acc Attempt, err error) {
		acc.Err = err
		attempts = append(attempts, acc)
		errs = append(errs, fmt.Errorf("attempt %d (%s): %w", len(attempts), acc.Mapper, err))
	}

	// Phase 1: the primary search, with budget backoff between retries.
	curOpt := opt
	for try := 0; try <= pol.Retries && len(attempts) < pol.MaxAttempts; try++ {
		start := time.Now()
		res, err := e.attemptPrimary(ctx, w, a, curOpt)
		acc := Attempt{Mapper: primaryName, Stopped: res.Stopped, Elapsed: time.Since(start)}
		if err == nil {
			if pol.NoAudit {
				return finish(res, acc, "")
			}
			rep, aerr := e.audit(w, a, curOpt.Model, res.Mapping)
			if aerr == nil {
				res.Report = rep
				return finish(res, acc, "")
			}
			err = aerr
		}
		reject(acc, err)
		if ctx.Err() != nil {
			break // canceled callers get the fallback chain, not more full searches
		}
		curOpt = shrinkOptions(curOpt, pol.Backoff)
	}

	// Phase 2: the fallback chain; the last entry cycles until MaxAttempts.
	for fi := 0; len(pol.Fallbacks) > 0 && len(attempts) < pol.MaxAttempts; fi++ {
		idx := fi / pol.FallbackTries
		if idx >= len(pol.Fallbacks) {
			idx = len(pol.Fallbacks) - 1
		}
		name := pol.Fallbacks[idx]
		start := time.Now()
		res, err := e.attemptFallback(ctx, w, a, opt.Model, name)
		acc := Attempt{Mapper: name, Stopped: res.Stopped, Elapsed: time.Since(start)}
		if err == nil {
			if pol.NoAudit {
				return finish(res, acc, name)
			}
			rep, aerr := e.audit(w, a, opt.Model, res.Mapping)
			if aerr == nil {
				res.Report = rep
				return finish(res, acc, name)
			}
			err = aerr
		}
		reject(acc, err)
	}

	span.Arg("attempts", len(attempts)).Arg("fallback", "exhausted").End()
	return Result{Attempts: attempts, Stopped: anytime.FromContext(ctx)},
		fmt.Errorf("resilient optimization exhausted %d attempts: %w", len(attempts), errors.Join(errs...))
}

// attemptPrimary runs one primary search with panic containment: an injected
// expansion fault (or any other panic escaping the search driver) becomes a
// failed attempt instead of crashing the caller.
func (e *Engine) attemptPrimary(ctx context.Context, w *tensor.Workload, a *arch.Arch, opt Options) (res Result, err error) {
	defer func() {
		if pe := anytime.PanicErrorFrom(recover(), "resilient primary search", nil); pe != nil {
			res, err = Result{Stopped: anytime.FromContext(ctx)}, pe
		}
	}()
	res, err = e.OptimizeContext(ctx, w, a, opt)
	if err == nil && res.Mapping == nil {
		err = errors.New("search returned no mapping")
	}
	return res, err
}

// FallbackResolver turns a fallback registry name into a fresh mapper.
type FallbackResolver func(name string) (baselines.Mapper, bool)

// extraFallbacks is an optional installed resolver consulted before the
// built-in chain, so the root package can open the whole baseline registry
// as fallback candidates without this package importing it (the registry's
// mapper packages have tests that import core — a test import cycle).
var extraFallbacks atomic.Pointer[FallbackResolver]

// RegisterFallbackResolver installs fn as the first-consulted fallback-name
// resolver (the built-in chain remains as the fallback's fallback). Call it
// from an init function; the last registration wins.
func RegisterFallbackResolver(fn FallbackResolver) { extraFallbacks.Store(&fn) }

// fallbackMapper resolves a fallback name: the installed resolver first,
// then the built-in degraded-mode chain.
func fallbackMapper(name string) (baselines.Mapper, bool) {
	if fn := extraFallbacks.Load(); fn != nil {
		if m, ok := (*fn)(name); ok {
			return m, true
		}
	}
	switch name {
	case "timeloop-random-lite":
		return timeloop.New(timeloop.Lite()), true
	case "innermost-fit":
		return innermost.New(), true
	}
	return nil, false
}

// attemptFallback runs one degraded-mode mapper from the registry, sharing
// the Engine's compiled cost sessions, with panic containment.
func (e *Engine) attemptFallback(ctx context.Context, w *tensor.Workload, a *arch.Arch, model cost.Model, name string) (res Result, err error) {
	m, ok := fallbackMapper(name)
	if !ok {
		return Result{}, fmt.Errorf("unknown fallback mapper %q", name)
	}
	if s, ok := m.(interface {
		UseSessions(baselines.SessionSource)
	}); ok {
		s.UseSessions(e)
	}
	defer func() {
		if pe := anytime.PanicErrorFrom(recover(), "fallback mapper "+name, nil); pe != nil {
			res, err = Result{Stopped: anytime.FromContext(ctx)}, pe
		}
	}()
	bres := m.MapContext(ctx, w, a)
	res = Result{Mapping: bres.Mapping, Report: bres.Report, Stopped: bres.Stopped, SpaceSize: bres.Evaluated}
	if bres.Mapping == nil {
		reason := bres.InvalidReason
		if reason == "" {
			reason = "no mapping produced"
		}
		return res, fmt.Errorf("fallback %s: %s", name, reason)
	}
	// An invalid-flagged fallback mapping is still offered to the audit: the
	// flag may be a contained scoring panic, and the audit's own evaluation
	// is the authority on acceptance.
	return res, nil
}

// shrinkOptions applies one backoff step to the search budgets (floor 1), so
// each retry explores a smaller, faster space.
func shrinkOptions(o Options, f float64) Options {
	scale := func(v int) int {
		s := int(float64(v) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	o.BeamWidth = scale(o.BeamWidth)
	o.TilesPerStep = scale(o.TilesPerStep)
	o.UnrollsPerStep = scale(o.UnrollsPerStep)
	o.TopDownVisitBudget = scale(o.TopDownVisitBudget)
	return o
}

// audit is the final gate every resilient result must pass:
//
//  1. structural legality — mapping.Validate covers factor coverage, buffer
//     capacity (the fit check), fanout and spatial-reduction legality;
//  2. a full cost-model evaluation must succeed and report Valid;
//  3. the fast-path evaluator must agree with the full evaluation bit for
//     bit on EDP, energy and cycles — this is what catches a corrupted
//     memo-cache read (chaos site "cache-get") or any fast-path divergence.
//
// The audit's own full Report becomes the result's Report, so the numbers a
// caller sees are exactly the audited ones. Any failure — including a panic
// inside the audit itself, contained by safeEval — rejects the attempt and
// the retry loop moves on.
func (e *Engine) audit(w *tensor.Workload, a *arch.Arch, model cost.Model, m *mapping.Mapping) (cost.Report, error) {
	if m == nil {
		return cost.Report{}, errors.New("audit: no mapping produced")
	}
	if err := m.Validate(); err != nil {
		return cost.Report{}, fmt.Errorf("audit: mapping fails validation: %w", err)
	}
	rep, err := safeEval(model, m)
	if err != nil {
		return cost.Report{}, fmt.Errorf("audit: full evaluation failed: %w", err)
	}
	if !rep.Valid {
		return cost.Report{}, fmt.Errorf("audit: mapping evaluates invalid: %v", rep.Invalid)
	}
	sess := e.Session(model, w, a)
	if sess == nil {
		// The Engine declined (an injected compile fault, say); a fresh
		// session has no chaos hook on construction and always works.
		sess = model.NewSession(w, a)
	}
	edp, energyPJ, cycles, valid, err := evalFastContained(sess.NewEvaluator(), m)
	if err != nil {
		return cost.Report{}, fmt.Errorf("audit: fast-path evaluation failed: %w", err)
	}
	if !valid {
		return cost.Report{}, errors.New("audit: fast path rejects a mapping the full model accepts")
	}
	if edp != rep.EDP || energyPJ != rep.EnergyPJ || cycles != rep.Cycles {
		return cost.Report{}, fmt.Errorf(
			"audit: fast path (EDP %g, energy %g pJ, %g cycles) disagrees with full evaluation (EDP %g, energy %g pJ, %g cycles)",
			edp, energyPJ, cycles, rep.EDP, rep.EnergyPJ, rep.Cycles)
	}
	return rep, nil
}

// evalFastContained is one fast-path evaluation with panic containment, for
// callers outside a search's worker pool.
func evalFastContained(ev *cost.Evaluator, m *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool, err error) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "fast-path audit evaluation", func() string { return reproMapping(m) }); e != nil {
			valid, err = false, e
		}
	}()
	edp, energyPJ, cycles, valid = ev.EvaluateEDP(m)
	return edp, energyPJ, cycles, valid, nil
}

package core

// This file holds the bottom-up expansion machinery: the candidate
// generators for the default direction (Table VI row 1). The
// level-sequencing driver itself is shared with top-down — see stepper.go;
// this file only knows how to extend a partial mapping upward by one level.

import (
	"context"
	"fmt"

	"sunstone/internal/anytime"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/tile"
	"sunstone/internal/unroll"
)

// expandBottomUnit is the sequencer's per-(state, ordering) expansion unit
// for the bottom-up direction: it extends partial mapping base at step l
// under one ordering — loop ordering for level l+1, tiling of level l,
// spatial unrolling at level 0 (step 0 only) and at level l+1. Every
// produced candidate is charged as generated, and the visit count handed to
// the (unbounded) step budget includes both the enumeration effort and the
// candidates themselves, matching the paper's space-size merit; the budget
// parameter itself is ignored. Reject tallies are accumulated locally in the
// returned unitOut and flushed once per state by the driver (see
// replayExpansion) so the hot enumeration loops never touch an atomic and a
// memoized replay charges identical deltas.
//
// The unit runs on a pool worker: it must not touch anything mutable that is
// shared with sibling units. It reads base (never written after creation),
// clones before every extension, and goes through the compiled problem's
// internally-synchronized ladder cache; the fit checker is per-call scratch.
// Cancellation is checked on entry and polled inside the tiling walk, so a
// stop truncates the candidate set rather than discarding it (the driver
// then skips memoization).
func (sc *search) expandBottomUnit(ctx context.Context, base *mapping.Mapping, l int, o *order.Ordering, budget int) unitOut {
	var out unitOut
	if anytime.FromContext(ctx) != StopComplete {
		return out
	}
	w := base.Workload
	a := base.Arch
	effort := 0

	m1 := base.Clone()
	m1.Levels[l+1].Order = o.Complete(w)
	grow := growDimsFor(w, o)

	// Step 0 also assigns the unrolling below the first memory level
	// (e.g. the DianNao NFU between the on-chip buffers and the MACs).
	bases := []*mapping.Mapping{m1}
	if l == 0 && a.Levels[0].Fanout > 1 {
		bases = sc.unrollAt(m1, 0, nil, &out.prunedUnrolling)
		effort += len(bases)
	}

	// Unrolling is settled before tiling (the paper's default
	// intra-level order, Table VI row 1): the spatial fanout must claim
	// its share of the factor budget before the maximal-tile search
	// consumes it, or the PE array is left underutilized.
	for _, m2 := range bases {
		withSpatial := []*mapping.Mapping{m2}
		if a.Levels[l+1].Fanout > 1 {
			withSpatial = sc.unrollAt(m2, l+1, grow, &out.prunedUnrolling)
			effort += len(withSpatial)
		}
		for _, m3 := range withSpatial {
			tiles, tstats := sc.enumerateTiles(ctx, m3, l, grow)
			effort += tstats.NodesVisited
			out.prunedTiling += tstats.NodesVisited - tstats.Survivors
			for _, tc := range tiles {
				m4 := m3.Clone()
				for d, f := range tc {
					if f > 1 {
						m4.Levels[l].Temporal[d] = f
					}
				}
				sc.residualFill(m4, l, grow)
				out.cands = append(out.cands, m4)
			}
		}
	}
	out.visited = effort + len(out.cands)
	return out
}

// strategyEffort is the bottom-up sequencer's per-state effort hook: the
// non-default intra-level orders enumerate their first stage without the
// ordering's principle guidance and filter later, so they visit extra nodes
// for the same final set. The cost is independent of any single ordering, so
// the driver charges it once per state (folded into the state's first unit).
func (sc *search) strategyEffort(ctx context.Context, base *mapping.Mapping, l int) int {
	switch sc.opt.Strategy {
	case TileUnrollOrder:
		return sc.unguidedTileEffort(ctx, base, l)
	case UnrollTileOrder:
		return sc.unguidedUnrollEffort(base, l) + sc.unguidedTileEffort(ctx, base, l)
	}
	return 0
}

// replayExpansion charges one expansion's candidate-flow deltas — whether
// the expansion just ran or was served from the compiled memo, the counters
// move identically: every produced candidate plus every enumeration reject
// counts as generated, rejects additionally to their pruning principle.
func (sc *search) replayExpansion(e *expandEntry) {
	sc.ctr.Generated.Add(uint64(len(e.cands) + e.prunedTiling + e.prunedUnrolling))
	if e.prunedTiling > 0 {
		sc.ctr.PrunedTiling.Add(uint64(e.prunedTiling))
	}
	if e.prunedUnrolling > 0 {
		sc.ctr.PrunedUnrolling.Add(uint64(e.prunedUnrolling))
	}
}

// expandKey renders the expansion-memo key for extending base at level lvl:
// the direction, the option knobs that shape enumeration, the step budget
// where it can bind (top-down; bottom-up passes 0), and the partial
// mapping's canonical render. Knobs that only affect scoring or selection —
// objective, beam, alpha slack, threads — are deliberately absent: they do
// not change what an expansion produces.
func (sc *search) expandKey(lvl, budget int, base *mapping.Mapping) string {
	o := sc.opt
	return fmt.Sprintf("%d|%d|%d|%d|%d|%d|%g|%s",
		o.Direction, o.Strategy, lvl, budget, o.TilesPerStep, o.UnrollsPerStep, o.MinUtilization, base.String())
}

// enumerateTiles runs the tiling tree for level l of partial mapping m with
// the given grow dimensions, checking capacity feasibility from level l up.
// Capacity probes go through a fitChecker instantiated from the compiled
// skeleton — precomputed integer tables that answer exactly what writing the
// factors into the mapping and calling feasible would, without per-probe
// maps or allocation. A canceled context makes the predicate reject
// everything, which collapses the remaining tree growth within a few dozen
// probes.
func (sc *search) enumerateTiles(ctx context.Context, m *mapping.Mapping, l int, grow []tensor.Dim) ([]tile.Candidate, tile.Stats) {
	fc := sc.newFitChecker(m, l)
	poll := &anytime.Poller{Ctx: ctx, Every: 64}
	return tile.Enumerate(tile.Space{
		GrowDims: grow,
		Quota:    remainingQuota(m),
		FitsVec: func(ds []tensor.Dim, fs []int) bool {
			if poll.Stop() != StopComplete {
				return false
			}
			return fc.fits(ds, fs)
		},
		Ladder:        sc.comp.ladders.ladder,
		MaxCandidates: sc.opt.TilesPerStep,
	})
}

// residualFill deterministically grows the non-grow dimensions of the tile
// at level l into whatever capacity the OP-maximal tile left free. The
// Tiling Principle requires maximality only along OP's indexing dimensions;
// enlarging other dimensions within the remaining space moves upper-level
// loops into the tile and can only add intra-tile reuse, so it is a pure
// completion (no branching, not counted as search-space growth). Reduction
// dimensions fill first — keeping partial sums resident longest — then the
// rest in canonical order.
func (sc *search) residualFill(m *mapping.Mapping, l int, grow []tensor.Dim) {
	growSet := map[tensor.Dim]bool{}
	for _, d := range grow {
		growSet[d] = true
	}
	var fillDims []tensor.Dim
	for _, d := range m.Workload.ReductionDims() {
		if !growSet[d] {
			fillDims = append(fillDims, d)
		}
	}
	for _, d := range m.Workload.Order {
		if !growSet[d] && !isReduction(m, d) {
			fillDims = append(fillDims, d)
		}
	}
	quota := remainingQuota(m)
	for _, d := range fillDims {
		ladder := sc.comp.ladders.ladder(quota[d], 4)
		for i := len(ladder) - 1; i >= 0; i-- {
			f := ladder[i]
			if f <= m.Levels[l].T(d) {
				break
			}
			old := m.Levels[l].T(d)
			m.Levels[l].Temporal[d] = f
			if feasible(m, l) {
				break
			}
			if old > 1 {
				m.Levels[l].Temporal[d] = old
			} else {
				delete(m.Levels[l].Temporal, d)
			}
		}
	}
}

func isReduction(m *mapping.Mapping, d tensor.Dim) bool {
	for _, rd := range m.Workload.ReductionDims() {
		if rd == d {
			return true
		}
	}
	return false
}

// unrollAt returns m extended with each candidate spatial unrolling at level
// lvl (allowed dims nil = no principle restriction), keeping only
// capacity-feasible extensions. Enumeration-tree rejects and
// capacity-infeasible unrollings are added to *pruned.
func (sc *search) unrollAt(m *mapping.Mapping, lvl int, allowed []tensor.Dim, pruned *int) []*mapping.Mapping {
	a := m.Arch
	cands, ustats := unroll.Enumerate(unroll.Space{
		Allowed:               allowed,
		ReductionDims:         m.Workload.ReductionDims(),
		Quota:                 quotas(m, lvl),
		Fanout:                a.Levels[lvl].Fanout,
		MinUtilization:        sc.opt.MinUtilization,
		AllowSpatialReduction: a.Levels[lvl].AllowSpatialReduction,
		MaxCandidates:         sc.opt.UnrollsPerStep,
		Ladder:                sc.comp.ladders.ladder,
	})
	*pruned += ustats.NodesVisited - ustats.Survivors
	var out []*mapping.Mapping
	for _, u := range cands {
		mu := m.Clone()
		for d, f := range u {
			if f > 1 {
				mu.Levels[lvl].Spatial[d] = f
			}
		}
		if feasible(mu, lvl) {
			out = append(out, mu)
		} else {
			*pruned++
		}
	}
	if len(out) == 0 {
		// The empty unrolling is always feasible if m was.
		out = append(out, m.Clone())
	}
	return out
}

// remainingQuota is the per-dimension factor budget not yet assigned
// anywhere in the mapping (lower tiles, this level's spatial factors, and —
// because unrolling precedes tiling — the next level's spatial factors all
// count against it).
func remainingQuota(m *mapping.Mapping) map[tensor.Dim]int {
	q := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d, bound := range m.Workload.Dims {
		q[d] = ceilDiv(bound, m.Coverage(d))
	}
	return q
}

// unguidedTileEffort counts the tiling-tree nodes an ordering-last strategy
// visits: the tree grown along every dimension, no Tiling Principle filter.
func (sc *search) unguidedTileEffort(ctx context.Context, m *mapping.Mapping, l int) int {
	_, stats := sc.enumerateTiles(ctx, m, l, nil)
	return stats.NodesVisited
}

// unguidedUnrollEffort counts the unrolling candidates an ordering-last
// strategy enumerates at this step's spatial levels without the Unrolling
// Principle filter.
func (sc *search) unguidedUnrollEffort(m *mapping.Mapping, l int) int {
	a := m.Arch
	n := 0
	for _, lvl := range []int{0, l + 1} {
		if lvl == 0 && l != 0 {
			continue
		}
		if a.Levels[lvl].Fanout <= 1 {
			continue
		}
		_, stats := unroll.Enumerate(unroll.Space{
			ReductionDims:         m.Workload.ReductionDims(),
			Quota:                 quotas(m, lvl),
			Fanout:                a.Levels[lvl].Fanout,
			MinUtilization:        sc.opt.MinUtilization,
			AllowSpatialReduction: a.Levels[lvl].AllowSpatialReduction,
			Ladder:                sc.comp.ladders.ladder,
		})
		n += stats.NodesVisited
	}
	return n
}

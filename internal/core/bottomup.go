package core

import (
	"context"
	"errors"
	"fmt"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/tile"
	"sunstone/internal/unroll"
)

// incumbent is the anytime best-so-far: the best *completed* (evaluable)
// mapping observed at any point of the search, maintained so an early stop
// can return real work instead of nothing. Only the fast path's scalars are
// tracked; the full Report is materialized once, at finish.
type incumbent struct {
	m        *mapping.Mapping
	score    float64
	energyPJ float64
	cycles   float64
}

// observe folds a scored, completed state into the incumbent, reporting
// whether it improved the best-so-far.
func (inc *incumbent) observe(s state) bool {
	if s.completed != nil && s.valid && (inc.m == nil || s.score < inc.score) {
		inc.m, inc.score, inc.energyPJ, inc.cycles = s.completed, s.score, s.energyPJ, s.cycles
		return true
	}
	return false
}

// finish stamps res with the incumbent and the stop reason. When the search
// was stopped before any valid mapping completed, it reports an error — the
// only case where an anytime return has nothing to give.
func (inc *incumbent) finish(sc *search, res Result, reason StopReason) (Result, error) {
	res.Stopped = reason
	if inc.m == nil {
		return res, fmt.Errorf("search stopped (%s) before any valid mapping was completed", reason)
	}
	res.Mapping = inc.m
	res.Report = sc.finalReport(inc.m, inc.energyPJ, inc.cycles)
	return res, nil
}

// seedIncumbent scores the trivial completion (everything at the top level)
// so even an immediate cancel returns a valid mapping.
func seedIncumbent(sc *search, inc *incumbent, res *Result, seed *mapping.Mapping) {
	trivial := complete(seed)
	if trivial == nil {
		return
	}
	sc.ctr.Generated.Inc()
	sc.ctr.Evaluated.Inc()
	edp, energyPJ, cycles, valid, err := sc.safeEvalFast(sc.evs[0], trivial)
	if err != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, err)
		return
	}
	if inc.observe(state{
		completed: trivial,
		score:     sc.opt.Objective.scoreScalars(edp, energyPJ, cycles, valid),
		energyPJ:  energyPJ,
		cycles:    cycles,
		valid:     valid,
	}) {
		sc.prog.incumbent("seed", -1, inc.score, inc.energyPJ, inc.cycles)
	}
}

// bottomUp optimizes level by level starting at the memory closest to the
// MACs (the paper's default; Table VI shows it examines an order of
// magnitude fewer candidates than top-down because completed-cost estimates
// are tight when the low levels — where most accesses happen — are fixed
// first). It polls ctx between orderings, candidates and levels; on
// cancellation it returns the incumbent best completed mapping.
func bottomUp(ctx context.Context, w *tensor.Workload, a *arch.Arch, sc *search) (Result, error) {
	opt := sc.opt
	orderings, ostats := sc.enumerateOrderings(ctx, w)
	res := Result{OrderingsConsidered: ostats.Survivors}

	states := []state{{m: mapping.New(w, a)}}
	top := len(a.Levels) - 1

	var inc incumbent
	seedIncumbent(sc, &inc, &res, states[0].m)

	for l := 0; l < top; l++ {
		next, done, out, err := sc.bottomUpLevel(ctx, l, states, orderings, &res, &inc)
		if done {
			return out, err
		}
		states = next
	}

	best := states[0]
	final := best.completed
	if final == nil {
		// Evaluation of the winner was skipped or poisoned; fall back to
		// the incumbent.
		return inc.finish(sc, res, anytime.FromContext(ctx))
	}
	energyPJ, cycles := best.energyPJ, best.cycles
	if !opt.NoPolish {
		_, psp := obs.StartSpan(ctx, "polish")
		sc.prog.phase(obs.PhaseStarted, "polish", -1)
		var evals int
		var reason StopReason
		final, energyPJ, cycles, evals, reason = polish(ctx, sc, final, best.score, energyPJ, cycles, orderings)
		res.SpaceSize += evals
		res.Stopped = reason
		sc.prog.phase(obs.PhaseFinished, "polish", -1)
		psp.Arg("evals", evals).End()
	}
	res.Mapping = final
	res.Report = sc.finalReport(final, energyPJ, cycles)
	return res, nil
}

// enumerateOrderings runs the ordering trie under a span and charges its
// rejects to the candidate flow: every trie node examined but not surviving
// counts as generated + pruned-by-the-ordering-principle.
func (sc *search) enumerateOrderings(ctx context.Context, w *tensor.Workload) ([]order.Ordering, order.Stats) {
	_, osp := obs.StartSpan(ctx, "orderings")
	orderings, ostats := order.Enumerate(w)
	rejects := ostats.NodesVisited - ostats.Survivors
	if rejects > 0 {
		sc.ctr.Generated.Add(uint64(rejects))
		sc.ctr.PrunedOrdering.Add(uint64(rejects))
	}
	osp.Arg("survivors", ostats.Survivors).Arg("visited", ostats.NodesVisited).End()
	return orderings, ostats
}

// bottomUpLevel runs one level of the bottom-up pass: expand every beam
// state, dedupe, evaluate the fan-out, prune to the next beam. When the
// search must return at this level — cancellation, no feasible candidates —
// it reports done=true with the final (Result, error); otherwise it hands
// back the next beam. Extracted so the level's span and progress phase close
// on every early return.
func (sc *search) bottomUpLevel(ctx context.Context, l int, states []state, orderings []order.Ordering, res *Result, inc *incumbent) (next []state, done bool, out Result, err error) {
	a := states[0].m.Arch
	lctx, lsp := obs.StartSpanf(ctx, "level %d (%s)", l, a.Levels[l].Name)
	defer lsp.End()
	sc.prog.phasef(obs.PhaseStarted, l, "level %d (%s)", l, a.Levels[l].Name)
	defer sc.prog.phasef(obs.PhaseFinished, l, "level %d (%s)", l, a.Levels[l].Name)

	if r := anytime.FromContext(ctx); r != StopComplete {
		out, err = inc.finish(sc, *res, r)
		return nil, true, out, err
	}
	_, esp := obs.StartSpan(lctx, "enumerate")
	var produced []*mapping.Mapping
	for _, st := range states {
		cands, effort := sc.expandLevel(ctx, st.m, l, orderings)
		produced = append(produced, cands...)
		res.SpaceSize += effort
		if anytime.FromContext(ctx) != StopComplete {
			break // partial batch: score what we have, then stop above
		}
	}
	esp.Arg("produced", len(produced)).End()
	if len(produced) == 0 {
		if r := anytime.FromContext(ctx); r != StopComplete {
			out, err = inc.finish(sc, *res, r)
			return nil, true, out, err
		}
		return nil, true, *res, fmt.Errorf("no feasible candidates at level %d (%s): tiles cannot fit", l, a.Levels[l].Name)
	}
	// Space size counts candidates the enumeration examined, so it is
	// charged before deduplication; the duplicates just don't pay for a
	// second completion + evaluation.
	res.SpaceSize += len(produced)
	sc.ctr.Generated.Add(uint64(len(produced)))
	produced = sc.dedupe(produced)
	vctx, vsp := obs.StartSpan(lctx, "evaluate")
	scored, panics := sc.evalAll(vctx, produced)
	vsp.Arg("candidates", len(produced)).End()
	for _, e := range panics {
		res.CandidateErrors = appendCapped(res.CandidateErrors, e)
	}
	next = sc.prunedAndCount(scored)
	if len(next) == 0 {
		if r := anytime.FromContext(ctx); r != StopComplete {
			out, err = inc.finish(sc, *res, r)
			return nil, true, out, err
		}
		return nil, true, *res, errors.Join(append([]error{fmt.Errorf("all candidates at level %d are invalid", l)}, res.CandidateErrors...)...)
	}
	if inc.observe(next[0]) {
		sc.prog.incumbent(fmt.Sprintf("level %d (%s)", l, a.Levels[l].Name), l, inc.score, inc.energyPJ, inc.cycles)
	}
	if r := anytime.FromContext(ctx); r != StopComplete {
		out, err = inc.finish(sc, *res, r)
		return nil, true, out, err
	}
	return next, false, Result{}, nil
}

// appendCapped appends err to errs unless the cap is reached.
func appendCapped(errs []error, err error) []error {
	if len(errs) >= maxCandidateErrors {
		return errs
	}
	return append(errs, err)
}

// expandLevel generates the candidate extensions of partial mapping base at
// step l: loop ordering for level l+1, tiling of level l, spatial unrolling
// at level 0 (step 0 only) and at level l+1. Returns the candidates plus the
// enumeration effort (tree nodes visited), which depends on the intra-level
// Strategy. Cancellation is polled between orderings — the bounded unit of
// work here — so a stop truncates the candidate set rather than discarding
// it.
//
// Enumeration rejects — tiling-tree nodes that never became a candidate,
// unrolling choices cut by the utilization filter or capacity — are charged
// to the candidate flow here, accumulated locally and flushed once per call
// so the hot enumeration loops never touch an atomic.
func (sc *search) expandLevel(ctx context.Context, base *mapping.Mapping, l int, orderings []order.Ordering) ([]*mapping.Mapping, int) {
	opt := sc.opt
	w := base.Workload
	a := base.Arch
	effort := 0
	prunedTiling, prunedUnrolling := 0, 0
	poll := &anytime.Poller{Ctx: ctx}

	// Strategy accounting: the non-default intra-level orders enumerate
	// their first stage without the ordering's principle guidance and
	// filter later, so they visit extra nodes for the same final set.
	switch opt.Strategy {
	case TileUnrollOrder:
		effort += unguidedTileEffort(ctx, base, l, opt)
	case UnrollTileOrder:
		effort += unguidedUnrollEffort(base, l, opt)
		effort += unguidedTileEffort(ctx, base, l, opt)
	}

	var out []*mapping.Mapping
	for oi := range orderings {
		if poll.Stop() != StopComplete {
			break
		}
		o := &orderings[oi]
		m1 := base.Clone()
		m1.Levels[l+1].Order = o.Complete(w)
		grow := growDimsFor(w, o)

		// Step 0 also assigns the unrolling below the first memory level
		// (e.g. the DianNao NFU between the on-chip buffers and the MACs).
		bases := []*mapping.Mapping{m1}
		if l == 0 && a.Levels[0].Fanout > 1 {
			bases = unrollAt(m1, 0, nil, opt, &prunedUnrolling)
			effort += len(bases)
		}

		// Unrolling is settled before tiling (the paper's default
		// intra-level order, Table VI row 1): the spatial fanout must claim
		// its share of the factor budget before the maximal-tile search
		// consumes it, or the PE array is left underutilized.
		for _, m2 := range bases {
			withSpatial := []*mapping.Mapping{m2}
			if a.Levels[l+1].Fanout > 1 {
				withSpatial = unrollAt(m2, l+1, grow, opt, &prunedUnrolling)
				effort += len(withSpatial)
			}
			for _, m3 := range withSpatial {
				tiles, tstats := enumerateTiles(ctx, m3, l, grow, opt)
				effort += tstats.NodesVisited
				prunedTiling += tstats.NodesVisited - tstats.Survivors
				for _, tc := range tiles {
					m4 := m3.Clone()
					for d, f := range tc {
						if f > 1 {
							m4.Levels[l].Temporal[d] = f
						}
					}
					residualFill(m4, l, grow)
					out = append(out, m4)
				}
			}
		}
	}
	if prunedTiling > 0 {
		sc.ctr.Generated.Add(uint64(prunedTiling))
		sc.ctr.PrunedTiling.Add(uint64(prunedTiling))
	}
	if prunedUnrolling > 0 {
		sc.ctr.Generated.Add(uint64(prunedUnrolling))
		sc.ctr.PrunedUnrolling.Add(uint64(prunedUnrolling))
	}
	return out, effort
}

// enumerateTiles runs the tiling tree for level l of partial mapping m with
// the given grow dimensions, checking capacity feasibility from level l up.
// Capacity probes go through a fitChecker — precomputed integer tables that
// answer exactly what writing the factors into the mapping and calling
// feasible would, without per-probe maps or allocation. A canceled context
// makes the predicate reject everything, which collapses the remaining tree
// growth within a few dozen probes.
func enumerateTiles(ctx context.Context, m *mapping.Mapping, l int, grow []tensor.Dim, opt Options) ([]tile.Candidate, tile.Stats) {
	fc := newFitChecker(m, l)
	poll := &anytime.Poller{Ctx: ctx, Every: 64}
	return tile.Enumerate(tile.Space{
		GrowDims: grow,
		Quota:    remainingQuota(m),
		FitsVec: func(ds []tensor.Dim, fs []int) bool {
			if poll.Stop() != StopComplete {
				return false
			}
			return fc.fits(ds, fs)
		},
		MaxCandidates: opt.TilesPerStep,
	})
}

// residualFill deterministically grows the non-grow dimensions of the tile
// at level l into whatever capacity the OP-maximal tile left free. The
// Tiling Principle requires maximality only along OP's indexing dimensions;
// enlarging other dimensions within the remaining space moves upper-level
// loops into the tile and can only add intra-tile reuse, so it is a pure
// completion (no branching, not counted as search-space growth). Reduction
// dimensions fill first — keeping partial sums resident longest — then the
// rest in canonical order.
func residualFill(m *mapping.Mapping, l int, grow []tensor.Dim) {
	growSet := map[tensor.Dim]bool{}
	for _, d := range grow {
		growSet[d] = true
	}
	var fillDims []tensor.Dim
	for _, d := range m.Workload.ReductionDims() {
		if !growSet[d] {
			fillDims = append(fillDims, d)
		}
	}
	for _, d := range m.Workload.Order {
		if !growSet[d] && !isReduction(m, d) {
			fillDims = append(fillDims, d)
		}
	}
	quota := remainingQuota(m)
	for _, d := range fillDims {
		ladder := factor.Ladder(quota[d], 4)
		for i := len(ladder) - 1; i >= 0; i-- {
			f := ladder[i]
			if f <= m.Levels[l].T(d) {
				break
			}
			old := m.Levels[l].T(d)
			m.Levels[l].Temporal[d] = f
			if feasible(m, l) {
				break
			}
			if old > 1 {
				m.Levels[l].Temporal[d] = old
			} else {
				delete(m.Levels[l].Temporal, d)
			}
		}
	}
}

func isReduction(m *mapping.Mapping, d tensor.Dim) bool {
	for _, rd := range m.Workload.ReductionDims() {
		if rd == d {
			return true
		}
	}
	return false
}

// unrollAt returns m extended with each candidate spatial unrolling at level
// lvl (allowed dims nil = no principle restriction), keeping only
// capacity-feasible extensions. Enumeration-tree rejects and
// capacity-infeasible unrollings are added to *pruned.
func unrollAt(m *mapping.Mapping, lvl int, allowed []tensor.Dim, opt Options, pruned *int) []*mapping.Mapping {
	a := m.Arch
	cands, ustats := unroll.Enumerate(unroll.Space{
		Allowed:               allowed,
		ReductionDims:         m.Workload.ReductionDims(),
		Quota:                 quotas(m, lvl),
		Fanout:                a.Levels[lvl].Fanout,
		MinUtilization:        opt.MinUtilization,
		AllowSpatialReduction: a.Levels[lvl].AllowSpatialReduction,
		MaxCandidates:         opt.UnrollsPerStep,
	})
	*pruned += ustats.NodesVisited - ustats.Survivors
	var out []*mapping.Mapping
	for _, u := range cands {
		mu := m.Clone()
		for d, f := range u {
			if f > 1 {
				mu.Levels[lvl].Spatial[d] = f
			}
		}
		if feasible(mu, lvl) {
			out = append(out, mu)
		} else {
			*pruned++
		}
	}
	if len(out) == 0 {
		// The empty unrolling is always feasible if m was.
		out = append(out, m.Clone())
	}
	return out
}

// remainingQuota is the per-dimension factor budget not yet assigned
// anywhere in the mapping (lower tiles, this level's spatial factors, and —
// because unrolling precedes tiling — the next level's spatial factors all
// count against it).
func remainingQuota(m *mapping.Mapping) map[tensor.Dim]int {
	q := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d, bound := range m.Workload.Dims {
		q[d] = ceilDiv(bound, m.Coverage(d))
	}
	return q
}

// unguidedTileEffort counts the tiling-tree nodes an ordering-last strategy
// visits: the tree grown along every dimension, no Tiling Principle filter.
func unguidedTileEffort(ctx context.Context, m *mapping.Mapping, l int, opt Options) int {
	_, stats := enumerateTiles(ctx, m, l, nil, opt)
	return stats.NodesVisited
}

// unguidedUnrollEffort counts the unrolling candidates an ordering-last
// strategy enumerates at this step's spatial levels without the Unrolling
// Principle filter.
func unguidedUnrollEffort(m *mapping.Mapping, l int, opt Options) int {
	a := m.Arch
	n := 0
	for _, lvl := range []int{0, l + 1} {
		if lvl == 0 && l != 0 {
			continue
		}
		if a.Levels[lvl].Fanout <= 1 {
			continue
		}
		_, stats := unroll.Enumerate(unroll.Space{
			ReductionDims:         m.Workload.ReductionDims(),
			Quota:                 quotas(m, lvl),
			Fanout:                a.Levels[lvl].Fanout,
			MinUtilization:        opt.MinUtilization,
			AllowSpatialReduction: a.Levels[lvl].AllowSpatialReduction,
		})
		n += stats.NodesVisited
	}
	return n
}

package core

import (
	"math"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

func conv2D(t testing.TB, n, k, c, p, q, r, s int) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("conv2d",
		map[tensor.Dim]int{"N": n, "K": k, "C": c, "P": p, "Q": q, "R": r, "S": s},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{
			tensor.A("N"), tensor.A("C"), tensor.Win("P", 1, "R", 1), tensor.Win("Q", 1, "S", 1),
		}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{
			tensor.A("K"), tensor.A("C"), tensor.A("R"), tensor.A("S"),
		}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{
			tensor.A("N"), tensor.A("K"), tensor.A("P"), tensor.A("Q"),
		}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func conv1D(t testing.TB, k, c, p, r int) *tensor.Workload {
	t.Helper()
	w, err := tensor.New("conv1d",
		map[tensor.Dim]int{"K": k, "C": c, "P": p, "R": r},
		&tensor.Tensor{Name: arch.Ifmap, Axes: []tensor.Axis{tensor.Win("P", 1, "R", 1), tensor.A("C")}},
		&tensor.Tensor{Name: arch.Weight, Axes: []tensor.Axis{tensor.A("K"), tensor.A("C"), tensor.A("R")}},
		&tensor.Tensor{Name: arch.Ofmap, Axes: []tensor.Axis{tensor.A("K"), tensor.A("P")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOptimizeTinyConv(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	res, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("result must be valid: %v", res.Report.Invalid)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("returned mapping invalid: %v", err)
	}
	if res.SpaceSize <= 0 || res.OrderingsConsidered <= 0 {
		t.Errorf("bad stats: %+v", res)
	}
	// The optimized mapping must beat naive DRAM streaming by a wide margin.
	naive := mapping.New(w, a)
	for d, bound := range w.Dims {
		naive.Levels[1].Temporal[d] = bound
	}
	rNaive := cost.Evaluate(naive)
	if res.Report.EnergyPJ >= rNaive.EnergyPJ/2 {
		t.Errorf("optimizer result (%.0f pJ) should be at least 2x better than naive (%.0f pJ)",
			res.Report.EnergyPJ, rNaive.EnergyPJ)
	}
}

func TestOptimizeUsesSpatialFanout(t *testing.T) {
	w := conv2D(t, 1, 32, 32, 16, 16, 3, 3)
	a := arch.TinySpatial(512, 1<<18, 16)
	res, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.PEUtilization() < 0.5 {
		t.Errorf("PE utilization = %.2f, want >= 0.5 (high-throughput pruning)",
			res.Mapping.PEUtilization())
	}
}

func TestOptimizeConventional(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	a := arch.Conventional()
	res, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
	if res.Report.EDP <= 0 || math.IsInf(res.Report.EDP, 1) {
		t.Errorf("EDP = %v", res.Report.EDP)
	}
}

func TestOptimizeSimbaMultiLevelSpatial(t *testing.T) {
	// The headline scalability claim: Sunstone handles architectures with
	// multiple spatial levels (Simba) out of the box.
	w := conv2D(t, 1, 64, 64, 8, 8, 3, 3)
	a := arch.Simba()
	res, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
	// Some spatial level must actually be used.
	spatial := 1
	for l := range res.Mapping.Levels {
		spatial *= res.Mapping.Levels[l].SpatialProduct()
	}
	if spatial < 8 {
		t.Errorf("Simba mapping uses spatial product %d, want >= 8", spatial)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	w := conv1D(t, 8, 8, 28, 3)
	a := arch.TinySpatial(256, 1<<16, 4)
	r1, err1 := Optimize(w, a, Options{})
	r2, err2 := Optimize(w, a, Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Report.EDP != r2.Report.EDP {
		t.Errorf("non-deterministic: %v vs %v", r1.Report.EDP, r2.Report.EDP)
	}
	if r1.Mapping.String() != r2.Mapping.String() {
		t.Errorf("non-deterministic mapping:\n%s\nvs\n%s", r1.Mapping, r2.Mapping)
	}
}

func TestTopDownVsBottomUp(t *testing.T) {
	// Table VI shape: top-down examines far more candidates; EDPs are in
	// the same ballpark.
	w := conv1D(t, 16, 16, 28, 3)
	a := arch.TinySpatial(512, 1<<16, 16)
	bu, err := Optimize(w, a, Options{Direction: BottomUp})
	if err != nil {
		t.Fatal(err)
	}
	td, err := Optimize(w, a, Options{Direction: TopDown, TopDownVisitBudget: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if !bu.Report.Valid || !td.Report.Valid {
		t.Fatalf("both must be valid: %v / %v", bu.Report.Invalid, td.Report.Invalid)
	}
	if td.SpaceSize <= bu.SpaceSize {
		t.Errorf("top-down space (%d) should exceed bottom-up (%d)", td.SpaceSize, bu.SpaceSize)
	}
	// Same ballpark: within 4x either way.
	ratio := bu.Report.EDP / td.Report.EDP
	if ratio > 4 || ratio < 0.25 {
		t.Errorf("EDP ratio bottom-up/top-down = %.2f, want within [0.25, 4]", ratio)
	}
}

func TestIntraLevelStrategies(t *testing.T) {
	// Table VI: intra-level order changes space size but not quality.
	w := conv1D(t, 16, 16, 28, 3)
	a := arch.TinySpatial(512, 1<<16, 16)
	var edps []float64
	var sizes []int
	for _, s := range []Strategy{OrderTileUnroll, TileUnrollOrder, UnrollTileOrder} {
		res, err := Optimize(w, a, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		edps = append(edps, res.Report.EDP)
		sizes = append(sizes, res.SpaceSize)
	}
	for i := 1; i < len(edps); i++ {
		if math.Abs(edps[i]-edps[0]) > 1e-9*edps[0] {
			t.Errorf("strategy %d EDP %v differs from default %v", i, edps[i], edps[0])
		}
	}
	if sizes[1] <= sizes[0] || sizes[2] <= sizes[0] {
		t.Errorf("ordering-last strategies should enumerate more: %v", sizes)
	}
}

func TestOptimizeMTTKRP(t *testing.T) {
	// Versatility: a non-conv workload runs through the same pipeline.
	w, err := tensor.New("mttkrp",
		map[tensor.Dim]int{"I": 64, "J": 32, "K": 16, "L": 16},
		&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("I"), tensor.A("K"), tensor.A("L")}},
		&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("K"), tensor.A("J")}},
		&tensor.Tensor{Name: "C", Axes: []tensor.Axis{tensor.A("L"), tensor.A("J")}},
		&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("I"), tensor.A("J")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.TinySpatial(1024, 1<<18, 16)
	res, optErr := Optimize(w, a, Options{})
	if optErr != nil {
		t.Fatal(optErr)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
}

func TestOptimizeRejectsBadInputs(t *testing.T) {
	w := conv1D(t, 8, 8, 28, 3)
	badArch := &arch.Arch{Name: "bad"}
	if _, err := Optimize(w, badArch, Options{}); err == nil {
		t.Error("invalid arch must error")
	}
	badW := &tensor.Workload{Name: "bad"}
	if _, err := Optimize(badW, arch.Tiny(64), Options{}); err == nil {
		t.Error("invalid workload must error")
	}
}

func TestOptimizeImperfectDims(t *testing.T) {
	// Prime-ish dims (Inception-v3 has P=149): padding must keep the
	// mapping legal.
	w := conv1D(t, 7, 13, 149, 3)
	a := arch.Tiny(512)
	res, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("mapping with padded dims invalid: %v", err)
	}
	if res.Report.MACs < w.MACs() {
		t.Errorf("padded MACs %d below true MACs %d", res.Report.MACs, w.MACs())
	}
}

func TestDirectionAndStrategyStrings(t *testing.T) {
	if BottomUp.String() != "bottom-up" || TopDown.String() != "top-down" {
		t.Error("direction strings")
	}
	if OrderTileUnroll.String() == "" || TileUnrollOrder.String() == "" || UnrollTileOrder.String() == "" {
		t.Error("strategy strings")
	}
}

func TestObjectives(t *testing.T) {
	w := conv2D(t, 1, 32, 32, 16, 16, 3, 3)
	a := arch.TinySpatial(512, 1<<18, 16)
	edp, err := Optimize(w, a, Options{Objective: MinEDP})
	if err != nil {
		t.Fatal(err)
	}
	en, err := Optimize(w, a, Options{Objective: MinEnergy})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := Optimize(w, a, Options{Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	ed2, err := Optimize(w, a, Options{Objective: MinED2P})
	if err != nil {
		t.Fatal(err)
	}
	// Each specialist must be at least as good as the EDP generalist on its
	// own metric.
	if en.Report.EnergyPJ > edp.Report.EnergyPJ*1.0001 {
		t.Errorf("MinEnergy (%.3e) worse than MinEDP (%.3e) on energy",
			en.Report.EnergyPJ, edp.Report.EnergyPJ)
	}
	if dl.Report.Cycles > edp.Report.Cycles*1.0001 {
		t.Errorf("MinDelay (%.0f) worse than MinEDP (%.0f) on cycles",
			dl.Report.Cycles, edp.Report.Cycles)
	}
	if !ed2.Report.Valid {
		t.Error("MinED2P result invalid")
	}
	for _, o := range []Objective{MinEDP, MinEnergy, MinDelay, MinED2P} {
		if o.String() == "" {
			t.Error("objective string empty")
		}
	}
}

func TestObjectiveScoreInvalid(t *testing.T) {
	var rep cost.Report // zero value: invalid
	if !math.IsInf(MinEDP.Score(rep), 1) {
		t.Error("invalid reports must score +Inf")
	}
}

func TestOptimizeInfeasibleArch(t *testing.T) {
	// Failure injection: an L1 too small for even a unit tile (one word of
	// each datatype) must produce a clear error, not a bogus mapping.
	w := conv1D(t, 8, 8, 28, 3)
	a := arch.Tiny(2)
	_, err := Optimize(w, a, Options{})
	if err == nil {
		t.Fatal("expected an error for an infeasible architecture")
	}
}

func TestOptimizeTopDownInfeasible(t *testing.T) {
	w := conv1D(t, 8, 8, 28, 3)
	a := arch.Tiny(2)
	_, err := Optimize(w, a, Options{Direction: TopDown, TopDownVisitBudget: 10_000})
	if err == nil {
		t.Fatal("top-down must also report infeasibility")
	}
}

func TestOptimizeWithCustomModel(t *testing.T) {
	// The naive (no sliding-reuse) model is a supported configuration.
	w := conv1D(t, 8, 8, 28, 3)
	a := arch.Tiny(256)
	res, err := Optimize(w, a, Options{Model: cost.Model{SlidingReuse: false}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
}

package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/obs"
)

// TestCounterIdentity pins the candidate-flow accounting on the three preset
// architectures: every generated unit ends in exactly one bucket, so for an
// uncancelled run Generated == Pruned() + Deduped + Evaluated and nothing is
// skipped. The post-evaluation cuts (bound, beam) must stay within Evaluated.
func TestCounterIdentity(t *testing.T) {
	archs := []struct {
		name string
		a    *arch.Arch
	}{
		{"conventional", arch.Conventional()},
		{"simba", arch.Simba()},
		{"diannao", arch.DianNao()},
	}
	for _, tc := range archs {
		for _, dir := range []Direction{BottomUp, TopDown} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, dir), func(t *testing.T) {
				w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
				res, err := Optimize(w, tc.a, Options{Direction: dir})
				if err != nil {
					t.Fatal(err)
				}
				s := res.Stats
				if s.Generated == 0 || s.Evaluated == 0 {
					t.Fatalf("counters did not move: %+v", s)
				}
				if s.Skipped != 0 {
					t.Errorf("uncancelled run skipped %d candidates", s.Skipped)
				}
				if got, want := s.Pruned()+s.Deduped+s.Evaluated+s.Skipped, s.Generated; got != want {
					t.Errorf("flow identity broken: pruned %d + deduped %d + evaluated %d + skipped %d = %d, generated = %d",
						s.Pruned(), s.Deduped, s.Evaluated, s.Skipped, got, want)
				}
				if s.PrunedBound+s.PrunedBeam > s.Evaluated {
					t.Errorf("post-evaluation cuts (%d bound + %d beam) exceed evaluations (%d)",
						s.PrunedBound, s.PrunedBeam, s.Evaluated)
				}
				if sum := s.PrunedOrdering + s.PrunedTiling + s.PrunedUnrolling + s.BoundPruned; sum != s.Pruned() {
					t.Errorf("Pruned() = %d does not partition into its components (%d)", s.Pruned(), sum)
				}
				if s.EvalCacheHits+s.EvalCacheMisses == 0 {
					t.Error("memo-cache counters did not move")
				}
				// With the analytical layer off, the bound bucket must stay
				// empty and the identity must still close.
				off, err := Optimize(w, tc.a, Options{Direction: dir, Analytical: &AnalyticalOptions{}})
				if err != nil {
					t.Fatal(err)
				}
				so := off.Stats
				if so.BoundPruned != 0 {
					t.Errorf("analytical layer off but BoundPruned = %d", so.BoundPruned)
				}
				if off.SeedEDP != 0 {
					t.Errorf("analytical layer off but SeedEDP = %g", off.SeedEDP)
				}
				if got, want := so.Pruned()+so.Deduped+so.Evaluated+so.Skipped, so.Generated; got != want {
					t.Errorf("flow identity broken with analytics off: %d != generated %d", got, want)
				}
			})
		}
	}
}

// TestProgressEvents checks the streaming contract on a completed search:
// the optimize phase brackets everything, at least one incumbent improvement
// fires, improvements are monotone, and counter snapshots never run
// backwards. Run under -race this also proves the callback never races with
// the evaluation fan-out.
func TestProgressEvents(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	var events []obs.ProgressEvent
	var returned atomic.Bool
	opt := Options{
		Threads: 4,
		Progress: func(ev obs.ProgressEvent) {
			if returned.Load() {
				t.Error("progress event delivered after OptimizeContext returned")
			}
			events = append(events, ev)
		},
	}
	res, err := Optimize(w, arch.Conventional(), opt)
	returned.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("expected a full event stream, got %d events", len(events))
	}
	first, last := events[0], events[len(events)-1]
	if first.Kind != obs.PhaseStarted || first.Phase != "optimize" {
		t.Errorf("first event = %v %q, want phase-started optimize", first.Kind, first.Phase)
	}
	if last.Kind != obs.PhaseFinished || last.Phase != "optimize" {
		t.Errorf("last event = %v %q, want phase-finished optimize", last.Kind, last.Phase)
	}
	improvements := 0
	bestScore := 0.0
	var prevGen uint64
	for i, ev := range events {
		if ev.Generated < prevGen {
			t.Errorf("event %d: Generated went backwards (%d -> %d)", i, prevGen, ev.Generated)
		}
		prevGen = ev.Generated
		if ev.Kind != obs.IncumbentImproved {
			continue
		}
		if improvements > 0 && ev.Score >= bestScore {
			t.Errorf("event %d: incumbent got worse (%g -> %g)", i, bestScore, ev.Score)
		}
		bestScore = ev.Score
		improvements++
	}
	if improvements == 0 {
		t.Error("no incumbent-improved events on a successful search")
	}
	if last.Generated != res.Stats.Generated {
		t.Errorf("final event snapshot Generated = %d, Result.Stats.Generated = %d",
			last.Generated, res.Stats.Generated)
	}
}

// TestProgressNoEventsAfterCancel cancels mid-search from inside the
// callback and verifies the synchronous-delivery guarantee: once
// OptimizeContext returns, the stream is over.
func TestProgressNoEventsAfterCancel(t *testing.T) {
	w := conv2D(t, 4, 64, 64, 28, 28, 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var returned atomic.Bool
	var n atomic.Int64
	opt := Options{
		Progress: func(ev obs.ProgressEvent) {
			if returned.Load() {
				t.Error("progress event delivered after OptimizeContext returned")
			}
			if n.Add(1) == 3 {
				cancel()
			}
		},
	}
	res, err := OptimizeContext(ctx, w, arch.Simba(), opt)
	returned.Store(true)
	if err != nil && res.Mapping == nil {
		t.Fatalf("cancel before any incumbent: err=%v", err)
	}
	if res.Stopped != StopCanceled && res.Stopped != StopComplete {
		t.Errorf("Stopped = %v, want canceled (or complete on a fast machine)", res.Stopped)
	}
	// Give any stray goroutine a beat to misfire before the test ends.
	time.Sleep(20 * time.Millisecond)
}

// TestProgressCallbackPanic proves a panicking callback is contained like a
// panicking candidate: the search completes, the emitter shuts itself off
// after the first panic, and the failure surfaces in CandidateErrors.
func TestProgressCallbackPanic(t *testing.T) {
	w := conv1D(t, 16, 16, 28, 3)
	var calls atomic.Int64
	opt := Options{
		Progress: func(ev obs.ProgressEvent) {
			calls.Add(1)
			panic("broken progress sink")
		},
	}
	res, err := Optimize(w, arch.Tiny(256), opt)
	if err != nil {
		t.Fatalf("a panicking callback must not fail the search: %v", err)
	}
	if res.Mapping == nil || !res.Report.Valid {
		t.Fatal("search result lost to a callback panic")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("callback ran %d times, want exactly 1 (emitter must disable itself)", got)
	}
	found := false
	for _, cerr := range res.CandidateErrors {
		if strings.Contains(cerr.Error(), "broken progress sink") {
			found = true
		}
	}
	if !found {
		t.Errorf("callback panic not reported in CandidateErrors: %v", res.CandidateErrors)
	}
}

// chromeEvent mirrors the trace-event JSON schema the exporter emits.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TestTraceSpansPerPhasePerLevel runs a traced search and checks the span
// taxonomy: one root optimize span, an orderings span, and per memory level
// one level span containing an enumerate and an evaluate child, plus the
// final polish span — all exported as well-formed Chrome trace JSON.
func TestTraceSpansPerPhasePerLevel(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	a := arch.Conventional()
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := OptimizeContext(ctx, w, a, Options{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("span %q has negative timing (ts=%v dur=%v)", ev.Name, ev.Ts, ev.Dur)
		}
		switch {
		case strings.HasPrefix(ev.Name, "optimize "):
			counts["optimize"]++
		case strings.HasPrefix(ev.Name, "level "):
			counts["level"]++
		default:
			counts[ev.Name]++
		}
	}
	// The bottom-up pass runs one phase per level below the top: the
	// unbounded top level absorbs whatever the lower levels left behind and
	// gets no pass of its own.
	passes := len(a.Levels) - 1
	want := map[string]int{
		"optimize":  1,
		"orderings": 1,
		"level":     passes,
		"enumerate": passes,
		"evaluate":  passes,
		"polish":    1,
	}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("trace has %d %q spans, want %d (all spans: %v)", counts[name], name, n, counts)
		}
	}
}

package core

import (
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// fitChecker answers the tiling tree's capacity probes — "does a tile with
// these level-l temporal factors still fit every bounded buffer at levels
// [l, top)?" — without touching the mapping. It precomputes, once per
// enumeration, the extent contribution of everything already fixed (all
// temporal and spatial factors except level l's temporal, which the probe
// supplies), flattened into integer tables indexed by probe position. Each
// probe is then pure integer arithmetic: no maps, no allocation. The answers
// are identical to writing the factors into the mapping and calling feasible.
type fitChecker struct {
	m    *mapping.Mapping
	l    int
	init bool       // tables built (lazily, on the first probe)
	lvls []fitLevel // one per checked level l..top-1
}

type fitLevel struct {
	bufs []fitBuffer
}

type fitBuffer struct {
	capBits int64
	tens    []fitTensor
}

type fitTensor struct {
	bits int64
	axes []fitAxis
}

// fitAxis is one tensor axis: extent = 1 + Σ stride·(base·f − 1), where f is
// the probe factor for the term's dimension (1 when the dimension is not a
// grow dimension).
type fitAxis struct {
	terms []fitTerm
}

type fitTerm struct {
	stride int
	base   int // extent of everything fixed: Π T·S over levels ≤ L, minus level l's T
	probe  int // index into the probe factor vector, or -1
}

func newFitChecker(m *mapping.Mapping, l int) *fitChecker {
	return &fitChecker{m: m, l: l}
}

// build flattens the capacity constraints for probes over the grow
// dimensions ds. ds is stable for the whole enumeration, so this runs once.
func (fc *fitChecker) build(ds []tensor.Dim) {
	fc.init = true
	m, w, a := fc.m, fc.m.Workload, fc.m.Arch
	probeOf := func(d tensor.Dim) int {
		for i, gd := range ds {
			if gd == d {
				return i
			}
		}
		return -1
	}
	// base extent per dimension, accumulated level by level
	base := make(map[tensor.Dim]int, len(w.Dims))
	for _, d := range w.Order {
		base[d] = 1
	}
	top := len(m.Levels) - 1
	for L := 0; L < top; L++ {
		lm := &m.Levels[L]
		for _, d := range w.Order {
			f := lm.S(d)
			if L != fc.l {
				f *= lm.T(d)
			}
			base[d] *= f
		}
		if L < fc.l {
			continue
		}
		var fl fitLevel
		al := &a.Levels[L]
		for bi := range al.Buffers {
			buf := &al.Buffers[bi]
			if buf.Bytes == 0 {
				continue
			}
			fb := fitBuffer{capBits: buf.Bytes * 8}
			for _, t := range w.Tensors {
				if !buf.Holds(t.Name) {
					continue
				}
				ft := fitTensor{bits: int64(a.Bits(t.Name))}
				for _, ax := range t.Axes {
					var fa fitAxis
					for _, term := range ax {
						fa.terms = append(fa.terms, fitTerm{
							stride: term.Stride,
							base:   base[term.D],
							probe:  probeOf(term.D),
						})
					}
					ft.axes = append(ft.axes, fa)
				}
				fb.tens = append(fb.tens, ft)
			}
			fl.bufs = append(fl.bufs, fb)
		}
		fc.lvls = append(fc.lvls, fl)
	}
}

// fits is the FitsVec predicate: fs holds the probe's temporal factors,
// parallel to the ds slice passed to build.
func (fc *fitChecker) fits(ds []tensor.Dim, fs []int) bool {
	if !fc.init {
		fc.build(ds)
	}
	for li := range fc.lvls {
		fl := &fc.lvls[li]
		for bi := range fl.bufs {
			fb := &fl.bufs[bi]
			var usedBits int64
			for ti := range fb.tens {
				ft := &fb.tens[ti]
				fp := 1
				for ai := range ft.axes {
					e := 1
					for _, term := range ft.axes[ai].terms {
						n := term.base
						if term.probe >= 0 {
							n *= fs[term.probe]
						}
						if n <= 0 {
							n = 1
						}
						e += term.stride * (n - 1)
					}
					fp *= e
				}
				usedBits += int64(fp) * ft.bits
			}
			if usedBits > fb.capBits {
				return false
			}
		}
	}
	return true
}

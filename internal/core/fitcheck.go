package core

import (
	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// fitSkeleton is the static half of the capacity tables: per checked level,
// which bounded buffers exist, which tensors each holds, and each tensor's
// axis structure (stride and dimension per term). All of it depends only on
// (workload, arch), so Compile builds it once; per-enumeration work is then
// reduced to filling in the dynamic base extents of the mapping at hand.
type fitSkeleton struct {
	lvls []fitSkelLevel // one per level 0..top-1
}

type fitSkelLevel struct {
	bufs []fitSkelBuffer
}

type fitSkelBuffer struct {
	capBits int64
	tens    []fitSkelTensor
}

type fitSkelTensor struct {
	bits  int64
	axes  [][]fitSkelTerm
	terms int // total term count, so instantiation can size exactly
}

type fitSkelTerm struct {
	stride int
	d      tensor.Dim
}

// buildFitSkeleton flattens the bounded-buffer capacity constraints of every
// non-top level.
func buildFitSkeleton(w *tensor.Workload, a *arch.Arch) fitSkeleton {
	var sk fitSkeleton
	top := len(a.Levels) - 1
	for L := 0; L < top; L++ {
		var fl fitSkelLevel
		al := &a.Levels[L]
		for bi := range al.Buffers {
			buf := &al.Buffers[bi]
			if buf.Bytes == 0 {
				continue
			}
			fb := fitSkelBuffer{capBits: buf.Bytes * 8}
			for _, t := range w.Tensors {
				if !buf.Holds(t.Name) {
					continue
				}
				ft := fitSkelTensor{bits: int64(a.Bits(t.Name))}
				for _, ax := range t.Axes {
					var terms []fitSkelTerm
					for _, term := range ax {
						terms = append(terms, fitSkelTerm{stride: term.Stride, d: term.D})
						ft.terms++
					}
					ft.axes = append(ft.axes, terms)
				}
				fb.tens = append(fb.tens, ft)
			}
			fl.bufs = append(fl.bufs, fb)
		}
		sk.lvls = append(sk.lvls, fl)
	}
	return sk
}

// fitChecker answers the tiling tree's capacity probes — "does a tile with
// these level-l temporal factors still fit every bounded buffer at levels
// [l, top)?" — without touching the mapping. The static constraint structure
// comes precompiled from the problem's fitSkeleton; on the first probe the
// checker folds in the dynamic part (the extent contribution of every factor
// already fixed in the mapping, except level l's temporal which the probe
// supplies), flattened into integer tables indexed by probe position. Each
// probe is then pure integer arithmetic: no maps, no allocation. The answers
// are identical to writing the factors into the mapping and calling feasible.
type fitChecker struct {
	m    *mapping.Mapping
	l    int
	skel *fitSkeleton
	init bool       // tables built (lazily, on the first probe)
	lvls []fitLevel // one per checked level l..top-1
}

type fitLevel struct {
	bufs []fitBuffer
}

type fitBuffer struct {
	capBits int64
	tens    []fitTensor
}

type fitTensor struct {
	bits int64
	axes []fitAxis
}

// fitAxis is one tensor axis: extent = 1 + Σ stride·(base·f − 1), where f is
// the probe factor for the term's dimension (1 when the dimension is not a
// grow dimension).
type fitAxis struct {
	terms []fitTerm
}

type fitTerm struct {
	stride int
	base   int // extent of everything fixed: Π T·S over levels ≤ L, minus level l's T
	probe  int // index into the probe factor vector, or -1
}

func (sc *search) newFitChecker(m *mapping.Mapping, l int) *fitChecker {
	return &fitChecker{m: m, l: l, skel: &sc.comp.fit}
}

// build instantiates the skeleton for probes over the grow dimensions ds.
// ds is stable for the whole enumeration, so this runs once.
func (fc *fitChecker) build(ds []tensor.Dim) {
	fc.init = true
	m, w := fc.m, fc.m.Workload
	probeOf := func(d tensor.Dim) int {
		for i, gd := range ds {
			if gd == d {
				return i
			}
		}
		return -1
	}
	// base extent per dimension, accumulated level by level
	base := make(map[tensor.Dim]int, len(w.Dims))
	for _, d := range w.Order {
		base[d] = 1
	}
	top := len(m.Levels) - 1
	for L := 0; L < top; L++ {
		lm := &m.Levels[L]
		for _, d := range w.Order {
			f := lm.S(d)
			if L != fc.l {
				f *= lm.T(d)
			}
			base[d] *= f
		}
		if L < fc.l {
			continue
		}
		sl := &fc.skel.lvls[L]
		fl := fitLevel{bufs: make([]fitBuffer, 0, len(sl.bufs))}
		for bi := range sl.bufs {
			sb := &sl.bufs[bi]
			fb := fitBuffer{capBits: sb.capBits, tens: make([]fitTensor, 0, len(sb.tens))}
			for ti := range sb.tens {
				st := &sb.tens[ti]
				ft := fitTensor{bits: st.bits, axes: make([]fitAxis, 0, len(st.axes))}
				terms := make([]fitTerm, 0, st.terms)
				for _, ax := range st.axes {
					lo := len(terms)
					for _, term := range ax {
						terms = append(terms, fitTerm{
							stride: term.stride,
							base:   base[term.d],
							probe:  probeOf(term.d),
						})
					}
					ft.axes = append(ft.axes, fitAxis{terms: terms[lo:]})
				}
				fb.tens = append(fb.tens, ft)
			}
			fl.bufs = append(fl.bufs, fb)
		}
		fc.lvls = append(fc.lvls, fl)
	}
}

// fits is the FitsVec predicate: fs holds the probe's temporal factors,
// parallel to the ds slice passed to build.
func (fc *fitChecker) fits(ds []tensor.Dim, fs []int) bool {
	if !fc.init {
		fc.build(ds)
	}
	for li := range fc.lvls {
		fl := &fc.lvls[li]
		for bi := range fl.bufs {
			fb := &fl.bufs[bi]
			var usedBits int64
			for ti := range fb.tens {
				ft := &fb.tens[ti]
				fp := 1
				for ai := range ft.axes {
					e := 1
					for _, term := range ft.axes[ai].terms {
						n := term.base
						if term.probe >= 0 {
							n *= fs[term.probe]
						}
						if n <= 0 {
							n = 1
						}
						e += term.stride * (n - 1)
					}
					fp *= e
				}
				usedBits += int64(fp) * ft.bits
			}
			if usedBits > fb.capBits {
				return false
			}
		}
	}
	return true
}

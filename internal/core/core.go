// Package core implements the Sunstone dataflow optimizer — the paper's
// primary contribution.
//
// Sunstone optimizes level by level. At each memory level l (bottom-up, the
// default) it composes the three algebra-derived stages:
//
//   - loop ordering for the level above, from the pruned ordering trie
//     (internal/order) — this decides which operand OP is temporally reused
//     across level-l tiles;
//   - tiling of level l, from the tiling tree (internal/tile) grown only
//     along OP's indexing dimensions (the Tiling Principle);
//   - spatial unrolling across the next level's fanout (internal/unroll),
//     restricted to OP's indexing dimensions (the Unrolling Principle) and
//     filtered for high throughput.
//
// Partial mappings are scored by completing them (all remaining factors at
// the top level) and evaluating the full cost model; because most accesses
// happen at the lowest levels, these bottom-up estimates are tight, which is
// what makes the alpha-beta-style pruning effective (Section V-C of the
// paper). A beam of the best partial mappings is carried between levels.
//
// The package also implements the top-down variant and the three intra-level
// optimization orders studied in Table VI.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/order"
	"sunstone/internal/serde"
	"sunstone/internal/tensor"
)

// StopReason re-exports the anytime-search stop taxonomy (see
// internal/anytime): every Optimize entry point is an anytime algorithm that
// on cancellation, deadline, or budget exhaustion returns the best mapping
// completed so far with Result.Stopped set, instead of discarding work.
type StopReason = anytime.StopReason

// Stop reasons for Result.Stopped.
const (
	StopComplete = anytime.Complete
	StopDeadline = anytime.Deadline
	StopCanceled = anytime.Canceled
	StopBudget   = anytime.Budget
)

// Direction selects the inter-level optimization order (Table VI).
type Direction int

const (
	BottomUp Direction = iota
	TopDown
)

func (d Direction) String() string {
	if d == TopDown {
		return "top-down"
	}
	return "bottom-up"
}

// Strategy selects the intra-level optimization order (Table VI). All three
// converge on the same candidate set — the paper finds intra-level order
// does not significantly affect mapping quality — but they apply the
// principle-based filters at different points, so their enumeration effort
// (space size) differs.
type Strategy int

const (
	// OrderTileUnroll is the default described in Section III-C: pick an
	// ordering, grow tiles for it, then unroll for each ordering-tile pair.
	OrderTileUnroll Strategy = iota
	// TileUnrollOrder enumerates unconstrained tiles and unrollings first,
	// filtering by ordering compatibility last.
	TileUnrollOrder
	// UnrollTileOrder enumerates unrollings first, then tiles, then orders.
	UnrollTileOrder
)

func (s Strategy) String() string {
	switch s {
	case TileUnrollOrder:
		return "tiling->unrolling->ordering"
	case UnrollTileOrder:
		return "unrolling->tiling->ordering"
	default:
		return "ordering->tiling->unrolling"
	}
}

// Objective selects the figure of merit the search minimizes. The paper
// uses EDP throughout; energy-only, delay-only, and ED^2P are provided as
// extensions (useful for energy-constrained edge or latency-critical
// serving deployments).
type Objective int

const (
	// MinEDP minimizes energy x delay (the paper's merit; default).
	MinEDP Objective = iota
	// MinEnergy minimizes total energy.
	MinEnergy
	// MinDelay minimizes cycles.
	MinDelay
	// MinED2P minimizes energy x delay^2.
	MinED2P
)

func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "energy"
	case MinDelay:
		return "delay"
	case MinED2P:
		return "ED2P"
	default:
		return "EDP"
	}
}

// Score extracts the objective value from a report (lower is better;
// invalid reports score +Inf).
func (o Objective) Score(rep cost.Report) float64 {
	return o.scoreScalars(rep.EDP, rep.EnergyPJ, rep.Cycles, rep.Valid)
}

// scoreScalars is Score on the fast path's scalar tuple. The arithmetic is
// kept expression-identical to the Report-based form so scores are
// bit-for-bit the same whichever path produced the numbers.
func (o Objective) scoreScalars(edp, energyPJ, cycles float64, valid bool) float64 {
	if !valid {
		return math.Inf(1)
	}
	switch o {
	case MinEnergy:
		return energyPJ
	case MinDelay:
		return cycles
	case MinED2P:
		return energyPJ * cycles * cycles
	default:
		return edp
	}
}

// scoreFloor maps an admissible (energy, cycles) cost floor to a floor on
// the objective value: every Objective is monotone non-decreasing in both
// components, so a per-component floor yields a floor on the score. This is
// what lets cost.Session.LowerBound prune on any objective, not just EDP.
func (o Objective) scoreFloor(energyPJ, cycles float64) float64 {
	switch o {
	case MinEnergy:
		return energyPJ
	case MinDelay:
		return cycles
	case MinED2P:
		return energyPJ * cycles * cycles
	default:
		return energyPJ * cycles
	}
}

// Options configures the optimizer.
type Options struct {
	Direction Direction
	Strategy  Strategy
	// Objective is the figure of merit minimized (default MinEDP).
	Objective Objective
	// BeamWidth bounds the partial mappings carried between levels
	// (default 24).
	BeamWidth int
	// AlphaSlack multiplies the best completed EDP seen so far to form the
	// alpha-beta pruning bound for partial candidates (default 16).
	AlphaSlack float64
	// MinUtilization is the high-throughput threshold for spatial
	// unrolling (default 0.5).
	MinUtilization float64
	// TilesPerStep caps the tiling candidates kept per (state, ordering,
	// unrolling) at each level, preferring the largest tiles (default 8).
	TilesPerStep int
	// UnrollsPerStep caps the unrolling candidates kept per (state,
	// ordering) at each spatial level, preferring the highest utilization
	// (default 6).
	UnrollsPerStep int
	// NoPolish disables the greedy local-move refinement applied to the
	// bottom-up search's best mapping.
	NoPolish bool
	// Threads bounds the worker goroutines used inside one search — the
	// candidate-expansion, evaluation, and polish fan-outs all share one
	// pool of this size (default GOMAXPROCS). Results are bit-identical at
	// every thread count; see TestParallelParity.
	Threads int
	// Model is the cost model (default cost.Default).
	Model cost.Model
	// TopDownVisitBudget caps the candidates a top-down search may
	// enumerate before it settles for the best found (default 4,000,000).
	// The cap exists because the top-down space is orders of magnitude
	// larger (Table VI) — exactly the pathology the paper reports.
	TopDownVisitBudget int
	// Timeout bounds the search wall-clock (0 = unbounded). When it
	// expires the search stops at the next cancellation poll and returns
	// the best mapping completed so far with Result.Stopped = StopDeadline.
	// Equivalent to passing OptimizeContext a context with that deadline.
	Timeout time.Duration
	// Progress, when non-nil, receives live search events: phase-started /
	// phase-finished for every per-level pass (and polish), and
	// incumbent-improved whenever the best-so-far completed mapping gets
	// better. Events are emitted synchronously from the goroutine driving
	// the search, incumbent improvements at a bounded rate; no event is
	// delivered after OptimizeContext returns. A panicking callback is
	// isolated like a poisoned candidate: progress reporting stops, the
	// panic is recorded in Result.CandidateErrors, and the search itself
	// continues unharmed.
	Progress obs.ProgressFunc
	// Analytical configures the closed-form seeding and bound-tightening
	// layer. Nil means "use the defaults" (both on, like every other zero
	// field); pass an explicit &AnalyticalOptions{} to turn both off and
	// recover the pre-seeding search behavior exactly.
	Analytical *AnalyticalOptions
	// WarmStart, when non-nil, is a previously found complete mapping for
	// this same (workload, arch) problem — typically a crash-recovery
	// checkpoint — installed as the initial alpha-beta incumbent after the
	// analytic seed. It is rebound onto the search's compiled workload/arch
	// instances and fully validated first; a warm start that does not fit
	// degrades to a cold search (recorded in Result.CandidateErrors), it
	// never fails the run. The resumed search therefore finishes equal or
	// better than the checkpoint, never worse.
	WarmStart *mapping.Mapping
}

// AnalyticalOptions groups the knobs of the analytical layer: the one-shot
// GOMA-style seed mapping installed as the alpha-beta incumbent before
// enumeration starts, and the admissible per-candidate lower bound that cuts
// subtrees whose cost floor already exceeds the incumbent. Both default to
// on (see DefaultOptions); both are sound — the seed only tightens the
// incumbent the search already maintains, and the bound only discards
// candidates that provably cannot beat it — so disabling them changes how
// much work the search does, never which mapping it returns.
type AnalyticalOptions struct {
	// Seed computes, validates, and fully evaluates a closed-form seed
	// mapping before enumeration starts, installing it as the initial
	// alpha-beta incumbent. A seed that fails to build or validate degrades
	// to the pre-seeding behavior (recorded in Result.CandidateErrors),
	// never a hard failure.
	Seed bool
	// Bounds consults the compile-time admissible lower bound
	// (cost.Session.LowerBound) on every materialized candidate before
	// evaluation, discarding those whose floor already exceeds the
	// incumbent. Cuts are counted in SearchStats.BoundPruned.
	Bounds bool
}

// Maximum sane values for Options.Validate: beyond these the caller almost
// certainly passed a wrong unit (e.g. nanoseconds as a count) and the search
// would never finish or would exhaust memory.
const (
	maxBeamWidth  = 1 << 20
	maxPerStep    = 1 << 20
	maxAlphaSlack = 1e12
)

// MaxThreads is the largest Options.Threads value Validate accepts. Exported
// so callers that accept a thread count from untrusted input — the scheduler
// service's job-submission `threads` field — can validate against the same
// bound before building Options.
const MaxThreads = 4096

// Validate rejects option values that today would be silently defaulted or
// silently accepted but can never be what the caller meant: NaN or negative
// floats, MinUtilization above 1 (no unrolling can exceed full utilization),
// and absurd Threads/BeamWidth magnitudes. Zero values remain "use the
// default" and are always accepted. Optimize calls this on every run.
func (o Options) Validate() error {
	var errs []error
	badf := func(name string, v float64) {
		errs = append(errs, fmt.Errorf("Options.%s = %v: must be a finite non-negative number (0 = default)", name, v))
	}
	if math.IsNaN(o.AlphaSlack) || math.IsInf(o.AlphaSlack, 0) || o.AlphaSlack < 0 {
		badf("AlphaSlack", o.AlphaSlack)
	} else if o.AlphaSlack > maxAlphaSlack {
		errs = append(errs, fmt.Errorf("Options.AlphaSlack = %v: larger than %g disables pruning entirely; use 0 for the default", o.AlphaSlack, float64(maxAlphaSlack)))
	}
	if math.IsNaN(o.MinUtilization) || math.IsInf(o.MinUtilization, 0) || o.MinUtilization < 0 {
		badf("MinUtilization", o.MinUtilization)
	} else if o.MinUtilization > 1 {
		errs = append(errs, fmt.Errorf("Options.MinUtilization = %v: utilization is a fraction, must be <= 1", o.MinUtilization))
	}
	badRange := func(name string, v, max int) {
		if v < 0 {
			errs = append(errs, fmt.Errorf("Options.%s = %d: must be non-negative (0 = default)", name, v))
		} else if v > max {
			errs = append(errs, fmt.Errorf("Options.%s = %d: exceeds the sane maximum %d", name, v, max))
		}
	}
	badRange("BeamWidth", o.BeamWidth, maxBeamWidth)
	badRange("Threads", o.Threads, MaxThreads)
	badRange("TilesPerStep", o.TilesPerStep, maxPerStep)
	badRange("UnrollsPerStep", o.UnrollsPerStep, maxPerStep)
	if o.TopDownVisitBudget < 0 {
		errs = append(errs, fmt.Errorf("Options.TopDownVisitBudget = %d: must be non-negative (0 = default)", o.TopDownVisitBudget))
	}
	if o.Timeout < 0 {
		errs = append(errs, fmt.Errorf("Options.Timeout = %v: must be non-negative (0 = unbounded)", o.Timeout))
	}
	if o.Direction != BottomUp && o.Direction != TopDown {
		errs = append(errs, fmt.Errorf("Options.Direction = %d: unknown direction", int(o.Direction)))
	}
	if o.Strategy < OrderTileUnroll || o.Strategy > UnrollTileOrder {
		errs = append(errs, fmt.Errorf("Options.Strategy = %d: unknown strategy", int(o.Strategy)))
	}
	if o.Objective < MinEDP || o.Objective > MinED2P {
		errs = append(errs, fmt.Errorf("Options.Objective = %d: unknown objective", int(o.Objective)))
	}
	return errors.Join(errs...)
}

// DefaultOptions returns the optimizer's default configuration, spelled out.
// The zero Options value is exactly equivalent: every zero field is filled
// from this set before a search runs, so Optimize(w, a, Options{}) and
// Optimize(w, a, DefaultOptions()) perform the identical search. Use this
// when you want to start from the defaults and tweak one knob explicitly.
func DefaultOptions() Options {
	return Options{
		Direction:          BottomUp,
		Strategy:           OrderTileUnroll,
		Objective:          MinEDP,
		BeamWidth:          24,
		AlphaSlack:         16,
		MinUtilization:     0.5,
		TilesPerStep:       8,
		UnrollsPerStep:     6,
		Threads:            runtime.GOMAXPROCS(0),
		Model:              cost.Default,
		TopDownVisitBudget: 4_000_000,
		Analytical:         &AnalyticalOptions{Seed: true, Bounds: true},
	}
}

// withDefaults fills every zero field from DefaultOptions. This is the single
// place defaults are applied; DefaultOptions is the single place they are
// defined.
func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.BeamWidth <= 0 {
		o.BeamWidth = def.BeamWidth
	}
	if o.TilesPerStep <= 0 {
		o.TilesPerStep = def.TilesPerStep
	}
	if o.UnrollsPerStep <= 0 {
		o.UnrollsPerStep = def.UnrollsPerStep
	}
	if o.AlphaSlack <= 0 {
		o.AlphaSlack = def.AlphaSlack
	}
	if o.MinUtilization <= 0 {
		o.MinUtilization = def.MinUtilization
	}
	if o.Threads <= 0 {
		o.Threads = def.Threads
	}
	if o.Model == (cost.Model{}) {
		o.Model = def.Model
	}
	if o.TopDownVisitBudget <= 0 {
		o.TopDownVisitBudget = def.TopDownVisitBudget
	}
	if o.Analytical == nil {
		o.Analytical = def.Analytical
	}
	return o
}

// SearchStats is the counter snapshot published in Result.Stats (see
// internal/obs). For an uncancelled run the candidate flow satisfies
// Generated == Pruned() + Deduped + Evaluated.
type SearchStats = obs.SearchStats

// Result is the outcome of one optimization run.
type Result struct {
	Mapping *mapping.Mapping
	Report  cost.Report
	// Stopped records why the search returned: StopComplete for a full
	// run, StopDeadline/StopCanceled when the context ended the search
	// early (Mapping is then the best completed so far), StopBudget when
	// an enumeration budget was exhausted.
	Stopped StopReason
	// SpaceSize counts the candidate mappings the search examined — the
	// paper's "space size" merit (Tables I and VI).
	SpaceSize int
	// OrderingsConsidered is the surviving ordering-trie candidate count.
	OrderingsConsidered int
	// CandidateErrors holds panics recovered from candidate evaluations
	// (each an *anytime.PanicError with the offending mapping serialized),
	// capped at maxCandidateErrors. The search survives them: a poisoned
	// candidate simply scores invalid.
	CandidateErrors []error
	// Stats snapshots the search's telemetry counters at return: candidate
	// flow (generated / pruned by principle / deduped / evaluated /
	// skipped), post-evaluation beam cuts, and the fast-path evaluator's
	// memo-cache hits and misses.
	Stats   SearchStats
	Elapsed time.Duration
	// Attempts records every attempt the resilient path made before this
	// result was accepted, in order — the accepted attempt last with a nil
	// Err. Nil for the plain (non-resilient) entry points.
	Attempts []Attempt
	// FallbackUsed names the fallback mapper that produced Mapping when the
	// resilient path degraded ("" = the primary Sunstone search).
	FallbackUsed string
	// SeedEDP is the EDP of the analytical seed mapping installed as the
	// initial alpha-beta incumbent (0 when seeding was disabled or the seed
	// failed to produce a valid mapping). Comparing it against Report.EDP
	// shows how much the enumeration improved on the closed-form guess.
	SeedEDP float64
	// WarmStartEDP is the EDP of the Options.WarmStart mapping as
	// re-evaluated by this search (0 when no warm start was given or it
	// failed to install). Report.EDP ≤ WarmStartEDP by construction.
	WarmStartEDP float64
}

// maxCandidateErrors caps Result.CandidateErrors so a systematically
// panicking cost model cannot balloon memory; further panics are dropped
// after the first few identical repros.
const maxCandidateErrors = 8

// Optimize searches for the best mapping of w onto a. It is
// OptimizeContext with a background context; Options.Timeout still applies.
//
// Deprecated-style note: Solve with a Problem is the canonical entry point;
// this wrapper remains for positional-argument callers.
func Optimize(w *tensor.Workload, a *arch.Arch, opt Options) (Result, error) {
	return SolveContext(context.Background(), Problem{Workload: w, Arch: a}, opt)
}

// OptimizeContext searches for the best mapping of w onto a under ctx.
// The search is an *anytime* algorithm: it polls ctx at bounded intervals,
// and on cancellation or deadline (from ctx or Options.Timeout) it stops
// within one polling interval and returns the best completed mapping seen so
// far with Result.Stopped set — a nil error as long as at least one valid
// mapping was completed before the signal.
//
// Deprecated-style note: SolveContext with a Problem is the canonical entry
// point; this wrapper remains for positional-argument callers.
func OptimizeContext(ctx context.Context, w *tensor.Workload, a *arch.Arch, opt Options) (Result, error) {
	return SolveContext(ctx, Problem{Workload: w, Arch: a}, opt)
}

// optimizeCompiled runs one search over a compiled problem. opt must already
// be validated and defaulted. This is the single execution path: the per-call
// entry points compile fresh, an Engine reuses cached artifacts, and both end
// here.
func optimizeCompiled(ctx context.Context, comp *Compiled, opt Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	start := time.Now()
	sc := newSearch(comp, opt)
	ctx, root := obs.StartSpanf(ctx, "optimize %s (%s)", comp.w.Name, opt.Direction)
	sc.prog.phase(obs.PhaseStarted, "optimize", -1)
	res, err := runLevelSearch(ctx, sc)
	res.Stats = obs.SnapshotSearch(sc.reg)
	sc.prog.phase(obs.PhaseFinished, "optimize", -1)
	if perr := sc.prog.takeErr(); perr != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, perr)
	}
	if root != nil {
		root.Arg("stopped", res.Stopped.String())
		for _, cv := range sc.reg.Snapshot() {
			root.Arg(cv.Name, cv.Value)
		}
		root.End()
	}
	res.Elapsed = time.Since(start)
	return res, err
}

// search is the per-run evaluation context over a compiled problem: one
// scratch evaluator per worker thread — so the steady-state scoring path
// allocates nothing and never contends on scratch space — and the run's
// telemetry: a counter registry (candidate flow plus per-run memo-cache
// attribution) and the progress emitter. The compiled artifacts (cost
// session, orderings, fit skeleton, ladder memo) may be shared with other
// concurrent searches; everything mutable here is per-run.
type search struct {
	opt  Options
	comp *Compiled
	sess *cost.Session
	evs  []*cost.Evaluator
	reg  *obs.Registry
	ctr  *obs.SearchCounters
	prog *progressEmitter
	// best is the shared atomic incumbent score: published lock-free by the
	// evaluation workers as candidates complete, consumed only at step
	// barriers to seed the alpha-beta bound (see prune) — deterministic
	// there, because by the barrier every score of the step has landed.
	best *bestScore
}

func newSearch(comp *Compiled, opt Options) *search {
	sc := &search{opt: opt, comp: comp, sess: comp.sess, best: newBestScore()}
	sc.evs = make([]*cost.Evaluator, opt.Threads)
	// Cache hits/misses are charged to per-run counters (as well as the
	// session's lifetime tally) so Result.Stats partitions per call even
	// when an Engine shares one session across many searches.
	hits, misses := &obs.Counter{}, &obs.Counter{}
	for i := range sc.evs {
		sc.evs[i] = sc.sess.NewEvaluator()
		sc.evs[i].CountCacheInto(hits, misses)
	}
	sc.reg = obs.NewRegistry()
	sc.ctr = obs.NewSearchCounters(sc.reg)
	sc.reg.Register(obs.CtrCacheHits, hits)
	sc.reg.Register(obs.CtrCacheMisses, misses)
	sc.prog = newProgressEmitter(opt.Progress, sc.ctr)
	return sc
}

// state is one partial mapping plus its completed-cost estimate. Only the
// fast path's scalars are carried — a full cost.Report is materialized once,
// for the search's final mapping.
type state struct {
	m         *mapping.Mapping
	completed *mapping.Mapping // the evaluated completion of m (anytime incumbent)
	score     float64          // objective value of the completed form
	energyPJ  float64
	cycles    float64
	valid     bool
	key       string // deterministic tie-break, rendered lazily on first use
}

// tieKey renders (and memoizes) the deterministic tie-break key. Rendering
// is deferred to the sort so the evaluation fan-out never pays for the
// string; only score ties — rare — force it.
func (s *state) tieKey() string {
	if s.key == "" {
		s.key = s.m.String()
	}
	return s.key
}

// completeFn turns a partial mapping into its evaluable completion; each
// direction supplies its own (see sequencer). It must be safe to call from
// the evaluation fan-out's worker goroutines.
type completeFn func(*mapping.Mapping) *mapping.Mapping

// completeUp clones m into a full (evaluable) mapping the bottom-up way:
// every intermediate level is greedily filled with whatever remaining
// factors fit its buffers (a stand-in for the optimization the upper steps
// will perform — this is what makes the bottom-up completed-cost estimates
// tight), and the final remainder lands at the unbounded top level.
func (sc *search) completeUp(m *mapping.Mapping) *mapping.Mapping {
	c := m.Clone()
	top := len(c.Levels) - 1
	for l := 1; l < top; l++ {
		sc.residualFill(c, l, nil)
	}
	for d, bound := range c.Workload.Dims {
		below := c.Extent(d, top-1)
		need := ceilDiv(bound, below)
		if t := c.Levels[top].T(d); t < need {
			c.Levels[top].Temporal[d] = need
		}
	}
	return c
}

// growDimsFor returns the union of indexing dimensions of the tensors fully
// reused by ordering o (the OP of the Tiling/Unrolling Principles); nil when
// the ordering reuses nothing (no guidance — all dims allowed).
func growDimsFor(w *tensor.Workload, o *order.Ordering) []tensor.Dim {
	if len(o.FullyReused) == 0 {
		return nil
	}
	set := map[tensor.Dim]bool{}
	for _, name := range o.FullyReused {
		t := w.Tensor(name)
		if t == nil {
			continue
		}
		for _, d := range t.IndexingDims() {
			set[d] = true
		}
	}
	var out []tensor.Dim
	for _, d := range w.Order {
		if set[d] {
			out = append(out, d)
		}
	}
	return out
}

// quotas returns the per-dimension remaining factor budget above level
// lvl-1 (i.e. for loops at levels >= lvl), given the extents already fixed.
func quotas(m *mapping.Mapping, lvl int) map[tensor.Dim]int {
	q := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d, bound := range m.Workload.Dims {
		below := 1
		if lvl > 0 {
			below = m.Extent(d, lvl-1)
		}
		q[d] = ceilDiv(bound, below)
	}
	return q
}

// feasible reports whether the partial mapping's current extents still fit
// every bounded buffer at levels [from, top). Because extents only grow as
// upper levels are assigned, a violation here can never be repaired.
func feasible(m *mapping.Mapping, from int) bool {
	top := len(m.Levels) - 1
	for l := from; l < top; l++ {
		ext := m.Extents(l)
		al := &m.Arch.Levels[l]
		for bi := range al.Buffers {
			buf := &al.Buffers[bi]
			if buf.Bytes == 0 {
				continue
			}
			var usedBits int64
			for _, t := range m.Workload.Tensors {
				if buf.Holds(t.Name) {
					usedBits += int64(t.Footprint(ext)) * int64(m.Arch.Bits(t.Name))
				}
			}
			if usedBits > buf.Bytes*8 {
				return false
			}
		}
	}
	return true
}

// evalAll scores the completed forms of the given mappings in parallel and
// returns them as states sorted by (score, render) for determinism, plus
// any panics recovered from poisoned evaluations (capped at
// maxCandidateErrors). Scoring runs on the fast path through the shared
// intra-search pool (runParallel): a fixed set of workers — one preallocated
// scratch Evaluator each, indexed by worker id — pulls indices off an atomic
// counter, so the fan-out allocates nothing per candidate beyond the
// completion clone. Each valid score is published to the search's shared
// atomic incumbent as it lands, so the alpha-beta bound consumed at the next
// step barrier is the tightest available. Once ctx is done the remaining
// unevaluated mappings are skipped — they surface as +Inf states the
// caller's prune discards — so a cancel drains the worker pool within one
// evaluation per thread.
func (sc *search) evalAll(ctx context.Context, ms []*mapping.Mapping, cf completeFn) ([]state, []error) {
	states := make([]state, len(ms))
	var mu sync.Mutex
	var panics []error
	runParallel(len(sc.evs), len(ms), func(wk, i int) {
		sc.evalOne(ctx, sc.evs[wk], ms, states, i, cf, &mu, &panics)
	})
	sortStates(states)
	return states, panics
}

// evalOne scores ms[i] into states[i], containing a cost-model panic to
// this one candidate (the worker loop survives and keeps draining).
func (sc *search) evalOne(ctx context.Context, ev *cost.Evaluator, ms []*mapping.Mapping, states []state, i int, cf completeFn, mu *sync.Mutex, panics *[]error) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "evaluate candidate mapping", func() string { return reproMapping(ms[i]) }); e != nil {
			states[i] = state{m: ms[i], score: math.Inf(1)}
			mu.Lock()
			if len(*panics) < maxCandidateErrors {
				*panics = append(*panics, e)
			}
			mu.Unlock()
		}
	}()
	if ctx.Err() != nil {
		sc.ctr.Skipped.Inc()
		states[i] = state{m: ms[i], score: math.Inf(1)}
		return
	}
	// Counted before the attempt so a poisoned candidate still counts as
	// evaluated (its fate is "attempted", not "skipped").
	sc.ctr.Evaluated.Inc()
	c := cf(ms[i])
	edp, energyPJ, cycles, valid := ev.EvaluateEDP(c)
	states[i] = state{
		m:         ms[i],
		completed: c,
		score:     sc.opt.Objective.scoreScalars(edp, energyPJ, cycles, valid),
		energyPJ:  energyPJ,
		cycles:    cycles,
		valid:     valid,
	}
	if valid {
		sc.best.publish(states[i].score)
	}
}

// sortStates orders states by (score, render): identical to the historical
// ordering, but the render tie-break is computed lazily.
func sortStates(states []state) {
	sort.Slice(states, func(i, j int) bool {
		if states[i].score != states[j].score {
			return states[i].score < states[j].score
		}
		return states[i].tieKey() < states[j].tieKey()
	})
}

// dedupe removes duplicate partial mappings (same canonical fast-path key),
// keeping the first occurrence; mappings outside the key's domain are kept
// unconditionally. Distinct enumeration paths routinely reproduce the same
// (ordering, tile, unroll) state, and every duplicate would cost a full
// completion + evaluation in the fan-out.
func (sc *search) dedupe(ms []*mapping.Mapping) []*mapping.Mapping {
	if len(ms) < 2 {
		return ms
	}
	seen := make(map[cost.Key]struct{}, len(ms))
	out := ms[:0]
	for _, m := range ms {
		if k, ok := sc.evs[0].Key(m); ok {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		out = append(out, m)
	}
	sc.ctr.Deduped.Add(uint64(len(ms) - len(out)))
	return out
}

// safeEval evaluates m with the given model, converting a panic in the cost
// model into an invalid report plus a *anytime.PanicError. Used wherever a
// single evaluation runs outside the evalAll worker pool.
func safeEval(model cost.Model, m *mapping.Mapping) (rep cost.Report, err error) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "evaluate mapping", func() string { return reproMapping(m) }); e != nil {
			rep = cost.Report{EDP: math.Inf(1), EnergyPJ: math.Inf(1), Cycles: math.Inf(1), Invalid: e}
			err = e
		}
	}()
	return model.Evaluate(m), nil
}

// safeEvalFast is safeEval on the fast path: one scalar evaluation with the
// given scratch evaluator, panics contained.
func (sc *search) safeEvalFast(ev *cost.Evaluator, m *mapping.Mapping) (edp, energyPJ, cycles float64, valid bool, err error) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "evaluate mapping", func() string { return reproMapping(m) }); e != nil {
			edp, energyPJ, cycles, valid = math.Inf(1), math.Inf(1), math.Inf(1), false
			err = e
		}
	}()
	edp, energyPJ, cycles, valid = ev.EvaluateEDP(m)
	return edp, energyPJ, cycles, valid, nil
}

// finalReport materializes the full cost.Report — breakdowns, per-buffer
// accesses — for the mapping a search is about to return. The fast path
// proved the mapping valid with the given scalars; if the full model
// panics here (an injected probe fault, say), fall back to a Report
// synthesized from those scalars rather than losing the result.
func (sc *search) finalReport(m *mapping.Mapping, energyPJ, cycles float64) cost.Report {
	rep, err := safeEval(sc.opt.Model, m)
	if err == nil {
		return rep
	}
	return cost.Report{Valid: true, EDP: energyPJ * cycles, EnergyPJ: energyPJ, Cycles: cycles}
}

// reproMapping serializes m for panic-repro messages: JSON (reloadable via
// serde.DecodeMapping) when possible, the human render otherwise.
func reproMapping(m *mapping.Mapping) string {
	if m == nil {
		return "<nil mapping>"
	}
	if data, err := serde.EncodeMapping(m); err == nil {
		return string(data)
	}
	return m.String()
}

// prune applies beam and alpha-beta selection to sorted states, reporting
// how many already-evaluated candidates the alpha-beta bound and the beam
// width discarded (these are post-evaluation cuts — subsets of the
// evaluated count, not part of the generated = pruned + deduped + evaluated
// flow identity).
//
// alphaSeed is the search-wide incumbent score carried in from previous
// steps (+Inf when none): the bound is the tighter of the seed and this
// step's own best, so a strong earlier level keeps pruning a weak later
// one. The best valid state of the step always survives regardless — the
// beam must never empty just because the whole step trails the incumbent.
func prune(states []state, opt Options, alphaSeed float64) (out []state, boundCut, beamCut int) {
	alpha := alphaSeed
	for _, s := range states {
		if math.IsInf(s.score, 1) {
			continue
		}
		if s.score < alpha {
			alpha = s.score
		}
		break
	}
	for _, s := range states {
		if math.IsInf(s.score, 1) {
			continue
		}
		if len(out) > 0 && s.score > alpha*opt.AlphaSlack {
			boundCut++ // alpha-beta: provably far from the incumbent
			continue
		}
		if len(out) >= opt.BeamWidth {
			beamCut++
			continue
		}
		out = append(out, s)
	}
	return out, boundCut, beamCut
}

// prunedAndCount is prune plus counter accounting, the form every search
// loop uses. The alpha seed is read from the shared atomic incumbent at the
// post-evaluation barrier, where its value is a deterministic function of
// the candidate flow (every score of the step has been published by the time
// evalAll joins its workers).
func (sc *search) prunedAndCount(states []state) []state {
	out, boundCut, beamCut := prune(states, sc.opt, sc.best.load())
	sc.ctr.PrunedBound.Add(uint64(boundCut))
	sc.ctr.PrunedBeam.Add(uint64(beamCut))
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

package core

import (
	"sync"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/factor"
	"sunstone/internal/faults"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
)

// Compiled is the per-(workload, arch, model) artifact bundle: everything a
// search needs that depends only on the problem, not on the run. Building it
// costs one ordering-trie enumeration, one cost-session plan, the fit-check
// capacity skeleton, and an empty factor-ladder memo — work that today's
// serving-shaped callers (network scheduling, figure sweeps, -compare) would
// otherwise repeat on every Optimize call for the same problem.
//
// A Compiled is immutable after Compile returns and safe for any number of
// concurrent searches: the ordering set and fit skeleton are read-only, and
// the cost session and ladder cache guard their memo tables internally. The
// session's evaluation memo is search-wide on a per-call compile and
// engine-wide when the Compiled comes from an Engine — warm calls start with
// the cache already populated.
type Compiled struct {
	w     *tensor.Workload
	a     *arch.Arch
	model cost.Model

	sess       *cost.Session    // fast-path plan tables + shared eval memo
	orderings  []order.Ordering // pruned ordering-trie survivors
	ostats     order.Stats      // trie effort, replayed into each run's counters
	fit        fitSkeleton      // static structure of the capacity tables
	ladders    ladderCache      // memoized factor ladders (tile/unroll/fill)
	expansions expandCache      // memoized level expansions (warm-search replay)
}

// Compile validates the problem and builds its artifact bundle. The zero
// model compiles as cost.Default, mirroring Options.withDefaults.
func Compile(w *tensor.Workload, a *arch.Arch, model cost.Model) (*Compiled, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	// Chaos hook: an injected compile fault fails (or poisons) the build
	// after input validation, exactly where a real mid-compile failure
	// would land.
	if err, _ := faults.Fire(faults.SiteCompile); err != nil {
		return nil, err
	}
	if model == (cost.Model{}) {
		model = cost.Default
	}
	c := &Compiled{w: w, a: a, model: model}
	c.orderings, c.ostats = order.Enumerate(w)
	c.sess = model.NewSession(w, a)
	c.fit = buildFitSkeleton(w, a)
	c.ladders.m = make(map[ladderKey][]int)
	c.expansions.m = make(map[string]*expandEntry)
	return c, nil
}

// Workload returns the compiled problem's workload.
func (c *Compiled) Workload() *tensor.Workload { return c.w }

// Arch returns the compiled problem's architecture.
func (c *Compiled) Arch() *arch.Arch { return c.a }

// Session returns the compiled fast-path cost session. The session is
// goroutine-safe; callers needing scratch space take their own Evaluator.
func (c *Compiled) Session() *cost.Session { return c.sess }

// ladderKey identifies one memoized factor ladder: the tiling tree pads
// sparse dimensions (minDivisors 4 by default), spatial unrolling does not
// (2), so both arguments key the table.
type ladderKey struct{ n, minDiv int }

// ladderCache memoizes factor.Ladder results across every enumeration of a
// compiled problem. The same quotas recur thousands of times per search —
// each beam state re-derives ladders for the same remaining extents — and
// across warm Engine calls they recur across searches too. Returned slices
// are shared and MUST NOT be mutated.
type ladderCache struct {
	mu sync.RWMutex
	m  map[ladderKey][]int
}

func (lc *ladderCache) ladder(n, minDiv int) []int {
	k := ladderKey{n, minDiv}
	lc.mu.RLock()
	l, ok := lc.m[k]
	lc.mu.RUnlock()
	if ok {
		return l
	}
	l = factor.Ladder(n, minDiv)
	lc.mu.Lock()
	lc.m[k] = l
	lc.mu.Unlock()
	return l
}

// expandEntry records one level-expansion's complete outcome: the produced
// candidates, the visit count charged against the step budget, the
// enumeration-reject tallies the expansion flushed into the candidate-flow
// counters, and whether any of its work units exhausted its visit-budget
// share. A warm search replays all of them, so its counters, space size,
// budget-hit flag and candidate set are indistinguishable from a cold run's.
// The stored mappings are shared across searches and MUST be treated as
// immutable (the search never mutates a produced candidate — every
// downstream consumer clones).
type expandEntry struct {
	cands           []*mapping.Mapping
	visited         int
	prunedTiling    int
	prunedUnrolling int
	truncated       bool
}

// maxExpandCacheCands bounds the candidate mappings an expansion cache may
// retain per compiled problem. Expansion results are the bulkiest compiled
// artifact (full partial mappings, not tables); typical searches produce a
// few hundred to a few thousand candidates, so the bound is generous for
// repeat-heavy serving while capping the worst case. Once full, existing
// entries keep serving hits but new ones are not stored.
const maxExpandCacheCands = 1 << 14

// expandCache memoizes the per-(state, level, options) candidate expansions
// of a compiled problem. Enumeration — the tiling tree with its capacity
// probes, the unrolling search — dominates search time, and it is fully
// deterministic given the partial mapping, the level, and the enumeration
// options, so a warm Engine call replays the recorded outcome instead of
// re-walking the trees.
type expandCache struct {
	mu     sync.RWMutex
	m      map[string]*expandEntry
	stored int
}

func (c *expandCache) get(key string) *expandEntry {
	c.mu.RLock()
	e := c.m[key]
	c.mu.RUnlock()
	return e
}

// put stores e unless the key is already present or the candidate bound is
// reached. Concurrent searches may race to store the same key; the results
// are identical (the expansion is deterministic), so first-write-wins.
func (c *expandCache) put(key string, e *expandEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return
	}
	if c.stored+len(e.cands) > maxExpandCacheCands {
		return
	}
	c.m[key] = e
	c.stored += len(e.cands)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sunstone/internal/anytime"
	"sunstone/internal/faults"
)

// TestClassifyFailure pins the cause taxonomy: injected faults win over the
// panic that may carry them, contained panics beat the generic bucket,
// deadlines are recognized structurally (errors.Is, not string matching), and
// the sibling-cancel flag only matters when nothing more specific applies.
func TestClassifyFailure(t *testing.T) {
	inj := &faults.InjectedError{Site: faults.SiteCompile, Kind: faults.Error, Seq: 1}
	cases := []struct {
		name    string
		err     error
		sibling bool
		want    FailureCause
	}{
		{"injected direct", inj, false, CauseInjected},
		{"injected wrapped", fmt.Errorf("compile: %w", inj), false, CauseInjected},
		{"injected inside panic", &anytime.PanicError{Op: "evaluate", Value: fmt.Errorf("die: %w", inj)}, false, CauseInjected},
		{"plain panic", &anytime.PanicError{Op: "evaluate", Value: "index out of range"}, false, CausePanic},
		{"deadline", fmt.Errorf("search stopped: %w", context.DeadlineExceeded), false, CauseDeadline},
		{"sibling cancel", errors.New("no valid mapping completed"), true, CauseSiblingCancel},
		{"plain search failure", errors.New("no valid mapping completed"), false, CauseSearch},
		// An injected fault on a canceled sibling is still injected — the
		// specific cause wins over the circumstance.
		{"injected on canceled sibling", inj, true, CauseInjected},
	}
	for _, tc := range cases {
		if got := ClassifyFailure(tc.err, tc.sibling); got != tc.want {
			t.Errorf("%s: ClassifyFailure = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCauseOfCore covers the accessor: nil has no cause, a LayerError's
// recorded cause is authoritative even deep in a joined chain, and bare
// errors fall back to direct classification. CauseWatchdog is never assigned
// by the classifier — only its owner (the service watchdog) records it.
func TestCauseOfCore(t *testing.T) {
	if got := CauseOf(nil); got != "" {
		t.Errorf("CauseOf(nil) = %q", got)
	}
	le := &LayerError{Layer: "conv1", Cause: CauseWatchdog, Err: context.Canceled}
	if got := CauseOf(errors.Join(errors.New("other"), le)); got != CauseWatchdog {
		t.Errorf("joined LayerError: CauseOf = %q, want %q", got, CauseWatchdog)
	}
	if got := ClassifyFailure(context.Canceled, false); got != CauseSearch {
		t.Errorf("bare cancel classifies %q, want %q (watchdog is owner-assigned)", got, CauseSearch)
	}
}

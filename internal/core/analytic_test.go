package core

import (
	"testing"

	"sunstone/internal/arch"
)

// TestAnalyticalOffDeterministic: with the analytical layer explicitly off,
// repeated runs are bit-identical — the zero AnalyticalOptions restores the
// pre-analytic search exactly.
func TestAnalyticalOffDeterministic(t *testing.T) {
	w := conv2D(t, 4, 64, 64, 28, 28, 3, 3)
	opt := Options{Analytical: &AnalyticalOptions{}}
	first, err := Optimize(w, arch.Simba(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := Optimize(w, arch.Simba(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.EDP != first.Report.EDP || res.Mapping.String() != first.Mapping.String() {
			t.Fatalf("run %d diverged: EDP %g vs %g", i, res.Report.EDP, first.Report.EDP)
		}
		if res.Stats.Evaluated != first.Stats.Evaluated {
			t.Fatalf("run %d evaluated %d vs %d", i, res.Stats.Evaluated, first.Stats.Evaluated)
		}
	}
}

// TestAnalyticalOnEqualOrBetter: the analytical layer must never worsen the
// found mapping, and on the headline Simba conv it must evaluate at least 30%
// fewer candidates — the PR's acceptance bar.
func TestAnalyticalOnEqualOrBetter(t *testing.T) {
	w := conv2D(t, 4, 64, 64, 28, 28, 3, 3)
	off, err := Optimize(w, arch.Simba(), Options{Analytical: &AnalyticalOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Optimize(w, arch.Simba(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Report.EDP > off.Report.EDP {
		t.Errorf("analytical layer worsened EDP: %g vs %g", on.Report.EDP, off.Report.EDP)
	}
	if on.SeedEDP <= 0 {
		t.Errorf("seeded run reports no SeedEDP")
	}
	if on.SeedEDP < on.Report.EDP {
		t.Errorf("seed EDP %g below the final mapping's %g — seed should never beat the search", on.SeedEDP, on.Report.EDP)
	}
	evOn, evOff := on.Stats.Evaluated, off.Stats.Evaluated
	if evOn*10 > evOff*7 {
		t.Errorf("analytical layer evaluated %d of %d candidates; want at least a 30%% reduction", evOn, evOff)
	}
}

// TestAnalyticalDefaultsOn: the zero Options and DefaultOptions agree — both
// run the analytical layer — and the defaults report a seed EDP.
func TestAnalyticalDefaultsOn(t *testing.T) {
	def := DefaultOptions()
	if def.Analytical == nil || !def.Analytical.Seed || !def.Analytical.Bounds {
		t.Fatalf("DefaultOptions.Analytical = %+v, want both toggles on", def.Analytical)
	}
	w := conv1D(t, 16, 16, 28, 3)
	res, err := Optimize(w, arch.Tiny(256), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedEDP <= 0 {
		t.Errorf("zero Options ran without the seed (SeedEDP = %g)", res.SeedEDP)
	}
}

// TestAnalyticalSeedEDPParity: seed on/off must land on the same final EDP
// across the preset architectures — tighter pruning may skip work, never
// quality.
func TestAnalyticalSeedEDPParity(t *testing.T) {
	w := conv2D(t, 1, 16, 16, 14, 14, 3, 3)
	for _, tc := range []struct {
		name string
		a    func() *arch.Arch
	}{
		{"conventional", arch.Conventional},
		{"simba", arch.Simba},
		{"diannao", arch.DianNao},
	} {
		t.Run(tc.name, func(t *testing.T) {
			off, err := Optimize(w, tc.a(), Options{Analytical: &AnalyticalOptions{}})
			if err != nil {
				t.Fatal(err)
			}
			on, err := Optimize(w, tc.a(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if on.Report.EDP > off.Report.EDP {
				t.Errorf("EDP regressed with analytics on: %g vs %g", on.Report.EDP, off.Report.EDP)
			}
		})
	}
}

// TestSolveProblemAPI: the Problem-based entry points agree with the
// positional wrappers, and Problem.Model overrides Options.Model.
func TestSolveProblemAPI(t *testing.T) {
	w := conv1D(t, 16, 16, 28, 3)
	a := arch.Tiny(256)
	viaSolve, err := Solve(Problem{Workload: w, Arch: a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaOptimize, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viaSolve.Report.EDP != viaOptimize.Report.EDP ||
		viaSolve.Mapping.String() != viaOptimize.Mapping.String() {
		t.Fatalf("Solve and Optimize disagree: %g vs %g", viaSolve.Report.EDP, viaOptimize.Report.EDP)
	}

	eng := NewEngine(0)
	viaEngine, err := eng.Solve(t.Context(), Problem{Workload: w, Arch: a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viaEngine.Report.EDP != viaSolve.Report.EDP {
		t.Fatalf("Engine.Solve diverged: %g vs %g", viaEngine.Report.EDP, viaSolve.Report.EDP)
	}
	if st := eng.Stats(); st.Compiles != 1 {
		t.Errorf("engine compiled %d problems, want 1", st.Compiles)
	}

	// A second Solve on the same Problem content must hit the cache.
	if _, err := eng.Solve(t.Context(), Problem{Workload: w, Arch: a}, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits == 0 {
		t.Error("content-addressed cache never hit on a repeated Problem")
	}

	if _, err := Solve(Problem{}, Options{}); err == nil {
		t.Error("empty Problem must fail validation")
	}
}

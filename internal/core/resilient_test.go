package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/faults"
)

// mustInjector builds an injector or fails the test.
func mustInjector(t *testing.T, seed int64, rules ...faults.Rule) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestResilientMatchesPlain is the no-fault identity: with injection
// disabled, OptimizeResilient accepts the primary search's first attempt and
// its result is bit-identical to the plain Engine path, plus the attempt
// record.
func TestResilientMatchesPlain(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)

	plain, err := NewEngine(0).Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(0).OptimizeResilient(context.Background(), w, a, Options{}, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}

	if res.Mapping.String() != plain.Mapping.String() {
		t.Errorf("resilient mapping differs:\nplain:\n%s\nresilient:\n%s", plain.Mapping, res.Mapping)
	}
	if res.Report.EDP != plain.Report.EDP || res.Report.EnergyPJ != plain.Report.EnergyPJ || res.Report.Cycles != plain.Report.Cycles {
		t.Errorf("resilient report differs: %+v vs %+v", res.Report, plain.Report)
	}
	if res.Stopped != plain.Stopped || res.SpaceSize != plain.SpaceSize {
		t.Errorf("resilient run shape differs: stopped %v/%v, space %d/%d",
			res.Stopped, plain.Stopped, res.SpaceSize, plain.SpaceSize)
	}
	if res.FallbackUsed != "" {
		t.Errorf("FallbackUsed = %q on a clean run", res.FallbackUsed)
	}
	if len(res.Attempts) != 1 || res.Attempts[0].Mapper != "sunstone" || res.Attempts[0].Err != nil {
		t.Errorf("Attempts = %+v, want one clean sunstone attempt", res.Attempts)
	}
}

// TestResilientFallsBackOnCompileFaults forces every compile to fail: all
// primary attempts reject with the injected error and the first fallback
// (timeloop-random-lite, which builds its session without the compile path)
// produces the accepted, audited mapping.
func TestResilientFallsBackOnCompileFaults(t *testing.T) {
	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Error, Rate: 1}))
	defer restore()

	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	res, err := NewEngine(0).OptimizeResilient(context.Background(), w, a, Options{}, RetryPolicy{})
	if err != nil {
		t.Fatalf("resilient run must survive compile faults: %v", err)
	}
	if res.FallbackUsed != "timeloop-random-lite" {
		t.Errorf("FallbackUsed = %q, want timeloop-random-lite", res.FallbackUsed)
	}
	if len(res.Attempts) != 4 { // 3 failed primaries + 1 accepted fallback
		t.Errorf("Attempts = %d, want 4: %+v", len(res.Attempts), res.Attempts)
	}
	for i, at := range res.Attempts[:len(res.Attempts)-1] {
		if at.Mapper != "sunstone" {
			t.Errorf("attempt %d: mapper %q, want sunstone", i, at.Mapper)
		}
		var inj *faults.InjectedError
		if !errors.As(at.Err, &inj) || inj.Site != faults.SiteCompile {
			t.Errorf("attempt %d: error %v is not the injected compile fault", i, at.Err)
		}
	}
	if last := res.Attempts[len(res.Attempts)-1]; last.Err != nil || last.Mapper != res.FallbackUsed {
		t.Errorf("accepted attempt = %+v", last)
	}
	if res.Mapping == nil || res.Mapping.Validate() != nil || !res.Report.Valid {
		t.Fatalf("fallback result is not an audited valid mapping: %+v", res.Report)
	}
}

// TestResilientExhaustsWhenEvaluationIsDead arms a 100% evaluation panic:
// no mapper can produce an audit-passing result (the audit's own evaluation
// always dies), so the run must exhaust its attempt budget and report every
// attempt, not hang or crash.
func TestResilientExhaustsWhenEvaluationIsDead(t *testing.T) {
	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteEvaluate, Kind: faults.Panic, Rate: 1}))
	defer restore()

	w := conv1D(t, 4, 4, 8, 3)
	a := arch.Tiny(256)
	pol := RetryPolicy{Retries: -1, FallbackTries: 1, MaxAttempts: 4}
	res, err := NewEngine(0).OptimizeResilient(context.Background(), w, a, Options{}, pol)
	if err == nil {
		t.Fatal("a dead cost model cannot yield an audited mapping")
	}
	if len(res.Attempts) != 4 {
		t.Errorf("Attempts = %d, want the MaxAttempts cap 4: %+v", len(res.Attempts), res.Attempts)
	}
	for i, at := range res.Attempts {
		if at.Err == nil {
			t.Errorf("attempt %d recorded no error on an exhausted run", i)
		}
	}
	if res.FallbackUsed != "" || res.Mapping != nil {
		t.Errorf("exhausted run must not claim a result: fallback %q, mapping %v", res.FallbackUsed, res.Mapping)
	}
}

// TestResilientAuditCatchesMemoCorruption arms 100% cache-get corruption:
// every memo hit returns perturbed scalars, so the audit's fast-path
// cross-check must disagree with the full evaluation on any mapping that was
// scored before (every candidate the search or a fallback touched) and
// reject it.
func TestResilientAuditCatchesMemoCorruption(t *testing.T) {
	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteCacheGet, Kind: faults.Corrupt, Rate: 1}))
	defer restore()

	w := conv1D(t, 4, 4, 8, 3)
	a := arch.Tiny(256)
	pol := RetryPolicy{Retries: -1, FallbackTries: 1, MaxAttempts: 3}
	res, err := NewEngine(0).OptimizeResilient(context.Background(), w, a, Options{}, pol)
	if err == nil {
		t.Fatal("permanently corrupted memo reads must fail the audit")
	}
	if !strings.Contains(err.Error(), "disagrees with full evaluation") {
		t.Errorf("error should carry the cross-check diagnosis: %v", err)
	}
	if len(res.Attempts) != 3 {
		t.Errorf("Attempts = %d, want 3", len(res.Attempts))
	}
}

// TestResilientSurvivesExpansionPanics arms a 100% expansion fault: the
// primary search dies by panic on every attempt (contained to the attempt),
// and the fallback chain still delivers an audited mapping.
func TestResilientSurvivesExpansionPanics(t *testing.T) {
	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteExpand, Kind: faults.Panic, Rate: 1}))
	defer restore()

	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	res, err := NewEngine(0).OptimizeResilient(context.Background(), w, a, Options{}, RetryPolicy{})
	if err != nil {
		t.Fatalf("resilient run must survive expansion panics: %v", err)
	}
	if res.FallbackUsed == "" {
		t.Error("a dead primary search must be served by a fallback")
	}
	for _, at := range res.Attempts {
		if at.Mapper != "sunstone" {
			continue
		}
		var pe *anytime.PanicError
		if !errors.As(at.Err, &pe) {
			t.Errorf("primary attempt error %v should be a contained panic", at.Err)
		}
	}
	if res.Mapping == nil || res.Mapping.Validate() != nil {
		t.Fatal("fallback mapping missing or invalid")
	}
}

// TestResilientUnknownFallback: a policy naming a nonexistent mapper burns
// its fallback attempts with clear errors instead of panicking.
func TestResilientUnknownFallback(t *testing.T) {
	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Error, Rate: 1}))
	defer restore()

	w := conv1D(t, 4, 4, 8, 3)
	a := arch.Tiny(256)
	pol := RetryPolicy{Retries: -1, Fallbacks: []string{"no-such-mapper"}, FallbackTries: 1, MaxAttempts: 2}
	_, err := NewEngine(0).OptimizeResilient(context.Background(), w, a, Options{}, pol)
	if err == nil || !strings.Contains(err.Error(), `unknown fallback mapper "no-such-mapper"`) {
		t.Fatalf("want unknown-fallback error, got %v", err)
	}
}

// TestShrinkOptions pins the backoff arithmetic: halved budgets, floor 1.
func TestShrinkOptions(t *testing.T) {
	o := shrinkOptions(Options{BeamWidth: 24, TilesPerStep: 8, UnrollsPerStep: 1, TopDownVisitBudget: 9}, 0.5)
	if o.BeamWidth != 12 || o.TilesPerStep != 4 || o.UnrollsPerStep != 1 || o.TopDownVisitBudget != 4 {
		t.Errorf("shrunk options = %+v", o)
	}
}

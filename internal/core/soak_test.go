package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/exec"
	"sunstone/internal/tensor"
)

// randomWorkload generates a structurally random but valid tensor-algebra
// workload: 2-5 dimensions with small bounds, 1-3 inputs with random axis
// subsets (occasionally a sliding-window pair), and an output over a random
// non-empty dimension subset. Exercises the whole pipeline far outside the
// hand-picked kernel shapes.
func randomWorkload(rng *rand.Rand) *tensor.Workload {
	nDims := 2 + rng.Intn(4)
	dims := map[tensor.Dim]int{}
	var names []tensor.Dim
	for i := 0; i < nDims; i++ {
		d := tensor.Dim(fmt.Sprintf("D%d", i))
		dims[d] = []int{2, 3, 4, 6, 8}[rng.Intn(5)]
		names = append(names, d)
	}

	randAxes := func() []tensor.Axis {
		var axes []tensor.Axis
		for _, d := range names {
			switch rng.Intn(3) {
			case 0: // skip this dim
			case 1:
				axes = append(axes, tensor.A(d))
			case 2:
				// Occasionally pair with the next dim as a window.
				axes = append(axes, tensor.A(d))
			}
		}
		if len(axes) == 0 {
			axes = append(axes, tensor.A(names[rng.Intn(len(names))]))
		}
		return axes
	}

	var tensors []*tensor.Tensor
	nIn := 1 + rng.Intn(3)
	for i := 0; i < nIn; i++ {
		tensors = append(tensors, &tensor.Tensor{Name: fmt.Sprintf("in%d", i), Axes: randAxes()})
	}
	tensors = append(tensors, &tensor.Tensor{Name: "out", Axes: randAxes(), Output: true})

	w, err := tensor.New("soak", dims, tensors...)
	if err != nil {
		return nil // e.g. a dim ended up unused; caller retries
	}
	return w
}

// TestOptimizeSoakRandomWorkloads runs the full pipeline on a corpus of
// random workloads across the preset machines: every run must either return
// a structurally valid mapping — which must also compute the functionally
// correct result — or fail with a clean error.
func TestOptimizeSoakRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	archs := []*arch.Arch{
		arch.Tiny(128),
		arch.TinySpatial(256, 1<<14, 4),
		arch.Conventional(),
	}
	ran := 0
	for tries := 0; ran < 25 && tries < 200; tries++ {
		w := randomWorkload(rng)
		if w == nil {
			continue
		}
		a := archs[ran%len(archs)]
		res, err := Optimize(w, a, Options{})
		if err != nil {
			// Clean failures are acceptable (e.g. nothing fits); panics or
			// invalid "successes" are not.
			continue
		}
		ran++
		if !res.Report.Valid {
			t.Fatalf("Optimize returned an invalid mapping without error:\n%s\nworkload: %s",
				res.Mapping, w)
		}
		if err := res.Mapping.Validate(); err != nil {
			t.Fatalf("structural validation failed: %v\n%s", err, res.Mapping)
		}
		ok, verr := exec.Verify(res.Mapping)
		if verr != nil {
			t.Fatalf("functional verification errored: %v\n%s", verr, res.Mapping)
		}
		if !ok {
			t.Fatalf("mapping computes a wrong result:\nworkload: %s\n%s", w, res.Mapping)
		}
	}
	if ran < 20 {
		t.Fatalf("soak exercised only %d workloads", ran)
	}
}

// Fused network scheduling: a fusion-cut enumerator over the network IR's
// position chain. Contiguous segments connected by producer→consumer edges
// may execute as one fused group whose intermediate tensors stay resident in
// an on-chip buffer (cost.Residency) instead of round-tripping DRAM; the
// scheduler enumerates every candidate group up to a bounded length, solves
// each member problem through the Engine's content-addressed cache (so
// overlapping cuts share their member searches), and picks the best cut by
// an exact Pareto dynamic program over prefix (energy, cycles) sums — EDP is
// not additive across segments, but energy and cycles are, and the frontier
// of their sums contains the EDP optimum. The all-singleton cut is always a
// candidate, so the fused schedule never scores worse than the unfused one.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/network"
	"sunstone/internal/obs"
	"sunstone/internal/tensor"
)

// FusionOptions configures SolveNetworkFused on top of the per-member
// search Options.
type FusionOptions struct {
	// MaxGroup bounds the chain positions per fused group (0 = default 4).
	// MaxGroup 1 disables fusion: the result is the all-singleton schedule.
	MaxGroup int
	// Resilience, when non-nil, routes every member search — singleton
	// baseline and fused — through OptimizeResilient with this policy.
	Resilience *RetryPolicy
}

// defaultMaxGroup bounds fused group length when FusionOptions doesn't: the
// resident-footprint reservations of longer chains exhaust realistic on-chip
// capacities well before the search space does.
const defaultMaxGroup = 4

// GroupResult is one segment of a fused network schedule.
type GroupResult struct {
	// Start/End span the segment's positions [Start, End) in the network's
	// repeat-expanded chain.
	Start, End int
	// Layers names the member occurrences in chain order.
	Layers []string
	// PinLevel is the storage level the segment's intermediate tensors stay
	// resident at; -1 for an unfused singleton.
	PinLevel int
	// Members holds each member's search result in chain order. Fused
	// members were solved under the residency cost model on the
	// capacity-reserved architecture.
	Members []Result
	// EnergyPJ/Cycles are the segment totals over Members.
	EnergyPJ, Cycles float64
}

// NetworkResult is the outcome of SolveNetworkFused.
type NetworkResult struct {
	Network string
	// Groups is the chosen fusion cut in chain order; singleton groups are
	// unfused layer occurrences.
	Groups []GroupResult
	// Totals of the chosen cut; EDP = TotalEnergyPJ × TotalCycles.
	TotalEnergyPJ, TotalCycles, EDP float64
	// Unfused* are the all-singleton baseline totals from the same run —
	// what the per-layer pipeline scores on the expanded chain.
	UnfusedEnergyPJ, UnfusedCycles, UnfusedEDP float64
	// Sweep counters: candidate groups enumerated, cut by the composed
	// admissible bound, infeasible (no capacity for the resident footprint,
	// or a failed member search), and fully scored.
	GroupsConsidered, GroupsPruned, GroupsInfeasible, GroupsSolved int
	// Stopped aggregates the member searches' stop reasons: StopComplete
	// only when every member ran to completion and the group sweep was not
	// cut short by cancellation.
	Stopped StopReason
	Elapsed time.Duration
}

// handoff is one fusible boundary between adjacent chain positions: the IR
// edge, the level its intermediate pins at, and the capacity it reserves.
type handoff struct {
	edge  network.Edge
	pin   int
	bytes int64
}

// memberJob is one distinct resident member problem, shared by every
// candidate group that needs it (groups overlap heavily across the sweep;
// the Problem.Key dedup makes the shared members nearly free, on top of the
// Engine's compiled-artifact reuse).
type memberJob struct {
	prob   Problem
	sess   *cost.Session // residency session, for the composed bound
	needed bool
	res    Result
	err    error
}

// groupSpec is one candidate fused segment during the sweep.
type groupSpec struct {
	s, e           int
	pin            int
	members        []*memberJob
	feasible       bool
	energy, cycles float64
}

// SolveNetworkFused schedules the network with fusion-aware cuts: it solves
// the all-singleton baseline, enumerates every contiguous fusible group of
// at most MaxGroup positions, solves each group's members under cross-layer
// buffer residency (cost.Residency) on a derived architecture whose pinned
// buffer has the resident footprint carved out, and selects the cut
// minimizing total EDP by an exact Pareto DP over prefix (energy, cycles).
//
// The anytime contract threads through every member search: canceling ctx
// degrades in-flight members to their best-so-far mappings, stops the group
// sweep, and still returns a complete schedule (the all-singleton cut at
// worst), with Stopped recording the reason. A failed singleton search is a
// hard error (the baseline is the DP's safety net); a failed fused member
// only discards its groups.
func (e *Engine) SolveNetworkFused(ctx context.Context, net *network.Network, a *arch.Arch, opt Options, fopt FusionOptions) (NetworkResult, error) {
	if err := opt.Validate(); err != nil {
		return NetworkResult{}, err
	}
	if net == nil {
		return NetworkResult{}, errors.New("fused schedule: nil network")
	}
	if err := net.Validate(); err != nil {
		return NetworkResult{}, err
	}
	if a == nil {
		return NetworkResult{}, errors.New("fused schedule: nil arch")
	}
	if err := a.Validate(); err != nil {
		return NetworkResult{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	maxGroup := fopt.MaxGroup
	if maxGroup <= 0 {
		maxGroup = defaultMaxGroup
	}
	start := time.Now()
	ctx, span := obs.StartSpanf(ctx, "fuse %s", net.Name)
	defer span.End()

	pos := net.Positions()
	res := NetworkResult{Network: net.Name}

	// Phase 1: the all-singleton baseline — each distinct layer solved once
	// under the plain model. It is both the DP's fallback and the dominance
	// reference for group pruning.
	singles := make([]Result, len(net.Layers))
	singleErrs := make([]error, len(net.Layers))
	parallelDo(len(net.Layers), func(i int) {
		l := &net.Layers[i]
		r, err := e.solveMember(ctx, l.Workload, a, opt, fopt.Resilience)
		singles[i] = r
		if err != nil {
			singleErrs[i] = &LayerError{Layer: l.Name, Cause: ClassifyFailure(err, false), Err: err}
		}
	})
	if err := errors.Join(singleErrs...); err != nil {
		return NetworkResult{}, err
	}

	// Phase 2: fusible boundaries, then candidate groups. boundary[i]
	// describes the handoff between positions i and i+1 when an edge exists
	// and the architecture has an on-chip home for it; a nil boundary is a
	// forced cut.
	boundary := make([]*handoff, 0, len(pos))
	for i := 0; i+1 < len(pos); i++ {
		var h *handoff
		if ed, ok := net.EdgeBetween(pos[i].Layer, pos[i+1].Layer); ok {
			if pin := network.PinLevel(a, ed); pin >= 0 {
				h = &handoff{edge: ed, pin: pin, bytes: net.HandoffBytes(a, ed)}
			}
		}
		boundary = append(boundary, h)
	}

	jobs := map[string]*memberJob{}
	var jobOrder []*memberJob
	buildJob := func(p network.Position, in, out *handoff) (*memberJob, bool) {
		w := net.Layers[p.Layer].Workload
		var pins []cost.Pin
		type resv struct {
			lvl, buf int
			bytes    int64
		}
		var rs []resv
		add := func(h *handoff, name string) bool {
			bi := bufferIndexFor(&a.Levels[h.pin], name)
			if bi < 0 {
				return false
			}
			pins = append(pins, cost.Pin{Tensor: name, Level: h.pin})
			rs = append(rs, resv{lvl: h.pin, buf: bi, bytes: h.bytes})
			return true
		}
		if in != nil && !add(in, in.edge.ToTensor) {
			return nil, false
		}
		if out != nil && !add(out, out.edge.FromTensor) {
			return nil, false
		}
		// Derived architecture: carve the resident footprints out of the
		// pinned buffers. A buffer driven to or below zero cannot host the
		// residency — the group is infeasible on this architecture.
		da := *a
		da.Levels = append([]arch.Level(nil), a.Levels...)
		copied := map[int]bool{}
		for _, r := range rs {
			if !copied[r.lvl] {
				da.Levels[r.lvl].Buffers = append([]arch.Buffer(nil), da.Levels[r.lvl].Buffers...)
				copied[r.lvl] = true
			}
			b := &da.Levels[r.lvl].Buffers[r.buf]
			b.Bytes -= r.bytes
			if b.Bytes <= 0 {
				return nil, false
			}
		}
		model := opt.Model
		model.Resident = &cost.Residency{Pins: (&cost.Residency{Pins: pins}).CanonicalPins()}
		prob := Problem{Workload: w, Arch: &da, Model: model}
		key, cacheable := prob.Key()
		if !cacheable {
			key = fmt.Sprintf("uncacheable-%d", len(jobOrder))
		}
		if j, ok := jobs[key]; ok {
			return j, true
		}
		j := &memberJob{prob: prob, sess: e.Session(model, w, &da)}
		jobs[key] = j
		jobOrder = append(jobOrder, j)
		return j, true
	}

	var groupList []*groupSpec
	groupAt := map[[2]int]*groupSpec{}
	for s := 0; s < len(pos) && ctx.Err() == nil; s++ {
		for en := s + 2; en <= len(pos) && en-s <= maxGroup; en++ {
			if boundary[en-2] == nil {
				break // forced cut: longer groups from s are impossible too
			}
			res.GroupsConsidered++
			g := &groupSpec{s: s, e: en, pin: boundary[s].pin}
			feasible := true
			for i := s; i < en; i++ {
				var in, out *handoff
				if i > s {
					in = boundary[i-1]
				}
				if i < en-1 {
					out = boundary[i]
				}
				j, ok := buildJob(pos[i], in, out)
				if !ok {
					feasible = false
					break
				}
				g.members = append(g.members, j)
			}
			if !feasible {
				res.GroupsInfeasible++
				continue
			}
			// Composed admissible bound (PR 8's per-layer floors under the
			// residency model, summed over the group): a fused group whose
			// floor already matches-or-exceeds the singleton schedule of
			// the same span in BOTH energy and cycles can never improve the
			// Pareto frontier, so its member searches are skipped entirely.
			var lbE, lbC, sE, sC float64
			bounded := true
			for i, j := range g.members {
				if j.sess == nil {
					bounded = false
					break
				}
				be, bc := j.sess.LowerBound(0)
				lbE += be
				lbC += bc
				r := &singles[pos[s+i].Layer].Report
				sE += r.EnergyPJ
				sC += r.Cycles
			}
			if bounded && lbE >= sE && lbC >= sC {
				res.GroupsPruned++
				continue
			}
			for _, j := range g.members {
				j.needed = true
			}
			groupList = append(groupList, g)
			groupAt[[2]int{s, en}] = g
		}
	}

	// Phase 3: solve the distinct member problems of every surviving group.
	var needed []*memberJob
	for _, j := range jobOrder {
		if j.needed {
			needed = append(needed, j)
		}
	}
	parallelDo(len(needed), func(i int) {
		j := needed[i]
		opt2 := opt
		opt2.Model = j.prob.Model
		j.res, j.err = e.solveMember(ctx, j.prob.Workload, j.prob.Arch, opt2, fopt.Resilience)
	})
	for _, g := range groupList {
		ok := true
		g.energy, g.cycles = 0, 0
		for _, j := range g.members {
			if j.err != nil || j.res.Mapping == nil || !j.res.Report.Valid {
				ok = false
				break
			}
			g.energy += j.res.Report.EnergyPJ
			g.cycles += j.res.Report.Cycles
		}
		g.feasible = ok
		if ok {
			res.GroupsSolved++
		} else {
			res.GroupsInfeasible++
		}
	}

	// Phase 4: exact Pareto DP over prefix (energy, cycles) sums. states[i]
	// is the non-dominated frontier over all cuts of positions [0, i); the
	// all-singleton path survives every filter step (anything dominating it
	// is at least as good in both components), so the final minimum-EDP
	// state never scores worse than the unfused baseline.
	type pathState struct {
		e, c   float64
		prev   int        // position index where the last segment starts
		prevIx int        // index into states[prev]
		g      *groupSpec // nil: singleton segment [prev, prev+1)
	}
	states := make([][]pathState, len(pos)+1)
	states[0] = []pathState{{}}
	for i := 1; i <= len(pos); i++ {
		var cand []pathState
		r := &singles[pos[i-1].Layer].Report
		for ix, st := range states[i-1] {
			cand = append(cand, pathState{e: st.e + r.EnergyPJ, c: st.c + r.Cycles, prev: i - 1, prevIx: ix})
		}
		for s := i - 2; s >= 0 && i-s <= maxGroup; s-- {
			g := groupAt[[2]int{s, i}]
			if g == nil || !g.feasible {
				continue
			}
			for ix, st := range states[s] {
				cand = append(cand, pathState{e: st.e + g.energy, c: st.c + g.cycles, prev: s, prevIx: ix, g: g})
			}
		}
		sort.SliceStable(cand, func(a, b int) bool {
			if cand[a].e != cand[b].e {
				return cand[a].e < cand[b].e
			}
			return cand[a].c < cand[b].c
		})
		var front []pathState
		for _, st := range cand {
			if len(front) == 0 || st.c < front[len(front)-1].c {
				front = append(front, st)
			}
		}
		states[i] = front
	}

	// Unfused baseline totals, summed in the same left-to-right order the
	// DP's singleton path uses.
	for _, p := range pos {
		r := &singles[p.Layer].Report
		res.UnfusedEnergyPJ += r.EnergyPJ
		res.UnfusedCycles += r.Cycles
	}
	res.UnfusedEDP = res.UnfusedEnergyPJ * res.UnfusedCycles

	final := states[len(pos)]
	best := 0
	for ix := 1; ix < len(final); ix++ {
		if final[ix].e*final[ix].c < final[best].e*final[best].c {
			best = ix
		}
	}
	// Reconstruct the chosen cut back-to-front.
	var segs []pathState
	for i, ix := len(pos), best; i > 0; {
		st := states[i][ix]
		segs = append(segs, st)
		i, ix = st.prev, st.prevIx
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	at := 0
	for _, st := range segs {
		if st.g == nil {
			l := pos[at].Layer
			r := singles[l]
			res.Groups = append(res.Groups, GroupResult{
				Start: at, End: at + 1,
				Layers:   []string{net.Layers[l].Name},
				PinLevel: -1,
				Members:  []Result{r},
				EnergyPJ: r.Report.EnergyPJ,
				Cycles:   r.Report.Cycles,
			})
			at++
			continue
		}
		g := st.g
		gr := GroupResult{Start: g.s, End: g.e, PinLevel: g.pin, EnergyPJ: g.energy, Cycles: g.cycles}
		for i, j := range g.members {
			gr.Layers = append(gr.Layers, net.Layers[pos[g.s+i].Layer].Name)
			gr.Members = append(gr.Members, j.res)
		}
		res.Groups = append(res.Groups, gr)
		at = g.e
	}
	for _, g := range res.Groups {
		res.TotalEnergyPJ += g.EnergyPJ
		res.TotalCycles += g.Cycles
	}
	res.EDP = res.TotalEnergyPJ * res.TotalCycles

	res.Stopped = StopComplete
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			res.Stopped = StopDeadline
		} else {
			res.Stopped = StopCanceled
		}
	} else {
	scan:
		for _, g := range res.Groups {
			for _, m := range g.Members {
				if m.Stopped != StopComplete {
					res.Stopped = m.Stopped
					break scan
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// solveMember runs one member search — through the resilient path when a
// policy is given — with panic containment, so a poisoned cost model on one
// member degrades that member instead of the whole schedule.
func (e *Engine) solveMember(ctx context.Context, w *tensor.Workload, a *arch.Arch, opt Options, pol *RetryPolicy) (r Result, err error) {
	defer func() {
		if pe := anytime.PanicErrorFrom(recover(), "fused member "+w.Name, nil); pe != nil {
			err = pe
		}
	}()
	if pol != nil {
		return e.OptimizeResilient(ctx, w, a, opt, *pol)
	}
	return e.Solve(ctx, Problem{Workload: w, Arch: a, Model: opt.Model}, opt)
}

// parallelDo runs fn(0..n-1) on up to GOMAXPROCS goroutines and waits.
func parallelDo(n int, fn func(i int)) {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// bufferIndexFor returns the index of the buffer holding tensor name at
// level l, or -1.
func bufferIndexFor(l *arch.Level, name string) int {
	for i := range l.Buffers {
		if l.Buffers[i].Holds(name) {
			return i
		}
	}
	return -1
}

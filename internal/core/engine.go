package core

import (
	"container/list"
	"context"
	"sync"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/obs"
	"sunstone/internal/tensor"
)

// Engine is a long-lived, goroutine-safe optimizer that caches Compiled
// problem artifacts across calls. The cache is content-addressed — problems
// are keyed by their serialized (workload, arch, model) form, not by pointer
// identity — so a network scheduler that builds a fresh Workload per layer
// still compiles each distinct shape exactly once, and every later call on
// that shape starts with the ordering set, capacity tables, factor ladders,
// and a warm evaluation memo already in hand.
//
// The cache is sharded to keep concurrent lookups cheap and bounded per
// shard with LRU eviction so a workload-churning service cannot grow it
// without limit. Concurrent first requests for the same problem compile it
// once (the losers wait for the winner).
type Engine struct {
	shardCap int
	shards   [engineShards]engineShard

	compiles  obs.Counter
	hits      obs.Counter
	evictions obs.Counter
}

const (
	engineShards = 8
	// defaultEngineEntries bounds the whole cache by default; at most a few
	// MB per compiled problem, this keeps a default Engine well under a GB
	// even when every entry is hot.
	defaultEngineEntries = 256
)

type engineShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recently used; values are *engineEntry
}

// engineEntry is one cached compilation. The once gate makes concurrent
// first calls single-flight: the entry is published under the shard lock,
// compilation runs outside it, and late arrivals block on once.Do until the
// artifacts (or the compile error) are ready.
type engineEntry struct {
	key  string
	once sync.Once
	comp *Compiled
	err  error
}

// NewEngine returns an Engine whose cache holds at most maxEntries compiled
// problems (0 = default 256; eviction is LRU per shard).
func NewEngine(maxEntries int) *Engine {
	if maxEntries <= 0 {
		maxEntries = defaultEngineEntries
	}
	cap := maxEntries / engineShards
	if cap < 1 {
		cap = 1
	}
	e := &Engine{shardCap: cap}
	for i := range e.shards {
		e.shards[i].entries = make(map[string]*list.Element)
	}
	return e
}

// EngineStats is a snapshot of an Engine's cache behavior.
type EngineStats struct {
	// Compiles counts problems compiled (cache misses plus uncacheable
	// probe-model compilations).
	Compiles uint64
	// Hits counts calls served from the cache.
	Hits uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Entries is the current cached-problem count.
	Entries int
}

// Stats snapshots the Engine's cache counters.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Compiles:  e.compiles.Load(),
		Hits:      e.hits.Load(),
		Evictions: e.evictions.Load(),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// Optimize is OptimizeContext with a background context.
//
// Deprecated-style note: Engine.Solve with a Problem is the canonical entry
// point; this wrapper remains for positional-argument callers.
func (e *Engine) Optimize(w *tensor.Workload, a *arch.Arch, opt Options) (Result, error) {
	return e.Solve(context.Background(), Problem{Workload: w, Arch: a}, opt)
}

// OptimizeContext is a thin wrapper over Engine.Solve for positional
// (workload, arch) callers; Solve with a Problem is the canonical entry
// point. Results are identical to a cold call — the search replays the
// compiled enumeration into its own counters and spans — only faster,
// because the per-problem precomputation and the evaluation memo carry over.
func (e *Engine) OptimizeContext(ctx context.Context, w *tensor.Workload, a *arch.Arch, opt Options) (Result, error) {
	return e.Solve(ctx, Problem{Workload: w, Arch: a}, opt)
}

// Session returns the compiled cost session for (model, w, a), compiling
// and caching the problem if needed, or nil when the problem is invalid.
// Baselines use this (via baselines.SessionSource) to score against the same
// warm tables and memo the main search uses.
func (e *Engine) Session(model cost.Model, w *tensor.Workload, a *arch.Arch) *cost.Session {
	comp, err := e.compiled(Problem{Workload: w, Arch: a, Model: model})
	if err != nil {
		return nil
	}
	return comp.sess
}

// compiled returns the cached artifacts for the problem, compiling them on
// first sight. Problems outside the cacheable domain — a model with a fault
// probe, or inputs that fail to serialize — compile fresh per call, exactly
// like the package-level path.
func (e *Engine) compiled(p Problem) (*Compiled, error) {
	// Validate before keying: encoding assumes structurally sound inputs,
	// and the invalid-input errors must match the per-call path's.
	if err := p.Validate(); err != nil {
		return nil, err
	}
	key, cacheable := p.Key()
	if !cacheable {
		e.compiles.Inc()
		return p.Compile()
	}
	sh := &e.shards[key[0]%engineShards]
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.MoveToFront(el)
		ent := el.Value.(*engineEntry)
		sh.mu.Unlock()
		e.hits.Inc()
		// Wait out a concurrent first compile; no-op when already done.
		ent.once.Do(func() {})
		if ent.err != nil {
			e.dropFailed(sh, key, ent)
		}
		return ent.comp, ent.err
	}
	ent := &engineEntry{key: key}
	sh.entries[key] = sh.lru.PushFront(ent)
	for len(sh.entries) > e.shardCap {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*engineEntry).key)
		e.evictions.Inc()
	}
	sh.mu.Unlock()
	ent.once.Do(func() {
		// A panicking compile (an injected chaos fault, a poisoned model)
		// must complete the once normally: sync.Once marks itself done even
		// when f panics, so letting the panic escape would leave a poisoned
		// entry serving (nil, nil) to every later caller.
		defer func() {
			if pe := anytime.PanicErrorFrom(recover(), "compile problem", nil); pe != nil {
				ent.comp, ent.err = nil, pe
			}
		}()
		e.compiles.Inc()
		ent.comp, ent.err = p.Compile()
	})
	if ent.err != nil {
		e.dropFailed(sh, key, ent)
	}
	return ent.comp, ent.err
}

// dropFailed removes a failed compilation from the cache so the failure is
// never retained: transient faults (an injected chaos error, a poisoned
// model panic) must not pin an error forever on a problem that would
// compile cleanly on retry. The pointer comparison keeps the removal
// precise — if another caller already replaced the entry with a fresh
// (possibly successful) compilation, that one stays.
func (e *Engine) dropFailed(sh *engineShard, key string, ent *engineEntry) {
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok && el.Value.(*engineEntry) == ent {
		sh.lru.Remove(el)
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
}

package core

import (
	"context"
	"errors"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/network"
	"sunstone/internal/workloads"
)

// fuseFixture: a small fully-fusible GEMM chain on the tiny two-level arch,
// where every fused handoff eliminates a DRAM round trip — the clearest
// possible signal for the cut DP — with search options small enough to keep
// the whole sweep fast.
func fuseFixture() (*network.Network, *arch.Arch, Options) {
	net := network.TransformerChain(16, 16, 64)
	opt := Options{BeamWidth: 4, TilesPerStep: 8, UnrollsPerStep: 1, Threads: 2}
	return net, arch.Tiny(1024), opt
}

// checkCut verifies the structural invariants of any fused schedule: groups
// tile the position chain exactly, member counts match spans, and the
// published totals are the sums of the published groups.
func checkCut(t *testing.T, net *network.Network, res NetworkResult) {
	t.Helper()
	at := 0
	var e, c float64
	for _, g := range res.Groups {
		if g.Start != at || g.End <= g.Start {
			t.Fatalf("groups do not tile the chain: got span [%d,%d) at position %d", g.Start, g.End, at)
		}
		if len(g.Members) != g.End-g.Start || len(g.Layers) != g.End-g.Start {
			t.Fatalf("group [%d,%d): %d members, %d layer names", g.Start, g.End, len(g.Members), len(g.Layers))
		}
		if g.End-g.Start == 1 && g.PinLevel != -1 {
			t.Errorf("singleton group [%d,%d) has pin level %d", g.Start, g.End, g.PinLevel)
		}
		if g.End-g.Start > 1 && g.PinLevel < 0 {
			t.Errorf("fused group [%d,%d) has no pin level", g.Start, g.End)
		}
		for _, m := range g.Members {
			if m.Mapping == nil || !m.Report.Valid {
				t.Fatalf("group [%d,%d) carries an invalid member result", g.Start, g.End)
			}
		}
		e += g.EnergyPJ
		c += g.Cycles
		at = g.End
	}
	if want := len(net.Positions()); at != want {
		t.Fatalf("groups cover %d positions, want %d", at, want)
	}
	if e != res.TotalEnergyPJ || c != res.TotalCycles {
		t.Errorf("totals diverge from groups: (%v, %v) vs (%v, %v)", e, c, res.TotalEnergyPJ, res.TotalCycles)
	}
	if res.EDP != res.TotalEnergyPJ*res.TotalCycles {
		t.Errorf("EDP %v != E*C %v", res.EDP, res.TotalEnergyPJ*res.TotalCycles)
	}
}

// TestFusedBeatsUnfused is the headline property: on a DRAM-dominated
// architecture a fully-fusible chain must fuse, and the fused schedule must
// score strictly better EDP than the all-singleton baseline solved in the
// same run.
func TestFusedBeatsUnfused(t *testing.T) {
	net, a, opt := fuseFixture()
	e := NewEngine(0)
	res, err := e.SolveNetworkFused(context.Background(), net, a, opt, FusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopComplete {
		t.Fatalf("Stopped = %v, want complete", res.Stopped)
	}
	checkCut(t, net, res)
	if res.EDP >= res.UnfusedEDP {
		t.Errorf("fused EDP %v did not beat unfused %v", res.EDP, res.UnfusedEDP)
	}
	fused := 0
	for _, g := range res.Groups {
		if g.End-g.Start > 1 {
			fused++
			if g.PinLevel != 0 {
				t.Errorf("group [%d,%d) pinned at level %d, want 0 (tiny L1)", g.Start, g.End, g.PinLevel)
			}
		}
	}
	if fused == 0 {
		t.Error("no fused group chosen on a fully-fusible DRAM-dominated chain")
	}
	if res.GroupsConsidered == 0 || res.GroupsSolved == 0 {
		t.Errorf("sweep counters empty: %+v", res)
	}
}

// TestFusedMaxGroupOneIsUnfused: MaxGroup 1 disables fusion and the result
// is exactly the singleton baseline — same totals bit-for-bit, no candidate
// groups even considered.
func TestFusedMaxGroupOneIsUnfused(t *testing.T) {
	net, a, opt := fuseFixture()
	e := NewEngine(0)
	res, err := e.SolveNetworkFused(context.Background(), net, a, opt, FusionOptions{MaxGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkCut(t, net, res)
	if res.GroupsConsidered != 0 {
		t.Errorf("MaxGroup 1 considered %d groups", res.GroupsConsidered)
	}
	if res.EDP != res.UnfusedEDP || res.TotalEnergyPJ != res.UnfusedEnergyPJ || res.TotalCycles != res.UnfusedCycles {
		t.Errorf("all-singleton cut diverges from the unfused baseline: %+v", res)
	}
	for _, g := range res.Groups {
		if g.End-g.Start != 1 {
			t.Fatalf("MaxGroup 1 produced a fused group [%d,%d)", g.Start, g.End)
		}
	}
}

// TestFusedRepeatedLayerSelfEdge: a repeats-compressed layer expands into
// positions chained by its self-edge; the fused scheduler must fuse across
// occurrences of the same layer, and member dedup means the interior
// occurrences share one resident search.
func TestFusedRepeatedLayerSelfEdge(t *testing.T) {
	shapes := []workloads.ConvShape{{
		Name: "block", K: 4, C: 4, P: 4, Q: 4, R: 1, S: 1, StrideH: 1, StrideW: 1,
	}}
	net, err := network.FromConvShapes("rep", shapes, 1, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := net.EdgeBetween(0, 0); !ok {
		t.Fatal("fixture lost its self-edge")
	}
	e := NewEngine(0)
	opt := Options{BeamWidth: 4, TilesPerStep: 8, UnrollsPerStep: 1, Threads: 2}
	res, err := e.SolveNetworkFused(context.Background(), net, arch.Tiny(1024), opt, FusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkCut(t, net, res)
	if res.EDP > res.UnfusedEDP {
		t.Errorf("fused EDP %v worse than unfused %v", res.EDP, res.UnfusedEDP)
	}
	if len(res.Groups) == 1 && res.Groups[0].End == 3 {
		names := res.Groups[0].Layers
		for _, n := range names {
			if n != "block" {
				t.Errorf("unexpected member name %q", n)
			}
		}
	}
}

// TestFusedCanceledContext: the anytime contract — a canceled context never
// hangs the sweep. Either the singleton baseline itself could not produce an
// incumbent (a classified per-layer error) or a schedule comes back with a
// non-complete stop reason.
func TestFusedCanceledContext(t *testing.T) {
	net, a, opt := fuseFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e2e(t, net, a, opt, ctx)
	if err != nil {
		var le *LayerError
		if !errors.As(err, &le) {
			t.Errorf("canceled run failed without per-layer classification: %v", err)
		}
		return
	}
	if res.Stopped == StopComplete {
		t.Errorf("canceled run reported StopComplete")
	}
	checkCut(t, net, res)
}

func e2e(t *testing.T, net *network.Network, a *arch.Arch, opt Options, ctx context.Context) (NetworkResult, error) {
	t.Helper()
	return NewEngine(0).SolveNetworkFused(ctx, net, a, opt, FusionOptions{})
}

// TestFusedRejectsInvalidInput: option and IR validation fire before any
// search runs.
func TestFusedRejectsInvalidInput(t *testing.T) {
	net, a, opt := fuseFixture()
	e := NewEngine(0)
	if _, err := e.SolveNetworkFused(context.Background(), nil, a, opt, FusionOptions{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := e.SolveNetworkFused(context.Background(), net, nil, opt, FusionOptions{}); err == nil {
		t.Error("nil arch accepted")
	}
	if _, err := e.SolveNetworkFused(context.Background(), net, a, Options{BeamWidth: -1}, FusionOptions{}); err == nil {
		t.Error("invalid options accepted")
	}
	bad := *net
	bad.Layers = append([]network.Layer(nil), net.Layers...)
	bad.Layers[0].Repeats = 0
	if _, err := e.SolveNetworkFused(context.Background(), &bad, a, opt, FusionOptions{}); err == nil {
		t.Error("invalid network accepted")
	}
}

package core

import (
	"errors"
	"sync"
	"testing"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/faults"
)

// TestEngineFailedCompileNotCached: a compile that fails with an injected
// error must not be retained — the same problem compiles cleanly once the
// fault clears, on the same Engine.
func TestEngineFailedCompileNotCached(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	e := NewEngine(0)

	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Error, Rate: 1}))
	_, err := e.Optimize(w, a, Options{})
	var inj *faults.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want the injected compile error, got %v", err)
	}
	if n := e.Stats().Entries; n != 0 {
		t.Fatalf("failed compile retained in cache: %d entries", n)
	}
	restore()

	if _, err := e.Optimize(w, a, Options{}); err != nil {
		t.Fatalf("same Engine must recover once the fault clears: %v", err)
	}
	if n := e.Stats().Entries; n != 1 {
		t.Errorf("recovered compile not cached: %d entries", n)
	}
}

// TestEnginePanickedCompileNotPoisoned is the poisoned-sync.Once regression:
// sync.Once marks itself done even when f panics, so without the recover
// inside the once body a panicking compile would cache a (nil, nil) entry
// and every later caller would crash on the nil artifacts. The panic must
// surface as an error, leave no entry behind, and the problem must compile
// cleanly afterwards.
func TestEnginePanickedCompileNotPoisoned(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	e := NewEngine(0)

	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Panic, Rate: 1}))
	_, err := e.Optimize(w, a, Options{})
	var pe *anytime.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking compile must surface as a contained PanicError, got %v", err)
	}
	if n := e.Stats().Entries; n != 0 {
		t.Fatalf("panicked compile retained in cache: %d entries", n)
	}
	restore()

	res, err := e.Optimize(w, a, Options{})
	if err != nil || res.Mapping == nil {
		t.Fatalf("Engine poisoned by an earlier compile panic: %v", err)
	}
}

// TestEngineConcurrentFailedCompile drives many same-key callers into an
// always-failing compile (run under -race via `make race`): every caller
// must see an error, none may crash on nil artifacts, the cache must stay
// empty, and the Engine must recover afterwards.
func TestEngineConcurrentFailedCompile(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	e := NewEngine(0)

	restore := faults.Activate(mustInjector(t, 1,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Panic, Rate: 1}))
	const callers = 16
	errCh := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Optimize(w, a, Options{})
			errCh <- err
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err == nil {
			t.Error("a caller got a nil error from a compile that always panics")
		}
	}
	if n := e.Stats().Entries; n != 0 {
		t.Fatalf("concurrent failed compiles left %d cache entries", n)
	}
	restore()

	if _, err := e.Optimize(w, a, Options{}); err != nil {
		t.Fatalf("Engine must recover after concurrent failures: %v", err)
	}
}

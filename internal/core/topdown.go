package core

// This file holds the top-down expansion machinery — the variant Table VI
// compares against. At step m it assigns the loop order, temporal factors
// and spatial unrolling of level m; the extents remaining below level m are
// then fully determined, so level m-1's capacity can be checked. The
// branching at the first (DRAM) step is enormous because the large on-chip
// memories admit most factor splits — the paper's explanation for why this
// direction examines an order of magnitude more candidates — and the
// alpha-beta estimates are looser because low-level access counts are
// unknown until the very end. The level-sequencing driver itself is shared
// with bottom-up — see stepper.go.

import (
	"context"

	"sunstone/internal/anytime"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/unroll"
)

// expandTopUnit is the sequencer's per-(state, ordering) expansion unit for
// the top-down direction. Every visited node is either a materialized
// candidate (evaluated downstream) or a tiling reject; unrolling rejects are
// tallied separately. All tallies are accumulated locally in the returned
// unitOut and flushed once per beam state by the driver (via
// replayExpansion) — the enumeration recursion can visit millions of nodes,
// so it must never touch an atomic per node.
//
// The budget is this unit's pre-partitioned share of the step's visit
// budget (see expandStep): unlike the historical serial walk, where one
// greedy ordering could starve its siblings through the shared `remaining`
// counter, every unit's share is fixed up front, which is what makes the
// outcome independent of execution order and thread count. The unit reports
// truncated when its share expired before the enumeration finished.

// completeDownAt returns the top-down scoring completion for candidates
// whose remaining factors land in the level-lvl tile (lower levels stay 1).
// For lvl < 0 — the final step — the mapping is complete as-is, but cloning
// keeps state.m (the partial the next step would extend) distinct from
// state.completed (the incumbent) in both directions.
func (sc *search) completeDownAt(lvl int) completeFn {
	return func(m *mapping.Mapping) *mapping.Mapping {
		c := m.Clone()
		if lvl >= 0 {
			ext := remainingExtents(c, lvl)
			for d, e := range ext {
				if e > 1 {
					c.Levels[lvl].Temporal[d] = e
				}
			}
		}
		return c
	}
}

func (sc *search) expandTopUnit(ctx context.Context, base *mapping.Mapping, m int, o *order.Ordering, budget int) unitOut {
	var out unitOut
	w := base.Workload
	a := base.Arch
	visited := 0
	poll := &anytime.Poller{Ctx: ctx, Every: 1024}
	if poll.Stop() != StopComplete {
		return out
	}

	dims := w.Order
	m1 := base.Clone()
	m1.Levels[m].Order = o.Complete(w)

	spatials := []*mapping.Mapping{m1}
	if a.Levels[m].Fanout > 1 {
		spatials = sc.topDownUnroll(m1, m, &out.prunedUnrolling)
	}
	for _, m2 := range spatials {
		// Budget for T(m): the remainder above level m, net of the
		// spatial factors just assigned at m.
		quota := remainingExtents(m2, m)
		for d := range quota {
			if s := m2.Levels[m].S(d); s > 1 {
				quota[d] = ceilDiv(quota[d], s)
			}
		}
		// Descending ladders: large top-level factors leave small
		// remainders below, so the feasible region (remainder fits
		// the next level) is reached before any visit budget expires.
		ladders := make([][]int, len(dims))
		for i, d := range dims {
			l := sc.comp.ladders.ladder(quota[d], 4)
			rev := make([]int, len(l))
			for j, v := range l {
				rev[len(l)-1-j] = v
			}
			ladders[i] = rev
		}
		cur := make(map[tensor.Dim]int, len(dims))
		var rec func(i int)
		rec = func(i int) {
			if visited >= budget || poll.Stop() != StopComplete {
				return
			}
			if i == len(dims) {
				visited++
				// Full capacity check before paying for a clone.
				if !partialRemainderCanFit(m2, m, cur, nil, quota) {
					return
				}
				cand := m2.Clone()
				for d, f := range cur {
					if f > 1 {
						cand.Levels[m].Temporal[d] = f
					}
				}
				out.cands = append(out.cands, cand)
				return
			}
			d := dims[i]
			for _, f := range ladders[i] {
				cur[d] = f
				// Sound subtree pruning: with unassigned dims at their
				// largest factors (smallest remainders), if the partial
				// remainder already overflows level m-1, no completion
				// can fit.
				if !partialRemainderCanFit(m2, m, cur, dims[i+1:], quota) {
					visited++
					continue
				}
				rec(i + 1)
			}
			delete(cur, d)
		}
		rec(0)
	}
	out.visited = visited
	out.prunedTiling = visited - len(out.cands)
	out.truncated = visited >= budget
	return out
}

// topDownUnroll enumerates spatial unrollings at level m without principle
// restrictions (top-down has no lower-level ordering fixed yet to derive OP
// from; this unguided enumeration is part of why its space is larger).
// Enumeration-tree rejects are added to *pruned.
func (sc *search) topDownUnroll(m1 *mapping.Mapping, m int, pruned *int) []*mapping.Mapping {
	a := m1.Arch
	cands, ustats := unroll.Enumerate(unroll.Space{
		ReductionDims:         m1.Workload.ReductionDims(),
		Quota:                 remainingExtents(m1, m),
		Fanout:                a.Levels[m].Fanout,
		MinUtilization:        sc.opt.MinUtilization,
		AllowSpatialReduction: a.Levels[m].AllowSpatialReduction,
		MaxCandidates:         sc.opt.UnrollsPerStep * 2,
		Ladder:                sc.comp.ladders.ladder,
	})
	*pruned += ustats.NodesVisited - ustats.Survivors
	var out []*mapping.Mapping
	for _, u := range cands {
		mu := m1.Clone()
		for d, f := range u {
			if f > 1 {
				mu.Levels[m].Spatial[d] = f
			}
		}
		out = append(out, mu)
	}
	if len(out) == 0 {
		out = append(out, m1.Clone())
	}
	return out
}

// remainingExtents returns, per dimension, the extent forced at level lvl
// when all factors above lvl are assigned: bound / (product above).
func remainingExtents(m *mapping.Mapping, lvl int) map[tensor.Dim]int {
	ext := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d, bound := range m.Workload.Dims {
		above := 1
		for l := lvl + 1; l < len(m.Levels); l++ {
			above *= m.Levels[l].T(d) * m.Levels[l].S(d)
		}
		ext[d] = ceilDiv(bound, above)
	}
	return ext
}

// partialRemainderCanFit is the subtree-pruning necessity check during
// factor enumeration: assigned dims use their chosen factors; unassigned
// dims optimistically use their full quota (remainder 1). If even this
// minimal remainder overflows level m-1, prune.
func partialRemainderCanFit(m2 *mapping.Mapping, m int, cur map[tensor.Dim]int, rest []tensor.Dim, quota map[tensor.Dim]int) bool {
	lvl := m - 1
	if lvl < 0 {
		return true
	}
	ext := remainingExtents(m2, lvl)
	for d, f := range cur {
		ext[d] = ceilDiv(ext[d], f)
	}
	for _, d := range rest {
		ext[d] = ceilDiv(ext[d], quota[d])
	}
	al := &m2.Arch.Levels[lvl]
	for bi := range al.Buffers {
		buf := &al.Buffers[bi]
		if buf.Bytes == 0 {
			continue
		}
		var usedBits int64
		for _, t := range m2.Workload.Tensors {
			if buf.Holds(t.Name) {
				usedBits += int64(t.Footprint(ext)) * int64(m2.Arch.Bits(t.Name))
			}
		}
		if usedBits > buf.Bytes*8 {
			return false
		}
	}
	return true
}

package core

import (
	"context"
	"errors"
	"fmt"

	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
	"sunstone/internal/unroll"
)

// topDown optimizes starting at the off-chip memory and walking down — the
// variant Table VI compares against. At step m it assigns the loop order,
// temporal factors and spatial unrolling of level m; the extents remaining
// below level m are then fully determined, so level m-1's capacity can be
// checked. The branching at the first (DRAM) step is enormous because the
// large on-chip memories admit most factor splits — the paper's explanation
// for why this direction examines an order of magnitude more candidates —
// and the alpha-beta estimates are looser because low-level access counts
// are unknown until the very end.
func topDown(ctx context.Context, w *tensor.Workload, a *arch.Arch, sc *search) (Result, error) {
	opt := sc.opt
	orderings, ostats := sc.enumerateOrderings(ctx, w)
	res := Result{OrderingsConsidered: ostats.Survivors}

	top := len(a.Levels) - 1
	states := []state{{m: mapping.New(w, a)}}
	// Every step gets its own share of the visit budget: the first (DRAM)
	// step's enormous branching would otherwise starve the lower steps.
	stepBudget := opt.TopDownVisitBudget / top
	if stepBudget < 1 {
		stepBudget = 1
	}
	budgetHit := false

	var inc incumbent
	seedIncumbent(sc, &inc, &res, states[0].m)

	for m := top; m >= 1; m-- {
		next, hit, done, out, err := sc.topDownStep(ctx, m, states, orderings, stepBudget, &res, &inc)
		if done {
			return out, err
		}
		budgetHit = budgetHit || hit
		states = next
	}

	best := states[0]
	if best.completed == nil || !best.valid {
		return inc.finish(sc, res, anytime.FromContext(ctx))
	}
	res.Mapping = best.completed
	res.Report = sc.finalReport(best.completed, best.energyPJ, best.cycles)
	if budgetHit {
		res.Stopped = StopBudget
	}
	return res, nil
}

// topDownStep runs one level of the top-down pass: expand every beam state
// under the step's visit budget, score by downward completion, prune to the
// next beam. When the search must return at this level it reports done=true
// with the final (Result, error). Extracted — like bottomUpLevel — so the
// step's span and progress phase close on every early return.
func (sc *search) topDownStep(ctx context.Context, m int, states []state, orderings []order.Ordering, stepBudget int, res *Result, inc *incumbent) (next []state, budgetHit, done bool, out Result, err error) {
	a := states[0].m.Arch
	lctx, lsp := obs.StartSpanf(ctx, "level %d (%s)", m, a.Levels[m].Name)
	defer lsp.End()
	sc.prog.phasef(obs.PhaseStarted, m, "level %d (%s)", m, a.Levels[m].Name)
	defer sc.prog.phasef(obs.PhaseFinished, m, "level %d (%s)", m, a.Levels[m].Name)

	if r := anytime.FromContext(ctx); r != StopComplete {
		out, err = inc.finish(sc, *res, r)
		return nil, false, true, out, err
	}
	_, esp := obs.StartSpan(lctx, "enumerate")
	var produced []*mapping.Mapping
	// Local tallies flushed once per step: the enumeration recursion can
	// visit millions of nodes, so it must never touch an atomic per node.
	visitedTotal, prunedUnrollTotal := 0, 0
	remaining := stepBudget
	for _, st := range states {
		cands, visited, prunedUnroll := expandTopLevel(ctx, st.m, m, orderings, sc.opt, remaining)
		res.SpaceSize += visited
		remaining -= visited
		visitedTotal += visited
		prunedUnrollTotal += prunedUnroll
		produced = append(produced, cands...)
		if remaining <= 0 {
			budgetHit = true
			break
		}
		if anytime.FromContext(ctx) != StopComplete {
			break
		}
	}
	// Every visited node is either a materialized candidate (evaluated
	// below) or a tiling reject; unrolling rejects are tallied separately.
	sc.ctr.Generated.Add(uint64(visitedTotal + prunedUnrollTotal))
	sc.ctr.PrunedTiling.Add(uint64(visitedTotal - len(produced)))
	sc.ctr.PrunedUnrolling.Add(uint64(prunedUnrollTotal))
	esp.Arg("produced", len(produced)).Arg("visited", visitedTotal).End()
	if len(produced) == 0 {
		if r := anytime.FromContext(ctx); r != StopComplete {
			out, err = inc.finish(sc, *res, r)
			return nil, budgetHit, true, out, err
		}
		return nil, budgetHit, true, *res, fmt.Errorf("top-down: no feasible candidates at level %d (%s)", m, a.Levels[m].Name)
	}
	// Score by completing downward: remaining factors land in the
	// level-(m-1) tile, lower levels at 1. (The final step's states are
	// already complete mappings.)
	vctx, vsp := obs.StartSpan(lctx, "evaluate")
	scored, panics := scoreTopDown(vctx, sc, produced, m-1)
	vsp.Arg("candidates", len(produced)).End()
	for _, e := range panics {
		res.CandidateErrors = appendCapped(res.CandidateErrors, e)
	}
	next = sc.prunedAndCount(scored)
	if len(next) == 0 {
		if r := anytime.FromContext(ctx); r != StopComplete {
			out, err = inc.finish(sc, *res, r)
			return nil, budgetHit, true, out, err
		}
		return nil, budgetHit, true, *res, errors.Join(append([]error{fmt.Errorf("top-down: all candidates invalid at level %d", m)}, res.CandidateErrors...)...)
	}
	if inc.observe(next[0]) {
		sc.prog.incumbent(fmt.Sprintf("level %d (%s)", m, a.Levels[m].Name), m, inc.score, inc.energyPJ, inc.cycles)
	}
	return next, budgetHit, false, Result{}, nil
}

// expandTopLevel enumerates (ordering, spatial, temporal-factor) choices for
// level m of partial mapping base. The returned visit count includes
// capacity-rejected combinations (they were examined); prunedUnroll counts
// the unrolling-enumeration rejects. Enumeration stops when the remaining
// visit budget is exhausted or the context is canceled (polled every 1024
// visits — the recursion itself is the hot loop here).
func expandTopLevel(ctx context.Context, base *mapping.Mapping, m int, orderings []order.Ordering, opt Options, budget int) ([]*mapping.Mapping, int, int) {
	w := base.Workload
	a := base.Arch
	visited := 0
	prunedUnroll := 0
	var out []*mapping.Mapping
	poll := &anytime.Poller{Ctx: ctx, Every: 1024}

	dims := w.Order
	for oi := range orderings {
		if poll.Stop() != StopComplete {
			break
		}
		o := &orderings[oi]
		m1 := base.Clone()
		m1.Levels[m].Order = o.Complete(w)

		spatials := []*mapping.Mapping{m1}
		if a.Levels[m].Fanout > 1 {
			spatials = topDownUnroll(m1, m, opt, &prunedUnroll)
		}
		for _, m2 := range spatials {
			// Budget for T(m): the remainder above level m, net of the
			// spatial factors just assigned at m.
			quota := remainingExtents(m2, m)
			for d := range quota {
				if s := m2.Levels[m].S(d); s > 1 {
					quota[d] = ceilDiv(quota[d], s)
				}
			}
			// Descending ladders: large top-level factors leave small
			// remainders below, so the feasible region (remainder fits
			// the next level) is reached before any visit budget expires.
			ladders := make([][]int, len(dims))
			for i, d := range dims {
				l := factor.Ladder(quota[d], 4)
				rev := make([]int, len(l))
				for j, v := range l {
					rev[len(l)-1-j] = v
				}
				ladders[i] = rev
			}
			cur := make(map[tensor.Dim]int, len(dims))
			var rec func(i int)
			rec = func(i int) {
				if visited >= budget || poll.Stop() != StopComplete {
					return
				}
				if i == len(dims) {
					visited++
					// Full capacity check before paying for a clone.
					if !partialRemainderCanFit(m2, m, cur, nil, quota) {
						return
					}
					cand := m2.Clone()
					for d, f := range cur {
						if f > 1 {
							cand.Levels[m].Temporal[d] = f
						}
					}
					out = append(out, cand)
					return
				}
				d := dims[i]
				for _, f := range ladders[i] {
					cur[d] = f
					// Sound subtree pruning: with unassigned dims at their
					// largest factors (smallest remainders), if the partial
					// remainder already overflows level m-1, no completion
					// can fit.
					if !partialRemainderCanFit(m2, m, cur, dims[i+1:], quota) {
						visited++
						continue
					}
					rec(i + 1)
				}
				delete(cur, d)
			}
			rec(0)
		}
	}
	return out, visited, prunedUnroll
}

// topDownUnroll enumerates spatial unrollings at level m without principle
// restrictions (top-down has no lower-level ordering fixed yet to derive OP
// from; this unguided enumeration is part of why its space is larger).
// Enumeration-tree rejects are added to *pruned.
func topDownUnroll(m1 *mapping.Mapping, m int, opt Options, pruned *int) []*mapping.Mapping {
	a := m1.Arch
	cands, ustats := unroll.Enumerate(unroll.Space{
		ReductionDims:         m1.Workload.ReductionDims(),
		Quota:                 remainingExtents(m1, m),
		Fanout:                a.Levels[m].Fanout,
		MinUtilization:        opt.MinUtilization,
		AllowSpatialReduction: a.Levels[m].AllowSpatialReduction,
		MaxCandidates:         opt.UnrollsPerStep * 2,
	})
	*pruned += ustats.NodesVisited - ustats.Survivors
	var out []*mapping.Mapping
	for _, u := range cands {
		mu := m1.Clone()
		for d, f := range u {
			if f > 1 {
				mu.Levels[m].Spatial[d] = f
			}
		}
		out = append(out, mu)
	}
	if len(out) == 0 {
		out = append(out, m1.Clone())
	}
	return out
}

// remainingExtents returns, per dimension, the extent forced at level lvl
// when all factors above lvl are assigned: bound / (product above).
func remainingExtents(m *mapping.Mapping, lvl int) map[tensor.Dim]int {
	ext := make(map[tensor.Dim]int, len(m.Workload.Dims))
	for d, bound := range m.Workload.Dims {
		above := 1
		for l := lvl + 1; l < len(m.Levels); l++ {
			above *= m.Levels[l].T(d) * m.Levels[l].S(d)
		}
		ext[d] = ceilDiv(bound, above)
	}
	return ext
}

// partialRemainderCanFit is the subtree-pruning necessity check during
// factor enumeration: assigned dims use their chosen factors; unassigned
// dims optimistically use their full quota (remainder 1). If even this
// minimal remainder overflows level m-1, prune.
func partialRemainderCanFit(m2 *mapping.Mapping, m int, cur map[tensor.Dim]int, rest []tensor.Dim, quota map[tensor.Dim]int) bool {
	lvl := m - 1
	if lvl < 0 {
		return true
	}
	ext := remainingExtents(m2, lvl)
	for d, f := range cur {
		ext[d] = ceilDiv(ext[d], f)
	}
	for _, d := range rest {
		ext[d] = ceilDiv(ext[d], quota[d])
	}
	al := &m2.Arch.Levels[lvl]
	for bi := range al.Buffers {
		buf := &al.Buffers[bi]
		if buf.Bytes == 0 {
			continue
		}
		var usedBits int64
		for _, t := range m2.Workload.Tensors {
			if buf.Holds(t.Name) {
				usedBits += int64(t.Footprint(ext)) * int64(m2.Arch.Bits(t.Name))
			}
		}
		if usedBits > buf.Bytes*8 {
			return false
		}
	}
	return true
}

// scoreTopDown scores top-down partial mappings by completing them downward:
// the remaining extents are placed as the level-lvl tile (lower levels stay
// 1), then the full model runs. For lvl == 0 the mapping is complete as-is.
func scoreTopDown(ctx context.Context, sc *search, ms []*mapping.Mapping, lvl int) ([]state, []error) {
	completed := make([]*mapping.Mapping, len(ms))
	for i, m := range ms {
		c := m.Clone()
		if lvl >= 0 {
			ext := remainingExtents(c, lvl)
			for d, e := range ext {
				if e > 1 {
					c.Levels[lvl].Temporal[d] = e
				}
			}
		}
		completed[i] = c
	}
	states, panics := sc.evalAll(ctx, completed)
	// Re-point the states at the *partial* mappings so the next step
	// extends them (evalAll sorted by the completed cost; map back). The
	// completed form stays in state.completed for incumbent tracking.
	byPtr := map[*mapping.Mapping]*mapping.Mapping{}
	for i := range completed {
		byPtr[completed[i]] = ms[i]
	}
	for i := range states {
		if lvl >= 1 { // not final step: keep the partial form
			states[i].m = byPtr[states[i].m]
		}
	}
	return states, panics
}

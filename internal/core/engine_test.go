package core

import (
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/mapping"
)

// countingProbe marks a model uncacheable (any non-nil Probe does) while
// counting evaluations so the test can confirm it really ran.
type countingProbe struct{ n int }

func (p *countingProbe) BeforeEvaluate(m *mapping.Mapping) { p.n++ }

// TestEngineCompileOnce is the compile/execute split's core contract: two
// Optimize calls for the same problem compile it once, and the warm call's
// result — mapping, score, candidate flow, space size — is indistinguishable
// from the cold call's. Only the evaluation-memo hit/miss split may differ
// (the warm call inherits a populated memo; that is the point).
func TestEngineCompileOnce(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)
	e := NewEngine(0)

	cold, err := e.Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}

	s := e.Stats()
	if s.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", s.Compiles)
	}
	if s.Hits != 1 {
		t.Errorf("Hits = %d, want 1", s.Hits)
	}
	if s.Entries != 1 {
		t.Errorf("Entries = %d, want 1", s.Entries)
	}

	if cold.Mapping.String() != warm.Mapping.String() {
		t.Errorf("warm mapping differs:\ncold:\n%s\nwarm:\n%s", cold.Mapping, warm.Mapping)
	}
	if cold.Report.EDP != warm.Report.EDP {
		t.Errorf("warm EDP %g != cold EDP %g", warm.Report.EDP, cold.Report.EDP)
	}
	if cold.SpaceSize != warm.SpaceSize {
		t.Errorf("warm SpaceSize %d != cold %d", warm.SpaceSize, cold.SpaceSize)
	}
	if cold.OrderingsConsidered != warm.OrderingsConsidered {
		t.Errorf("warm OrderingsConsidered %d != cold %d", warm.OrderingsConsidered, cold.OrderingsConsidered)
	}
	cs, ws := cold.Stats, warm.Stats
	cs.EvalCacheHits, cs.EvalCacheMisses = 0, 0
	ws.EvalCacheHits, ws.EvalCacheMisses = 0, 0
	if cs != ws {
		t.Errorf("warm flow counters differ:\ncold: %+v\nwarm: %+v", cs, ws)
	}
	if warm.Stats.EvalCacheHits <= cold.Stats.EvalCacheHits {
		t.Errorf("warm run should hit the shared eval memo more: warm %d hits <= cold %d",
			warm.Stats.EvalCacheHits, cold.Stats.EvalCacheHits)
	}
}

// TestEngineResultMatchesPackagePath pins the Engine to the per-call
// package path: same problem, same options, same answer.
func TestEngineResultMatchesPackagePath(t *testing.T) {
	w := conv1D(t, 8, 8, 56, 3)
	a := arch.Tiny(256)

	direct, err := Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaEngine, err := NewEngine(0).Optimize(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Report.EDP != viaEngine.Report.EDP {
		t.Errorf("engine EDP %g != package-path EDP %g", viaEngine.Report.EDP, direct.Report.EDP)
	}
	if direct.Mapping.String() != viaEngine.Mapping.String() {
		t.Errorf("engine mapping differs from package-path mapping")
	}
}

// TestEngineEviction bounds the cache: with 8 shards and maxEntries 8, each
// shard holds one problem, so churning through many distinct shapes must
// evict and the entry count must stay within the bound.
func TestEngineEviction(t *testing.T) {
	e := NewEngine(8)
	for i := 0; i < 24; i++ {
		w := conv1D(t, 2, 2, 4+2*i, 3)
		if _, err := e.Optimize(w, arch.Tiny(64), Options{}); err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
	}
	s := e.Stats()
	if s.Entries > 8 {
		t.Errorf("Entries = %d, want <= 8", s.Entries)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions after churning 24 shapes through an 8-entry cache")
	}
	if s.Compiles != 24 {
		t.Errorf("Compiles = %d, want 24 (all shapes distinct)", s.Compiles)
	}
}

// TestEngineProbeBypassesCache: a fault-injection probe is opaque state the
// content key cannot capture, so probe-carrying models compile fresh per
// call and never populate the cache.
func TestEngineProbeBypassesCache(t *testing.T) {
	w := conv1D(t, 4, 4, 8, 3)
	a := arch.Tiny(64)
	e := NewEngine(0)
	probe := &countingProbe{}
	opt := Options{Model: cost.Model{SlidingReuse: true, Probe: probe}}

	for i := 0; i < 2; i++ {
		if _, err := e.Optimize(w, a, opt); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Compiles != 2 {
		t.Errorf("Compiles = %d, want 2 (probe models are uncacheable)", s.Compiles)
	}
	if s.Hits != 0 || s.Entries != 0 {
		t.Errorf("probe model must not touch the cache: hits %d, entries %d", s.Hits, s.Entries)
	}
	if probe.n == 0 {
		t.Error("probe never fired")
	}
}

// TestEngineConcurrentSameProblem races many goroutines at one cold problem:
// the singleflight gate must compile exactly once and everyone must get the
// same answer.
func TestEngineConcurrentSameProblem(t *testing.T) {
	w := conv1D(t, 4, 4, 8, 3)
	a := arch.Tiny(64)
	e := NewEngine(0)

	const n = 8
	edps := make([]float64, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res, err := e.Optimize(w, a, Options{})
			edps[i], errs[i] = res.Report.EDP, err
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if edps[i] != edps[0] {
			t.Errorf("goroutine %d EDP %g != %g", i, edps[i], edps[0])
		}
	}
	if s := e.Stats(); s.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (singleflight)", s.Compiles)
	}
}

// TestEngineStatsPartitionPerCall: on a shared Engine the per-call Result
// must still satisfy the counter-flow identity independently — counters are
// per-search registries, not Engine-global accumulators.
func TestEngineStatsPartitionPerCall(t *testing.T) {
	e := NewEngine(0)
	a := arch.Tiny(128)
	for i, w := range []*struct{ k, c, p int }{{4, 4, 8}, {8, 8, 28}, {4, 4, 8}} {
		res, err := e.Optimize(conv1D(t, w.k, w.c, w.p, 3), a, Options{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		st := res.Stats
		if got := st.Pruned() + st.Deduped + st.Evaluated + st.Skipped; got != st.Generated {
			t.Errorf("call %d: flow identity broken: pruned+deduped+evaluated+skipped = %d, generated = %d",
				i, got, st.Generated)
		}
		if st.Generated == 0 {
			t.Errorf("call %d: empty stats — counters not attributed to this call", i)
		}
	}
}

// TestDirectionParity: with pruning effectively disabled (exhaustive beam,
// no alpha cut, no polish), the bottom-up and top-down sequencers walk the
// same mapping space from opposite ends and must land on the same best EDP.
// This is the acceptance test for the unified level stepper — if the two
// expansion hooks disagreed about completion or accounting, their optima
// would drift apart.
func TestDirectionParity(t *testing.T) {
	archs := []struct {
		name string
		a    *arch.Arch
	}{
		{"tiny", arch.Tiny(64)},
		{"tiny-spatial", arch.TinySpatial(48, 1<<12, 4)},
	}
	opt := func(d Direction) Options {
		return Options{
			Direction:          d,
			BeamWidth:          maxBeamWidth,
			AlphaSlack:         maxAlphaSlack,
			NoPolish:           true,
			TilesPerStep:       64,
			UnrollsPerStep:     64,
			TopDownVisitBudget: 50_000_000,
		}
	}
	for _, ac := range archs {
		t.Run(ac.name, func(t *testing.T) {
			w := conv1D(t, 4, 4, 8, 3)
			up, err := Optimize(w, ac.a, opt(BottomUp))
			if err != nil {
				t.Fatal(err)
			}
			down, err := Optimize(w, ac.a, opt(TopDown))
			if err != nil {
				t.Fatal(err)
			}
			if !up.Report.Valid || !down.Report.Valid {
				t.Fatalf("invalid result: up %v, down %v", up.Report.Invalid, down.Report.Invalid)
			}
			if up.Report.EDP != down.Report.EDP {
				t.Errorf("direction parity broken: bottom-up EDP %g != top-down EDP %g\nup:\n%s\ndown:\n%s",
					up.Report.EDP, down.Report.EDP, up.Mapping, down.Mapping)
			}
			t.Logf("parity EDP %g (up space %d, down space %d)", up.Report.EDP, up.SpaceSize, down.SpaceSize)
		})
	}
}

// TestEngineInvalidInputs pins the Engine's error path to the per-call
// path's: validation happens before keying, so malformed problems fail the
// same way and never pollute the cache.
func TestEngineInvalidInputs(t *testing.T) {
	e := NewEngine(0)
	w := conv1D(t, 4, 4, 8, 3)
	bad := &arch.Arch{} // no levels
	if _, err := e.Optimize(w, bad, Options{}); err == nil {
		t.Error("expected validation error for empty arch")
	}
	if s := e.Stats(); s.Entries != 0 || s.Compiles != 0 {
		t.Errorf("invalid input must not populate the cache: %+v", s)
	}
}

package core

import (
	"math"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// exhaustiveBest brute-forces a two-level (Tiny) mapping space: every
// combination of per-dimension L1 tile divisors and every DRAM loop
// permutation. This is feasible only for tiny problems, and serves as the
// ground-truth optimum for validating that Sunstone's pruning principles do
// not reject optimal solutions (Section I: "without losing the ability to
// discover optimal solutions").
func exhaustiveBest(t *testing.T, w *tensor.Workload, a *arch.Arch) (float64, int) {
	t.Helper()
	if len(a.Levels) != 2 {
		t.Fatal("exhaustive search supports only 2-level architectures")
	}
	dims := w.Order
	ladders := make([][]int, len(dims))
	for i, d := range dims {
		ladders[i] = factor.Divisors(w.Dims[d])
	}
	perms := permutations(dims)

	best := math.Inf(1)
	count := 0
	tile := make(map[tensor.Dim]int, len(dims))
	var rec func(i int)
	rec = func(i int) {
		if i == len(dims) {
			m := mapping.New(w, a)
			for d, f := range tile {
				m.Levels[0].Temporal[d] = f
				m.Levels[1].Temporal[d] = w.Dims[d] / f
			}
			for _, perm := range perms {
				m.Levels[1].Order = perm
				rep := cost.Evaluate(m)
				count++
				if rep.Valid && rep.EDP < best {
					best = rep.EDP
				}
			}
			return
		}
		for _, f := range ladders[i] {
			tile[dims[i]] = f
			rec(i + 1)
		}
	}
	rec(0)
	return best, count
}

func permutations(dims []tensor.Dim) [][]tensor.Dim {
	if len(dims) <= 1 {
		return [][]tensor.Dim{append([]tensor.Dim(nil), dims...)}
	}
	var out [][]tensor.Dim
	for i := range dims {
		rest := make([]tensor.Dim, 0, len(dims)-1)
		rest = append(rest, dims[:i]...)
		rest = append(rest, dims[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]tensor.Dim{dims[i]}, p...))
		}
	}
	return out
}

// TestSunstoneMatchesExhaustiveOptimum runs Sunstone against the
// ground-truth optimum on several small problems. The pruned search must
// come within 5% of the exhaustive best while examining far fewer points.
func TestSunstoneMatchesExhaustiveOptimum(t *testing.T) {
	cases := []struct {
		name    string
		w       *tensor.Workload
		l1Words int
	}{
		{"conv1d-small", conv1D(t, 4, 4, 8, 3), 48},
		{"conv1d-wide", conv1D(t, 8, 2, 12, 3), 64},
		{"conv1d-deep", conv1D(t, 2, 8, 6, 3), 40},
		{"matmul", tensor.MustNew("mm",
			map[tensor.Dim]int{"M": 8, "N": 8, "K": 8},
			&tensor.Tensor{Name: "A", Axes: []tensor.Axis{tensor.A("M"), tensor.A("K")}},
			&tensor.Tensor{Name: "B", Axes: []tensor.Axis{tensor.A("K"), tensor.A("N")}},
			&tensor.Tensor{Name: "out", Axes: []tensor.Axis{tensor.A("M"), tensor.A("N")}, Output: true},
		), 64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := arch.Tiny(c.l1Words)
			optimum, exhaustiveCount := exhaustiveBest(t, c.w, a)
			if math.IsInf(optimum, 1) {
				t.Skip("no valid mapping exists at this capacity")
			}
			res, err := Optimize(c.w, a, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Report.Valid {
				t.Fatalf("Sunstone returned invalid mapping: %v", res.Report.Invalid)
			}
			gap := res.Report.EDP / optimum
			if gap > 1.05 {
				t.Errorf("Sunstone EDP %.4e is %.2fx the exhaustive optimum %.4e",
					res.Report.EDP, gap, optimum)
			}
			if res.SpaceSize >= exhaustiveCount {
				t.Errorf("pruned search examined %d >= exhaustive %d", res.SpaceSize, exhaustiveCount)
			}
			t.Logf("optimum %.4e, sunstone %.4e (%.3fx), space %d vs %d exhaustive",
				optimum, res.Report.EDP, gap, res.SpaceSize, exhaustiveCount)
		})
	}
}

package core

import (
	"context"
	"crypto/sha256"
	"errors"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/serde"
	"sunstone/internal/tensor"
)

// Problem bundles everything that identifies one optimization problem: the
// workload to map, the architecture to map it onto, and the cost model that
// scores mappings (zero value = cost.Default, exactly like Options.Model).
// It is the canonical input of Solve and Engine.Solve, and the single source
// of the content-addressed cache key an Engine stores compiled artifacts
// under — two Problems with equal serialized content share one compilation
// no matter how many distinct pointers describe them.
type Problem struct {
	Workload *tensor.Workload
	Arch     *arch.Arch
	// Model overrides Options.Model when non-zero; the zero Model defers to
	// the Options (and ultimately to cost.Default).
	Model cost.Model
}

// Validate checks the problem's structural soundness — the same workload and
// arch validation every optimize entry point performs.
func (p Problem) Validate() error {
	if p.Workload == nil {
		return errors.New("problem: nil workload")
	}
	if p.Arch == nil {
		return errors.New("problem: nil arch")
	}
	if err := p.Workload.Validate(); err != nil {
		return err
	}
	return p.Arch.Validate()
}

// model resolves the effective cost model: the Problem's when set, the
// (already defaulted) Options' otherwise.
func (p Problem) model(opt Options) cost.Model {
	if p.Model != (cost.Model{}) {
		return p.Model
	}
	return opt.Model
}

// Key content-addresses the problem via its canonical JSON serialization
// (map keys sort deterministically under encoding/json) — the cache identity
// an Engine uses. ok is false for problems outside the cacheable domain: a
// model carrying a fault-injection Probe is opaque state the key cannot
// capture (and probe semantics — "fires on every evaluation" — forbid
// serving memoized results anyway), and inputs that fail to serialize
// cannot be content-addressed at all.
func (p Problem) Key() (key string, ok bool) {
	if p.Model.Probe != nil {
		return "", false
	}
	wj, err := serde.EncodeWorkload(p.Workload)
	if err != nil {
		return "", false
	}
	aj, err := serde.EncodeArch(p.Arch)
	if err != nil {
		return "", false
	}
	h := sha256.New()
	h.Write(wj)
	h.Write([]byte{0})
	h.Write(aj)
	if p.Model.SlidingReuse {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{2})
	}
	// Residency changes the flow structure, so resident problems must never
	// share a compiled entry with the DRAM-backed ones. Pins hash in
	// canonical order; levels fit a byte for any realistic hierarchy.
	for _, pin := range p.Model.Resident.CanonicalPins() {
		h.Write([]byte{3, byte(pin.Level)})
		h.Write([]byte(pin.Tensor))
		h.Write([]byte{0})
	}
	return string(h.Sum(nil)), true
}

// Compile builds the problem's immutable artifact bundle under the effective
// model (the Problem's when set, cost.Default otherwise).
func (p Problem) Compile() (*Compiled, error) {
	return Compile(p.Workload, p.Arch, p.Model)
}

// Solve is SolveContext with a background context.
func Solve(p Problem, opt Options) (Result, error) {
	return SolveContext(context.Background(), p, opt)
}

// SolveContext searches for the best mapping of the problem under ctx — the
// canonical entry point every Optimize wrapper delegates to. The search is
// an anytime algorithm: on cancellation or deadline it returns the best
// completed mapping seen so far with Result.Stopped set.
func SolveContext(ctx context.Context, p Problem, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()
	opt.Model = p.model(opt)
	comp, err := Compile(p.Workload, p.Arch, opt.Model)
	if err != nil {
		return Result{}, err
	}
	return optimizeCompiled(ctx, comp, opt)
}

// Solve runs SolveContext over the Engine's compiled-artifact cache: the
// canonical Engine entry point. Results are identical to a cold SolveContext
// call — the search replays the compiled enumeration into its own counters
// and spans — only faster, because the per-problem precomputation and the
// evaluation memo carry over across calls with the same Problem.Key.
func (e *Engine) Solve(ctx context.Context, p Problem, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()
	opt.Model = p.model(opt)
	p.Model = opt.Model
	comp, err := e.compiled(p)
	if err != nil {
		return Result{}, err
	}
	return optimizeCompiled(ctx, comp, opt)
}

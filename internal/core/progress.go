package core

import (
	"fmt"
	"math"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/faults"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
)

// progressMinInterval rate-bounds incumbent-improved events. Phase
// boundaries are never limited — there are only a handful per search.
const progressMinInterval = 50 * time.Millisecond

// progressEmitter delivers Options.Progress callbacks. All methods are
// nil-receiver safe (a search without a Progress callback carries a nil
// emitter), and all emission happens synchronously on the goroutine driving
// the search, so no event can be delivered after OptimizeContext returns.
//
// A panicking callback is contained exactly like a poisoned candidate: the
// panic becomes an *anytime.PanicError (surfaced via takeErr into
// Result.CandidateErrors), the emitter disables itself, and the search runs
// on without progress reporting.
type progressEmitter struct {
	fn       obs.ProgressFunc
	ctr      *obs.SearchCounters
	start    time.Time
	lim      obs.Limiter
	disabled bool
	err      error
	// Last incumbent the search reported; phase events carry these numbers
	// so a listener always sees the current best alongside the phase.
	score    float64
	energyPJ float64
	cycles   float64
}

func newProgressEmitter(fn obs.ProgressFunc, ctr *obs.SearchCounters) *progressEmitter {
	if fn == nil {
		return nil
	}
	return &progressEmitter{
		fn:    fn,
		ctr:   ctr,
		start: time.Now(),
		lim:   obs.Limiter{MinInterval: progressMinInterval},
		score: math.Inf(1),
	}
}

// emit invokes the callback with panic containment.
func (p *progressEmitter) emit(ev obs.ProgressEvent) {
	defer func() {
		if e := anytime.PanicErrorFrom(recover(), "deliver progress event", func() string {
			return fmt.Sprintf("event %s phase %q", ev.Kind, ev.Phase)
		}); e != nil {
			p.disabled = true
			p.err = e
		}
	}()
	// Chaos hook: an injected delivery fault panics and is contained
	// exactly like a panicking user callback.
	faults.MustFire(faults.SiteProgress)
	p.fn(ev)
}

func (p *progressEmitter) event(kind obs.ProgressKind, name string, level int) obs.ProgressEvent {
	return obs.ProgressEvent{
		Kind:      kind,
		Phase:     name,
		Level:     level,
		Score:     p.score,
		EnergyPJ:  p.energyPJ,
		Cycles:    p.cycles,
		Generated: p.ctr.Generated.Load(),
		Evaluated: p.ctr.Evaluated.Load(),
		Elapsed:   time.Since(p.start),
	}
}

// phase emits a phase-started / phase-finished boundary (never rate-limited).
func (p *progressEmitter) phase(kind obs.ProgressKind, name string, level int) {
	if p == nil || p.disabled {
		return
	}
	p.emit(p.event(kind, name, level))
}

// phasef is phase with deferred formatting: the name is rendered only when a
// callback is installed and live.
func (p *progressEmitter) phasef(kind obs.ProgressKind, level int, format string, args ...any) {
	if p == nil || p.disabled {
		return
	}
	p.phase(kind, fmt.Sprintf(format, args...), level)
}

// incumbent reports a (possibly) improved best-so-far. Only genuine
// improvements emit, at a bounded rate — except the first incumbent, which
// always fires. m is the improved mapping itself; it rides on the event so
// listeners (e.g. the server's checkpoint capture) can serialize the
// best-so-far without a side channel.
func (p *progressEmitter) incumbent(phase string, level int, m *mapping.Mapping, score, energyPJ, cycles float64) {
	if p == nil || p.disabled || score >= p.score {
		return
	}
	first := math.IsInf(p.score, 1)
	p.score, p.energyPJ, p.cycles = score, energyPJ, cycles
	if !first && !p.lim.Allow(time.Now()) {
		return
	}
	ev := p.event(obs.IncumbentImproved, phase, level)
	ev.Incumbent = m
	p.emit(ev)
}

// takeErr returns the contained callback panic, if any, exactly once.
func (p *progressEmitter) takeErr() error {
	if p == nil {
		return nil
	}
	err := p.err
	p.err = nil
	return err
}

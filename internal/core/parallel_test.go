package core

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/tensor"
)

// TestParallelParity pins the intra-search parallelism contract: a search's
// outcome — mapping, full Report, SpaceSize, and the complete counter
// partition — is bit-identical at every thread count. Only the evaluator
// memo-cache hit/miss *split* is exempt (two workers racing the same key can
// both miss; the sum — one lookup per evaluation — is pinned instead).
//
// The tiny subtests double as the `make parallel-smoke` target (run under
// -race at -cpu 1,4); the preset subtests cover the three paper machines in
// both directions.
func TestParallelParity(t *testing.T) {
	combos := []struct {
		name string
		w    *tensor.Workload
		a    *arch.Arch
	}{
		{"tiny", conv1D(t, 8, 8, 56, 3), arch.Tiny(256)},
		{"conventional", conv2D(t, 1, 16, 16, 14, 14, 3, 3), arch.Conventional()},
		{"simba", conv2D(t, 1, 16, 16, 14, 14, 3, 3), arch.Simba()},
		{"diannao", conv2D(t, 1, 16, 16, 14, 14, 3, 3), arch.DianNao()},
	}
	for _, cb := range combos {
		for _, dir := range []Direction{BottomUp, TopDown} {
			t.Run(fmt.Sprintf("%s/%s", cb.name, dir), func(t *testing.T) {
				serial, err := Optimize(cb.w, cb.a, Options{Direction: dir, Threads: 1})
				if err != nil {
					t.Fatalf("threads=1: %v", err)
				}
				parallel, err := Optimize(cb.w, cb.a, Options{Direction: dir, Threads: 8})
				if err != nil {
					t.Fatalf("threads=8: %v", err)
				}
				assertParity(t, serial, parallel)
			})
		}
	}
}

// assertParity fails unless the two results are bit-identical up to the
// documented exemptions (Elapsed; the eval-cache hit/miss split).
func assertParity(t *testing.T, serial, parallel Result) {
	t.Helper()
	if len(serial.CandidateErrors) != 0 || len(parallel.CandidateErrors) != 0 {
		t.Fatalf("unexpected candidate errors: serial %v, parallel %v", serial.CandidateErrors, parallel.CandidateErrors)
	}
	if got, want := parallel.Mapping.String(), serial.Mapping.String(); got != want {
		t.Errorf("mapping diverged:\nthreads=1:\n%s\nthreads=8:\n%s", want, got)
	}
	if !reflect.DeepEqual(serial.Report, parallel.Report) {
		t.Errorf("report diverged:\nthreads=1: %+v\nthreads=8: %+v", serial.Report, parallel.Report)
	}
	if serial.SpaceSize != parallel.SpaceSize {
		t.Errorf("SpaceSize: threads=1 %d, threads=8 %d", serial.SpaceSize, parallel.SpaceSize)
	}
	if serial.OrderingsConsidered != parallel.OrderingsConsidered {
		t.Errorf("OrderingsConsidered: threads=1 %d, threads=8 %d", serial.OrderingsConsidered, parallel.OrderingsConsidered)
	}
	if serial.Stopped != parallel.Stopped {
		t.Errorf("Stopped: threads=1 %v, threads=8 %v", serial.Stopped, parallel.Stopped)
	}
	ss, ps := serial.Stats, parallel.Stats
	if sum, psum := ss.EvalCacheHits+ss.EvalCacheMisses, ps.EvalCacheHits+ps.EvalCacheMisses; sum != psum {
		t.Errorf("eval-cache lookups: threads=1 %d, threads=8 %d", sum, psum)
	}
	ss.EvalCacheHits, ss.EvalCacheMisses = 0, 0
	ps.EvalCacheHits, ps.EvalCacheMisses = 0, 0
	if ss != ps {
		t.Errorf("counter partition diverged:\nthreads=1: %+v\nthreads=8: %+v", ss, ps)
	}
	if got := ps.Pruned() + ps.Deduped + ps.Evaluated + ps.Skipped; got != ps.Generated {
		t.Errorf("flow identity broken at threads=8: generated %d != pruned+deduped+evaluated+skipped %d", ps.Generated, got)
	}
}

// TestExpandCacheFirstWriteWins pins the expansion memo's concurrency
// contract: racing writers of one key may each build their own (identical)
// entry, but exactly one is retained — the first to take the lock — and the
// candidate budget is charged exactly once. Everyone reads the same pointer
// afterwards.
func TestExpandCacheFirstWriteWins(t *testing.T) {
	c := expandCache{m: make(map[string]*expandEntry)}
	const writers = 16
	entries := make([]*expandEntry, writers)
	for i := range entries {
		entries[i] = &expandEntry{cands: make([]*mapping.Mapping, 3), visited: 7}
	}
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < writers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			c.put("key", entries[i])
		}(i)
	}
	start.Done()
	done.Wait()

	got := c.get("key")
	if got == nil {
		t.Fatal("no entry retained")
	}
	won := -1
	for i, e := range entries {
		if got == e {
			won = i
			break
		}
	}
	if won < 0 {
		t.Fatal("retained entry is not one of the written entries")
	}
	if again := c.get("key"); again != got {
		t.Fatalf("get is unstable: %p then %p", got, again)
	}
	if c.stored != 3 {
		t.Fatalf("stored charged %d times the candidate count, want once (3)", c.stored)
	}
	// Later writers must not displace the winner.
	c.put("key", &expandEntry{cands: make([]*mapping.Mapping, 1)})
	if c.get("key") != got || c.stored != 3 {
		t.Fatal("a later write displaced the first")
	}
}

// TestRunParallelPanicPropagates pins the pool's panic contract: a panic in
// a unit re-raises on the caller goroutine (the chaos-injection sites and
// the resilient retry loop rely on it), at every pool size.
func TestRunParallelPanicPropagates(t *testing.T) {
	for _, threads := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("threads=%d: recovered %v, want boom", threads, r)
				}
			}()
			runParallel(threads, 8, func(_, unit int) {
				if unit == 3 {
					panic("boom")
				}
			})
			t.Errorf("threads=%d: runParallel returned instead of panicking", threads)
		}()
	}
}

// TestRunParallelCoversAllUnits checks every unit runs exactly once and
// worker ids stay within the pool bound (they index per-worker scratch).
func TestRunParallelCoversAllUnits(t *testing.T) {
	for _, threads := range []int{1, 3, 16} {
		const n = 100
		var mu sync.Mutex
		ran := make([]int, n)
		runParallel(threads, n, func(wk, unit int) {
			if wk < 0 || wk >= threads {
				t.Errorf("worker id %d out of range [0,%d)", wk, threads)
			}
			mu.Lock()
			ran[unit]++
			mu.Unlock()
		})
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("threads=%d: unit %d ran %d times", threads, i, c)
			}
		}
	}
}

// TestPartitionBudget pins the deterministic budget pre-partition: shares
// sum to the total, differ by at most one, depend only on (total, n), and an
// unbounded budget stays unbounded.
func TestPartitionBudget(t *testing.T) {
	for _, tc := range []struct{ total, n int }{{10, 3}, {3, 10}, {1, 4}, {1000, 7}} {
		shares := partitionBudget(tc.total, tc.n)
		if len(shares) != tc.n {
			t.Fatalf("partitionBudget(%d,%d): %d shares", tc.total, tc.n, len(shares))
		}
		sum, min, max := 0, math.MaxInt, 0
		for _, s := range shares {
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Errorf("partitionBudget(%d,%d): uneven shares %v", tc.total, tc.n, shares)
		}
		if want := tc.total; tc.total >= tc.n && sum != want {
			t.Errorf("partitionBudget(%d,%d): sum %d, want %d", tc.total, tc.n, sum, want)
		}
		if min < 1 {
			t.Errorf("partitionBudget(%d,%d): share below 1: %v", tc.total, tc.n, shares)
		}
	}
	for _, s := range partitionBudget(math.MaxInt, 5) {
		if s != math.MaxInt {
			t.Fatalf("unbounded budget partitioned to %d", s)
		}
	}
}

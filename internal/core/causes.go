package core

import (
	"context"
	"errors"
	"fmt"

	"sunstone/internal/anytime"
	"sunstone/internal/faults"
)

// This file is the structural failure-cause taxonomy shared by the network
// scheduler (per-layer LayerError) and the scheduler service (per-job
// failure records): one classifier, keyed on error types via errors.As/Is —
// never on message text — so every consumer agrees on why a search died.

// FailureCause classifies why a search failed (LayerError.Cause, the
// service's per-job cause field).
type FailureCause string

const (
	// CauseInjected: a deterministic chaos fault (internal/faults) was the
	// root cause, directly or inside a contained panic.
	CauseInjected FailureCause = "injected"
	// CausePanic: a contained panic (poisoned cost model, broken callback)
	// not attributable to an injected fault.
	CausePanic FailureCause = "panic"
	// CauseDeadline: a wall-clock deadline expired before any valid mapping
	// was completed.
	CauseDeadline FailureCause = "deadline"
	// CauseSiblingCancel: the layer was canceled by the fail-fast policy
	// after a sibling layer failed first.
	CauseSiblingCancel FailureCause = "sibling-cancel"
	// CauseSearch: an ordinary search failure (invalid inputs, no feasible
	// candidates, exhausted resilient attempts).
	CauseSearch FailureCause = "search"
	// CauseWatchdog: the scheduler service's per-job watchdog canceled a
	// search that stopped reporting progress. Only the service assigns it —
	// the classifier below cannot distinguish a watchdog cancel from any
	// other cancellation, so the watchdog's owner records the cause itself.
	CauseWatchdog FailureCause = "watchdog"
)

// LayerError is a per-layer scheduling failure with its classified cause.
// Error renders as "<layer>: [<cause>] <err>" so logs keep the layer prefix
// older tooling greps for; Unwrap exposes the underlying failure for
// errors.Is/As.
type LayerError struct {
	Layer string
	Cause FailureCause
	Err   error
}

func (e *LayerError) Error() string { return fmt.Sprintf("%s: [%s] %v", e.Layer, e.Cause, e.Err) }

// Unwrap exposes the underlying search failure.
func (e *LayerError) Unwrap() error { return e.Err }

// CauseOf extracts the classified failure cause from an error chain:
// LayerError's recorded cause when present, otherwise a direct
// classification of err itself. A nil error has no cause ("").
func CauseOf(err error) FailureCause {
	if err == nil {
		return ""
	}
	var le *LayerError
	if errors.As(err, &le) {
		return le.Cause
	}
	return ClassifyFailure(err, false)
}

// ClassifyFailure maps a search failure to its cause. Injected chaos faults
// win over the panic that may carry them (an injected panic-kind fault
// surfaces as a PanicError whose value is the *faults.InjectedError);
// siblingCanceled marks failures observed after a fail-fast policy canceled
// the search's context.
func ClassifyFailure(err error, siblingCanceled bool) FailureCause {
	var inj *faults.InjectedError
	if errors.As(err, &inj) {
		return CauseInjected
	}
	var pe *anytime.PanicError
	if errors.As(err, &pe) {
		if v, ok := pe.Value.(error); ok && errors.As(v, &inj) {
			return CauseInjected
		}
		return CausePanic
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return CauseDeadline
	}
	if siblingCanceled {
		return CauseSiblingCancel
	}
	return CauseSearch
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sunstone/internal/analytic"
	"sunstone/internal/anytime"
	"sunstone/internal/arch"
	"sunstone/internal/faults"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/order"
	"sunstone/internal/tensor"
)

// This file is the direction-agnostic level-sequencing engine. Bottom-up and
// top-down used to carry near-duplicate ~400-line drivers; what actually
// differs between them is captured by a sequencer — which levels are stepped
// in which order, how a step's candidates are expanded, how a partial
// mapping is completed for scoring, and whether a per-step visit budget and
// the final polish apply. Everything else — beam expansion, dedupe, the
// evaluation fan-out, alpha-beta/beam pruning, incumbent tracking, counter
// flow, span/progress emission, anytime early returns — runs once, here.

// sequencer parameterizes one search direction for the shared stepper.
type sequencer struct {
	// levels lists the per-level steps in execution order: 0..top-1 for
	// bottom-up, top..1 for top-down.
	levels []int
	// stepBudget caps the candidates one step may visit (math.MaxInt when
	// the direction is unbudgeted). Top-down splits its visit budget evenly
	// across steps so the enormous DRAM-level branching cannot starve the
	// lower steps; within a step the budget is pre-partitioned across the
	// (state, ordering) work units (see expandStep).
	stepBudget int
	// budgeted reports whether stepBudget binds (top-down). It decides
	// whether the per-state budget share is part of the expansion-memo key
	// and whether unit truncation is tracked.
	budgeted bool
	// polish enables the final refinement (bottom-up only: its last step's
	// winner is a fully-assigned mapping worth perturbing).
	polish bool
	// stateEffort charges per-state enumeration overhead not tied to any
	// single ordering — the non-default strategies' unguided first stages.
	// Nil when the direction has none.
	stateEffort func(ctx context.Context, base *mapping.Mapping, lvl int) int
	// expandUnit generates the candidate extensions of one (state, ordering)
	// work unit at a level, under the unit's pre-partitioned visit budget.
	// Unit functions must be pure with respect to the search: they may only
	// read shared state (the base mapping, the compiled artifacts — whose
	// caches are internally synchronized) and accumulate their reject
	// tallies locally in the returned unitOut; the driver flushes them once
	// per state, so the hot enumeration loops never touch an atomic.
	expandUnit func(ctx context.Context, base *mapping.Mapping, lvl int, o *order.Ordering, budget int) unitOut
	// completeAt returns the completion used to score level lvl's partial
	// candidates (bottom-up: greedy fill upward; top-down: remaining extents
	// into the level below).
	completeAt func(lvl int) completeFn
}

// unitOut is one (state, ordering) expansion unit's result: the produced
// candidates in deterministic enumeration order, the visit count charged
// against the unit's budget share, the locally-accumulated enumeration-reject
// tallies, and whether the unit's budget expired before enumeration finished.
type unitOut struct {
	cands           []*mapping.Mapping
	visited         int
	prunedTiling    int
	prunedUnrolling int
	truncated       bool
}

// sequencer builds the direction's parameterization from the run's options.
func (sc *search) sequencer() sequencer {
	top := len(sc.comp.a.Levels) - 1
	if sc.opt.Direction == TopDown {
		levels := make([]int, 0, top)
		for m := top; m >= 1; m-- {
			levels = append(levels, m)
		}
		// Every step gets its own share of the visit budget: the first
		// (DRAM) step's enormous branching would otherwise starve the lower
		// steps.
		stepBudget := sc.opt.TopDownVisitBudget / top
		if stepBudget < 1 {
			stepBudget = 1
		}
		return sequencer{
			levels:     levels,
			stepBudget: stepBudget,
			budgeted:   true,
			expandUnit: sc.expandTopUnit,
			completeAt: func(lvl int) completeFn { return sc.completeDownAt(lvl - 1) },
		}
	}
	levels := make([]int, 0, top)
	for l := 0; l < top; l++ {
		levels = append(levels, l)
	}
	return sequencer{
		levels:      levels,
		stepBudget:  math.MaxInt,
		polish:      true,
		stateEffort: sc.strategyEffort,
		expandUnit:  sc.expandBottomUnit,
		completeAt:  func(int) completeFn { return sc.completeUp },
	}
}

// incumbent is the anytime best-so-far: the best *completed* (evaluable)
// mapping observed at any point of the search, maintained so an early stop
// can return real work instead of nothing. Only the fast path's scalars are
// tracked; the full Report is materialized once, at finish.
type incumbent struct {
	m        *mapping.Mapping
	score    float64
	energyPJ float64
	cycles   float64
}

// observe folds a scored, completed state into the incumbent, reporting
// whether it improved the best-so-far.
func (inc *incumbent) observe(s state) bool {
	if s.completed != nil && s.valid && (inc.m == nil || s.score < inc.score) {
		inc.m, inc.score, inc.energyPJ, inc.cycles = s.completed, s.score, s.energyPJ, s.cycles
		return true
	}
	return false
}

// finish stamps res with the incumbent and the stop reason. When the search
// was stopped before any valid mapping completed, it reports an error — the
// only case where an anytime return has nothing to give.
func (inc *incumbent) finish(sc *search, res Result, reason StopReason) (Result, error) {
	res.Stopped = reason
	if inc.m == nil {
		if c := reason.Err(); c != nil {
			return res, fmt.Errorf("search stopped (%s) before any valid mapping was completed: %w", reason, c)
		}
		return res, fmt.Errorf("search stopped (%s) before any valid mapping was completed", reason)
	}
	res.Mapping = inc.m
	res.Report = sc.finalReport(inc.m, inc.energyPJ, inc.cycles)
	return res, nil
}

// seedIncumbent scores the trivial completion (everything at the top level)
// so even an immediate cancel returns a valid mapping.
func seedIncumbent(sc *search, inc *incumbent, res *Result, seed *mapping.Mapping) {
	trivial := sc.completeUp(seed)
	if trivial == nil {
		return
	}
	sc.ctr.Generated.Inc()
	sc.ctr.Evaluated.Inc()
	edp, energyPJ, cycles, valid, err := sc.safeEvalFast(sc.evs[0], trivial)
	if err != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, err)
		return
	}
	if inc.observe(state{
		completed: trivial,
		score:     sc.opt.Objective.scoreScalars(edp, energyPJ, cycles, valid),
		energyPJ:  energyPJ,
		cycles:    cycles,
		valid:     valid,
	}) {
		sc.best.publish(inc.score)
		sc.prog.incumbent("seed", -1, inc.m, inc.score, inc.energyPJ, inc.cycles)
	}
}

// analytical resolves the run's analytical-layer knobs nil-safely: internal
// callers that bypass withDefaults (unit tests driving the stepper directly)
// read a disabled layer rather than dereferencing nil.
func (sc *search) analytical() AnalyticalOptions {
	if sc.opt.Analytical == nil {
		return AnalyticalOptions{}
	}
	return *sc.opt.Analytical
}

// seedAnalytic computes the closed-form analytic seed mapping (GOMA-style:
// reuse-maximizing ordering, greedy spatial fill, capacity-balanced temporal
// split — see internal/analytic), evaluates it, and installs it as the
// alpha-beta incumbent before enumeration starts. It runs on the driver
// goroutine before any worker exists, so the published incumbent is part of
// the search's deterministic prologue at every thread count. A seed that
// fails to build or evaluates invalid degrades to the unseeded search — the
// failure is recorded as a candidate error, never raised.
func (sc *search) seedAnalytic(inc *incumbent, res *Result) {
	seed, err := analytic.Seed(sc.comp.w, sc.comp.a, sc.comp.orderings)
	if err != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, err)
		return
	}
	sc.ctr.Generated.Inc()
	sc.ctr.Evaluated.Inc()
	edp, energyPJ, cycles, valid, err := sc.safeEvalFast(sc.evs[0], seed)
	if err != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, err)
		return
	}
	if valid {
		res.SeedEDP = edp
	}
	if inc.observe(state{
		completed: seed,
		score:     sc.opt.Objective.scoreScalars(edp, energyPJ, cycles, valid),
		energyPJ:  energyPJ,
		cycles:    cycles,
		valid:     valid,
	}) {
		sc.best.publish(inc.score)
		sc.prog.incumbent("analytic seed", -1, inc.m, inc.score, inc.energyPJ, inc.cycles)
	}
}

// seedWarmStart installs Options.WarmStart — a previously found complete
// mapping, typically a crash-recovery checkpoint — as the alpha-beta
// incumbent, exactly like the analytic seed: evaluated on the driver
// goroutine before any worker exists, so the published bound is part of the
// deterministic prologue. Because the caller's mapping may bind different
// (but equivalent) workload/arch instances than this search compiled, the
// factors are rebound onto the compiled pair first. A warm start that fails
// to rebind, validate, or evaluate degrades to a cold search — recorded as
// a candidate error, never raised.
func (sc *search) seedWarmStart(inc *incumbent, res *Result) {
	warm, err := rebind(sc.opt.WarmStart, sc.comp.w, sc.comp.a)
	if err != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, fmt.Errorf("warm start rejected: %w", err))
		return
	}
	sc.ctr.Generated.Inc()
	sc.ctr.Evaluated.Inc()
	edp, energyPJ, cycles, valid, err := sc.safeEvalFast(sc.evs[0], warm)
	if err != nil {
		res.CandidateErrors = appendCapped(res.CandidateErrors, fmt.Errorf("warm start rejected: %w", err))
		return
	}
	if valid {
		res.WarmStartEDP = edp
	}
	if inc.observe(state{
		completed: warm,
		score:     sc.opt.Objective.scoreScalars(edp, energyPJ, cycles, valid),
		energyPJ:  energyPJ,
		cycles:    cycles,
		valid:     valid,
	}) {
		sc.best.publish(inc.score)
		sc.prog.incumbent("warm start", -1, inc.m, inc.score, inc.energyPJ, inc.cycles)
	}
}

// rebind copies m's per-level factors onto the compiled workload/arch pair,
// checking that the shapes line up: same level count, and every dimension
// the mapping touches is declared by the workload. It then runs the full
// legality validator, so an accepted warm start is a real member of this
// search's mapping space.
func rebind(m *mapping.Mapping, w *tensor.Workload, a *arch.Arch) (*mapping.Mapping, error) {
	if len(m.Levels) != len(a.Levels) {
		return nil, fmt.Errorf("mapping has %d levels, architecture has %d", len(m.Levels), len(a.Levels))
	}
	out := mapping.New(w, a)
	for lvl := range m.Levels {
		src := &m.Levels[lvl]
		dst := &out.Levels[lvl]
		for d, n := range src.Temporal {
			if _, ok := w.Dims[d]; !ok {
				return nil, fmt.Errorf("level %d: unknown dimension %s", lvl, d)
			}
			dst.Temporal[d] = n
		}
		for d, n := range src.Spatial {
			if _, ok := w.Dims[d]; !ok {
				return nil, fmt.Errorf("level %d: unknown dimension %s", lvl, d)
			}
			dst.Spatial[d] = n
		}
		dst.Order = append([]tensor.Dim(nil), src.Order...)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// appendCapped appends err to errs unless the cap is reached.
func appendCapped(errs []error, err error) []error {
	if len(errs) >= maxCandidateErrors {
		return errs
	}
	return append(errs, err)
}

// orderingSet replays the compiled ordering enumeration into this run's
// telemetry: the trie ran once at Compile, but every search still gets the
// span and charges the trie's rejects to its own candidate flow — every node
// examined but not surviving counts as generated + pruned-by-the-ordering-
// principle — so counters and traces are identical whether the artifacts
// were compiled cold or served from an Engine's cache.
func (sc *search) orderingSet(ctx context.Context) ([]order.Ordering, order.Stats) {
	_, osp := obs.StartSpan(ctx, "orderings")
	ostats := sc.comp.ostats
	rejects := ostats.NodesVisited - ostats.Survivors
	if rejects > 0 {
		sc.ctr.Generated.Add(uint64(rejects))
		sc.ctr.PrunedOrdering.Add(uint64(rejects))
	}
	osp.Arg("survivors", ostats.Survivors).Arg("visited", ostats.NodesVisited).End()
	return sc.comp.orderings, ostats
}

// runLevelSearch drives the unified search: seed the incumbent, step through
// the sequencer's levels carrying the beam, then finish — polishing the
// winner when the direction asks for it. It polls ctx between orderings,
// candidates and levels; on cancellation it returns the incumbent best
// completed mapping (Table VI's directions differ only via the sequencer).
func runLevelSearch(ctx context.Context, sc *search) (Result, error) {
	seq := sc.sequencer()
	orderings, ostats := sc.orderingSet(ctx)
	res := Result{OrderingsConsidered: ostats.Survivors}

	states := []state{{m: mapping.New(sc.comp.w, sc.comp.a)}}

	var inc incumbent
	seedIncumbent(sc, &inc, &res, states[0].m)
	if sc.analytical().Seed {
		sc.seedAnalytic(&inc, &res)
	}
	if sc.opt.WarmStart != nil {
		sc.seedWarmStart(&inc, &res)
	}

	budgetHit := false
	for _, lvl := range seq.levels {
		next, hit, done, out, err := sc.runStep(ctx, &seq, lvl, states, orderings, &res, &inc)
		if done {
			return out, err
		}
		budgetHit = budgetHit || hit
		states = next
	}

	best := states[0]
	final := best.completed
	if final == nil || !best.valid {
		// Evaluation of the winner was skipped or poisoned; fall back to
		// the incumbent.
		return inc.finish(sc, res, anytime.FromContext(ctx))
	}
	if an := sc.analytical(); (an.Seed || an.Bounds) && inc.m != nil && inc.score < best.score {
		// The analytic layer can legitimately leave the final beam behind
		// the incumbent: the seed may beat everything enumeration found, and
		// a bound cut keeps subtrees out of the last step's beam. Promote
		// the incumbent to the winner (it is a full completed mapping) so
		// enabling the layer can speed the search up but never degrade its
		// answer. Gated on the layer so the disabled path stays bit-identical
		// to the historical search.
		best = state{m: inc.m, completed: inc.m, score: inc.score, energyPJ: inc.energyPJ, cycles: inc.cycles, valid: true}
		final = inc.m
	}
	energyPJ, cycles := best.energyPJ, best.cycles
	if seq.polish && !sc.opt.NoPolish {
		_, psp := obs.StartSpan(ctx, "polish")
		sc.prog.phase(obs.PhaseStarted, "polish", -1)
		var evals int
		var reason StopReason
		var perrs []error
		final, energyPJ, cycles, evals, perrs, reason = polish(ctx, sc, final, best.score, energyPJ, cycles, orderings)
		for _, e := range perrs {
			res.CandidateErrors = appendCapped(res.CandidateErrors, e)
		}
		res.SpaceSize += evals
		res.Stopped = reason
		sc.prog.phase(obs.PhaseFinished, "polish", -1)
		psp.Arg("evals", evals).End()
	}
	res.Mapping = final
	res.Report = sc.finalReport(final, energyPJ, cycles)
	if budgetHit {
		res.Stopped = StopBudget
	}
	return res, nil
}

// runStep runs one level of the search: expand every beam state under the
// step's visit budget, dedupe, evaluate the fan-out on the direction's
// completion, prune to the next beam. When the search must return at this
// level — cancellation, no feasible candidates — it reports done=true with
// the final (Result, error); otherwise it hands back the next beam.
// Extracted so the level's span and progress phase close on every early
// return.
func (sc *search) runStep(ctx context.Context, seq *sequencer, lvl int, states []state, orderings []order.Ordering, res *Result, inc *incumbent) (next []state, budgetHit, done bool, out Result, err error) {
	a := states[0].m.Arch
	lctx, lsp := obs.StartSpanf(ctx, "level %d (%s)", lvl, a.Levels[lvl].Name)
	defer lsp.End()
	sc.prog.phasef(obs.PhaseStarted, lvl, "level %d (%s)", lvl, a.Levels[lvl].Name)
	defer sc.prog.phasef(obs.PhaseFinished, lvl, "level %d (%s)", lvl, a.Levels[lvl].Name)

	if r := anytime.FromContext(ctx); r != StopComplete {
		out, err = inc.finish(sc, *res, r)
		return nil, false, true, out, err
	}
	_, esp := obs.StartSpan(lctx, "enumerate")
	entries := sc.expandStep(ctx, seq, lvl, states, orderings)
	var produced []*mapping.Mapping
	visitedTotal := 0
	for _, e := range entries {
		produced = append(produced, e.cands...)
		res.SpaceSize += e.visited
		visitedTotal += e.visited
		budgetHit = budgetHit || e.truncated
	}
	esp.Arg("produced", len(produced)).Arg("visited", visitedTotal).End()
	if len(produced) == 0 {
		if r := anytime.FromContext(ctx); r != StopComplete {
			out, err = inc.finish(sc, *res, r)
			return nil, budgetHit, true, out, err
		}
		return nil, budgetHit, true, *res, fmt.Errorf("%s: no feasible candidates at level %d (%s)", sc.opt.Direction, lvl, a.Levels[lvl].Name)
	}
	produced = sc.boundPrune(produced, lvl)
	produced = sc.dedupe(produced)
	vctx, vsp := obs.StartSpan(lctx, "evaluate")
	scored, panics := sc.evalAll(vctx, produced, seq.completeAt(lvl))
	vsp.Arg("candidates", len(produced)).End()
	for _, e := range panics {
		res.CandidateErrors = appendCapped(res.CandidateErrors, e)
	}
	next = sc.prunedAndCount(scored)
	if len(next) == 0 {
		if r := anytime.FromContext(ctx); r != StopComplete {
			out, err = inc.finish(sc, *res, r)
			return nil, budgetHit, true, out, err
		}
		return nil, budgetHit, true, *res, errors.Join(append([]error{fmt.Errorf("%s: all candidates at level %d are invalid", sc.opt.Direction, lvl)}, res.CandidateErrors...)...)
	}
	if inc.observe(next[0]) {
		sc.prog.incumbent(fmt.Sprintf("level %d (%s)", lvl, a.Levels[lvl].Name), lvl, inc.m, inc.score, inc.energyPJ, inc.cycles)
	}
	if r := anytime.FromContext(ctx); r != StopComplete {
		out, err = inc.finish(sc, *res, r)
		return nil, budgetHit, true, out, err
	}
	return next, budgetHit, false, Result{}, nil
}

// boundPrune cuts materialized candidates whose admissible analytic lower
// bound (cost.Session.LowerBound, precomputed at compile time) already
// exceeds the incumbent, before the evaluation fan-out pays for them. The
// bound is a floor over every valid completion of the candidate, so a cut
// subtree provably cannot beat — or even tie — the incumbent it was compared
// against; the cut changes how much the search evaluates, never what it
// returns.
//
// Placement matters for two invariants. It runs on the driver at the step
// barrier, where sc.best.load() is a deterministic function of the candidate
// flow (every prior score has been published), keeping results bit-identical
// at any thread count. And it runs *outside* the expansion memo
// (expandStep), because memo entries are replayed across searches with
// different incumbents — an incumbent-dependent cut inside expansion would
// poison the cache. When the incumbent would cut every candidate, the one
// with the lowest bound is kept so the beam never empties on a prune that is
// about effort, not feasibility.
func (sc *search) boundPrune(ms []*mapping.Mapping, lvl int) []*mapping.Mapping {
	if !sc.analytical().Bounds || len(ms) < 2 {
		return ms
	}
	best := sc.best.load()
	if math.IsInf(best, 1) {
		return ms
	}
	out := ms[:0]
	cut := 0
	var keep *mapping.Mapping // lowest-bound cut candidate, resurrected if all fall
	keepBound := math.Inf(1)
	for _, m := range ms {
		eLB, cLB := sc.sess.LowerBound(sc.maxSpatialAt(m, lvl))
		b := sc.opt.Objective.scoreFloor(eLB, cLB)
		if b > best {
			cut++
			if b < keepBound {
				keep, keepBound = m, b
			}
			continue
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		// Nothing written into the shared backing array yet, so keep is intact.
		out = append(out, keep)
		cut--
	}
	sc.ctr.BoundPruned.Add(uint64(cut))
	return out
}

// maxSpatialAt bounds the total spatial parallelism any completion of
// partial candidate m can reach at step lvl: levels the direction has
// already assigned contribute their actual spatial product (final — later
// steps never revisit them), unassigned levels contribute their full fanout.
// Bottom-up at step lvl has unrolled levels 0..lvl+1; top-down at step lvl
// has assigned lvl..top.
func (sc *search) maxSpatialAt(m *mapping.Mapping, lvl int) float64 {
	a := sc.comp.a
	ms := 1.0
	if sc.opt.Direction == TopDown {
		for l := range a.Levels {
			if l >= lvl {
				ms *= float64(m.Levels[l].SpatialProduct())
			} else {
				ms *= float64(a.Levels[l].Fanout)
			}
		}
		return ms
	}
	for l := range a.Levels {
		if l <= lvl+1 {
			ms *= float64(m.Levels[l].SpatialProduct())
		} else {
			ms *= float64(a.Levels[l].Fanout)
		}
	}
	return ms
}

// expandStep expands every beam state at level lvl and returns one expansion
// entry per state, in state order. This is the enumerate phase's parallel
// driver, built so results are bit-identical to a serial walk at any thread
// count:
//
//   - the step's visit budget is pre-partitioned across states, then each
//     state's share across its orderings — a pure function of (budget,
//     #states, #orderings), replacing the serial `remaining -= visited`
//     chain whose shares depended on execution order;
//   - each (state, ordering) pair is an independent work unit writing into
//     its own slot; slots are merged in (state-index, ordering-index) order;
//   - counter flushes (replayExpansion), memoization, and the expansion
//     chaos hook all run on the driver goroutine in state order, so counter
//     deltas and fault-injection ordinals stay deterministic.
//
// Memoization keeps its per-state granularity and contract: keys never
// include the thread count, entries record the complete (all-orderings)
// outcome, and only uncancelled — complete — expansions are stored.
func (sc *search) expandStep(ctx context.Context, seq *sequencer, lvl int, states []state, orderings []order.Ordering) []*expandEntry {
	entries := make([]*expandEntry, len(states))
	fresh := make([]bool, len(states))
	keys := make([]string, len(states))
	shares := partitionBudget(seq.stepBudget, len(states))
	type unitRef struct{ si, oi int }
	var units []unitRef
	for si := range states {
		// Chaos hook: fired on the driver goroutine in beam order so injected
		// expansion faults keep their deterministic per-site ordinal sequence
		// regardless of worker count; the panic propagates to the resilient
		// retry path exactly as a serial expansion's would. (Worker panics
		// are re-raised here too — see runParallel.)
		faults.MustFire(faults.SiteExpand)
		keyBudget := 0
		if seq.budgeted {
			keyBudget = shares[si]
		}
		keys[si] = sc.expandKey(lvl, keyBudget, states[si].m)
		if e := sc.comp.expansions.get(keys[si]); e != nil {
			entries[si] = e
			continue
		}
		fresh[si] = true
		for oi := range orderings {
			units = append(units, unitRef{si, oi})
		}
	}
	if len(units) > 0 {
		oShares := make([][]int, len(states))
		for si := range states {
			if fresh[si] {
				oShares[si] = partitionBudget(shares[si], len(orderings))
			}
		}
		outs := make([]unitOut, len(units))
		runParallel(sc.opt.Threads, len(units), func(_, u int) {
			ur := units[u]
			o := seq.expandUnit(ctx, states[ur.si].m, lvl, &orderings[ur.oi], oShares[ur.si][ur.oi])
			if ur.oi == 0 && seq.stateEffort != nil {
				o.visited += seq.stateEffort(ctx, states[ur.si].m, lvl)
			}
			outs[u] = o
		})
		for u := range units {
			ur := units[u]
			e := entries[ur.si]
			if e == nil {
				e = &expandEntry{}
				entries[ur.si] = e
			}
			o := &outs[u]
			e.cands = append(e.cands, o.cands...)
			e.visited += o.visited
			e.prunedTiling += o.prunedTiling
			e.prunedUnrolling += o.prunedUnrolling
			e.truncated = e.truncated || o.truncated
		}
	}
	// Flush counters and memoize in state order, after the barrier: a
	// cancellation mid-fan-out truncates candidate sets, so only complete
	// expansions may be stored.
	complete := anytime.FromContext(ctx) == StopComplete
	for si := range states {
		if entries[si] == nil {
			entries[si] = &expandEntry{}
		}
		sc.replayExpansion(entries[si])
		if fresh[si] && complete {
			sc.comp.expansions.put(keys[si], entries[si])
		}
	}
	return entries
}

package core

// This file holds the intra-search worker-pool machinery shared by the three
// fan-outs of one search — candidate expansion (runStep's (state, ordering)
// units), evaluation (evalAll), and polish (the perturbation batch). One
// search never runs more than one fan-out at a time, so a single pool-size
// knob (Options.Threads) governs all three, and per-worker scratch (the
// preallocated Evaluators) is indexed by worker id.
//
// Determinism is the design constraint: results, SpaceSize and the counter
// partition must be bit-identical to the serial path at any thread count.
// The pool therefore only decides *when* a unit runs, never *what* it
// computes or where its output lands — every unit writes to its own
// preassigned slot and the driver merges slots in deterministic unit order.
// Anything order-sensitive (budget shares, counter flushes, memoization,
// fault-injection ordinals) happens on the driver goroutine before or after
// the fan-out.

import (
	"math"
	"sync"
	"sync/atomic"
)

// runParallel executes units 0..n-1 across at most `threads` workers, each
// call fn(worker, unit) with worker in [0, min(threads, n)). Units are pulled
// off an atomic counter (work-stealing: a slow unit never blocks the rest).
// With threads <= 1 it degenerates to a plain loop on the caller goroutine —
// the serial path is literally the same code.
//
// A panic inside a unit is re-raised on the caller goroutine after every
// worker has drained (first panic wins): callers that rely on panics
// propagating — the chaos-injection sites, the resilient retry loop —
// observe the same panic whether the unit ran inline or on a worker.
func runParallel(threads, n int, fn func(worker, unit int)) {
	if n <= 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  atomic.Bool
		panicVal  any
	)
	for wk := 0; wk < threads; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicVal = r
						panicked.Store(true)
					})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// partitionBudget deterministically splits a visit budget across n units:
// each unit gets total/n, the first total%n units one extra, so the shares
// sum to total and depend only on (total, n) — never on thread count or
// execution order. This replaces the serial `remaining -= visited` chain,
// whose shares depended on how much each earlier unit happened to consume.
// An unbounded budget (math.MaxInt) stays unbounded for every unit.
func partitionBudget(total, n int) []int {
	shares := make([]int, n)
	if total == math.MaxInt {
		for i := range shares {
			shares[i] = math.MaxInt
		}
		return shares
	}
	base, extra := total/n, total%n
	for i := range shares {
		shares[i] = base
		if i < extra {
			shares[i]++
		}
		if shares[i] < 1 {
			shares[i] = 1
		}
	}
	return shares
}

// bestScore is the search-wide atomic incumbent score: the lowest valid
// completed-candidate objective published so far, shared across the worker
// pool so every consumer of the alpha-beta bound sees the tightest value
// available (ROADMAP item 4's bound-sharing hook). Publication is lock-free
// (CAS-min over the float bits; scores are non-negative so the bit pattern
// is order-preserving).
//
// Determinism: workers only *publish* here, racing freely; the bound is
// *consumed* only at step barriers (after evalAll has joined), where its
// value — the minimum over every candidate evaluated so far plus the seed —
// is a deterministic function of the candidate flow, independent of thread
// count or interleaving.
type bestScore struct {
	bits atomic.Uint64
}

func newBestScore() *bestScore {
	b := &bestScore{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// publish lowers the shared bound to score if it improves it.
func (b *bestScore) publish(score float64) {
	if math.IsInf(score, 1) || math.IsNaN(score) {
		return
	}
	for {
		old := b.bits.Load()
		if score >= math.Float64frombits(old) {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(score)) {
			return
		}
	}
}

// load returns the current shared bound (+Inf until the first publish).
func (b *bestScore) load() float64 {
	return math.Float64frombits(b.bits.Load())
}

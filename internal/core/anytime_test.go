package core

import (
	"context"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/cost"
	"sunstone/internal/exec"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
)

func TestOptionsValidate(t *testing.T) {
	bad := []struct {
		name string
		opt  Options
	}{
		{"NaN AlphaSlack", Options{AlphaSlack: math.NaN()}},
		{"Inf AlphaSlack", Options{AlphaSlack: math.Inf(1)}},
		{"negative AlphaSlack", Options{AlphaSlack: -1}},
		{"huge AlphaSlack", Options{AlphaSlack: 1e15}},
		{"NaN MinUtilization", Options{MinUtilization: math.NaN()}},
		{"MinUtilization > 1", Options{MinUtilization: 1.5}},
		{"negative BeamWidth", Options{BeamWidth: -3}},
		{"absurd BeamWidth", Options{BeamWidth: 1 << 30}},
		{"negative Threads", Options{Threads: -1}},
		{"absurd Threads", Options{Threads: 1 << 20}},
		{"negative TilesPerStep", Options{TilesPerStep: -1}},
		{"absurd UnrollsPerStep", Options{UnrollsPerStep: 1 << 30}},
		{"negative visit budget", Options{TopDownVisitBudget: -1}},
		{"negative Timeout", Options{Timeout: -time.Second}},
		{"unknown Direction", Options{Direction: Direction(99)}},
		{"unknown Strategy", Options{Strategy: Strategy(99)}},
		{"unknown Objective", Options{Objective: Objective(99)}},
	}
	for _, tc := range bad {
		if err := tc.opt.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.opt)
		}
	}
	good := []Options{
		{},
		{BeamWidth: 8, AlphaSlack: 4, MinUtilization: 0.9, Threads: 2},
		{Direction: TopDown, Strategy: UnrollTileOrder, Objective: MinED2P, Timeout: time.Second},
	}
	for _, opt := range good {
		if err := opt.Validate(); err != nil {
			t.Errorf("Validate rejected valid options %+v: %v", opt, err)
		}
	}
	// Invalid options must surface through Optimize, not just Validate.
	w := conv1D(t, 4, 4, 8, 3)
	if _, err := Optimize(w, arch.Tiny(256), Options{BeamWidth: -1}); err == nil {
		t.Error("Optimize accepted invalid options")
	}
}

// verifyAnytime checks the anytime contract on a stopped result: a
// structurally valid best-so-far mapping with the right stop reason. When
// functional is set it additionally executes the mapped loop nest against
// the reference (only affordable on small workloads — execution cost scales
// with the full iteration space, not the search space).
func verifyAnytime(t *testing.T, res Result, err error, want StopReason, functional bool) {
	t.Helper()
	if err != nil {
		t.Fatalf("stopped search should still return its incumbent: %v", err)
	}
	if res.Stopped != want {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, want)
	}
	if res.Mapping == nil {
		t.Fatal("stopped search returned no mapping")
	}
	if verr := res.Mapping.Validate(); verr != nil {
		t.Fatalf("best-so-far mapping is structurally invalid: %v", verr)
	}
	if !functional {
		return
	}
	ok, verr := exec.Verify(res.Mapping)
	if verr != nil {
		t.Fatalf("verify: %v", verr)
	}
	if !ok {
		t.Fatal("best-so-far mapping computes the wrong result")
	}
}

func TestOptimizeContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := conv1D(t, 8, 8, 28, 3)
	start := time.Now()
	res, err := OptimizeContext(ctx, w, arch.Tiny(256), Options{})
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Errorf("pre-canceled search took %v, want ~immediate", el)
	}
	verifyAnytime(t, res, err, StopCanceled, true)
}

func TestOptimizeTimeoutDeadline(t *testing.T) {
	// Big enough that the full search takes well over the timeout.
	w := conv2D(t, 4, 64, 64, 28, 28, 3, 3)
	start := time.Now()
	res, err := Optimize(w, arch.Simba(), Options{Timeout: 10 * time.Millisecond})
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Errorf("deadline-stopped search took %v, want well under 500ms", elapsed)
	}
	verifyAnytime(t, res, err, StopDeadline, false)
}

func TestOptimizeCancelMidSearch(t *testing.T) {
	w := conv2D(t, 4, 64, 64, 28, 28, 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from the synchronous progress stream once the search is a few
	// phases in: deterministic mid-search timing on any machine, unlike a
	// sleeping goroutine racing a search that keeps getting faster.
	var events atomic.Int64
	opt := Options{Progress: func(obs.ProgressEvent) {
		if events.Add(1) == 4 {
			cancel()
		}
	}}
	start := time.Now()
	res, err := OptimizeContext(ctx, w, arch.Simba(), opt)
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("canceled search took %v after the signal, want well under 500ms", el)
	}
	verifyAnytime(t, res, err, StopCanceled, false)
}

func TestOptimizeTopDownStops(t *testing.T) {
	w := conv2D(t, 4, 64, 64, 28, 28, 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeContext(ctx, w, arch.Tiny(256), Options{Direction: TopDown})
	verifyAnytime(t, res, err, StopCanceled, false)

	res, err = Optimize(w, arch.Tiny(256), Options{Direction: TopDown, Timeout: 10 * time.Millisecond})
	if res.Stopped != StopDeadline && res.Stopped != StopBudget && res.Stopped != StopComplete {
		t.Fatalf("unexpected stop reason %v", res.Stopped)
	}
	if err != nil || res.Mapping == nil {
		t.Fatalf("top-down deadline run: err=%v mapping=%v", err, res.Mapping)
	}
}

func TestOptimizeTopDownVisitBudget(t *testing.T) {
	w := conv2D(t, 4, 16, 16, 14, 14, 3, 3)
	res, err := Optimize(w, arch.Tiny(4096), Options{Direction: TopDown, TopDownVisitBudget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopBudget {
		t.Fatalf("Stopped = %v, want StopBudget with a 50-visit budget", res.Stopped)
	}
	if res.Mapping == nil {
		t.Fatal("budget-stopped search returned no mapping")
	}
}

// flakyProbe panics on every nth cost-model evaluation.
type flakyProbe struct {
	n     int64
	every int64
}

func (p *flakyProbe) BeforeEvaluate(m *mapping.Mapping) {
	if atomic.AddInt64(&p.n, 1)%p.every == 0 {
		panic("injected cost-model fault")
	}
}

// alwaysPanicProbe poisons every evaluation.
type alwaysPanicProbe struct{}

func (alwaysPanicProbe) BeforeEvaluate(m *mapping.Mapping) { panic("poisoned model") }

func TestOptimizePanicIsolation(t *testing.T) {
	w := conv1D(t, 16, 16, 28, 3)
	model := cost.Default
	model.Probe = &flakyProbe{every: 7}
	res, err := Optimize(w, arch.Tiny(256), Options{Model: model})
	if err != nil {
		t.Fatalf("intermittent panics must not fail the search: %v", err)
	}
	if res.Mapping == nil {
		t.Fatal("no mapping despite most evaluations succeeding")
	}
	if len(res.CandidateErrors) == 0 {
		t.Fatal("poisoned candidates were not reported in CandidateErrors")
	}
	for _, cerr := range res.CandidateErrors {
		msg := cerr.Error()
		if !strings.Contains(msg, "injected cost-model fault") {
			t.Errorf("candidate error lost the panic value: %v", msg)
		}
		if !strings.Contains(msg, "offending candidate") || !strings.Contains(msg, `"levels"`) {
			t.Errorf("candidate error carries no serialized repro: %v", msg)
		}
	}
}

func TestOptimizeAllEvaluationsPanic(t *testing.T) {
	w := conv1D(t, 8, 8, 28, 3)
	model := cost.Default
	model.Probe = alwaysPanicProbe{}
	res, err := Optimize(w, arch.Tiny(256), Options{Model: model})
	if err == nil {
		t.Fatalf("fully poisoned model must fail with an error, got %+v", res)
	}
	if !strings.Contains(err.Error(), "poisoned model") {
		t.Errorf("error does not carry the panic cause: %v", err)
	}
}

func TestOptimizeCancelLeaksNoGoroutines(t *testing.T) {
	w := conv2D(t, 4, 32, 32, 14, 14, 3, 3)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		if _, err := OptimizeContext(ctx, w, arch.Simba(), Options{}); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked across canceled searches: %d before, %d after", before, after)
	}
}

package core

import (
	"context"

	"sunstone/internal/anytime"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
)

// polish refines the best mapping found by the level-by-level search with
// local moves: loop-ordering swaps, single-prime factor moves (between two
// temporal levels, or from a temporal level into an under-utilized spatial
// fanout), and spatial prime swaps. The beam search's per-level
// decomposition is near-optimal but can leave small cross-level imbalances;
// a few dozen local moves recover them at a cost of a few hundred
// evaluations (counted in the returned total).
//
// The climb is batched steepest descent: each round generates the full
// deterministic move neighborhood of the current mapping, scores it through
// the same parallel fan-out the beam search uses (evalAll — per-worker
// scratch evaluators, shared memo cache absorbing re-proposed neighbors),
// and accepts the single best strictly-improving move (ties broken by the
// candidates' canonical render, exactly like beam selection). Because the
// accepted move depends only on the scored set — never on evaluation order —
// the polished mapping is bit-identical at any thread count.
//
// Polish is inherently anytime — the input mapping is already complete and
// every accepted move only improves it — so cancellation simply stops the
// climb wherever it is and reports the reason. Panicking evaluations are
// contained per candidate (the move scores invalid) and surfaced to the
// caller for Result.CandidateErrors.
func polish(ctx context.Context, sc *search, best *mapping.Mapping, bestScore, bestEnergyPJ, bestCycles float64, orderings []order.Ordering) (*mapping.Mapping, float64, float64, int, []error, StopReason) {
	cur := best
	curScore, curEnergyPJ, curCycles := bestScore, bestEnergyPJ, bestCycles
	evals := 0
	var errs []error
	// Steepest descent accepts one move per round, so rounds bound the
	// accepted-move chain; typical climbs converge in a handful.
	const maxRounds = 32
	poll := &anytime.Poller{Ctx: ctx}

	for round := 0; round < maxRounds; round++ {
		if poll.Stop() != StopComplete {
			break
		}
		moves := polishMoves(cur, orderings)
		if len(moves) == 0 {
			break
		}
		// Every proposed move is generated and (unless the context ends
		// mid-batch) evaluated — the same flow accounting as the serial
		// climb, charged per batch.
		sc.ctr.Generated.Add(uint64(len(moves)))
		scored, panics := sc.evalAll(ctx, moves, func(m *mapping.Mapping) *mapping.Mapping { return m })
		evals += len(moves)
		for _, e := range panics {
			errs = append(errs, e)
		}
		top := scored[0]
		if !top.valid || top.score >= curScore*(1-1e-12) {
			break // local optimum (or nothing evaluable): fixpoint reached
		}
		cur = top.m
		curScore, curEnergyPJ, curCycles = top.score, top.energyPJ, top.cycles
		sc.prog.incumbent("polish", -1, cur, curScore, curEnergyPJ, curCycles)
	}
	return cur, curEnergyPJ, curCycles, evals, errs, poll.Stop()
}

// polishMoves generates the full local-move neighborhood of cur in a
// deterministic order (the canonical dimension and level orders — map
// iteration order never leaks in). The batch is scored in parallel, so
// unlike the historical first-improvement sweep, every move is proposed
// against the same base mapping.
func polishMoves(cur *mapping.Mapping, orderings []order.Ordering) []*mapping.Mapping {
	var moves []*mapping.Mapping

	// Ordering moves: re-pick any level's loop order from the trie.
	for l := 1; l < len(cur.Levels); l++ {
		for oi := range orderings {
			cand := cur.Clone()
			cand.Levels[l].Order = orderings[oi].Complete(cur.Workload)
			moves = append(moves, cand)
		}
	}

	// Factor moves: shift one prime of one dimension between levels.
	for _, d := range cur.Workload.Order {
		for src := 0; src < len(cur.Levels); src++ {
			tSrc := cur.Levels[src].T(d)
			if tSrc <= 1 {
				continue
			}
			for _, p := range uniquePrimes(tSrc) {
				for dst := 0; dst < len(cur.Levels); dst++ {
					if dst == src {
						continue
					}
					cand := cur.Clone()
					cand.Levels[src].Temporal[d] = tSrc / p
					cand.Levels[dst].Temporal[d] = cand.Levels[dst].T(d) * p
					moves = append(moves, cand)
					// Spatial variant: move the prime into dst's fanout.
					if cur.Arch.Levels[dst].Fanout > 1 {
						cand2 := cur.Clone()
						cand2.Levels[src].Temporal[d] = tSrc / p
						cand2.Levels[dst].Spatial[d] = cand2.Levels[dst].S(d) * p
						moves = append(moves, cand2)
					}
				}
			}
		}
	}

	// Spatial swaps: replace one prime of a spatially-unrolled dimension
	// with a prime of another dimension taken from a temporal level —
	// the move a single-prime shift cannot express (e.g. retiring an R3
	// unroll in favor of P4 across the same fanout).
	for l := 0; l < len(cur.Levels); l++ {
		if cur.Arch.Levels[l].Fanout <= 1 {
			continue
		}
		for _, d1 := range cur.Workload.Order {
			s1 := cur.Levels[l].S(d1)
			if s1 <= 1 {
				continue
			}
			for _, p := range uniquePrimes(s1) {
				for _, d2 := range cur.Workload.Order {
					if d2 == d1 {
						continue
					}
					for src := 0; src < len(cur.Levels); src++ {
						tSrc := cur.Levels[src].T(d2)
						if tSrc <= 1 {
							continue
						}
						for _, q := range uniquePrimes(tSrc) {
							if cur.Levels[l].SpatialProduct()/p*q > cur.Arch.Levels[l].Fanout {
								continue
							}
							cand := cur.Clone()
							cand.Levels[l].Spatial[d1] = s1 / p
							cand.Levels[l].Temporal[d1] = cand.Levels[l].T(d1) * p
							cand.Levels[src].Temporal[d2] = tSrc / q
							cand.Levels[l].Spatial[d2] = cand.Levels[l].S(d2) * q
							moves = append(moves, cand)
						}
					}
				}
			}
		}
	}
	return moves
}

// uniquePrimes returns the distinct prime factors of n.
func uniquePrimes(n int) []int {
	var out []int
	last := 0
	for _, p := range factor.Primes(n) {
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

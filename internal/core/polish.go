package core

import (
	"context"

	"sunstone/internal/anytime"
	"sunstone/internal/factor"
	"sunstone/internal/mapping"
	"sunstone/internal/order"
)

// polish hill-climbs the best mapping found by the level-by-level search:
// it greedily applies any loop-ordering swap or single-prime factor move
// (between two temporal levels, or from a temporal level into an
// under-utilized spatial fanout) that lowers EDP, until a fixpoint. The beam
// search's per-level decomposition is near-optimal but can leave small
// cross-level imbalances; a few dozen local moves recover them at a cost of
// a few hundred evaluations (counted in the returned total).
//
// Polish is inherently anytime — the input mapping is already complete and
// every accepted move only improves it — so cancellation simply stops the
// climb wherever it is and reports the reason; a panicking evaluation
// rejects that one move.
func polish(ctx context.Context, sc *search, best *mapping.Mapping, bestScore, bestEnergyPJ, bestCycles float64, orderings []order.Ordering) (*mapping.Mapping, float64, float64, int, StopReason) {
	opt := sc.opt
	ev := sc.evs[0] // polish is sequential; one scratch evaluator suffices
	cur := best
	curScore, curEnergyPJ, curCycles := bestScore, bestEnergyPJ, bestCycles
	evals := 0
	const maxRounds = 8
	poll := &anytime.Poller{Ctx: ctx}

	for round := 0; round < maxRounds; round++ {
		improved := false

		try := func(cand *mapping.Mapping) bool {
			sc.ctr.Generated.Inc()
			if poll.Stop() != StopComplete {
				sc.ctr.Skipped.Inc()
				return false
			}
			sc.ctr.Evaluated.Inc()
			// The memo cache absorbs most of these: hill climbing
			// re-proposes the same neighbors round after round.
			edp, energyPJ, cycles, valid, err := sc.safeEvalFast(ev, cand)
			evals++
			if err != nil {
				return false // poisoned move: skip it, keep climbing
			}
			if valid && opt.Objective.scoreScalars(edp, energyPJ, cycles, valid) < curScore*(1-1e-12) {
				cur = cand
				curScore = opt.Objective.scoreScalars(edp, energyPJ, cycles, valid)
				curEnergyPJ, curCycles = energyPJ, cycles
				sc.prog.incumbent("polish", -1, curScore, curEnergyPJ, curCycles)
				return true
			}
			return false
		}

		// Ordering moves: re-pick any level's loop order from the trie.
		for l := 1; l < len(cur.Levels); l++ {
			for oi := range orderings {
				cand := cur.Clone()
				cand.Levels[l].Order = orderings[oi].Complete(cur.Workload)
				if try(cand) {
					improved = true
				}
			}
		}

		// Factor moves: shift one prime of one dimension between levels.
		// (Iterate the canonical dimension order — map order would make
		// first-improvement hill climbing nondeterministic.)
		for _, d := range cur.Workload.Order {
			for src := 0; src < len(cur.Levels); src++ {
				tSrc := cur.Levels[src].T(d)
				if tSrc <= 1 {
					continue
				}
				for _, p := range uniquePrimes(tSrc) {
					for dst := 0; dst < len(cur.Levels); dst++ {
						if dst == src {
							continue
						}
						cand := cur.Clone()
						cand.Levels[src].Temporal[d] = tSrc / p
						cand.Levels[dst].Temporal[d] = cand.Levels[dst].T(d) * p
						if try(cand) {
							improved = true
						}
						// Spatial variant: move the prime into dst's fanout.
						if cur.Arch.Levels[dst].Fanout > 1 {
							cand2 := cur.Clone()
							cand2.Levels[src].Temporal[d] = tSrc / p
							cand2.Levels[dst].Spatial[d] = cand2.Levels[dst].S(d) * p
							if try(cand2) {
								improved = true
							}
						}
					}
				}
			}
		}

		// Spatial swaps: replace one prime of a spatially-unrolled dimension
		// with a prime of another dimension taken from a temporal level —
		// the move a single-prime shift cannot express (e.g. retiring an R3
		// unroll in favor of P4 across the same fanout).
		for l := 0; l < len(cur.Levels); l++ {
			if cur.Arch.Levels[l].Fanout <= 1 {
				continue
			}
			for _, d1 := range cur.Workload.Order {
				s1 := cur.Levels[l].S(d1)
				if s1 <= 1 {
					continue
				}
				for _, p := range uniquePrimes(s1) {
					for _, d2 := range cur.Workload.Order {
						if d2 == d1 {
							continue
						}
						for src := 0; src < len(cur.Levels); src++ {
							tSrc := cur.Levels[src].T(d2)
							if tSrc <= 1 {
								continue
							}
							for _, q := range uniquePrimes(tSrc) {
								if cur.Levels[l].SpatialProduct()/p*q > cur.Arch.Levels[l].Fanout {
									continue
								}
								cand := cur.Clone()
								cand.Levels[l].Spatial[d1] = s1 / p
								cand.Levels[l].Temporal[d1] = cand.Levels[l].T(d1) * p
								cand.Levels[src].Temporal[d2] = tSrc / q
								cand.Levels[l].Spatial[d2] = cand.Levels[l].S(d2) * q
								if try(cand) {
									improved = true
								}
							}
						}
					}
				}
			}
		}

		if !improved || poll.Stop() != StopComplete {
			break
		}
	}
	return cur, curEnergyPJ, curCycles, evals, poll.Stop()
}

// uniquePrimes returns the distinct prime factors of n.
func uniquePrimes(n int) []int {
	var out []int
	last := 0
	for _, p := range factor.Primes(n) {
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

package server

import (
	"fmt"
	"testing"
	"time"
)

func TestTenantBucketBurstAndRefill(t *testing.T) {
	tb := newTenantBuckets(2, 3) // 2 tokens/s, burst 3
	now := time.Unix(1000, 0)
	for i := range 3 {
		ok, _ := tb.allow("a", now)
		if !ok {
			t.Fatalf("burst submission %d shed", i)
		}
	}
	ok, wait := tb.allow("a", now)
	if ok {
		t.Fatal("fourth submission admitted past burst")
	}
	if wait < time.Second {
		t.Errorf("Retry-After hint %v, want >= 1s floor", wait)
	}
	// One second refills two tokens.
	now = now.Add(time.Second)
	for i := range 2 {
		if ok, _ := tb.allow("a", now); !ok {
			t.Fatalf("refilled submission %d shed", i)
		}
	}
	if ok, _ := tb.allow("a", now); ok {
		t.Error("admitted beyond the refill")
	}
}

func TestTenantBucketsIsolated(t *testing.T) {
	tb := newTenantBuckets(1, 1)
	now := time.Unix(1000, 0)
	if ok, _ := tb.allow("noisy", now); !ok {
		t.Fatal("noisy's first submission shed")
	}
	if ok, _ := tb.allow("noisy", now); ok {
		t.Fatal("noisy's second submission admitted")
	}
	// A different tenant has its own full bucket.
	if ok, _ := tb.allow("quiet", now); !ok {
		t.Fatal("quiet shed because of noisy's bucket")
	}
}

func TestTenantBucketsDisabled(t *testing.T) {
	tb := newTenantBuckets(0, 1)
	now := time.Unix(1000, 0)
	for range 100 {
		if ok, _ := tb.allow("anyone", now); !ok {
			t.Fatal("rate 0 must admit everything")
		}
	}
	if tb.tenants() != 0 {
		t.Errorf("disabled shaping tracked %d tenants", tb.tenants())
	}
}

// TestTenantBucketsBounded: cycling tenant names cannot grow the map past
// maxTenants — stale full buckets are swept, and behavior for the tenants
// that matter (mid-refill ones) is preserved.
func TestTenantBucketsBounded(t *testing.T) {
	tb := newTenantBuckets(1, 2)
	now := time.Unix(1000, 0)
	for i := range maxTenants + 500 {
		tb.allow(fmt.Sprintf("tenant-%d", i), now)
		now = now.Add(10 * time.Millisecond)
	}
	if got := tb.tenants(); got > maxTenants {
		t.Errorf("tenant map grew to %d, cap %d", got, maxTenants)
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/network"
	"sunstone/internal/obs"
	"sunstone/internal/serde"
	"sunstone/internal/tensor"
	"sunstone/internal/workloads"
)

// JobState is a job's lifecycle position. Transitions are strictly forward:
// queued -> running -> one of done | failed | canceled.
type JobState string

const (
	// JobQueued: admitted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is searching.
	JobRunning JobState = "running"
	// JobDone: finished with an audit-passing mapping (complete or
	// best-so-far after a deadline/drain/watchdog cancel).
	JobDone JobState = "done"
	// JobFailed: every resilient attempt failed; see Error and Cause.
	JobFailed JobState = "failed"
	// JobCanceled: the tenant canceled the job. A job canceled mid-search
	// still carries its best-so-far mapping when one was completed.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// ConvSpec is the inline convolution form of a submission: the Conv2D
// constructor's geometry as JSON.
type ConvSpec struct {
	N, K, C, P, Q, R, S int `json:",omitempty"`
	StrideH, StrideW    int `json:",omitempty"`
}

// NetworkSpec is the network form of a submission: a whole layer chain
// scheduled in one job, optionally fusion-aware. Exactly one of Preset or
// Layers names the chain.
type NetworkSpec struct {
	// Preset: resnet18 (Batch applies, default 1) | transformer (the
	// fixed seq 512, d_model 512, d_ff 2048 block; Batch does not apply).
	Preset string `json:"preset,omitempty"`
	// Layers is an inline conv chain (scheduled in order; adjacent layers
	// whose geometries chain get producer->consumer edges).
	Layers []ConvSpec `json:"layers,omitempty"`
	Batch  int        `json:"batch,omitempty"`
	// Fused turns on fusion-aware scheduling: the search may pin a fused
	// group's intermediate tensors on chip and picks the fusion cut with
	// the lowest network EDP. Off, the job is the plain per-layer
	// schedule (still one job, still per-group reporting — all
	// singletons).
	Fused bool `json:"fused,omitempty"`
	// MaxGroup caps fused group length (0 = library default); only
	// meaningful with Fused set.
	MaxGroup int `json:"max_group,omitempty"`
}

// SubmitOptions is the optimizer-knob subset a submission may set; zero
// fields keep the server defaults (which are the library defaults).
type SubmitOptions struct {
	// Objective: edp | energy | delay | ed2p (default edp).
	Objective string `json:"objective,omitempty"`
	// Direction: bottom-up | top-down (default bottom-up).
	Direction string `json:"direction,omitempty"`
	// BeamWidth bounds the beam (0 = default).
	BeamWidth int `json:"beam_width,omitempty"`
	// NoPolish disables the final greedy refinement.
	NoPolish bool `json:"no_polish,omitempty"`
	// Threads requests a search worker-pool size. 0 keeps the server's
	// per-job fair share (GOMAXPROCS divided across Workers); a positive
	// value is honored up to that share, so one tenant cannot
	// oversubscribe the box. Results are identical at any value.
	Threads int `json:"threads,omitempty"`
	// AnalyticalSeed / AnalyticalBounds toggle the closed-form analytical
	// layer: the one-shot seed incumbent and the admissible lower-bound
	// pruning. Unset (null) keeps the library default (both on); explicit
	// false opts that half out.
	AnalyticalSeed   *bool `json:"analytical_seed,omitempty"`
	AnalyticalBounds *bool `json:"analytical_bounds,omitempty"`
}

// SubmitRequest is the POST /v1/jobs body. Exactly one workload form —
// workload (serde JSON), describe (the paper's textual syntax), conv, or
// network — must be set; arch is a preset name or arch_json a serde
// document.
type SubmitRequest struct {
	// Tenant attributes the job for admission control ("" = "default").
	Tenant string `json:"tenant,omitempty"`

	Workload json.RawMessage `json:"workload,omitempty"`
	Describe string          `json:"describe,omitempty"`
	Conv     *ConvSpec       `json:"conv,omitempty"`
	Network  *NetworkSpec    `json:"network,omitempty"`

	// Arch names a preset: conventional | simba | diannao | tiny.
	Arch     string          `json:"arch,omitempty"`
	ArchJSON json.RawMessage `json:"arch_json,omitempty"`

	Options *SubmitOptions `json:"options,omitempty"`
	// TimeoutMS is the end-to-end deadline in milliseconds, counted from
	// admission — queue wait included — and propagated into the search's
	// Options.Timeout and context deadline. On expiry the job completes
	// with its best-so-far mapping instead of an error. 0 uses the server
	// default; values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// build materializes the request into a problem: a single workload or, for
// the network form, a layer chain plus its fusion knobs. All validation
// errors are client errors (HTTP 400).
func (r *SubmitRequest) build() (*tensor.Workload, *network.Network, *arch.Arch, core.Options, core.FusionOptions, error) {
	var opt core.Options
	var fopt core.FusionOptions
	forms := 0
	var w *tensor.Workload
	var net *network.Network
	var err error
	if len(r.Workload) > 0 {
		forms++
		w, err = serde.DecodeWorkload(r.Workload)
	}
	if r.Describe != "" {
		forms++
		w, err = tensor.Parse(r.Describe)
	}
	if r.Conv != nil {
		forms++
		c := *r.Conv
		if c.N <= 0 {
			c.N = 1
		}
		if c.StrideH <= 0 {
			c.StrideH = 1
		}
		if c.StrideW <= 0 {
			c.StrideW = 1
		}
		if c.K <= 0 || c.C <= 0 || c.P <= 0 || c.Q <= 0 || c.R <= 0 || c.S <= 0 {
			return nil, nil, nil, opt, fopt, errors.New("conv: every one of K, C, P, Q, R, S must be positive")
		}
		w = workloads.Conv2D("conv", c.N, c.K, c.C, c.P, c.Q, c.R, c.S, c.StrideH, c.StrideW)
	}
	if r.Network != nil {
		forms++
		net, fopt, err = r.Network.build()
	}
	if forms == 0 {
		return nil, nil, nil, opt, fopt, errors.New("no workload: set exactly one of workload, describe, conv, or network")
	}
	if forms > 1 {
		return nil, nil, nil, opt, fopt, errors.New("ambiguous workload: set exactly one of workload, describe, conv, or network")
	}
	if err != nil {
		return nil, nil, nil, opt, fopt, fmt.Errorf("workload: %w", err)
	}

	var a *arch.Arch
	switch {
	case len(r.ArchJSON) > 0:
		if r.Arch != "" {
			return nil, nil, nil, opt, fopt, errors.New("set arch or arch_json, not both")
		}
		a, err = serde.DecodeArch(r.ArchJSON)
		if err != nil {
			return nil, nil, nil, opt, fopt, fmt.Errorf("arch_json: %w", err)
		}
	default:
		a, err = pickArchPreset(r.Arch)
		if err != nil {
			return nil, nil, nil, opt, fopt, err
		}
	}

	if o := r.Options; o != nil {
		switch strings.ToLower(o.Objective) {
		case "", "edp":
		case "energy":
			opt.Objective = core.MinEnergy
		case "delay":
			opt.Objective = core.MinDelay
		case "ed2p":
			opt.Objective = core.MinED2P
		default:
			return nil, nil, nil, opt, fopt, fmt.Errorf("unknown objective %q (edp|energy|delay|ed2p)", o.Objective)
		}
		switch strings.ToLower(o.Direction) {
		case "", "bottom-up":
		case "top-down":
			opt.Direction = core.TopDown
		default:
			return nil, nil, nil, opt, fopt, fmt.Errorf("unknown direction %q (bottom-up|top-down)", o.Direction)
		}
		if o.BeamWidth < 0 {
			return nil, nil, nil, opt, fopt, fmt.Errorf("beam_width %d must be non-negative", o.BeamWidth)
		}
		opt.BeamWidth = o.BeamWidth
		opt.NoPolish = o.NoPolish
		if o.Threads < 0 {
			return nil, nil, nil, opt, fopt, fmt.Errorf("threads %d must be non-negative", o.Threads)
		}
		if o.Threads > core.MaxThreads {
			return nil, nil, nil, opt, fopt, fmt.Errorf("threads %d exceeds the maximum %d", o.Threads, core.MaxThreads)
		}
		opt.Threads = o.Threads
		if o.AnalyticalSeed != nil || o.AnalyticalBounds != nil {
			an := core.AnalyticalOptions{Seed: true, Bounds: true}
			if o.AnalyticalSeed != nil {
				an.Seed = *o.AnalyticalSeed
			}
			if o.AnalyticalBounds != nil {
				an.Bounds = *o.AnalyticalBounds
			}
			opt.Analytical = &an
		}
	}
	if r.TimeoutMS < 0 {
		return nil, nil, nil, opt, fopt, fmt.Errorf("timeout_ms %d must be non-negative", r.TimeoutMS)
	}
	if net != nil && opt.Objective != core.MinEDP {
		return nil, nil, nil, opt, fopt, errors.New("network jobs pick their fusion cut by edp; set objective edp (or leave it unset)")
	}
	return w, net, a, opt, fopt, nil
}

// build materializes the network form into the chain IR plus its fusion
// knobs. A Fused submission schedules with the library-default group cap
// unless MaxGroup narrows it; an unfused one pins MaxGroup to 1, which is
// exactly the per-layer baseline.
func (n *NetworkSpec) build() (*network.Network, core.FusionOptions, error) {
	var fopt core.FusionOptions
	if (n.Preset == "") == (len(n.Layers) == 0) {
		return nil, fopt, errors.New("network: set exactly one of preset or layers")
	}
	if n.MaxGroup < 0 {
		return nil, fopt, fmt.Errorf("network: max_group %d must be non-negative", n.MaxGroup)
	}
	if !n.Fused && n.MaxGroup > 1 {
		return nil, fopt, errors.New("network: max_group needs fused set")
	}
	batch := n.Batch
	if batch < 0 {
		return nil, fopt, fmt.Errorf("network: batch %d must be non-negative", batch)
	}
	if batch == 0 {
		batch = 1
	}

	var net *network.Network
	var err error
	switch strings.ToLower(n.Preset) {
	case "":
		shapes := make([]workloads.ConvShape, len(n.Layers))
		for i, c := range n.Layers {
			if c.N != 0 {
				return nil, fopt, errors.New("network: layer batch comes from the network batch field, not N")
			}
			if c.StrideH <= 0 {
				c.StrideH = 1
			}
			if c.StrideW <= 0 {
				c.StrideW = 1
			}
			if c.K <= 0 || c.C <= 0 || c.P <= 0 || c.Q <= 0 || c.R <= 0 || c.S <= 0 {
				return nil, fopt, fmt.Errorf("network: layer %d: every one of K, C, P, Q, R, S must be positive", i)
			}
			shapes[i] = workloads.ConvShape{
				Name: fmt.Sprintf("conv%d", i),
				K:    c.K, C: c.C, P: c.P, Q: c.Q, R: c.R, S: c.S,
				StrideH: c.StrideH, StrideW: c.StrideW,
			}
		}
		net, err = network.FromConvShapes("network", shapes, batch, nil)
	case "resnet18":
		net, err = network.FromConvShapes("resnet18", workloads.ResNet18, batch, workloads.ResNet18Repeats())
	case "transformer":
		if n.Batch != 0 {
			return nil, fopt, errors.New("network: batch does not apply to the transformer preset")
		}
		net = network.TransformerChain(512, 512, 2048)
	default:
		return nil, fopt, fmt.Errorf("network: unknown preset %q (resnet18|transformer)", n.Preset)
	}
	if err != nil {
		return nil, fopt, fmt.Errorf("network: %w", err)
	}

	if n.Fused {
		fopt.MaxGroup = n.MaxGroup // 0 keeps the library default
	} else {
		fopt.MaxGroup = 1 // all-singleton cut: the per-layer baseline
	}
	return net, fopt, nil
}

// pickArchPreset resolves an architecture preset name ("" = conventional).
func pickArchPreset(name string) (*arch.Arch, error) {
	switch strings.ToLower(name) {
	case "", "conventional":
		return arch.Conventional(), nil
	case "simba":
		return arch.Simba(), nil
	case "diannao":
		return arch.DianNao(), nil
	case "tiny":
		return arch.Tiny(256), nil
	}
	return nil, fmt.Errorf("unknown arch preset %q (conventional|simba|diannao|tiny)", name)
}

// JobStatus is the wire view of a job (GET /v1/jobs/{id}, submit responses,
// the terminal SSE event). Result fields are present only once terminal.
type JobStatus struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	State    JobState `json:"state"`
	Workload string   `json:"workload"`
	Arch     string   `json:"arch"`

	// SubmittedMS/StartedMS/FinishedMS are Unix-epoch milliseconds (0 =
	// not yet); DeadlineMS is the job's absolute end-to-end deadline.
	SubmittedMS int64 `json:"submitted_ms"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`
	DeadlineMS  int64 `json:"deadline_ms"`

	EDP      float64 `json:"edp,omitempty"`
	EnergyPJ float64 `json:"energy_pj,omitempty"`
	Cycles   float64 `json:"cycles,omitempty"`
	// Stopped is the search's anytime stop reason (complete | deadline |
	// canceled | budget) once terminal.
	Stopped string `json:"stopped,omitempty"`
	// Attempts counts the resilient path's tries; FallbackUsed names the
	// fallback mapper that produced the mapping ("" = primary search).
	Attempts     int    `json:"attempts,omitempty"`
	FallbackUsed string `json:"fallback_used,omitempty"`
	// Mapping is the serde-encoded best mapping (sunstone/v1 JSON).
	Mapping json.RawMessage `json:"mapping,omitempty"`

	// Network fields, set on network-form jobs only. Fused echoes the
	// submission's knob; UnfusedEDP is the all-singleton baseline solved
	// in the same run; Groups is the chosen fusion cut, one entry per
	// group in chain order (singletons report pin_level -1).
	Network    string                   `json:"network,omitempty"`
	Fused      bool                     `json:"fused,omitempty"`
	UnfusedEDP float64                  `json:"unfused_edp,omitempty"`
	Groups     []serde.NetworkGroupJSON `json:"groups,omitempty"`

	Error string            `json:"error,omitempty"`
	Cause core.FailureCause `json:"cause,omitempty"`
	// WatchdogFired records that the per-job watchdog canceled a stalled
	// search; a done job with it set carries a best-so-far mapping.
	WatchdogFired bool `json:"watchdog_fired,omitempty"`
	// Recovered marks a job replayed from the write-ahead journal after a
	// restart — either re-admitted (it was unfinished) or restored as a
	// terminal record.
	Recovered bool `json:"recovered,omitempty"`
	// CheckpointEDP is the EDP of the job's last journaled best-so-far
	// checkpoint (0 = none). A recovered job warm-starts from that
	// checkpoint, so its final EDP is ≤ CheckpointEDP.
	CheckpointEDP float64 `json:"checkpoint_edp,omitempty"`
}

// Event is one SSE frame on GET /v1/jobs/{id}/events: search progress
// (phase boundaries, incumbent improvements) while running, then a terminal
// frame carrying the full JobStatus.
type Event struct {
	Kind  string `json:"kind"`
	Phase string `json:"phase,omitempty"`
	// Score is the incumbent objective value on incumbent-improved events.
	Score     float64 `json:"score,omitempty"`
	Generated uint64  `json:"generated,omitempty"`
	Evaluated uint64  `json:"evaluated,omitempty"`
	ElapsedMS int64   `json:"elapsed_ms,omitempty"`
	// Job carries the final status on the terminal frame.
	Job *JobStatus `json:"job,omitempty"`
}

// sseFrame is one buffered SSE event: a monotonically increasing per-job
// id (rendered as the SSE "id:" field so clients can resume with
// Last-Event-ID) plus the marshaled Event payload.
type sseFrame struct {
	id   uint64
	data []byte
}

// sseHistory bounds the per-job replay ring for reconnecting subscribers;
// a client further behind than this replays from wherever the ring starts
// (progress frames are advisory — the terminal frame is never dropped).
const sseHistory = 128

// checkpoint is a job's latest journaled best-so-far: the raw journal
// payload (re-emitted verbatim by compaction) and the figures of merit at
// capture time.
type checkpoint struct {
	payload  []byte
	score    float64
	edp      float64
	energyPJ float64
	cycles   float64
}

// job is the server-side record. Mutable fields are guarded by mu; lastBeat
// and flags are atomics because the search goroutine touches them from its
// progress callback.
type job struct {
	id       string
	tenant   string
	w        *tensor.Workload // nil on network-form jobs
	net      *network.Network // nil on single-workload jobs
	fused    bool             // the network submission's fused knob
	fopt     core.FusionOptions
	a        *arch.Arch
	opt      core.Options
	deadline time.Time
	// idemKey is the full dedupe-map key (tenant + NUL + Idempotency-Key)
	// this job is registered under, "" when the client sent none.
	idemKey string
	// recovered marks a job re-admitted from the journal at boot.
	recovered bool

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       core.Result
	nres      *core.NetworkResult // network-form jobs only
	err       error
	cause     core.FailureCause
	mapping   []byte
	cancel    func() // cancels the running search; nil until running
	subs      map[chan sseFrame]struct{}
	// evseq numbers SSE frames; history is the bounded replay ring;
	// terminalID is the id the terminal frame carries (assigned when the
	// subscriptions close, 0 until then).
	evseq      uint64
	history    []sseFrame
	terminalID uint64
	// ckpt is the latest best-so-far checkpoint (zero value = none);
	// submitRec / resultRec are the job's raw journal payloads, kept so
	// compaction can rewrite the live set.
	ckpt      checkpoint
	submitRec []byte
	resultRec []byte
	// restored, when non-nil, is the terminal status replayed from the
	// journal for a job that finished in a previous process life; it is
	// served verbatim and the job never runs again.
	restored *JobStatus

	userCanceled  atomic.Bool
	watchdogFired atomic.Bool
	lastBeat      atomic.Int64 // UnixNano of the last progress sign of life
	done          chan struct{}
}

func newJob(id, tenant string, w *tensor.Workload, a *arch.Arch, opt core.Options, deadline, now time.Time) *job {
	return &job{
		id: id, tenant: tenant, w: w, a: a, opt: opt, deadline: deadline,
		state: JobQueued, submitted: now,
		subs: make(map[chan sseFrame]struct{}),
		done: make(chan struct{}),
	}
}

// restoredJob builds the in-memory shell of a journal-restored terminal
// job: status is served from the snapshot, done is already closed.
func restoredJob(st JobStatus) *job {
	j := &job{
		id: st.ID, tenant: st.Tenant, state: st.State,
		subs: make(map[chan sseFrame]struct{}),
		done: make(chan struct{}),
	}
	st.Recovered = true
	j.restored = &st
	close(j.done)
	return j
}

// name is the display workload name: the single workload's, or the layer
// chain's on network-form jobs.
func (j *job) name() string {
	if j.net != nil {
		return j.net.Name
	}
	return j.w.Name
}

// beat records a sign of life for the watchdog.
func (j *job) beat() { j.lastBeat.Store(time.Now().UnixNano()) }

// sinceBeat is the time since the last sign of life.
func (j *job) sinceBeat() time.Duration {
	return time.Duration(time.Now().UnixNano() - j.lastBeat.Load())
}

// status snapshots the wire view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.restored != nil {
		return *j.restored
	}
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Workload: j.name(), Arch: j.a.Name,
		SubmittedMS: j.submitted.UnixMilli(),
		DeadlineMS:  j.deadline.UnixMilli(),
	}
	if j.net != nil {
		st.Network = j.net.Name
		st.Fused = j.fused
	}
	if !j.started.IsZero() {
		st.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMS = j.finished.UnixMilli()
	}
	if j.state.Terminal() {
		if j.res.Mapping != nil {
			st.EDP = j.res.Report.EDP
			st.EnergyPJ = j.res.Report.EnergyPJ
			st.Cycles = j.res.Report.Cycles
		}
		if j.nres != nil {
			st.EDP = j.nres.EDP
			st.EnergyPJ = j.nres.TotalEnergyPJ
			st.Cycles = j.nres.TotalCycles
			st.UnfusedEDP = j.nres.UnfusedEDP
			st.Stopped = j.nres.Stopped.String()
			for _, g := range j.nres.Groups {
				st.Groups = append(st.Groups, serde.NetworkGroupJSON{
					Layers: g.Layers, Start: g.Start, End: g.End,
					PinLevel: g.PinLevel, EnergyPJ: g.EnergyPJ, Cycles: g.Cycles,
				})
			}
		} else {
			st.Stopped = j.res.Stopped.String()
		}
		st.Attempts = len(j.res.Attempts)
		st.FallbackUsed = j.res.FallbackUsed
		st.Mapping = j.mapping
		if j.err != nil {
			st.Error = j.err.Error()
		}
		st.Cause = j.cause
		st.WatchdogFired = j.watchdogFired.Load()
	}
	st.Recovered = j.recovered
	st.CheckpointEDP = j.ckpt.edp
	return st
}

// subscribe registers an SSE listener resuming after frame id lastID (0 =
// from the start). The replay slice holds the buffered frames the client
// missed — taken under the same lock that registers the channel, so the
// handler sees every frame exactly once, no gap and no duplicate. The
// channel is closed when the job reaches a terminal state (a job already
// terminal returns an immediately-closed channel plus any missed replay);
// call off to unsubscribe early.
func (j *job) subscribe(lastID uint64) (ch chan sseFrame, replay []sseFrame, off func()) {
	ch = make(chan sseFrame, 64)
	j.mu.Lock()
	for _, f := range j.history {
		if f.id > lastID {
			replay = append(replay, f)
		}
	}
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, replay, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, replay, func() {
		j.mu.Lock()
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// publish numbers one frame, records it in the replay ring, and fans it
// out to every subscriber, dropping frames for subscribers whose buffers
// are full — a slow SSE reader loses intermediate progress, never the
// terminal status (the handler renders that itself after the channel
// closes, and a reconnect replays the ring via Last-Event-ID).
func (j *job) publish(frame []byte) {
	j.mu.Lock()
	j.evseq++
	f := sseFrame{id: j.evseq, data: frame}
	if len(j.history) >= sseHistory {
		j.history = append(j.history[:0], j.history[1:]...)
	}
	j.history = append(j.history, f)
	for ch := range j.subs {
		select {
		case ch <- f:
		default:
		}
	}
	j.mu.Unlock()
}

// closeSubs ends every subscription and stamps the terminal frame's id;
// called exactly once, at finalize.
func (j *job) closeSubs() {
	j.mu.Lock()
	j.evseq++
	j.terminalID = j.evseq
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	j.mu.Unlock()
}

// terminalFrameID returns the id assigned to the terminal SSE frame (0
// until the job is finalized).
func (j *job) terminalFrameID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalID
}

// progressFrame renders a search progress event as an SSE payload.
func progressFrame(ev obs.ProgressEvent) []byte {
	b, err := json.Marshal(Event{
		Kind:      ev.Kind.String(),
		Phase:     ev.Phase,
		Score:     ev.Score,
		Generated: ev.Generated,
		Evaluated: ev.Evaluated,
		ElapsedMS: ev.Elapsed.Milliseconds(),
	})
	if err != nil {
		return nil
	}
	return b
}

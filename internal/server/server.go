// Package server is sunstone's overload-protected scheduler service: an HTTP
// job-management front end over one shared core.Engine, built so that a
// misbehaving client, a stuck search, or a shutdown signal never takes the
// service down or loses an accepted job's result.
//
// The protection layers, outermost first:
//
//   - Admission control — per-tenant token buckets shed abusive submission
//     rates with 429 + Retry-After before any work is queued, and the job
//     queue itself is a bounded channel: when it is full, new submissions are
//     shed immediately instead of growing memory.
//
//   - Deadline propagation — every job carries an absolute end-to-end
//     deadline fixed at admission (queue wait included). It becomes both the
//     search context's deadline and Options.Timeout, so an expiring job
//     degrades to its best-so-far mapping via the anytime contract instead
//     of failing.
//
//   - Watchdog — a per-job goroutine watches the search's progress events; a
//     search silent for longer than the stall budget is canceled through the
//     resilient path, which still produces an audit-passing mapping
//     (fallback chain ends at innermost-fit, which needs no search).
//
//   - Panic containment — worker and handler panics are recovered into
//     structured *anytime.PanicError failures; one poisoned job cannot crash
//     its siblings or the process.
//
//   - Graceful drain — Drain stops admissions (503, /readyz flips), lets
//     in-flight and queued jobs run until the grace period, then cancels
//     them; the resilient path turns each cancel into a best-so-far result,
//     so every accepted job still ends with an audit-passing mapping.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/core"
	"sunstone/internal/journal"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/serde"
)

// Config parameterizes a Server. The zero value of every field selects a
// production-sane default.
type Config struct {
	// Engine is the shared compile-cache engine (nil: a fresh unbounded
	// engine). All tenants share it deliberately — identical problems
	// compile once across the whole service.
	Engine *core.Engine
	// Workers bounds concurrently running searches (default GOMAXPROCS,
	// capped at 8). Each job's search is itself parallel; per-job Threads
	// defaults to GOMAXPROCS/Workers so the pool does not oversubscribe.
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// A full queue sheds new submissions with 429.
	QueueDepth int
	// TenantRate is the per-tenant sustained admission rate in jobs per
	// second (0 disables per-tenant shaping); TenantBurst is the bucket
	// size (default 8).
	TenantRate  float64
	TenantBurst int
	// DefaultTimeout is the end-to-end deadline for submissions that set
	// no timeout_ms (default 30s); MaxTimeout clamps client-requested
	// deadlines (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// StallTimeout is the watchdog budget: a running search that emits no
	// progress event for this long is canceled (default 30s; < 0
	// disables the watchdog). Progress events fire at phase boundaries
	// and incumbent improvements, so keep this well above a single
	// level-pass on the target hardware.
	StallTimeout time.Duration
	// DrainGrace is how long Drain lets in-flight jobs keep searching
	// before canceling them down to best-so-far (default 5s).
	DrainGrace time.Duration
	// MaxJobs bounds retained job records; oldest terminal jobs are
	// evicted past it (default 4096, floored at QueueDepth+Workers+1 so
	// live jobs are never evicted).
	MaxJobs int
	// Retry is the resilient-path policy every job runs under (nil:
	// core.DefaultRetryPolicy).
	Retry *core.RetryPolicy
	// Trace, when non-nil, receives a root span per job.
	Trace *obs.Trace
	// Journal, when non-nil, makes accepted jobs durable: every submission
	// and terminal result is journaled (durably, before the client sees
	// the acknowledgment), incumbent improvements are checkpointed while
	// running, and New replays whatever the journal holds — terminal jobs
	// come back as read-only records, unfinished ones are re-admitted with
	// their original deadline and warm-started from their latest
	// checkpoint. Nil keeps the fully in-memory behavior, bit-identical to
	// a server without durability.
	Journal *journal.Journal
	// CheckpointEvery rate-limits per-job incumbent checkpoints (default
	// 1s; meaningful only with Journal set).
	CheckpointEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = core.NewEngine(0)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if floor := c.QueueDepth + c.Workers + 1; c.MaxJobs < floor {
		if c.MaxJobs <= 0 {
			c.MaxJobs = 4096
		}
		if c.MaxJobs < floor {
			c.MaxJobs = floor
		}
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = time.Second
	}
	return c
}

// Server is the scheduler service. Create with New, mount as an
// http.Handler, and call Drain (or Close) exactly once on the way out.
type Server struct {
	cfg     Config
	eng     *core.Engine
	retry   core.RetryPolicy
	buckets *tenantBuckets
	metrics *metrics
	mux     *http.ServeMux

	// jobsCtx parents every job's search context; jobsCancel is the
	// drain-grace / hard-stop lever that degrades all in-flight searches
	// to best-so-far.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc

	queue    chan *job
	workerWG sync.WaitGroup

	// jr is the optional write-ahead journal (Config.Journal). The lock
	// order is journal-internal → s.mu → j.mu (the compactor snapshot runs
	// under the journal's lock), so no journal append may ever be issued
	// while holding s.mu or any job's mu.
	jr *journal.Journal

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string          // insertion order, for listing and eviction
	idem     map[string]string // tenant+NUL+Idempotency-Key → job id
	draining bool

	seq atomic.Int64

	// hookRunning, when set by a test, runs on the worker goroutine after
	// a job enters JobRunning and before its search starts — the lever
	// deterministic occupancy/stall tests block on.
	hookRunning func(ctx context.Context, j *job)
}

// New builds a Server from cfg (zero fields defaulted). The server is ready
// to serve immediately; its worker pool is running. With Config.Journal
// set, New first replays the journal: terminal jobs are restored as
// read-only records, unfinished ones are re-admitted (warm-started from
// their latest checkpoint) ahead of any new submission — the queue is
// widened past QueueDepth if the backlog needs it, so recovery can never
// shed a previously accepted job.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		retry:   core.DefaultRetryPolicy(),
		buckets: newTenantBuckets(cfg.TenantRate, cfg.TenantBurst),
		metrics: newMetrics(),
		jobs:    make(map[string]*job),
		idem:    make(map[string]string),
		jr:      cfg.Journal,
	}
	if cfg.Retry != nil {
		s.retry = *cfg.Retry
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())

	pending := s.recover()
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	s.queue = make(chan *job, depth)
	for _, j := range pending {
		s.queue <- j
		s.metrics.queueDepth.Add(1)
	}
	if s.jr != nil {
		s.jr.SetCompactor(s.journalLiveSet)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.guard(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.guard(s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.guard(s.handleGet))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.guard(s.handleEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.guard(s.handleCancel))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.guard(s.handleStatz))
	s.mux = mux

	for range cfg.Workers {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine exposes the shared engine (e.g. for warm-cache assertions).
func (s *Server) Engine() *core.Engine { return s.eng }

// Draining reports whether admissions have stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: stop admitting (submissions get
// 503, /readyz flips to 503), let queued and running jobs finish — after
// DrainGrace their searches are canceled and degrade to best-so-far
// mappings via the resilient path — and return when every worker has
// exited. Every job accepted before Drain reaches a terminal state with a
// mapping (done) or a classified failure. ctx bounds the wait: on expiry
// in-flight searches are canceled immediately and Drain still waits for the
// (now fast) workers before returning ctx's error. Safe to call more than
// once; later calls just wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // submissions are rejected before send once draining is set
	}
	s.mu.Unlock()

	grace := time.AfterFunc(s.cfg.DrainGrace, s.jobsCancel)
	defer grace.Stop()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.jobsCancel()
		<-done
		return ctx.Err()
	}
}

// Close is the impatient Drain: cancel every in-flight search immediately
// (each still returns its best-so-far mapping) and wait for the workers.
func (s *Server) Close() error {
	s.jobsCancel()
	return s.Drain(context.Background())
}

// Stats is the /statz document.
type Stats struct {
	Engine core.EngineStats `json:"engine"`
	// Counters is the full registry snapshot: srv.* service counters plus
	// cumulative cand.* / pruned.* / eval.cache.* search-flow totals
	// accumulated across every finished job.
	Counters map[string]uint64 `json:"counters"`
	// Search is the cumulative search-flow snapshot in typed form.
	Search     obs.SearchStats `json:"search"`
	QueueDepth int64           `json:"queue_depth"`
	Running    int64           `json:"running"`
	Jobs       int             `json:"jobs"`
	Tenants    int             `json:"tenants"`
	Draining   bool            `json:"draining"`
	// Journal is the write-ahead journal's health (records, bytes, fsyncs,
	// corruption counters); nil on a server running without durability.
	Journal *journal.Stats `json:"journal,omitempty"`
	// RecoveredJobs counts jobs re-admitted or restored from the journal
	// at boot.
	RecoveredJobs uint64 `json:"recovered_jobs,omitempty"`
}

// Stats snapshots the service: engine cache, counters, gauges.
func (s *Server) Stats() Stats {
	st := Stats{
		Engine:     s.eng.Stats(),
		Counters:   make(map[string]uint64),
		Search:     obs.SnapshotSearch(s.metrics.reg),
		QueueDepth: s.metrics.queueDepth.Load(),
		Running:    s.metrics.running.Load(),
		Tenants:    s.buckets.tenants(),
		Draining:   s.Draining(),
	}
	for _, cv := range s.metrics.reg.Snapshot() {
		st.Counters[cv.Name] = cv.Value
	}
	if s.jr != nil {
		js := s.jr.Stats()
		st.Journal = &js
	}
	st.RecoveredJobs = s.metrics.recovered.Load()
	s.mu.Lock()
	st.Jobs = len(s.jobs)
	s.mu.Unlock()
	return st
}

// ---- handlers ----

// guard converts handler panics into structured 500s instead of killing the
// connection (and, under http.Server, only the goroutine — but with a
// half-written response).
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if pe := anytime.PanicErrorFrom(recover(), "http "+r.Method+" "+r.URL.Path, nil); pe != nil {
				s.metrics.panics.Inc()
				httpError(w, http.StatusInternalServerError, pe.Error())
			}
		}()
		h(w, r)
	}
}

// shedDraining rejects a submission during drain. Like the 429 shed
// paths, the 503 carries Retry-After so well-behaved clients back off
// uniformly; the hint is the drain grace — the earliest a replacement
// process could plausibly be accepting again.
func (s *Server) shedDraining(w http.ResponseWriter) {
	s.metrics.shedDrain.Inc()
	w.Header().Set("Retry-After", retryAfter(s.cfg.DrainGrace))
	httpError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.shedDraining(w)
		return
	}
	// The raw body is retained past decoding: it becomes the journal's
	// submit payload, so recovery rebuilds the job from exactly the bytes
	// the client sent.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	wl, netw, a, opt, fopt, err := req.build()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	now := time.Now()
	if ok, wait := s.buckets.allow(tenant, now); !ok {
		s.metrics.shedTenant.Inc()
		w.Header().Set("Retry-After", retryAfter(wait))
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over admission rate", tenant))
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	idemKey := r.Header.Get("Idempotency-Key")
	mapKey := ""
	if idemKey != "" {
		mapKey = tenant + "\x00" + idemKey
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shedDraining(w)
		return
	}
	if mapKey != "" {
		if prior, ok := s.idem[mapKey]; ok {
			if jj := s.jobs[prior]; jj != nil {
				s.mu.Unlock()
				// A client retry of a submission already accepted (possibly
				// in a previous process life — the dedupe map is rebuilt
				// from the journal): answer with the existing job instead of
				// double-admitting.
				s.metrics.idemHits.Inc()
				w.Header().Set("Location", "/v1/jobs/"+prior)
				writeJSON(w, http.StatusOK, jj.status())
				return
			}
			delete(s.idem, mapKey) // the prior job was evicted; admit fresh
		}
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.metrics.shedQueue.Inc()
		w.Header().Set("Retry-After", retryAfter(time.Second))
		httpError(w, http.StatusTooManyRequests, "job queue full")
		return
	}
	id := fmt.Sprintf("j%06d", s.seq.Add(1))
	j := newJob(id, tenant, wl, a, opt, now.Add(timeout), now)
	j.idemKey = mapKey
	if netw != nil {
		j.net = netw
		j.fused = req.Network.Fused
		j.fopt = fopt
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	if mapKey != "" {
		s.idem[mapKey] = id
	}
	s.evictLocked()
	s.mu.Unlock()

	// Durability commit point: the submission is journaled (fsynced) before
	// the client sees the acknowledgment, so an accepted job can never be
	// lost to a crash. Journal failure means no ack — the registration is
	// rolled back and the client told to retry.
	if s.jr != nil {
		payload, merr := json.Marshal(submitRecord{
			Tenant: tenant, IdemKey: idemKey,
			SubmittedMS: now.UnixMilli(), DeadlineMS: j.deadline.UnixMilli(),
			Request: body,
		})
		if merr == nil {
			j.mu.Lock()
			j.submitRec = payload
			j.mu.Unlock()
			merr = s.jr.AppendDurable(journal.Record{Kind: journal.KindSubmit, Job: id, Payload: payload})
		}
		if merr != nil {
			s.rollback(j, false)
			w.Header().Set("Retry-After", retryAfter(time.Second))
			httpError(w, http.StatusServiceUnavailable, "journal unavailable: "+merr.Error())
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		// The queue channel is closed; sending would panic. The journal
		// holds a submit record for a job that was never acknowledged, so
		// an abandon marker keeps a restart from resurrecting it.
		s.mu.Unlock()
		s.rollback(j, true)
		s.shedDraining(w)
		return
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.rollback(j, true)
		s.metrics.shedQueue.Inc()
		w.Header().Set("Retry-After", retryAfter(time.Second))
		httpError(w, http.StatusTooManyRequests, "job queue full")
		return
	}
	s.metrics.admitted.Inc()
	s.metrics.queueDepth.Add(1)
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// rollback unwinds a registered-but-never-acknowledged job. With abandon
// set (the submit record already reached the journal) a durable abandon
// marker is written so recovery will not resurrect a job whose client was
// told "retry".
func (s *Server) rollback(j *job, abandon bool) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if j.idemKey != "" && s.idem[j.idemKey] == j.id {
		delete(s.idem, j.idemKey)
	}
	s.mu.Unlock()
	if abandon && s.jr != nil {
		if payload, err := json.Marshal(stateRecord{State: stateAbandoned}); err == nil {
			_ = s.jr.AppendDurable(journal.Record{Kind: journal.KindState, Job: j.id, Payload: payload})
		}
	}
}

// evictLocked drops the oldest terminal job records past MaxJobs. Live jobs
// are never evicted (MaxJobs is floored above the live-set bound). Callers
// hold s.mu.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			jj := s.jobs[id]
			jj.mu.Lock()
			terminal := jj.state.Terminal()
			jj.mu.Unlock()
			if terminal {
				if jj.idemKey != "" && s.idem[jj.idemKey] == id {
					delete(s.idem, jj.idemKey)
				}
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

func (s *Server) jobByID(r *http.Request) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	byID := make(map[string]*job, len(ids))
	for _, id := range ids {
		byID[id] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		j := byID[id]
		if j == nil || (tenant != "" && j.tenant != tenant) {
			continue
		}
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	cancel := j.cancel
	j.mu.Unlock()
	if !terminal {
		j.userCanceled.Store(true)
		if cancel != nil {
			cancel()
		}
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// A reconnecting subscriber resumes where it left off: frames carry
	// SSE ids, the job keeps a bounded replay ring, and Last-Event-ID
	// selects the frames the client has not seen. A client that already
	// consumed the terminal frame gets a status snapshot and a clean end
	// of stream instead of a duplicate completion.
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			lastID = n
		}
	}
	ch, replay, off := j.subscribe(lastID)
	defer off()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if b, err := json.Marshal(j.status()); err == nil {
		writeSSE(w, "status", b)
	}
	for _, f := range replay {
		writeSSEFrame(w, f.id, "progress", f.data)
	}
	fl.Flush()
	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case frame, live := <-ch:
			if !live {
				// Terminal: the channel close happens after finalize, so
				// the status rendered here is final — mapping included.
				tid := j.terminalFrameID()
				if tid != 0 && lastID >= tid {
					return // this client already replayed the terminal frame
				}
				st := j.status()
				if b, err := json.Marshal(Event{Kind: "terminal", Job: &st}); err == nil {
					writeSSEFrame(w, tid, "done", b)
				}
				fl.Flush()
				return
			}
			writeSSEFrame(w, frame.id, "progress", frame.data)
			fl.Flush()
		case <-ping.C:
			io.WriteString(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// ---- worker pool ----

func (s *Server) runJob(j *job) {
	s.metrics.queueDepth.Add(-1)
	if j.userCanceled.Load() {
		// Canceled while queued: never ran, terminal without a result.
		s.finalize(j, core.Result{}, nil)
		return
	}
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	if s.jr != nil {
		if payload, err := json.Marshal(stateRecord{State: stateRunning, MS: time.Now().UnixMilli()}); err == nil {
			_ = s.jr.Append(journal.Record{Kind: journal.KindState, Job: j.id, Payload: payload})
		}
	}
	s.metrics.running.Add(1)
	defer s.metrics.running.Add(-1)

	// The job context carries the absolute end-to-end deadline fixed at
	// admission (queue wait already consumed part of it) and descends
	// from jobsCtx so drain-grace expiry cancels every search at once.
	jctx, cancel := context.WithDeadline(s.jobsCtx, j.deadline)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	if s.cfg.Trace != nil {
		sp := s.cfg.Trace.StartRoot("job "+j.id).
			Arg("tenant", j.tenant).Arg("workload", j.name())
		defer sp.End()
		jctx = obs.WithSpan(jctx, sp)
	}

	j.beat()
	stopWatchdog := s.watch(j, cancel)
	defer stopWatchdog()

	opt := j.opt
	opt.Threads = s.jobThreads(opt.Threads)
	if rem := time.Until(j.deadline); rem > 0 {
		opt.Timeout = rem
	}
	// ckptLim rate-bounds checkpoint writes; only the progress callback's
	// goroutine (the search driver) touches it.
	ckptLim := obs.Limiter{MinInterval: s.cfg.CheckpointEvery}
	opt.Progress = func(ev obs.ProgressEvent) {
		j.beat()
		if s.jr != nil && j.w != nil && ev.Kind == obs.IncumbentImproved {
			if m, ok := ev.Incumbent.(*mapping.Mapping); ok && m != nil && ckptLim.Allow(time.Now()) {
				s.writeCheckpoint(j, m, ev)
			}
		}
		if f := progressFrame(ev); f != nil {
			j.publish(f)
		}
	}

	if s.hookRunning != nil {
		s.hookRunning(jctx, j)
	}

	var res core.Result
	var err error
	func() {
		defer func() {
			if pe := anytime.PanicErrorFrom(recover(), "job "+j.id, nil); pe != nil {
				err = pe
				s.metrics.panics.Inc()
			}
		}()
		if j.net != nil {
			// Network-form job: one fusion-aware (or, with max_group 1,
			// plain per-layer) schedule of the whole chain. Member
			// searches run through the same resilient path as single
			// jobs.
			fopt := j.fopt
			if fopt.Resilience == nil {
				fopt.Resilience = &s.retry
			}
			var nr core.NetworkResult
			nr, err = s.eng.SolveNetworkFused(jctx, j.net, j.a, opt, fopt)
			if err == nil {
				j.mu.Lock()
				j.nres = &nr
				j.mu.Unlock()
				for _, g := range nr.Groups {
					for _, m := range g.Members {
						s.metrics.addSearch(m.Stats)
					}
				}
			}
			return
		}
		res, err = s.eng.OptimizeResilient(jctx, j.w, j.a, opt, s.retry)
	}()
	s.finalize(j, res, err)
}

// jobThreads resolves a job's search worker-pool size. Each job's fair
// share is GOMAXPROCS divided across the Workers slots (floored at 1), so
// the pool never oversubscribes the box. A submission may request fewer
// threads than its share; a larger (or zero) request gets the full share.
func (s *Server) jobThreads(requested int) int {
	share := runtime.GOMAXPROCS(0) / s.cfg.Workers
	if share < 1 {
		share = 1
	}
	if requested > 0 && requested < share {
		return requested
	}
	return share
}

// watch starts the per-job watchdog: cancel the search when it goes silent
// for longer than StallTimeout. Cancellation flows through the resilient
// path, which still returns a valid mapping (innermost-fit needs no
// search), so a stalled job ends done-with-best-so-far or failed-with-
// cause-watchdog — never hung.
func (s *Server) watch(j *job, cancel context.CancelFunc) (stop func()) {
	stall := s.cfg.StallTimeout
	if stall <= 0 {
		return func() {}
	}
	stopped := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(stall/4 + time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopped:
				return
			case <-tick.C:
				if j.sinceBeat() > stall {
					j.watchdogFired.Store(true)
					s.metrics.watchdog.Inc()
					cancel()
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(stopped) }) }
}

// finalize records a job's terminal state, accumulates its search-flow
// counters, journals the terminal result, and releases waiters (done
// channel, SSE subscribers).
func (s *Server) finalize(j *job, res core.Result, err error) {
	// Durability contract: a job that ever journaled a checkpoint finishes
	// no worse than that checkpoint. Chaos can degrade the resilient chain
	// (or a resumed deadline can expire) past the journaled best — promote
	// the checkpoint back to the result when that happens.
	res, err = s.promoteCheckpoint(j, res, err)
	j.mu.Lock()
	j.finished = time.Now()
	j.res = res
	if res.Mapping != nil {
		if b, eerr := serde.EncodeMapping(res.Mapping); eerr == nil {
			j.mapping = b
		}
	}
	switch {
	case err != nil:
		j.state = JobFailed
		j.err = err
		if j.watchdogFired.Load() {
			j.cause = core.CauseWatchdog
		} else {
			j.cause = core.ClassifyFailure(err, false)
		}
		s.metrics.failed.Inc()
	case j.userCanceled.Load():
		j.state = JobCanceled
		s.metrics.canceled.Inc()
	default:
		j.state = JobDone
		if j.watchdogFired.Load() {
			// Succeeded with a best-so-far mapping after the watchdog cut
			// a stalled search: record why it stopped early.
			j.cause = core.CauseWatchdog
		}
		s.metrics.done.Inc()
	}
	j.mu.Unlock()
	s.metrics.addSearch(res.Stats)
	// The terminal record reaches stable storage before waiters are
	// released: once a client observes completion, a restart replays the
	// same terminal status instead of re-running the job (no double
	// completion). Append happens outside s.mu/j.mu — see the lock-order
	// note on Server.jr.
	if s.jr != nil {
		st := j.status()
		if b, merr := json.Marshal(st); merr == nil {
			j.mu.Lock()
			j.resultRec = b
			j.mu.Unlock()
			_ = s.jr.AppendDurable(journal.Record{Kind: journal.KindResult, Job: j.id, Payload: b})
		}
	}
	close(j.done)
	j.closeSubs()
}

// ---- metrics ----

type metrics struct {
	reg *obs.Registry

	admitted, shedTenant, shedQueue, shedDrain *obs.Counter
	done, failed, canceled, watchdog, panics   *obs.Counter
	recovered, idemHits, checkpoints           *obs.Counter

	queueDepth, running obs.Gauge

	// search accumulates every finished job's Result.Stats into
	// service-lifetime flow totals, under the canonical cand.*/pruned.*
	// names so /statz, expvar, and tests key on the same strings.
	search                 *obs.SearchCounters
	cacheHits, cacheMisses *obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:         reg,
		admitted:    reg.Counter(obs.CtrSrvAdmitted),
		shedTenant:  reg.Counter(obs.CtrSrvShedTenant),
		shedQueue:   reg.Counter(obs.CtrSrvShedQueue),
		shedDrain:   reg.Counter(obs.CtrSrvShedDrain),
		done:        reg.Counter(obs.CtrSrvDone),
		failed:      reg.Counter(obs.CtrSrvFailed),
		canceled:    reg.Counter(obs.CtrSrvCanceled),
		watchdog:    reg.Counter(obs.CtrSrvWatchdog),
		panics:      reg.Counter(obs.CtrSrvPanics),
		recovered:   reg.Counter(obs.CtrSrvRecovered),
		idemHits:    reg.Counter(obs.CtrSrvIdemHit),
		checkpoints: reg.Counter(obs.CtrSrvCheckpoint),
		search:      obs.NewSearchCounters(reg),
		cacheHits:   reg.Counter(obs.CtrCacheHits),
		cacheMisses: reg.Counter(obs.CtrCacheMisses),
	}
}

func (m *metrics) addSearch(st obs.SearchStats) {
	m.search.Generated.Add(st.Generated)
	m.search.Evaluated.Add(st.Evaluated)
	m.search.Deduped.Add(st.Deduped)
	m.search.Skipped.Add(st.Skipped)
	m.search.PrunedOrdering.Add(st.PrunedOrdering)
	m.search.PrunedTiling.Add(st.PrunedTiling)
	m.search.PrunedUnrolling.Add(st.PrunedUnrolling)
	m.search.PrunedBound.Add(st.PrunedBound)
	m.search.PrunedBeam.Add(st.PrunedBeam)
	m.cacheHits.Add(st.EvalCacheHits)
	m.cacheMisses.Add(st.EvalCacheMisses)
}

// ---- wire helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeSSE(w io.Writer, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// writeSSEFrame renders an event with an SSE id line, the hook
// Last-Event-ID resumption hangs off. id 0 (a restored job's terminal
// frame, which predates this process's sequence) omits the line.
func writeSSEFrame(w io.Writer, id uint64, event string, data []byte) {
	if id == 0 {
		writeSSE(w, event, data)
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
}

// retryAfter renders a wait as a whole-seconds Retry-After value (min 1).
func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if d%time.Second != 0 || secs < 1 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"sunstone/internal/core"
	"sunstone/internal/serde"
)

// tinyConv is a submission that searches in well under a millisecond.
const tinyConv = `{"tenant":%q,"arch":"tiny","conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1}}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = -1 // most tests do not want watchdog timing in play
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s
}

func do(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, JobStatus) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var st JobStatus
	if rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, st
}

func submit(t *testing.T, s *Server, body string) JobStatus {
	t.Helper()
	rec, st := do(t, s, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", rec.Code, rec.Body.String())
	}
	return st
}

// waitTerminal polls a job until it leaves the live states.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, st := do(t, s, "GET", "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, rec.Code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// mustValidMapping decodes a terminal job's mapping against the problem it
// was scheduled for — the drain/deadline guarantee is not "some bytes came
// back" but "a valid mapping came back" (DecodeMapping re-validates every
// loop nest against the workload and architecture).
func mustValidMapping(t *testing.T, s *Server, st JobStatus) {
	t.Helper()
	if len(st.Mapping) == 0 {
		t.Fatalf("job %s (%s): no mapping", st.ID, st.State)
	}
	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	if j == nil {
		t.Fatalf("job %s: record evicted", st.ID)
	}
	if _, err := serde.DecodeMapping(st.Mapping, j.w, j.a); err != nil {
		t.Fatalf("job %s: mapping does not validate: %v", st.ID, err)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	st := submit(t, s, fmt.Sprintf(tinyConv, "acme"))
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}
	if st.DeadlineMS <= st.SubmittedMS {
		t.Fatalf("deadline %d not after submission %d", st.DeadlineMS, st.SubmittedMS)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	if fin.Stopped != "complete" {
		t.Errorf("stopped = %q, want complete", fin.Stopped)
	}
	if fin.EDP <= 0 {
		t.Errorf("EDP = %v, want > 0", fin.EDP)
	}
	mustValidMapping(t, s, fin)
	stats := s.Stats()
	if stats.Counters["srv.jobs.admitted"] != 1 || stats.Counters["srv.jobs.done"] != 1 {
		t.Errorf("counters = %v", stats.Counters)
	}
	if stats.Search.Generated == 0 || stats.Search.Evaluated == 0 {
		t.Errorf("cumulative search flow not accumulated: %+v", stats.Search)
	}
}

func TestSubmitDescribeForm(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	body := `{"arch":"tiny","describe":"dimensions = {K:2, C:2, P:3, R:2}\ntensor_description = {\n in = [C, (P, R)],\n w = [K, C, R],\n output = [K, P]\n}"}`
	st := submit(t, s, body)
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	mustValidMapping(t, s, fin)
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"empty body", `{}`},
		{"two workload forms", `{"describe":"x","conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1}}`},
		{"bad conv dims", `{"conv":{"K":0,"C":1,"P":1,"Q":1,"R":1,"S":1}}`},
		{"unknown arch", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"arch":"tpu"}`},
		{"arch and arch_json", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"arch":"tiny","arch_json":{}}`},
		{"unknown objective", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"options":{"objective":"speed"}}`},
		{"unknown direction", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"options":{"direction":"sideways"}}`},
		{"negative timeout", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"timeout_ms":-5}`},
		{"negative threads", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"options":{"threads":-1}}`},
		{"threads above maximum", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"options":{"threads":5000}}`},
		{"unknown field", `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"wrokload":"typo"}`},
		{"not json", `not json at all`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, _ := do(t, s, "POST", "/v1/jobs", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), "error") {
				t.Fatalf("no error payload: %s", rec.Body.String())
			}
		})
	}
	if got := s.Stats().Counters["srv.jobs.admitted"]; got != 0 {
		t.Errorf("validation failures admitted %d jobs", got)
	}
}

// TestSubmitThreads pins the per-job thread contract: a bounded threads
// request is accepted and runs to done, and the effective pool size honors
// a smaller request while capping larger (or zero) ones at the per-job fair
// share — one tenant cannot oversubscribe the box.
func TestSubmitThreads(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	st := submit(t, s, `{"arch":"tiny","conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},"options":{"threads":2}}`)
	if fin := waitTerminal(t, s, st.ID); fin.State != JobDone {
		t.Fatalf("state %s, want done (error %q)", fin.State, fin.Error)
	}

	share := runtime.GOMAXPROCS(0) / 2
	if share < 1 {
		share = 1
	}
	if got := s.jobThreads(0); got != share {
		t.Errorf("jobThreads(0) = %d, want fair share %d", got, share)
	}
	if got := s.jobThreads(1); got != 1 {
		t.Errorf("jobThreads(1) = %d, want 1", got)
	}
	if got := s.jobThreads(core.MaxThreads); got != share {
		t.Errorf("jobThreads(%d) = %d, want capped at share %d", core.MaxThreads, got, share)
	}
}

// TestQueueFullSheds pins the load-shedding guarantee: with one worker
// blocked and the one-slot queue occupied, further submissions are shed
// with 429 + Retry-After while both accepted jobs still run to done.
func TestQueueFullSheds(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.hookRunning = func(ctx context.Context, j *job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	a := submit(t, s, fmt.Sprintf(tinyConv, "t1"))
	// Wait until the worker owns job A so the queue slot is truly free.
	for {
		_, st := do(t, s, "GET", "/v1/jobs/"+a.ID, "")
		if st.State == JobRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b := submit(t, s, fmt.Sprintf(tinyConv, "t2")) // occupies the queue slot

	rec, _ := do(t, s, "POST", "/v1/jobs", fmt.Sprintf(tinyConv, "t3"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
	for _, id := range []string{a.ID, b.ID} {
		fin := waitTerminal(t, s, id)
		if fin.State != JobDone {
			t.Errorf("job %s: state %q (error %q)", id, fin.State, fin.Error)
		}
		mustValidMapping(t, s, fin)
	}
	stats := s.Stats()
	if stats.Counters["srv.shed.queue-full"] != 1 {
		t.Errorf("shed.queue-full = %d, want 1", stats.Counters["srv.shed.queue-full"])
	}
	if stats.Counters["srv.jobs.admitted"] != 2 {
		t.Errorf("admitted = %d, want 2", stats.Counters["srv.jobs.admitted"])
	}
}

func TestTenantRateSheds(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TenantRate: 0.01, TenantBurst: 1})
	submit(t, s, fmt.Sprintf(tinyConv, "greedy"))
	rec, _ := do(t, s, "POST", "/v1/jobs", fmt.Sprintf(tinyConv, "greedy"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Another tenant is unaffected by greedy's empty bucket.
	submit(t, s, fmt.Sprintf(tinyConv, "patient"))
	if got := s.Stats().Counters["srv.shed.tenant-rate"]; got != 1 {
		t.Errorf("shed.tenant-rate = %d, want 1", got)
	}
}

// TestDrainReturnsBestSoFar pins the drain guarantee: SIGTERM-style Drain
// with a running job and a queued job completes both with audit-passing
// mappings (the running search is cut at the grace deadline and degrades to
// best-so-far), readiness flips, new submissions get 503 — and no server
// goroutines outlive the drain.
func TestDrainReturnsBestSoFar(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 1, QueueDepth: 4, DrainGrace: 30 * time.Millisecond, StallTimeout: -1})
	s.hookRunning = func(ctx context.Context, j *job) {
		<-ctx.Done() // hold the search until drain-grace cancels it
	}
	running := submit(t, s, fmt.Sprintf(tinyConv, "a"))
	queued := submit(t, s, fmt.Sprintf(tinyConv, "b"))

	if rec, _ := do(t, s, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", rec.Code)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if rec, _ := do(t, s, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", rec.Code)
	}
	rec, _ := do(t, s, "POST", "/v1/jobs", fmt.Sprintf(tinyConv, "late"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: %d, want 503", rec.Code)
	}

	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never returned")
	}

	// Every accepted job is terminal with an audit-passing mapping, even
	// though the running one was canceled mid-search by the grace timer.
	for _, id := range []string{running.ID, queued.ID} {
		_, fin := do(t, s, "GET", "/v1/jobs/"+id, "")
		if !fin.State.Terminal() {
			t.Fatalf("job %s not terminal after drain: %q", id, fin.State)
		}
		if fin.State != JobDone {
			t.Errorf("job %s: state %q (error %q), want done with best-so-far", id, fin.State, fin.Error)
		}
		mustValidMapping(t, s, fin)
	}
	if got := s.Stats().Counters["srv.shed.draining"]; got == 0 {
		t.Error("shed.draining counter never moved")
	}

	// Drained means drained: the worker pool and watchdogs are gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
}

// TestDeadlinePropagation: a submission's timeout_ms becomes the search's
// end-to-end budget; expiry yields a done job whose Stopped records the
// deadline, still with a valid mapping (anytime contract).
func TestDeadlinePropagation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	body := `{"arch":"conventional","timeout_ms":60,"conv":{"N":1,"K":64,"C":64,"P":28,"Q":28,"R":3,"S":3}}`
	st := submit(t, s, body)
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	mustValidMapping(t, s, fin)
	if fin.FinishedMS-fin.SubmittedMS > 20_000 {
		t.Errorf("60ms-deadline job took %dms", fin.FinishedMS-fin.SubmittedMS)
	}
}

// TestWatchdogCutsStalledSearch: a search that stops emitting progress is
// canceled by the watchdog and lands terminal with the watchdog cause
// recorded — never hung.
func TestWatchdogCutsStalledSearch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, StallTimeout: 40 * time.Millisecond})
	s.hookRunning = func(ctx context.Context, j *job) {
		<-ctx.Done() // stall silently: no beats until canceled
	}
	st := submit(t, s, fmt.Sprintf(tinyConv, "stuck"))
	fin := waitTerminal(t, s, st.ID)
	if !fin.WatchdogFired {
		t.Fatalf("watchdog did not fire (state %q, cause %q)", fin.State, fin.Cause)
	}
	if fin.Cause != core.CauseWatchdog {
		t.Errorf("cause = %q, want %q", fin.Cause, core.CauseWatchdog)
	}
	if fin.State != JobDone {
		t.Errorf("state = %q, want done with best-so-far", fin.State)
	}
	mustValidMapping(t, s, fin)
	if got := s.Stats().Counters["srv.watchdog.fired"]; got != 1 {
		t.Errorf("watchdog.fired = %d, want 1", got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	s.hookRunning = func(ctx context.Context, j *job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	run := submit(t, s, fmt.Sprintf(tinyConv, "a"))
	for {
		_, st := do(t, s, "GET", "/v1/jobs/"+run.ID, "")
		if st.State == JobRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	que := submit(t, s, fmt.Sprintf(tinyConv, "a"))

	// Cancel the queued job: it must go terminal without ever running.
	do(t, s, "DELETE", "/v1/jobs/"+que.ID, "")
	// Cancel the running job: its search context ends, the hook returns,
	// and the resilient search degrades under the canceled context.
	do(t, s, "DELETE", "/v1/jobs/"+run.ID, "")

	finRun := waitTerminal(t, s, run.ID)
	finQue := waitTerminal(t, s, que.ID)
	if finRun.State != JobCanceled {
		t.Errorf("running job: state %q, want canceled", finRun.State)
	}
	if finQue.State != JobCanceled {
		t.Errorf("queued job: state %q, want canceled", finQue.State)
	}
	if finQue.StartedMS != 0 {
		t.Errorf("queued job ran anyway (started_ms %d)", finQue.StartedMS)
	}
	if got := s.Stats().Counters["srv.jobs.canceled"]; got != 2 {
		t.Errorf("canceled = %d, want 2", got)
	}
	// A second cancel of a terminal job is a harmless no-op.
	rec, st := do(t, s, "DELETE", "/v1/jobs/"+run.ID, "")
	if rec.Code != http.StatusAccepted || st.State != JobCanceled {
		t.Errorf("re-cancel: %d %q", rec.Code, st.State)
	}
}

// TestMultiTenantSharedEngine drives concurrent submissions of the same
// problem from many tenants through one Engine and checks the warm-cache
// effect: far fewer compilations than jobs, visible cache hits. Run under
// -race this is also the service's central concurrency test.
func TestMultiTenantSharedEngine(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	const jobs = 12
	ids := make([]string, 0, jobs)
	for i := range jobs {
		st := submit(t, s, fmt.Sprintf(tinyConv, fmt.Sprintf("tenant-%d", i%3)))
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		fin := waitTerminal(t, s, id)
		if fin.State != JobDone {
			t.Fatalf("job %s: state %q (error %q)", id, fin.State, fin.Error)
		}
		mustValidMapping(t, s, fin)
	}
	es := s.Engine().Stats()
	if es.Hits == 0 {
		t.Errorf("no warm-cache hits across %d identical jobs: %+v", jobs, es)
	}
	if es.Compiles >= jobs {
		t.Errorf("compiles = %d for %d identical jobs; cache not shared", es.Compiles, jobs)
	}
	rec, _ := do(t, s, "GET", "/v1/jobs?tenant=tenant-0", "")
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Jobs) != 4 {
		t.Errorf("tenant-0 list has %d jobs, want 4", len(list.Jobs))
	}
}

// TestEventsStream reads the SSE feed end to end: status snapshot first,
// then a terminal "done" event whose embedded job carries the mapping.
func TestEventsStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	st := submit(t, s, fmt.Sprintf(tinyConv, "sse"))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	var event, data string
	var terminal *Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event == "done":
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("terminal event: %v (%s)", err, data)
			}
			terminal = &ev
		}
		if terminal != nil {
			break
		}
	}
	if terminal == nil {
		t.Fatalf("stream ended without a done event (scan err %v)", sc.Err())
	}
	if terminal.Job == nil || !terminal.Job.State.Terminal() {
		t.Fatalf("terminal event job = %+v", terminal.Job)
	}
	if terminal.Job.State == JobDone {
		mustValidMapping(t, s, *terminal.Job)
	}
}

// TestHandlerPanicIsContained: a panicking handler yields a structured 500
// and moves the panic counter; the server keeps serving.
func TestHandlerPanicIsContained(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.mux.HandleFunc("GET /boom", s.guard(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec, _ := do(t, s, "GET", "/boom", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "kaboom") {
		t.Errorf("panic detail lost: %s", rec.Body.String())
	}
	if got := s.Stats().Counters["srv.panics.recovered"]; got != 1 {
		t.Errorf("panics.recovered = %d, want 1", got)
	}
	// Still alive.
	if rec, _ := do(t, s, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("healthz after panic: %d", rec.Code)
	}
}

func TestUnknownJob404(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		rec, _ := do(t, s, "GET", path, "")
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, rec.Code)
		}
	}
	if rec, _ := do(t, s, "DELETE", "/v1/jobs/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("DELETE: %d, want 404", rec.Code)
	}
}

// TestTerminalJobEviction: past MaxJobs the oldest terminal records go away
// but live jobs are untouchable.
func TestTerminalJobEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxJobs: 4})
	// MaxJobs is floored at QueueDepth+Workers+1 = 4.
	var first JobStatus
	for i := range 8 {
		st := submit(t, s, fmt.Sprintf(tinyConv, "evict"))
		if i == 0 {
			first = st
		}
		waitTerminal(t, s, st.ID)
	}
	rec, _ := do(t, s, "GET", "/v1/jobs/"+first.ID, "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("oldest terminal job still present: %d", rec.Code)
	}
	if got := s.Stats().Jobs; got > 4 {
		t.Errorf("retained jobs = %d, want <= 4", got)
	}
}

func TestDebugHandler(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st := submit(t, s, fmt.Sprintf(tinyConv, "dbg"))
	waitTerminal(t, s, st.ID)
	dh := s.DebugHandler()
	rec := httptest.NewRecorder()
	dh.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	var stats Stats
	if err := json.Unmarshal(vars["sunstone"], &stats); err != nil {
		t.Fatalf("sunstone expvar: %v", err)
	}
	if stats.Counters["srv.jobs.done"] != 1 {
		t.Errorf("expvar counters = %v", stats.Counters)
	}
	if stats.Engine.Compiles == 0 {
		t.Errorf("expvar engine stats empty: %+v", stats.Engine)
	}
	rec = httptest.NewRecorder()
	dh.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", rec.Code)
	}
}

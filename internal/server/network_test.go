package server

import (
	"fmt"
	"net/http"
	"testing"
)

// tinyChain is a two-layer network submission whose member searches finish
// in well under a millisecond (the network analog of tinyConv).
const tinyChain = `{"arch":"tiny","options":{"beam_width":4},` +
	`"network":{"fused":%v,"layers":[` +
	`{"K":4,"C":4,"P":4,"Q":4,"R":1,"S":1},` +
	`{"K":4,"C":4,"P":4,"Q":4,"R":1,"S":1}]}}`

func TestNetworkJobFused(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	st := submit(t, s, fmt.Sprintf(tinyChain, true))
	if st.Network != "network" || !st.Fused {
		t.Fatalf("submit echo: network=%q fused=%v", st.Network, st.Fused)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	if fin.Stopped != "complete" {
		t.Errorf("stopped = %q, want complete", fin.Stopped)
	}
	if fin.EDP <= 0 || fin.UnfusedEDP <= 0 {
		t.Errorf("totals missing: edp %v, unfused %v", fin.EDP, fin.UnfusedEDP)
	}
	if fin.EDP > fin.UnfusedEDP {
		t.Errorf("fused EDP %v worse than the unfused baseline %v", fin.EDP, fin.UnfusedEDP)
	}
	if len(fin.Mapping) != 0 {
		t.Error("network jobs report per-group schedules, not a single mapping")
	}
	// The reported fusion cut tiles the chain.
	at := 0
	for _, g := range fin.Groups {
		if g.Start != at || len(g.Layers) != g.End-g.Start {
			t.Fatalf("groups do not tile the chain: %+v", fin.Groups)
		}
		if g.End-g.Start == 1 && g.PinLevel != -1 {
			t.Errorf("singleton group reports pin level %d", g.PinLevel)
		}
		at = g.End
	}
	if at != 2 {
		t.Fatalf("groups cover %d of 2 positions: %+v", at, fin.Groups)
	}
}

func TestNetworkJobUnfusedBaseline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	fin := waitTerminal(t, s, submit(t, s, fmt.Sprintf(tinyChain, false)).ID)
	if fin.State != JobDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	if fin.Fused {
		t.Error("unfused job echoed fused=true")
	}
	if fin.EDP != fin.UnfusedEDP {
		t.Errorf("unfused job: EDP %v != baseline %v", fin.EDP, fin.UnfusedEDP)
	}
	for _, g := range fin.Groups {
		if g.End-g.Start != 1 || g.PinLevel != -1 {
			t.Errorf("unfused job produced a fused group: %+v", g)
		}
	}
}

func TestNetworkJobValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"two forms": `{"conv":{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1},` +
			`"network":{"preset":"transformer"}}`,
		"preset and layers": `{"network":{"preset":"transformer",` +
			`"layers":[{"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1}]}}`,
		"neither":            `{"network":{}}`,
		"unknown preset":     `{"network":{"preset":"vgg16"}}`,
		"max_group unfused":  `{"network":{"preset":"transformer","max_group":3}}`,
		"negative max_group": `{"network":{"preset":"transformer","fused":true,"max_group":-1}}`,
		"transformer batch":  `{"network":{"preset":"transformer","batch":4}}`,
		"bad layer geometry": `{"network":{"layers":[{"K":0,"C":1,"P":1,"Q":1,"R":1,"S":1}]}}`,
		"layer sets batch":   `{"network":{"layers":[{"N":2,"K":1,"C":1,"P":1,"Q":1,"R":1,"S":1}]}}`,
		"non-edp objective":  `{"network":{"preset":"transformer"},"options":{"objective":"energy"}}`,
	} {
		rec, _ := do(t, s, "POST", "/v1/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, rec.Code, rec.Body.String())
		}
	}
}

package server

import (
	"math"
	"sync"
	"time"
)

// maxTenants bounds the admission map: an attacker cycling tenant names must
// not grow server memory without bound. Past the cap, stale full buckets are
// swept; if every bucket is mid-refill (pathological), the oldest is evicted
// — which only ever errs toward admitting, never toward leaking memory.
const maxTenants = 4096

// tenantBuckets is per-tenant token-bucket admission control. Each tenant
// accrues rate tokens/second up to burst; a submission spends one token or
// is shed with a retry hint. Unknown tenants start with a full bucket, so
// bursts up to the burst size are always admitted before shaping kicks in.
type tenantBuckets struct {
	rate  float64 // tokens per second; <= 0 disables shaping entirely
	burst float64

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantBuckets(rate float64, burst int) *tenantBuckets {
	if burst < 1 {
		burst = 1
	}
	return &tenantBuckets{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// allow spends one token from tenant's bucket. When the bucket is empty it
// returns false and the wait until a token accrues (the Retry-After hint).
func (tb *tenantBuckets) allow(tenant string, now time.Time) (bool, time.Duration) {
	if tb.rate <= 0 {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b, ok := tb.m[tenant]
	if !ok {
		if len(tb.m) >= maxTenants {
			tb.sweep(now)
		}
		b = &bucket{tokens: tb.burst, last: now}
		tb.m[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(tb.burst, b.tokens+dt*tb.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / tb.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// sweep drops buckets that have refilled to full — a full bucket holds no
// state an admission decision needs (a fresh bucket behaves identically).
// Callers hold mu. If nothing is full, the least-recently-touched bucket is
// evicted to keep the map bounded.
func (tb *tenantBuckets) sweep(now time.Time) {
	var oldestKey string
	var oldest time.Time
	for k, b := range tb.m {
		tokens := b.tokens
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			tokens = math.Min(tb.burst, tokens+dt*tb.rate)
		}
		if tokens >= tb.burst {
			delete(tb.m, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(tb.m) >= maxTenants && oldestKey != "" {
		delete(tb.m, oldestKey)
	}
}

// tenants reports how many buckets are live (for tests and /statz).
func (tb *tenantBuckets) tenants() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return len(tb.m)
}

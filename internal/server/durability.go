package server

// This file is the server side of the -data-dir durability subsystem: the
// journal payload schemas, boot-time recovery (restore terminal jobs,
// re-admit unfinished ones with a checkpoint warm start), the rate-limited
// incumbent checkpoint writer, the checkpoint-promotion guarantee, and the
// compaction live-set snapshot. See internal/journal for the on-disk
// format and docs/DESIGN.md "Durability & crash recovery" for the
// contracts.

import (
	"encoding/json"
	"fmt"
	"time"

	"sunstone/internal/core"
	"sunstone/internal/cost"
	"sunstone/internal/journal"
	"sunstone/internal/mapping"
	"sunstone/internal/obs"
	"sunstone/internal/serde"
)

// submitRecord is the journal payload of a KindSubmit record: enough to
// re-admit the job byte-identically — the client's raw request body plus
// the admission-time facts that are not in it.
type submitRecord struct {
	Tenant      string          `json:"tenant,omitempty"`
	IdemKey     string          `json:"idem_key,omitempty"`
	SubmittedMS int64           `json:"submitted_ms"`
	DeadlineMS  int64           `json:"deadline_ms"`
	Request     json.RawMessage `json:"request"`
}

// stateRecord is the journal payload of a KindState record.
type stateRecord struct {
	State string `json:"state"`
	MS    int64  `json:"ms,omitempty"`
}

const (
	// stateRunning marks the queued → running transition (informational).
	stateRunning = "running"
	// stateAbandoned marks a job whose submit record reached the journal
	// but whose client was never acknowledged (post-journal shed); recovery
	// must not resurrect it.
	stateAbandoned = "abandoned"
)

// recover replays the journal into the job table. Terminal jobs come back
// as read-only restored records; unfinished jobs are returned for
// re-admission, each warm-started from its latest decodable checkpoint and
// keeping its original absolute deadline (an already-expired deadline
// resolves to the warm-start incumbent via the anytime contract — the
// job still terminates with an audit-passing mapping, never silently
// disappears). Runs before the worker pool exists, so no locking beyond
// the shared maps' own invariants is needed; it still takes the locks the
// running system would, to keep the lock-order story uniform.
func (s *Server) recover() []*job {
	if s.jr == nil {
		return nil
	}
	type replayed struct {
		submit    *submitRecord
		submitRaw json.RawMessage
		ckpt      json.RawMessage
		result    json.RawMessage
		abandoned bool
	}
	byID := make(map[string]*replayed)
	var order []string
	var maxSeq int64
	for _, rec := range s.jr.TakeReplayed() {
		if rec.Job == "" {
			continue
		}
		r := byID[rec.Job]
		if r == nil {
			r = &replayed{}
			byID[rec.Job] = r
			order = append(order, rec.Job)
			var n int64
			if _, err := fmt.Sscanf(rec.Job, "j%06d", &n); err == nil && n > maxSeq {
				maxSeq = n
			}
		}
		switch rec.Kind {
		case journal.KindSubmit:
			var sr submitRecord
			if json.Unmarshal(rec.Payload, &sr) == nil {
				r.submit = &sr
				r.submitRaw = rec.Payload
			}
		case journal.KindCheckpoint:
			r.ckpt = rec.Payload // later records supersede: keep the last
		case journal.KindResult:
			r.result = rec.Payload
		case journal.KindState:
			var st stateRecord
			if json.Unmarshal(rec.Payload, &st) == nil && st.State == stateAbandoned {
				r.abandoned = true
			}
		}
	}
	// New ids start past everything the journal ever named, so a recovered
	// id can never be reissued to a new submission.
	if maxSeq > s.seq.Load() {
		s.seq.Store(maxSeq)
	}

	var pending []*job
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range order {
		r := byID[id]
		if r.abandoned {
			continue
		}
		var j *job
		switch {
		case r.result != nil:
			var st JobStatus
			if json.Unmarshal(r.result, &st) != nil {
				continue
			}
			st.ID = id
			j = restoredJob(st)
			j.submitRec = r.submitRaw
			j.resultRec = r.result
		case r.submit != nil:
			j = s.readmit(id, r.submit, r.submitRaw, r.ckpt)
			if j.restored == nil {
				pending = append(pending, j)
			}
		default:
			continue // stray checkpoint/state records with no submit
		}
		if r.submit != nil && r.submit.IdemKey != "" {
			tenant := r.submit.Tenant
			if tenant == "" {
				tenant = "default"
			}
			key := tenant + "\x00" + r.submit.IdemKey
			j.idemKey = key
			s.idem[key] = id
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.metrics.recovered.Inc()
	}
	return pending
}

// readmit rebuilds one unfinished job from its journaled submission. A
// request that no longer builds (a quarantined segment can lose part of
// it) must still not lose the job: it comes back as a terminal failure
// record instead. Checkpoint decoding is best-effort — a bad checkpoint
// degrades to a cold re-run of the job, never to a lost one.
func (s *Server) readmit(id string, sr *submitRecord, raw, ckpt json.RawMessage) *job {
	tenant := sr.Tenant
	if tenant == "" {
		tenant = "default"
	}
	fail := func(err error) *job {
		j := restoredJob(JobStatus{
			ID: id, Tenant: tenant, State: JobFailed,
			SubmittedMS: sr.SubmittedMS, DeadlineMS: sr.DeadlineMS,
			Error: "crash recovery could not rebuild the job: " + err.Error(),
		})
		j.submitRec = raw
		return j
	}
	var req SubmitRequest
	if err := json.Unmarshal(sr.Request, &req); err != nil {
		return fail(err)
	}
	wl, netw, a, opt, fopt, err := req.build()
	if err != nil {
		return fail(err)
	}
	j := newJob(id, tenant, wl, a, opt, time.UnixMilli(sr.DeadlineMS), time.UnixMilli(sr.SubmittedMS))
	j.recovered = true
	j.submitRec = raw
	if netw != nil {
		j.net = netw
		j.fused = req.Network.Fused
		j.fopt = fopt
	}
	if len(ckpt) > 0 && wl != nil {
		if cp, m, cerr := serde.DecodeCheckpoint(ckpt, wl, a); cerr == nil {
			j.opt.WarmStart = m
			j.ckpt = checkpoint{
				payload: ckpt, score: cp.Score,
				edp: cp.EDP, energyPJ: cp.EnergyPJ, cycles: cp.Cycles,
			}
		}
	}
	return j
}

// writeCheckpoint journals the search's new best-so-far. Lossy by design
// (plain append, rate-limited by the caller); a checkpoint that is not
// strictly better than the one already held is skipped, so the journaled
// checkpoint only ever improves — a resilient-path retry restarting from
// scratch cannot regress it.
func (s *Server) writeCheckpoint(j *job, m *mapping.Mapping, ev obs.ProgressEvent) {
	edp := ev.EnergyPJ * ev.Cycles
	j.mu.Lock()
	stale := j.ckpt.payload != nil && ev.Score >= j.ckpt.score
	j.mu.Unlock()
	if stale {
		return
	}
	payload, err := serde.EncodeCheckpoint(j.id, m, ev.Score, edp, ev.EnergyPJ, ev.Cycles)
	if err != nil {
		return
	}
	j.mu.Lock()
	j.ckpt = checkpoint{payload: payload, score: ev.Score, edp: edp, energyPJ: ev.EnergyPJ, cycles: ev.Cycles}
	j.mu.Unlock()
	if s.jr.Append(journal.Record{Kind: journal.KindCheckpoint, Job: j.id, Payload: payload}) == nil {
		s.metrics.checkpoints.Inc()
	}
}

// promoteCheckpoint enforces the durability contract at finalize: a job
// that ever journaled a checkpoint finishes no worse than that checkpoint.
// When the final result is missing, failed, or strictly worse (chaos can
// degrade the resilient chain past the journaled best; a resumed job's
// deadline may already be spent), the checkpoint mapping is decoded,
// re-evaluated from scratch (panic-contained), and substituted. The
// substitution is honest: the mapping re-passes full validation and the
// reported figures come from the fresh evaluation, with FallbackUsed
// naming the journal as the source.
func (s *Server) promoteCheckpoint(j *job, res core.Result, err error) (core.Result, error) {
	if s.jr == nil || j.w == nil {
		return res, err
	}
	j.mu.Lock()
	ck := j.ckpt
	j.mu.Unlock()
	if ck.payload == nil || ck.edp <= 0 {
		return res, err
	}
	if err == nil && res.Mapping != nil && res.Report.EDP <= ck.edp {
		return res, err
	}
	var rep cost.Report
	var m *mapping.Mapping
	ok := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, mm, derr := serde.DecodeCheckpoint(ck.payload, j.w, j.a)
		if derr != nil {
			return false
		}
		model := j.opt.Model
		if model == (cost.Model{}) {
			model = cost.Default
		}
		rep = model.Evaluate(mm)
		if !rep.Valid {
			return false
		}
		m = mm
		return true
	}()
	if !ok {
		return res, err
	}
	if err == nil && res.Mapping != nil && res.Report.EDP <= rep.EDP {
		return res, err // the final result already beats the re-evaluated checkpoint
	}
	res.Mapping = m
	res.Report = rep
	res.FallbackUsed = "journal-checkpoint"
	return res, nil
}

// journalLiveSet is the compaction snapshot: the minimal record set that
// reproduces the current job table on replay — each job's submission,
// then its terminal result (terminal jobs) or its latest checkpoint
// (live jobs). Runs under the journal's internal lock (see the lock-order
// note on Server.jr), so it must not append.
func (s *Server) journalLiveSet() []journal.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []journal.Record
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		if j.submitRec != nil {
			out = append(out, journal.Record{Kind: journal.KindSubmit, Job: id, Payload: j.submitRec})
		}
		switch {
		case j.resultRec != nil:
			out = append(out, journal.Record{Kind: journal.KindResult, Job: id, Payload: j.resultRec})
		case j.ckpt.payload != nil:
			out = append(out, journal.Record{Kind: journal.KindCheckpoint, Job: id, Payload: j.ckpt.payload})
		}
		j.mu.Unlock()
	}
	return out
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sunstone/internal/arch"
	"sunstone/internal/core"
	"sunstone/internal/faults"
	"sunstone/internal/journal"
	"sunstone/internal/serde"
	"sunstone/internal/workloads"
)

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	jr, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	return jr
}

// drainClose drains the server and closes its journal — the clean-shutdown
// half of a restart cycle (the crash half just closes the journal).
func drainClose(t *testing.T, s *Server, jr *journal.Journal) {
	t.Helper()
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := jr.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
}

// TestJournalRestoreTerminal: a job that finished before the restart is
// served from its journaled terminal record — same state, same EDP, same
// mapping — and is never re-run.
func TestJournalRestoreTerminal(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, dir)
	s := New(Config{Journal: jr, StallTimeout: -1})
	first := submit(t, s, fmt.Sprintf(tinyConv, "durable"))
	fin := waitTerminal(t, s, first.ID)
	if fin.State != JobDone || len(fin.Mapping) == 0 {
		t.Fatalf("job before restart: %+v", fin)
	}
	drainClose(t, s, jr)

	jr2 := openJournal(t, dir)
	s2 := newTestServer(t, Config{Journal: jr2, StallTimeout: -1})
	t.Cleanup(func() { jr2.Close() })
	rec, got := do(t, s2, "GET", "/v1/jobs/"+first.ID, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("restored job GET: %d %s", rec.Code, rec.Body.String())
	}
	if got.State != JobDone || !got.Recovered {
		t.Fatalf("restored job: state %q recovered %v", got.State, got.Recovered)
	}
	if got.EDP != fin.EDP || string(got.Mapping) != string(fin.Mapping) {
		t.Fatalf("restored result drifted: EDP %g vs %g", got.EDP, fin.EDP)
	}
	if st := s2.Stats(); st.RecoveredJobs != 1 || st.Journal == nil {
		t.Fatalf("stats after recovery: recovered %d, journal %v", st.RecoveredJobs, st.Journal)
	}
	// The restored record is terminal in the counters' eyes too: no
	// double-completion — srv.jobs.done stays 0 on the new process.
	if st := s2.Stats(); st.Counters["srv.jobs.done"] != 0 {
		t.Fatalf("restored job was re-run: done = %d", st.Counters["srv.jobs.done"])
	}
}

// TestJournalReadmitsUnfinished: a submit record with no terminal result —
// what a SIGKILL mid-search leaves behind — is re-admitted at boot, runs,
// and finishes no worse than its journaled checkpoint.
func TestJournalReadmitsUnfinished(t *testing.T) {
	dir := t.TempDir()

	// Forge the crash leftovers: a submission plus a best-so-far
	// checkpoint, no result.
	w := workloads.Conv2D("conv", 1, 1, 1, 1, 1, 1, 1, 1, 1)
	a := arch.Tiny(256)
	prior, err := core.Optimize(w, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := serde.EncodeCheckpoint("j000007", prior.Mapping,
		prior.Report.EDP, prior.Report.EDP, prior.Report.EnergyPJ, prior.Report.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(tinyConv, "durable")
	sub, err := json.Marshal(submitRecord{
		Tenant:      "durable",
		IdemKey:     "retry-me",
		SubmittedMS: time.Now().UnixMilli(),
		DeadlineMS:  time.Now().Add(30 * time.Second).UnixMilli(),
		Request:     json.RawMessage(body),
	})
	if err != nil {
		t.Fatal(err)
	}
	jr := openJournal(t, dir)
	if err := jr.AppendDurable(journal.Record{Kind: journal.KindSubmit, Job: "j000007", Payload: sub}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Append(journal.Record{Kind: journal.KindCheckpoint, Job: "j000007", Payload: ckpt}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	jr2 := openJournal(t, dir)
	s := newTestServer(t, Config{Journal: jr2, StallTimeout: -1})
	t.Cleanup(func() { jr2.Close() })
	fin := waitTerminal(t, s, "j000007")
	if fin.State != JobDone || !fin.Recovered {
		t.Fatalf("re-admitted job: state %q recovered %v (error %q)", fin.State, fin.Recovered, fin.Error)
	}
	if fin.CheckpointEDP <= 0 {
		t.Fatalf("re-admitted job lost its checkpoint: %+v", fin)
	}
	if fin.EDP > fin.CheckpointEDP {
		t.Fatalf("resumed job finished worse than its checkpoint: %g > %g", fin.EDP, fin.CheckpointEDP)
	}
	mustValidMapping(t, s, fin)

	// New submissions never reuse a recovered id.
	fresh := submit(t, s, fmt.Sprintf(tinyConv, "durable"))
	if fresh.ID == "j000007" {
		t.Fatalf("recovered id reissued to a new submission")
	}

	// The journal-backed idempotency window spans the restart: retrying
	// the original submission replays the recovered job instead of
	// double-admitting.
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	req.Header.Set("Idempotency-Key", "retry-me")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("idempotent replay after restart: %d %s", rec.Code, rec.Body.String())
	}
	var replayed JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.ID != "j000007" {
		t.Fatalf("idempotent replay returned %q, want the recovered job", replayed.ID)
	}
}

// TestJournalAbandonedNotResurrected: a submit record followed by an
// abandon marker (a post-journal shed whose client was told to retry)
// must not come back.
func TestJournalAbandonedNotResurrected(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, dir)
	sub, _ := json.Marshal(submitRecord{
		Tenant: "t", SubmittedMS: time.Now().UnixMilli(),
		DeadlineMS: time.Now().Add(time.Minute).UnixMilli(),
		Request:    json.RawMessage(fmt.Sprintf(tinyConv, "t")),
	})
	ab, _ := json.Marshal(stateRecord{State: stateAbandoned})
	if err := jr.AppendDurable(journal.Record{Kind: journal.KindSubmit, Job: "j000003", Payload: sub}); err != nil {
		t.Fatal(err)
	}
	if err := jr.AppendDurable(journal.Record{Kind: journal.KindState, Job: "j000003", Payload: ab}); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	jr2 := openJournal(t, dir)
	s := newTestServer(t, Config{Journal: jr2, StallTimeout: -1})
	t.Cleanup(func() { jr2.Close() })
	if rec, _ := do(t, s, "GET", "/v1/jobs/j000003", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("abandoned job resurrected: %d", rec.Code)
	}
	if st := s.Stats(); st.RecoveredJobs != 0 {
		t.Fatalf("abandoned job counted as recovered: %d", st.RecoveredJobs)
	}
}

// TestJournalUnbuildableSubmitFailsHonestly: a journaled submission whose
// body no longer decodes is surfaced as a terminal failed job — visible
// and classified, never silently dropped.
func TestJournalUnbuildableSubmitFailsHonestly(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, dir)
	sub, _ := json.Marshal(submitRecord{
		Tenant: "t", SubmittedMS: time.Now().UnixMilli(),
		DeadlineMS: time.Now().Add(time.Minute).UnixMilli(),
		Request:    json.RawMessage(`{"conv":{"K":0}}`), // invalid geometry
	})
	if err := jr.AppendDurable(journal.Record{Kind: journal.KindSubmit, Job: "j000001", Payload: sub}); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	jr2 := openJournal(t, dir)
	s := newTestServer(t, Config{Journal: jr2, StallTimeout: -1})
	t.Cleanup(func() { jr2.Close() })
	rec, st := do(t, s, "GET", "/v1/jobs/j000001", "")
	if rec.Code != http.StatusOK || st.State != JobFailed || !st.Recovered {
		t.Fatalf("unbuildable submit: %d %+v", rec.Code, st)
	}
	if !strings.Contains(st.Error, "crash recovery") {
		t.Fatalf("failure not attributed to recovery: %q", st.Error)
	}
}

// TestIdempotencyKeyDedupe: within one process life, a duplicate
// Idempotency-Key replays the original job with 200 + Location instead of
// admitting twice. Works with or without a journal.
func TestIdempotencyKeyDedupe(t *testing.T) {
	s := newTestServer(t, Config{})
	body := fmt.Sprintf(tinyConv, "idem")
	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		req.Header.Set("Idempotency-Key", "abc")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}
	first := post()
	if first.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", first.Code, first.Body.String())
	}
	var fst JobStatus
	if err := json.Unmarshal(first.Body.Bytes(), &fst); err != nil {
		t.Fatal(err)
	}
	second := post()
	if second.Code != http.StatusOK {
		t.Fatalf("duplicate submit: %d %s", second.Code, second.Body.String())
	}
	var snd JobStatus
	if err := json.Unmarshal(second.Body.Bytes(), &snd); err != nil {
		t.Fatal(err)
	}
	if snd.ID != fst.ID {
		t.Fatalf("duplicate admitted a new job: %q vs %q", snd.ID, fst.ID)
	}
	if loc := second.Header().Get("Location"); loc != "/v1/jobs/"+fst.ID {
		t.Fatalf("replay Location = %q", loc)
	}
	if st := s.Stats(); st.Counters["srv.idempotent.replayed"] != 1 {
		t.Fatalf("idempotent counter: %v", st.Counters["srv.idempotent.replayed"])
	}
	// A different key admits normally.
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	req.Header.Set("Idempotency-Key", "xyz")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("distinct key: %d", rec.Code)
	}
}

// TestDrainShedCarriesRetryAfter: the draining 503 backs clients off with
// Retry-After, exactly like the 429 shed paths.
func TestDrainShedCarriesRetryAfter(t *testing.T) {
	s := New(Config{StallTimeout: -1, DrainGrace: 2 * time.Second})
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, s, "POST", "/v1/jobs", fmt.Sprintf(tinyConv, "late"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q", ra)
	}
}

// sseEvents parses a recorded SSE body into (id, event) pairs.
func sseEvents(body string) []struct {
	id    uint64
	event string
} {
	var out []struct {
		id    uint64
		event string
	}
	var id uint64
	var event string
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case line == "" && event != "":
			out = append(out, struct {
				id    uint64
				event string
			}{id, event})
			id, event = 0, ""
		}
	}
	return out
}

// TestSSELastEventID: frames carry SSE ids; a reconnect with Last-Event-ID
// replays only what was missed, and a client that already saw the terminal
// frame gets a clean end of stream instead of a duplicate done event.
func TestSSELastEventID(t *testing.T) {
	s := newTestServer(t, Config{})
	st := submit(t, s, fmt.Sprintf(tinyConv, "sse"))
	waitTerminal(t, s, st.ID)

	get := func(lastID string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil)
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}

	// Fresh subscribe on a terminal job: status, any buffered progress,
	// then the numbered terminal frame.
	evs := sseEvents(get("").Body.String())
	var terminalID uint64
	for _, e := range evs {
		if e.event == "done" {
			terminalID = e.id
		}
	}
	if terminalID == 0 {
		t.Fatalf("terminal frame has no id: %+v", evs)
	}

	// Reconnect having missed only the terminal frame: done is re-sent.
	evs = sseEvents(get(strconv.FormatUint(terminalID-1, 10)).Body.String())
	found := false
	for _, e := range evs {
		if e.event == "done" {
			found = true
		}
		if e.event == "progress" && e.id <= terminalID-1 {
			t.Fatalf("replayed an already-seen progress frame %d", e.id)
		}
	}
	if !found {
		t.Fatal("reconnect behind the terminal frame did not replay it")
	}

	// Reconnect having seen everything: no duplicate done.
	for _, e := range sseEvents(get(strconv.FormatUint(terminalID, 10)).Body.String()) {
		if e.event == "done" {
			t.Fatal("terminal frame duplicated for a caught-up client")
		}
	}
}

// TestJournalChaosRecovery is the acceptance invariant under chaos: with
// every fault site armed at 30% — journal writes and reads included — no
// acknowledged submission is lost across a restart, nothing completes
// twice, and every resumed search finishes no worse than its checkpoint.
func TestJournalChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos loop; skipped in -short")
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			restore := faults.Activate(faults.NewUniform(seed, 0.3))
			defer restore()

			dir := t.TempDir()
			jr := openJournal(t, dir)
			s := New(Config{Journal: jr, StallTimeout: -1, CheckpointEvery: time.Millisecond})

			// Submit through the chaos: 503s (journal unavailable) are
			// client-visible retryable errors; what was ACKed must survive.
			var acked []string
			for i := 0; i < 6; i++ {
				body := fmt.Sprintf(tinyConv, fmt.Sprintf("t%d", i%2))
				for try := 0; try < 20; try++ {
					rec, st := do(t, s, "POST", "/v1/jobs", body)
					if rec.Code == http.StatusAccepted {
						acked = append(acked, st.ID)
						break
					}
					if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusTooManyRequests {
						t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
					}
				}
			}
			if len(acked) == 0 {
				t.Fatal("chaos shed every submission; rate too high for the retry budget")
			}
			finals := make(map[string]JobStatus)
			for _, id := range acked {
				finals[id] = waitTerminal(t, s, id)
			}
			drainClose(t, s, jr)

			// Restart, chaos still armed: recovery reads replay through the
			// same injector.
			jr2 := openJournal(t, dir)
			s2 := newTestServer(t, Config{Journal: jr2, StallTimeout: -1})
			t.Cleanup(func() { jr2.Close() })

			st2 := s2.Stats()
			if st2.RecoveredJobs != uint64(len(acked)) {
				t.Fatalf("recovered %d jobs, acked %d", st2.RecoveredJobs, len(acked))
			}
			if st2.Jobs != len(acked) {
				t.Fatalf("job table holds %d records, want %d (duplicates?)", st2.Jobs, len(acked))
			}
			for _, id := range acked {
				rec, got := do(t, s2, "GET", "/v1/jobs/"+id, "")
				if rec.Code != http.StatusOK {
					t.Fatalf("acked job %s lost across restart: %d", id, rec.Code)
				}
				want := finals[id]
				if got.State != want.State || got.EDP != want.EDP {
					t.Fatalf("job %s drifted across restart: %q/%g vs %q/%g",
						id, got.State, got.EDP, want.State, want.EDP)
				}
				if got.CheckpointEDP > 0 && got.EDP > got.CheckpointEDP {
					t.Fatalf("job %s finished worse than its checkpoint: %g > %g",
						id, got.EDP, got.CheckpointEDP)
				}
			}
			// Zero double-completions: the restored records did not re-run.
			if d := s2.Stats().Counters["srv.jobs.done"]; d != 0 {
				t.Fatalf("restart re-ran %d restored jobs", d)
			}
		})
	}
}

package server

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// debugServer is the server whose stats the process-wide expvar variable
// reports. expvar.Publish is global and panics on re-publish, so the
// variable is registered once and reads through this pointer — the last
// server to call DebugHandler wins (in practice a process runs one).
var debugServer atomic.Pointer[Server]

func init() {
	expvar.Publish("sunstone", expvar.Func(func() any {
		s := debugServer.Load()
		if s == nil {
			return nil
		}
		return s.Stats()
	}))
}

// DebugHandler returns the diagnostics mux sunstoned serves on its private
// debug listener (off by default; see the -debug-addr flag): expvar at
// /debug/vars — including the "sunstone" variable with EngineStats, the
// srv.* counters, and the cumulative search-flow totals — and net/http/pprof
// under /debug/pprof/. Never mount this on the public job API listener.
func (s *Server) DebugHandler() http.Handler {
	debugServer.Store(s)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Package diannao implements an event-counting simulator of a DianNao-like
// accelerator (Chen et al., ASPLOS 2014) and its instruction set — the
// in-house substrate the paper builds for the Section V-D tiling/unrolling
// overhead analysis (Fig. 9).
//
// The machine has three on-chip scratchpads — NBin (input neurons), NBout
// (output neurons / partial sums) and SB (synapses/weights) — feeding an NFU
// of Tn x Ti = 16x16 multipliers with per-output adder trees and
// accumulators. Control is instruction-driven only at tile granularity:
// 256-bit instructions move tiles between DRAM and the scratchpads and kick
// off FSM-sequenced compute passes, so the instruction count is tiny
// compared to the MAC count (the SIMD property Section V-D highlights).
// Instructions are conservatively fetched from DRAM, as in the paper.
package diannao

import (
	"fmt"

	"sunstone/internal/energy"
)

// NFU geometry (DianNao's Tn x Ti).
const (
	Tn = 16 // parallel outputs
	Ti = 16 // parallel inputs (broadcast tree + adder tree)
)

// BufferID names an on-chip scratchpad.
type BufferID int

const (
	NBin BufferID = iota
	SB
	NBout
)

func (b BufferID) String() string {
	switch b {
	case NBin:
		return "NBin"
	case SB:
		return "SB"
	case NBout:
		return "NBout"
	}
	return "?"
}

// Op is an instruction opcode.
type Op int

const (
	// Load moves Size words DRAM -> Buf.
	Load Op = iota
	// Store moves Size words NBout -> DRAM.
	Store
	// Compute runs one FSM-sequenced pass over the loaded tiles: MACs
	// multiply-accumulates, reading inputs/weights from NBin/SB and
	// accumulating OutWords results into NBout (reading them back first
	// when Accumulate).
	Compute
)

// Instr is one 256-bit DianNao-style instruction.
type Instr struct {
	Op         Op
	Buf        BufferID // Load target
	Size       int64    // words moved (Load/Store)
	MACs       int64    // Compute: multiply-accumulates in this pass
	OutWords   int64    // Compute: distinct output words produced/updated
	Accumulate bool     // Compute: outputs start from previously stored partials
}

// Machine holds the scratchpad capacities in 16-bit words.
type Machine struct {
	NBinWords, SBWords, NBoutWords int64
}

// Default returns the Section V-D configuration: 2 KB NBin/NBout, 32 KB SB,
// 16-bit datapath.
func Default() *Machine {
	return &Machine{NBinWords: 1024, SBWords: 16 * 1024, NBoutWords: 1024}
}

// Stats aggregates the events of one simulation.
type Stats struct {
	Instructions int64
	DRAMReads    int64 // words (data)
	DRAMWrites   int64 // words (data)
	BufReads     map[BufferID]int64
	BufWrites    map[BufferID]int64
	MACs         int64
	Cycles       int64
}

// NewStats returns zeroed statistics with initialized maps.
func NewStats() Stats {
	return Stats{BufReads: map[BufferID]int64{}, BufWrites: map[BufferID]int64{}}
}

// Sim executes an instruction stream. The producer calls emit for every
// instruction; Sim validates tile sizes against the scratchpads and counts
// events. It returns an error on a capacity violation.
type Sim struct {
	M     *Machine
	Stats Stats
	err   error
}

// NewSim returns a simulator for machine m.
func NewSim(m *Machine) *Sim {
	return &Sim{M: m, Stats: NewStats()}
}

// Exec executes one instruction.
func (s *Sim) Exec(in Instr) error {
	if s.err != nil {
		return s.err
	}
	s.Stats.Instructions++
	switch in.Op {
	case Load:
		capWords := s.capOf(in.Buf)
		if in.Size > capWords {
			s.err = fmt.Errorf("load of %d words exceeds %s capacity %d", in.Size, in.Buf, capWords)
			return s.err
		}
		s.Stats.DRAMReads += in.Size
		s.Stats.BufWrites[in.Buf] += in.Size
		s.Stats.Cycles += ceilDiv64(in.Size, 16) // 256-bit DRAM bus
	case Store:
		if in.Size > s.M.NBoutWords {
			s.err = fmt.Errorf("store of %d words exceeds NBout capacity %d", in.Size, s.M.NBoutWords)
			return s.err
		}
		s.Stats.DRAMWrites += in.Size
		s.Stats.BufReads[NBout] += in.Size
		s.Stats.Cycles += ceilDiv64(in.Size, 16)
	case Compute:
		s.Stats.MACs += in.MACs
		// Per NFU cycle: Ti inputs broadcast to Tn output lanes, Ti*Tn
		// weights, Tn accumulators updated internally.
		s.Stats.BufReads[NBin] += in.MACs / Tn
		s.Stats.BufReads[SB] += in.MACs
		s.Stats.BufWrites[NBout] += in.OutWords
		if in.Accumulate {
			s.Stats.BufReads[NBout] += in.OutWords
		}
		s.Stats.Cycles += ceilDiv64(in.MACs, Tn*Ti)
	default:
		s.err = fmt.Errorf("unknown opcode %d", in.Op)
		return s.err
	}
	return nil
}

// Err returns the first execution error, if any.
func (s *Sim) Err() error { return s.err }

func (s *Sim) capOf(b BufferID) int64 {
	switch b {
	case NBin:
		return s.M.NBinWords
	case SB:
		return s.M.SBWords
	default:
		return s.M.NBoutWords
	}
}

// Energy converts statistics into a per-component energy breakdown (pJ),
// with instructions fetched from DRAM (instrFromDRAM) or a dedicated 32 KB
// instruction SRAM. reorderWords counts the one-time DRAM read+write pairs
// spent rearranging operand tiles into burst-contiguous layout (Section
// V-D's data-reordering overhead).
func (s Stats) Energy(m *Machine, instrFromDRAM bool, reorderWords int64) map[string]float64 {
	const bits = 16
	e := map[string]float64{}
	e["MAC"] = float64(s.MACs) * energy.MAC(bits)
	e["DRAM"] = float64(s.DRAMReads+s.DRAMWrites) * energy.DRAM(bits)
	e["NBin"] = float64(s.BufReads[NBin])*energy.SRAMRead(m.NBinWords*2, bits) +
		float64(s.BufWrites[NBin])*energy.SRAMWrite(m.NBinWords*2, bits)
	e["SB"] = float64(s.BufReads[SB])*energy.SRAMRead(m.SBWords*2, bits) +
		float64(s.BufWrites[SB])*energy.SRAMWrite(m.SBWords*2, bits)
	e["NBout"] = float64(s.BufReads[NBout])*energy.SRAMRead(m.NBoutWords*2, bits) +
		float64(s.BufWrites[NBout])*energy.SRAMWrite(m.NBoutWords*2, bits)
	e["Instr"] = float64(s.Instructions) * energy.Instruction(instrFromDRAM)
	e["Reorder"] = float64(2*reorderWords) * energy.DRAM(bits)
	return e
}

// Total sums an energy breakdown.
func Total(e map[string]float64) float64 {
	t := 0.0
	for _, v := range e {
		t += v
	}
	return t
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }

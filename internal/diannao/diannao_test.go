package diannao

import (
	"strings"
	"testing"
)

func TestLoadComputeStoreCounts(t *testing.T) {
	s := NewSim(Default())
	must := func(in Instr) {
		t.Helper()
		if err := s.Exec(in); err != nil {
			t.Fatal(err)
		}
	}
	must(Instr{Op: Load, Buf: NBin, Size: 512})
	must(Instr{Op: Load, Buf: SB, Size: 4096})
	must(Instr{Op: Compute, MACs: 65536, OutWords: 256})
	must(Instr{Op: Store, Size: 256})

	st := s.Stats
	if st.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", st.Instructions)
	}
	if st.DRAMReads != 512+4096 || st.DRAMWrites != 256 {
		t.Errorf("DRAM traffic = %d/%d", st.DRAMReads, st.DRAMWrites)
	}
	if st.MACs != 65536 {
		t.Errorf("MACs = %d", st.MACs)
	}
	// Per-cycle NFU reads: inputs broadcast to Tn lanes, weights per MAC.
	if st.BufReads[NBin] != 65536/Tn {
		t.Errorf("NBin reads = %d, want %d", st.BufReads[NBin], 65536/Tn)
	}
	if st.BufReads[SB] != 65536 {
		t.Errorf("SB reads = %d, want %d", st.BufReads[SB], 65536)
	}
	if st.BufWrites[NBout] != 256 || st.BufReads[NBout] != 256 {
		t.Errorf("NBout traffic = %d writes %d reads", st.BufWrites[NBout], st.BufReads[NBout])
	}
	if st.Cycles <= 0 {
		t.Error("no cycles counted")
	}
}

func TestAccumulateReadsPartials(t *testing.T) {
	s := NewSim(Default())
	if err := s.Exec(Instr{Op: Compute, MACs: 256, OutWords: 16, Accumulate: true}); err != nil {
		t.Fatal(err)
	}
	if s.Stats.BufReads[NBout] != 16 {
		t.Errorf("accumulating pass must read partials: %d", s.Stats.BufReads[NBout])
	}
}

func TestCapacityViolations(t *testing.T) {
	s := NewSim(Default())
	if err := s.Exec(Instr{Op: Load, Buf: NBin, Size: 2048}); err == nil {
		t.Error("NBin overflow not caught")
	}
	if s.Err() == nil {
		t.Error("error not latched")
	}
	s2 := NewSim(Default())
	if err := s2.Exec(Instr{Op: Store, Size: 4096}); err == nil {
		t.Error("NBout overflow not caught")
	}
}

func TestErrorLatch(t *testing.T) {
	s := NewSim(Default())
	_ = s.Exec(Instr{Op: Load, Buf: SB, Size: 1 << 30})
	before := s.Stats.MACs
	_ = s.Exec(Instr{Op: Compute, MACs: 100})
	if s.Stats.MACs != before {
		t.Error("execution must stop after an error")
	}
}

func TestEnergyBreakdown(t *testing.T) {
	s := NewSim(Default())
	_ = s.Exec(Instr{Op: Load, Buf: SB, Size: 1024})
	_ = s.Exec(Instr{Op: Compute, MACs: 1 << 20, OutWords: 64})
	e := s.Stats.Energy(Default(), true, 1000)
	for _, k := range []string{"MAC", "DRAM", "SB", "NBin", "NBout", "Instr", "Reorder"} {
		if _, ok := e[k]; !ok {
			t.Errorf("missing component %s", k)
		}
	}
	if e["MAC"] <= 0 || e["Reorder"] <= 0 {
		t.Error("zero energy for active components")
	}
	if Total(e) <= e["MAC"] {
		t.Error("total must exceed any single component")
	}
	// DRAM-resident instructions cost more than SRAM-resident ones.
	e2 := s.Stats.Energy(Default(), false, 0)
	if e2["Instr"] >= e["Instr"] {
		t.Error("instruction store choice has no effect")
	}
}

func TestBufferNames(t *testing.T) {
	if NBin.String() != "NBin" || SB.String() != "SB" || NBout.String() != "NBout" {
		t.Error("buffer names")
	}
	if !strings.Contains(BufferID(99).String(), "?") {
		t.Error("unknown buffer should render '?'")
	}
}

func TestUnknownOpcode(t *testing.T) {
	s := NewSim(Default())
	if err := s.Exec(Instr{Op: Op(42)}); err == nil {
		t.Error("unknown opcode must error")
	}
}

func TestDefaultGeometry(t *testing.T) {
	m := Default()
	if m.NBinWords != 1024 || m.NBoutWords != 1024 || m.SBWords != 16*1024 {
		t.Error("Section V-D buffer sizes altered")
	}
	if Tn*Ti != 256 {
		t.Error("NFU must have 256 multipliers")
	}
}

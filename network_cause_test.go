package sunstone

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sunstone/internal/faults"
)

// TestLayerCauseClassificationEndToEnd drives every FailureCause through the
// public API: real ScheduleNetworkContext runs whose layers fail for each of
// the five classified reasons, asserted via CauseOf on the per-layer errors.
//
//   - injected: a deterministic compile fault (internal/faults) fails the
//     layer's problem compilation;
//   - panic: a structurally invalid layer shape panics inside the layer
//     goroutine (tensor.MustNew), contained as an *anytime.PanicError;
//   - deadline: every evaluation is poisoned (so no valid mapping can ever
//     complete) and a nanosecond timeout expires first;
//   - sibling-cancel: a tiny poisoned layer fails fast and cancels a larger
//     sibling before it can complete anything;
//   - search: the poisoned layer runs to its natural end with nothing valid.
func TestLayerCauseClassificationEndToEnd(t *testing.T) {
	a := Tiny(256)
	tiny := ConvShape{Name: "tiny", K: 1, C: 1, P: 1, Q: 1, R: 1, S: 1, StrideH: 1, StrideW: 1}
	mid := ConvShape{Name: "mid", K: 8, C: 8, P: 7, Q: 7, R: 3, S: 3, StrideH: 1, StrideW: 1}
	big := ConvShape{Name: "big", K: 64, C: 64, P: 28, Q: 28, R: 3, S: 3, StrideH: 1, StrideW: 1}
	bad := ConvShape{Name: "bad"} // zero dims: Inference panics in tensor.MustNew

	cases := []struct {
		name   string
		spec   string // fault spec armed for the run ("" = none)
		shapes []ConvShape
		opt    NetworkOptions
		layer  string // the layer whose cause is asserted
		want   FailureCause
	}{
		{
			name: "injected", spec: "compile:error:1,seed=1",
			shapes: []ConvShape{tiny}, layer: "tiny", want: CauseInjected,
		},
		{
			name:   "panic",
			shapes: []ConvShape{bad}, layer: "bad", want: CausePanic,
		},
		{
			name: "deadline", spec: "evaluate:panic:1,seed=1",
			shapes: []ConvShape{mid},
			opt:    NetworkOptions{Options: Options{Timeout: time.Nanosecond}},
			layer:  "mid", want: CauseDeadline,
		},
		{
			// The tiny layer exhausts its poisoned search first (cause:
			// search) and the fail-fast policy cancels the big sibling,
			// which cannot have completed anything valid either.
			name: "sibling-cancel", spec: "evaluate:panic:1,seed=1",
			shapes: []ConvShape{tiny, big}, layer: "big", want: CauseSiblingCancel,
		},
		{
			// An ordinary search failure: invalid options are rejected by
			// Options.Validate before any search runs — a plain error with
			// no injected fault, panic, or context signal in its chain.
			name:   "search",
			shapes: []ConvShape{tiny},
			opt:    NetworkOptions{Options: Options{MinUtilization: 2}},
			layer:  "tiny", want: CauseSearch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.spec != "" {
				inj, err := faults.ParseSpec(tc.spec)
				if err != nil {
					t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
				}
				defer faults.Activate(inj)()
			}
			sched, err := ScheduleNetworkContext(context.Background(), tc.name, tc.shapes, 1, nil, a, tc.opt)
			if err == nil {
				t.Fatalf("schedule succeeded; wanted layer %q to fail with cause %q", tc.layer, tc.want)
			}
			var found bool
			for _, l := range sched.Layers {
				if l.Layer != tc.layer {
					continue
				}
				found = true
				if l.Err == nil {
					t.Fatalf("layer %q has no error (schedule error: %v)", tc.layer, err)
				}
				if got := CauseOf(l.Err); got != tc.want {
					t.Errorf("layer %q: CauseOf = %q, want %q (err: %v)", tc.layer, got, tc.want, l.Err)
				}
				var le *LayerError
				if !errors.As(l.Err, &le) {
					t.Errorf("layer %q error is not a *LayerError: %v", tc.layer, l.Err)
				}
			}
			if !found {
				t.Fatalf("layer %q missing from schedule", tc.layer)
			}
		})
	}
}

// TestCauseOf covers the public accessor: nil has no cause, a LayerError's
// recorded cause is authoritative even deep in a joined chain, and bare
// errors fall back to direct classification.
func TestCauseOf(t *testing.T) {
	if got := CauseOf(nil); got != "" {
		t.Errorf("CauseOf(nil) = %q", got)
	}
	le := &LayerError{Layer: "conv1", Cause: CauseDeadline, Err: context.DeadlineExceeded}
	if got := CauseOf(fmt.Errorf("schedule: %w", le)); got != CauseDeadline {
		t.Errorf("wrapped LayerError: CauseOf = %q, want %q", got, CauseDeadline)
	}
	if got := CauseOf(errors.Join(errors.New("other"), le)); got != CauseDeadline {
		t.Errorf("joined LayerError: CauseOf = %q, want %q", got, CauseDeadline)
	}
	inj := &faults.InjectedError{Site: faults.SiteExpand, Kind: faults.Panic, Seq: 3}
	if got := CauseOf(fmt.Errorf("bare: %w", inj)); got != CauseInjected {
		t.Errorf("bare injected: CauseOf = %q, want %q", got, CauseInjected)
	}
	if got := CauseOf(errors.New("anything else")); got != CauseSearch {
		t.Errorf("bare error: CauseOf = %q, want %q", got, CauseSearch)
	}
}

// TestLayerErrorRendering pins the log format ("<layer>: [<cause>] <err>",
// keeping the layer prefix older tooling greps for) and Unwrap.
func TestLayerErrorRendering(t *testing.T) {
	base := errors.New("boom")
	le := &LayerError{Layer: "conv2_x", Cause: CausePanic, Err: base}
	if got, want := le.Error(), "conv2_x: [panic] boom"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if !errors.Is(le, base) {
		t.Error("LayerError must unwrap to the underlying failure")
	}
}
